/**
 * @file
 * Figure 8: interpreter throughput (MIPS) per SPEC CPU2006 benchmark.
 *
 * Compares the four interpreter architectures on every SPECint/SPECfp
 * proxy: Spike-style (decoded-inst cache + soft-float), QEMU-TCI-style
 * (per-uop bytecode dispatch), Dromajo-style (no decode cache), and
 * NEMU (trace-organized uop cache + threaded code + host FP).
 *
 * Paper shape: Spike is the best baseline (~142 MIPS int / 106 fp);
 * NEMU is ~5.16x Spike on SPECint and ~7.71x on SPECfp (up to 16x on
 * 410.bwaves).
 *
 * Flags:
 *   --nemu-no-chain     ablate NEMU block chaining (successor caching,
 *                       superblocks, the indirect inline cache)
 *   --nemu-no-fastpath  ablate NEMU's memory fast path (host-pointer
 *                       TLB + direct-DRAM access)
 *   --smoke             perf-regression gate: run full NEMU vs both
 *                       ablations off at a fixed small budget and fail
 *                       (exit 1) unless full >= 2x ablated
 */

#include "bench_util.h"

#include <cstring>

#include "iss/interp.h"
#include "iss/system.h"
#include "nemu/nemu.h"

using namespace bench;
using namespace minjie;

namespace {

struct NemuOpts
{
    bool chain = true;
    bool fastPath = true;
};

struct EngineResult
{
    double mips[4]; // spike, tci, dromajo, nemu
};

template <typename MakeEngine>
double
runEngine(const wl::Program &prog, InstCount budget, MakeEngine make)
{
    iss::System sys(256);
    prog.loadInto(sys.dram);
    auto engine = make(sys);
    engine->setHaltFn([&] { return sys.simctrl.exited(); });
    Stopwatch sw;
    auto r = engine->run(budget);
    double sec = sw.elapsedSec();
    return sec > 0 ? static_cast<double>(r.executed) / sec / 1e6 : 0;
}

double
runNemu(const wl::Program &prog, InstCount budget, const NemuOpts &opts)
{
    return runEngine(prog, budget, [&](iss::System &sys) {
        auto n = std::make_unique<nemu::Nemu>(sys.bus, sys.dram, 0,
                                              prog.entry, 16384);
        n->setChainingEnabled(opts.chain);
        n->setFastPathEnabled(opts.fastPath);
        return n;
    });
}

EngineResult
runAll(const wl::Program &prog, InstCount budget, const NemuOpts &opts)
{
    EngineResult out;
    out.mips[0] = runEngine(prog, budget, [&](iss::System &sys) {
        return std::make_unique<iss::SpikeInterp>(sys.bus, 0, prog.entry,
                                                  16384);
    });
    out.mips[1] = runEngine(prog, budget, [&](iss::System &sys) {
        return std::make_unique<iss::TciInterp>(sys.bus, 0, prog.entry);
    });
    out.mips[2] = runEngine(prog, budget, [&](iss::System &sys) {
        return std::make_unique<iss::DromajoInterp>(sys.bus, 0,
                                                    prog.entry);
    });
    out.mips[3] = runNemu(prog, budget, opts);
    return out;
}

void
runSuite(const char *title, const std::vector<wl::ProxySpec> &suite,
         InstCount budget, uint64_t iterations, const NemuOpts &opts)
{
    std::printf("%s\n", title);
    std::printf("%-18s %9s %9s %9s %9s %9s\n", "benchmark", "Spike",
                "QEMU-TCI", "Dromajo", "NEMU", "NEMU/Spk");
    hr();
    std::vector<double> ratios;
    double sums[4] = {};
    for (const auto &spec : suite) {
        auto prog = wl::buildProxy(spec, iterations);
        auto r = runAll(prog, budget, opts);
        double ratio = r.mips[0] > 0 ? r.mips[3] / r.mips[0] : 0;
        ratios.push_back(ratio);
        for (int i = 0; i < 4; ++i)
            sums[i] += r.mips[i];
        std::printf("%-18s %9.1f %9.1f %9.1f %9.1f %8.2fx\n",
                    spec.name, r.mips[0], r.mips[1], r.mips[2],
                    r.mips[3], ratio);
    }
    hr();
    unsigned n = static_cast<unsigned>(suite.size());
    std::printf("%-18s %9.1f %9.1f %9.1f %9.1f %8.2fx\n", "average",
                sums[0] / n, sums[1] / n, sums[2] / n, sums[3] / n,
                geomean(ratios));
    std::printf("\n");
}

/**
 * Perf-regression smoke gate (ctest label "bench-smoke"): NEMU with
 * chaining + memory fast path must stay at least 2x the fully ablated
 * configuration on the same host at the same budget. The hot-loop
 * optimizations are load-bearing for the paper's Figure 8 claim, so a
 * regression here should fail CI loudly rather than just ship slower
 * numbers.
 */
int
runSmoke()
{
    // 2M instructions so each proxy's working set and the block-chain
    // graph fully materialize (short budgets underweight exactly the
    // effects the fast path removes); best-of-3 interleaved reps damp
    // co-tenant noise on shared CI hosts.
    constexpr InstCount BUDGET = 2'000'000;
    constexpr int REPS = 3;
    constexpr double MIN_RATIO = 2.0;
    // The control-heavy int proxies the hot-loop work targets: gcc
    // (calls + indirects), gobmk (branchy search), xalancbmk (virtual
    // dispatch). Memory-bound proxies (mcf) are excluded: their host
    // cache misses dominate both configurations and compress the
    // ratio below what a regression would move.
    const auto &all = wl::specIntSuite();
    std::vector<wl::ProxySpec> suite = {all[1], all[3], all[10]};

    std::printf("=== fig8 bench smoke: NEMU full vs ablated ===\n");
    std::printf("(budget %llu insts/run, best of %d; gate: full >= "
                "%.1fx ablated)\n\n",
                static_cast<unsigned long long>(BUDGET), REPS,
                MIN_RATIO);
    std::printf("%-18s %10s %10s %8s\n", "benchmark", "full",
                "ablated", "ratio");
    hr();

    NemuOpts full;
    NemuOpts ablated{/*chain=*/false, /*fastPath=*/false};
    std::vector<double> ratios;
    for (const auto &spec : suite) {
        auto prog = wl::buildProxy(spec, 100'000'000);
        // Warm-up pass absorbs first-touch page allocation noise.
        (void)runNemu(prog, BUDGET / 4, full);
        double fullMips = 0, ablMips = 0;
        for (int r = 0; r < REPS; ++r) {
            fullMips = std::max(fullMips, runNemu(prog, BUDGET, full));
            ablMips = std::max(ablMips, runNemu(prog, BUDGET, ablated));
        }
        double ratio = ablMips > 0 ? fullMips / ablMips : 0;
        ratios.push_back(ratio);
        std::printf("%-18s %10.1f %10.1f %7.2fx\n", spec.name, fullMips,
                    ablMips, ratio);
    }
    hr();
    double g = geomean(ratios);
    std::printf("%-18s %21s %7.2fx\n", "geomean", "", g);
    if (g < MIN_RATIO) {
        std::printf("\nFAIL: chaining+fastpath speedup %.2fx < %.1fx "
                    "gate\n", g, MIN_RATIO);
        return 1;
    }
    std::printf("\nPASS: chaining+fastpath speedup %.2fx >= %.1fx\n", g,
                MIN_RATIO);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    NemuOpts opts;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--nemu-no-chain") == 0)
            opts.chain = false;
        else if (std::strcmp(argv[i], "--nemu-no-fastpath") == 0)
            opts.fastPath = false;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else {
            std::fprintf(stderr,
                         "usage: %s [--nemu-no-chain] "
                         "[--nemu-no-fastpath] [--smoke]\n",
                         argv[0]);
            return 2;
        }
    }
    if (smoke)
        return runSmoke();

    bool fast = fastMode();
    InstCount budget = fast ? 300'000 : 5'000'000;
    uint64_t iterations = 1'000'000; // bounded by the budget anyway

    std::printf("=== Figure 8: interpreter performance (MIPS) ===\n");
    std::printf("(instruction budget per run: %llu; paper shape: NEMU "
                ">> Spike > Dromajo > QEMU-TCI,\n NEMU/Spike ~5.2x int "
                "and ~7.7x fp)\n\n",
                static_cast<unsigned long long>(budget));
    if (!opts.chain)
        std::printf("[ablation] NEMU block chaining disabled\n");
    if (!opts.fastPath)
        std::printf("[ablation] NEMU memory fast path disabled\n");
    if (!opts.chain || !opts.fastPath)
        std::printf("\n");

    auto intSuite = wl::specIntSuite();
    auto fpSuite = wl::specFpSuite();
    if (fast) {
        intSuite.resize(3);
        fpSuite.resize(3);
    }
    runSuite("SPECint 2006 proxies:", intSuite, budget, iterations, opts);
    runSuite("SPECfp 2006 proxies:", fpSuite, budget, iterations, opts);
    return 0;
}
