/**
 * @file
 * Figure 8: interpreter throughput (MIPS) per SPEC CPU2006 benchmark.
 *
 * Compares the four interpreter architectures on every SPECint/SPECfp
 * proxy: Spike-style (decoded-inst cache + soft-float), QEMU-TCI-style
 * (per-uop bytecode dispatch), Dromajo-style (no decode cache), and
 * NEMU (trace-organized uop cache + threaded code + host FP).
 *
 * Paper shape: Spike is the best baseline (~142 MIPS int / 106 fp);
 * NEMU is ~5.16x Spike on SPECint and ~7.71x on SPECfp (up to 16x on
 * 410.bwaves).
 */

#include "bench_util.h"

#include "iss/interp.h"
#include "iss/system.h"
#include "nemu/nemu.h"

using namespace bench;
using namespace minjie;

namespace {

struct EngineResult
{
    double mips[4]; // spike, tci, dromajo, nemu
};

template <typename MakeEngine>
double
runEngine(const wl::Program &prog, InstCount budget, MakeEngine make)
{
    iss::System sys(256);
    prog.loadInto(sys.dram);
    auto engine = make(sys);
    engine->setHaltFn([&] { return sys.simctrl.exited(); });
    Stopwatch sw;
    auto r = engine->run(budget);
    double sec = sw.elapsedSec();
    return sec > 0 ? r.executed / sec / 1e6 : 0;
}

EngineResult
runAll(const wl::Program &prog, InstCount budget)
{
    EngineResult out;
    out.mips[0] = runEngine(prog, budget, [&](iss::System &sys) {
        return std::make_unique<iss::SpikeInterp>(sys.bus, 0, prog.entry,
                                                  16384);
    });
    out.mips[1] = runEngine(prog, budget, [&](iss::System &sys) {
        return std::make_unique<iss::TciInterp>(sys.bus, 0, prog.entry);
    });
    out.mips[2] = runEngine(prog, budget, [&](iss::System &sys) {
        return std::make_unique<iss::DromajoInterp>(sys.bus, 0,
                                                    prog.entry);
    });
    out.mips[3] = runEngine(prog, budget, [&](iss::System &sys) {
        return std::make_unique<nemu::Nemu>(sys.bus, sys.dram, 0,
                                            prog.entry, 16384);
    });
    return out;
}

void
runSuite(const char *title, const std::vector<wl::ProxySpec> &suite,
         InstCount budget, uint64_t iterations)
{
    std::printf("%s\n", title);
    std::printf("%-18s %9s %9s %9s %9s %9s\n", "benchmark", "Spike",
                "QEMU-TCI", "Dromajo", "NEMU", "NEMU/Spk");
    hr();
    std::vector<double> ratios;
    double sums[4] = {};
    for (const auto &spec : suite) {
        auto prog = wl::buildProxy(spec, iterations);
        auto r = runAll(prog, budget);
        double ratio = r.mips[0] > 0 ? r.mips[3] / r.mips[0] : 0;
        ratios.push_back(ratio);
        for (int i = 0; i < 4; ++i)
            sums[i] += r.mips[i];
        std::printf("%-18s %9.1f %9.1f %9.1f %9.1f %8.2fx\n",
                    spec.name, r.mips[0], r.mips[1], r.mips[2],
                    r.mips[3], ratio);
    }
    hr();
    unsigned n = static_cast<unsigned>(suite.size());
    std::printf("%-18s %9.1f %9.1f %9.1f %9.1f %8.2fx\n", "average",
                sums[0] / n, sums[1] / n, sums[2] / n, sums[3] / n,
                geomean(ratios));
    std::printf("\n");
}

} // namespace

int
main()
{
    bool fast = fastMode();
    InstCount budget = fast ? 300'000 : 5'000'000;
    uint64_t iterations = 1'000'000; // bounded by the budget anyway

    std::printf("=== Figure 8: interpreter performance (MIPS) ===\n");
    std::printf("(instruction budget per run: %llu; paper shape: NEMU "
                ">> Spike > Dromajo > QEMU-TCI,\n NEMU/Spike ~5.2x int "
                "and ~7.7x fp)\n\n",
                static_cast<unsigned long long>(budget));

    auto intSuite = wl::specIntSuite();
    auto fpSuite = wl::specFpSuite();
    if (fast) {
        intSuite.resize(3);
        fpSuite.resize(3);
    }
    runSuite("SPECint 2006 proxies:", intSuite, budget, iterations);
    runSuite("SPECfp 2006 proxies:", fpSuite, budget, iterations);
    return 0;
}
