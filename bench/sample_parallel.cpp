/**
 * @file
 * Wall-clock scaling of the fork-fanout sampled-simulation engine:
 * the same checkpoint pack evaluated serially (--workers 1) and with
 * 8 forked workers, on the fig12 workload set.
 *
 * Two properties are on trial:
 *   1. Throughput — with >= 8 host cores, 8 workers must cut the
 *      wall-clock of a pack evaluation by >= 3x (the smoke gate).
 *      On smaller hosts the 3x target is physically unreachable, so
 *      the gate reports the measured speedup and enforces only the
 *      invariance property (the ctest stays meaningful everywhere).
 *   2. Determinism — weighted counters, IPC, and the top-down stack
 *      must be byte-identical between serial and parallel runs; this
 *      is checked unconditionally and fails the gate on any host.
 *
 * Flags:
 *   --smoke       scaling-regression gate (ctest label "bench-smoke")
 *   --json FILE   machine-readable results (CI: BENCH_sample.json)
 */

#include "bench_util.h"

#include <cstring>
#include <fstream>
#include <thread>

#include "checkpoint/generator.h"
#include "common/jsonw.h"
#include "sample/engine.h"

using namespace bench;
using namespace minjie;

namespace {

constexpr unsigned PAR_WORKERS = 8;

struct Row
{
    std::string workload;
    size_t slices = 0;
    size_t poolPages = 0;
    size_t packKb = 0;
    double serialSec = 0;   ///< best of reps, workers=1
    double parallelSec = 0; ///< best of reps, workers=8
    double weightedIpc = 0;
    bool invariant = false; ///< serial and parallel reduced identically

    double
    speedup() const
    {
        return parallelSec > 0 ? serialSec / parallelSec : 0;
    }
};

Row
measureWorkload(const wl::ProxySpec &spec, InstCount budget, int reps)
{
    Row row;
    row.workload = spec.name;

    auto prog = wl::buildProxy(spec, 10'000'000);
    auto gen = checkpoint::generateCheckpoints(prog, budget / 10,
                                               PAR_WORKERS, budget);
    sample::PackReader pack;
    if (!pack.openMemory(sample::packFromGen(gen)))
        return row;
    row.slices = pack.count();
    row.poolPages = pack.poolPages();
    row.packKb = pack.sizeBytes() / 1024;

    sample::SampleConfig cfg;
    cfg.measureInsts = 30'000;

    sample::SampleReport serial, parallel;
    for (int r = 0; r < reps; ++r) {
        // Serial and parallel back to back inside each rep so host
        // noise cancels in the ratio (core_fastpath's pairing idiom).
        cfg.workers = 1;
        auto s = sample::runSampled(pack, cfg);
        cfg.workers = PAR_WORKERS;
        auto p = sample::runSampled(pack, cfg);
        if (r == 0 || s.wallSec < serial.wallSec)
            serial = s;
        if (r == 0 || p.wallSec < parallel.wallSec)
            parallel = std::move(p);
    }
    row.serialSec = serial.wallSec;
    row.parallelSec = parallel.wallSec;
    row.weightedIpc = serial.weightedIpc();
    row.invariant =
        serial.allOk() && parallel.allOk() &&
        serial.weighted == parallel.weighted &&
        serial.weightedCycles == parallel.weightedCycles &&
        serial.weightedInstrs == parallel.weightedInstrs &&
        serial.stack.sumsExactly();
    return row;
}

std::vector<Row>
measureSuite(const std::vector<wl::ProxySpec> &suite, InstCount budget,
             int reps)
{
    std::vector<Row> rows;
    for (const auto &spec : suite) {
        std::printf("  %-14s ...", spec.name);
        std::fflush(stdout);
        Row r = measureWorkload(spec, budget, reps);
        std::printf(" %zu slices  serial %6.3fs  8-workers %6.3fs  "
                    "%5.2fx  %s\n",
                    r.slices, r.serialSec, r.parallelSec, r.speedup(),
                    r.invariant ? "invariant" : "MISMATCH");
        rows.push_back(std::move(r));
    }
    return rows;
}

void
writeJson(const std::string &file, const std::vector<Row> &rows,
          unsigned hostCores, bool gateEnforced, double geo)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("bench").value("sample_parallel");
    jw.key("workers").value(static_cast<uint64_t>(PAR_WORKERS));
    jw.key("host_cores").value(static_cast<uint64_t>(hostCores));
    jw.key("gate_enforced").value(gateEnforced);
    jw.key("geomean_speedup").value(geo);
    jw.key("workloads").beginArray();
    for (const Row &r : rows) {
        jw.beginObject();
        jw.key("name").value(r.workload);
        jw.key("slices").value(static_cast<uint64_t>(r.slices));
        jw.key("pool_pages").value(static_cast<uint64_t>(r.poolPages));
        jw.key("pack_kb").value(static_cast<uint64_t>(r.packKb));
        jw.key("serial_sec").value(r.serialSec);
        jw.key("parallel_sec").value(r.parallelSec);
        jw.key("speedup").value(r.speedup());
        jw.key("weighted_ipc").value(r.weightedIpc);
        jw.key("invariant").value(r.invariant);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    std::ofstream f(file);
    f << jw.str() << "\n";
    if (!f)
        std::fprintf(stderr, "sample_parallel: cannot write %s\n",
                     file.c_str());
    else
        std::printf("JSON written to %s\n", file.c_str());
}

int
runSmoke(const std::string &jsonFile)
{
    constexpr double MIN_SPEEDUP = 3.0;
    unsigned hostCores = std::thread::hardware_concurrency();
    // The gate needs 8 runnable workers to have 8 cores' worth of
    // wall-clock to reclaim; below that the target is unreachable by
    // construction, not by regression.
    bool enforce = hostCores >= PAR_WORKERS;

    std::printf("=== sampled-simulation scaling smoke (8 workers vs "
                "serial) ===\n");
    std::printf("host cores: %u -> 3x gate %s\n\n", hostCores,
                enforce ? "ENFORCED" : "reported only (invariance "
                                       "still enforced)");

    // Gate set: fig12 workloads with distinct phase structure, sized
    // so each pack yields ~8 roughly equal slices.
    auto intSuite = wl::specIntSuite();
    std::vector<wl::ProxySpec> gateSet = {intSuite[0], intSuite[5]};
    auto rows = measureSuite(gateSet, 400'000, /*reps=*/3);

    std::vector<double> sp;
    bool allInvariant = true;
    for (const Row &r : rows) {
        if (r.speedup() > 0)
            sp.push_back(r.speedup());
        allInvariant = allInvariant && r.invariant;
    }
    double geo = geomean(sp);
    std::printf("\ngeomean speedup: %.2fx\n", geo);
    if (!jsonFile.empty())
        writeJson(jsonFile, rows, hostCores, enforce, geo);

    if (!allInvariant) {
        std::printf("FAIL: serial and parallel reductions diverged\n");
        return 1;
    }
    if (enforce && geo < MIN_SPEEDUP) {
        std::printf("FAIL: speedup %.2fx < %.1fx gate at %u workers\n",
                    geo, MIN_SPEEDUP, PAR_WORKERS);
        return 1;
    }
    std::printf("PASS%s\n",
                enforce ? "" : " (speedup informational on this host)");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string jsonFile;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonFile = argv[++i];
        else {
            std::fprintf(stderr, "usage: %s [--smoke] [--json FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (smoke)
        return runSmoke(jsonFile);

    bool fast = fastMode();
    auto suite = wl::specIntSuite();
    auto fpSuite = wl::specFpSuite();
    suite.insert(suite.end(), fpSuite.begin(), fpSuite.end());
    if (fast)
        suite.resize(3);

    std::printf("=== sampled evaluation: serial vs %u forked workers "
                "(fig12 set) ===\n\n",
                PAR_WORKERS);
    auto rows = measureSuite(suite, fast ? 200'000 : 400'000,
                             /*reps=*/1);
    std::vector<double> sp;
    for (const Row &r : rows)
        if (r.speedup() > 0)
            sp.push_back(r.speedup());
    std::printf("\ngeomean speedup: %.2fx (host cores: %u)\n",
                geomean(sp), std::thread::hardware_concurrency());
    if (!jsonFile.empty())
        writeJson(jsonFile, rows,
                  std::thread::hardware_concurrency(), false,
                  geomean(sp));
    return 0;
}
