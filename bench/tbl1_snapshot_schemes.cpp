/**
 * @file
 * Table I + Section III-C4: snapshot scheme comparison.
 *
 * Prints the qualitative feature matrix of Table I and measures the
 * quantitative claim of Section III-C4: one fork() snapshot (LightSSS)
 * vs one full-image snapshot (SSS) on a simulator with a large dirtied
 * memory. Paper numbers: fork 535us, SSS 3.671s.
 */

#include "bench_util.h"

#include "iss/system.h"
#include "lightsss/lightsss.h"
#include "lightsss/sss.h"
#include "nemu/nemu.h"

using namespace bench;
using namespace minjie::lightsss;

int
main()
{
    std::printf("=== Table I: snapshot schemes for software "
                "RTL-simulation ===\n");
    std::printf("%-12s %-10s %-12s %-16s\n", "scheme", "in-memory",
                "incremental", "circuit-agnostic");
    hr();
    std::printf("%-12s %-10s %-12s %-16s\n", "CRIU", "no", "yes", "yes");
    std::printf("%-12s %-10s %-12s %-16s\n", "Verilator", "no", "no",
                "no");
    std::printf("%-12s %-10s %-12s %-16s\n", "LiveSim", "yes", "no",
                "no");
    std::printf("%-12s %-10s %-12s %-16s\n", "LightSSS", "yes", "yes",
                "yes");
    hr();

    // Build a simulator state with a heavily dirtied memory image.
    unsigned mb = fastMode() ? 16 : 128;
    iss::System sys(256);
    auto prog = wl::memStressProgram(20000, mb > 64 ? 64 : mb);
    prog.loadInto(sys.dram);
    nemu::Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });
    nemu.run(100'000'000);
    // Touch additional pages directly to reach the target footprint.
    for (Addr a = 0; a < static_cast<Addr>(mb) * 1024 * 1024; a += 4096)
        sys.dram.write(iss::DRAM_BASE + a, 8, a);
    std::printf("\nsimulated-memory footprint: %zu pages (%.1f MB)\n",
                sys.dram.allocatedPages(),
                static_cast<double>(sys.dram.allocatedPages()) * 4096.0 /
                    (1 << 20));

    // SSS: full-image snapshot cost.
    SssSnapshotter sss(sys.dram);
    size_t bytes = sss.takeSnapshot(nemu.state(), 0);
    uint64_t sssUs = sss.lastSnapshotUs();

    // LightSSS: fork cost (average of several snapshots).
    LightSSS light({1, 2, true});
    for (Cycle c = 0; c < 8; ++c)
        light.tick(c);
    uint64_t forkUs =
        light.stats().totalForkUs / std::max<uint64_t>(1,
                                                       light.stats().forks);
    light.discardAll();

    std::printf("\n=== Section III-C4: per-snapshot cost ===\n");
    std::printf("%-24s %12s\n", "scheme", "cost");
    hr('-', 40);
    std::printf("%-24s %9llu us   (paper: 535 us)\n", "LightSSS fork()",
                static_cast<unsigned long long>(forkUs));
    std::printf("%-24s %9llu us   (paper: 3,671,000 us)\n",
                "SSS full image",
                static_cast<unsigned long long>(sssUs));
    std::printf("%-24s %9.1fx   (paper: ~6900x)\n", "ratio",
                forkUs ? static_cast<double>(sssUs) /
                             static_cast<double>(forkUs)
                       : 0.0);
    std::printf("(SSS image size: %.1f MB)\n",
                static_cast<double>(bytes) / (1 << 20));
    return 0;
}
