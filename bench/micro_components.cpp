/**
 * @file
 * Component microbenchmarks (google-benchmark): the per-operation costs
 * behind the paper's headline numbers — soft-float vs host FP (the
 * SPECfp gap of Figure 8), decode vs cached-decode (the uop cache),
 * TAGE lookup/update, and cache-hierarchy hit/miss paths.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fp/ops.h"
#include "isa/decode.h"
#include "isa/encode.h"
#include "uarch/hierarchy.h"
#include "uarch/predictors.h"

using namespace minjie;

namespace {

void
BM_SoftFloatAdd(benchmark::State &state)
{
    Rng rng(1);
    uint64_t a = rng.next(), b = rng.next();
    for (auto _ : state) {
        auto out = fp::fpExec(isa::Op::FaddD, a, b, 0, 0,
                              fp::FpBackend::Soft);
        benchmark::DoNotOptimize(out.value);
        a ^= out.value;
    }
}
BENCHMARK(BM_SoftFloatAdd);

void
BM_HostFloatAdd(benchmark::State &state)
{
    Rng rng(1);
    uint64_t a = rng.next(), b = rng.next();
    for (auto _ : state) {
        auto out = fp::fpExec(isa::Op::FaddD, a, b, 0, 0,
                              fp::FpBackend::Host);
        benchmark::DoNotOptimize(out.value);
        a ^= out.value;
    }
}
BENCHMARK(BM_HostFloatAdd);

void
BM_SoftFloatMul(benchmark::State &state)
{
    Rng rng(2);
    uint64_t a = rng.next(), b = rng.next();
    for (auto _ : state) {
        auto out = fp::fpExec(isa::Op::FmulD, a, b, 0, 0,
                              fp::FpBackend::Soft);
        benchmark::DoNotOptimize(out.value);
        a ^= out.value;
    }
}
BENCHMARK(BM_SoftFloatMul);

void
BM_HostFloatMul(benchmark::State &state)
{
    Rng rng(2);
    uint64_t a = rng.next(), b = rng.next();
    for (auto _ : state) {
        auto out = fp::fpExec(isa::Op::FmulD, a, b, 0, 0,
                              fp::FpBackend::Host);
        benchmark::DoNotOptimize(out.value);
        a ^= out.value;
    }
}
BENCHMARK(BM_HostFloatMul);

void
BM_Decode32(benchmark::State &state)
{
    // A mix of realistic encodings.
    std::vector<uint32_t> words;
    Rng rng(3);
    for (int i = 0; i < 256; ++i) {
        isa::DecodedInst di;
        di.op = static_cast<isa::Op>(
            1 + rng.below(static_cast<uint64_t>(isa::Op::NumOps) - 1));
        di.rd = static_cast<uint8_t>(rng.below(32));
        di.rs1 = static_cast<uint8_t>(rng.below(32));
        di.rs2 = static_cast<uint8_t>(rng.below(32));
        uint32_t w = isa::encode(di);
        words.push_back(w ? w : 0x00000013);
    }
    size_t i = 0;
    for (auto _ : state) {
        auto di = isa::decode32(words[i++ & 255]);
        benchmark::DoNotOptimize(di.op);
    }
}
BENCHMARK(BM_Decode32);

void
BM_TagePredictUpdate(benchmark::State &state)
{
    uarch::Tage tage;
    Rng rng(4);
    Addr pc = 0x80000000;
    for (auto _ : state) {
        auto p = tage.predict(pc);
        bool taken = rng.chance(70);
        tage.pushHistory(taken);
        tage.update(p, taken);
        pc = 0x80000000 + (rng.below(512) << 2);
        benchmark::DoNotOptimize(p.taken);
    }
}
BENCHMARK(BM_TagePredictUpdate);

void
BM_CacheHit(benchmark::State &state)
{
    uarch::MemCfg cfg;
    uarch::MemHierarchy mem(cfg, 1);
    mem.load(0, 0x80001000, 0x80001000, 0); // warm
    Cycle now = 10;
    for (auto _ : state) {
        unsigned lat = mem.load(0, 0x80001000, 0x80001000, now++);
        benchmark::DoNotOptimize(lat);
    }
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissToDram(benchmark::State &state)
{
    uarch::MemCfg cfg;
    cfg.l1d.sizeBytes = 4096; // tiny: every new line misses everywhere
    cfg.l2.sizeBytes = 8192;
    uarch::MemHierarchy mem(cfg, 1);
    Addr a = 0x80000000;
    Cycle now = 0;
    for (auto _ : state) {
        unsigned lat = mem.load(0, a, a, now++);
        benchmark::DoNotOptimize(lat);
        a += 64 * 1024; // always a fresh set of lines
        if (a > 0x90000000)
            a = 0x80000000;
    }
}
BENCHMARK(BM_CacheMissToDram);

} // namespace

BENCHMARK_MAIN();
