/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Every bench binary prints the rows/series of one exhibit from the
 * paper's evaluation. Absolute numbers differ from the paper (our
 * substrate is a C++ cycle model, not the authors' RTL/FPGA/ASIC); the
 * *shape* — orderings, ratios, crossovers — is the reproduction target
 * (see EXPERIMENTS.md).
 */

#ifndef MINJIE_BENCH_BENCH_UTIL_H
#define MINJIE_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/clock.h"
#include "workload/programs.h"
#include "xiangshan/soc.h"

namespace bench {

using namespace minjie;
namespace wl = minjie::workload;

/** FAST=1 in the environment trims suites for smoke runs. */
inline bool
fastMode()
{
    const char *f = std::getenv("FAST");
    return f && f[0] == '1';
}

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0;
    double logSum = 0;
    for (double v : vals)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(vals.size()));
}

/**
 * Run @p prog on a fresh Soc with @p cfg until it finishes or
 * @p maxInstrs commit; returns the measured IPC.
 */
inline double
measureIpc(const xs::CoreConfig &cfg, const wl::Program &prog,
           InstCount maxInstrs, Cycle maxCycles = 400'000'000)
{
    xs::Soc soc(cfg);
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);
    // First half warms caches/predictors; IPC measured on the rest.
    soc.runUntilInstrs(maxInstrs / 2, maxCycles);
    Cycle warmCycles = soc.core(0).perf().cycles;
    InstCount warmInstrs = soc.core(0).perf().instrs;
    soc.runUntilInstrs(maxInstrs, maxCycles);
    InstCount di = soc.core(0).perf().instrs - warmInstrs;
    Cycle dc = soc.core(0).perf().cycles - warmCycles;
    return dc ? static_cast<double>(di) / static_cast<double>(dc) : 0.0;
}

inline void
hr(char c = '-', int n = 72)
{
    for (int i = 0; i < n; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace bench

#endif // MINJIE_BENCH_BENCH_UTIL_H
