/**
 * @file
 * Ablations of the NH design choices called out in DESIGN.md: macro-op
 * fusion, move elimination, split STA/STD, ITTAGE, and the L3 cache.
 * Each row disables one feature from the full NH configuration and
 * reports the IPC delta on frontend- and memory-sensitive proxies.
 */

#include "bench_util.h"

using namespace bench;
using minjie::xs::CoreConfig;

int
main()
{
    bool fast = fastMode();
    // Memory-bound benchmarks need long enough runs for reuse to form,
    // or the L3 ablation only sees compulsory misses (where an extra
    // level can only add latency).
    auto budgetFor = [&](const wl::ProxySpec &spec) -> InstCount {
        InstCount b = spec.wsKB >= 4096 ? 1'500'000 : 400'000;
        return fast ? b / 8 : b;
    };

    struct Variant
    {
        const char *name;
        CoreConfig cfg;
    };
    std::vector<Variant> variants;
    variants.push_back({"NH (full)", CoreConfig::nh()});
    {
        auto c = CoreConfig::nh();
        c.fusion = false;
        variants.push_back({"- fusion", c});
    }
    {
        auto c = CoreConfig::nh();
        c.moveElim = false;
        variants.push_back({"- move elim", c});
    }
    {
        auto c = CoreConfig::nh();
        c.splitStaStd = false;
        variants.push_back({"- split STA/STD", c});
    }
    {
        auto c = CoreConfig::nh();
        c.hasIttage = false;
        variants.push_back({"- ITTAGE", c});
    }
    {
        auto c = CoreConfig::nh();
        c.mem.l3.reset();
        variants.push_back({"- L3 cache", c});
    }
    {
        auto c = CoreConfig::nh();
        c.ubtbEntries = 32;
        variants.push_back({"- big uBTB (32)", c});
    }

    // Mixed-frontend, memory-bound and fp-heavy benchmarks.
    const auto benches = {wl::specIntSuite()[1],   // gcc
                          wl::specIntSuite()[8],   // omnetpp
                          wl::specFpSuite()[0]};   // bwaves

    std::printf("=== NH feature ablations (IPC; delta vs full NH) "
                "===\n");
    std::printf("(caveat: bounded simulation windows over-weight "
                "compulsory misses, so\n removing the L3 can look "
                "beneficial on L2-resident workloads -- each cold\n "
                "miss saves the L3 lookup. bwaves' reused multi-MB "
                "grid shows the real\n capacity benefit.)\n\n");
    for (const auto &spec : benches) {
        auto prog = wl::buildProxy(spec, 1'000'000);
        std::printf("%s:\n", spec.name);
        std::printf("  %-18s %10s %9s\n", "variant", "ipc", "delta");
        hr('-', 42);
        double base = 0;
        for (size_t i = 0; i < variants.size(); ++i) {
            double ipc = measureIpc(variants[i].cfg, prog,
                                    budgetFor(spec));
            if (i == 0)
                base = ipc;
            std::printf("  %-18s %10.3f %+8.2f%%\n", variants[i].name,
                        ipc, base ? 100.0 * (ipc / base - 1) : 0.0);
        }
        std::printf("\n");
    }
    return 0;
}
