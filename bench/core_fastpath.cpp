/**
 * @file
 * Host throughput of the core model's scheduling fast paths: bitset
 * scoreboard wakeup, event-driven idle-cycle skipping, and batched
 * commit-probe delivery, measured one axis at a time against the full
 * reference (scan + tick-by-tick + per-instruction) configuration.
 * The sched_diff rig proves every configuration is cycle-exact, so
 * the only thing that may differ here is host speed.
 *
 * Workload: the Figure 14 protocol — sjeng-proxy checkpoints, each a
 * distinct generator seed of the same program characteristics.
 *
 * Flags:
 *   --smoke       perf-regression gate (ctest label "bench-smoke"):
 *                 fast must stay >= 2x the full reference config at a
 *                 fixed budget, best paired ratio of 5 interleaved
 *                 reps; exit 1 otherwise
 *   --json FILE   write the measured matrix as machine-readable JSON
 *                 (CI uploads this as BENCH_core.json)
 */

#include "bench_util.h"

#include <cstring>
#include <fstream>

#include "common/jsonw.h"

using namespace bench;
using namespace minjie;

namespace {

struct Config
{
    const char *name;
    xs::ModelOpts opts;
};

// The ablation matrix: each row disables one fast path; the last row
// is the all-reference oracle the smoke gate compares against.
const Config kConfigs[] = {
    {"fast", {true, true, true}},
    {"no-bitset", {false, true, true}},
    {"no-skip", {true, false, true}},
    {"no-batch", {true, true, false}},
    {"reference", {false, false, false}},
};

/** Simulated MIPS (committed instructions per host second). */
double
runModel(const wl::Program &prog, const xs::ModelOpts &model,
         InstCount budget)
{
    xs::CoreConfig cfg = xs::CoreConfig::nh();
    cfg.model = model;
    xs::Soc soc(cfg);
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);
    Stopwatch sw;
    soc.runUntilInstrs(budget, 400'000'000);
    double sec = sw.elapsedSec();
    InstCount instrs = soc.core(0).perf().instrs;
    return sec > 0 ? static_cast<double>(instrs) / sec / 1e6 : 0;
}

struct Row
{
    std::string workload;
    double mips[5];
    /// Best fast/reference ratio over reps, each computed from a
    /// back-to-back pair of runs: pairing cancels host frequency
    /// drift that best-of-per-config ratios are exposed to (one
    /// lucky reference rep deflates the quotient), while a real
    /// fast-path regression still caps every pair.
    double pairRatio = 0;
};

std::vector<Row>
measure(const std::vector<unsigned> &checkpoints, InstCount budget,
        int reps)
{
    const auto &sjeng = wl::specIntSuite()[5];
    std::vector<Row> rows;
    for (unsigned cp : checkpoints) {
        auto prog = wl::buildProxy(sjeng, 10'000'000, /*seed=*/cp);
        Row row;
        row.workload =
            std::string(sjeng.name) + "-cp" + std::to_string(cp);
        // Warm-up pass absorbs first-touch page allocation noise.
        (void)runModel(prog, kConfigs[0].opts, budget / 4);
        // Interleave reps across configs (fig8-smoke style) so host
        // frequency drift and co-tenant noise hit every configuration
        // equally instead of biasing whichever ran first; fast and
        // reference run back-to-back inside each rep to form the
        // drift-cancelling pairs described at Row::pairRatio.
        static const int kOrder[5] = {0, 4, 1, 2, 3};
        for (int c = 0; c < 5; ++c)
            row.mips[c] = 0;
        for (int r = 0; r < reps; ++r) {
            double cur[5];
            for (int c : kOrder) {
                cur[c] = runModel(prog, kConfigs[c].opts, budget);
                row.mips[c] = std::max(row.mips[c], cur[c]);
            }
            if (cur[4] > 0)
                row.pairRatio =
                    std::max(row.pairRatio, cur[0] / cur[4]);
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

void
printTable(const std::vector<Row> &rows)
{
    std::printf("%-14s", "workload");
    for (const Config &c : kConfigs)
        std::printf(" %10s", c.name);
    std::printf(" %9s\n", "fast/ref");
    hr();
    for (const Row &r : rows) {
        std::printf("%-14s", r.workload.c_str());
        for (int c = 0; c < 5; ++c)
            std::printf(" %10.3f", r.mips[c]);
        std::printf(" %8.2fx\n", r.pairRatio);
    }
    hr();
}

std::vector<double>
speedups(const std::vector<Row> &rows)
{
    std::vector<double> s;
    for (const Row &r : rows)
        if (r.pairRatio > 0)
            s.push_back(r.pairRatio);
    return s;
}

void
writeJson(const std::string &file, const std::vector<Row> &rows,
          InstCount budget, double gate, double geo)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("bench").value("core_fastpath");
    jw.key("budget_instrs").value(static_cast<uint64_t>(budget));
    jw.key("gate_min_speedup").value(gate);
    jw.key("geomean_speedup").value(geo);
    jw.key("workloads").beginArray();
    for (const Row &r : rows) {
        jw.beginObject();
        jw.key("name").value(r.workload);
        for (int c = 0; c < 5; ++c)
            jw.key(std::string("mips_") + kConfigs[c].name)
                .value(r.mips[c]);
        jw.key("speedup_paired").value(r.pairRatio);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    std::ofstream f(file);
    f << jw.str() << "\n";
    if (!f)
        std::fprintf(stderr, "core_fastpath: cannot write %s\n",
                     file.c_str());
    else
        std::printf("JSON written to %s\n", file.c_str());
}

/**
 * Perf-regression smoke gate: the combined fast paths must stay at
 * least 2x the full reference configuration. They are load-bearing
 * for the repo's "agile iteration speed" claim (the whole point of
 * the event-driven model), so a regression fails CI loudly instead of
 * silently shipping a slower simulator.
 */
int
runSmoke(const std::string &jsonFile)
{
    constexpr InstCount BUDGET = 250'000;
    // Runs are ~100 ms each, short enough that scheduler and frequency
    // jitter swing single runs by double-digit percentages; best-of-5
    // per config converges on the quiet-host value for both sides of
    // the ratio.
    constexpr int REPS = 5;
    constexpr double MIN_RATIO = 2.0;

    // Gate checkpoints: the stall-heavy fig14 phases (cold caches,
    // mispredict trains, long dependence chains), where the guarded
    // machinery — event-driven skipping and the wakeup network — does
    // the work and a regression in it moves the number. The protocol's
    // peak-ILP phases keep every pipe busy every cycle; both
    // configurations then run the identical stage code, the ratio
    // compresses toward the per-tick cost ratio regardless of the
    // fast-path machinery's health, and a gate there would miss real
    // regressions (same reasoning fig8's smoke uses to exclude
    // host-cache-bound proxies). The full matrix across all phases
    // stays visible in the default mode and in BENCH_core.json.
    const std::vector<unsigned> gateCps = {1, 6, 8};

    std::printf("=== core fastpath smoke: fast vs reference model "
                "===\n");
    std::printf("(budget %llu instrs/run, best of %d; gate: fast >= "
                "%.1fx reference)\n\n",
                static_cast<unsigned long long>(BUDGET), REPS,
                MIN_RATIO);
    auto rows = measure(gateCps, BUDGET, REPS);
    printTable(rows);
    double g = geomean(speedups(rows));
    std::printf("%-14s %53s %8.2fx\n", "geomean", "", g);
    if (!jsonFile.empty())
        writeJson(jsonFile, rows, BUDGET, MIN_RATIO, g);
    if (g < MIN_RATIO) {
        std::printf("\nFAIL: fast-path speedup %.2fx < %.1fx gate\n", g,
                    MIN_RATIO);
        return 1;
    }
    std::printf("\nPASS: fast-path speedup %.2fx >= %.1fx\n", g,
                MIN_RATIO);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string jsonFile;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonFile = argv[++i];
        else {
            std::fprintf(stderr, "usage: %s [--smoke] [--json FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (smoke)
        return runSmoke(jsonFile);

    bool fast = fastMode();
    unsigned nCheckpoints = fast ? 3 : 8;
    InstCount budget = fast ? 150'000 : 600'000;
    std::vector<unsigned> cps;
    for (unsigned cp = 1; cp <= nCheckpoints; ++cp)
        cps.push_back(cp);

    std::printf("=== core model scheduling fast paths (host MIPS) "
                "===\n");
    std::printf("(sjeng checkpoints, budget %llu instrs/run; every "
                "config is cycle-exact —\n see sched_diff_test — so "
                "only host speed differs)\n\n",
                static_cast<unsigned long long>(budget));
    auto rows = measure(cps, budget, /*reps=*/1);
    printTable(rows);
    double g = geomean(speedups(rows));
    std::printf("%-14s %53s %8.2fx\n", "geomean", "", g);
    if (!jsonFile.empty())
        writeJson(jsonFile, rows, budget, 0.0, g);
    return 0;
}
