/**
 * @file
 * Figure 6: simulation time with LightSSS disabled vs enabled at
 * different snapshot intervals.
 *
 * The paper simulates single-core (CoreMark) and dual-core (SMP Linux
 * boot) XIANGSHAN with snapshot intervals from 1s to 60s and shows the
 * simulation time is flat — fork/COW overhead is in the noise. We run
 * the cycle model over the CoreMark proxy (single-core) and a memory
 * stress (dual-core stand-in for the boot workload) with intervals
 * scaled to our cycle counts.
 */

#include "bench_util.h"

#include "lightsss/lightsss.h"

using namespace bench;
using namespace minjie::lightsss;

namespace {

double
runWithInterval(unsigned nCores, const wl::Program &prog,
                Cycle interval /* 0 = disabled */, Cycle maxCycles)
{
    xs::Soc soc(xs::CoreConfig::nh(), nCores);
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);

    LightSSS sss({interval ? interval : 1, 2, interval != 0});
    Stopwatch sw;
    Cycle cycle = 0;
    while (cycle < maxCycles) {
        if (interval) {
            auto role = sss.tick(cycle);
            if (role == LightSSS::Role::ReplayChild)
                LightSSS::finishReplay(0); // never triggered here
        }
        bool allDone = true;
        Cycle consumed = 1;
        for (unsigned c = 0; c < soc.numCores(); ++c) {
            if (!soc.core(c).done()) {
                consumed = std::max(consumed,
                                    soc.core(c).tick(maxCycles - cycle));
                allDone = false;
            }
        }
        cycle += consumed;
        if (allDone)
            break;
    }
    double sec = sw.elapsedSec();
    sss.discardAll();
    return sec;
}

} // namespace

int
main()
{
    bool fast = fastMode();
    const Cycle maxCycles = fast ? 300'000 : 3'000'000;
    const uint64_t iters = fast ? 300 : 3000;

    // Intervals as fractions of the run, mirroring the paper's 1s-60s
    // sweep against a ~5.5 minute simulation.
    const Cycle intervals[] = {0, maxCycles / 64, maxCycles / 16,
                               maxCycles / 4, maxCycles / 2};
    const char *labels[] = {"disabled", "N/64", "N/16", "N/4", "N/2"};

    std::printf("=== Figure 6: simulation time vs LightSSS snapshot "
                "interval ===\n");
    std::printf("(run length %llu cycles; paper shape: flat across all "
                "intervals)\n\n",
                static_cast<unsigned long long>(maxCycles));

    for (unsigned cores = 1; cores <= 2; ++cores) {
        auto prog = cores == 1 ? wl::coremarkProxy(iters)
                               : wl::memStressProgram(iters * 30, 16);
        std::printf("%u-core XIANGSHAN (%s):\n", cores,
                    prog.name.c_str());
        std::printf("  %-10s %12s %10s\n", "interval", "sim time",
                    "vs off");
        double base = 0;
        for (unsigned i = 0; i < std::size(intervals); ++i) {
            double sec = runWithInterval(cores, prog, intervals[i],
                                         maxCycles);
            if (i == 0)
                base = sec;
            std::printf("  %-10s %10.3fs %9.1f%%\n", labels[i], sec,
                        base > 0 ? 100.0 * sec / base : 0.0);
        }
        std::printf("\n");
    }
    std::printf("expected shape: all rows within a few %% of 'disabled'"
                " (paper reports LightSSS overhead below measurement "
                "noise; LiveSim's comparable overhead is 10-20%%)\n");
    return 0;
}
