/**
 * @file
 * Figure 9 + Section III-D3: the architectural checkpoint flow.
 *
 * Demonstrates and measures: checkpoint generation speed with NEMU
 * (paper: >300 MIPS; CoreMark-PRO checkpoints), restore into the
 * XIANGSHAN cycle model, and resume-equivalence of the format.
 */

#include "bench_util.h"

#include "checkpoint/generator.h"
#include "iss/system.h"
#include "nemu/nemu.h"

using namespace bench;
using namespace minjie;
using namespace minjie::checkpoint;

int
main()
{
    bool fast = fastMode();
    uint64_t iters = fast ? 300 : 5000;

    std::printf("=== Figure 9 / Section III-D3: RISC-V architectural "
                "checkpoints ===\n\n");

    // CoreMark(-PRO) stand-in, as in the paper's artifact.
    auto prog = wl::coremarkProxy(iters);
    auto gen = generateCheckpoints(prog, fast ? 20'000 : 200'000, 8,
                                   200'000'000);

    std::printf("workload: %s (%llu instructions)\n", prog.name.c_str(),
                static_cast<unsigned long long>(gen.totalInsts));
    std::printf("checkpoints generated: %zu (paper artifact: 8)\n",
                gen.checkpoints.size());
    std::printf("BBV profiling speed:   %7.1f MIPS (instrumented "
                "interpreter)\n",
                gen.profileMips);
    std::printf("generation speed:      %7.1f MIPS (paper: >300 MIPS)\n",
                gen.generateMips);

    std::printf("\n%-6s %14s %10s %12s\n", "ckpt", "inst offset",
                "weight", "image bytes");
    hr('-', 48);
    for (size_t i = 0; i < gen.checkpoints.size(); ++i) {
        const auto &cp = gen.checkpoints[i];
        std::printf("%-6zu %14llu %9.1f%% %12zu\n", i,
                    static_cast<unsigned long long>(cp.instCount),
                    cp.weight * 100.0, cp.bytes.size());
    }

    // Restore-and-run on XIANGSHAN (the "XIANGSHAN is able to restore
    // and run the generated RISC-V checkpoint" artifact step).
    std::printf("\nrestoring checkpoint 0 into the XIANGSHAN cycle "
                "model...\n");
    xs::Soc soc(xs::CoreConfig::nh());
    if (!gen.checkpoints.empty() &&
        restore(gen.checkpoints[0], soc.core(0).oracleState(),
                soc.system().dram)) {
        auto r = soc.runUntilInstrs(fast ? 5'000 : 50'000, 100'000'000);
        std::printf("ran %llu instructions in %llu cycles (ipc %.3f): "
                    "%s\n",
                    static_cast<unsigned long long>(
                        soc.core(0).perf().instrs),
                    static_cast<unsigned long long>(
                        soc.core(0).perf().cycles),
                    soc.core(0).perf().ipc(),
                    r.completed ? "OK" : "FAILED");
    } else {
        std::printf("restore FAILED\n");
        return 1;
    }
    return 0;
}
