/**
 * @file
 * Figure 14: IPC difference with PUBS enabled on ten sjeng checkpoints.
 *
 * The paper's feature-exploration case study implements Prioritizing
 * Unconfident Branch Slices [Ando, MICRO'18] on XIANGSHAN and observes
 * NO visible IPC change vs the AGE baseline (whereas the original PUBS
 * paper reported +6.5% on sjeng on a narrower machine) — the wide
 * XIANGSHAN issue rarely has more ready instructions than issue slots.
 */

#include "bench_util.h"

using namespace bench;
using minjie::xs::CoreConfig;
using minjie::xs::IssuePolicy;

int
main()
{
    bool fast = fastMode();
    unsigned nCheckpoints = fast ? 3 : 10;
    InstCount budget = fast ? 60'000 : 300'000;

    const auto &sjeng = wl::specIntSuite()[5];

    std::printf("=== Figure 14: IPC difference with PUBS enabled "
                "(sjeng checkpoints) ===\n");
    std::printf("(paper shape: ~0%% across all checkpoints; the PUBS "
                "paper's own result was +6.5%%)\n\n");
    std::printf("%-12s %10s %10s %10s %12s\n", "checkpoint", "AGE ipc",
                "PUBS ipc", "delta", "hi-pri frac");
    hr('-', 60);

    std::vector<double> deltas;
    for (unsigned cp = 0; cp < nCheckpoints; ++cp) {
        // Each "checkpoint" is a distinct program fragment: the same
        // sjeng characteristics with a different generator seed.
        auto prog = wl::buildProxy(sjeng, 10'000'000, /*seed=*/cp + 1);

        CoreConfig age = CoreConfig::nh();
        age.policy = IssuePolicy::Age;
        double ageIpc = measureIpc(age, prog, budget);

        CoreConfig pubsCfg = CoreConfig::nh();
        pubsCfg.policy = IssuePolicy::Pubs;
        // Identical warm-measurement protocol for both policies.
        xs::Soc soc(pubsCfg);
        prog.loadInto(soc.system().dram);
        soc.setEntry(prog.entry);
        soc.runUntilInstrs(budget / 2, 400'000'000);
        Cycle wc = soc.core(0).perf().cycles;
        InstCount wi = soc.core(0).perf().instrs;
        soc.runUntilInstrs(budget, 400'000'000);
        double pubsIpc =
            static_cast<double>(soc.core(0).perf().instrs - wi) /
            static_cast<double>(
                std::max<Cycle>(1, soc.core(0).perf().cycles - wc));
        double hiFrac =
            100.0 *
            static_cast<double>(soc.core(0).perf().highPriorityInsts) /
            static_cast<double>(
                std::max<uint64_t>(1, soc.core(0).perf().instrs));

        double delta = ageIpc > 0 ? 100.0 * (pubsIpc / ageIpc - 1) : 0;
        deltas.push_back(delta);
        std::printf("sjeng_%-6u %10.3f %10.3f %+9.2f%% %11.1f%%\n",
                    cp, ageIpc, pubsIpc, delta, hiFrac);
    }
    hr('-', 60);
    double sum = 0, mx = 0;
    for (double d : deltas) {
        sum += d;
        mx = std::max(mx, std::abs(d));
    }
    std::printf("average delta: %+.2f%%  max |delta|: %.2f%%\n",
                sum / static_cast<double>(deltas.size()), mx);
    std::printf("(paper: no visible performance deviation; ~5.9%% of "
                "instructions were high-priority)\n");
    return 0;
}
