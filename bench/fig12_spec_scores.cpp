/**
 * @file
 * Figure 12: SPEC CPU2006 scores of the XIANGSHAN generations across
 * evaluation platforms.
 *
 * The paper's series and headline numbers (SPEC/GHz):
 *   YQH-ASIC-DDR4-1600          int 7.03 / fp 7.00
 *   YQH-FPGA-90C-AMAT           int 6.87 / fp 7.23
 *   NH-2MBLLC-FPGA-250C-AMAT    (4MB is +8.9% int / +5.4% fp over this)
 *   NH-4MBLLC-FPGA-250C-AMAT    int 7.94 / fp 9.27
 *   RTL-sim DDR4-2400           YQH 7.67, NH 10.06
 *   GEM5-aligned model          ~7/GHz (~30% below NH; Section II-E)
 *
 * SPEC/GHz is proportional to IPC (the paper cites exactly this), so we
 * report IPC per benchmark and geomeans per configuration; the target
 * shape is the ordering and the ratios, not absolute values.
 */

#include "bench_util.h"

#include "checkpoint/generator.h"
#include "sample/engine.h"

using namespace bench;
using minjie::uarch::DramCfg;
using minjie::xs::CoreConfig;

namespace {

struct ConfigRow
{
    const char *name;
    CoreConfig cfg;
};

std::vector<ConfigRow>
makeConfigs()
{
    std::vector<ConfigRow> rows;

    {
        CoreConfig c = CoreConfig::yqh();
        c.mem.dram.mode = DramCfg::Mode::Ddr;
        c.mem.dram.ddrBase = 200; // DDR4-1600 at 1.3 GHz
        c.mem.dram.ddrRowHit = 130;
        rows.push_back({"YQH-ASIC-DDR4-1600", c});
    }
    {
        CoreConfig c = CoreConfig::yqh();
        c.mem.dram.mode = DramCfg::Mode::FixedAmat;
        c.mem.dram.amatCycles = 90;
        rows.push_back({"YQH-FPGA-90C-AMAT", c});
    }
    {
        CoreConfig c = CoreConfig::nh();
        c.mem.l3->sizeBytes = 2 * 1024 * 1024;
        c.mem.dram.mode = DramCfg::Mode::FixedAmat;
        c.mem.dram.amatCycles = 250;
        rows.push_back({"NH-2MBLLC-FPGA-250C", c});
    }
    {
        CoreConfig c = CoreConfig::nh();
        c.mem.l3->sizeBytes = 4 * 1024 * 1024;
        c.mem.dram.mode = DramCfg::Mode::FixedAmat;
        c.mem.dram.amatCycles = 250;
        rows.push_back({"NH-4MBLLC-FPGA-250C", c});
    }
    {
        CoreConfig c = CoreConfig::yqh();
        c.mem.dram.mode = DramCfg::Mode::Ddr;
        c.mem.dram.ddrBase = 160; // DDR4-2400 at 1.3 GHz
        c.mem.dram.ddrRowHit = 105;
        rows.push_back({"YQH-RTLSIM-DDR4-2400", c});
    }
    {
        CoreConfig c = CoreConfig::nh(); // 6MB LLC
        c.mem.dram.mode = DramCfg::Mode::Ddr;
        c.mem.dram.ddrBase = 170; // DDR4-2400 at 2 GHz
        c.mem.dram.ddrRowHit = 110;
        rows.push_back({"NH-RTLSIM-DDR4-2400", c});
    }
    {
        CoreConfig c = CoreConfig::gem5ish();
        c.mem.dram.mode = DramCfg::Mode::Ddr;
        c.mem.dram.ddrBase = 170;
        c.mem.dram.ddrRowHit = 110;
        rows.push_back({"GEM5ish-DDR4-2400", c});
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = fastMode();
    // --sample N: evaluate each (benchmark, config) cell with the
    // fork-fanout sampled engine over N workers instead of one full
    // detailed run — the paper's Fig. 12 methodology (profile once,
    // run SimPoint slices per configuration).
    unsigned sampleWorkers = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--sample" && i + 1 < argc)
            sampleWorkers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
    }
    // Memory-bound benchmarks need enough instructions for their
    // ~2.6MB chase footprint to be re-walked (LLC capacity effects);
    // cache-resident ones settle much sooner.
    auto budgetFor = [&](const wl::ProxySpec &spec) -> InstCount {
        InstCount b = spec.wsKB >= 4096 ? 1'500'000 : 400'000;
        return fast ? b / 8 : b;
    };
    uint64_t iterations = 10'000'000; // instruction budget dominates

    auto configs = makeConfigs();
    auto intSuite = wl::specIntSuite();
    auto fpSuite = wl::specFpSuite();
    if (fast) {
        intSuite.resize(3);
        fpSuite.resize(2);
    }

    std::printf("=== Figure 12: SPEC CPU2006 proxy scores (IPC; "
                "SPEC/GHz is proportional to IPC) ===\n\n");

    std::vector<std::vector<double>> intIpc(configs.size());
    std::vector<std::vector<double>> fpIpc(configs.size());

    auto runSuite = [&](const char *title,
                        const std::vector<wl::ProxySpec> &suite,
                        std::vector<std::vector<double>> &out) {
        std::printf("%s\n%-18s", title, "benchmark");
        for (const auto &c : configs)
            std::printf(" %*s", 20, c.name);
        std::printf("\n");
        hr('-', 18 + 21 * static_cast<int>(configs.size()));
        for (const auto &spec : suite) {
            std::printf("%-18s", spec.name);
            std::fflush(stdout);
            auto prog = wl::buildProxy(spec, iterations);
            InstCount budget = budgetFor(spec);

            // Sampled mode: one profiling pass per benchmark, then
            // every configuration evaluates the same checkpoint pack.
            minjie::sample::PackReader pack;
            if (sampleWorkers > 0) {
                auto gen = minjie::checkpoint::generateCheckpoints(
                    prog, budget / 5, 3, budget);
                pack.openMemory(minjie::sample::packFromGen(gen));
            }
            for (size_t i = 0; i < configs.size(); ++i) {
                double ipc;
                if (sampleWorkers > 0 && pack.valid()) {
                    minjie::sample::SampleConfig scfg;
                    scfg.workers = sampleWorkers;
                    scfg.warmupInsts = budget / 20;
                    scfg.measureInsts = budget / 10;
                    scfg.coreCfg = configs[i].cfg;
                    ipc = minjie::sample::runSampled(pack, scfg)
                              .weightedIpc();
                } else {
                    ipc = measureIpc(configs[i].cfg, prog, budget);
                }
                out[i].push_back(ipc);
                std::printf(" %20.3f", ipc);
                std::fflush(stdout);
            }
            std::printf("\n");
        }
        std::printf("%-18s", "geomean");
        for (size_t i = 0; i < configs.size(); ++i)
            std::printf(" %20.3f", geomean(out[i]));
        std::printf("\n\n");
    };

    runSuite("SPECint 2006 proxies:", intSuite, intIpc);
    runSuite("SPECfp 2006 proxies:", fpSuite, fpIpc);

    // ---- the paper's headline comparisons ----
    auto find = [&](const char *name) -> int {
        for (size_t i = 0; i < configs.size(); ++i)
            if (std::string(configs[i].name) == name)
                return static_cast<int>(i);
        return -1;
    };
    int yqhDdr = find("YQH-RTLSIM-DDR4-2400");
    int nhDdr = find("NH-RTLSIM-DDR4-2400");
    int nh2 = find("NH-2MBLLC-FPGA-250C");
    int nh4 = find("NH-4MBLLC-FPGA-250C");
    int gem5 = find("GEM5ish-DDR4-2400");

    std::printf("=== headline ratios (paper values in parentheses) "
                "===\n");
    if (yqhDdr >= 0 && nhDdr >= 0) {
        double gInt = geomean(intIpc[nhDdr]) / geomean(intIpc[yqhDdr]);
        double gFp = geomean(fpIpc[nhDdr]) / geomean(fpIpc[yqhDdr]);
        std::printf("NH vs YQH (RTL-sim):   int %.2fx fp %.2fx  "
                    "(paper: 10.06/7.67 = 1.31x overall)\n",
                    gInt, gFp);
    }
    if (nh2 >= 0 && nh4 >= 0) {
        double dInt = 100.0 * (geomean(intIpc[nh4]) /
                                   geomean(intIpc[nh2]) - 1.0);
        double dFp = 100.0 * (geomean(fpIpc[nh4]) /
                                  geomean(fpIpc[nh2]) - 1.0);
        std::printf("NH 4MB vs 2MB LLC:     int %+.1f%% fp %+.1f%%  "
                    "(paper: +8.9%% int, +5.4%% fp)\n",
                    dInt, dFp);
    }
    if (gem5 >= 0 && nhDdr >= 0) {
        double g = 100.0 * (1.0 - geomean(intIpc[gem5]) /
                                      geomean(intIpc[nhDdr]));
        std::printf("GEM5ish below NH:      int -%.1f%%  (paper: ~30%% "
                    "less than XIANGSHAN)\n",
                    g);
    }
    return 0;
}
