/**
 * @file
 * Table II (tape-out micro-architecture parameters) and Table III
 * (YQH physical implementation), rendered from the live CoreConfig
 * presets so the table can never drift from the model.
 */

#include "bench_util.h"

using namespace bench;
using minjie::xs::CoreConfig;

namespace {

std::string
cacheStr(const minjie::uarch::CacheCfg &c)
{
    char buf[64];
    if (c.sizeBytes >= 1024 * 1024)
        std::snprintf(buf, sizeof(buf), "%lluMB %u-way%s",
                      static_cast<unsigned long long>(c.sizeBytes >> 20),
                      c.ways, c.inclusive ? " incl" : " non-incl");
    else
        std::snprintf(buf, sizeof(buf), "%lluKB %u-way",
                      static_cast<unsigned long long>(c.sizeBytes >> 10),
                      c.ways);
    return buf;
}

void
row(const char *feature, const std::string &yqh, const std::string &nh)
{
    std::printf("%-20s %-22s %-22s\n", feature, yqh.c_str(), nh.c_str());
}

} // namespace

int
main()
{
    auto yqh = CoreConfig::yqh();
    auto nh = CoreConfig::nh();

    std::printf("=== Table II: tape-out micro-architecture parameters "
                "===\n");
    row("Feature", "YQH", "NH");
    hr();
    row("ISA", "RV64GC", "RV64GCBK");
    row("Process Node", "28nm", "14nm");
    row("Frequency", "1.3GHz", "2GHz");
    row("Core Number", "1", "2");
    row("microBTB", std::to_string(yqh.ubtbEntries) + " entries",
        std::to_string(nh.ubtbEntries) + " entries");
    row("BTB", std::to_string(yqh.btbEntries / 1024) + "K entries",
        std::to_string(nh.btbEntries / 1024) + "K entries");
    row("TAGE-SC", std::to_string(yqh.tageEntries / 1024) + "K entries",
        std::to_string(nh.tageEntries / 1024) + "K entries");
    row("Others", yqh.hasIttage ? "RAS, ITTAGE" : "RAS",
        nh.hasIttage ? "RAS, ITTAGE" : "RAS");
    row("L1 ICache", cacheStr(yqh.mem.l1i), cacheStr(nh.mem.l1i));
    row("L1+ Cache",
        yqh.mem.l1plus ? cacheStr(*yqh.mem.l1plus) : "-",
        nh.mem.l1plus ? cacheStr(*nh.mem.l1plus) : "-");
    row("L1 DCache", cacheStr(yqh.mem.l1d), cacheStr(nh.mem.l1d));
    row("L2 Cache", cacheStr(yqh.mem.l2), cacheStr(nh.mem.l2));
    row("L3 Cache", yqh.mem.l3 ? cacheStr(*yqh.mem.l3) : "-",
        nh.mem.l3 ? cacheStr(*nh.mem.l3) : "-");
    row("L1 ITLB", std::to_string(yqh.mem.itlb.entries) + " entries",
        std::to_string(nh.mem.itlb.entries) + " entries");
    row("L1 DTLB", std::to_string(yqh.mem.dtlb.entries) + " entries",
        std::to_string(nh.mem.dtlb.entries) + " entries");
    row("STLB", std::to_string(yqh.mem.stlb.entries) + " entries",
        std::to_string(nh.mem.stlb.entries) + " entries");
    row("Fetch Width",
        std::to_string(yqh.fetchWidth) + "*4B instr./cycle",
        std::to_string(nh.fetchWidth) + "*4B instr./cycle");
    row("Dec./Ren. Width",
        std::to_string(yqh.decodeWidth) + " instr./cycle",
        std::to_string(nh.decodeWidth) + " instr./cycle");
    row("ROB/LQ/SQ",
        std::to_string(yqh.robSize) + "/" + std::to_string(yqh.lqSize) +
            "/" + std::to_string(yqh.sqSize),
        std::to_string(nh.robSize) + "/" + std::to_string(nh.lqSize) +
            "/" + std::to_string(nh.sqSize));
    row("Phy. Int/FP RF",
        std::to_string(yqh.intPrf) + "/" + std::to_string(yqh.fpPrf),
        std::to_string(nh.intPrf) + "/" + std::to_string(nh.fpPrf));
    row("Store pipes", yqh.splitStaStd ? "STA, STD" : "ST (unified)",
        nh.splitStaStd ? "STA, STD" : "ST (unified)");
    row("Instruction Fusion", yqh.fusion ? "Yes" : "-",
        nh.fusion ? "Yes" : "-");
    row("Move Elimination", yqh.moveElim ? "Yes" : "-",
        nh.moveElim ? "Yes" : "-");

    std::printf("\n=== Table III: YQH physical implementation "
                "(paper-reported; not reproducible in C++) ===\n");
    hr();
    std::printf("%-20s %s\n", "Die Size", "8.6 mm^2");
    std::printf("%-20s %s\n", "Std Cell Num/Area", "5053679, 4.27 mm^2");
    std::printf("%-20s %s\n", "Mem Num/Area", "261, 1.7 mm^2");
    std::printf("%-20s %s\n", "Density", "66%");
    std::printf("%-20s %s\n", "Cell",
                "ULVT 1.04%, LVT 19.32%, SVT 25.19%, HVT 53.67%");
    std::printf("%-20s %s\n", "Power", "5W");
    std::printf("%-20s %s\n", "Frequency", "1.3 GHz, TT85C");
    return 0;
}
