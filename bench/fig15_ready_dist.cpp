/**
 * @file
 * Figure 15: fraction of cycles by number of ready instructions in the
 * (dual-issue) reservation stations, with PUBS disabled.
 *
 * The paper's analysis: on sjeng, more than two instructions are ready
 * in only ~12.8% of RS-cycles, so a prioritizing issue policy has
 * almost nothing to reorder — explaining Figure 14's null result.
 */

#include "bench_util.h"

using namespace bench;
using minjie::xs::CoreConfig;
using minjie::xs::PerfCounters;

int
main()
{
    bool fast = fastMode();
    InstCount budget = fast ? 60'000 : 500'000;

    auto prog = wl::buildProxy(wl::specIntSuite()[5], 1'000'000); // sjeng
    CoreConfig cfg = CoreConfig::nh(); // AGE policy (PUBS disabled)

    xs::Soc soc(cfg);
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);
    soc.runUntilInstrs(budget, 400'000'000);
    const PerfCounters &p = soc.core(0).perf();

    std::printf("=== Figure 15: ready-instruction distribution in the "
                "dual-issue RSes (sjeng, PUBS off) ===\n\n");
    std::printf("%-14s %12s %10s\n", "#ready insts", "RS-cycles",
                "fraction");
    hr('-', 40);
    double moreThanTwo = 0;
    double expectedBlocking = 0;
    for (unsigned b = 0; b < PerfCounters::READY_BUCKETS; ++b) {
        double frac = p.readySamples
            ? 100.0 * static_cast<double>(p.readyHist[b]) /
                  static_cast<double>(p.readySamples)
            : 0.0;
        char label[16];
        if (b == PerfCounters::READY_BUCKETS - 1)
            std::snprintf(label, sizeof(label), "%u+", b);
        else
            std::snprintf(label, sizeof(label), "%u", b);
        std::printf("%-14s %12llu %9.2f%%\n", label,
                    static_cast<unsigned long long>(p.readyHist[b]),
                    frac);
        if (b > 2) {
            moreThanTwo += frac;
            expectedBlocking += (b - 2) * frac / 100.0;
        }
    }
    hr('-', 40);
    std::printf("cycles with >2 ready: %.1f%%  (paper: 12.8%%)\n",
                moreThanTwo);
    std::printf("avg blocked insts/RS-cycle: %.3f  (paper: 0.215)\n",
                expectedBlocking);
    std::printf("\ninterpretation: selection policy only matters in the "
                ">2-ready cycles; their rarity is why PUBS shows no "
                "speedup on this machine (Figure 14).\n");
    return 0;
}
