/**
 * @file
 * Top-down observability vs the event-driven scheduler fast path: the
 * idle-skip must be invisible to the CPI stack. Skipped cycles are
 * charged to the same buckets the reference tick-by-tick model would
 * have charged, so the stack still partitions the cycle count exactly
 * and the rendered `minjie-trace topdown` table is byte-identical with
 * the skip on or off. Only the sched.* host-speed metadata (which is
 * deliberately outside PerfCounters) is allowed to differ.
 */

#include <gtest/gtest.h>

#include "obs/collect.h"
#include "obs/topdown.h"
#include "workload/programs.h"
#include "xiangshan/soc.h"

namespace {

using namespace minjie;
using namespace minjie::obs;
namespace wl = minjie::workload;

CounterSnapshot
runAndCollect(const wl::Program &prog, bool skipAhead, Cycle maxCycles)
{
    xs::CoreConfig cfg = xs::CoreConfig::nh();
    cfg.model.skipAhead = skipAhead;
    xs::Soc soc(cfg);
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);
    soc.run(maxCycles);
    CounterGroup root;
    collectSoc(root, soc);
    return root.snapshot();
}

TEST(TopdownSkip, CpiStackUnchangedBySkip)
{
    auto prog = wl::coremarkProxy(30);
    CounterSnapshot fast = runAndCollect(prog, true, 500'000);
    CounterSnapshot ref = runAndCollect(prog, false, 500'000);

    CpiStack stFast = CpiStack::fromCounters(fast, "core0");
    CpiStack stRef = CpiStack::fromCounters(ref, "core0");

    // Both configurations keep the exact-sum invariant...
    ASSERT_GT(stFast.cycles, 0u);
    EXPECT_TRUE(stFast.sumsExactly())
        << "bucket sum " << stFast.bucketSum() << " != cycles "
        << stFast.cycles;
    EXPECT_TRUE(stRef.sumsExactly());

    // ...and agree bucket-for-bucket.
    EXPECT_EQ(stFast.cycles, stRef.cycles);
    EXPECT_EQ(stFast.instrs, stRef.instrs);
    EXPECT_EQ(stFast.retiring, stRef.retiring);
    EXPECT_EQ(stFast.frontend, stRef.frontend);
    EXPECT_EQ(stFast.badSpec, stRef.badSpec);
    EXPECT_EQ(stFast.backendMem, stRef.backendMem);
    EXPECT_EQ(stFast.backendCore, stRef.backendCore);

    // The rendered artifacts `minjie-trace topdown` emits must be
    // byte-identical: a user reading a report cannot tell (and must
    // not have to care) which scheduler configuration produced it.
    EXPECT_EQ(stFast.table("core0"), stRef.table("core0"));
    EXPECT_EQ(stFast.toJson(), stRef.toJson());

    // The skip did actually engage — this test must not pass vacuously.
    EXPECT_GT(fast.get("core0.sched.skipped_cycles"), 0u);
    EXPECT_GT(fast.get("core0.sched.skip_jumps"), 0u);
    EXPECT_EQ(ref.get("core0.sched.skipped_cycles"), 0u);
    EXPECT_EQ(ref.get("core0.sched.skip_jumps"), 0u);
}

TEST(TopdownSkip, EverySnapshotCounterMatchesExceptSchedMeta)
{
    // Stronger than the stack: the entire collected snapshot (caches,
    // TLBs, MMU, ready histogram, ...) must match; only the sched.*
    // host-speed metadata group may differ between configurations.
    auto prog = wl::memStressProgram(40, 64);
    CounterSnapshot fast = runAndCollect(prog, true, 500'000);
    CounterSnapshot ref = runAndCollect(prog, false, 500'000);

    ASSERT_EQ(fast.values.size(), ref.values.size());
    unsigned schedKeys = 0;
    for (const auto &[k, v] : fast.values) {
        if (k.find(".sched.") != std::string::npos) {
            ++schedKeys;
            continue;
        }
        EXPECT_EQ(v, ref.get(k)) << "counter " << k;
    }
    EXPECT_EQ(schedKeys, 2u); // skipped_cycles, skip_jumps
}

} // namespace
