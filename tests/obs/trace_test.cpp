#include <gtest/gtest.h>

#include "obs/serialize.h"
#include "obs/trace.h"

namespace {

using namespace minjie;
using namespace minjie::obs;

TEST(TraceBuffer, KeepsEventsInOrder)
{
    TraceBuffer t(8);
    for (uint64_t i = 0; i < 5; ++i)
        t.record(Ev::Commit, i, 0x80000000 + 4 * i, i * 10);

    EXPECT_EQ(t.size(), 5u);
    EXPECT_EQ(t.recorded(), 5u);
    auto evs = t.events();
    ASSERT_EQ(evs.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(evs[i].cycle, i);
        EXPECT_EQ(evs[i].pc, 0x80000000 + 4 * i);
        EXPECT_EQ(evs[i].arg0, i * 10);
    }
}

TEST(TraceBuffer, RingOverwritesOldest)
{
    TraceBuffer t(4);
    for (uint64_t i = 0; i < 10; ++i)
        t.record(Ev::Fetch, i, i);

    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.recorded(), 10u); // drops are visible, not silent
    auto evs = t.events();
    ASSERT_EQ(evs.size(), 4u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(evs[i].cycle, 6 + i); // cycles 6..9 survive
}

TEST(TraceBuffer, LastKReturnsNewestWindow)
{
    TraceBuffer t(16);
    for (uint64_t i = 0; i < 12; ++i)
        t.record(Ev::Issue, i, i);

    auto win = t.lastK(3);
    ASSERT_EQ(win.size(), 3u);
    EXPECT_EQ(win[0].cycle, 9u);
    EXPECT_EQ(win[2].cycle, 11u);
    EXPECT_EQ(t.lastK(100).size(), 12u); // clamped to size
}

TEST(TraceBuffer, ClearResets)
{
    TraceBuffer t(4);
    t.record(Ev::Rename, 1, 2);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.events().empty());
}

TEST(TraceBuffer, EvNamesAreStable)
{
    // .mjt consumers key on these strings; renames are format breaks.
    EXPECT_STREQ(evName(Ev::Fetch), "fetch");
    EXPECT_STREQ(evName(Ev::Commit), "commit");
    EXPECT_STREQ(evName(Ev::CacheMiss), "cache_miss");
    EXPECT_STREQ(evName(Ev::TlbWalk), "tlb_walk");
    EXPECT_STREQ(evName(Ev::FaultInject), "fault_inject");
    EXPECT_STREQ(evName(Ev::Divergence), "divergence");
}

RunArtifact
makeArtifact()
{
    RunArtifact art;
    art.runLabel = "coremark@nh";
    art.counters.set("core0.cycles", 12345);
    art.counters.set("core0.topdown.retiring", 777);
    TraceEvent e{};
    e.cycle = 42;
    e.pc = 0x80001234;
    e.arg0 = 0xdeadbeefcafe;
    e.arg1 = 7;
    e.kind = Ev::Commit;
    e.hart = 1;
    e.aux = 3;
    art.events.push_back(e);
    return art;
}

TEST(Mjt, RoundTripsExactly)
{
    RunArtifact art = makeArtifact();
    std::string bytes = serializeMjt(art);

    RunArtifact back;
    ASSERT_TRUE(parseMjt(bytes, back));
    EXPECT_EQ(back, art);
    EXPECT_EQ(back.runLabel, "coremark@nh");
    EXPECT_EQ(back.counters.get("core0.cycles"), 12345u);
    ASSERT_EQ(back.events.size(), 1u);
    EXPECT_EQ(back.events[0].arg0, 0xdeadbeefcafeu);
    EXPECT_EQ(back.events[0].kind, Ev::Commit);
    EXPECT_EQ(back.events[0].hart, 1u);
    EXPECT_EQ(back.events[0].aux, 3u);
}

TEST(Mjt, SerializationIsDeterministic)
{
    EXPECT_EQ(serializeMjt(makeArtifact()), serializeMjt(makeArtifact()));
}

TEST(Mjt, RejectsCorruptInput)
{
    RunArtifact art;
    EXPECT_FALSE(parseMjt("", art));
    EXPECT_FALSE(parseMjt("not an artifact", art));

    std::string bytes = serializeMjt(makeArtifact());
    bytes[0] = 'X'; // bad magic
    EXPECT_FALSE(parseMjt(bytes, art));

    std::string truncated = serializeMjt(makeArtifact());
    truncated.resize(truncated.size() - 3);
    EXPECT_FALSE(parseMjt(truncated, art));

    std::string padded = serializeMjt(makeArtifact()) + "junk";
    EXPECT_FALSE(parseMjt(padded, art)); // trailing bytes rejected
}

TEST(Mjt, ChromeJsonContainsEventsAndCounters)
{
    std::string json = toChromeJson(makeArtifact());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"commit\""), std::string::npos);
    EXPECT_NE(json.find("core0.cycles"), std::string::npos);
    EXPECT_NE(json.find("coremark@nh"), std::string::npos);
}

} // namespace
