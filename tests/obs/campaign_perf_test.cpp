/**
 * Campaign perf aggregation: the merged counter snapshot of a --perf
 * campaign is a pure function of the seed range — worker count changes
 * throughput, never the summary.
 */

#include <gtest/gtest.h>

#include "campaign/campaign.h"

namespace {

using namespace minjie;
using namespace minjie::obs;

TEST(CampaignPerf, WorkerCountInvariant)
{
    campaign::CampaignConfig cfg;
    cfg.seedCount = 6;
    cfg.nInsts = 150;
    cfg.difftestPct = 100; // every job collects a DUT perf summary
    cfg.perf = true;
    cfg.shrinkFailures = false;

    cfg.workers = 1;
    campaign::CampaignReport one = campaign::runCampaign(cfg);
    cfg.workers = 4;
    campaign::CampaignReport four = campaign::runCampaign(cfg);

    EXPECT_EQ(one.failures, 0u);
    EXPECT_EQ(four.failures, 0u);

    CounterSnapshot a = one.perfCounters();
    CounterSnapshot b = four.perfCounters();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.toJson(), b.toJson()); // serialized form too
    EXPECT_EQ(a.get("dut.jobs"), cfg.seedCount);
    EXPECT_GT(a.get("dut.cycles"), 0u);

    // The merged buckets inherit the per-core exactness invariant.
    EXPECT_EQ(a.get("dut.topdown.retiring") +
                  a.get("dut.topdown.frontend") +
                  a.get("dut.topdown.bad_speculation") +
                  a.get("dut.topdown.backend_memory") +
                  a.get("dut.topdown.backend_core"),
              a.get("dut.cycles"));
}

} // namespace
