#include <gtest/gtest.h>

#include "obs/collect.h"
#include "obs/topdown.h"
#include "workload/programs.h"
#include "xiangshan/soc.h"

namespace {

using namespace minjie;
using namespace minjie::obs;
namespace wl = minjie::workload;

CounterSnapshot
syntheticMix(uint64_t ret, uint64_t fe, uint64_t bs, uint64_t bm,
             uint64_t bc)
{
    CounterSnapshot s;
    s.set("core0.cycles", ret + fe + bs + bm + bc);
    s.set("core0.instrs", 2 * ret);
    s.set("core0.topdown.retiring", ret);
    s.set("core0.topdown.frontend", fe);
    s.set("core0.topdown.bad_speculation", bs);
    s.set("core0.topdown.backend_memory", bm);
    s.set("core0.topdown.backend_core", bc);
    return s;
}

TEST(CpiStack, FromCountersReadsCollectorNames)
{
    CpiStack st = CpiStack::fromCounters(syntheticMix(10, 20, 30, 40, 50),
                                         "core0");
    EXPECT_EQ(st.cycles, 150u);
    EXPECT_EQ(st.instrs, 20u);
    EXPECT_EQ(st.retiring, 10u);
    EXPECT_EQ(st.frontend, 20u);
    EXPECT_EQ(st.badSpec, 30u);
    EXPECT_EQ(st.backendMem, 40u);
    EXPECT_EQ(st.backendCore, 50u);
    EXPECT_TRUE(st.sumsExactly());
}

TEST(CpiStack, SyntheticMixesAttributeAndSum)
{
    // Pure mixes land entirely in the expected bucket; shares are
    // exact fractions of the cycle total.
    struct Mix
    {
        CpiStack st;
        uint64_t CpiStack::*bucket;
    };
    std::vector<Mix> mixes = {
        {CpiStack::fromCounters(syntheticMix(100, 0, 0, 0, 0), "core0"),
         &CpiStack::retiring},
        {CpiStack::fromCounters(syntheticMix(0, 100, 0, 0, 0), "core0"),
         &CpiStack::frontend},
        {CpiStack::fromCounters(syntheticMix(0, 0, 100, 0, 0), "core0"),
         &CpiStack::badSpec},
        {CpiStack::fromCounters(syntheticMix(0, 0, 0, 100, 0), "core0"),
         &CpiStack::backendMem},
        {CpiStack::fromCounters(syntheticMix(0, 0, 0, 0, 100), "core0"),
         &CpiStack::backendCore},
    };
    for (const auto &m : mixes) {
        EXPECT_TRUE(m.st.sumsExactly());
        EXPECT_EQ(m.st.*(m.bucket), 100u);
        EXPECT_DOUBLE_EQ(m.st.share(m.st.*(m.bucket)), 1.0);
    }

    CpiStack blend =
        CpiStack::fromCounters(syntheticMix(25, 25, 10, 30, 10), "core0");
    EXPECT_TRUE(blend.sumsExactly());
    EXPECT_DOUBLE_EQ(blend.share(blend.retiring), 0.25);
    EXPECT_DOUBLE_EQ(blend.share(blend.backendMem), 0.30);
}

TEST(CpiStack, WeightedReductionPreservesExactSum)
{
    // The sampled-simulation reduction: per-slice snapshots merged
    // with integer SimPoint weight numerators (mergeScaled). Scaling
    // and summing are linear, so the bucket partition must still sum
    // exactly to the weighted cycle total — for any weights.
    auto a = syntheticMix(10, 20, 30, 40, 50);   // 150 cycles
    auto b = syntheticMix(100, 0, 0, 0, 0);      // 100 cycles
    auto c = syntheticMix(7, 13, 0, 19, 23);     // 62 cycles

    CounterSnapshot weighted;
    weighted.mergeScaled(a, 3);
    weighted.mergeScaled(b, 5);
    weighted.mergeScaled(c, 2);

    CpiStack st = CpiStack::fromCounters(weighted, "core0");
    EXPECT_TRUE(st.sumsExactly());
    EXPECT_EQ(st.cycles, 3 * 150u + 5 * 100u + 2 * 62u);
    EXPECT_EQ(st.retiring, 3 * 10u + 5 * 100u + 2 * 7u);
    EXPECT_EQ(st.backendMem, 3 * 40u + 2 * 19u);

    // Grouping invariance: merging pre-scaled partial sums in any
    // order yields the identical snapshot (worker-count invariance).
    CounterSnapshot other;
    other.mergeScaled(c, 2);
    CounterSnapshot partial;
    partial.mergeScaled(b, 5);
    partial.mergeScaled(a, 3);
    other.merge(partial);
    EXPECT_EQ(other, weighted);
    EXPECT_EQ(other.toJson(), weighted.toJson());
}

TEST(CpiStack, MismatchIsReported)
{
    CounterSnapshot s = syntheticMix(10, 10, 10, 10, 10);
    s.set("core0.cycles", 51); // one unattributed cycle
    CpiStack st = CpiStack::fromCounters(s, "core0");
    EXPECT_FALSE(st.sumsExactly());
    EXPECT_NE(st.table("t").find("MISMATCH"), std::string::npos);
}

TEST(CpiStack, TableIsDeterministicAndMarksExactness)
{
    CpiStack st =
        CpiStack::fromCounters(syntheticMix(10, 20, 30, 40, 50), "core0");
    std::string t1 = st.table("run core0");
    EXPECT_EQ(t1, st.table("run core0"));
    EXPECT_NE(t1.find("(exact)"), std::string::npos);
    EXPECT_NE(t1.find("backend_memory"), std::string::npos);
}

/** Run one workload and return core0's collected snapshot. */
CounterSnapshot
runAndCollect(const wl::Program &prog, Cycle maxCycles)
{
    xs::Soc soc(xs::CoreConfig::nh());
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);
    for (Cycle c = 0; c < maxCycles && !soc.core(0).done();) {
        soc.system().clint.tick();
        Cycle consumed = soc.core(0).tick(maxCycles - c);
        c += consumed;
        if (consumed > 1)
            soc.system().clint.tick(consumed - 1);
    }
    CounterGroup root;
    collectSoc(root, soc);
    return root.snapshot();
}

TEST(CpiStack, RealRunSumsExactlyCoremark)
{
    // The acceptance gate: every simulated cycle lands in exactly one
    // bucket, so the stack partitions the measured cycle count.
    CpiStack st = CpiStack::fromCounters(
        runAndCollect(wl::coremarkProxy(30), 500'000), "core0");
    ASSERT_GT(st.cycles, 0u);
    ASSERT_GT(st.instrs, 0u);
    EXPECT_TRUE(st.sumsExactly())
        << "bucket sum " << st.bucketSum() << " != cycles " << st.cycles;
    EXPECT_GT(st.retiring, 0u);
}

TEST(CpiStack, RealRunSumsExactlyMemStress)
{
    // A pointer-chasing working set far beyond L1 must show up as
    // backend-memory pressure, and still partition exactly.
    CpiStack st = CpiStack::fromCounters(
        runAndCollect(wl::memStressProgram(60, 64), 500'000), "core0");
    ASSERT_GT(st.cycles, 0u);
    EXPECT_TRUE(st.sumsExactly())
        << "bucket sum " << st.bucketSum() << " != cycles " << st.cycles;
    EXPECT_GT(st.backendMem, 0u);
}

} // namespace
