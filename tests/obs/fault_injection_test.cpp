/**
 * Fault-injection smoke tests: a flipped committed register write and a
 * dropped store must both be flagged by DiffTest within a bounded
 * instruction count, and the divergence trace window dumped alongside
 * the report must contain the injection site.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "difftest/difftest.h"
#include "obs/trace.h"
#include "workload/asm.h"
#include "workload/programs.h"
#include "xiangshan/soc.h"

namespace {

using namespace minjie;
using namespace minjie::difftest;
using namespace minjie::obs;
namespace wl = minjie::workload;

void
loadEverywhere(xs::Soc &soc, DiffTest &dt, const wl::Program &prog)
{
    prog.loadInto(soc.system().dram);
    for (const auto &seg : prog.segments)
        dt.loadRefMemory(seg.base, seg.bytes.data(), seg.bytes.size());
    soc.setEntry(prog.entry);
    dt.resetRefs(prog.entry);
}

/** Every iteration stores the accumulator and reloads it, so a dropped
 *  store is architecturally observed by the very next load. */
wl::Program
storeReloadProgram(uint64_t n)
{
    wl::Layout layout;
    wl::Program prog;
    prog.name = "store-reload";
    prog.entry = layout.codeBase;

    wl::Asm a(layout.codeBase);
    a.li(wl::s0, layout.dataBase);
    a.li(wl::s2, n);
    a.li(wl::s6, 0);
    wl::Label loop = a.newLabel();
    wl::Label done = a.newLabel();
    a.bind(loop);
    a.branch(isa::Op::Beq, wl::s2, wl::zero, done);
    a.rtype(isa::Op::Add, wl::t0, wl::s6, wl::s2);
    a.store(isa::Op::Sd, wl::t0, 0, wl::s0);
    a.load(isa::Op::Ld, wl::t1, 0, wl::s0);
    a.rtype(isa::Op::Add, wl::s6, wl::s6, wl::t1);
    a.itype(isa::Op::Addi, wl::s2, wl::s2, -1);
    a.j(loop);
    a.bind(done);
    a.exit(0);
    prog.segments.push_back(a.finish());
    return prog;
}

bool
windowHas(const std::vector<TraceEvent> &win, Ev kind)
{
    return std::any_of(win.begin(), win.end(), [&](const TraceEvent &e) {
        return e.kind == kind;
    });
}

TEST(FaultInjection, FlippedCommitDivergesImmediately)
{
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    loadEverywhere(soc, dt, wl::coremarkProxy(5));

    TraceBuffer trace(4096);
    soc.core(0).setTrace(&trace);
    dt.attachTrace(&trace, 256);

    soc.core(0).injectCommitFault(0x1);
    dt.run(2'000'000);

    ASSERT_FALSE(dt.ok());
    // The corrupt value is architecturally visible at its own commit,
    // so the checker flags the very first rd-writing instruction.
    EXPECT_LE(dt.stats().commitsChecked, 4u);
    EXPECT_NE(dt.failures().front().find("rd mismatch"),
              std::string::npos)
        << dt.failures().front();

    const auto &win = dt.divergenceWindow();
    ASSERT_FALSE(win.empty());
    EXPECT_TRUE(windowHas(win, Ev::Divergence));
    EXPECT_TRUE(windowHas(win, Ev::FaultInject));

    // The faulty commit itself is in the window: the commit whose pc
    // matches the injection record.
    auto inj = std::find_if(win.begin(), win.end(),
                            [](const TraceEvent &e) {
                                return e.kind == Ev::FaultInject;
                            });
    ASSERT_NE(inj, win.end());
    EXPECT_EQ(inj->arg1, 0u); // commit-flip flavour
    bool faultyCommitPresent = std::any_of(
        win.begin(), win.end(), [&](const TraceEvent &e) {
            return e.kind == Ev::Commit && e.pc == inj->pc &&
                   e.arg0 == inj->arg0;
        });
    EXPECT_TRUE(faultyCommitPresent);
}

TEST(FaultInjection, DroppedStoreDivergesWithinBound)
{
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    loadEverywhere(soc, dt, storeReloadProgram(200));

    TraceBuffer trace(8192);
    soc.core(0).setTrace(&trace);
    dt.attachTrace(&trace, 4096);

    soc.core(0).injectDropStore();
    dt.run(2'000'000);

    ASSERT_FALSE(dt.ok());
    // Bounded detection latency: the reload right after the dropped
    // first-iteration store exposes it, far before the program's
    // ~1200 commits complete.
    EXPECT_LT(dt.stats().commitsChecked, 100u);

    const auto &win = dt.divergenceWindow();
    ASSERT_FALSE(win.empty());
    EXPECT_TRUE(windowHas(win, Ev::Divergence));
    EXPECT_TRUE(windowHas(win, Ev::FaultInject));
    auto inj = std::find_if(win.begin(), win.end(),
                            [](const TraceEvent &e) {
                                return e.kind == Ev::FaultInject;
                            });
    ASSERT_NE(inj, win.end());
    EXPECT_EQ(inj->arg1, 1u); // drop-store flavour
}

TEST(FaultInjection, CleanRunKeepsEmptyWindow)
{
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    loadEverywhere(soc, dt, wl::sumProgram(50));

    TraceBuffer trace(1024);
    soc.core(0).setTrace(&trace);
    dt.attachTrace(&trace, 256);

    dt.run(2'000'000);
    EXPECT_TRUE(dt.ok()) << dt.failures().front();
    EXPECT_TRUE(dt.divergenceWindow().empty());
    EXPECT_GT(trace.recorded(), 0u);
}

} // namespace
