/**
 * Golden-trace regression: the whole observability pipeline — run,
 * collect, trace, serialize — is a pure function of the workload, so
 * repeating a run reproduces the .mjt artifact byte for byte.
 */

#include <gtest/gtest.h>

#include "obs/collect.h"
#include "obs/serialize.h"
#include "workload/programs.h"
#include "xiangshan/soc.h"

namespace {

using namespace minjie;
using namespace minjie::obs;
namespace wl = minjie::workload;

/** One full traced run: the in-process twin of `minjie-trace record`. */
std::string
recordCoremark()
{
    xs::Soc soc(xs::CoreConfig::nh());
    wl::Program prog = wl::coremarkProxy(20);
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);

    TraceBuffer trace(1024);
    soc.core(0).setTrace(&trace);
    attachCacheTrace(soc.mem(), trace);

    for (Cycle c = 0; c < 500'000 && !soc.core(0).done();) {
        soc.system().clint.tick();
        Cycle consumed = soc.core(0).tick(500'000 - c);
        c += consumed;
        if (consumed > 1)
            soc.system().clint.tick(consumed - 1);
    }

    RunArtifact art;
    art.runLabel = "coremark@nh";
    CounterGroup root;
    collectSoc(root, soc);
    art.counters = root.snapshot();
    art.events = trace.events();
    return serializeMjt(art);
}

TEST(GoldenTrace, TracedRunIsByteIdenticalWhenRepeated)
{
    std::string first = recordCoremark();
    std::string second = recordCoremark();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);

    RunArtifact art;
    ASSERT_TRUE(parseMjt(first, art));
    EXPECT_FALSE(art.counters.values.empty());
    EXPECT_FALSE(art.events.empty());
}

} // namespace
