#include <gtest/gtest.h>

#include "obs/counter.h"

namespace {

using namespace minjie;
using namespace minjie::obs;

TEST(CounterGroup, FlattensWithDottedPaths)
{
    CounterGroup root("core0");
    root.set("cycles", 100);
    root.group("frontend").set("fetch_stall_cycles", 7);
    root.group("frontend").add("fetch_stall_cycles", 3);
    root.group("mmu").set("tlb_hits", 42);

    CounterSnapshot s = root.snapshot();
    EXPECT_EQ(s.get("core0.cycles"), 100u);
    EXPECT_EQ(s.get("core0.frontend.fetch_stall_cycles"), 10u);
    EXPECT_EQ(s.get("core0.mmu.tlb_hits"), 42u);
    EXPECT_EQ(s.values.size(), 3u);
}

TEST(CounterGroup, EmptyRootNameOmitsPrefix)
{
    CounterGroup root;
    root.group("nemu").set("uop_hits", 5);
    CounterSnapshot s = root.snapshot();
    EXPECT_TRUE(s.has("nemu.uop_hits"));
    EXPECT_FALSE(s.has(".nemu.uop_hits"));
}

TEST(CounterSnapshot, SnapshotIsSorted)
{
    CounterGroup root("g");
    root.set("zebra", 1);
    root.set("alpha", 2);
    root.group("mid").set("x", 3);

    CounterSnapshot s = root.snapshot();
    std::string prev;
    for (const auto &[k, v] : s.values) {
        EXPECT_LT(prev, k); // strictly ascending key order
        prev = k;
    }
}

TEST(CounterSnapshot, MergeIsCommutativePerKeySum)
{
    CounterSnapshot a, b;
    a.set("x", 3);
    a.set("only_a", 1);
    b.set("x", 4);
    b.set("only_b", 2);

    CounterSnapshot ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab, ba);
    EXPECT_EQ(ab.get("x"), 7u);
    EXPECT_EQ(ab.get("only_a"), 1u);
    EXPECT_EQ(ab.get("only_b"), 2u);
}

TEST(CounterSnapshot, MergeGroupingInvariance)
{
    // Aggregating shards in any grouping yields identical totals —
    // the property behind worker-count-invariant campaign summaries.
    std::vector<CounterSnapshot> shards(4);
    for (size_t i = 0; i < shards.size(); ++i) {
        shards[i].set("cycles", 100 * (i + 1));
        shards[i].set("jobs", 1);
    }

    CounterSnapshot oneWorker; // sequential: (((s0+s1)+s2)+s3)
    for (const auto &s : shards)
        oneWorker.merge(s);

    CounterSnapshot left, right, fourWorkers; // pairwise tree
    left.merge(shards[0]);
    left.merge(shards[2]);
    right.merge(shards[3]);
    right.merge(shards[1]);
    fourWorkers.merge(right);
    fourWorkers.merge(left);

    EXPECT_EQ(oneWorker, fourWorkers);
    EXPECT_EQ(oneWorker.get("jobs"), 4u);
    EXPECT_EQ(oneWorker.get("cycles"), 1000u);
}

TEST(CounterSnapshot, DeltaClampsAtZero)
{
    CounterSnapshot now, earlier;
    now.set("up", 10);
    earlier.set("up", 4);
    earlier.set("gone", 9); // counter vanished (e.g. cleared tree)

    CounterSnapshot d = now.delta(earlier);
    EXPECT_EQ(d.get("up"), 6u);
    EXPECT_EQ(d.get("gone"), 0u);
}

TEST(CounterSnapshot, ToJsonIsKeyOrdered)
{
    CounterSnapshot s;
    s.set("b", 2);
    s.set("a", 1);
    EXPECT_EQ(s.toJson(), "{\"a\":1,\"b\":2}");
}

TEST(CounterGroup, ClearEmptiesSubtree)
{
    CounterGroup root("r");
    root.set("x", 1);
    root.group("child").set("y", 2);
    root.clear();
    EXPECT_TRUE(root.snapshot().values.empty());
}

} // namespace
