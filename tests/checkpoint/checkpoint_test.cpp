#include <gtest/gtest.h>

#include "checkpoint/generator.h"
#include "difftest/difftest.h"
#include "iss/system.h"
#include "nemu/nemu.h"
#include "workload/asm.h"
#include "xiangshan/soc.h"

namespace {

using namespace minjie;
using namespace minjie::checkpoint;
namespace wl = minjie::workload;

TEST(Checkpoint, SerializeRestoreRoundtrip)
{
    iss::System sys(32);
    auto prog = wl::coremarkProxy(10);
    prog.loadInto(sys.dram);
    nemu::Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });
    nemu.run(5000);

    Checkpoint cp = serialize(nemu.state(), sys.dram, 5000);
    ASSERT_TRUE(cp.valid());

    iss::System sys2(32);
    iss::ArchState restored;
    ASSERT_TRUE(restore(cp, restored, sys2.dram));

    EXPECT_EQ(restored.pc, nemu.state().pc);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(restored.x[i], nemu.state().x[i]) << "x" << i;
        EXPECT_EQ(restored.f[i], nemu.state().f[i]) << "f" << i;
    }
    EXPECT_EQ(restored.csr.mstatus, nemu.state().csr.mstatus);
    EXPECT_EQ(restored.csr.satp, nemu.state().csr.satp);

    // Memory equality over the program's data region.
    for (Addr a = 0x80100000; a < 0x80101000; a += 8) {
        uint64_t v1, v2;
        sys.dram.read(a, 8, v1);
        sys2.dram.read(a, 8, v2);
        EXPECT_EQ(v1, v2) << std::hex << a;
    }
}

TEST(Checkpoint, RestoredRunContinuesIdentically)
{
    // Resuming from a checkpoint must reproduce the original execution:
    // the defining property of the Figure 9 format.
    auto prog = wl::coremarkProxy(20);

    iss::System sysA(32);
    prog.loadInto(sysA.dram);
    nemu::Nemu a(sysA.bus, sysA.dram, 0, prog.entry);
    a.setHaltFn([&] { return sysA.simctrl.exited(); });
    a.run(10'000);
    Checkpoint cp = serialize(a.state(), sysA.dram, 10'000);
    a.run(20'000); // original continues

    iss::System sysB(32);
    nemu::Nemu b(sysB.bus, sysB.dram, 0, prog.entry);
    b.setHaltFn([&] { return sysB.simctrl.exited(); });
    ASSERT_TRUE(restore(cp, b.state(), sysB.dram));
    b.flushUopCache();
    b.run(20'000); // restored copy continues the same distance

    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.state().x[i], b.state().x[i]) << "x" << i;
    EXPECT_EQ(a.state().pc, b.state().pc);
}

TEST(Checkpoint, ImageBytesIndependentOfPageTouchOrder)
{
    // Regression: serialize() visited DRAM pages in unordered_map
    // iteration order, so two runs that dirtied the same pages in
    // different orders produced byte-different images for identical
    // architectural state. forEachPage() now visits in ascending
    // address order.
    iss::ArchState st{};
    mem::PhysMem a(0x80000000, 1 << 24);
    mem::PhysMem b(0x80000000, 1 << 24);

    std::vector<Addr> pages;
    for (Addr i = 0; i < 64; ++i)
        pages.push_back(0x80000000 + i * 0x1000);
    for (Addr p : pages)
        a.write(p, 8, p);
    for (auto it = pages.rbegin(); it != pages.rend(); ++it)
        b.write(*it, 8, *it);

    Checkpoint ca = serialize(st, a, 0);
    Checkpoint cb = serialize(st, b, 0);
    ASSERT_TRUE(ca.valid());
    EXPECT_EQ(ca.bytes, cb.bytes)
        << "checkpoint image depends on page touch order";
}

TEST(Checkpoint, ZeroPagesElidedFromImage)
{
    // Size regression for the zero-page elision: an image must pay
    // only for pages holding data, and elided pages must read back as
    // zeros after restore.
    iss::ArchState st{};
    mem::PhysMem mem(0x80000000, 1 << 24);

    constexpr unsigned TOUCHED = 32, NONZERO = 5;
    for (Addr i = 0; i < TOUCHED; ++i) {
        Addr page = 0x80000000 + i * 0x1000;
        // Allocate every page; leave most of them all-zero.
        mem.write(page, 8, i < NONZERO ? 0xdeadbeef + i : 0);
    }

    Checkpoint cp = serialize(st, mem, 0);
    size_t expect = archHeaderBytes() + 8 +
                    NONZERO * (8 + mem::PhysMem::PAGE_SIZE);
    EXPECT_EQ(cp.bytes.size(), expect)
        << "zero pages were serialized (or data pages dropped)";

    iss::ArchState st2;
    mem::PhysMem mem2(0x80000000, 1 << 24);
    ASSERT_TRUE(restore(cp, st2, mem2));
    for (Addr i = 0; i < TOUCHED; ++i) {
        uint64_t v = ~0ULL;
        mem2.read(0x80000000 + i * 0x1000, 8, v);
        EXPECT_EQ(v, i < NONZERO ? 0xdeadbeef + i : 0) << "page " << i;
    }
}

TEST(Checkpoint, ShortProgramFallsBackToWholeRunCheckpoint)
{
    // A straight-line program retires no control transfer before
    // SimCtrl halts it, so BBV collection sees zero complete
    // intervals. generateCheckpoints must degrade to a single
    // whole-run checkpoint of weight 1.0, not an empty result.
    wl::Asm a(0x80000000);
    a.li(wl::a0, 0);
    for (int i = 0; i < 64; ++i)
        a.itype(minjie::isa::Op::Addi, wl::a0, wl::a0, 1);
    a.exit(0);
    wl::Program prog;
    prog.name = "straightline";
    prog.entry = a.base();
    prog.segments.push_back(a.finish());

    auto gen = generateCheckpoints(prog, 1'000'000, 4, 10'000'000);
    ASSERT_EQ(gen.checkpoints.size(), 1u);
    EXPECT_DOUBLE_EQ(gen.checkpoints[0].weight, 1.0);
    EXPECT_EQ(gen.checkpoints[0].instCount, 0u);
    ASSERT_TRUE(gen.checkpoints[0].valid());

    // The whole-run checkpoint replays the entire execution.
    iss::System sys(32);
    nemu::Nemu nemu(sys.bus, sys.dram, 0, 0);
    ASSERT_TRUE(
        restore(gen.checkpoints[0], nemu.state(), sys.dram));
    nemu.flushUopCache();
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });
    nemu.run(10'000);
    EXPECT_TRUE(sys.simctrl.exited());
    EXPECT_EQ(nemu.state().x[wl::a0], 64u);
}

TEST(Checkpoint, ResumeEquivalenceUnderDiffTest)
{
    // Figure 9's manual artifact check, promoted to a tier-1 test:
    // the same checkpoint restored into the ISS interpreter (the
    // DiffTest REF) and into the xs::Core oracle must produce
    // identical commit streams when both resume.
    auto prog = wl::coremarkProxy(100);
    auto gen = generateCheckpoints(prog, 25'000, 2, 10'000'000);
    ASSERT_GE(gen.checkpoints.size(), 1u);
    // Earliest checkpoint: leaves the most instructions to replay.
    const Checkpoint *cp0 = &gen.checkpoints[0];
    for (const auto &c : gen.checkpoints)
        if (c.instCount < cp0->instCount)
            cp0 = &c;
    const Checkpoint &cp = *cp0;

    xs::Soc soc(xs::CoreConfig::nh());
    ASSERT_TRUE(restore(cp, soc.core(0).oracleState(),
                        soc.system().dram));

    difftest::DiffTest dt(soc);
    // Seed the REF with the same checkpoint: arch state directly,
    // memory page by page from a scratch restore.
    iss::ArchState refState;
    mem::PhysMem scratch(0x80000000, 256ull << 20);
    ASSERT_TRUE(restore(cp, refState, scratch));
    dt.ref(0).state() = refState;
    dt.ref(0).flushUopCache();
    scratch.forEachPage([&](Addr base, const uint8_t *data) {
        dt.loadRefMemory(base, data, mem::PhysMem::PAGE_SIZE);
    });

    constexpr InstCount K = 10'000;
    auto r = soc.runUntilInstrs(K, 10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(dt.ok())
        << (dt.failures().empty() ? "" : dt.failures().front());
    EXPECT_GE(dt.stats().commitsChecked, K);
}

TEST(Checkpoint, RejectsGarbage)
{
    Checkpoint cp;
    cp.bytes.assign(64, 0xab);
    iss::ArchState st;
    mem::PhysMem mem(0x80000000, 1 << 20);
    EXPECT_FALSE(restore(cp, st, mem));
}

TEST(Checkpoint, GeneratorProducesWeightedCheckpoints)
{
    auto prog = wl::coremarkProxy(200);
    auto gen = generateCheckpoints(prog, 20'000, 4, 10'000'000);

    ASSERT_GE(gen.checkpoints.size(), 1u);
    ASSERT_LE(gen.checkpoints.size(), 4u);
    double wsum = 0;
    for (const auto &cp : gen.checkpoints) {
        EXPECT_TRUE(cp.valid());
        EXPECT_GT(cp.weight, 0.0);
        wsum += cp.weight;
    }
    EXPECT_NEAR(wsum, 1.0, 1e-9);
    EXPECT_GT(gen.totalInsts, 100'000u);
    // Pass 2 runs at fast-interpreter speed, far above profiling speed.
    EXPECT_GT(gen.generateMips, gen.profileMips);
}

TEST(Checkpoint, RestoresIntoCycleModel)
{
    // The end-to-end use: restore a checkpoint into XIANGSHAN and
    // simulate a measurement window.
    auto prog = wl::coremarkProxy(500);
    auto gen = generateCheckpoints(prog, 50'000, 2, 10'000'000);
    ASSERT_GE(gen.checkpoints.size(), 1u);

    xs::Soc soc(xs::CoreConfig::nh());
    ASSERT_TRUE(restore(gen.checkpoints[0],
                        soc.core(0).oracleState(),
                        soc.system().dram));
    auto r = soc.runUntilInstrs(20'000, 5'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(soc.core(0).perf().instrs, 20'000u);
    EXPECT_GT(soc.core(0).perf().ipc(), 0.05);
}

double
estimateCpi(const GenResult &gen, InstCount warm, InstCount measure)
{
    std::vector<double> cpis, weights;
    for (const auto &cp : gen.checkpoints) {
        xs::Soc soc(xs::CoreConfig::nh());
        EXPECT_TRUE(restore(cp, soc.core(0).oracleState(),
                            soc.system().dram));
        soc.runUntilInstrs(warm, 5'000'000);
        Cycle warmCycles = soc.core(0).perf().cycles;
        InstCount warmInstrs = soc.core(0).perf().instrs;
        soc.runUntilInstrs(warmInstrs + measure, 20'000'000);
        double cpi =
            static_cast<double>(soc.core(0).perf().cycles - warmCycles) /
            static_cast<double>(soc.core(0).perf().instrs - warmInstrs);
        cpis.push_back(cpi);
        weights.push_back(cp.weight);
    }
    return checkpoint::weightedCpi(cpis, weights);
}

TEST(Checkpoint, WeightedCpiTracksFullRunAndWarmupHelps)
{
    // The paper reports a 5-10% deviation against real hardware and
    // names micro-architectural warming as the dominant error source
    // (Section III-D3). We verify both halves of that story: the
    // estimate is in the right range, and longer warmup moves it
    // toward the full-run measurement.
    auto prog = wl::coremarkProxy(400);

    xs::Soc full(xs::CoreConfig::nh());
    prog.loadInto(full.system().dram);
    full.setEntry(prog.entry);
    auto r = full.run(50'000'000);
    ASSERT_TRUE(r.completed);
    double fullCpi = 1.0 / full.core(0).perf().ipc();

    auto gen = generateCheckpoints(prog, 30'000, 4, 10'000'000);
    double coldEstimate = estimateCpi(gen, 1'000, 10'000);
    double warmEstimate = estimateCpi(gen, 15'000, 10'000);

    // Sanity band: cold-state estimates overshoot (every miss is
    // compulsory in a short window) but stay within an order of
    // magnitude; the meaningful property is the warmup trend below.
    EXPECT_GT(coldEstimate, fullCpi * 0.4);
    EXPECT_LT(coldEstimate, fullCpi * 8.0);
    EXPECT_GT(warmEstimate, fullCpi * 0.4);
    EXPECT_LT(warmEstimate, fullCpi * 4.0);
    // Warming reduces the error (the paper's stated future work).
    double coldErr = std::abs(coldEstimate - fullCpi);
    double warmErr = std::abs(warmEstimate - fullCpi);
    EXPECT_LE(warmErr, coldErr)
        << "cold " << coldEstimate << " warm " << warmEstimate
        << " full " << fullCpi;
}

} // namespace
