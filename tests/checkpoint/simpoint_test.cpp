#include <gtest/gtest.h>

#include "checkpoint/simpoint.h"

namespace {

using namespace minjie;
using namespace minjie::checkpoint;

Bbv
makeBbv(std::initializer_list<std::pair<Addr, uint64_t>> items)
{
    Bbv b;
    for (auto &[pc, n] : items)
        b[pc] = n;
    return b;
}

TEST(BbvCollector, SplitsIntervals)
{
    BbvCollector c(1000);
    for (int i = 0; i < 25; ++i)
        c.onBlock(0x80000000 + (i % 3) * 64, 100);
    c.finish();
    // 2500 instructions -> 2 full intervals + 1 partial.
    EXPECT_EQ(c.intervals().size(), 3u);
    uint64_t total = 0;
    for (const auto &iv : c.intervals())
        for (const auto &[pc, n] : iv)
            total += n;
    EXPECT_EQ(total, 2500u);
}

TEST(SimPoint, TwoPhasesSeparate)
{
    // Phase A executes blocks {X,Y}; phase B executes {P,Q}. k=2 must
    // separate them and weight 50/50.
    std::vector<Bbv> bbvs;
    for (int i = 0; i < 10; ++i)
        bbvs.push_back(makeBbv({{0x1000, 800}, {0x2000, 200}}));
    for (int i = 0; i < 10; ++i)
        bbvs.push_back(makeBbv({{0x9000, 500}, {0xa000, 500}}));

    auto sp = simpoint(bbvs, 2);
    ASSERT_EQ(sp.intervals.size(), 2u);
    EXPECT_NEAR(sp.weights[0], 0.5, 1e-9);
    EXPECT_NEAR(sp.weights[1], 0.5, 1e-9);
    // Assignments must be phase-pure.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(sp.assignment[i], sp.assignment[0]);
    for (int i = 10; i < 20; ++i)
        EXPECT_EQ(sp.assignment[i], sp.assignment[10]);
    EXPECT_NE(sp.assignment[0], sp.assignment[10]);
}

TEST(SimPoint, RepresentativeBelongsToItsCluster)
{
    std::vector<Bbv> bbvs;
    for (int i = 0; i < 6; ++i)
        bbvs.push_back(makeBbv({{0x1000, 100 + i}}));
    for (int i = 0; i < 6; ++i)
        bbvs.push_back(makeBbv({{0x8000, 100 + i}}));
    auto sp = simpoint(bbvs, 2);
    for (size_t c = 0; c < sp.intervals.size(); ++c)
        EXPECT_EQ(sp.assignment[sp.intervals[c]], c);
}

TEST(SimPoint, KClampedToIntervalCount)
{
    std::vector<Bbv> bbvs = {makeBbv({{0x1000, 10}}),
                             makeBbv({{0x2000, 10}})};
    auto sp = simpoint(bbvs, 10);
    EXPECT_LE(sp.intervals.size(), 2u);
}

TEST(SimPoint, WeightsSumToOne)
{
    Rng rng(0x51);
    std::vector<Bbv> bbvs;
    for (int i = 0; i < 40; ++i) {
        Bbv b;
        for (int j = 0; j < 8; ++j)
            b[0x1000 + rng.below(16) * 64] = rng.range(1, 1000);
        bbvs.push_back(std::move(b));
    }
    auto sp = simpoint(bbvs, 5);
    double sum = 0;
    for (double w : sp.weights)
        sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SimPoint, EmptyInputHandled)
{
    std::vector<Bbv> none;
    auto sp = simpoint(none, 4);
    EXPECT_TRUE(sp.intervals.empty());
}

TEST(BbvCollector, FinishIsIdempotentAndResetsForResume)
{
    BbvCollector c(1000);
    c.onBlock(0x1000, 600);
    c.finish();
    ASSERT_EQ(c.intervals().size(), 1u);
    c.finish(); // second call: no pending work, no phantom interval
    EXPECT_EQ(c.intervals().size(), 1u);

    // Resumed profiling starts a fresh count: 600 more instructions
    // must NOT close an interval (a stale executed_ would).
    c.onBlock(0x1000, 600);
    EXPECT_EQ(c.intervals().size(), 1u);
    c.onBlock(0x1000, 500); // now 1100 >= 1000 -> closes
    EXPECT_EQ(c.intervals().size(), 2u);
}

TEST(SimPoint, ClusteringInvariantUnderInsertionOrder)
{
    // Bbv is a sorted map precisely so the float accumulation in the
    // random projection never depends on how the profile was built.
    Rng rng(0x7a);
    std::vector<Bbv> fwd, rev;
    for (int i = 0; i < 12; ++i) {
        std::vector<std::pair<Addr, uint64_t>> items;
        for (int j = 0; j < 10; ++j)
            items.push_back({0x1000 + rng.below(64) * 4,
                             rng.range(1, 500)});
        Bbv a, b;
        for (const auto &[pc, n] : items)
            a[pc] += n;
        for (auto it = items.rbegin(); it != items.rend(); ++it)
            b[it->first] += it->second;
        fwd.push_back(std::move(a));
        rev.push_back(std::move(b));
    }
    auto sa = simpoint(fwd, 3);
    auto sb = simpoint(rev, 3);
    EXPECT_EQ(sa.intervals, sb.intervals);
    EXPECT_EQ(sa.assignment, sb.assignment);
    EXPECT_EQ(sa.weights, sb.weights);
}

TEST(WeightedCpi, Basics)
{
    EXPECT_DOUBLE_EQ(weightedCpi({2.0, 4.0}, {0.5, 0.5}), 3.0);
    EXPECT_DOUBLE_EQ(weightedCpi({2.0, 4.0}, {1.0, 0.0}), 2.0);
    EXPECT_DOUBLE_EQ(weightedCpi({}, {}), 0.0);
}

} // namespace
