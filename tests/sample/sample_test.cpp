/**
 * @file
 * Sampled-simulation engine tests: the .mjk pack store (dedup, mmap,
 * exact integer weights) and the fork-fanout evaluation engine
 * (worker-count invariance, crash isolation, warmup semantics).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "checkpoint/generator.h"
#include "iss/system.h"
#include "nemu/nemu.h"
#include "sample/engine.h"
#include "sample/store.h"

namespace {

using namespace minjie;
namespace wl = minjie::workload;
namespace cp = minjie::checkpoint;

/** Small deterministic pack shared by the engine tests. */
cp::GenResult
makeGen(uint64_t iters = 200, InstCount interval = 20'000)
{
    auto prog = wl::coremarkProxy(iters);
    return cp::generateCheckpoints(prog, interval, 4, 10'000'000);
}

sample::PackReader
makePack(const cp::GenResult &gen)
{
    sample::PackReader pack;
    EXPECT_TRUE(pack.openMemory(sample::packFromGen(gen)));
    return pack;
}

TEST(SampleStore, PackRoundtripMatchesCheckpointRestore)
{
    auto gen = makeGen();
    ASSERT_GE(gen.checkpoints.size(), 1u);
    auto pack = makePack(gen);
    ASSERT_EQ(pack.count(), gen.checkpoints.size());

    for (size_t i = 0; i < pack.count(); ++i) {
        iss::ArchState a, b;
        mem::PhysMem memA(0x80000000, 1 << 26);
        mem::PhysMem memB(0x80000000, 1 << 26);
        ASSERT_TRUE(cp::restore(gen.checkpoints[i], a, memA));
        ASSERT_TRUE(pack.restoreInto(i, b, memB));

        EXPECT_EQ(a.pc, b.pc) << "checkpoint " << i;
        EXPECT_EQ(a.instret, b.instret);
        for (int r = 0; r < 32; ++r) {
            EXPECT_EQ(a.x[r], b.x[r]) << "x" << r;
            EXPECT_EQ(a.f[r], b.f[r]) << "f" << r;
        }
        EXPECT_EQ(a.csr.mstatus, b.csr.mstatus);
        EXPECT_EQ(a.csr.satp, b.csr.satp);
        // Memory equality including zero-elided pages.
        for (Addr addr = 0x80000000; addr < 0x80000000 + 0x40000;
             addr += 0x1000) {
            uint64_t va = 0, vb = 0;
            memA.read(addr, 8, va);
            memB.read(addr, 8, vb);
            ASSERT_EQ(va, vb) << std::hex << addr;
        }
        EXPECT_EQ(pack.instCount(i), gen.checkpoints[i].instCount);
    }
}

TEST(SampleStore, WeightsAreExactIntegersSummingToOne)
{
    auto gen = makeGen();
    auto pack = makePack(gen);
    uint64_t sum = 0;
    for (size_t i = 0; i < pack.count(); ++i)
        sum += pack.weightNum(i);
    // SimPoint weights are clusterSize/nIntervals: numerators must
    // sum exactly to the common denominator (total intervals).
    EXPECT_EQ(sum, pack.weightDen());
    for (size_t i = 0; i < pack.count(); ++i)
        EXPECT_NEAR(pack.weight(i), gen.checkpoints[i].weight, 1e-12);
}

TEST(SampleStore, DedupsPagesAcrossCheckpoints)
{
    // Checkpoints of the same program share most of their image (code
    // pages, untouched data); the pool must store those pages once.
    auto gen = makeGen(400);
    ASSERT_GE(gen.checkpoints.size(), 2u);

    sample::PackWriter w(gen.simpoints.assignment.size());
    size_t rawBytes = 0;
    for (const auto &c : gen.checkpoints) {
        ASSERT_TRUE(w.add(c, 1));
        rawBytes += c.bytes.size();
    }
    EXPECT_LT(w.poolPages(), w.totalPageRefs())
        << "no page was shared between checkpoints";
    EXPECT_LT(w.bytes().size(), rawBytes)
        << "pack is not smaller than the per-checkpoint images";
}

TEST(SampleStore, MmapFileMatchesInMemory)
{
    auto gen = makeGen();
    auto bytes = sample::packFromGen(gen);

    sample::PackWriter w(gen.simpoints.assignment.size() == 0
                             ? 1
                             : gen.simpoints.assignment.size());
    std::string path = "sample_test_pack.mjk";
    {
        sample::PackReader mem;
        ASSERT_TRUE(mem.openMemory(bytes));
        // Write the identical bytes and mmap them back.
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);

        sample::PackReader file;
        ASSERT_TRUE(file.openFile(path));
        ASSERT_EQ(file.count(), mem.count());
        EXPECT_EQ(file.sizeBytes(), mem.sizeBytes());
        for (size_t i = 0; i < file.count(); ++i) {
            iss::ArchState a, b;
            mem::PhysMem ma(0x80000000, 1 << 26);
            mem::PhysMem mb(0x80000000, 1 << 26);
            ASSERT_TRUE(mem.restoreInto(i, a, ma));
            ASSERT_TRUE(file.restoreInto(i, b, mb));
            EXPECT_EQ(a.pc, b.pc);
            EXPECT_EQ(a.x[10], b.x[10]);
        }
    }
    std::remove(path.c_str());
}

TEST(SampleStore, RejectsGarbageAndTruncation)
{
    sample::PackReader r;
    EXPECT_FALSE(r.openMemory(std::vector<uint8_t>(64, 0xab)));
    EXPECT_FALSE(r.openMemory({}));

    auto bytes = sample::packFromGen(makeGen());
    bytes.resize(bytes.size() / 2); // chop the page pool
    EXPECT_FALSE(r.openMemory(std::move(bytes)));
    EXPECT_FALSE(r.openFile("/nonexistent/pack.mjk"));
}

TEST(SampleEngine, SliceBlobRoundtrip)
{
    sample::SliceResult s;
    s.ok = true;
    s.cycles = 123456;
    s.instrs = 7890;
    s.counters.set("core0.cycles", 123456);
    s.counters.set("core0.topdown.retiring", 42);
    s.counters.set("mem.l2.hits", 17);

    sample::SliceResult d;
    ASSERT_TRUE(sample::decodeSlice(sample::encodeSlice(s), d));
    EXPECT_EQ(d.ok, s.ok);
    EXPECT_EQ(d.cycles, s.cycles);
    EXPECT_EQ(d.instrs, s.instrs);
    EXPECT_EQ(d.counters, s.counters);

    sample::SliceResult bad;
    EXPECT_FALSE(sample::decodeSlice({1, 2, 3}, bad));
}

TEST(SampleEngine, WorkerCountInvariance)
{
    // The acceptance gate: weighted IPC and the merged top-down stack
    // must be byte-identical for any worker count on the same pack.
    auto gen = makeGen();
    auto pack = makePack(gen);

    sample::SampleConfig cfg;
    cfg.measureInsts = 3'000;
    cfg.maxCycles = 5'000'000;

    cfg.workers = 1;
    auto base = sample::runSampled(pack, cfg);
    ASSERT_TRUE(base.allOk());
    ASSERT_GT(base.weightedInstrs, 0u);
    EXPECT_TRUE(base.stack.sumsExactly());

    for (unsigned w : {2u, 3u, 8u}) {
        cfg.workers = w;
        auto rep = sample::runSampled(pack, cfg);
        ASSERT_TRUE(rep.allOk()) << w << " workers";
        // Byte-identical reduction: serialized counters and the
        // rendered stack, not just the scalar IPC.
        EXPECT_EQ(rep.weighted.toJson(), base.weighted.toJson())
            << w << " workers";
        EXPECT_EQ(rep.weightedCycles, base.weightedCycles);
        EXPECT_EQ(rep.weightedInstrs, base.weightedInstrs);
        EXPECT_EQ(rep.stack.table("t"), base.stack.table("t"));
        for (size_t i = 0; i < rep.slices.size(); ++i) {
            EXPECT_EQ(rep.slices[i].cycles, base.slices[i].cycles);
            EXPECT_EQ(rep.slices[i].counters, base.slices[i].counters);
        }
    }
}

TEST(SampleEngine, WeightedStackKeepsExactSum)
{
    auto pack = makePack(makeGen());
    sample::SampleConfig cfg;
    cfg.workers = 2;
    cfg.measureInsts = 3'000;
    auto rep = sample::runSampled(pack, cfg);
    ASSERT_TRUE(rep.allOk());
    // Integer weighting is linear, so the bucket partition survives:
    // sum_i w_i * (buckets_i) == sum_i w_i * cycles_i, exactly.
    EXPECT_TRUE(rep.stack.sumsExactly());
    EXPECT_EQ(rep.stack.cycles, rep.weightedCycles);
    EXPECT_EQ(rep.stack.instrs, rep.weightedInstrs);
    EXPECT_GT(rep.weightedIpc(), 0.0);
}

TEST(SampleEngine, CrashIsolation)
{
    // A dying worker loses its own slice and nothing else.
    auto pack = makePack(makeGen());
    ASSERT_GE(pack.count(), 2u);

    sample::SampleConfig cfg;
    cfg.workers = 2;
    cfg.measureInsts = 3'000;
    cfg.crashSliceForTest = 0;
    auto rep = sample::runSampled(pack, cfg);
    EXPECT_EQ(rep.failures, 1u);
    EXPECT_FALSE(rep.slices[0].ok);
    for (size_t i = 1; i < rep.slices.size(); ++i)
        EXPECT_TRUE(rep.slices[i].ok) << "slice " << i;
    // The reduction proceeds over the surviving slices.
    EXPECT_GT(rep.weightedInstrs, 0u);
    EXPECT_TRUE(rep.stack.sumsExactly());
}

TEST(SampleEngine, FunctionalWarmupAdvancesMeasurementPoint)
{
    auto gen = makeGen();
    auto pack = makePack(gen);

    sample::SampleConfig cold;
    cold.measureInsts = 3'000;
    auto a = sample::runSlice(pack, 0, cold);
    ASSERT_TRUE(a.ok);

    sample::SampleConfig warm = cold;
    warm.warmupInsts = 5'000;
    auto b = sample::runSlice(pack, 0, warm);
    ASSERT_TRUE(b.ok);

    // Both measure a full window; the warmed slice starts 5000
    // instructions later, so the windows differ.
    EXPECT_GE(a.instrs, cold.measureInsts);
    EXPECT_GE(b.instrs, cold.measureInsts);
    EXPECT_NE(a.counters, b.counters);
}

TEST(SampleEngine, InProcessAndForkedSliceAgree)
{
    // The fork fallback path (pipe/fork failure) runs slices
    // in-process; both paths must produce identical results for the
    // invariance guarantee to hold under fork pressure.
    auto pack = makePack(makeGen());
    sample::SampleConfig cfg;
    cfg.measureInsts = 3'000;

    auto direct = sample::runSlice(pack, 0, cfg);
    ASSERT_TRUE(direct.ok);

    cfg.workers = 2; // forked evaluation of the same slice
    auto rep = sample::runSampled(pack, cfg);
    ASSERT_TRUE(rep.slices[0].ok);
    EXPECT_EQ(rep.slices[0].cycles, direct.cycles);
    EXPECT_EQ(rep.slices[0].instrs, direct.instrs);
    EXPECT_EQ(rep.slices[0].counters, direct.counters);
}

} // namespace
