/**
 * @file
 * Cycle-exactness differential rig for the core's scheduling fast
 * paths (bitset scoreboard, event-driven idle skipping, batched commit
 * probes). Every fast path is an *encoding* of the reference scan
 * model, not an approximation — so for any program the fast
 * configuration must produce byte-identical PerfCounters (including
 * readyHist and all five top-down buckets) and an identical commit
 * probe stream against every ablated reference configuration.
 *
 * The tier-1 binary runs a small smoke subset of seeds; the fuzz-label
 * binary (compiled with -DMINJIE_SCHED_DIFF_FULL=1) sweeps 100+
 * randomized shrinkable programs.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "difftest/probes.h"
#include "workload/programs.h"
#include "workload/shrinkable.h"
#include "xiangshan/soc.h"

namespace {

using namespace minjie;
namespace wl = minjie::workload;

#ifdef MINJIE_SCHED_DIFF_FULL
constexpr uint64_t kSeeds = 100; // fuzz label: the full sweep
#else
constexpr uint64_t kSeeds = 8; // tier1: smoke subset
#endif

struct RunOut
{
    bool completed = false;
    Cycle cycles = 0;
    xs::PerfCounters perf{};
    std::vector<difftest::CommitProbe> probes;
};

RunOut
runConfig(const wl::Program &prog, const xs::ModelOpts &model,
          Cycle maxCycles)
{
    xs::CoreConfig cfg = xs::CoreConfig::nh();
    cfg.model = model;
    xs::Soc soc(cfg);
    RunOut out;
    soc.core(0).setCommitBatchHook(
        [&](const difftest::CommitProbe *p, unsigned n) {
            out.probes.insert(out.probes.end(), p, p + n);
        });
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);
    auto r = soc.run(maxCycles);
    out.completed = r.completed;
    out.cycles = r.cycles;
    out.perf = soc.core(0).perf();
    return out;
}

bool
probeEq(const difftest::CommitProbe &a, const difftest::CommitProbe &b)
{
    // Field-wise (CommitProbe has padding, so no memcmp).
    return a.hart == b.hart && a.pc == b.pc && a.inst == b.inst &&
           a.rd == b.rd && a.rdWritten == b.rdWritten &&
           a.fpWritten == b.fpWritten && a.rdValue == b.rdValue &&
           a.isLoad == b.isLoad && a.isStore == b.isStore &&
           a.skip == b.skip && a.memVaddr == b.memVaddr &&
           a.memPaddr == b.memPaddr && a.memData == b.memData &&
           a.memSize == b.memSize && a.trap == b.trap &&
           a.trapCause == b.trapCause && a.interrupt == b.interrupt &&
           a.scFailed == b.scFailed;
}

/** First differing counter lane, for a readable failure message. */
std::string
perfDiff(const xs::PerfCounters &a, const xs::PerfCounters &b)
{
    static_assert(sizeof(xs::PerfCounters) % sizeof(uint64_t) == 0);
    const auto *la = reinterpret_cast<const uint64_t *>(&a);
    const auto *lb = reinterpret_cast<const uint64_t *>(&b);
    std::ostringstream os;
    for (size_t i = 0; i < sizeof(a) / sizeof(uint64_t); ++i)
        if (la[i] != lb[i])
            os << " lane" << i << ": " << la[i] << " vs " << lb[i];
    return os.str();
}

void
expectSame(const char *tag, const RunOut &fast, const RunOut &ref)
{
    EXPECT_EQ(fast.completed, ref.completed) << tag;
    EXPECT_EQ(fast.cycles, ref.cycles) << tag;
    EXPECT_EQ(std::memcmp(&fast.perf, &ref.perf, sizeof(fast.perf)), 0)
        << tag << perfDiff(fast.perf, ref.perf);
    ASSERT_EQ(fast.probes.size(), ref.probes.size()) << tag;
    for (size_t i = 0; i < fast.probes.size(); ++i)
        ASSERT_TRUE(probeEq(fast.probes[i], ref.probes[i]))
            << tag << " probe " << i << " pc 0x" << std::hex
            << fast.probes[i].pc << " vs 0x" << ref.probes[i].pc;
}

/** One config per ablation axis plus the all-reference oracle. */
struct Ablation
{
    const char *name;
    xs::ModelOpts opts;
};

const Ablation kAblations[] = {
    {"no-bitset", {false, true, true}},
    {"no-skip", {true, false, true}},
    {"no-batch", {true, true, false}},
    {"reference", {false, false, false}},
};

class SchedDiff : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SchedDiff, FastPathsAreCycleExact)
{
    const uint64_t seed = GetParam();
    Rng rng(0x5eed0000 + seed);
    wl::RandomSpec spec;
    spec.nInsts = 200 + static_cast<unsigned>(seed % 5) * 80;
    spec.withFp = seed % 4 == 1;
    spec.withRvc = seed % 3 == 1;
    wl::Program prog = wl::randomShrinkable(rng, spec).assemble();

    constexpr Cycle kMaxCycles = 2'000'000;
    xs::ModelOpts fastOpts; // all fast paths on (the default)
    RunOut fast = runConfig(prog, fastOpts, kMaxCycles);
    ASSERT_TRUE(fast.completed) << "seed " << seed;
    ASSERT_GT(fast.probes.size(), 0u);

    for (const Ablation &ab : kAblations) {
        RunOut ref = runConfig(prog, ab.opts, kMaxCycles);
        expectSame(ab.name, fast, ref);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedDiff,
                         ::testing::Range<uint64_t>(1, 1 + kSeeds));

// Directed workloads stress patterns random programs rarely hit for
// long stretches: predictable tight loops (long idle runs between
// memory events — the skip path's bread and butter) and pointer
// chasing (DRAM-latency idle gaps).
TEST(SchedDiffDirected, SumLoopIsCycleExact)
{
    wl::Program prog = wl::sumProgram(20000);
    xs::ModelOpts fastOpts;
    RunOut fast = runConfig(prog, fastOpts, 5'000'000);
    ASSERT_TRUE(fast.completed);
    for (const Ablation &ab : kAblations)
        expectSame(ab.name, fast, runConfig(prog, ab.opts, 5'000'000));
}

TEST(SchedDiffDirected, CacheMissProxyIsCycleExact)
{
    auto prog = wl::buildProxy(wl::specIntSuite()[2], 400); // mcf proxy
    xs::ModelOpts fastOpts;
    RunOut fast = runConfig(prog, fastOpts, 20'000'000);
    ASSERT_TRUE(fast.completed);
    for (const Ablation &ab : kAblations)
        expectSame(ab.name, fast, runConfig(prog, ab.opts, 20'000'000));
}

// A capped run must stay exact too: the skip path is never allowed to
// overshoot the caller's cycle budget, so a run truncated mid-workload
// charges the identical counters in every configuration.
TEST(SchedDiffDirected, TruncatedRunIsCycleExact)
{
    auto prog = wl::coremarkProxy(50);
    constexpr Cycle kCap = 30'000; // well before completion
    xs::ModelOpts fastOpts;
    RunOut fast = runConfig(prog, fastOpts, kCap);
    EXPECT_FALSE(fast.completed);
    for (const Ablation &ab : kAblations) {
        RunOut ref = runConfig(prog, ab.opts, kCap);
        EXPECT_FALSE(ref.completed);
        expectSame(ab.name, fast, ref);
    }
}

} // namespace
