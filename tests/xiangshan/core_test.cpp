#include <gtest/gtest.h>

#include "nemu/nemu.h"
#include "workload/programs.h"
#include "xiangshan/soc.h"

namespace {

using namespace minjie;
using namespace minjie::xs;
namespace wl = minjie::workload;

Soc::RunResult
runProgram(Soc &soc, const wl::Program &prog, Cycle maxCycles = 5'000'000)
{
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);
    return soc.run(maxCycles);
}

TEST(Core, SumProgramCompletes)
{
    Soc soc(CoreConfig::nh());
    auto r = runProgram(soc, wl::sumProgram(1000));
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(soc.system().simctrl.exitCode(), 0u);
    const auto &p = soc.core(0).perf();
    EXPECT_GT(p.instrs, 3000u);
    // A trivial dependent loop cannot exceed a few IPC nor drop absurdly.
    EXPECT_GT(p.ipc(), 0.3);
    EXPECT_LT(p.ipc(), 6.0);
}

TEST(Core, CommitStreamMatchesNemu)
{
    // The DUT's commit probes must replay exactly the reference
    // model's instruction stream: pc sequence, rd writes, mem info.
    auto prog = wl::buildProxy(wl::specIntSuite()[5], 10); // sjeng proxy

    // Reference stream from NEMU.
    iss::System refSys(64);
    prog.loadInto(refSys.dram);
    nemu::Nemu ref(refSys.bus, refSys.dram, 0, prog.entry);
    ref.setHaltFn([&] { return refSys.simctrl.exited(); });

    struct RefRec
    {
        Addr pc;
        uint64_t rdVal;
        bool rdWritten;
    };
    std::vector<RefRec> refStream;
    for (int i = 0; i < 2'000'000 && !refSys.simctrl.exited(); ++i) {
        Addr pc = ref.state().pc;
        uint8_t rdBefore = 0;
        (void)rdBefore;
        iss::ExecInfo info;
        ref.step(&info);
        // Record every step (including the exit store).
        refStream.push_back({pc, 0, false});
    }

    // DUT commit stream.
    Soc soc(CoreConfig::nh());
    std::vector<Addr> dutPcs;
    std::vector<std::pair<uint8_t, uint64_t>> dutWrites;
    soc.core(0).setCommitHook([&](const difftest::CommitProbe &p) {
        dutPcs.push_back(p.pc);
        if (p.rdWritten)
            dutWrites.push_back({p.rd, p.rdValue});
    });
    auto r = runProgram(soc, prog);
    ASSERT_TRUE(r.completed);

    ASSERT_EQ(dutPcs.size(), refStream.size());
    for (size_t i = 0; i < dutPcs.size(); ++i)
        ASSERT_EQ(dutPcs[i], refStream[i].pc) << "commit index " << i;
}

TEST(Core, FinalArchStateMatchesReference)
{
    auto prog = wl::coremarkProxy(20);

    iss::System refSys(64);
    prog.loadInto(refSys.dram);
    iss::SpikeInterp ref(refSys.bus, 0, prog.entry);
    ref.setHaltFn([&] { return refSys.simctrl.exited(); });
    ref.run(10'000'000);

    Soc soc(CoreConfig::nh());
    auto r = runProgram(soc, prog, 20'000'000);
    ASSERT_TRUE(r.completed);

    const auto &dut = soc.core(0).oracleState();
    const auto &refSt = ref.state();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(dut.x[i], refSt.x[i]) << "x" << i;
}

TEST(Core, GoldenTimingPin)
{
    // Exact timing pin: the NH model on the coremark proxy must
    // reproduce these numbers to the cycle. The model is fully
    // deterministic, so any drift here is a (possibly accidental)
    // timing-model change — update the constants only alongside a
    // deliberate one, and say so in the commit message. The
    // sched_diff rig separately proves the fast paths can't be the
    // source of such a drift.
    Soc soc(CoreConfig::nh());
    auto r = runProgram(soc, wl::coremarkProxy(50));
    ASSERT_TRUE(r.completed);
    const auto &p = soc.core(0).perf();
    EXPECT_EQ(p.cycles, 96845u);
    EXPECT_EQ(p.instrs, 28592u);
    EXPECT_DOUBLE_EQ(p.ipc(), 28592.0 / 96845.0);
    EXPECT_EQ(p.tdRetiring, 8415u);
    EXPECT_EQ(p.tdFrontend, 5803u);
    EXPECT_EQ(p.tdBadSpec, 440u);
    EXPECT_EQ(p.tdBackendMem, 81693u);
    EXPECT_EQ(p.tdBackendCore, 494u);
    // The top-down decomposition is a partition of cycles: the five
    // buckets must sum exactly, with no residue lane.
    EXPECT_EQ(p.tdRetiring + p.tdFrontend + p.tdBadSpec +
                  p.tdBackendMem + p.tdBackendCore,
              p.cycles);
    EXPECT_EQ(p.branches, 6451u);
    EXPECT_EQ(p.branchMispredicts, 590u);
}

TEST(Core, PredictableLoopHasFewMispredicts)
{
    Soc soc(CoreConfig::nh());
    auto r = runProgram(soc, wl::sumProgram(20000));
    ASSERT_TRUE(r.completed);
    const auto &p = soc.core(0).perf();
    ASSERT_GT(p.branches, 20000u);
    // The loop branch is perfectly biased after warmup.
    EXPECT_LT(p.branchMispredicts * 100, p.branches);
}

TEST(Core, RandomBranchesHurtIpc)
{
    // entropy-heavy proxy vs a predictable one: the branchy one must
    // have both higher MPKI and lower IPC.
    wl::ProxySpec predictable{"pred", false, 64, 0, 30, 0, 0, 10, 0, 0};
    wl::ProxySpec random{"rand", false, 64, 0, 30, 100, 0, 10, 0, 0};

    Soc socA(CoreConfig::nh());
    auto ra = runProgram(socA, wl::buildProxy(predictable, 3000));
    ASSERT_TRUE(ra.completed);

    Soc socB(CoreConfig::nh());
    auto rb = runProgram(socB, wl::buildProxy(random, 3000));
    ASSERT_TRUE(rb.completed);

    EXPECT_GT(socB.core(0).perf().mpki(),
              socA.core(0).perf().mpki() + 2.0);
    EXPECT_LT(socB.core(0).perf().ipc(), socA.core(0).perf().ipc());
}

TEST(Core, CacheMissesHurtIpc)
{
    // Pointer chasing over 8MB vs 64KB working set.
    wl::ProxySpec small{"ws-small", false, 64, 60, 0, 0, 0, 10, 0, 0};
    wl::ProxySpec big{"ws-big", false, 8192, 60, 0, 0, 0, 10, 0, 0};

    Soc socA(CoreConfig::nh());
    auto ra = runProgram(socA, wl::buildProxy(small, 2000), 20'000'000);
    ASSERT_TRUE(ra.completed);

    Soc socB(CoreConfig::nh());
    auto rb = runProgram(socB, wl::buildProxy(big, 2000), 50'000'000);
    ASSERT_TRUE(rb.completed);

    EXPECT_LT(socB.core(0).perf().ipc(),
              socA.core(0).perf().ipc() * 0.7);
}

TEST(Core, NhOutperformsYqh)
{
    // The paper's headline: the second generation is markedly faster.
    // Use the realistic DDR memory model (the RTL-simulation rows of
    // Figure 12) on benchmarks whose working sets expose the
    // generational differences (L3, bigger window) within a feasible
    // simulation budget. Short cold-start runs over-charge NH for its
    // extra L3 hop on compulsory misses, so the budget must be large
    // enough for the working sets to establish.
    auto withDdr = [](CoreConfig c) {
        c.mem.dram.mode = minjie::uarch::DramCfg::Mode::Ddr;
        return c;
    };
    double nhSum = 0, yqhSum = 0;
    for (int b : {2, 8, 10}) { // mcf, omnetpp, xalancbmk proxies
        auto prog = wl::buildProxy(wl::specIntSuite()[b], 10'000'000);

        Soc nh(withDdr(CoreConfig::nh()));
        prog.loadInto(nh.system().dram);
        nh.setEntry(prog.entry);
        nh.runUntilInstrs(1'200'000, 400'000'000);
        nhSum += nh.core(0).perf().ipc();

        Soc yqh(withDdr(CoreConfig::yqh()));
        prog.loadInto(yqh.system().dram);
        yqh.setEntry(prog.entry);
        yqh.runUntilInstrs(1'200'000, 400'000'000);
        yqhSum += yqh.core(0).perf().ipc();
    }
    EXPECT_GT(nhSum, yqhSum * 1.02)
        << "NH ipc sum " << nhSum << " vs YQH " << yqhSum;
}

TEST(Core, StoreForwardingHappens)
{
    // Stores immediately re-loaded: the store queue must forward.
    wl::Layout layout;
    wl::Asm a(layout.codeBase);
    a.li(wl::s0, layout.dataBase);
    a.li(wl::s2, 5000);
    wl::Label loop = a.boundLabel();
    a.store(isa::Op::Sd, wl::s2, 0, wl::s0);
    a.load(isa::Op::Ld, wl::t1, 0, wl::s0);
    a.rtype(isa::Op::Add, wl::s6, wl::s6, wl::t1);
    a.itype(isa::Op::Addi, wl::s2, wl::s2, -1);
    a.branch(isa::Op::Bne, wl::s2, wl::zero, loop);
    a.exit(0);
    wl::Program prog;
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());

    Soc soc(CoreConfig::nh());
    auto r = runProgram(soc, prog);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(soc.core(0).perf().storeForwards, 4000u);
}

TEST(Core, FusionAndMoveElimCountersTick)
{
    // A program full of mv and fusable pairs.
    wl::Layout layout;
    wl::Asm a(layout.codeBase);
    a.li(wl::s2, 3000);
    wl::Label loop = a.boundLabel();
    a.itype(isa::Op::Addi, wl::t1, wl::s2, 0);  // mv t1, s2
    a.itype(isa::Op::Slli, wl::t2, wl::t1, 3);  // pair head
    a.rtype(isa::Op::Add, wl::t2, wl::t2, wl::s2); // fusable tail
    a.itype(isa::Op::Addi, wl::s2, wl::s2, -1);
    a.branch(isa::Op::Bne, wl::s2, wl::zero, loop);
    a.exit(0);
    wl::Program prog;
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());

    Soc soc(CoreConfig::nh());
    auto r = runProgram(soc, prog);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(soc.core(0).perf().movesEliminated, 2500u);
    EXPECT_GT(soc.core(0).perf().fusedPairs, 2500u);

    // YQH has neither feature.
    Soc yqh(CoreConfig::yqh());
    auto ry = runProgram(yqh, prog);
    ASSERT_TRUE(ry.completed);
    EXPECT_EQ(yqh.core(0).perf().movesEliminated, 0u);
    EXPECT_EQ(yqh.core(0).perf().fusedPairs, 0u);
}

TEST(Core, ReadyHistogramCollected)
{
    Soc soc(CoreConfig::nh());
    auto r = runProgram(soc, wl::buildProxy(wl::specIntSuite()[5], 100));
    ASSERT_TRUE(r.completed);
    const auto &p = soc.core(0).perf();
    EXPECT_GT(p.readySamples, 0u);
    uint64_t total = 0;
    for (auto v : p.readyHist)
        total += v;
    EXPECT_EQ(total, p.readySamples);
}

TEST(Core, DualCoreBothMakeProgress)
{
    // Same program on both cores (hart-id agnostic workload).
    auto prog = wl::sumProgram(2000);
    Soc soc(CoreConfig::nh(), 2);
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);
    auto r = soc.run(5'000'000);
    ASSERT_TRUE(r.completed);
    // The first core to exit halts the shared SimCtrl, so the other
    // core may stop a little short of the full program.
    EXPECT_GT(soc.core(0).perf().instrs, 4000u);
    EXPECT_GT(soc.core(1).perf().instrs, 4000u);
}

TEST(Core, FaultInjectionCorruptsOneProbe)
{
    auto prog = wl::sumProgram(50);
    Soc soc(CoreConfig::nh());

    // sum loop has no loads; use a load-bearing program.
    wl::Layout layout;
    wl::Asm a(layout.codeBase);
    a.li(wl::s0, layout.dataBase);
    a.store(isa::Op::Sd, wl::s0, 0, wl::s0);
    a.load(isa::Op::Ld, wl::t1, 0, wl::s0);
    a.load(isa::Op::Ld, wl::t2, 0, wl::s0);
    a.exit(0);
    wl::Program p2;
    p2.entry = layout.codeBase;
    p2.segments.push_back(a.finish());

    unsigned corrupted = 0;
    soc.core(0).setCommitHook([&](const difftest::CommitProbe &p) {
        if (p.isLoad && p.rdWritten &&
            p.rdValue != layout.dataBase)
            ++corrupted;
    });
    soc.core(0).injectLoadFault(0xdead0000);
    auto r = runProgram(soc, p2);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(corrupted, 1u);
}

} // namespace
