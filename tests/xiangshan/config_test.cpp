#include <gtest/gtest.h>

#include "xiangshan/config.h"

namespace {

using namespace minjie::xs;

TEST(Config, YqhMatchesTable2)
{
    auto c = CoreConfig::yqh();
    EXPECT_EQ(c.ubtbEntries, 32u);
    EXPECT_EQ(c.btbEntries, 2048u);
    EXPECT_EQ(c.tageEntries, 16384u);
    EXPECT_FALSE(c.hasIttage);
    EXPECT_EQ(c.robSize, 192u);
    EXPECT_EQ(c.lqSize, 64u);
    EXPECT_EQ(c.sqSize, 48u);
    EXPECT_EQ(c.intPrf, 160u);
    EXPECT_EQ(c.fpPrf, 160u);
    EXPECT_FALSE(c.fusion);
    EXPECT_FALSE(c.moveElim);
    EXPECT_EQ(c.mem.l1i.sizeBytes, 16u * 1024);
    EXPECT_TRUE(c.mem.l1plus.has_value());
    EXPECT_EQ(c.mem.l1plus->sizeBytes, 128u * 1024);
    EXPECT_EQ(c.mem.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(c.mem.l2.sizeBytes, 1024u * 1024);
    EXPECT_TRUE(c.mem.l2.inclusive);
    EXPECT_FALSE(c.mem.l3.has_value());
    EXPECT_EQ(c.mem.itlb.entries, 40u);
    EXPECT_EQ(c.mem.dtlb.entries, 40u);
    EXPECT_EQ(c.mem.stlb.entries, 4096u);
    EXPECT_EQ(c.fetchWidth, 8u);
    EXPECT_EQ(c.decodeWidth, 6u);
}

TEST(Config, NhMatchesTable2)
{
    auto c = CoreConfig::nh();
    EXPECT_EQ(c.ubtbEntries, 256u);
    EXPECT_EQ(c.btbEntries, 4096u);
    EXPECT_TRUE(c.hasIttage);
    EXPECT_EQ(c.robSize, 256u);
    EXPECT_EQ(c.lqSize, 80u);
    EXPECT_EQ(c.sqSize, 64u);
    EXPECT_EQ(c.intPrf, 192u);
    EXPECT_TRUE(c.fusion);
    EXPECT_TRUE(c.moveElim);
    EXPECT_TRUE(c.splitStaStd);
    EXPECT_EQ(c.mem.l1i.sizeBytes, 128u * 1024);
    EXPECT_EQ(c.mem.l1d.sizeBytes, 128u * 1024);
    EXPECT_FALSE(c.mem.l1plus.has_value());
    EXPECT_FALSE(c.mem.l2.inclusive);
    EXPECT_TRUE(c.mem.l2Private);
    ASSERT_TRUE(c.mem.l3.has_value());
    EXPECT_EQ(c.mem.l3->sizeBytes, 6u * 1024 * 1024);
    EXPECT_EQ(c.mem.l3->ways, 6u);
    EXPECT_EQ(c.mem.dtlb.entries, 136u);
    EXPECT_EQ(c.mem.stlb.entries, 2048u);
}

TEST(Config, Gem5ishIsWeaker)
{
    auto g = CoreConfig::gem5ish();
    auto n = CoreConfig::nh();
    EXPECT_GT(g.mispredictPenalty, n.mispredictPenalty);
    EXPECT_LT(g.fetchWidth, n.fetchWidth);
    EXPECT_FALSE(g.fusion);
    EXPECT_GT(g.mem.l1d.hitLatency, n.mem.l1d.hitLatency);
}

TEST(Config, ExecutionUnitsMatchTable2)
{
    auto c = CoreConfig::nh();
    using minjie::isa::FuType;
    EXPECT_EQ(c.fuFor(FuType::Alu).count, 4u);
    EXPECT_EQ(c.fuFor(FuType::Ldu).count, 2u); // two load pipes
    EXPECT_EQ(c.fuFor(FuType::Fma).count, 4u);
    EXPECT_EQ(c.fuFor(FuType::Fma).latency, 5u); // cascade FMA
    EXPECT_FALSE(c.fuFor(FuType::Div).pipelined);
    EXPECT_FALSE(c.fuFor(FuType::Fdiv).pipelined);
    // NH splits store address/data with 2 units each.
    EXPECT_EQ(c.fuFor(FuType::Sta).count, 2u);
    EXPECT_EQ(c.fuFor(FuType::Std).count, 2u);
    // YQH has a unified single store pipe.
    auto y = CoreConfig::yqh();
    EXPECT_EQ(y.fuFor(FuType::Sta).count, 1u);
}

} // namespace
