#include <gtest/gtest.h>

#include "archdb/archdb.h"
#include "workload/programs.h"
#include "xiangshan/soc.h"

namespace {

using namespace minjie;
using namespace minjie::archdb;
namespace wl = minjie::workload;

TEST(ArchDB, ProbeTablesAutoCreated)
{
    ArchDB db;
    EXPECT_TRUE(db.hasTable("commits"));
    EXPECT_TRUE(db.hasTable("stores"));
    EXPECT_TRUE(db.hasTable("transactions"));
}

TEST(ArchDB, CommitRecordsQueryable)
{
    ArchDB db;
    difftest::CommitProbe p;
    p.pc = 0x80000000;
    p.inst = 0x002081b3; // add gp, ra, sp
    p.rd = 3;
    p.rdWritten = true;
    p.rdValue = 42;
    db.recordCommit(p, 100);
    p.pc = 0x80000004;
    db.recordCommit(p, 101);

    auto &commits = db.table("commits");
    EXPECT_EQ(commits.size(), 2u);
    auto rows = commits.selectEq("pc", Value(uint64_t(0x80000000)));
    ASSERT_EQ(rows.size(), 1u);
    int disasmCol = commits.columnIndex("disasm");
    ASSERT_GE(disasmCol, 0);
    EXPECT_NE(rows[0][disasmCol].str.find("add"), std::string::npos);
}

TEST(ArchDB, TransactionHistogram)
{
    ArchDB db;
    int c1;
    db.recordTransaction({uarch::TxnKind::AcquireShared, 0x100, &c1,
                          "L1D.0", 1});
    db.recordTransaction({uarch::TxnKind::AcquireShared, 0x140, &c1,
                          "L1D.0", 2});
    db.recordTransaction({uarch::TxnKind::ProbeInvalid, 0x100, &c1,
                          "L1D.1", 3});
    auto h = db.table("transactions").histogram("kind");
    EXPECT_EQ(h["AcquireShared"], 2u);
    EXPECT_EQ(h["ProbeInvalid"], 1u);
}

TEST(ArchDB, UserTables)
{
    ArchDB db;
    auto &t = db.table("bpu_events", {"cycle", "pc", "taken"});
    t.insert({Value(uint64_t(1)), Value(uint64_t(0x80000000)), Value(1)});
    EXPECT_EQ(db.table("bpu_events").size(), 1u);
    EXPECT_EQ(t.columnIndex("taken"), 2);
    EXPECT_EQ(t.columnIndex("nope"), -1);
}

TEST(ArchDB, SelectWhere)
{
    ArchDB db;
    difftest::StoreProbe s;
    for (uint64_t i = 0; i < 10; ++i) {
        s.paddr = 0x80000000 + i * 64;
        s.data = i;
        s.size = 8;
        db.recordStore(s, i);
    }
    auto &stores = db.table("stores");
    int dataCol = stores.columnIndex("data");
    auto big = stores.selectWhere([&](const Row &r) {
        return r[dataCol].num >= 7;
    });
    EXPECT_EQ(big.size(), 3u);
}

TEST(ArchDB, EndToEndWithSimulation)
{
    // Wire ArchDB into a full XIANGSHAN run: commits, stores and cache
    // transactions all land in tables (the Section IV-C debugging flow).
    ArchDB db;
    xs::Soc soc(xs::CoreConfig::nh());
    soc.core(0).setCommitHook([&](const difftest::CommitProbe &p) {
        db.recordCommit(p, soc.core(0).now());
    });
    soc.core(0).setStoreHook([&](const difftest::StoreProbe &p) {
        db.recordStore(p, soc.core(0).now());
    });
    soc.mem().setTxnLog([&](const uarch::Transaction &t) {
        db.recordTransaction(t);
    });

    auto prog = wl::coremarkProxy(3);
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);
    auto r = soc.run(5'000'000);
    ASSERT_TRUE(r.completed);

    EXPECT_GT(db.table("commits").size(), 1000u);
    EXPECT_GT(db.table("transactions").size(), 10u);
    auto report = db.report();
    EXPECT_NE(report.find("commits"), std::string::npos);

    // The debugging query pattern: find all transactions on one line.
    auto &txns = db.table("transactions");
    ASSERT_GT(txns.size(), 0u);
    int lineCol = txns.columnIndex("line");
    uint64_t someLine = txns.rows()[0][lineCol].num;
    auto hits = txns.selectEq("line", Value(someLine));
    EXPECT_GE(hits.size(), 1u);
}

} // namespace
