#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include <unistd.h>

#include "lightsss/lightsss.h"
#include "lightsss/sss.h"
#include "nemu/nemu.h"
#include "iss/system.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::lightsss;
namespace wl = minjie::workload;

std::string
tmpPath(const char *tag)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "/tmp/lightsss_test_%s_%d", tag,
                  getpid());
    return buf;
}

TEST(LightSSS, ForkIsCheap)
{
    LightSSS sss({1000, 2, true});
    // Tick across three intervals: three forks.
    for (Cycle c = 0; c <= 3000; c += 500) {
        auto role = sss.tick(c);
        ASSERT_EQ(role, LightSSS::Role::Parent);
    }
    EXPECT_GE(sss.stats().forks, 3u);
    // The headline claim: a fork costs far less than an SSS image
    // (paper: 535us vs 3.671s). Allow generous slack for CI noise.
    EXPECT_LT(sss.stats().lastForkUs, 200'000u);
    sss.discardAll();
}

TEST(LightSSS, KeepsOnlyTwoSnapshots)
{
    LightSSS sss({100, 2, true});
    for (Cycle c = 0; c <= 1000; c += 100)
        sss.tick(c);
    EXPECT_GE(sss.stats().kills, 8u);
    sss.discardAll();
}

TEST(LightSSS, ReplayChildReRunsWindow)
{
    // Full protocol: simulate with periodic snapshots; detect a
    // "failure"; the oldest snapshot replays the window and reports
    // its replayed cycle range through a file.
    std::string marker = tmpPath("replay");
    std::remove(marker.c_str());

    LightSSS sss({1000, 2, true});
    const Cycle failAt = 3456;
    bool replayed = false;

    for (Cycle c = 0; c <= failAt; ++c) {
        auto role = sss.tick(c);
        if (role == LightSSS::Role::ReplayChild) {
            // We are the snapshot: our cycle counter is c (the fork
            // point). Replay up to the failure target.
            std::ofstream out(marker);
            out << sss.snapshotCycle() << " " << sss.replayTargetCycle();
            out.close();
            LightSSS::finishReplay(0);
        }
        // ... simulation work would happen here ...
    }
    ASSERT_TRUE(sss.triggerReplay(failAt));
    replayed = true;

    ASSERT_TRUE(replayed);
    std::ifstream in(marker);
    ASSERT_TRUE(in.good()) << "replay child did not run";
    Cycle snapCycle, target;
    in >> snapCycle >> target;
    EXPECT_EQ(target, failAt);
    // Oldest surviving snapshot: at most 2 intervals before failure.
    EXPECT_LE(failAt - snapCycle, 2000u);
    EXPECT_GT(snapCycle, 0u);
    std::remove(marker.c_str());
}

TEST(LightSSS, ReplayChildSeesSnapshotMemoryState)
{
    // The property that makes fork() snapshots work: the child sees
    // the memory image as of the fork, not the parent's later writes.
    std::string marker = tmpPath("mem");
    std::remove(marker.c_str());

    static volatile uint64_t counter = 0;
    LightSSS sss({100, 2, true});
    for (Cycle c = 0; c <= 250; ++c) {
        counter = c;
        auto role = sss.tick(c);
        if (role == LightSSS::Role::ReplayChild) {
            std::ofstream out(marker);
            out << counter; // must be the fork-time value
            out.close();
            LightSSS::finishReplay(0);
        }
    }
    ASSERT_TRUE(sss.triggerReplay(250));
    std::ifstream in(marker);
    ASSERT_TRUE(in.good());
    uint64_t seen;
    in >> seen;
    // Oldest snapshot was taken at cycle 100 (c=0 fork then c=100).
    EXPECT_LE(seen, 100u);
    std::remove(marker.c_str());
}

TEST(LightSSS, CycleRewindDoesNotForkImmediately)
{
    // Regression: tick() computed `now - lastForkCycle_` unsigned, so
    // a rewound cycle counter (checkpoint restore, a fresh run reusing
    // the instance) wrapped to a huge interval and forked on the spot.
    LightSSS sss({1000, 2, true});
    sss.tick(0);
    sss.tick(5000);
    uint64_t forks = sss.stats().forks;
    ASSERT_GE(forks, 2u);

    // Rewind: must re-arm, not fork off the wrapped difference.
    EXPECT_EQ(sss.tick(100), LightSSS::Role::Parent);
    EXPECT_EQ(sss.stats().forks, forks);
    // Still within one interval of the re-armed base.
    EXPECT_EQ(sss.tick(1099), LightSSS::Role::Parent);
    EXPECT_EQ(sss.stats().forks, forks);
    // One full interval after the rewound base: forks again.
    sss.tick(1100);
    EXPECT_EQ(sss.stats().forks, forks + 1);
    sss.discardAll();
}

TEST(LightSSS, ReplayChildRearmsForkInterval)
{
    // A woken replay child re-simulates its window, often from a
    // rewound driver clock. It must not spawn snapshot grandchildren
    // from the parent's stale fork base while doing so.
    std::string marker = tmpPath("rearm");
    std::remove(marker.c_str());

    LightSSS sss({1000, 2, true});
    const Cycle failAt = 2500;
    for (Cycle c = 0; c <= failAt; ++c) {
        auto role = sss.tick(c);
        if (role == LightSSS::Role::ReplayChild) {
            uint64_t forksAtWake = sss.stats().forks;
            // Replay driver restarts its local clock at 0 and ticks
            // through a window shorter than one interval.
            for (Cycle r = 0; r < 500; ++r)
                sss.tick(r);
            std::ofstream out(marker);
            out << (sss.stats().forks - forksAtWake);
            out.close();
            LightSSS::finishReplay(0);
        }
    }
    ASSERT_TRUE(sss.triggerReplay(failAt));
    std::ifstream in(marker);
    ASSERT_TRUE(in.good()) << "replay child did not run";
    uint64_t childForks = ~0ULL;
    in >> childForks;
    EXPECT_EQ(childForks, 0u)
        << "replay child forked snapshots inside its window";
    std::remove(marker.c_str());
}

TEST(LightSSS, ReplayChildDoesNotFlushInheritedBuffers)
{
    // Regression: finishReplay() called fflush(nullptr), which also
    // flushed FILE streams inherited from the parent at fork time. The
    // parent flushes those buffers itself, and fork() shares the file
    // offset, so every byte pending at fork time landed in the file
    // twice.
    std::string path = tmpPath("dup");
    std::remove(path.c_str());
    FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    setvbuf(f, nullptr, _IOFBF, 1 << 16);

    LightSSS sss({1000, 2, true});
    std::fputs("pending-bytes", f); // buffered, deliberately unflushed
    auto role = sss.tick(0);        // forks with the bytes pending
    if (role == LightSSS::Role::ReplayChild) {
        // Child: exit the replay path. Must NOT emit the parent's
        // pending bytes.
        LightSSS::finishReplay(0);
    }

    std::fflush(f); // the parent's copy: the only legitimate write
    ASSERT_TRUE(sss.triggerReplay(500));
    std::fclose(f);

    std::ifstream in(path);
    std::string got((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(got, "pending-bytes")
        << "replay child flushed buffers it does not own";
    std::remove(path.c_str());
}

TEST(LightSSS, NoSnapshotMeansNoReplay)
{
    LightSSS sss({1'000'000, 2, true});
    LightSSS dis({1000, 2, false});
    EXPECT_FALSE(dis.enabled() && false);
    // Disabled instance never forks.
    for (Cycle c = 0; c < 5000; c += 500)
        EXPECT_EQ(dis.tick(c), LightSSS::Role::Parent);
    EXPECT_EQ(dis.stats().forks, 0u);
    EXPECT_FALSE(dis.triggerReplay(123));
}

TEST(Sss, FullImageSnapshotAndRestore)
{
    iss::System sys(32);
    auto prog = wl::sumProgram(100);
    prog.loadInto(sys.dram);
    nemu::Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });

    SssSnapshotter sss(sys.dram);
    nemu.run(50);
    iss::ArchState mid = nemu.state();
    size_t bytes = sss.takeSnapshot(nemu.state(), 50);
    EXPECT_GT(bytes, 4096u);

    nemu.run(1000); // run further, dirtying state

    iss::ArchState restored;
    Cycle cycle = sss.restoreOldest(restored);
    EXPECT_EQ(cycle, 50u);
    EXPECT_EQ(restored.pc, mid.pc);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(restored.x[i], mid.x[i]) << i;
}

TEST(Sss, SnapshotCostGrowsWithMemory)
{
    iss::System sys(256);
    // Dirty a lot of pages.
    for (Addr a = 0; a < 64 * 1024 * 1024; a += 4096)
        sys.dram.write(iss::DRAM_BASE + a, 8, a);
    iss::ArchState st;
    SssSnapshotter sss(sys.dram);
    sss.takeSnapshot(st, 0);
    uint64_t big = sss.lastSnapshotUs();

    iss::System small(16);
    for (Addr a = 0; a < 1024 * 1024; a += 4096)
        small.dram.write(iss::DRAM_BASE + a, 8, a);
    SssSnapshotter sss2(small.dram);
    sss2.takeSnapshot(st, 0);
    uint64_t smallUs = sss2.lastSnapshotUs();

    // The paper's point: SSS cost scales with simulated memory.
    EXPECT_GT(big, smallUs * 4);
}

TEST(LightSSS, ForkBeatsSssByOrdersOfMagnitude)
{
    // Section III-C4: fork() ~535us vs SSS ~3.7s. Verify the ratio
    // holds with a heavily dirtied memory image.
    iss::System sys(256);
    for (Addr a = 0; a < 128 * 1024 * 1024; a += 4096)
        sys.dram.write(iss::DRAM_BASE + a, 8, a);

    iss::ArchState st;
    SssSnapshotter sssFull(sys.dram);
    sssFull.takeSnapshot(st, 0);
    uint64_t sssUs = sssFull.lastSnapshotUs();

    LightSSS light({1000, 2, true});
    light.tick(0);
    light.tick(1000);
    uint64_t forkUs = light.stats().lastForkUs;
    light.discardAll();

    EXPECT_LT(forkUs * 10, sssUs)
        << "fork " << forkUs << "us vs SSS " << sssUs << "us";
}

} // namespace
