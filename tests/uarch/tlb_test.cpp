#include <gtest/gtest.h>

#include "uarch/tlb.h"

namespace {

using namespace minjie;
using namespace minjie::uarch;

TEST(TimingTlb, HitAfterInsert)
{
    TimingTlb tlb({40, 0, 1});
    EXPECT_FALSE(tlb.lookup(0x80001));
    tlb.insert(0x80001);
    EXPECT_TRUE(tlb.lookup(0x80001));
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(TimingTlb, CapacityEvictsLru)
{
    TimingTlb tlb({4, 0, 1});
    for (Addr v = 0; v < 4; ++v)
        tlb.insert(v);
    // Touch 1-3 so 0 is LRU.
    for (Addr v = 1; v < 4; ++v)
        EXPECT_TRUE(tlb.lookup(v));
    tlb.insert(100);
    EXPECT_FALSE(tlb.lookup(0));
    EXPECT_TRUE(tlb.lookup(100));
}

TEST(TimingTlb, SetAssociativeIndexing)
{
    TimingTlb tlb({8, 4, 2}); // 2 sets x 4 ways
    // vpns with the same parity collide in one set; 4 fit, 5th evicts.
    for (Addr v = 0; v < 10; v += 2)
        tlb.insert(v);
    EXPECT_FALSE(tlb.lookup(0));
    EXPECT_TRUE(tlb.lookup(8));
    // Other set untouched.
    tlb.insert(1);
    EXPECT_TRUE(tlb.lookup(1));
}

TEST(TlbPath, MissEscalatesThroughStlbToWalker)
{
    TimingTlb stlb({64, 4, 2});
    TlbPath path({4, 0, 1}, stlb, 50);

    // Cold: L1 miss + STLB miss + walk.
    unsigned cold = path.access(0x1000);
    EXPECT_GE(cold, 50u);
    // Warm: L1 hit.
    unsigned warm = path.access(0x1008); // same page
    EXPECT_EQ(warm, 1u);
    // After flushing the L1, the STLB still has it: no walk.
    path.flush();
    unsigned stlbHit = path.access(0x1000);
    EXPECT_GT(stlbHit, warm);
    EXPECT_LT(stlbHit, cold);
}

TEST(TlbPath, SharedStlbBetweenPaths)
{
    TimingTlb stlb({64, 4, 2});
    TlbPath ipath({4, 0, 1}, stlb, 50);
    TlbPath dpath({4, 0, 1}, stlb, 50);

    dpath.access(0x2000); // walks, fills STLB
    unsigned viaI = ipath.access(0x2000);
    EXPECT_LT(viaI, 50u); // STLB hit, no walk
}

} // namespace
