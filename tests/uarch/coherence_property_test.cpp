/**
 * Property-based coherence testing: random load/store sequences from
 * two cores over a small line set must never violate the
 * single-writer/multiple-reader invariant, checked both directly on
 * the cache states after every access and via the transaction-driven
 * permission scoreboard (the DiffTest checker, here exercised
 * standalone).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "difftest/scoreboard.h"
#include "uarch/hierarchy.h"

namespace {

using namespace minjie;
using namespace minjie::uarch;

MemCfg
smallDualCfg()
{
    MemCfg cfg;
    cfg.l1i = {8 * 1024, 2, 1, 64, false, 4};
    cfg.l1d = {8 * 1024, 2, 2, 64, false, 4};
    cfg.l2 = {32 * 1024, 4, 10, 64, false, 8};
    cfg.l2Private = true;
    cfg.l3 = CacheCfg{64 * 1024, 4, 20, 64, false, 8};
    cfg.dram.amatCycles = 100;
    return cfg;
}

/** Direct invariant check over the L1 data caches. */
void
checkSingleWriter(MemHierarchy &mem, Addr line)
{
    CohState s0 = mem.l1d(0).state(line);
    CohState s1 = mem.l1d(1).state(line);
    bool excl0 = s0 == CohState::E || s0 == CohState::M;
    bool excl1 = s1 == CohState::E || s1 == CohState::M;
    // Never both exclusive; never exclusive while the peer holds any.
    ASSERT_FALSE(excl0 && excl1) << std::hex << line;
    if (excl0) {
        ASSERT_EQ(s1, CohState::I) << std::hex << line;
    }
    if (excl1) {
        ASSERT_EQ(s0, CohState::I) << std::hex << line;
    }
}

class CoherenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoherenceProperty, RandomTrafficKeepsInvariants)
{
    Rng rng(0xc0e + GetParam());
    MemHierarchy mem(smallDualCfg(), 2);
    difftest::PermissionScoreboard sb;
    mem.setTxnLog([&](const Transaction &t) { sb.onTransaction(t); });

    // 16 contended lines.
    std::vector<Addr> lines;
    for (int i = 0; i < 16; ++i)
        lines.push_back(0x80000000 + i * 64);

    for (Cycle now = 0; now < 4000; ++now) {
        HartId core = static_cast<HartId>(rng.below(2));
        Addr addr = lines[rng.below(lines.size())] + rng.below(8) * 8;
        bool write = rng.chance(40);
        if (write)
            mem.store(core, addr, addr, now);
        else
            mem.load(core, addr, addr, now);

        checkSingleWriter(mem, addr & ~63ULL);
    }

    EXPECT_TRUE(sb.ok()) << sb.violations().front();
    EXPECT_GT(sb.transactionsChecked(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceProperty,
                         ::testing::Range(0, 6));

TEST(CoherenceProperty, WritebackPreservesSingleWriterAcrossLevels)
{
    // Fill one core's L1D to force writebacks of modified lines, then
    // let the peer read them: the values' home moves down the
    // hierarchy but exclusivity must be revoked.
    MemHierarchy mem(smallDualCfg(), 2);
    // Write 16 KB from core 0: exceeds its 8 KB L1D.
    for (Addr a = 0; a < 16 * 1024; a += 64)
        mem.store(0, 0x80000000 + a, 0x80000000 + a, a / 64);
    // Core 1 reads everything back.
    for (Addr a = 0; a < 16 * 1024; a += 64) {
        Addr addr = 0x80000000 + a;
        mem.load(1, addr, addr, 1000 + a / 64);
        CohState s0 = mem.l1d(0).state(addr);
        EXPECT_NE(s0, CohState::M) << std::hex << addr;
        EXPECT_NE(s0, CohState::E) << std::hex << addr;
    }
}

TEST(CoherenceProperty, ClosedLoopLatenciesStayBounded)
{
    // Closed-loop traffic (each request issues after the previous one
    // completes, as a blocking core would): latencies stay within a
    // DRAM round trip plus bounded probe overheads. (Open-loop
    // hammering above the service rate legitimately builds unbounded
    // MSHR queueing delay, so that is not asserted.)
    Rng rng(0xb0b);
    MemHierarchy mem(smallDualCfg(), 2);
    unsigned worst = 0;
    Cycle now = 0;
    for (int i = 0; i < 2000; ++i) {
        HartId core = static_cast<HartId>(rng.below(2));
        Addr addr = 0x80000000 + rng.below(64) * 64;
        unsigned lat = rng.chance(50) ? mem.store(core, addr, addr, now)
                                      : mem.load(core, addr, addr, now);
        worst = std::max(worst, lat);
        now += lat + 1;
    }
    EXPECT_LT(worst, 1000u);
}

} // namespace
