#include <gtest/gtest.h>

#include "common/rng.h"
#include "uarch/predictors.h"

namespace {

using namespace minjie;
using namespace minjie::uarch;

namespace {
/** Drive one fetch-predict/commit-train round like the core does. */
bool
trainOnce(Tage &tage, Addr pc, bool taken)
{
    auto p = tage.predict(pc);
    tage.pushHistory(taken);
    tage.update(p, taken);
    return p.taken == taken;
}
} // namespace

TEST(Tage, LearnsAlwaysTaken)
{
    Tage tage;
    const Addr pc = 0x80001000;
    for (int i = 0; i < 64; ++i)
        trainOnce(tage, pc, true);
    auto p = tage.predict(pc);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.confident);
}

TEST(Tage, LearnsLoopPattern)
{
    // Pattern TTTN repeated: needs history, not just bias.
    Tage tage;
    const Addr pc = 0x80002000;
    int correct = 0, total = 0;
    for (int i = 0; i < 4000; ++i) {
        bool taken = (i % 4) != 3;
        auto p = tage.predict(pc);
        tage.pushHistory(taken);
        if (i > 2000) { // after warmup
            ++total;
            if (p.taken == taken)
                ++correct;
        }
        tage.update(p, taken);
    }
    // A history-based predictor should nail this pattern.
    EXPECT_GT(correct * 100, total * 95)
        << correct << "/" << total;
}

TEST(Tage, RandomBranchIsUnconfidentOrWrongHalfTheTime)
{
    Tage tage;
    Rng rng(0x7a6e);
    const Addr pc = 0x80003000;
    int wrong = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        bool taken = rng.chance(50);
        if (!trainOnce(tage, pc, taken))
            ++wrong;
    }
    // Cannot beat a coin by much.
    EXPECT_GT(wrong, n / 3);
}

TEST(Tage, ManyBranchesInterleaved)
{
    // Aliasing stress: 256 branches with distinct fixed behaviours.
    Tage tage;
    std::vector<Addr> pcs;
    for (int i = 0; i < 256; ++i)
        pcs.push_back(0x80010000 + i * 8);
    for (int round = 0; round < 60; ++round)
        for (int i = 0; i < 256; ++i)
            trainOnce(tage, pcs[i], (i & 1) != 0);
    int correct = 0;
    for (int i = 0; i < 256; ++i)
        if (tage.predict(pcs[i]).taken == ((i & 1) != 0))
            ++correct;
    EXPECT_GT(correct, 240);
}

TEST(Ittage, LearnsMonomorphicTarget)
{
    Ittage it;
    const Addr pc = 0x80004000;
    for (int i = 0; i < 16; ++i) {
        auto p = it.predict(pc);
        it.pushHistory(0x80008888);
        it.update(p, 0x80008888);
    }
    EXPECT_EQ(it.predict(pc).target, 0x80008888u);
}

TEST(Ittage, LearnsHistoryCorrelatedTargets)
{
    // Target alternates with the preceding path: ITTAGE's tagged
    // tables should beat the last-target base predictor.
    Ittage it;
    const Addr pc = 0x80005000;
    int correct = 0, total = 0;
    for (int i = 0; i < 3000; ++i) {
        Addr filler = 0x80000100 + (i % 2) * 64;
        it.pushHistory(filler);
        Addr target = (i % 2) ? 0x80009000 : 0x8000a000;
        auto p = it.predict(pc);
        it.pushHistory(target);
        if (i > 1500) {
            ++total;
            if (p.target == target)
                ++correct;
        }
        it.update(p, target);
    }
    EXPECT_GT(correct * 100, total * 80) << correct << "/" << total;
}

TEST(MicroBtb, HitAndMiss)
{
    MicroBtb ubtb(32);
    Addr target;
    bool taken;
    EXPECT_FALSE(ubtb.predict(0x80001000, target, taken));
    ubtb.update(0x80001000, 0x80002000, true);
    ASSERT_TRUE(ubtb.predict(0x80001000, target, taken));
    EXPECT_EQ(target, 0x80002000u);
    EXPECT_TRUE(taken);
    // Conflicting pc evicts (direct-mapped).
    ubtb.update(0x80001000 + 32 * 2, 0x80003000, false);
    EXPECT_FALSE(ubtb.predict(0x80001000, target, taken));
}

TEST(Btb, AssociativityAvoidsConflicts)
{
    Btb btb(64, 4);
    // Four pcs mapping to the same set coexist.
    for (int i = 0; i < 4; ++i)
        btb.update(0x80000000 + i * 16 * 2, 0x90000000 + i);
    Addr target;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(btb.predict(0x80000000 + i * 16 * 2, target)) << i;
        EXPECT_EQ(target, 0x90000000u + i);
    }
    // A fifth evicts the LRU (the first inserted).
    btb.update(0x80000000 + 4 * 16 * 2, 0x90000004);
    EXPECT_FALSE(btb.predict(0x80000000, target));
    EXPECT_TRUE(btb.predict(0x80000000 + 16 * 2, target));
}

TEST(Ras, PushPopOrder)
{
    Ras ras(4);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u); // empty
}

TEST(Ras, OverflowWraps)
{
    Ras ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 0u);
}

} // namespace
