#include <gtest/gtest.h>

#include "uarch/hierarchy.h"

namespace {

using namespace minjie;
using namespace minjie::uarch;

MemCfg
dualCoreNhCfg()
{
    MemCfg cfg;
    cfg.l1i = {128 * 1024, 8, 1, 64, false, 8};
    cfg.l1d = {128 * 1024, 8, 2, 64, false, 16};
    cfg.l2 = {1024 * 1024, 8, 14, 64, false, 32};
    cfg.l2Private = true;
    cfg.l3 = CacheCfg{6 * 1024 * 1024, 6, 30, 64, false, 32};
    cfg.dram.mode = DramCfg::Mode::FixedAmat;
    cfg.dram.amatCycles = 200;
    return cfg;
}

TEST(Cache, HitFasterThanMiss)
{
    MemCfg cfg;
    MemHierarchy mem(cfg, 1);
    unsigned missLat = mem.load(0, 0x80001000, 0x80001000, 0);
    unsigned hitLat = mem.load(0, 0x80001000, 0x80001000, 100);
    EXPECT_GT(missLat, hitLat * 4);
    EXPECT_LE(hitLat, cfg.dtlb.hitLatency + cfg.l1d.hitLatency);
}

TEST(Cache, SpatialLocalityWithinLine)
{
    MemCfg cfg;
    MemHierarchy mem(cfg, 1);
    mem.load(0, 0x80002000, 0x80002000, 0);
    // Same 64B line: hit.
    unsigned lat = mem.load(0, 0x80002038, 0x80002038, 10);
    EXPECT_LE(lat, cfg.dtlb.hitLatency + cfg.l1d.hitLatency);
    // Next line: miss again.
    unsigned lat2 = mem.load(0, 0x80002040, 0x80002040, 20);
    EXPECT_GT(lat2, lat);
}

TEST(Cache, CapacityEviction)
{
    MemCfg cfg;
    cfg.l1d = {4 * 1024, 2, 2, 64, false, 8}; // tiny L1D
    cfg.l2 = {64 * 1024, 8, 14, 64, false, 16};
    MemHierarchy mem(cfg, 1);
    // Touch 16 KB: exceeds L1D.
    for (Addr a = 0; a < 16 * 1024; a += 64)
        mem.load(0, 0x80000000 + a, 0x80000000 + a, a);
    auto &l1 = mem.l1d(0);
    uint64_t missesBefore = l1.stats().misses;
    // Re-touch the first address: should miss L1 but hit L2.
    unsigned lat = mem.load(0, 0x80000000, 0x80000000, 1 << 20);
    EXPECT_GT(l1.stats().misses, missesBefore);
    // L2 hit: latency below a DRAM round trip.
    EXPECT_LT(lat, cfg.dram.amatCycles);
}

TEST(Cache, DualCoreWriteInvalidatesPeer)
{
    MemHierarchy mem(dualCoreNhCfg(), 2);
    const Addr a = 0x80005000;

    // Both cores read: shared in both L1Ds.
    mem.load(0, a, a, 0);
    mem.load(1, a, a, 10);
    EXPECT_TRUE(mem.l1d(0).holds(a));
    EXPECT_TRUE(mem.l1d(1).holds(a));

    // Core 0 writes: core 1's copy must be invalidated.
    mem.store(0, a, a, 20);
    EXPECT_EQ(mem.l1d(0).state(a), CohState::M);
    EXPECT_FALSE(mem.l1d(1).holds(a));
}

TEST(Cache, PeerReadDowngradesModified)
{
    MemHierarchy mem(dualCoreNhCfg(), 2);
    const Addr a = 0x80006000;
    mem.store(0, a, a, 0);
    ASSERT_EQ(mem.l1d(0).state(a), CohState::M);

    mem.load(1, a, a, 10);
    // Writer downgraded to S (with writeback), reader has S.
    EXPECT_EQ(mem.l1d(0).state(a), CohState::S);
    EXPECT_TRUE(mem.l1d(1).holds(a));
    EXPECT_GE(mem.l1d(0).stats().probesReceived, 1u);
    EXPECT_GE(mem.l1d(0).stats().writebacks, 1u);
}

TEST(Cache, ExclusiveGrantWhenSoleReader)
{
    MemHierarchy mem(dualCoreNhCfg(), 2);
    const Addr a = 0x80007000;
    mem.load(0, a, a, 0);
    // Sole reader gets E, so a subsequent write is silent (no upgrade).
    EXPECT_EQ(mem.l1d(0).state(a), CohState::E);
    uint64_t upgradesBefore = mem.l1d(0).stats().upgrades;
    mem.store(0, a, a, 10);
    EXPECT_EQ(mem.l1d(0).state(a), CohState::M);
    EXPECT_EQ(mem.l1d(0).stats().upgrades, upgradesBefore);
}

TEST(Cache, InclusiveEvictionBackInvalidates)
{
    MemCfg cfg;
    cfg.l1d = {4 * 1024, 8, 2, 64, false, 8};
    cfg.l2 = {8 * 1024, 1, 14, 64, true, 16}; // tiny direct-mapped L2
    MemHierarchy mem(cfg, 1);
    const Addr a = 0x80000000;
    mem.load(0, a, a, 0);
    ASSERT_TRUE(mem.l1d(0).holds(a));
    // Walk addresses conflicting in L2 until a's L2 line is evicted.
    for (unsigned i = 1; i <= 2; ++i)
        mem.load(0, a + i * 8 * 1024, a + i * 8 * 1024, i * 100);
    EXPECT_FALSE(mem.l1d(0).holds(a))
        << "inclusive L2 eviction must back-invalidate L1";
}

TEST(Cache, TxnLogSeesCoherenceTraffic)
{
    MemHierarchy mem(dualCoreNhCfg(), 2);
    std::vector<Transaction> txns;
    mem.setTxnLog([&](const Transaction &t) { txns.push_back(t); });

    const Addr a = 0x80009000;
    mem.load(0, a, a, 0);
    mem.store(1, a, a, 10);

    bool sawAcquire = false, sawProbe = false, sawGrant = false;
    for (const auto &t : txns) {
        if (t.kind == TxnKind::AcquireExclusive)
            sawAcquire = true;
        if (t.kind == TxnKind::ProbeInvalid)
            sawProbe = true;
        if (t.kind == TxnKind::GrantExclusive)
            sawGrant = true;
    }
    EXPECT_TRUE(sawAcquire);
    EXPECT_TRUE(sawProbe);
    EXPECT_TRUE(sawGrant);
}

TEST(Dram, FixedAmatIsFlat)
{
    DramModel dram({DramCfg::Mode::FixedAmat, 250});
    EXPECT_EQ(dram.access(0x1000, 0, false), 250u);
    EXPECT_EQ(dram.access(0x2000, 5, true), 250u);
}

TEST(Dram, DdrRowBufferHitsAreFaster)
{
    DramCfg cfg;
    cfg.mode = DramCfg::Mode::Ddr;
    cfg.channels = 1; // keep all accesses on one channel/row tracker
    DramModel dram(cfg);
    unsigned first = dram.access(0x80000000, 0, false);
    // Far-apart cycle so the channel is free; same row -> open-row hit.
    unsigned second = dram.access(0x80000040, 1000, false);
    EXPECT_LT(second, first);
    EXPECT_EQ(second, cfg.ddrRowHit);
    // Different row reopens.
    unsigned third = dram.access(0x80000000 + (1 << 14), 2000, false);
    EXPECT_GT(third, second);
}

TEST(Dram, ChannelContentionQueues)
{
    DramCfg cfg;
    cfg.mode = DramCfg::Mode::Ddr;
    cfg.channels = 1;
    DramModel dram(cfg);
    unsigned a = dram.access(0x0, 0, false);
    EXPECT_EQ(a, cfg.ddrBase);
    // Same instant, same row: queues behind the burst, then row-hits.
    unsigned b = dram.access(0x40, 0, false);
    EXPECT_EQ(b, cfg.ddrRowHit + cfg.burstCycles);
}

TEST(Cache, SameLineFollowUpDoesNotReaccessDram)
{
    MemCfg cfg;
    cfg.dram.amatCycles = 300;
    MemHierarchy mem(cfg, 1);
    unsigned first = mem.load(0, 0x80010000, 0x80010000, 0);
    unsigned second = mem.load(0, 0x80010008, 0x80010008, 1);
    EXPECT_LE(second, first);
    EXPECT_EQ(mem.dram().accesses(), 1u);
}

TEST(Cache, MshrPressureStalls)
{
    MemCfg cfg;
    cfg.l1d = {4 * 1024, 8, 2, 64, false, 2}; // only 2 MSHRs
    cfg.l2 = {8 * 1024, 8, 14, 64, false, 2};
    cfg.dram.amatCycles = 300;
    MemHierarchy mem(cfg, 1);
    // Three distinct-line misses in the same cycle: the third must wait
    // for an MSHR slot to free.
    unsigned a = mem.load(0, 0x80020000, 0x80020000, 0);
    unsigned b = mem.load(0, 0x80020040, 0x80020040, 0);
    unsigned c = mem.load(0, 0x80020080, 0x80020080, 0);
    EXPECT_GE(c, a);
    EXPECT_GT(c, b);
    EXPECT_GE(mem.l1d(0).stats().mshrStalls, 1u);
}

} // namespace
