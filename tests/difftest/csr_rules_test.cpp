#include <gtest/gtest.h>

#include "difftest/csr_rules.h"

namespace {

using namespace minjie;
using namespace minjie::difftest;

TEST(CsrRules, AtLeast120Rules)
{
    // The paper devises "at least 120 rules" over the machine CSRs
    // (Section III-B2); the fflags/frm/priv checks in checkCsrs() add
    // seven more on top of the table.
    EXPECT_GE(csrRules().size() + 7, 120u);
}

TEST(CsrRules, CleanStatesPass)
{
    iss::CsrFile ref;
    isa::Priv priv = isa::Priv::M;
    CsrProbe dut = snapshotCsrs(ref, priv);
    std::vector<std::string> violations;
    EXPECT_TRUE(checkCsrs(dut, ref, priv, violations));
    EXPECT_TRUE(violations.empty());
}

TEST(CsrRules, ExactFieldMismatchDetected)
{
    iss::CsrFile ref;
    isa::Priv priv = isa::Priv::M;
    CsrProbe dut = snapshotCsrs(ref, priv);
    dut.mepc = 0x1234;
    std::vector<std::string> violations;
    EXPECT_FALSE(checkCsrs(dut, ref, priv, violations));
    ASSERT_FALSE(violations.empty());
    EXPECT_NE(violations.front().find("mepc"), std::string::npos);
}

TEST(CsrRules, FieldGranularity)
{
    // Only the offending mstatus field is named, not the whole CSR.
    iss::CsrFile ref;
    isa::Priv priv = isa::Priv::M;
    CsrProbe dut = snapshotCsrs(ref, priv);
    dut.mstatus ^= isa::MSTATUS_SUM;
    std::vector<std::string> violations;
    EXPECT_FALSE(checkCsrs(dut, ref, priv, violations));
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations.front().find("SUM"), std::string::npos);
}

TEST(CsrRules, TrustDutFieldsAdopted)
{
    // mcycle is timing-dependent: the REF adopts the DUT's value
    // instead of flagging a mismatch.
    iss::CsrFile ref;
    isa::Priv priv = isa::Priv::M;
    CsrProbe dut = snapshotCsrs(ref, priv);
    dut.mcycle = 987654;
    std::vector<std::string> violations;
    EXPECT_TRUE(checkCsrs(dut, ref, priv, violations));
    EXPECT_EQ(ref.mcycle, 987654u);
}

TEST(CsrRules, MipPendingBitsTrusted)
{
    iss::CsrFile ref;
    isa::Priv priv = isa::Priv::M;
    CsrProbe dut = snapshotCsrs(ref, priv);
    dut.mip |= isa::MIP_MTIP | isa::MIP_MEIP; // device-driven bits
    std::vector<std::string> violations;
    EXPECT_TRUE(checkCsrs(dut, ref, priv, violations));
    EXPECT_TRUE(ref.mip & isa::MIP_MTIP);
}

TEST(CsrRules, IgnoredFieldsNeverFire)
{
    iss::CsrFile ref;
    isa::Priv priv = isa::Priv::M;
    CsrProbe dut = snapshotCsrs(ref, priv);
    dut.pmpcfg0 = ~0ULL; // Ignore policy
    std::vector<std::string> violations;
    EXPECT_TRUE(checkCsrs(dut, ref, priv, violations));
}

TEST(CsrRules, FflagsPerFlagRules)
{
    iss::CsrFile ref;
    isa::Priv priv = isa::Priv::M;
    CsrProbe dut = snapshotCsrs(ref, priv);
    dut.fflags = 0x10; // NV set on DUT only
    std::vector<std::string> violations;
    EXPECT_FALSE(checkCsrs(dut, ref, priv, violations));
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations.front().find("NV"), std::string::npos);
}

TEST(CsrRules, PrivilegeLevelChecked)
{
    iss::CsrFile ref;
    isa::Priv priv = isa::Priv::M;
    CsrProbe dut = snapshotCsrs(ref, priv);
    dut.priv = 1; // S
    std::vector<std::string> violations;
    EXPECT_FALSE(checkCsrs(dut, ref, priv, violations));
    EXPECT_NE(violations.front().find("priv"), std::string::npos);
}

TEST(CsrRules, EveryRuleHasDistinctIdentity)
{
    std::set<std::string> names;
    for (const auto &r : csrRules()) {
        std::string id = std::string(r.csr) + "." + r.field;
        EXPECT_TRUE(names.insert(id).second) << "duplicate rule " << id;
    }
}

} // namespace
