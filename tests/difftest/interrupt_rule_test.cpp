/**
 * Asynchronous-interrupt diff-rule (the Dromajo approach the paper
 * extends, Sections II-B and V-C): the DUT takes CLINT timer/software
 * interrupts at micro-architecturally determined instants; the REF is
 * told when through the commit probe and forced to take the same
 * interrupt.
 */

#include <gtest/gtest.h>

#include "difftest/difftest.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::difftest;
namespace wl = minjie::workload;

/** mtvec handler counts timer interrupts, re-arms mtimecmp, and exits
 *  after three of them; the main loop just spins on an add. */
wl::Program
timerProgram()
{
    wl::Layout layout;
    const Addr clint = mem::Clint::DEFAULT_BASE;
    wl::Asm a(layout.codeBase);

    wl::Label handler = a.newLabel();
    a.li(wl::t0, 0x80000200);
    a.csr(isa::Op::Csrrw, wl::zero, isa::CSR_MTVEC, wl::t0);

    // mtimecmp[hart0] = mtime + 300 (absolute device addresses in
    // registers: the offsets exceed 12-bit immediates)
    a.li(wl::s0, clint + 0xbff8);  // &mtime
    a.load(isa::Op::Ld, wl::t1, 0, wl::s0);
    a.itype(isa::Op::Addi, wl::t1, wl::t1, 300);
    a.li(wl::t2, clint + 0x4000);  // &mtimecmp[0]
    a.store(isa::Op::Sd, wl::t1, 0, wl::t2);

    // Enable MTIE and global MIE.
    a.li(wl::t0, isa::MIP_MTIP);
    a.csr(isa::Op::Csrrs, wl::zero, isa::CSR_MIE, wl::t0);
    a.li(wl::t0, isa::MSTATUS_MIE);
    a.csr(isa::Op::Csrrs, wl::zero, isa::CSR_MSTATUS, wl::t0);

    // Main loop: spin.
    wl::Label loop = a.boundLabel();
    a.itype(isa::Op::Addi, wl::s6, wl::s6, 1);
    a.j(loop);

    while (a.here() < 0x80000200)
        a.nop();
    a.bind(handler);
    a.itype(isa::Op::Addi, wl::s11, wl::s11, 1); // interrupt count
    // Re-arm: mtimecmp = mtime + 300.
    a.load(isa::Op::Ld, wl::t1, 0, wl::s0);
    a.itype(isa::Op::Addi, wl::t1, wl::t1, 300);
    a.store(isa::Op::Sd, wl::t1, 0, wl::t2);
    a.li(wl::t3, 3);
    wl::Label ret = a.newLabel();
    a.branch(isa::Op::Bne, wl::s11, wl::t3, ret);
    a.exit(0);
    a.bind(ret);
    a.itype(isa::Op::Mret, 0, 0, 0);

    wl::Program prog;
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());
    return prog;
}

void
loadEverywhere(xs::Soc &soc, DiffTest &dt, const wl::Program &prog)
{
    prog.loadInto(soc.system().dram);
    for (const auto &seg : prog.segments)
        dt.loadRefMemory(seg.base, seg.bytes.data(), seg.bytes.size());
    soc.setEntry(prog.entry);
    dt.resetRefs(prog.entry);
}

TEST(InterruptRule, TimerInterruptsForcedIntoRef)
{
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    auto prog = timerProgram();
    loadEverywhere(soc, dt, prog);

    dt.run(2'000'000);

    EXPECT_TRUE(dt.ok()) << dt.failures().front();
    EXPECT_EQ(soc.system().simctrl.exitCode(), 0u);
    EXPECT_EQ(dt.stats().forcedInterrupts, 3u);
    // The handler ran exactly three times.
    EXPECT_EQ(dt.ref(0).state().x[wl::s11], 3u);
    EXPECT_EQ(soc.core(0).oracleState().x[wl::s11], 3u);
}

TEST(InterruptRule, DisabledRuleFlagsDivergence)
{
    xs::Soc soc(xs::CoreConfig::nh());
    RuleConfig rules;
    rules.forcedInterrupt = false;
    DiffTest dt(soc, rules);
    loadEverywhere(soc, dt, timerProgram());

    dt.run(2'000'000);
    ASSERT_FALSE(dt.ok());
    EXPECT_NE(dt.failures().front().find("interrupt"),
              std::string::npos);
}

TEST(InterruptRule, WorkloadsWithoutMieUnaffected)
{
    // Programs that never enable MIE must see zero interrupts even
    // though the CLINT mtime advances past the reset mtimecmp (~0).
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    loadEverywhere(soc, dt, wl::sumProgram(2000));
    dt.run(2'000'000);
    EXPECT_TRUE(dt.ok()) << dt.failures().front();
    EXPECT_EQ(dt.stats().forcedInterrupts, 0u);
}

} // namespace
