#include <gtest/gtest.h>

#include "difftest/scoreboard.h"

namespace {

using namespace minjie;
using namespace minjie::difftest;
using uarch::Transaction;
using uarch::TxnKind;

Transaction
txn(TxnKind kind, Addr line, const void *cache, const char *name,
    Cycle at = 0)
{
    return {kind, line, cache, name, at};
}

TEST(Scoreboard, LegalSharingPasses)
{
    PermissionScoreboard sb;
    int a, b; // distinct cache identities
    sb.onTransaction(txn(TxnKind::GrantShared, 0x100, &a, "L1D.0"));
    sb.onTransaction(txn(TxnKind::GrantShared, 0x100, &b, "L1D.1"));
    EXPECT_TRUE(sb.ok());
}

TEST(Scoreboard, ExclusiveWhilePeerHoldsViolates)
{
    PermissionScoreboard sb;
    int a, b;
    sb.onTransaction(txn(TxnKind::GrantShared, 0x100, &a, "L1D.0"));
    sb.onTransaction(txn(TxnKind::GrantExclusive, 0x100, &b, "L1D.1"));
    ASSERT_FALSE(sb.ok());
    EXPECT_NE(sb.violations().front().find("exclusive grant"),
              std::string::npos);
}

TEST(Scoreboard, ProbeBeforeExclusiveIsLegal)
{
    PermissionScoreboard sb;
    int a, b;
    sb.onTransaction(txn(TxnKind::GrantShared, 0x100, &a, "L1D.0"));
    sb.onTransaction(txn(TxnKind::ProbeInvalid, 0x100, &a, "L1D.0"));
    sb.onTransaction(txn(TxnKind::GrantExclusive, 0x100, &b, "L1D.1"));
    EXPECT_TRUE(sb.ok());
}

TEST(Scoreboard, SharedGrantAgainstExclusiveViolates)
{
    PermissionScoreboard sb;
    int a, b;
    sb.onTransaction(txn(TxnKind::GrantExclusive, 0x200, &a, "L1D.0"));
    sb.onTransaction(txn(TxnKind::GrantShared, 0x200, &b, "L1D.1"));
    ASSERT_FALSE(sb.ok());
}

TEST(Scoreboard, ProbeSharedDowngrades)
{
    PermissionScoreboard sb;
    int a, b;
    sb.onTransaction(txn(TxnKind::GrantExclusive, 0x200, &a, "L1D.0"));
    sb.onTransaction(txn(TxnKind::ProbeShared, 0x200, &a, "L1D.0"));
    sb.onTransaction(txn(TxnKind::GrantShared, 0x200, &b, "L1D.1"));
    EXPECT_TRUE(sb.ok());
}

TEST(Scoreboard, ReleaseWithoutPermissionViolates)
{
    PermissionScoreboard sb;
    int a;
    sb.onTransaction(txn(TxnKind::Release, 0x300, &a, "L1D.0"));
    ASSERT_FALSE(sb.ok());
    EXPECT_NE(sb.violations().front().find("release"),
              std::string::npos);
}

TEST(Scoreboard, NonL1TransactionsIgnored)
{
    PermissionScoreboard sb;
    int a, b;
    sb.onTransaction(txn(TxnKind::GrantExclusive, 0x100, &a, "L2.0"));
    sb.onTransaction(txn(TxnKind::GrantExclusive, 0x100, &b, "L3"));
    EXPECT_TRUE(sb.ok());
    EXPECT_EQ(sb.transactionsChecked(), 0u);
}

TEST(Scoreboard, DifferentLinesIndependent)
{
    PermissionScoreboard sb;
    int a, b;
    sb.onTransaction(txn(TxnKind::GrantExclusive, 0x100, &a, "L1D.0"));
    sb.onTransaction(txn(TxnKind::GrantExclusive, 0x140, &b, "L1D.1"));
    EXPECT_TRUE(sb.ok());
}

} // namespace
