/**
 * The Figure 3 diff-rule end-to-end: the DUT raises a page fault the
 * architectural REF does not observe (stale/speculative TLB); the rule
 * forces the REF to take the same trap, and the repeat guard rejects
 * livelocks.
 */

#include <gtest/gtest.h>

#include "difftest/difftest.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::difftest;
namespace wl = minjie::workload;

/** A program with a trap handler that simply retries the faulting
 *  instruction (the Linux behaviour the paper describes: the page
 *  fault handler finds the PTE fine and returns). */
wl::Program
retryHandlerProgram(uint64_t iterations = 50)
{
    wl::Layout layout;
    wl::Asm a(layout.codeBase);

    wl::Label handler = a.newLabel();
    a.li(wl::t0, 0x80000100);
    a.csr(isa::Op::Csrrw, wl::zero, isa::CSR_MTVEC, wl::t0);

    // Some loads for the injection to hit.
    a.li(wl::s0, layout.dataBase);
    a.li(wl::s2, iterations);
    wl::Label loop = a.boundLabel();
    a.load(isa::Op::Ld, wl::t1, 0, wl::s0);
    a.rtype(isa::Op::Add, wl::s6, wl::s6, wl::t1);
    a.itype(isa::Op::Addi, wl::s2, wl::s2, -1);
    a.branch(isa::Op::Bne, wl::s2, wl::zero, loop);
    a.exit(0);

    while (a.here() < 0x80000100)
        a.nop();
    a.bind(handler);
    // mepc already points at the faulting load: just return to retry.
    a.itype(isa::Op::Mret, 0, 0, 0);

    wl::Program prog;
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());
    prog.segments.push_back({layout.dataBase,
                             std::vector<uint8_t>(64, 7)});
    return prog;
}

void
loadEverywhere(xs::Soc &soc, DiffTest &dt, const wl::Program &prog)
{
    prog.loadInto(soc.system().dram);
    for (const auto &seg : prog.segments)
        dt.loadRefMemory(seg.base, seg.bytes.data(), seg.bytes.size());
    soc.setEntry(prog.entry);
    dt.resetRefs(prog.entry);
}

TEST(PageFaultRule, ForcedFaultReconciled)
{
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    loadEverywhere(soc, dt, retryHandlerProgram());

    soc.core(0).injectSpuriousPageFault();
    dt.run(1'000'000);

    EXPECT_TRUE(dt.ok()) << dt.failures().front();
    EXPECT_EQ(dt.stats().forcedPageFaults, 1u);
    EXPECT_EQ(soc.system().simctrl.exitCode(), 0u);
}

TEST(PageFaultRule, DisabledRuleFlagsDivergence)
{
    xs::Soc soc(xs::CoreConfig::nh());
    RuleConfig rules;
    rules.pageFault = false;
    DiffTest dt(soc, rules);
    loadEverywhere(soc, dt, retryHandlerProgram());

    soc.core(0).injectSpuriousPageFault();
    dt.run(1'000'000);

    ASSERT_FALSE(dt.ok());
    EXPECT_NE(dt.failures().front().find("trap divergence"),
              std::string::npos)
        << dt.failures().front();
}

TEST(PageFaultRule, RepeatGuardRejectsLivelock)
{
    // A handler that never fixes anything: the DUT faults at the same
    // pc forever. The rule must stop trusting it (Section III-B2c:
    // "tracked and asserted not to repeatedly occur").
    xs::Soc soc(xs::CoreConfig::nh());
    RuleConfig rules;
    rules.maxForcedPerPc = 4;
    DiffTest dt(soc, rules);
    // A long-running loop so injections always find a load in flight.
    loadEverywhere(soc, dt, retryHandlerProgram(1'000'000));

    for (int i = 0; i < 10 && dt.ok(); ++i) {
        soc.core(0).injectSpuriousPageFault();
        dt.run(2'000);
    }
    ASSERT_FALSE(dt.ok());
    EXPECT_NE(dt.failures().front().find("page-fault rule"),
              std::string::npos)
        << dt.failures().front();
}

TEST(PageFaultRule, CommitTraceAvailableAtFailure)
{
    // The Waveform-Terminator-style tail: after a mismatch the last
    // commits are available for inspection.
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    loadEverywhere(soc, dt, wl::coremarkProxy(50));
    soc.core(0).injectLoadFault(0xff00);
    dt.run(10'000'000);
    ASSERT_FALSE(dt.ok());
    auto trace = dt.recentCommitTrace();
    ASSERT_GE(trace.size(), 10u);
    // Entries render pc and a disassembled mnemonic.
    EXPECT_NE(trace.back().find("pc=0x"), std::string::npos);
}

} // namespace
