#include <gtest/gtest.h>

#include "difftest/global_memory.h"

namespace {

using namespace minjie;
using namespace minjie::difftest;

TEST(GlobalMemory, RecordsAndMatchesStores)
{
    GlobalMemory gm;
    gm.onStore({0, 0x80001000, 0xdeadbeefcafebabeULL, 8});
    EXPECT_TRUE(gm.couldHaveValue(0x80001000, 8, 0xdeadbeefcafebabeULL));
    EXPECT_FALSE(gm.couldHaveValue(0x80001000, 8, 0x1234ULL));
    EXPECT_EQ(gm.storesRecorded(), 1u);
}

TEST(GlobalMemory, SubwordStoresCompose)
{
    GlobalMemory gm;
    gm.onStore({0, 0x80002000, 0x11223344, 4});
    gm.onStore({1, 0x80002004, 0x55667788, 4});
    EXPECT_TRUE(gm.couldHaveValue(0x80002000, 8, 0x5566778811223344ULL));
    EXPECT_TRUE(gm.couldHaveValue(0x80002004, 4, 0x55667788));
}

TEST(GlobalMemory, ByteGranularity)
{
    GlobalMemory gm;
    gm.onStore({0, 0x80003003, 0xab, 1});
    EXPECT_TRUE(gm.couldHaveValue(0x80003003, 1, 0xab));
    // Reading wider than what was ever written cannot be validated.
    EXPECT_FALSE(gm.couldHaveValue(0x80003000, 8, 0xab000000ULL << 24));
}

TEST(GlobalMemory, UnwrittenAddressNeverMatches)
{
    GlobalMemory gm;
    EXPECT_FALSE(gm.couldHaveValue(0x80004000, 8, 0));
}

TEST(GlobalMemory, RecentHistoryRetained)
{
    // Loads are checked at commit, potentially long after the producing
    // store was overwritten; the bounded history covers that window.
    GlobalMemory gm;
    gm.onStore({0, 0x80005000, 1, 8});
    gm.onStore({1, 0x80005000, 2, 8});
    EXPECT_TRUE(gm.couldHaveValue(0x80005000, 8, 2));
    EXPECT_TRUE(gm.couldHaveValue(0x80005000, 8, 1));
    // A value never stored is still rejected.
    EXPECT_FALSE(gm.couldHaveValue(0x80005000, 8, 99));
}

} // namespace
