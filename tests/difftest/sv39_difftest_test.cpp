/**
 * Sv39 paging under full co-simulation: the cycle model (with its
 * timing TLBs and page-walk latencies) against the NEMU REF, checking
 * every commit through the satp write, the privilege drop, and the
 * virtually-addressed kernel.
 */

#include <gtest/gtest.h>

#include "difftest/difftest.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::difftest;
namespace wl = minjie::workload;

TEST(Sv39DiffTest, PagedProgramPasses)
{
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    auto prog = wl::sv39Program();
    prog.loadInto(soc.system().dram);
    for (const auto &seg : prog.segments)
        dt.loadRefMemory(seg.base, seg.bytes.data(), seg.bytes.size());
    soc.setEntry(prog.entry);
    dt.resetRefs(prog.entry);

    dt.run(2'000'000);

    EXPECT_TRUE(dt.ok()) << dt.failures().front();
    EXPECT_EQ(soc.system().simctrl.exitCode(), 0u);
    EXPECT_EQ(soc.core(0).oracleState().priv, isa::Priv::S);
    EXPECT_EQ(soc.core(0).oracleState().x[wl::a0], 5050u);
    // The CSR rules were evaluated on the satp/mstatus writes and mret.
    EXPECT_GE(dt.stats().csrChecks, 4u);
    // The timing TLBs saw the translated stream.
    EXPECT_GT(soc.core(0).oracleMmu().stats().pageWalks, 0u);
}

} // namespace
