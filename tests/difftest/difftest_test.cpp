#include <gtest/gtest.h>

#include "difftest/difftest.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::difftest;
namespace wl = minjie::workload;

/** Load one program into the DUT and all REFs. */
void
loadEverywhere(xs::Soc &soc, DiffTest &dt, const wl::Program &prog)
{
    prog.loadInto(soc.system().dram);
    for (const auto &seg : prog.segments)
        dt.loadRefMemory(seg.base, seg.bytes.data(), seg.bytes.size());
    soc.setEntry(prog.entry);
    dt.resetRefs(prog.entry);
}

TEST(DiffTest, CleanRunPasses)
{
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    loadEverywhere(soc, dt, wl::sumProgram(500));
    dt.run(2'000'000);
    EXPECT_TRUE(dt.ok()) << dt.failures().front();
    EXPECT_GT(dt.stats().commitsChecked, 1500u);
    // The SimCtrl exit store is MMIO: skip rule must have fired.
    EXPECT_GE(dt.stats().mmioSkips, 1u);
}

TEST(DiffTest, ProxyBenchmarkPasses)
{
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    loadEverywhere(soc, dt, wl::buildProxy(wl::specIntSuite()[5], 20));
    dt.run(10'000'000);
    EXPECT_TRUE(dt.ok()) << dt.failures().front();
    EXPECT_GT(dt.stats().commitsChecked, 2000u);
}

TEST(DiffTest, FpProxyPasses)
{
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    loadEverywhere(soc, dt, wl::buildProxy(wl::specFpSuite()[5], 20));
    dt.run(10'000'000);
    EXPECT_TRUE(dt.ok()) << dt.failures().front();
}

TEST(DiffTest, CatchesInjectedLoadFault)
{
    // The Section IV-C scenario: a fault in the memory system corrupts
    // one load value; the checkers must flag it at commit.
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    loadEverywhere(soc, dt, wl::coremarkProxy(5));

    std::string firstMismatch;
    dt.setOnMismatch([&](const std::string &m) { firstMismatch = m; });
    soc.core(0).injectLoadFault(0x1);
    dt.run(10'000'000);

    ASSERT_FALSE(dt.ok());
    EXPECT_NE(firstMismatch.find("rd mismatch"), std::string::npos)
        << firstMismatch;
}

TEST(DiffTest, AbortsAtFirstMismatch)
{
    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    loadEverywhere(soc, dt, wl::coremarkProxy(50));
    soc.core(0).injectLoadFault(0xdead);
    Cycle cycles = dt.run(10'000'000);
    ASSERT_FALSE(dt.ok());
    // The co-simulation stops early, well before program completion.
    EXPECT_LT(cycles, 10'000'000u);
    EXPECT_EQ(dt.failures().size(), 1u);
}

TEST(DiffTest, DualCoreGlobalMemoryRule)
{
    // Two cores run the same program against shared data; the
    // single-core REFs disagree on cross-core stores and the Global
    // Memory rule reconciles them.
    xs::Soc soc(xs::CoreConfig::nh(), 2);
    DiffTest dt(soc);

    // A program where both harts increment a shared counter array.
    wl::Layout layout;
    wl::Asm a(layout.codeBase);
    a.li(wl::s0, layout.dataBase);
    a.li(wl::s2, 400);
    wl::Label loop = a.boundLabel();
    a.load(isa::Op::Ld, wl::t1, 0, wl::s0);
    a.itype(isa::Op::Addi, wl::t1, wl::t1, 1);
    a.store(isa::Op::Sd, wl::t1, 0, wl::s0);
    a.itype(isa::Op::Addi, wl::s2, wl::s2, -1);
    a.branch(isa::Op::Bne, wl::s2, wl::zero, loop);
    a.exit(0);
    wl::Program prog;
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());
    prog.segments.push_back({layout.dataBase,
                             std::vector<uint8_t>(64, 0)});

    loadEverywhere(soc, dt, prog);
    dt.run(5'000'000);
    EXPECT_TRUE(dt.ok()) << dt.failures().front();
    // The REFs must have needed the rule (both harts touch the slot).
    EXPECT_GT(dt.stats().globalMemoryPatches, 0u);
}

TEST(DiffTest, ScoreboardCleanOnCoherentRun)
{
    xs::Soc soc(xs::CoreConfig::nh(), 2);
    DiffTest dt(soc);
    loadEverywhere(soc, dt, wl::sumProgram(500));
    dt.run(2'000'000);
    EXPECT_TRUE(dt.scoreboard().ok());
    EXPECT_GT(dt.scoreboard().transactionsChecked(), 0u);
}

TEST(DiffTest, RulesCanBeDisabled)
{
    // With the skip rule off, the first MMIO access must fail the run.
    xs::Soc soc(xs::CoreConfig::nh());
    RuleConfig rules;
    rules.skipMmio = false;
    DiffTest dt(soc, rules);
    loadEverywhere(soc, dt, wl::sumProgram(10));
    dt.run(1'000'000);
    ASSERT_FALSE(dt.ok());
    EXPECT_NE(dt.failures().front().find("mmio"), std::string::npos);
}

TEST(DiffTest, CsrChecksFireOnTraps)
{
    // A program that takes an ecall trap exercises the CSR rule table.
    wl::Layout layout;
    wl::Asm a(layout.codeBase);
    // mtvec = handler
    wl::Label handler = a.newLabel();
    a.li(wl::t0, 0x80000100);
    a.csr(isa::Op::Csrrw, wl::zero, isa::CSR_MTVEC, wl::t0);
    a.itype(isa::Op::Ecall, 0, 0, 0);
    a.exit(1); // should be skipped by the trap
    while (a.here() < 0x80000100)
        a.nop();
    a.bind(handler);
    a.exit(0);
    wl::Program prog;
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());

    xs::Soc soc(xs::CoreConfig::nh());
    DiffTest dt(soc);
    loadEverywhere(soc, dt, prog);
    dt.run(1'000'000);
    EXPECT_TRUE(dt.ok()) << dt.failures().front();
    EXPECT_GT(dt.stats().csrChecks, 1u);
    EXPECT_EQ(soc.system().simctrl.exitCode(), 0u);
}

} // namespace
