#include <gtest/gtest.h>

#include "iss/interp.h"
#include "iss/system.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::workload;

TEST(Programs, SuitesMatchPaperBenchmarkLists)
{
    // Figure 8/12 exclude 400.perlbench and 435.gromacs.
    auto &ints = specIntSuite();
    auto &fps = specFpSuite();
    EXPECT_EQ(ints.size(), 11u);
    EXPECT_EQ(fps.size(), 15u);
    for (const auto &s : ints) {
        EXPECT_FALSE(s.fp);
        EXPECT_NE(std::string(s.name), "400.perlbench");
    }
    for (const auto &s : fps) {
        EXPECT_TRUE(s.fp);
        EXPECT_GT(s.fpPct, 0u);
        EXPECT_NE(std::string(s.name), "435.gromacs");
    }
}

class ProxyRunTest : public ::testing::TestWithParam<int> {};

TEST_P(ProxyRunTest, EveryIntProxyRunsToCompletion)
{
    const auto &spec = specIntSuite()[GetParam()];
    iss::System sys(128);
    auto prog = buildProxy(spec, 20);
    prog.loadInto(sys.dram);
    iss::SpikeInterp interp(sys.bus, 0, prog.entry);
    interp.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = interp.run(5'000'000);
    ASSERT_TRUE(r.halted) << spec.name;
    EXPECT_EQ(sys.simctrl.exitCode(), 0u) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllInt, ProxyRunTest,
    ::testing::Range(0, static_cast<int>(specIntSuite().size())),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string n = specIntSuite()[info.param].name;
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

class FpProxyRunTest : public ::testing::TestWithParam<int> {};

TEST_P(FpProxyRunTest, EveryFpProxyRunsToCompletion)
{
    const auto &spec = specFpSuite()[GetParam()];
    iss::System sys(128);
    auto prog = buildProxy(spec, 20);
    prog.loadInto(sys.dram);
    iss::SpikeInterp interp(sys.bus, 0, prog.entry);
    interp.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = interp.run(5'000'000);
    ASSERT_TRUE(r.halted) << spec.name;
    EXPECT_EQ(sys.simctrl.exitCode(), 0u) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFp, FpProxyRunTest,
    ::testing::Range(0, static_cast<int>(specFpSuite().size())),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string n = specFpSuite()[info.param].name;
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(Programs, ProxyIsDeterministicPerSeed)
{
    auto a = buildProxy(specIntSuite()[0], 10, 7);
    auto b = buildProxy(specIntSuite()[0], 10, 7);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (size_t i = 0; i < a.segments.size(); ++i)
        EXPECT_EQ(a.segments[i].bytes, b.segments[i].bytes);

    auto c = buildProxy(specIntSuite()[0], 10, 8);
    EXPECT_NE(a.segments.back().bytes, c.segments.back().bytes);
}

TEST(Programs, FpProxyExercisesFpUnits)
{
    // Count executed fp instructions on a SPECfp proxy.
    iss::System sys(128);
    auto prog = buildProxy(specFpSuite()[0], 20); // bwaves
    prog.loadInto(sys.dram);
    iss::SpikeInterp interp(sys.bus, 0, prog.entry);
    interp.setHaltFn([&] { return sys.simctrl.exited(); });

    uint64_t fpCount = 0, total = 0;
    while (!sys.simctrl.exited() && total < 2'000'000) {
        Addr pc = interp.state().pc;
        (void)pc;
        iss::ExecInfo info;
        interp.step(&info);
        ++total;
    }
    // Re-run counting decoded fp ops via the cycle-free interp trace is
    // costly; instead assert the fp registers were touched.
    bool fpTouched = false;
    for (int i = 0; i < 32; ++i)
        fpTouched |= interp.state().f[i] != 0;
    EXPECT_TRUE(fpTouched);
    (void)fpCount;
}

TEST(Programs, MemStressFootprintScales)
{
    iss::System big(256);
    auto prog = memStressProgram(3000, 32);
    prog.loadInto(big.dram);
    iss::SpikeInterp interp(big.bus, 0, prog.entry);
    interp.setHaltFn([&] { return big.simctrl.exited(); });
    interp.run(10'000'000);
    size_t bigPages = big.dram.allocatedPages();

    iss::System small(256);
    auto prog2 = memStressProgram(3000, 4);
    prog2.loadInto(small.dram);
    iss::SpikeInterp interp2(small.bus, 0, prog2.entry);
    interp2.setHaltFn([&] { return small.simctrl.exited(); });
    interp2.run(10'000'000);
    EXPECT_GT(bigPages, small.dram.allocatedPages());
}

TEST(Programs, RandomProgramsAlwaysTerminate)
{
    for (int seed = 100; seed < 110; ++seed) {
        Rng rng(seed);
        auto prog = randomProgram(rng, 200, seed % 2 == 0);
        iss::System sys(32);
        prog.loadInto(sys.dram);
        iss::SpikeInterp interp(sys.bus, 0, prog.entry);
        interp.setHaltFn([&] { return sys.simctrl.exited(); });
        auto r = interp.run(100'000);
        EXPECT_TRUE(r.halted) << "seed " << seed;
    }
}

} // namespace
