#include <gtest/gtest.h>

#include "iss/interp.h"
#include "iss/system.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::workload;

/** Run an assembled fragment on the reference interpreter. */
iss::ArchState
runAsm(Asm &a, Addr entry, unsigned maxInsts = 10000)
{
    Program prog;
    prog.entry = entry;
    prog.segments.push_back(a.finish());

    iss::System sys(32);
    prog.loadInto(sys.dram);
    iss::SpikeInterp interp(sys.bus, 0, entry);
    interp.setHaltFn([&] { return sys.simctrl.exited(); });
    interp.run(maxInsts);
    return interp.state();
}

TEST(Asm, LiSmallImmediates)
{
    Layout layout;
    Asm a(layout.codeBase);
    a.li(a0, 42);
    a.li(a1, static_cast<uint64_t>(-42));
    a.li(a2, 2047);
    a.li(a3, static_cast<uint64_t>(-2048));
    a.exit(0);
    auto st = runAsm(a, layout.codeBase);
    EXPECT_EQ(st.x[a0], 42u);
    EXPECT_EQ(st.x[a1], static_cast<uint64_t>(-42));
    EXPECT_EQ(st.x[a2], 2047u);
    EXPECT_EQ(st.x[a3], static_cast<uint64_t>(-2048));
}

TEST(Asm, Li32BitRange)
{
    Layout layout;
    Asm a(layout.codeBase);
    a.li(a0, 0x12345678);
    a.li(a1, 0x7fffffff);
    a.li(a2, static_cast<uint64_t>(static_cast<int64_t>(-0x12345678)));
    a.li(a3, 0x800); // straddles the addi boundary
    a.exit(0);
    auto st = runAsm(a, layout.codeBase);
    EXPECT_EQ(st.x[a0], 0x12345678u);
    EXPECT_EQ(st.x[a1], 0x7fffffffu);
    EXPECT_EQ(st.x[a2],
              static_cast<uint64_t>(static_cast<int64_t>(-0x12345678)));
    EXPECT_EQ(st.x[a3], 0x800u);
}

TEST(Asm, Li64BitValues)
{
    Layout layout;
    Asm a(layout.codeBase);
    a.li(a0, 0xdeadbeefcafebabeULL);
    a.li(a1, 0x8000000000000000ULL);
    a.li(a2, 0xffffffffffffffffULL);
    a.li(a3, 0x0000000100000000ULL);
    a.exit(0);
    auto st = runAsm(a, layout.codeBase);
    EXPECT_EQ(st.x[a0], 0xdeadbeefcafebabeULL);
    EXPECT_EQ(st.x[a1], 0x8000000000000000ULL);
    EXPECT_EQ(st.x[a2], 0xffffffffffffffffULL);
    EXPECT_EQ(st.x[a3], 0x0000000100000000ULL);
}

TEST(Asm, LiRandomRoundtrip)
{
    Rng rng(0x11aa);
    for (int trial = 0; trial < 30; ++trial) {
        uint64_t v = rng.next();
        Layout layout;
        Asm a(layout.codeBase);
        a.li(a0, v);
        a.exit(0);
        auto st = runAsm(a, layout.codeBase);
        ASSERT_EQ(st.x[a0], v) << std::hex << v;
    }
}

TEST(Asm, BackwardAndForwardBranches)
{
    Layout layout;
    Asm a(layout.codeBase);
    a.li(a0, 0);
    a.li(a1, 10);
    Label loop = a.boundLabel();      // backward target
    a.rtype(isa::Op::Add, a0, a0, a1);
    a.itype(isa::Op::Addi, a1, a1, -1);
    a.branch(isa::Op::Bne, a1, zero, loop);
    Label skip = a.newLabel();        // forward target
    a.branch(isa::Op::Beq, zero, zero, skip);
    a.li(a0, 999); // must be skipped
    a.bind(skip);
    a.exit(0);
    auto st = runAsm(a, layout.codeBase);
    EXPECT_EQ(st.x[a0], 55u);
}

TEST(Asm, CallAndRet)
{
    Layout layout;
    Asm a(layout.codeBase);
    Label fn = a.newLabel();
    a.li(a0, 5);
    a.call(fn);
    a.call(fn);
    a.exit(0);
    a.bind(fn);
    a.itype(isa::Op::Addi, a0, a0, 7);
    a.ret();
    auto st = runAsm(a, layout.codeBase);
    EXPECT_EQ(st.x[a0], 19u);
}

TEST(Asm, ExitCodePropagates)
{
    Layout layout;
    Asm a(layout.codeBase);
    a.exit(42);
    Program prog;
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());
    iss::System sys(32);
    prog.loadInto(sys.dram);
    iss::SpikeInterp interp(sys.bus, 0, prog.entry);
    interp.setHaltFn([&] { return sys.simctrl.exited(); });
    interp.run(1000);
    EXPECT_TRUE(sys.simctrl.exited());
    EXPECT_EQ(sys.simctrl.exitCode(), 42u);
}

TEST(Asm, PutcharWritesSimctrl)
{
    Layout layout;
    Asm a(layout.codeBase);
    a.li(a0, 'h');
    a.putchar(a0);
    a.li(a0, 'i');
    a.putchar(a0);
    a.exit(0);
    Program prog;
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());
    iss::System sys(32);
    prog.loadInto(sys.dram);
    iss::SpikeInterp interp(sys.bus, 0, prog.entry);
    interp.setHaltFn([&] { return sys.simctrl.exited(); });
    interp.run(1000);
    EXPECT_EQ(sys.simctrl.output(), "hi");
}

} // namespace
