#include <gtest/gtest.h>

#include "isa/op.h"

namespace {

using namespace minjie::isa;

TEST(OpMeta, Classification)
{
    EXPECT_TRUE(isLoad(Op::Lw));
    EXPECT_TRUE(isLoad(Op::Fld));
    EXPECT_TRUE(isLoad(Op::LrD));
    EXPECT_FALSE(isLoad(Op::Sd));

    EXPECT_TRUE(isStore(Op::Sd));
    EXPECT_TRUE(isStore(Op::ScW));
    EXPECT_TRUE(isStore(Op::Fsw));
    EXPECT_FALSE(isStore(Op::Ld));

    EXPECT_TRUE(isAmo(Op::AmoAddW));
    EXPECT_TRUE(isAmo(Op::AmoMaxuD));
    EXPECT_FALSE(isAmo(Op::LrW));
    EXPECT_FALSE(isAmo(Op::ScD));

    EXPECT_TRUE(isCondBranch(Op::Bgeu));
    EXPECT_FALSE(isCondBranch(Op::Jal));
    EXPECT_TRUE(isJump(Op::Jalr));
    EXPECT_TRUE(isControl(Op::Beq));

    EXPECT_TRUE(isFp(Op::FmaddD));
    EXPECT_TRUE(isFp(Op::Flw));
    EXPECT_FALSE(isFp(Op::Add));

    EXPECT_TRUE(isCsr(Op::Csrrci));
    EXPECT_TRUE(isSystem(Op::Mret));
    EXPECT_TRUE(isFence(Op::SfenceVma));
}

TEST(OpMeta, MemSizes)
{
    EXPECT_EQ(memSize(Op::Lb), 1u);
    EXPECT_EQ(memSize(Op::Lhu), 2u);
    EXPECT_EQ(memSize(Op::Flw), 4u);
    EXPECT_EQ(memSize(Op::AmoAddW), 4u);
    EXPECT_EQ(memSize(Op::AmoAddD), 8u);
    EXPECT_EQ(memSize(Op::ScD), 8u);
    EXPECT_EQ(memSize(Op::Add), 0u);
    EXPECT_TRUE(loadSigned(Op::Lw));
    EXPECT_FALSE(loadSigned(Op::Lwu));
}

TEST(OpMeta, FpRegisterUsage)
{
    // fcvt.d.w reads an int rs1, writes an fp rd.
    EXPECT_FALSE(readsFpRs1(Op::FcvtDW));
    EXPECT_TRUE(writesFpRd(Op::FcvtDW));
    // fcvt.w.d reads fp, writes int.
    EXPECT_TRUE(readsFpRs1(Op::FcvtWD));
    EXPECT_FALSE(writesFpRd(Op::FcvtWD));
    // feq writes int rd, reads two fp sources.
    EXPECT_TRUE(readsFpRs1(Op::FeqD));
    EXPECT_TRUE(readsFpRs2(Op::FeqD));
    EXPECT_FALSE(writesFpRd(Op::FeqD));
    // stores read fp rs2 but integer rs1.
    EXPECT_FALSE(readsFpRs1(Op::Fsd));
    EXPECT_TRUE(readsFpRs2(Op::Fsd));
}

TEST(OpMeta, FuTypes)
{
    EXPECT_EQ(fuType(Op::Add), FuType::Alu);
    EXPECT_EQ(fuType(Op::Mul), FuType::Mul);
    EXPECT_EQ(fuType(Op::Divu), FuType::Div);
    EXPECT_EQ(fuType(Op::Jal), FuType::Jmp);
    EXPECT_EQ(fuType(Op::Ld), FuType::Ldu);
    EXPECT_EQ(fuType(Op::Sd), FuType::Sta);
    EXPECT_EQ(fuType(Op::FmaddD), FuType::Fma);
    EXPECT_EQ(fuType(Op::FdivS), FuType::Fdiv);
    EXPECT_EQ(fuType(Op::FsgnjD), FuType::Fmisc);
    EXPECT_EQ(fuType(Op::FcvtDL), FuType::Jmp); // i2f path
    EXPECT_EQ(fuType(Op::Csrrw), FuType::Jmp);
}

TEST(OpMeta, NamesUnique)
{
    // Every op has a distinct, non-"unknown" name.
    std::set<std::string> names;
    for (int i = 1; i < static_cast<int>(Op::NumOps); ++i) {
        std::string n = opName(static_cast<Op>(i));
        EXPECT_NE(n, "unknown") << i;
        EXPECT_TRUE(names.insert(n).second) << n;
    }
}

} // namespace
