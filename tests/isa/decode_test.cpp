#include <gtest/gtest.h>

#include "isa/decode.h"
#include "isa/disasm.h"

namespace {

using namespace minjie::isa;

TEST(Decode, BasicRTypes)
{
    // add x3, x1, x2 = 0x002081b3
    auto di = decode32(0x002081b3);
    EXPECT_EQ(di.op, Op::Add);
    EXPECT_EQ(di.rd, 3u);
    EXPECT_EQ(di.rs1, 1u);
    EXPECT_EQ(di.rs2, 2u);

    // sub x5, x6, x7 = 0x407302b3
    di = decode32(0x407302b3);
    EXPECT_EQ(di.op, Op::Sub);
    EXPECT_EQ(di.rd, 5u);
}

TEST(Decode, Immediates)
{
    // addi x1, x2, -1 = 0xfff10093
    auto di = decode32(0xfff10093);
    EXPECT_EQ(di.op, Op::Addi);
    EXPECT_EQ(di.imm, -1);

    // lui x1, 0xfffff = 0xfffff0b7 -> imm = sign-extended 0xfffff000
    di = decode32(0xfffff0b7);
    EXPECT_EQ(di.op, Op::Lui);
    EXPECT_EQ(di.imm, static_cast<int64_t>(0xfffffffffffff000ULL));

    // jal x0, -4 (backward): encode known value 0xffdff06f
    di = decode32(0xffdff06f);
    EXPECT_EQ(di.op, Op::Jal);
    EXPECT_EQ(di.imm, -4);

    // beq x0, x0, -8: 0xfe000ce3
    di = decode32(0xfe000ce3);
    EXPECT_EQ(di.op, Op::Beq);
    EXPECT_EQ(di.imm, -8);
}

TEST(Decode, LoadsStores)
{
    // ld x10, 8(x2) = 0x00813503
    auto di = decode32(0x00813503);
    EXPECT_EQ(di.op, Op::Ld);
    EXPECT_EQ(di.rd, 10u);
    EXPECT_EQ(di.rs1, 2u);
    EXPECT_EQ(di.imm, 8);

    // sd x10, -16(x2) = 0xfea13823
    di = decode32(0xfea13823);
    EXPECT_EQ(di.op, Op::Sd);
    EXPECT_EQ(di.rs2, 10u);
    EXPECT_EQ(di.imm, -16);
}

TEST(Decode, System)
{
    EXPECT_EQ(decode32(0x00000073).op, Op::Ecall);
    EXPECT_EQ(decode32(0x00100073).op, Op::Ebreak);
    EXPECT_EQ(decode32(0x30200073).op, Op::Mret);
    EXPECT_EQ(decode32(0x10200073).op, Op::Sret);
    EXPECT_EQ(decode32(0x10500073).op, Op::Wfi);
    // sfence.vma x0, x0 = 0x12000073
    EXPECT_EQ(decode32(0x12000073).op, Op::SfenceVma);
    // csrrw x1, mstatus, x2 = 0x300110f3
    auto di = decode32(0x300110f3);
    EXPECT_EQ(di.op, Op::Csrrw);
    EXPECT_EQ(di.imm, 0x300);
}

TEST(Decode, Atomics)
{
    // lr.w x10, (x11) = 0x1005a52f
    auto di = decode32(0x1005a52f);
    EXPECT_EQ(di.op, Op::LrW);
    // amoadd.d x12, x13, (x14) = 0x00d7362f
    di = decode32(0x00d7362f);
    EXPECT_EQ(di.op, Op::AmoAddD);
    EXPECT_EQ(di.rd, 12u);
    EXPECT_EQ(di.rs2, 13u);
    EXPECT_EQ(di.rs1, 14u);
}

TEST(Decode, Fp)
{
    // fadd.d f1, f2, f3 = 0x023170d3 (rm=dyn)
    auto di = decode32(0x023170d3);
    EXPECT_EQ(di.op, Op::FaddD);
    EXPECT_EQ(di.rm, 7u);
    // fmadd.d f1, f2, f3, f4 with rm=rne: 0x223100c3
    di = decode32(0x223100c3);
    EXPECT_EQ(di.op, Op::FmaddD);
    EXPECT_EQ(di.rs3, 4u);
    EXPECT_EQ(di.rm, 0u);
}

TEST(Decode, IllegalPatterns)
{
    EXPECT_EQ(decode32(0x00000000).op, Op::Illegal);
    EXPECT_EQ(decode32(0xffffffff).op, Op::Illegal);
    // Reserved branch funct3 (2).
    EXPECT_EQ(decode32(0x00002063).op, Op::Illegal);
}

TEST(Decode, DisasmSmoke)
{
    auto di = decode32(0x002081b3);
    EXPECT_EQ(disasm(di), std::string("add      gp, ra, sp"));
}

} // namespace
