#include <gtest/gtest.h>

#include "isa/decode.h"

namespace {

using namespace minjie::isa;

TEST(Compressed, Quadrant0)
{
    // c.addi4spn x8, sp, 16 -> 0x0800
    auto di = decode16(0x0800);
    EXPECT_EQ(di.op, Op::Addi);
    EXPECT_EQ(di.rd, 8u);
    EXPECT_EQ(di.rs1, 2u);
    EXPECT_EQ(di.imm, 16);
    EXPECT_EQ(di.size, 2u);

    // c.lw x8, 0(x9) -> quad 0, f3=2, rs1'=1, rd'=0: 0x4080
    di = decode16(0x4080);
    EXPECT_EQ(di.op, Op::Lw);
    EXPECT_EQ(di.rd, 8u);
    EXPECT_EQ(di.rs1, 9u);
    EXPECT_EQ(di.imm, 0);

    // c.sd x9, 8(x8) -> f3=7: bits: 111 imm[5:3]=001 rs1'=000 imm[7:6]=00 rs2'=001 00
    di = decode16(0xe404);
    EXPECT_EQ(di.op, Op::Sd);
    EXPECT_EQ(di.rs1, 8u);
    EXPECT_EQ(di.rs2, 9u);
    EXPECT_EQ(di.imm, 8);
}

TEST(Compressed, Quadrant1)
{
    // c.nop = 0x0001 -> addi x0, x0, 0
    auto di = decode16(0x0001);
    EXPECT_EQ(di.op, Op::Addi);
    EXPECT_EQ(di.rd, 0u);
    EXPECT_EQ(di.imm, 0);

    // c.addi x10, -1 = 0x157d
    di = decode16(0x157d);
    EXPECT_EQ(di.op, Op::Addi);
    EXPECT_EQ(di.rd, 10u);
    EXPECT_EQ(di.rs1, 10u);
    EXPECT_EQ(di.imm, -1);

    // c.li x10, 5 = 0x4515
    di = decode16(0x4515);
    EXPECT_EQ(di.op, Op::Addi);
    EXPECT_EQ(di.rd, 10u);
    EXPECT_EQ(di.rs1, 0u);
    EXPECT_EQ(di.imm, 5);

    // c.lui x15, 1 = 0x6785? c.lui rd=15 imm=1: f3=011 imm17 rd imm[16:12]
    // bits: 011 0 01111 00001 01 = 0x6785
    di = decode16(0x6785);
    EXPECT_EQ(di.op, Op::Lui);
    EXPECT_EQ(di.rd, 15u);
    EXPECT_EQ(di.imm, 0x1000);

    // c.sub x8, x9 -> 100 0 11 000 00 001 01 = 0x8c05
    di = decode16(0x8c05);
    EXPECT_EQ(di.op, Op::Sub);
    EXPECT_EQ(di.rd, 8u);
    EXPECT_EQ(di.rs2, 9u);

    // c.j +0 would be c.j with imm 0: f3=101 imm=0 -> 0xa001
    di = decode16(0xa001);
    EXPECT_EQ(di.op, Op::Jal);
    EXPECT_EQ(di.rd, 0u);
    EXPECT_EQ(di.imm, 0);

    // c.beqz x8, +8: 110 imm[8|4:3]=001 rs1'=000 imm[7:6|2:1|5]=00000 01
    di = decode16(0xc401);
    EXPECT_EQ(di.op, Op::Beq);
    EXPECT_EQ(di.rs1, 8u);
    EXPECT_EQ(di.imm, 8);
}

TEST(Compressed, Quadrant2)
{
    // c.slli x10, 4 = 0x0512
    auto di = decode16(0x0512);
    EXPECT_EQ(di.op, Op::Slli);
    EXPECT_EQ(di.rd, 10u);
    EXPECT_EQ(di.imm, 4);

    // c.lwsp x10, 0(sp) = 0x4502
    di = decode16(0x4502);
    EXPECT_EQ(di.op, Op::Lw);
    EXPECT_EQ(di.rs1, 2u);
    EXPECT_EQ(di.imm, 0);

    // c.mv x10, x11 = 0x852e
    di = decode16(0x852e);
    EXPECT_EQ(di.op, Op::Add);
    EXPECT_EQ(di.rd, 10u);
    EXPECT_EQ(di.rs1, 0u);
    EXPECT_EQ(di.rs2, 11u);

    // c.add x10, x11 = 0x952e
    di = decode16(0x952e);
    EXPECT_EQ(di.op, Op::Add);
    EXPECT_EQ(di.rs1, 10u);
    EXPECT_EQ(di.rs2, 11u);

    // c.jr x1 = 0x8082 (ret)
    di = decode16(0x8082);
    EXPECT_EQ(di.op, Op::Jalr);
    EXPECT_EQ(di.rd, 0u);
    EXPECT_EQ(di.rs1, 1u);

    // c.jalr x1 = 0x9082
    di = decode16(0x9082);
    EXPECT_EQ(di.op, Op::Jalr);
    EXPECT_EQ(di.rd, 1u);
    EXPECT_EQ(di.rs1, 1u);

    // c.ebreak = 0x9002
    EXPECT_EQ(decode16(0x9002).op, Op::Ebreak);

    // c.sdsp x10, 0(sp) = 0xe02a
    di = decode16(0xe02a);
    EXPECT_EQ(di.op, Op::Sd);
    EXPECT_EQ(di.rs1, 2u);
    EXPECT_EQ(di.rs2, 10u);
    EXPECT_EQ(di.imm, 0);
}

TEST(Compressed, IllegalAllZero)
{
    EXPECT_EQ(decode16(0x0000).op, Op::Illegal);
}

TEST(Compressed, DispatchFromDecode)
{
    // decode() routes by the low two bits.
    EXPECT_EQ(decode(0x852e).size, 2u);
    EXPECT_EQ(decode(0x002081b3).size, 4u);
}

} // namespace
