/**
 * Property test: for every op and many random operand/immediate
 * combinations, decode(encode(di)) must reproduce the instruction.
 * This pins the encoder (assembler backend) and decoder against each
 * other without any external reference.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/decode.h"
#include "isa/encode.h"

namespace {

using namespace minjie::isa;
using minjie::Rng;

int64_t
randImmFor(Op op, Rng &rng)
{
    switch (op) {
      case Op::Lui: case Op::Auipc:
        // U-type: bits [31:12], sign-extended.
        return static_cast<int64_t>(
                   static_cast<int32_t>(rng.next() & 0xfffff000));
      case Op::Jal:
        return static_cast<int64_t>(
                   (static_cast<int32_t>(rng.next()) << 11) >> 11) & ~1LL;
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu:
        return static_cast<int64_t>(
                   (static_cast<int32_t>(rng.next()) << 19) >> 19) & ~1LL;
      case Op::Slli: case Op::Srli: case Op::Srai: case Op::Rori:
      case Op::SlliUw:
        return static_cast<int64_t>(rng.below(64));
      case Op::Slliw: case Op::Srliw: case Op::Sraiw: case Op::Roriw:
        return static_cast<int64_t>(rng.below(32));
      case Op::Csrrw: case Op::Csrrs: case Op::Csrrc:
      case Op::Csrrwi: case Op::Csrrsi: case Op::Csrrci:
        return static_cast<int64_t>(rng.below(4096));
      case Op::Clz: case Op::Ctz: case Op::Cpop: case Op::Clzw:
      case Op::Ctzw: case Op::Cpopw: case Op::SextB: case Op::SextH:
      case Op::OrcB: case Op::Rev8:
        return 0;
      default:
        // I/S-type 12-bit signed.
        return static_cast<int64_t>(rng.next() & 0xfff) - 2048;
    }
}

bool
usesImm(Op op)
{
    switch (op) {
      case Op::Lui: case Op::Auipc: case Op::Jal: case Op::Jalr:
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu:
      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Ld: case Op::Lbu:
      case Op::Lhu: case Op::Lwu: case Op::Sb: case Op::Sh: case Op::Sw:
      case Op::Sd: case Op::Flw: case Op::Fld: case Op::Fsw: case Op::Fsd:
      case Op::Addi: case Op::Slti: case Op::Sltiu: case Op::Xori:
      case Op::Ori: case Op::Andi: case Op::Slli: case Op::Srli:
      case Op::Srai: case Op::Addiw: case Op::Slliw: case Op::Srliw:
      case Op::Sraiw: case Op::Rori: case Op::Roriw: case Op::SlliUw:
      case Op::Csrrw: case Op::Csrrs: case Op::Csrrc: case Op::Csrrwi:
      case Op::Csrrsi: case Op::Csrrci: case Op::Fence: case Op::FenceI:
        return true;
      default:
        return false;
    }
}

class RoundtripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundtripTest, EncodeDecode)
{
    auto op = static_cast<Op>(GetParam());
    if (op == Op::Illegal)
        GTEST_SKIP();
    Rng rng(0x5eed + GetParam());

    for (int trial = 0; trial < 50; ++trial) {
        DecodedInst di;
        di.op = op;
        di.rd = static_cast<uint8_t>(rng.below(32));
        di.rs1 = static_cast<uint8_t>(rng.below(32));
        di.rs2 = static_cast<uint8_t>(rng.below(32));
        di.rs3 = static_cast<uint8_t>(rng.below(32));
        di.rm = isFp(op) ? 0 : 0;
        di.imm = randImmFor(op, rng);

        // Ops with fixed operand fields.
        if (op == Op::Ecall || op == Op::Ebreak || op == Op::Mret ||
            op == Op::Sret || op == Op::Wfi) {
            di.rd = di.rs1 = di.rs2 = 0;
            di.imm = 0;
        }
        if (op == Op::SfenceVma)
            di.rd = 0;
        if (op == Op::LrW || op == Op::LrD || op == Op::FsqrtS ||
            op == Op::FsqrtD || op == Op::FclassS || op == Op::FclassD ||
            op == Op::FmvXW || op == Op::FmvWX || op == Op::FmvXD ||
            op == Op::FmvDX || op == Op::ZextH || op == Op::FcvtSD ||
            op == Op::FcvtDS)
            di.rs2 = 0;
        if (op >= Op::FcvtWS && op <= Op::FcvtSLu)
            di.rs2 = 0;
        if (op >= Op::FcvtWD && op <= Op::FcvtDLu)
            di.rs2 = 0;

        uint32_t encoded = encode(di);
        ASSERT_NE(encoded, 0u) << opName(op);
        DecodedInst back = decode32(encoded);

        ASSERT_EQ(back.op, op)
            << opName(op) << " -> " << opName(back.op) << std::hex
            << " word=0x" << encoded;
        // Branches and stores have no rd; compare only meaningful fields.
        if (op != Op::Ecall && op != Op::Ebreak) {
            if (!isCondBranch(op) && !(isStore(op) && !isSc(op)) &&
                op != Op::SfenceVma) {
                EXPECT_EQ(back.rd, di.rd) << opName(op);
            }
            if (op != Op::Lui && op != Op::Auipc && op != Op::Jal) {
                EXPECT_EQ(back.rs1, di.rs1) << opName(op);
            }
        }
        if (usesImm(op)) {
            EXPECT_EQ(back.imm, di.imm) << opName(op);
        }
        if (hasRs3(op)) {
            EXPECT_EQ(back.rs3, di.rs3) << opName(op);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RoundtripTest,
    ::testing::Range(1, static_cast<int>(Op::NumOps)),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string n = opName(static_cast<Op>(info.param));
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

} // namespace
