/**
 * Tests for the RISC-V fp semantics layer: backend equivalence (the
 * bit-for-bit agreement DiffTest relies on), NaN boxing, conversions,
 * min/max, classification.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/rng.h"
#include "fp/ops.h"
#include "fp/softfloat.h"

namespace {

using namespace minjie::fp;
using minjie::Rng;
using minjie::isa::Op;

TEST(FpOps, NanBoxing)
{
    EXPECT_EQ(boxF32(0x3f800000u), 0xffffffff3f800000ull);
    EXPECT_EQ(unboxF32(0xffffffff3f800000ull), 0x3f800000u);
    // Improperly boxed value reads as canonical qNaN.
    EXPECT_EQ(unboxF32(0x123456783f800000ull), 0x7fc00000u);
}

TEST(FpOps, BackendsAgreeOnArithmetic)
{
    Rng rng(0xabcd);
    const Op ops[] = {Op::FaddD, Op::FsubD, Op::FmulD, Op::FdivD,
                      Op::FaddS, Op::FsubS, Op::FmulS, Op::FdivS};
    for (int i = 0; i < 50000; ++i) {
        Op op = ops[rng.below(std::size(ops))];
        uint64_t a = rng.next();
        uint64_t b = rng.next();
        bool single = op == Op::FaddS || op == Op::FsubS ||
                      op == Op::FmulS || op == Op::FdivS;
        if (single) {
            a = boxF32(static_cast<uint32_t>(a));
            b = boxF32(static_cast<uint32_t>(b));
        }
        FpOut host = fpExec(op, a, b, 0, 0, FpBackend::Host);
        FpOut soft = fpExec(op, a, b, 0, 0, FpBackend::Soft);
        ASSERT_EQ(host.value, soft.value)
            << minjie::isa::opName(op) << std::hex << " a=0x" << a
            << " b=0x" << b;
        ASSERT_EQ(host.flags, soft.flags)
            << minjie::isa::opName(op) << std::hex << " a=0x" << a
            << " b=0x" << b;
    }
}

TEST(FpOps, SqrtBackendsAgree)
{
    Rng rng(0xef01);
    for (int i = 0; i < 20000; ++i) {
        uint64_t a = rng.next();
        FpOut host = fpExec(Op::FsqrtD, a, 0, 0, 0, FpBackend::Host);
        FpOut soft = fpExec(Op::FsqrtD, a, 0, 0, 0, FpBackend::Soft);
        ASSERT_EQ(host.value, soft.value) << std::hex << "a=0x" << a;
        ASSERT_EQ(host.flags, soft.flags) << std::hex << "a=0x" << a;
    }
}

TEST(FpOps, MinMaxRiscvSemantics)
{
    const uint64_t one = std::bit_cast<uint64_t>(1.0);
    const uint64_t negzero = 0x8000000000000000ull;
    const uint64_t poszero = 0;
    const uint64_t qnan = CANONICAL_NAN64;
    const uint64_t snan = 0x7ff0000000000001ull;

    // -0 < +0 for fmin/fmax purposes.
    auto r = fpExec(Op::FminD, negzero, poszero, 0, 0, FpBackend::Host);
    EXPECT_EQ(r.value, negzero);
    r = fpExec(Op::FmaxD, negzero, poszero, 0, 0, FpBackend::Host);
    EXPECT_EQ(r.value, poszero);

    // One NaN input: return the other operand, quietly for qNaN.
    r = fpExec(Op::FminD, qnan, one, 0, 0, FpBackend::Host);
    EXPECT_EQ(r.value, one);
    EXPECT_EQ(r.flags, 0);

    // sNaN input signals invalid.
    r = fpExec(Op::FmaxD, snan, one, 0, 0, FpBackend::Host);
    EXPECT_EQ(r.value, one);
    EXPECT_EQ(r.flags, FLAG_NV);

    // Both NaN: canonical NaN.
    r = fpExec(Op::FminD, qnan, qnan, 0, 0, FpBackend::Host);
    EXPECT_EQ(r.value, CANONICAL_NAN64);
}

TEST(FpOps, Comparisons)
{
    const uint64_t one = std::bit_cast<uint64_t>(1.0);
    const uint64_t two = std::bit_cast<uint64_t>(2.0);
    const uint64_t qnan = CANONICAL_NAN64;

    EXPECT_EQ(fpExec(Op::FltD, one, two, 0, 0, FpBackend::Host).value, 1u);
    EXPECT_EQ(fpExec(Op::FleD, two, two, 0, 0, FpBackend::Host).value, 1u);
    EXPECT_EQ(fpExec(Op::FeqD, one, two, 0, 0, FpBackend::Host).value, 0u);

    // feq with qNaN: result 0, no invalid.
    auto r = fpExec(Op::FeqD, qnan, one, 0, 0, FpBackend::Host);
    EXPECT_EQ(r.value, 0u);
    EXPECT_EQ(r.flags, 0);
    // flt with qNaN: signaling -> invalid.
    r = fpExec(Op::FltD, qnan, one, 0, 0, FpBackend::Host);
    EXPECT_EQ(r.value, 0u);
    EXPECT_EQ(r.flags, FLAG_NV);
}

TEST(FpOps, Classify)
{
    EXPECT_EQ(fpExec(Op::FclassD, std::bit_cast<uint64_t>(-1.0/0.0), 0, 0,
                     0, FpBackend::Host).value, 1ull << 0);
    EXPECT_EQ(fpExec(Op::FclassD, std::bit_cast<uint64_t>(-1.5), 0, 0, 0,
                     FpBackend::Host).value, 1ull << 1);
    EXPECT_EQ(fpExec(Op::FclassD, 0x8000000000000001ull, 0, 0, 0,
                     FpBackend::Host).value, 1ull << 2);
    EXPECT_EQ(fpExec(Op::FclassD, 0x8000000000000000ull, 0, 0, 0,
                     FpBackend::Host).value, 1ull << 3);
    EXPECT_EQ(fpExec(Op::FclassD, 0, 0, 0, 0, FpBackend::Host).value,
              1ull << 4);
    EXPECT_EQ(fpExec(Op::FclassD, 1, 0, 0, 0, FpBackend::Host).value,
              1ull << 5);
    EXPECT_EQ(fpExec(Op::FclassD, std::bit_cast<uint64_t>(2.5), 0, 0, 0,
                     FpBackend::Host).value, 1ull << 6);
    EXPECT_EQ(fpExec(Op::FclassD, std::bit_cast<uint64_t>(1.0/0.0), 0, 0,
                     0, FpBackend::Host).value, 1ull << 7);
    EXPECT_EQ(fpExec(Op::FclassD, 0x7ff0000000000001ull, 0, 0, 0,
                     FpBackend::Host).value, 1ull << 8);
    EXPECT_EQ(fpExec(Op::FclassD, CANONICAL_NAN64, 0, 0, 0,
                     FpBackend::Host).value, 1ull << 9);
}

TEST(FpOps, ConversionsSaturate)
{
    // fcvt.w.d of NaN -> INT32_MAX with NV.
    auto r = fpExec(Op::FcvtWD, CANONICAL_NAN64, 0, 0, 0, FpBackend::Host);
    EXPECT_EQ(static_cast<int64_t>(r.value), INT32_MAX);
    EXPECT_TRUE(r.flags & FLAG_NV);

    // fcvt.wu.d of -1.0 -> 0 with NV, sign-extended result.
    r = fpExec(Op::FcvtWuD, std::bit_cast<uint64_t>(-1.0), 0, 0, 0,
               FpBackend::Host);
    EXPECT_EQ(r.value, 0u);
    EXPECT_TRUE(r.flags & FLAG_NV);

    // fcvt.wu.d of 2^32 saturates to UINT32_MAX, sign-extended.
    r = fpExec(Op::FcvtWuD, std::bit_cast<uint64_t>(4294967296.0), 0, 0, 0,
               FpBackend::Host);
    EXPECT_EQ(r.value, ~0ull);
    EXPECT_TRUE(r.flags & FLAG_NV);

    // fcvt.l.d of 1.5 with RTZ -> 1 with NX.
    r = fpExec(Op::FcvtLD, std::bit_cast<uint64_t>(1.5), 0, 0, 1,
               FpBackend::Host);
    EXPECT_EQ(r.value, 1u);
    EXPECT_TRUE(r.flags & FLAG_NX);

    // Rounding modes on 2.5: RNE->2, RTZ->2, RDN->2, RUP->3, RMM->3.
    const uint64_t v = std::bit_cast<uint64_t>(2.5);
    EXPECT_EQ(fpExec(Op::FcvtLD, v, 0, 0, 0, FpBackend::Host).value, 2u);
    EXPECT_EQ(fpExec(Op::FcvtLD, v, 0, 0, 1, FpBackend::Host).value, 2u);
    EXPECT_EQ(fpExec(Op::FcvtLD, v, 0, 0, 2, FpBackend::Host).value, 2u);
    EXPECT_EQ(fpExec(Op::FcvtLD, v, 0, 0, 3, FpBackend::Host).value, 3u);
    EXPECT_EQ(fpExec(Op::FcvtLD, v, 0, 0, 4, FpBackend::Host).value, 3u);
}

TEST(FpOps, IntToFp)
{
    // Exact conversion: no flags.
    auto r = fpExec(Op::FcvtDL, 42, 0, 0, 0, FpBackend::Host);
    EXPECT_EQ(std::bit_cast<double>(r.value), 42.0);
    EXPECT_EQ(r.flags, 0);

    // 2^60+1 to double is inexact.
    r = fpExec(Op::FcvtDL, (1ull << 60) + 1, 0, 0, 0, FpBackend::Host);
    EXPECT_TRUE(r.flags & FLAG_NX);

    // Unsigned conversion of a "negative" pattern.
    r = fpExec(Op::FcvtDLu, ~0ull, 0, 0, 0, FpBackend::Host);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(r.value), 18446744073709551616.0);
}

TEST(FpOps, FmaSpecials)
{
    // fmadd with inf * 0 -> NV + canonical NaN.
    auto r = fpExec(Op::FmaddD, std::bit_cast<uint64_t>(1.0/0.0), 0,
                    std::bit_cast<uint64_t>(1.0), 0, FpBackend::Host);
    EXPECT_EQ(r.value, CANONICAL_NAN64);
    EXPECT_TRUE(r.flags & FLAG_NV);

    // fnmadd(-a*b - c) sign check: fnmadd(1,2,3) = -5.
    r = fpExec(Op::FnmaddD, std::bit_cast<uint64_t>(1.0),
               std::bit_cast<uint64_t>(2.0), std::bit_cast<uint64_t>(3.0),
               0, FpBackend::Host);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(r.value), -5.0);

    // fmsub(1,2,3) = -1.
    r = fpExec(Op::FmsubD, std::bit_cast<uint64_t>(1.0),
               std::bit_cast<uint64_t>(2.0), std::bit_cast<uint64_t>(3.0),
               0, FpBackend::Host);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(r.value), -1.0);

    // fnmsub(1,2,3) = 1.
    r = fpExec(Op::FnmsubD, std::bit_cast<uint64_t>(1.0),
               std::bit_cast<uint64_t>(2.0), std::bit_cast<uint64_t>(3.0),
               0, FpBackend::Host);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(r.value), 1.0);
}

TEST(FpOps, Moves)
{
    // fmv.x.w sign-extends the low 32 bits of the fp register.
    auto r = fpExec(Op::FmvXW, 0xffffffff80000000ull, 0, 0, 0,
                    FpBackend::Host);
    EXPECT_EQ(r.value, 0xffffffff80000000ull);
    // fmv.w.x boxes.
    r = fpExec(Op::FmvWX, 0x3f800000u, 0, 0, 0, FpBackend::Host);
    EXPECT_EQ(r.value, boxF32(0x3f800000u));
}

} // namespace
