/**
 * Property tests pinning the software float implementation bit-for-bit
 * against the host FPU (x86 SSE2 is IEEE-754 compliant with RNE and
 * after-rounding tininess, which is what softfloat.cpp implements).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/rng.h"
#include "fp/softfloat.h"

namespace {

using namespace minjie::fp;
using minjie::Rng;

double
hostCanon(double v)
{
    return std::isnan(v) ? std::bit_cast<double>(CANONICAL_NAN64) : v;
}

float
hostCanonF(float v)
{
    return std::isnan(v) ? std::bit_cast<float>(CANONICAL_NAN32) : v;
}

/** Interesting edge-case bit patterns for binary64. */
const uint64_t kEdge64[] = {
    0x0000000000000000ull, // +0
    0x8000000000000000ull, // -0
    0x0000000000000001ull, // min subnormal
    0x000fffffffffffffull, // max subnormal
    0x0010000000000000ull, // min normal
    0x7fefffffffffffffull, // max normal
    0x7ff0000000000000ull, // +inf
    0xfff0000000000000ull, // -inf
    0x7ff8000000000000ull, // qNaN
    0x7ff0000000000001ull, // sNaN
    0x3ff0000000000000ull, // 1.0
    0xbff0000000000000ull, // -1.0
    0x4000000000000000ull, // 2.0
    0x3fe0000000000000ull, // 0.5
    0x4340000000000000ull, // 2^53
    0x4330000000000001ull, // 2^52+1
    0x36a0000000000000ull, // tiny normal
    0x7fe0000000000000ull, // huge
};

const uint32_t kEdge32[] = {
    0x00000000u, 0x80000000u, 0x00000001u, 0x007fffffu, 0x00800000u,
    0x7f7fffffu, 0x7f800000u, 0xff800000u, 0x7fc00000u, 0x7f800001u,
    0x3f800000u, 0xbf800000u, 0x40000000u, 0x3f000000u, 0x4b800000u,
    0x34000000u, 0x7f000000u,
};

struct BinCase
{
    const char *name;
    uint64_t (*soft)(uint64_t, uint64_t, uint8_t &);
    double (*host)(double, double);
};

double hAdd(double a, double b) { return a + b; }
double hSub(double a, double b) { return a - b; }
double hMul(double a, double b) { return a * b; }
double hDiv(double a, double b) { return a / b; }

class Soft64BinTest : public ::testing::TestWithParam<int> {};

const BinCase kBin64[] = {
    {"add", softAdd64, hAdd},
    {"sub", softSub64, hSub},
    {"mul", softMul64, hMul},
    {"div", softDiv64, hDiv},
};

TEST_P(Soft64BinTest, EdgePairsMatchHost)
{
    const BinCase &c = kBin64[GetParam()];
    for (uint64_t ab : kEdge64) {
        for (uint64_t bb : kEdge64) {
            for (int signs = 0; signs < 4; ++signs) {
                uint64_t a = ab ^ ((signs & 1) ? 0x8000000000000000ull : 0);
                uint64_t b = bb ^ ((signs & 2) ? 0x8000000000000000ull : 0);
                uint8_t flags = 0;
                uint64_t soft = c.soft(a, b, flags);
                double host = hostCanon(
                    c.host(std::bit_cast<double>(a),
                           std::bit_cast<double>(b)));
                EXPECT_EQ(soft, std::bit_cast<uint64_t>(host))
                    << c.name << std::hex << " a=0x" << a << " b=0x" << b;
            }
        }
    }
}

TEST_P(Soft64BinTest, RandomMatchHost)
{
    const BinCase &c = kBin64[GetParam()];
    Rng rng(0xf10a7 + GetParam());
    for (int i = 0; i < 200000; ++i) {
        uint64_t a = rng.next();
        uint64_t b = rng.next();
        // Bias some trials toward nearby exponents to stress alignment.
        if (i % 3 == 0)
            b = (a & 0xfff0000000000000ull) | (b & 0x000fffffffffffffull);
        uint8_t flags = 0;
        uint64_t soft = c.soft(a, b, flags);
        double host = hostCanon(c.host(std::bit_cast<double>(a),
                                       std::bit_cast<double>(b)));
        ASSERT_EQ(soft, std::bit_cast<uint64_t>(host))
            << c.name << std::hex << " a=0x" << a << " b=0x" << b;
    }
}

TEST_P(Soft64BinTest, SubnormalRange)
{
    const BinCase &c = kBin64[GetParam()];
    Rng rng(0xdeb + GetParam());
    for (int i = 0; i < 50000; ++i) {
        // Both operands subnormal or barely normal.
        uint64_t a = (rng.next() & 0x001fffffffffffffull) |
                     (rng.chance(50) ? 0x8000000000000000ull : 0);
        uint64_t b = (rng.next() & 0x001fffffffffffffull) |
                     (rng.chance(50) ? 0x8000000000000000ull : 0);
        uint8_t flags = 0;
        uint64_t soft = c.soft(a, b, flags);
        double host = hostCanon(c.host(std::bit_cast<double>(a),
                                       std::bit_cast<double>(b)));
        ASSERT_EQ(soft, std::bit_cast<uint64_t>(host))
            << c.name << std::hex << " a=0x" << a << " b=0x" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(Ops, Soft64BinTest, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int> &i) {
                             return kBin64[i.param].name;
                         });

struct BinCase32
{
    const char *name;
    uint32_t (*soft)(uint32_t, uint32_t, uint8_t &);
    float (*host)(float, float);
};

float hAddF(float a, float b) { return a + b; }
float hSubF(float a, float b) { return a - b; }
float hMulF(float a, float b) { return a * b; }
float hDivF(float a, float b) { return a / b; }

const BinCase32 kBin32[] = {
    {"add", softAdd32, hAddF},
    {"sub", softSub32, hSubF},
    {"mul", softMul32, hMulF},
    {"div", softDiv32, hDivF},
};

class Soft32BinTest : public ::testing::TestWithParam<int> {};

TEST_P(Soft32BinTest, RandomAndEdgesMatchHost)
{
    const BinCase32 &c = kBin32[GetParam()];
    Rng rng(0x32c + GetParam());
    for (uint32_t a : kEdge32) {
        for (uint32_t b : kEdge32) {
            uint8_t flags = 0;
            uint32_t soft = c.soft(a, b, flags);
            float host = hostCanonF(c.host(std::bit_cast<float>(a),
                                           std::bit_cast<float>(b)));
            ASSERT_EQ(soft, std::bit_cast<uint32_t>(host))
                << c.name << std::hex << " a=0x" << a << " b=0x" << b;
        }
    }
    for (int i = 0; i < 200000; ++i) {
        uint32_t a = static_cast<uint32_t>(rng.next());
        uint32_t b = static_cast<uint32_t>(rng.next());
        if (i % 3 == 0)
            b = (a & 0xff800000u) | (b & 0x007fffffu);
        uint8_t flags = 0;
        uint32_t soft = c.soft(a, b, flags);
        float host = hostCanonF(c.host(std::bit_cast<float>(a),
                                       std::bit_cast<float>(b)));
        ASSERT_EQ(soft, std::bit_cast<uint32_t>(host))
            << c.name << std::hex << " a=0x" << a << " b=0x" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(Ops, Soft32BinTest, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int> &i) {
                             return kBin32[i.param].name;
                         });

TEST(SoftSqrt, MatchesHost64)
{
    Rng rng(0x5c47);
    for (uint64_t a : kEdge64) {
        uint8_t flags = 0;
        uint64_t soft = softSqrt64(a, flags);
        double host = hostCanon(std::sqrt(std::bit_cast<double>(a)));
        ASSERT_EQ(soft, std::bit_cast<uint64_t>(host))
            << std::hex << "a=0x" << a;
    }
    for (int i = 0; i < 100000; ++i) {
        uint64_t a = rng.next();
        uint8_t flags = 0;
        uint64_t soft = softSqrt64(a, flags);
        double host = hostCanon(std::sqrt(std::bit_cast<double>(a)));
        ASSERT_EQ(soft, std::bit_cast<uint64_t>(host))
            << std::hex << "a=0x" << a;
    }
}

TEST(SoftSqrt, MatchesHost32)
{
    Rng rng(0x5c48);
    for (int i = 0; i < 100000; ++i) {
        uint32_t a = static_cast<uint32_t>(rng.next());
        uint8_t flags = 0;
        uint32_t soft = softSqrt32(a, flags);
        float host = hostCanonF(std::sqrt(std::bit_cast<float>(a)));
        ASSERT_EQ(soft, std::bit_cast<uint32_t>(host))
            << std::hex << "a=0x" << a;
    }
}

TEST(SoftFlags, BasicCases)
{
    uint8_t f = 0;
    // inf - inf -> invalid
    softSub64(0x7ff0000000000000ull, 0x7ff0000000000000ull, f);
    EXPECT_TRUE(f & FLAG_NV);

    f = 0;
    // 1.0 / 0.0 -> divide by zero
    softDiv64(0x3ff0000000000000ull, 0, f);
    EXPECT_TRUE(f & FLAG_DZ);

    f = 0;
    // max * max -> overflow + inexact
    softMul64(0x7fefffffffffffffull, 0x7fefffffffffffffull, f);
    EXPECT_TRUE(f & FLAG_OF);
    EXPECT_TRUE(f & FLAG_NX);

    f = 0;
    // min_normal * 0.5 -> underflow + inexact? exact halving of the
    // smallest normal is representable as a subnormal: inexact clear.
    softMul64(0x0010000000000000ull, 0x3fe0000000000000ull, f);
    EXPECT_FALSE(f & FLAG_NX);

    f = 0;
    // sqrt(-1) -> invalid
    softSqrt64(0xbff0000000000000ull, f);
    EXPECT_TRUE(f & FLAG_NV);

    f = 0;
    // 1 + 2^-60 -> inexact only
    softAdd64(0x3ff0000000000000ull, 0x3c30000000000000ull, f);
    EXPECT_EQ(f, FLAG_NX);
}

} // namespace
