#include <gtest/gtest.h>

#include "mem/bus.h"

namespace {

using namespace minjie;
using namespace minjie::mem;

TEST(Bus, RoutesDramAndDevices)
{
    PhysMem dram(0x80000000, 1 << 20);
    Bus bus(dram);
    Uart uart;
    SimCtrl ctl;
    bus.addDevice(&uart);
    bus.addDevice(&ctl);

    // DRAM path.
    ASSERT_TRUE(bus.write(0x80000000, 8, 42));
    uint64_t v;
    ASSERT_TRUE(bus.read(0x80000000, 8, v));
    EXPECT_EQ(v, 42u);
    EXPECT_FALSE(bus.isMmio(0x80000000));

    // Device path.
    EXPECT_TRUE(bus.isMmio(Uart::DEFAULT_BASE));
    ASSERT_TRUE(bus.write(Uart::DEFAULT_BASE, 1, 'x'));
    EXPECT_EQ(uart.output(), "x");

    // Unmapped hole.
    EXPECT_FALSE(bus.read(0x20000000, 8, v));
    EXPECT_FALSE(bus.isMmio(0x20000000));
}

TEST(Uart, LineStatusAlwaysReady)
{
    Uart uart;
    uint64_t v;
    uart.read(5, 1, v);
    EXPECT_EQ(v, 0x20u); // TX empty
    uart.write(0, 1, 'h');
    uart.write(0, 1, 'i');
    EXPECT_EQ(uart.output(), "hi");
    uart.clearOutput();
    EXPECT_TRUE(uart.output().empty());
}

TEST(Clint, TimerComparatorSemantics)
{
    Clint clint;
    EXPECT_FALSE(clint.timerIrq(0)); // mtimecmp resets to ~0
    clint.write(0x4000, 8, 100);     // mtimecmp[0] = 100
    EXPECT_FALSE(clint.timerIrq(0));
    clint.tick(99);
    EXPECT_FALSE(clint.timerIrq(0));
    clint.tick(1);
    EXPECT_TRUE(clint.timerIrq(0));
    uint64_t v;
    clint.read(0xbff8, 8, v);
    EXPECT_EQ(v, 100u);

    // Per-hart comparators are independent.
    clint.write(0x4008, 8, 50); // mtimecmp[1]
    EXPECT_TRUE(clint.timerIrq(1));
    clint.write(0x4008, 8, 5000);
    EXPECT_FALSE(clint.timerIrq(1));
}

TEST(Clint, SoftwareInterruptBits)
{
    Clint clint;
    EXPECT_FALSE(clint.softwareIrq(0));
    clint.write(0, 4, 1); // msip[0]
    EXPECT_TRUE(clint.softwareIrq(0));
    EXPECT_FALSE(clint.softwareIrq(1));
    clint.write(0, 4, 0);
    EXPECT_FALSE(clint.softwareIrq(0));
}

TEST(SimCtrl, ExitProtocol)
{
    SimCtrl ctl;
    EXPECT_FALSE(ctl.exited());
    ctl.write(0, 8, (77 << 1) | 1);
    EXPECT_TRUE(ctl.exited());
    EXPECT_EQ(ctl.exitCode(), 77u);
    ctl.write(8, 1, 'z');
    EXPECT_EQ(ctl.output(), "z");
    ctl.reset();
    EXPECT_FALSE(ctl.exited());
}

} // namespace
