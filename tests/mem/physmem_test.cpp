#include <gtest/gtest.h>

#include "mem/physmem.h"

namespace {

using namespace minjie;
using mem::PhysMem;

TEST(PhysMem, ReadWriteAllSizes)
{
    PhysMem pm(0x80000000, 1 << 20);
    for (unsigned size : {1u, 2u, 4u, 8u}) {
        uint64_t wrote = 0x1122334455667788ULL;
        ASSERT_TRUE(pm.write(0x80000100, size, wrote));
        uint64_t got = ~0ULL;
        ASSERT_TRUE(pm.read(0x80000100, size, got));
        uint64_t mask = size == 8 ? ~0ULL : ((1ULL << (size * 8)) - 1);
        EXPECT_EQ(got, wrote & mask) << size;
    }
}

TEST(PhysMem, OutOfRangeRejected)
{
    PhysMem pm(0x80000000, 4096);
    uint64_t v;
    EXPECT_FALSE(pm.read(0x7fffffff, 1, v));
    EXPECT_FALSE(pm.read(0x80001000, 1, v));
    EXPECT_FALSE(pm.read(0x80000ffd, 8, v)); // straddles the end
    EXPECT_TRUE(pm.read(0x80000ff8, 8, v));
}

TEST(PhysMem, PageCrossingAccess)
{
    PhysMem pm(0x80000000, 1 << 20);
    // 8-byte write straddling a 4K page boundary.
    ASSERT_TRUE(pm.write(0x80000ffc, 8, 0xaabbccdd11223344ULL));
    uint64_t got;
    ASSERT_TRUE(pm.read(0x80000ffc, 8, got));
    EXPECT_EQ(got, 0xaabbccdd11223344ULL);
    // The two halves live on different pages.
    pm.read(0x80001000, 4, got);
    EXPECT_EQ(got, 0xaabbccddULL);
}

TEST(PhysMem, SparseAllocation)
{
    PhysMem pm(0x80000000, 1ULL << 32); // 4 GB space
    EXPECT_EQ(pm.allocatedPages(), 0u);
    pm.write(0x80000000, 8, 1);
    pm.write(0x80000000 + (1ULL << 30), 8, 2); // 1 GB away
    EXPECT_EQ(pm.allocatedPages(), 2u);
    uint64_t v;
    pm.read(0x80000000 + (1ULL << 30), 8, v);
    EXPECT_EQ(v, uint64_t{2});
}

TEST(PhysMem, UntouchedReadsZero)
{
    PhysMem pm(0x80000000, 1 << 20);
    uint64_t v = ~0ULL;
    ASSERT_TRUE(pm.read(0x80055000, 8, v));
    EXPECT_EQ(v, 0u);
}

TEST(PhysMem, LoadBulkAndIterate)
{
    PhysMem pm(0x80000000, 1 << 20);
    std::vector<uint8_t> blob(10000);
    for (size_t i = 0; i < blob.size(); ++i)
        blob[i] = static_cast<uint8_t>(i * 7);
    pm.load(0x80000800, blob.data(), blob.size());

    uint64_t v;
    pm.read(0x80000800 + 9999, 1, v);
    EXPECT_EQ(v, static_cast<uint8_t>(9999 * 7));

    size_t pages = 0;
    pm.forEachPage([&](Addr, const uint8_t *) { ++pages; });
    EXPECT_EQ(pages, pm.allocatedPages());

    pm.clear();
    EXPECT_EQ(pm.allocatedPages(), 0u);
    pm.read(0x80000800, 1, v);
    EXPECT_EQ(v, 0u);
}

} // namespace
