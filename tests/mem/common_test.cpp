#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/rng.h"

namespace {

using namespace minjie;

TEST(BitUtil, BitsAndBit)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xff, 3, 0), 0xfu);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
    EXPECT_EQ(bit(0x8, 3), 1u);
    EXPECT_EQ(bit(0x8, 2), 0u);
}

TEST(BitUtil, SextZext)
{
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_EQ(sext(0xffffffff, 32), -1);
    EXPECT_EQ(sext(0x7fffffff, 32), 0x7fffffff);
    EXPECT_EQ(sext(~0ULL, 64), -1);
    EXPECT_EQ(zext(~0ULL, 8), 0xffULL);
    EXPECT_EQ(zext(~0ULL, 64), ~0ULL);
}

TEST(BitUtil, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1234, 16), 0x1240u);
    EXPECT_EQ(alignUp(0x1240, 16), 0x1240u);
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(65));
    EXPECT_FALSE(isPow2(0));
    EXPECT_EQ(log2i(4096), 12u);
}

TEST(BitUtil, InsertBits)
{
    EXPECT_EQ(insertBits(0, 7, 4, 0xf), 0xf0ULL);
    EXPECT_EQ(insertBits(0xffULL, 7, 4, 0), 0x0fULL);
    EXPECT_EQ(insertBits(0, 63, 0, ~0ULL), ~0ULL);
}

TEST(Rng, DeterministicAndWellDistributed)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i) {
        uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
    }
    // Different seeds diverge.
    Rng a2(123);
    bool differs = false;
    for (int i = 0; i < 10; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);

    // below() stays in range; chance() roughly calibrated.
    Rng r(77);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(r.below(17), 17u);
        if (r.chance(25))
            ++hits;
    }
    EXPECT_GT(hits, 2200);
    EXPECT_LT(hits, 2800);
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        sawLo |= v == 3;
        sawHi |= v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

} // namespace
