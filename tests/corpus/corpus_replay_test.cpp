/**
 * Replays every committed corpus entry (.mjc files in tests/corpus/)
 * on the recorded engine pair. Entries are minimized programs that once
 * exposed a divergence; on healthy engines they must run to completion
 * in full agreement, so a regression of a previously-fixed (or
 * previously-injected) bug fails exactly the test named after its file.
 *
 * MINJIE_CORPUS_DIR is injected by CMake and points at this source
 * directory, so freshly promoted .mjc files are picked up on the next
 * ctest run without editing any test code.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "campaign/corpus.h"
#include "campaign/lockstep.h"

namespace {

using namespace minjie::campaign;

class CorpusReplay : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusReplay, EnginesAgreeOnMinimizedProgram)
{
    CorpusEntry e;
    ASSERT_TRUE(readCorpusFile(GetParam(), e))
        << "unreadable corpus file " << GetParam();
    EXPECT_FALSE(e.signature.empty());

    auto prog = e.program.assemble();
    auto r = runLockstep(e.engineA, e.engineB, prog, 1'000'000);
    EXPECT_FALSE(r.div.diverged())
        << "corpus regression (" << e.signature
        << " is back): " << r.div.describe();
    EXPECT_TRUE(r.exited);
}

std::string
testLabel(const ::testing::TestParamInfo<std::string> &info)
{
    std::string stem = std::filesystem::path(info.param).stem().string();
    for (char &c : stem)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return stem;
}

INSTANTIATE_TEST_SUITE_P(Committed, CorpusReplay,
                         ::testing::ValuesIn(
                             listCorpusFiles(MINJIE_CORPUS_DIR)),
                         testLabel);

// The committed corpus must never silently vanish (an empty parameter
// list would skip the suite above without failing anything).
TEST(CorpusReplay, CommittedCorpusIsNonEmpty)
{
    EXPECT_FALSE(listCorpusFiles(MINJIE_CORPUS_DIR).empty())
        << "no .mjc files under " << MINJIE_CORPUS_DIR;
}

} // namespace
