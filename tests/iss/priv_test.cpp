/**
 * Privilege-architecture integration tests: M->S delegation, sret,
 * and a full Sv39 end-to-end program that builds its own page tables,
 * enables translation, and runs through virtual addresses.
 */

#include <gtest/gtest.h>

#include "iss/interp.h"
#include "iss/system.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::isa;
using namespace minjie::iss;
namespace wl = minjie::workload;

TEST(Priv, DelegatedEcallLandsInSMode)
{
    System sys(32);
    ArchState st;
    st.reset(DRAM_BASE, 0);
    Mmu mmu(st, sys.bus);

    st.csr.medeleg = 1ULL << 8; // delegate ecall-from-U
    st.csr.stvec = DRAM_BASE + 0x500;
    st.csr.mtvec = DRAM_BASE + 0x900;
    st.priv = Priv::U;

    DecodedInst ecall;
    ecall.op = Op::Ecall;
    Trap t = execInst(st, mmu, ecall, fp::FpBackend::Host);
    ASSERT_EQ(t.cause, Exc::EcallFromU);
    takeTrap(st, t, st.pc);

    EXPECT_EQ(st.priv, Priv::S);
    EXPECT_EQ(st.pc, DRAM_BASE + 0x500);
    EXPECT_EQ(st.csr.scause, 8u);
    // Non-delegated cause still goes to M.
    st.priv = Priv::S;
    DecodedInst ill;
    ill.op = Op::Illegal;
    t = execInst(st, mmu, ill, fp::FpBackend::Host);
    takeTrap(st, t, st.pc);
    EXPECT_EQ(st.priv, Priv::M);
    EXPECT_EQ(st.pc, DRAM_BASE + 0x900);
}

TEST(Priv, SretRestoresPrivilege)
{
    System sys(32);
    ArchState st;
    st.reset(DRAM_BASE, 0);
    Mmu mmu(st, sys.bus);

    st.priv = Priv::S;
    st.csr.sepc = DRAM_BASE + 0x1234;
    st.csr.mstatus &= ~MSTATUS_SPP; // previous privilege: U
    st.csr.mstatus |= MSTATUS_SPIE;

    DecodedInst sret;
    sret.op = Op::Sret;
    ASSERT_FALSE(execInst(st, mmu, sret, fp::FpBackend::Host).pending());
    EXPECT_EQ(st.priv, Priv::U);
    EXPECT_EQ(st.pc, DRAM_BASE + 0x1234);
    EXPECT_TRUE(st.csr.mstatus & MSTATUS_SIE); // SPIE restored into SIE
}

TEST(Priv, TsrMakesSretIllegal)
{
    System sys(32);
    ArchState st;
    st.reset(DRAM_BASE, 0);
    Mmu mmu(st, sys.bus);
    st.priv = Priv::S;
    st.csr.mstatus |= MSTATUS_TSR;
    DecodedInst sret;
    sret.op = Op::Sret;
    EXPECT_EQ(execInst(st, mmu, sret, fp::FpBackend::Host).cause,
              Exc::IllegalInst);
}

TEST(Priv, InterruptPriorityOrder)
{
    System sys(32);
    ArchState st;
    st.reset(DRAM_BASE, 0);
    st.csr.mstatus |= MSTATUS_MIE;
    st.csr.mie = MIP_MTIP | MIP_MEIP | MIP_MSIP;
    st.csr.mip = MIP_MTIP | MIP_MEIP | MIP_MSIP;
    // MEI beats MSI beats MTI.
    EXPECT_EQ(pendingInterrupt(st), 11u);
    st.csr.mip &= ~MIP_MEIP;
    EXPECT_EQ(pendingInterrupt(st), 3u);
    st.csr.mip &= ~MIP_MSIP;
    EXPECT_EQ(pendingInterrupt(st), 7u);
    // Disabled globally in M-mode: nothing deliverable.
    st.csr.mstatus &= ~MSTATUS_MIE;
    EXPECT_EQ(pendingInterrupt(st), ~0ULL);
}

class Sv39EngineTest : public ::testing::TestWithParam<int> {};

TEST_P(Sv39EngineTest, PagedExecutionOnEveryEngine)
{
    auto prog = wl::sv39Program();
    System sys(64);
    prog.loadInto(sys.dram);

    std::unique_ptr<Interp> engine;
    switch (GetParam()) {
      case 0:
        engine = std::make_unique<SpikeInterp>(sys.bus, 0, prog.entry);
        break;
      case 1:
        engine = std::make_unique<DromajoInterp>(sys.bus, 0, prog.entry);
        break;
      default:
        engine = std::make_unique<TciInterp>(sys.bus, 0, prog.entry);
        break;
    }
    engine->setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = engine->run(100'000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(sys.simctrl.exitCode(), 0u);
    EXPECT_EQ(engine->state().priv, Priv::S);
    EXPECT_EQ(engine->state().x[wl::a0], 5050u);
    EXPECT_EQ(engine->state().x[wl::a2], 5050u);
    EXPECT_GT(engine->mmu().stats().pageWalks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Engines, Sv39EngineTest, ::testing::Range(0, 3),
                         [](const ::testing::TestParamInfo<int> &i) {
                             switch (i.param) {
                               case 0: return "Spike";
                               case 1: return "Dromajo";
                               default: return "Tci";
                             }
                         });

} // namespace
