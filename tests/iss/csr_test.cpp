#include <gtest/gtest.h>

#include "iss/csrfile.h"

namespace {

using namespace minjie::isa;
using minjie::iss::CsrFile;

TEST(CsrFile, MstatusWarl)
{
    CsrFile csr;
    // MPP = 2 is illegal; write legalizes to U (0).
    csr.write(CSR_MSTATUS, Priv::M, 2ULL << 11);
    EXPECT_EQ(csr.mstatus & MSTATUS_MPP, 0u);
    // MPP = 3 sticks.
    csr.write(CSR_MSTATUS, Priv::M, 3ULL << 11);
    EXPECT_EQ((csr.mstatus & MSTATUS_MPP) >> 11, 3u);
    // UXL/SXL pinned to 2.
    EXPECT_EQ((csr.mstatus >> 32) & 3, 2u);
    // SD mirrors FS.
    csr.write(CSR_MSTATUS, Priv::M, MSTATUS_FS);
    EXPECT_TRUE(csr.mstatus & MSTATUS_SD);
    csr.write(CSR_MSTATUS, Priv::M, 0);
    EXPECT_FALSE(csr.mstatus & MSTATUS_SD);
}

TEST(CsrFile, SstatusIsAView)
{
    CsrFile csr;
    csr.write(CSR_MSTATUS, Priv::M, MSTATUS_SIE | MSTATUS_MIE | MSTATUS_SUM);
    uint64_t v;
    ASSERT_TRUE(csr.read(CSR_SSTATUS, Priv::S, v));
    EXPECT_TRUE(v & MSTATUS_SIE);
    EXPECT_TRUE(v & MSTATUS_SUM);
    EXPECT_FALSE(v & MSTATUS_MIE); // machine bits hidden

    // Writing sstatus cannot touch MIE.
    csr.write(CSR_SSTATUS, Priv::S, 0);
    EXPECT_TRUE(csr.mstatus & MSTATUS_MIE);
    EXPECT_FALSE(csr.mstatus & MSTATUS_SIE);
}

TEST(CsrFile, PrivilegeChecks)
{
    CsrFile csr;
    uint64_t v;
    EXPECT_FALSE(csr.read(CSR_MSTATUS, Priv::S, v));
    EXPECT_FALSE(csr.read(CSR_MSTATUS, Priv::U, v));
    EXPECT_TRUE(csr.read(CSR_SSTATUS, Priv::S, v));
    EXPECT_FALSE(csr.read(CSR_SEPC, Priv::U, v));
    // Read-only region rejects writes even from M.
    EXPECT_FALSE(csr.write(CSR_MHARTID, Priv::M, 5));
    EXPECT_FALSE(csr.write(CSR_MVENDORID, Priv::M, 5));
}

TEST(CsrFile, SatpModeWarl)
{
    CsrFile csr;
    // Sv48 (mode 9) is not implemented: write ignored entirely.
    csr.write(CSR_SATP, Priv::M, 9ULL << SATP_MODE_SHIFT);
    EXPECT_EQ(csr.satp, 0u);
    // Sv39 accepted.
    csr.write(CSR_SATP, Priv::M, (SATP_MODE_SV39 << SATP_MODE_SHIFT) | 0x123);
    EXPECT_EQ(csr.satp >> SATP_MODE_SHIFT, SATP_MODE_SV39);
    EXPECT_EQ(csr.satp & SATP_PPN_MASK, 0x123u);
}

TEST(CsrFile, SieSipAreMaskedViews)
{
    CsrFile csr;
    csr.write(CSR_MIDELEG, Priv::M, SIP_MASK);
    csr.write(CSR_MIE, Priv::M, MIP_MSIP | MIP_SSIP | MIP_STIP);
    uint64_t v;
    csr.read(CSR_SIE, Priv::S, v);
    EXPECT_EQ(v, MIP_SSIP | MIP_STIP); // MSIP invisible
    // sie writes affect only delegated bits.
    csr.write(CSR_SIE, Priv::S, 0);
    csr.read(CSR_MIE, Priv::M, v);
    EXPECT_EQ(v, MIP_MSIP);
}

TEST(CsrFile, MipWritableMask)
{
    CsrFile csr;
    // MTIP/MSIP/MEIP are not writable through the CSR interface.
    csr.write(CSR_MIP, Priv::M, MIP_MTIP | MIP_MSIP | MIP_MEIP | MIP_SSIP);
    EXPECT_EQ(csr.mip, MIP_SSIP);
}

TEST(CsrFile, FcsrComposition)
{
    CsrFile csr;
    csr.write(CSR_FCSR, Priv::M, (0x3 << 5) | 0x1f);
    uint64_t v;
    csr.read(CSR_FFLAGS, Priv::U, v);
    EXPECT_EQ(v, 0x1fu);
    csr.read(CSR_FRM, Priv::U, v);
    EXPECT_EQ(v, 0x3u);
    csr.write(CSR_FFLAGS, Priv::U, 0x2);
    csr.read(CSR_FCSR, Priv::U, v);
    EXPECT_EQ(v, (0x3u << 5) | 0x2u);
}

TEST(CsrFile, FpDisabledRejectsFcsr)
{
    CsrFile csr;
    csr.mstatus &= ~MSTATUS_FS;
    uint64_t v;
    EXPECT_FALSE(csr.read(CSR_FFLAGS, Priv::M, v));
    EXPECT_FALSE(csr.write(CSR_FRM, Priv::M, 1));
}

TEST(CsrFile, EpcAlignment)
{
    CsrFile csr;
    csr.write(CSR_MEPC, Priv::M, 0x1003);
    EXPECT_EQ(csr.mepc, 0x1002u); // bit 0 cleared
}

TEST(CsrFile, MedelegEcallFromMNotDelegable)
{
    CsrFile csr;
    csr.write(CSR_MEDELEG, Priv::M, ~0ULL);
    EXPECT_FALSE((csr.medeleg >> 11) & 1);
    EXPECT_TRUE((csr.medeleg >> 12) & 1);
}

TEST(CsrFile, HpmCountersReadZero)
{
    CsrFile csr;
    uint64_t v = 123;
    EXPECT_TRUE(csr.read(0xb03, Priv::M, v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(csr.write(0x323, Priv::M, 42));
}

} // namespace
