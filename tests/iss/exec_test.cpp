#include <gtest/gtest.h>

#include "iss/exec.h"
#include "iss/system.h"

namespace {

using namespace minjie;
using namespace minjie::isa;
using namespace minjie::iss;

class ExecTest : public ::testing::Test
{
  protected:
    ExecTest() : sys(16), mmu(st, sys.bus)
    {
        st.reset(DRAM_BASE, 0);
    }

    Trap
    run(Op op, unsigned rd, unsigned rs1, unsigned rs2, int64_t imm = 0)
    {
        DecodedInst di;
        di.op = op;
        di.rd = static_cast<uint8_t>(rd);
        di.rs1 = static_cast<uint8_t>(rs1);
        di.rs2 = static_cast<uint8_t>(rs2);
        di.imm = imm;
        return execInst(st, mmu, di, fp::FpBackend::Host, &info);
    }

    System sys;
    ArchState st;
    Mmu mmu;
    ExecInfo info;
};

TEST_F(ExecTest, ZeroRegisterStaysZero)
{
    st.setX(1, 42);
    run(Op::Addi, 0, 1, 0, 100);
    EXPECT_EQ(st.x[0], 0u);
    run(Op::Add, 0, 1, 1);
    EXPECT_EQ(st.x[0], 0u);
}

TEST_F(ExecTest, PcAdvances)
{
    Addr pc0 = st.pc;
    run(Op::Addi, 1, 0, 0, 5);
    EXPECT_EQ(st.pc, pc0 + 4);
    EXPECT_EQ(st.x[1], 5u);
}

TEST_F(ExecTest, BranchesRedirect)
{
    Addr pc0 = st.pc;
    st.setX(1, 1);
    st.setX(2, 1);
    run(Op::Beq, 0, 1, 2, 0x100);
    EXPECT_EQ(st.pc, pc0 + 0x100);

    Addr pc1 = st.pc;
    run(Op::Bne, 0, 1, 2, 0x100); // not taken
    EXPECT_EQ(st.pc, pc1 + 4);

    // Signed vs unsigned comparison.
    st.setX(1, static_cast<uint64_t>(-1));
    st.setX(2, 1);
    Addr pc2 = st.pc;
    run(Op::Blt, 0, 1, 2, 0x40); // -1 < 1 signed: taken
    EXPECT_EQ(st.pc, pc2 + 0x40);
    Addr pc3 = st.pc;
    run(Op::Bltu, 0, 1, 2, 0x40); // huge unsigned: not taken
    EXPECT_EQ(st.pc, pc3 + 4);
}

TEST_F(ExecTest, JalLinks)
{
    Addr pc0 = st.pc;
    run(Op::Jal, 1, 0, 0, 0x1000);
    EXPECT_EQ(st.x[1], pc0 + 4);
    EXPECT_EQ(st.pc, pc0 + 0x1000);

    st.setX(5, DRAM_BASE + 0x555);
    Addr pc1 = st.pc;
    run(Op::Jalr, 1, 5, 0, 1);
    // jalr clears bit 0 of the target.
    EXPECT_EQ(st.pc, (DRAM_BASE + 0x556) & ~1ULL);
    EXPECT_EQ(st.x[1], pc1 + 4);
}

TEST_F(ExecTest, LoadStoreRoundtrip)
{
    st.setX(1, DRAM_BASE + 0x100);
    st.setX(2, 0xdeadbeefcafebabeULL);
    run(Op::Sd, 0, 1, 2, 8);
    run(Op::Ld, 3, 1, 0, 8);
    EXPECT_EQ(st.x[3], 0xdeadbeefcafebabeULL);

    // Sub-word sign extension.
    run(Op::Lb, 4, 1, 0, 8);
    EXPECT_EQ(st.x[4], 0xffffffffffffffbeULL);
    run(Op::Lbu, 4, 1, 0, 8);
    EXPECT_EQ(st.x[4], 0xbeULL);
    run(Op::Lw, 4, 1, 0, 8);
    EXPECT_EQ(st.x[4], 0xffffffffcafebabeULL);
    run(Op::Lwu, 4, 1, 0, 8);
    EXPECT_EQ(st.x[4], 0xcafebabeULL);

    EXPECT_TRUE(info.memValid);
}

TEST_F(ExecTest, MisalignedLoadWorks)
{
    st.setX(1, DRAM_BASE + 0x101);
    st.setX(2, 0x1122334455667788ULL);
    run(Op::Sd, 0, 1, 2, 0);
    run(Op::Ld, 3, 1, 0, 0);
    EXPECT_EQ(st.x[3], 0x1122334455667788ULL);
}

TEST_F(ExecTest, DivisionEdgeCases)
{
    st.setX(1, static_cast<uint64_t>(INT64_MIN));
    st.setX(2, static_cast<uint64_t>(-1));
    run(Op::Div, 3, 1, 2);
    EXPECT_EQ(st.x[3], static_cast<uint64_t>(INT64_MIN)); // overflow
    run(Op::Rem, 3, 1, 2);
    EXPECT_EQ(st.x[3], 0u);

    st.setX(2, 0);
    run(Op::Div, 3, 1, 2);
    EXPECT_EQ(st.x[3], ~0ULL); // div by zero -> -1
    run(Op::Divu, 3, 1, 2);
    EXPECT_EQ(st.x[3], ~0ULL);
    run(Op::Rem, 3, 1, 2);
    EXPECT_EQ(st.x[3], static_cast<uint64_t>(INT64_MIN)); // dividend
}

TEST_F(ExecTest, Mulh)
{
    st.setX(1, ~0ULL); // -1
    st.setX(2, ~0ULL);
    run(Op::Mulh, 3, 1, 2);
    EXPECT_EQ(st.x[3], 0u); // (-1)*(-1) = 1, high bits 0
    run(Op::Mulhu, 3, 1, 2);
    EXPECT_EQ(st.x[3], ~1ULL); // 0xfffe...
    run(Op::Mulhsu, 3, 1, 2);
    EXPECT_EQ(st.x[3], ~0ULL);
}

TEST_F(ExecTest, WordOpsSignExtend)
{
    st.setX(1, 0x7fffffff);
    run(Op::Addiw, 2, 1, 0, 1);
    EXPECT_EQ(st.x[2], 0xffffffff80000000ULL);
    st.setX(1, 0x80000000);
    run(Op::Addw, 2, 1, 0);
    EXPECT_EQ(st.x[2], 0xffffffff80000000ULL);
    st.setX(1, 0xffffffff);
    run(Op::Srliw, 2, 1, 0, 4);
    EXPECT_EQ(st.x[2], 0x0fffffffULL);
    run(Op::Sraiw, 2, 1, 0, 4);
    EXPECT_EQ(st.x[2], 0xffffffffffffffffULL);
}

TEST_F(ExecTest, ZbbOps)
{
    st.setX(1, 0x00f0);
    run(Op::Clz, 2, 1, 0);
    EXPECT_EQ(st.x[2], 56u);
    run(Op::Ctz, 2, 1, 0);
    EXPECT_EQ(st.x[2], 4u);
    run(Op::Cpop, 2, 1, 0);
    EXPECT_EQ(st.x[2], 4u);
    st.setX(1, 0x80);
    run(Op::SextB, 2, 1, 0);
    EXPECT_EQ(st.x[2], 0xffffffffffffff80ULL);
    st.setX(1, 0x0102030405060708ULL);
    run(Op::Rev8, 2, 1, 0);
    EXPECT_EQ(st.x[2], 0x0807060504030201ULL);
    st.setX(1, 0x00ff010000000100ULL);
    run(Op::OrcB, 2, 1, 0);
    EXPECT_EQ(st.x[2], 0x00ffff000000ff00ULL);
}

TEST_F(ExecTest, ZbaOps)
{
    st.setX(1, 3);
    st.setX(2, 100);
    run(Op::Sh2add, 3, 1, 2);
    EXPECT_EQ(st.x[3], 112u);
    st.setX(1, 0x100000003ULL);
    run(Op::AddUw, 3, 1, 2);
    EXPECT_EQ(st.x[3], 103u); // only low 32 bits of rs1
}

TEST_F(ExecTest, AmoOps)
{
    st.setX(1, DRAM_BASE + 0x200);
    st.setX(2, 10);
    sys.bus.write(DRAM_BASE + 0x200, 8, 100);
    run(Op::AmoAddD, 3, 1, 2);
    EXPECT_EQ(st.x[3], 100u); // old value
    uint64_t v;
    sys.bus.read(DRAM_BASE + 0x200, 8, v);
    EXPECT_EQ(v, 110u);

    // amomax.w with negative values (sign matters).
    sys.bus.write(DRAM_BASE + 0x200, 4, 0xffffffff); // -1
    st.setX(2, 5);
    run(Op::AmoMaxW, 3, 1, 2);
    EXPECT_EQ(st.x[3], ~0ULL); // old = -1 sign-extended
    sys.bus.read(DRAM_BASE + 0x200, 4, v);
    EXPECT_EQ(v, 5u);

    // Misaligned AMO traps.
    st.setX(1, DRAM_BASE + 0x201);
    Trap t = run(Op::AmoAddW, 3, 1, 2);
    EXPECT_EQ(t.cause, Exc::StoreAddrMisaligned);
}

TEST_F(ExecTest, LrScSuccessAndFailure)
{
    st.setX(1, DRAM_BASE + 0x300);
    st.setX(2, 77);
    sys.bus.write(DRAM_BASE + 0x300, 8, 42);

    run(Op::LrD, 3, 1, 0);
    EXPECT_EQ(st.x[3], 42u);
    run(Op::ScD, 4, 1, 2);
    EXPECT_EQ(st.x[4], 0u); // success
    uint64_t v;
    sys.bus.read(DRAM_BASE + 0x300, 8, v);
    EXPECT_EQ(v, 77u);

    // sc without a reservation fails and does not store.
    run(Op::ScD, 4, 1, 2);
    EXPECT_EQ(st.x[4], 1u);
    EXPECT_TRUE(info.scFailed);
}

TEST_F(ExecTest, EcallTrapsByPrivilege)
{
    Trap t = run(Op::Ecall, 0, 0, 0);
    EXPECT_EQ(t.cause, Exc::EcallFromM);
    st.priv = Priv::S;
    t = run(Op::Ecall, 0, 0, 0);
    EXPECT_EQ(t.cause, Exc::EcallFromS);
    st.priv = Priv::U;
    t = run(Op::Ecall, 0, 0, 0);
    EXPECT_EQ(t.cause, Exc::EcallFromU);
}

TEST_F(ExecTest, TrapAndMret)
{
    st.csr.mtvec = DRAM_BASE + 0x800;
    Addr epc = st.pc;
    Trap t = run(Op::Ecall, 0, 0, 0);
    takeTrap(st, t, epc);
    EXPECT_EQ(st.pc, DRAM_BASE + 0x800);
    EXPECT_EQ(st.csr.mepc, epc);
    EXPECT_EQ(st.csr.mcause, 11u);
    EXPECT_EQ(st.priv, Priv::M);

    run(Op::Mret, 0, 0, 0);
    EXPECT_EQ(st.pc, epc);
    EXPECT_EQ(st.priv, Priv::M); // MPP was M
}

TEST_F(ExecTest, IllegalInstTraps)
{
    Trap t = run(Op::Illegal, 0, 0, 0);
    EXPECT_EQ(t.cause, Exc::IllegalInst);
    // mret from S-mode is illegal.
    st.priv = Priv::S;
    t = run(Op::Mret, 0, 0, 0);
    EXPECT_EQ(t.cause, Exc::IllegalInst);
}

TEST_F(ExecTest, FpThroughExecutor)
{
    // 1.5 + 2.5 = 4.0 via fadd.d
    st.f[1] = std::bit_cast<uint64_t>(1.5);
    st.f[2] = std::bit_cast<uint64_t>(2.5);
    DecodedInst di;
    di.op = Op::FaddD;
    di.rd = 3;
    di.rs1 = 1;
    di.rs2 = 2;
    di.rm = 0;
    EXPECT_FALSE(execInst(st, mmu, di, fp::FpBackend::Host).pending());
    EXPECT_EQ(std::bit_cast<double>(st.f[3]), 4.0);

    // Invalid rounding mode traps.
    di.rm = 5;
    EXPECT_EQ(execInst(st, mmu, di, fp::FpBackend::Host).cause,
              Exc::IllegalInst);
}

TEST_F(ExecTest, MmioStoreFlagged)
{
    st.setX(1, mem::Uart::DEFAULT_BASE);
    st.setX(2, 'A');
    run(Op::Sb, 0, 1, 2, 0);
    EXPECT_TRUE(info.isMmio);
    EXPECT_EQ(sys.uart.output(), "A");
}

} // namespace
