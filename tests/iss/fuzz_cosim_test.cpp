/**
 * Property-based co-simulation: every interpreter engine must produce
 * the identical architectural state and memory image for random
 * programs. This is the in-repo analogue of DiffTest's premise that
 * engines sharing a specification are interchangeable REFs.
 */

#include <gtest/gtest.h>

#include "iss/interp.h"
#include "iss/system.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::iss;
namespace wl = minjie::workload;

struct FinalState
{
    RegVal x[32];
    uint64_t f[32];
    Addr pc;
    uint8_t fflags;
    std::vector<uint8_t> sandbox;
};

template <typename Engine>
FinalState
runProgram(const wl::Program &prog)
{
    System sys(32);
    prog.loadInto(sys.dram);
    Engine interp(sys.bus, 0, prog.entry);
    interp.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = interp.run(2'000'000);
    EXPECT_TRUE(r.halted) << "engine did not reach exit";

    FinalState fs;
    const auto &st = interp.state();
    for (int i = 0; i < 32; ++i) {
        fs.x[i] = st.x[i];
        fs.f[i] = st.f[i];
    }
    fs.pc = st.pc;
    fs.fflags = st.csr.fflags;
    fs.sandbox.resize(4096);
    for (unsigned i = 0; i < 4096; ++i) {
        uint64_t b;
        sys.bus.read(0x80100000 + i, 1, b);
        fs.sandbox[i] = static_cast<uint8_t>(b);
    }
    return fs;
}

void
expectEqualStates(const FinalState &a, const FinalState &b,
                  const char *label, uint64_t seed)
{
    for (int i = 0; i < 32; ++i) {
        ASSERT_EQ(a.x[i], b.x[i])
            << label << " x" << i << " seed=" << seed;
        ASSERT_EQ(a.f[i], b.f[i])
            << label << " f" << i << " seed=" << seed;
    }
    ASSERT_EQ(a.pc, b.pc) << label << " seed=" << seed;
    ASSERT_EQ(a.fflags, b.fflags) << label << " seed=" << seed;
    ASSERT_EQ(a.sandbox, b.sandbox) << label << " seed=" << seed;
}

class FuzzCosim : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCosim, IntegerProgramsAgree)
{
    uint64_t seed = 1000 + GetParam();
    Rng rng(seed);
    auto prog = wl::randomProgram(rng, 400, /*withFp=*/false);
    auto spike = runProgram<SpikeInterp>(prog);
    auto dromajo = runProgram<DromajoInterp>(prog);
    auto tci = runProgram<TciInterp>(prog);
    expectEqualStates(spike, dromajo, "spike-vs-dromajo", seed);
    expectEqualStates(spike, tci, "spike-vs-tci", seed);
}

TEST_P(FuzzCosim, FpProgramsAgree)
{
    uint64_t seed = 9000 + GetParam();
    Rng rng(seed);
    auto prog = wl::randomProgram(rng, 400, /*withFp=*/true);
    // Spike uses the soft-float backend, Dromajo soft, and both must
    // match bit-for-bit (the backends are cross-validated separately).
    auto spike = runProgram<SpikeInterp>(prog);
    auto dromajo = runProgram<DromajoInterp>(prog);
    expectEqualStates(spike, dromajo, "spike-vs-dromajo-fp", seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCosim, ::testing::Range(0, 12));

} // namespace
