/**
 * Property-based co-simulation: every interpreter engine must produce
 * the identical architectural state and memory image for random
 * programs. This is the in-repo analogue of DiffTest's premise that
 * engines sharing a specification are interchangeable REFs.
 *
 * The matrix covers all four engines (Spike, Dromajo, TCI, NEMU) and
 * the generator's RVC and LR/SC/AMO modes. NEMU executes fp on the
 * host FPU, so it only joins the integer rows; bit-exact fp fuzzing
 * runs on the soft-float engines.
 */

#include <gtest/gtest.h>

#include <memory>
#include <type_traits>

#include "iss/interp.h"
#include "iss/system.h"
#include "nemu/nemu.h"
#include "workload/programs.h"
#include "workload/shrinkable.h"

namespace {

using namespace minjie;
using namespace minjie::iss;
namespace wl = minjie::workload;

struct FinalState
{
    RegVal x[32];
    uint64_t f[32];
    Addr pc;
    uint8_t fflags;
    std::vector<uint8_t> sandbox;
};

template <typename Engine>
FinalState
runProgram(const wl::Program &prog)
{
    System sys(32);
    prog.loadInto(sys.dram);
    std::unique_ptr<Engine> interp;
    if constexpr (std::is_same_v<Engine, nemu::Nemu>)
        interp = std::make_unique<Engine>(sys.bus, sys.dram, 0,
                                          prog.entry);
    else
        interp = std::make_unique<Engine>(sys.bus, 0, prog.entry);
    interp->setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = interp->run(2'000'000);
    EXPECT_TRUE(r.halted) << "engine did not reach exit";

    FinalState fs;
    const auto &st = interp->state();
    for (int i = 0; i < 32; ++i) {
        fs.x[i] = st.x[i];
        fs.f[i] = st.f[i];
    }
    fs.pc = st.pc;
    fs.fflags = st.csr.fflags;
    fs.sandbox.resize(4096);
    for (unsigned i = 0; i < 4096; ++i) {
        uint64_t b;
        sys.bus.read(0x80100000 + i, 1, b);
        fs.sandbox[i] = static_cast<uint8_t>(b);
    }
    return fs;
}

void
expectEqualStates(const FinalState &a, const FinalState &b,
                  const char *label, uint64_t seed)
{
    for (int i = 0; i < 32; ++i) {
        ASSERT_EQ(a.x[i], b.x[i])
            << label << " x" << i << " seed=" << seed;
        ASSERT_EQ(a.f[i], b.f[i])
            << label << " f" << i << " seed=" << seed;
    }
    ASSERT_EQ(a.pc, b.pc) << label << " seed=" << seed;
    ASSERT_EQ(a.fflags, b.fflags) << label << " seed=" << seed;
    ASSERT_EQ(a.sandbox, b.sandbox) << label << " seed=" << seed;
}

wl::Program
generate(uint64_t seed, bool withFp, bool withRvc)
{
    Rng rng(seed);
    wl::RandomSpec spec;
    spec.nInsts = 400;
    spec.withFp = withFp;
    spec.withRvc = withRvc;
    return wl::randomShrinkable(rng, spec).assemble();
}

/** Run on all four engines and cross-check against Spike. */
void
crossCheckAll(const wl::Program &prog, uint64_t seed)
{
    auto spike = runProgram<SpikeInterp>(prog);
    auto dromajo = runProgram<DromajoInterp>(prog);
    auto tci = runProgram<TciInterp>(prog);
    auto nemu = runProgram<nemu::Nemu>(prog);
    expectEqualStates(spike, dromajo, "spike-vs-dromajo", seed);
    expectEqualStates(spike, tci, "spike-vs-tci", seed);
    expectEqualStates(spike, nemu, "spike-vs-nemu", seed);
}

class FuzzCosim : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCosim, IntegerProgramsAgree)
{
    uint64_t seed = 1000 + GetParam();
    crossCheckAll(generate(seed, /*fp=*/false, /*rvc=*/false), seed);
}

TEST_P(FuzzCosim, FpProgramsAgree)
{
    uint64_t seed = 9000 + GetParam();
    auto prog = generate(seed, /*fp=*/true, /*rvc=*/false);
    // Spike uses the soft-float backend, Dromajo soft, and both must
    // match bit-for-bit (the backends are cross-validated separately).
    auto spike = runProgram<SpikeInterp>(prog);
    auto dromajo = runProgram<DromajoInterp>(prog);
    expectEqualStates(spike, dromajo, "spike-vs-dromajo-fp", seed);
}

TEST_P(FuzzCosim, CompressedProgramsAgree)
{
    uint64_t seed = 17000 + GetParam();
    crossCheckAll(generate(seed, /*fp=*/false, /*rvc=*/true), seed);
}

TEST_P(FuzzCosim, CompressedFpProgramsAgree)
{
    uint64_t seed = 21000 + GetParam();
    auto prog = generate(seed, /*fp=*/true, /*rvc=*/true);
    auto spike = runProgram<SpikeInterp>(prog);
    auto dromajo = runProgram<DromajoInterp>(prog);
    auto tci = runProgram<TciInterp>(prog);
    expectEqualStates(spike, dromajo, "spike-vs-dromajo-rvcfp", seed);
    expectEqualStates(spike, tci, "spike-vs-tci-rvcfp", seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCosim, ::testing::Range(0, 12));

// The generator's AMO/LR-SC category fires on ~9% of chunks; a focused
// run with many short programs guarantees the atomics paths are hit.
TEST(FuzzCosimAtomics, AmoSequencesAgreeAcrossEngines)
{
    for (uint64_t seed = 31000; seed < 31040; ++seed)
        crossCheckAll(generate(seed, /*fp=*/false, /*rvc=*/false), seed);
}

} // namespace
