#include <gtest/gtest.h>

#include "iss/mmu.h"
#include "iss/system.h"

namespace {

using namespace minjie;
using namespace minjie::isa;
using namespace minjie::iss;

constexpr uint64_t PTE_V = 1 << 0, PTE_R = 1 << 1, PTE_W = 1 << 2,
                   PTE_X = 1 << 3, PTE_U = 1 << 4, PTE_A = 1 << 6,
                   PTE_D = 1 << 7;

class MmuTest : public ::testing::Test
{
  protected:
    MmuTest() : sys(32), mmu(st, sys.bus)
    {
        st.reset(DRAM_BASE, 0);
        // Root page table at DRAM_BASE + 1MB, L1 at +1MB+4K, L0 at +8K.
        root = DRAM_BASE + 0x100000;
        l1 = root + 0x1000;
        l0 = root + 0x2000;
        st.csr.satp = (SATP_MODE_SV39 << SATP_MODE_SHIFT) | (root >> 12);
        st.priv = Priv::S;
    }

    /** Map 4K page at va -> pa with @p perms (installs the 3 levels). */
    void
    map(Addr va, Addr pa, uint64_t perms)
    {
        unsigned vpn2 = (va >> 30) & 0x1ff;
        unsigned vpn1 = (va >> 21) & 0x1ff;
        unsigned vpn0 = (va >> 12) & 0x1ff;
        sys.bus.write(root + vpn2 * 8, 8, ((l1 >> 12) << 10) | PTE_V);
        sys.bus.write(l1 + vpn1 * 8, 8, ((l0 >> 12) << 10) | PTE_V);
        sys.bus.write(l0 + vpn0 * 8, 8, ((pa >> 12) << 10) | perms);
    }

    /** Map a 2MB superpage. */
    void
    mapSuper(Addr va, Addr pa, uint64_t perms)
    {
        unsigned vpn2 = (va >> 30) & 0x1ff;
        unsigned vpn1 = (va >> 21) & 0x1ff;
        sys.bus.write(root + vpn2 * 8, 8, ((l1 >> 12) << 10) | PTE_V);
        sys.bus.write(l1 + vpn1 * 8, 8, ((pa >> 12) << 10) | perms);
    }

    System sys;
    ArchState st;
    Mmu mmu;
    Addr root, l1, l0;
};

TEST_F(MmuTest, BareModePassesThrough)
{
    st.csr.satp = 0;
    Addr pa;
    EXPECT_FALSE(mmu.translate(0x12345678, Access::Load, pa).pending());
    EXPECT_EQ(pa, 0x12345678u);
}

TEST_F(MmuTest, MachineModeBypassesTranslation)
{
    st.priv = Priv::M;
    Addr pa;
    EXPECT_FALSE(mmu.translate(0x1000, Access::Load, pa).pending());
    EXPECT_EQ(pa, 0x1000u);
}

TEST_F(MmuTest, BasicWalk)
{
    map(0x4000, DRAM_BASE + 0x5000, PTE_V | PTE_R | PTE_W | PTE_A | PTE_D);
    Addr pa;
    EXPECT_FALSE(mmu.translate(0x4abc, Access::Load, pa).pending());
    EXPECT_EQ(pa, DRAM_BASE + 0x5abc);
    EXPECT_EQ(mmu.stats().pageWalks, 1u);
    // Second access hits the TLB.
    EXPECT_FALSE(mmu.translate(0x4def, Access::Load, pa).pending());
    EXPECT_EQ(mmu.stats().pageWalks, 1u);
    EXPECT_GE(mmu.stats().tlbHits, 1u);
}

TEST_F(MmuTest, UnmappedFaults)
{
    Addr pa;
    Trap t = mmu.translate(0x9000, Access::Load, pa);
    EXPECT_EQ(t.cause, Exc::LoadPageFault);
    EXPECT_EQ(t.tval, 0x9000u);
    t = mmu.translate(0x9000, Access::Store, pa);
    EXPECT_EQ(t.cause, Exc::StorePageFault);
    t = mmu.translate(0x9000, Access::Fetch, pa);
    EXPECT_EQ(t.cause, Exc::InstPageFault);
}

TEST_F(MmuTest, PermissionChecks)
{
    map(0x4000, DRAM_BASE + 0x5000, PTE_V | PTE_R | PTE_A | PTE_D);
    Addr pa;
    EXPECT_FALSE(mmu.translate(0x4000, Access::Load, pa).pending());
    EXPECT_EQ(mmu.translate(0x4000, Access::Store, pa).cause,
              Exc::StorePageFault);
    EXPECT_EQ(mmu.translate(0x4000, Access::Fetch, pa).cause,
              Exc::InstPageFault);
}

TEST_F(MmuTest, UserPageFromSupervisorNeedsSum)
{
    map(0x4000, DRAM_BASE + 0x5000,
        PTE_V | PTE_R | PTE_U | PTE_A | PTE_D);
    Addr pa;
    EXPECT_EQ(mmu.translate(0x4000, Access::Load, pa).cause,
              Exc::LoadPageFault);
    st.csr.mstatus |= MSTATUS_SUM;
    mmu.flushTlb();
    EXPECT_FALSE(mmu.translate(0x4000, Access::Load, pa).pending());
}

TEST_F(MmuTest, SupervisorPageFromUserFaults)
{
    map(0x4000, DRAM_BASE + 0x5000, PTE_V | PTE_R | PTE_A | PTE_D);
    st.priv = Priv::U;
    Addr pa;
    EXPECT_EQ(mmu.translate(0x4000, Access::Load, pa).cause,
              Exc::LoadPageFault);
}

TEST_F(MmuTest, SuperpageTranslation)
{
    mapSuper(0x40000000, DRAM_BASE,
             PTE_V | PTE_R | PTE_W | PTE_X | PTE_A | PTE_D);
    Addr pa;
    EXPECT_FALSE(
        mmu.translate(0x40123456, Access::Load, pa).pending());
    EXPECT_EQ(pa, DRAM_BASE + 0x123456);
}

TEST_F(MmuTest, MisalignedSuperpageFaults)
{
    // Superpage with nonzero low PPN bits is reserved.
    mapSuper(0x40000000, DRAM_BASE + 0x1000,
             PTE_V | PTE_R | PTE_A | PTE_D);
    Addr pa;
    EXPECT_EQ(mmu.translate(0x40000000, Access::Load, pa).cause,
              Exc::LoadPageFault);
}

TEST_F(MmuTest, HardwareAdUpdate)
{
    map(0x4000, DRAM_BASE + 0x5000, PTE_V | PTE_R | PTE_W);
    Addr pa;
    EXPECT_FALSE(mmu.translate(0x4000, Access::Store, pa).pending());
    uint64_t pte;
    unsigned vpn0 = (0x4000 >> 12) & 0x1ff;
    sys.bus.read(l0 + vpn0 * 8, 8, pte);
    EXPECT_TRUE(pte & PTE_A);
    EXPECT_TRUE(pte & PTE_D);
}

TEST_F(MmuTest, StaleTlbAfterRemapNeedsSfence)
{
    // This is exactly the scenario behind the paper's Figure 3 diff-rule:
    // a cached translation survives a PTE change until sfence.vma.
    map(0x4000, DRAM_BASE + 0x5000, PTE_V | PTE_R | PTE_A | PTE_D);
    Addr pa;
    ASSERT_FALSE(mmu.translate(0x4000, Access::Load, pa).pending());
    EXPECT_EQ(pa, DRAM_BASE + 0x5000);

    // Remap the page elsewhere without flushing.
    map(0x4000, DRAM_BASE + 0x7000, PTE_V | PTE_R | PTE_A | PTE_D);
    ASSERT_FALSE(mmu.translate(0x4000, Access::Load, pa).pending());
    EXPECT_EQ(pa, DRAM_BASE + 0x5000); // stale mapping still visible

    mmu.flushTlb();
    ASSERT_FALSE(mmu.translate(0x4000, Access::Load, pa).pending());
    EXPECT_EQ(pa, DRAM_BASE + 0x7000);
}

TEST_F(MmuTest, NonCanonicalVaFaults)
{
    Addr pa;
    EXPECT_EQ(mmu.translate(0x0000400000000000ULL, Access::Load, pa).cause,
              Exc::LoadPageFault);
}

TEST_F(MmuTest, FetchCrossingPageBoundary)
{
    map(0x4000, DRAM_BASE + 0x5000,
        PTE_V | PTE_X | PTE_R | PTE_A | PTE_D);
    map(0x5000, DRAM_BASE + 0x6000,
        PTE_V | PTE_X | PTE_R | PTE_A | PTE_D);
    // Place a 32-bit instruction spanning the 4K boundary.
    sys.bus.write(DRAM_BASE + 0x5ffe, 2, 0x81b3 & 0xffff);
    sys.bus.write(DRAM_BASE + 0x6000, 2, 0x0020);
    uint32_t raw;
    EXPECT_FALSE(mmu.fetch(0x4ffe, raw).pending());
    EXPECT_EQ(raw, 0x002081b3u);
}

TEST_F(MmuTest, FetchCrossingNonContiguousFrames)
{
    // The two virtual pages map to physical frames far apart: each
    // 16-bit half must come from its own frame.
    map(0x4000, DRAM_BASE + 0x5000,
        PTE_V | PTE_X | PTE_R | PTE_A | PTE_D);
    map(0x5000, DRAM_BASE + 0x9000,
        PTE_V | PTE_X | PTE_R | PTE_A | PTE_D);
    sys.bus.write(DRAM_BASE + 0x5ffe, 2, 0x81b3 & 0xffff);
    sys.bus.write(DRAM_BASE + 0x9000, 2, 0x0020);
    // Decoy at the contiguous frame: must NOT be read.
    sys.bus.write(DRAM_BASE + 0x6000, 2, 0xffff);
    uint32_t raw;
    EXPECT_FALSE(mmu.fetch(0x4ffe, raw).pending());
    EXPECT_EQ(raw, 0x002081b3u);
}

TEST_F(MmuTest, FetchCrossFaultsOnUnmappedSecondHalf)
{
    // Second half lands on an unmapped page: InstPageFault reporting
    // the *second* page's address, not the instruction pc.
    map(0x4000, DRAM_BASE + 0x5000,
        PTE_V | PTE_X | PTE_R | PTE_A | PTE_D);
    sys.bus.write(DRAM_BASE + 0x5ffe, 2, 0x81b3 & 0xffff);
    uint32_t raw;
    Trap t = mmu.fetch(0x4ffe, raw);
    EXPECT_EQ(t.cause, Exc::InstPageFault);
    EXPECT_EQ(t.tval, 0x5000u);
}

TEST_F(MmuTest, FetchCrossFaultsOnNonExecutableSecondHalf)
{
    // Second page mapped readable but not executable: the fetch of the
    // upper half must fault even though the first half succeeded.
    map(0x4000, DRAM_BASE + 0x5000,
        PTE_V | PTE_X | PTE_R | PTE_A | PTE_D);
    map(0x5000, DRAM_BASE + 0x6000, PTE_V | PTE_R | PTE_A | PTE_D);
    sys.bus.write(DRAM_BASE + 0x5ffe, 2, 0x81b3 & 0xffff);
    sys.bus.write(DRAM_BASE + 0x6000, 2, 0x0020);
    uint32_t raw;
    Trap t = mmu.fetch(0x4ffe, raw);
    EXPECT_EQ(t.cause, Exc::InstPageFault);
    EXPECT_EQ(t.tval, 0x5000u);
}

TEST_F(MmuTest, FetchCrossFaultsOnUserSecondHalfFromSupervisor)
{
    // Supervisor mode cannot execute user pages (SUM only affects
    // loads/stores): a U-marked second half page-faults the fetch.
    map(0x4000, DRAM_BASE + 0x5000,
        PTE_V | PTE_X | PTE_R | PTE_A | PTE_D);
    map(0x5000, DRAM_BASE + 0x6000,
        PTE_V | PTE_X | PTE_R | PTE_U | PTE_A | PTE_D);
    sys.bus.write(DRAM_BASE + 0x5ffe, 2, 0x81b3 & 0xffff);
    sys.bus.write(DRAM_BASE + 0x6000, 2, 0x0020);
    uint32_t raw;
    st.priv = Priv::S;
    st.csr.mstatus |= MSTATUS_SUM; // SUM must not rescue fetches
    Trap t = mmu.fetch(0x4ffe, raw);
    EXPECT_EQ(t.cause, Exc::InstPageFault);
    EXPECT_EQ(t.tval, 0x5000u);
}

TEST_F(MmuTest, CompressedFetchAtPageEndNeedsNoSecondPage)
{
    // A compressed instruction in the last two bytes of a page is
    // complete: the (unmapped) next page must not be translated.
    map(0x4000, DRAM_BASE + 0x5000,
        PTE_V | PTE_X | PTE_R | PTE_A | PTE_D);
    sys.bus.write(DRAM_BASE + 0x5ffe, 2, 0x4501); // c.li a0, 0
    uint32_t raw;
    EXPECT_FALSE(mmu.fetch(0x4ffe, raw).pending());
    EXPECT_EQ(raw & 0xffffu, 0x4501u);
}

TEST_F(MmuTest, MprvUsesMppForDataAccess)
{
    map(0x4000, DRAM_BASE + 0x5000, PTE_V | PTE_R | PTE_A | PTE_D);
    st.priv = Priv::M;
    st.csr.mstatus |= MSTATUS_MPRV | (1ULL << 11); // MPP = S
    Addr pa;
    // Data access translates as S.
    EXPECT_FALSE(mmu.translate(0x4000, Access::Load, pa).pending());
    EXPECT_EQ(pa, DRAM_BASE + 0x5000);
    // Fetch ignores MPRV: machine-mode fetch is untranslated.
    EXPECT_FALSE(mmu.translate(0x8000, Access::Fetch, pa).pending());
    EXPECT_EQ(pa, 0x8000u);
}

} // namespace
