/**
 * Directed M-extension edge-case audit: every engine (Spike, Dromajo,
 * TCI, NEMU) executes the full MUL/DIV/REM family over an operand
 * table of division/multiplication corner cases and must match the
 * spec-derived golden results bit for bit.
 *
 * The interesting edges (RISC-V unprivileged spec 13.2/13.3):
 *  - divide by zero: quotient all ones, remainder = dividend (no trap);
 *  - signed overflow INT64_MIN / -1 (and INT32_MIN / -1 for the word
 *    forms): quotient = dividend, remainder = 0;
 *  - word ops operate on the low 32 bits and sign-extend the 32-bit
 *    result, regardless of the upper input bits;
 *  - mulh/mulhsu/mulhu upper-half cross checks around 2^63 and 2^32.
 */

#include <gtest/gtest.h>

#include <climits>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "iss/interp.h"
#include "iss/system.h"
#include "nemu/nemu.h"
#include "workload/asm.h"

namespace {

using namespace minjie;
using namespace minjie::iss;
using isa::Op;
namespace wl = minjie::workload;

const uint64_t VALS[] = {
    0,
    1,
    ~0ULL,                  // -1
    2,
    7,
    0xFFFFFFFFFFFFFFF9ULL,  // -7
    0x8000000000000000ULL,  // INT64_MIN
    0x7FFFFFFFFFFFFFFFULL,  // INT64_MAX
    0xFFFFFFFF80000000ULL,  // sign-extended INT32_MIN
    0x80000000ULL,          // INT32_MIN as an unsigned 32-bit value
    0xFFFFFFFFULL,          // UINT32_MAX
    0x100000000ULL,         // 2^32: word ops must ignore it
    0x7FFFFFFFULL,          // INT32_MAX
    0x180000001ULL,         // high bit set above and inside the word
};
constexpr size_t NVALS = std::size(VALS);

const Op OPS[] = {
    Op::Mul,  Op::Mulh, Op::Mulhsu, Op::Mulhu, Op::Div,
    Op::Divu, Op::Rem,  Op::Remu,   Op::Mulw,  Op::Divw,
    Op::Divuw, Op::Remw, Op::Remuw,
};
constexpr size_t NOPS = std::size(OPS);

constexpr Addr TABLE_BASE = 0x80100000;
constexpr Addr RESULT_BASE = 0x80200000;

uint64_t
sext32(uint32_t v)
{
    return static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(v)));
}

/** Spec-derived golden result, computed independently of any engine. */
uint64_t
golden(Op op, uint64_t a, uint64_t b)
{
    int64_t sa = static_cast<int64_t>(a);
    int64_t sb = static_cast<int64_t>(b);
    int32_t wa = static_cast<int32_t>(a);
    int32_t wb = static_cast<int32_t>(b);
    uint32_t ua = static_cast<uint32_t>(a);
    uint32_t ub = static_cast<uint32_t>(b);
    switch (op) {
      case Op::Mul:
        return a * b;
      case Op::Mulh:
        return static_cast<uint64_t>(
            (static_cast<__int128>(sa) * static_cast<__int128>(sb)) >> 64);
      case Op::Mulhsu:
        // rs2 is unsigned: converting uint64_t to __int128 is
        // value-preserving, so no sign extension sneaks in.
        return static_cast<uint64_t>(
            (static_cast<__int128>(sa) * static_cast<__int128>(b)) >> 64);
      case Op::Mulhu:
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(a) * b) >> 64);
      case Op::Div:
        if (sb == 0)
            return ~0ULL;
        if (sa == INT64_MIN && sb == -1)
            return a;
        return static_cast<uint64_t>(sa / sb);
      case Op::Divu:
        return b == 0 ? ~0ULL : a / b;
      case Op::Rem:
        if (sb == 0)
            return a;
        if (sa == INT64_MIN && sb == -1)
            return 0;
        return static_cast<uint64_t>(sa % sb);
      case Op::Remu:
        return b == 0 ? a : a % b;
      case Op::Mulw:
        return sext32(ua * ub);
      case Op::Divw:
        if (wb == 0)
            return ~0ULL;
        if (wa == INT32_MIN && wb == -1)
            return sext32(static_cast<uint32_t>(INT32_MIN));
        return sext32(static_cast<uint32_t>(wa / wb));
      case Op::Divuw:
        return ub == 0 ? ~0ULL : sext32(ua / ub);
      case Op::Remw:
        if (wb == 0)
            return sext32(static_cast<uint32_t>(wa));
        if (wa == INT32_MIN && wb == -1)
            return 0;
        return sext32(static_cast<uint32_t>(wa % wb));
      case Op::Remuw:
        return ub == 0 ? sext32(ua) : sext32(ua % ub);
      default:
        ADD_FAILURE() << "unexpected op";
        return 0;
    }
}

/** Straight-line program computing every (op, a, b) combination into a
 *  result array: ld both operands, run all thirteen ops, store. */
wl::Program
buildMextProgram()
{
    wl::Program prog;
    prog.name = "mext_edge";
    prog.entry = DRAM_BASE;

    wl::Asm a(DRAM_BASE);
    a.li(wl::gp, TABLE_BASE);
    a.li(wl::s0, RESULT_BASE);
    for (size_t i = 0; i < NVALS; ++i) {
        for (size_t j = 0; j < NVALS; ++j) {
            a.load(Op::Ld, wl::a0, static_cast<int64_t>(i * 8), wl::gp);
            a.load(Op::Ld, wl::a1, static_cast<int64_t>(j * 8), wl::gp);
            for (size_t k = 0; k < NOPS; ++k) {
                a.rtype(OPS[k], wl::a2, wl::a0, wl::a1);
                a.store(Op::Sd, wl::a2, static_cast<int64_t>(k * 8),
                        wl::s0);
            }
            a.itype(Op::Addi, wl::s0, wl::s0, NOPS * 8);
        }
    }
    a.exit(0);
    prog.segments.push_back(a.finish());

    std::vector<uint8_t> table(sizeof(VALS));
    std::memcpy(table.data(), VALS, sizeof(VALS));
    prog.segments.push_back({TABLE_BASE, std::move(table)});
    return prog;
}

template <typename Engine>
std::vector<uint64_t>
runMext(const wl::Program &prog)
{
    System sys(32);
    prog.loadInto(sys.dram);
    std::unique_ptr<Engine> interp;
    if constexpr (std::is_same_v<Engine, nemu::Nemu>)
        interp = std::make_unique<Engine>(sys.bus, sys.dram, 0,
                                          prog.entry);
    else
        interp = std::make_unique<Engine>(sys.bus, 0, prog.entry);
    interp->setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = interp->run(2'000'000);
    EXPECT_TRUE(r.halted) << "mext program did not exit";

    std::vector<uint64_t> out(NVALS * NVALS * NOPS);
    for (size_t idx = 0; idx < out.size(); ++idx) {
        uint64_t v = 0;
        sys.dram.read(RESULT_BASE + idx * 8, 8, v);
        out[idx] = v;
    }
    return out;
}

void
checkAgainstGolden(const char *engine, const std::vector<uint64_t> &got)
{
    size_t idx = 0;
    for (size_t i = 0; i < NVALS; ++i) {
        for (size_t j = 0; j < NVALS; ++j) {
            for (size_t k = 0; k < NOPS; ++k, ++idx) {
                uint64_t want = golden(OPS[k], VALS[i], VALS[j]);
                ASSERT_EQ(got[idx], want)
                    << engine << ": " << isa::opName(OPS[k]) << " 0x"
                    << std::hex << VALS[i] << ", 0x" << VALS[j];
            }
        }
    }
}

TEST(MextEdge, AllEnginesMatchGolden)
{
    auto prog = buildMextProgram();
    checkAgainstGolden("spike", runMext<SpikeInterp>(prog));
    checkAgainstGolden("dromajo", runMext<DromajoInterp>(prog));
    checkAgainstGolden("tci", runMext<TciInterp>(prog));
    checkAgainstGolden("nemu", runMext<nemu::Nemu>(prog));
}

TEST(MextEdge, NemuAblationsMatchGolden)
{
    // The fast-path/chaining ablations must not change M-extension
    // semantics (they reroute memory and dispatch, not arithmetic, but
    // the divide handlers sit on the chained hot path).
    auto prog = buildMextProgram();
    System sys(32);
    prog.loadInto(sys.dram);
    nemu::Nemu n(sys.bus, sys.dram, 0, prog.entry);
    n.setChainingEnabled(false);
    n.setFastPathEnabled(false);
    n.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = n.run(2'000'000);
    ASSERT_TRUE(r.halted);
    std::vector<uint64_t> got(NVALS * NVALS * NOPS);
    for (size_t idx = 0; idx < got.size(); ++idx)
        sys.dram.read(RESULT_BASE + idx * 8, 8, got[idx]);
    checkAgainstGolden("nemu-ablated", got);
}

} // namespace
