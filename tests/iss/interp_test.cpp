#include <gtest/gtest.h>

#include <memory>

#include "iss/interp.h"
#include "iss/system.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::iss;
namespace wl = minjie::workload;

enum class Engine { Spike, Dromajo, Tci };

std::unique_ptr<Interp>
makeEngine(Engine e, System &sys, Addr entry)
{
    switch (e) {
      case Engine::Spike:
        return std::make_unique<SpikeInterp>(sys.bus, 0, entry);
      case Engine::Dromajo:
        return std::make_unique<DromajoInterp>(sys.bus, 0, entry);
      default:
        return std::make_unique<TciInterp>(sys.bus, 0, entry);
    }
}

class InterpEngineTest : public ::testing::TestWithParam<Engine> {};

TEST_P(InterpEngineTest, SumProgramExitsZero)
{
    System sys(32);
    auto prog = wl::sumProgram(1000);
    prog.loadInto(sys.dram);
    auto interp = makeEngine(GetParam(), sys, prog.entry);
    interp->setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = interp->run(1'000'000);
    ASSERT_TRUE(r.halted) << "program did not exit";
    EXPECT_EQ(sys.simctrl.exitCode(), 0u);
    // Roughly 3 instructions per loop iteration plus prologue.
    EXPECT_GT(r.executed, 3000u);
    EXPECT_LT(r.executed, 3200u);
}

TEST_P(InterpEngineTest, CoremarkProxyRuns)
{
    System sys(32);
    auto prog = wl::coremarkProxy(5);
    prog.loadInto(sys.dram);
    auto interp = makeEngine(GetParam(), sys, prog.entry);
    interp->setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = interp->run(10'000'000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(sys.simctrl.exitCode(), 0u);
}

TEST_P(InterpEngineTest, ProxyBenchmarkRuns)
{
    System sys(64);
    auto prog = wl::buildProxy(wl::specIntSuite()[5], 20); // sjeng proxy
    prog.loadInto(sys.dram);
    auto interp = makeEngine(GetParam(), sys, prog.entry);
    interp->setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = interp->run(10'000'000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(sys.simctrl.exitCode(), 0u);
}

TEST_P(InterpEngineTest, FpProxyRuns)
{
    System sys(64);
    auto prog = wl::buildProxy(wl::specFpSuite()[0], 20); // bwaves proxy
    prog.loadInto(sys.dram);
    auto interp = makeEngine(GetParam(), sys, prog.entry);
    interp->setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = interp->run(10'000'000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(sys.simctrl.exitCode(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, InterpEngineTest,
    ::testing::Values(Engine::Spike, Engine::Dromajo, Engine::Tci),
    [](const ::testing::TestParamInfo<Engine> &info) {
        switch (info.param) {
          case Engine::Spike: return "Spike";
          case Engine::Dromajo: return "Dromajo";
          default: return "Tci";
        }
    });

TEST(Interp, SpikeDecodeCacheIsEffective)
{
    System sys(32);
    auto prog = wl::sumProgram(10000);
    prog.loadInto(sys.dram);
    SpikeInterp interp(sys.bus, 0, prog.entry);
    interp.setHaltFn([&] { return sys.simctrl.exited(); });
    interp.run(1'000'000);
    // A tight loop should hit the decode cache almost always.
    EXPECT_GT(interp.decodeCacheHits(),
              interp.decodeCacheMisses() * 100);
}

TEST(Interp, InstretCounts)
{
    System sys(32);
    auto prog = wl::sumProgram(10);
    prog.loadInto(sys.dram);
    DromajoInterp interp(sys.bus, 0, prog.entry);
    interp.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = interp.run(100000);
    EXPECT_EQ(interp.state().instret, r.executed);
    EXPECT_EQ(interp.state().csr.minstret, r.executed);
}

TEST(Interp, MemStressDirtiesPages)
{
    System sys(64);
    auto prog = wl::memStressProgram(2000, 16);
    prog.loadInto(sys.dram);
    SpikeInterp interp(sys.bus, 0, prog.entry);
    interp.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = interp.run(10'000'000);
    ASSERT_TRUE(r.halted);
    // The stress loop should have touched many distinct pages.
    EXPECT_GT(sys.dram.allocatedPages(), 500u);
}

} // namespace
