/**
 * Self-modifying code with fence.i: every engine caches decoded
 * instructions differently (decode cache, block cache, uop cache), and
 * fence.i is the only architectural flush point. A program patches one
 * instruction in place and must observe the new behaviour after the
 * fence on every engine.
 */

#include <gtest/gtest.h>

#include "iss/interp.h"
#include "iss/system.h"
#include "nemu/nemu.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::isa;
using namespace minjie::iss;
namespace wl = minjie::workload;

/**
 * The patch target starts as `addi a0, a0, 1`; the program runs it,
 * overwrites it with `addi a0, a0, 7`, executes fence.i, runs it
 * again, and exits with a0 (expected 1 + 7 = 8).
 */
wl::Program
smcProgram()
{
    wl::Layout layout;
    wl::Asm a(layout.codeBase);

    wl::Label patchSite = a.newLabel();
    wl::Label doPatch = a.newLabel();

    a.li(wl::a0, 0);
    a.li(wl::s2, 0); // pass counter
    a.bind(patchSite);
    a.itype(Op::Addi, wl::a0, wl::a0, 1); // will be patched to +7
    // After the patched instruction: first pass patches and loops.
    a.itype(Op::Addi, wl::s2, wl::s2, 1);
    a.li(wl::t1, 1);
    a.branch(Op::Beq, wl::s2, wl::t1, doPatch);
    // Second pass: check a0 == 8 and exit with it as the code.
    a.li(wl::t6, 0x40000000);
    a.itype(Op::Slli, wl::t5, wl::a0, 1);
    a.itype(Op::Ori, wl::t5, wl::t5, 1);
    a.store(Op::Sd, wl::t5, 0, wl::t6);
    wl::Label spin = a.boundLabel();
    a.j(spin);

    a.bind(doPatch);
    // Build the new encoding (addi a0, a0, 7) and store it over the
    // patch site, then fence.i and loop back.
    DecodedInst di;
    di.op = Op::Addi;
    di.rd = wl::a0;
    di.rs1 = wl::a0;
    di.imm = 7;
    a.li(wl::t0, encode(di));
    a.li(wl::t1, 0x80000008); // patchSite address (after the two li's)
    a.store(Op::Sw, wl::t0, 0, wl::t1);
    a.itype(Op::FenceI, 0, 0, 0);
    a.j(patchSite);

    wl::Program prog;
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());
    return prog;
}

template <typename Engine, typename... Args>
uint64_t
runSmc(Args &&...extra)
{
    auto prog = smcProgram();
    System sys(32);
    prog.loadInto(sys.dram);
    Engine engine(sys.bus, std::forward<Args>(extra)..., 0, prog.entry);
    engine.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = engine.run(100'000);
    EXPECT_TRUE(r.halted);
    return sys.simctrl.exitCode();
}

TEST(SelfModifyingCode, PatchSiteAddressIsCorrect)
{
    // The test hardcodes the patch-site offset; pin it.
    auto prog = smcProgram();
    // li a0 (1 inst) + li s2 (1 inst) -> patch site at +8.
    uint32_t word = prog.segments[0].bytes[8] |
                    (prog.segments[0].bytes[9] << 8) |
                    (prog.segments[0].bytes[10] << 16) |
                    (prog.segments[0].bytes[11] << 24);
    auto di = isa::decode32(word);
    EXPECT_EQ(di.op, Op::Addi);
    EXPECT_EQ(di.imm, 1);
    EXPECT_EQ(di.rd, wl::a0);
}

TEST(SelfModifyingCode, SpikeEngine)
{
    EXPECT_EQ(runSmc<SpikeInterp>(), 8u);
}

TEST(SelfModifyingCode, DromajoEngine)
{
    EXPECT_EQ(runSmc<DromajoInterp>(), 8u);
}

TEST(SelfModifyingCode, TciEngine)
{
    EXPECT_EQ(runSmc<TciInterp>(), 8u);
}

TEST(SelfModifyingCode, NemuFastPath)
{
    auto prog = smcProgram();
    System sys(32);
    prog.loadInto(sys.dram);
    nemu::Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = nemu.run(100'000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(sys.simctrl.exitCode(), 8u);
    // fence.i must have flushed the uop cache at least once.
    EXPECT_GE(nemu.stats().flushes, 1u);
}

TEST(SelfModifyingCode, NemuStepPath)
{
    auto prog = smcProgram();
    System sys(32);
    prog.loadInto(sys.dram);
    nemu::Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = nemu.Interp::run(100'000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(sys.simctrl.exitCode(), 8u);
}

} // namespace
