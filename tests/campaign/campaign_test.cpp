/**
 * Campaign engine unit tests: lockstep divergence detection via the
 * injected self-test bug, bucketing by first-divergence signature,
 * ddmin shrinking to a minimal reproducer, and the worker-count
 * invariance guarantee (results are a pure function of the seed range).
 */

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/lockstep.h"
#include "campaign/shrink.h"
#include "workload/shrinkable.h"

namespace {

using namespace minjie;
using namespace minjie::campaign;
namespace wl = minjie::workload;

CampaignConfig
buggyConfig(uint64_t seeds, unsigned workers)
{
    CampaignConfig cfg;
    cfg.seedBase = 1;
    cfg.seedCount = seeds;
    cfg.workers = workers;
    cfg.nInsts = 200;
    cfg.bug.enabled = true;
    cfg.bug.op = isa::Op::Xor;
    cfg.bug.xorMask = 1;
    cfg.shrinkFailures = false;
    return cfg;
}

TEST(Lockstep, CleanPairsAgreeAndExit)
{
    for (uint64_t seed = 50; seed < 56; ++seed) {
        Rng rng(seed);
        wl::RandomSpec spec;
        spec.nInsts = 200;
        auto prog = wl::randomShrinkable(rng, spec).assemble();
        auto r = runLockstep(Engine::Spike, Engine::Tci, prog, 100'000);
        EXPECT_FALSE(r.div.diverged()) << "seed " << seed << ": "
                                       << r.div.describe();
        EXPECT_TRUE(r.exited) << "seed " << seed;
    }
}

TEST(Lockstep, InjectedBugIsCaughtAtFirstDivergence)
{
    BugInject bug;
    bug.enabled = true;
    bug.op = isa::Op::Xor;
    bug.xorMask = 1;

    bool caught = false;
    for (uint64_t seed = 1; seed < 30 && !caught; ++seed) {
        Rng rng(seed);
        wl::RandomSpec spec;
        spec.nInsts = 200;
        auto prog = wl::randomShrinkable(rng, spec).assemble();
        auto r = runLockstep(Engine::Spike, Engine::Dromajo, prog,
                             100'000, &bug);
        if (!r.div.diverged())
            continue;
        caught = true;
        EXPECT_EQ(r.div.signature(), "xreg:alu:xor");
        EXPECT_EQ(r.div.op, isa::Op::Xor);
        // One side was XORed with 1, so the values differ in bit 0.
        EXPECT_EQ(r.div.valA ^ r.div.valB, 1u);
    }
    EXPECT_TRUE(caught) << "no program in the seed range used xor";
}

TEST(Campaign, BucketingGroupsIdenticalDivergences)
{
    CampaignConfig cfg = buggyConfig(40, 2);
    CampaignReport rep = runCampaign(cfg);
    ASSERT_GT(rep.failures, 5u);
    // Every failure is the same logical bug -> exactly one bucket.
    ASSERT_EQ(rep.buckets.size(), 1u);
    const Bucket &b = rep.buckets.front();
    EXPECT_EQ(b.signature, "xreg:alu:xor");
    EXPECT_EQ(b.seeds.size(), rep.failures);
    // Seed list is in ascending seed order (results indexed by seed).
    for (size_t i = 1; i < b.seeds.size(); ++i)
        EXPECT_LT(b.seeds[i - 1], b.seeds[i]);
}

TEST(Campaign, ShrinkerConvergesOnInjectedBug)
{
    CampaignConfig cfg = buggyConfig(20, 2);
    cfg.shrinkFailures = true;
    CampaignReport rep = runCampaign(cfg);
    ASSERT_EQ(rep.buckets.size(), 1u);
    const Bucket &b = rep.buckets.front();
    ASSERT_GE(b.shrunkInsts, 1u);
    EXPECT_LE(b.shrunkInsts, 8u)
        << "shrinker left " << b.shrunkInsts << " instructions";

    // The minimized program must still reproduce the exact signature.
    JobPlan plan = planJob(cfg, b.repSeed);
    Rng rng(b.repSeed);
    wl::ShrinkableProgram sp = wl::randomShrinkable(rng, plan.spec);
    SignatureFn sig = [&cfg, &plan](const wl::Program &p) {
        auto r = runLockstep(plan.a, plan.b, p, cfg.maxSteps, &cfg.bug);
        return r.div.diverged() ? r.div.signature() : std::string();
    };
    ShrinkResult sr = shrinkProgram(sp, b.signature, sig);
    EXPECT_EQ(sig(sr.program.assemble()), b.signature);
    EXPECT_EQ(sr.program.bodyInsts(), b.shrunkInsts);
}

TEST(Campaign, ResultsAreInvariantUnderWorkerCount)
{
    CampaignConfig one = buggyConfig(120, 1);
    CampaignConfig eight = buggyConfig(120, 8);
    CampaignReport a = runCampaign(one);
    CampaignReport b = runCampaign(eight);

    ASSERT_EQ(a.failures, b.failures);
    ASSERT_GT(a.failures, 10u);
    ASSERT_EQ(a.buckets.size(), b.buckets.size());
    for (size_t i = 0; i < a.buckets.size(); ++i) {
        EXPECT_EQ(a.buckets[i].signature, b.buckets[i].signature);
        EXPECT_EQ(a.buckets[i].repSeed, b.buckets[i].repSeed);
        EXPECT_EQ(a.buckets[i].seeds, b.buckets[i].seeds);
    }
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].seed, b.results[i].seed);
        EXPECT_EQ(a.results[i].failed, b.results[i].failed);
        EXPECT_EQ(a.results[i].signature, b.results[i].signature);
    }
}

TEST(Campaign, CleanCampaignFindsNoFailures)
{
    CampaignConfig cfg;
    cfg.seedBase = 1;
    cfg.seedCount = 30;
    cfg.workers = 2;
    cfg.nInsts = 150;
    CampaignReport rep = runCampaign(cfg);
    EXPECT_EQ(rep.failures, 0u);
    EXPECT_TRUE(rep.buckets.empty());
    EXPECT_EQ(rep.jobs, 30u);
}

TEST(Campaign, PlanningIsDeterministicPerSeed)
{
    CampaignConfig cfg;
    cfg.fpPct = 50;
    cfg.rvcPct = 50;
    for (uint64_t seed = 1; seed < 50; ++seed) {
        JobPlan p1 = planJob(cfg, seed);
        JobPlan p2 = planJob(cfg, seed);
        EXPECT_EQ(p1.a, p2.a);
        EXPECT_EQ(p1.b, p2.b);
        EXPECT_EQ(p1.difftest, p2.difftest);
        EXPECT_EQ(p1.spec.withFp, p2.spec.withFp);
        EXPECT_EQ(p1.spec.withRvc, p2.spec.withRvc);
    }
}

TEST(Campaign, FpJobsNeverLandOnNemu)
{
    CampaignConfig cfg;
    cfg.fpPct = 100;
    for (uint64_t seed = 1; seed < 200; ++seed) {
        JobPlan p = planJob(cfg, seed);
        EXPECT_TRUE(p.spec.withFp);
        EXPECT_NE(p.a, Engine::Nemu);
        EXPECT_NE(p.b, Engine::Nemu);
    }
}

TEST(Campaign, JsonReportCarriesBucketTable)
{
    CampaignConfig cfg = buggyConfig(20, 2);
    CampaignReport rep = runCampaign(cfg);
    std::string js = rep.toJson();
    EXPECT_NE(js.find("\"jobs\":20"), std::string::npos);
    EXPECT_NE(js.find("\"buckets\""), std::string::npos);
    EXPECT_NE(js.find("xreg:alu:xor"), std::string::npos);
    EXPECT_NE(js.find("\"workers\""), std::string::npos);
    EXPECT_NE(js.find("\"failing_jobs\""), std::string::npos);
}

} // namespace
