/**
 * Long campaign smoke run (ctest label: slow). A wider clean sweep
 * across every engine pair plus a slice of DiffTest jobs must find no
 * divergence — the nightly-grade version of the tier1 campaign tests.
 */

#include <gtest/gtest.h>

#include "campaign/campaign.h"

namespace {

using namespace minjie::campaign;

TEST(CampaignSlow, WideCleanSweepFindsNoDivergence)
{
    CampaignConfig cfg;
    cfg.seedBase = 1;
    cfg.seedCount = 400;
    cfg.workers = 4;
    cfg.nInsts = 300;
    cfg.difftestPct = 5;
    CampaignReport rep = runCampaign(cfg);
    EXPECT_EQ(rep.failures, 0u);
    for (const auto &jr : rep.results)
        EXPECT_FALSE(jr.failed) << "seed " << jr.seed << ": "
                                << jr.detail;
}

} // namespace
