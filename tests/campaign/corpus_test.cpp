/**
 * Corpus round-trip tests: a minimized failure survives
 * serialize/deserialize byte-for-byte, and the full campaign loop
 * (catch -> bucket -> shrink -> write corpus -> read back -> replay)
 * reproduces the recorded divergence signature.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "campaign/campaign.h"
#include "campaign/corpus.h"
#include "workload/shrinkable.h"

namespace {

using namespace minjie;
using namespace minjie::campaign;
namespace wl = minjie::workload;
namespace fs = std::filesystem;

TEST(Corpus, EntryRoundTripsThroughText)
{
    Rng rng(77);
    wl::RandomSpec spec;
    spec.nInsts = 60;
    spec.withFp = true;
    CorpusEntry e;
    e.seed = 77;
    e.engineA = Engine::Nemu;
    e.engineB = Engine::Tci;
    e.signature = "xreg:alu:sub";
    e.note = "round trip";
    e.program = wl::randomShrinkable(rng, spec);
    e.program.name = "corpus";

    CorpusEntry back;
    ASSERT_TRUE(CorpusEntry::deserialize(e.serialize(), back));
    EXPECT_EQ(back.seed, e.seed);
    EXPECT_EQ(back.engineA, e.engineA);
    EXPECT_EQ(back.engineB, e.engineB);
    EXPECT_EQ(back.signature, e.signature);
    EXPECT_EQ(back.note, e.note);

    // The program must reassemble to the identical memory image.
    wl::Program pa = e.program.assemble();
    wl::Program pb = back.program.assemble();
    ASSERT_EQ(pa.segments.size(), pb.segments.size());
    for (size_t i = 0; i < pa.segments.size(); ++i) {
        EXPECT_EQ(pa.segments[i].base, pb.segments[i].base);
        EXPECT_EQ(pa.segments[i].bytes, pb.segments[i].bytes);
    }
    EXPECT_EQ(pa.entry, pb.entry);
}

TEST(Corpus, FileNameIsFilesystemSafe)
{
    CorpusEntry e;
    e.seed = 0xbeef;
    e.signature = "xreg:alu:xor";
    std::string n = e.fileName();
    EXPECT_EQ(n.find('/'), std::string::npos);
    EXPECT_EQ(n.find(':'), std::string::npos);
    EXPECT_NE(n.find(".mjc"), std::string::npos);
}

TEST(Corpus, CampaignWritesReplayableMinimizedFailure)
{
    fs::path dir = fs::path(::testing::TempDir()) / "mjc_corpus";
    fs::remove_all(dir);

    CampaignConfig cfg;
    cfg.seedBase = 1;
    cfg.seedCount = 20;
    cfg.workers = 2;
    cfg.nInsts = 200;
    cfg.bug.enabled = true;
    cfg.bug.op = isa::Op::Xor;
    cfg.bug.xorMask = 1;
    cfg.corpusDir = dir.string();
    CampaignReport rep = runCampaign(cfg);
    ASSERT_EQ(rep.buckets.size(), 1u);
    ASSERT_FALSE(rep.buckets.front().corpusFile.empty());

    auto files = listCorpusFiles(dir.string());
    ASSERT_EQ(files.size(), 1u);

    CorpusEntry e;
    ASSERT_TRUE(readCorpusFile(files.front(), e));
    EXPECT_EQ(e.signature, "xreg:alu:xor");
    EXPECT_LE(e.program.bodyInsts(), 8u);

    wl::Program prog = e.program.assemble();
    // With the bug still injected the minimized program fails with the
    // recorded signature...
    auto bad = runLockstep(e.engineA, e.engineB, prog, cfg.maxSteps,
                           &cfg.bug);
    ASSERT_TRUE(bad.div.diverged());
    EXPECT_EQ(bad.div.signature(), e.signature);
    // ...and on the real (fixed) engines it passes: the corpus guards
    // against the bug coming back.
    auto good = runLockstep(e.engineA, e.engineB, prog, cfg.maxSteps);
    EXPECT_FALSE(good.div.diverged()) << good.div.describe();
    EXPECT_TRUE(good.exited);
}

} // namespace
