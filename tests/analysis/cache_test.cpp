/**
 * Incremental-cache tests: the on-disk round trip must preserve every
 * field the whole-program pass depends on (calls with receivers and
 * held locks, lock events, nondeterminism sources, iteration sites,
 * arch stores, receiver-type hints), a content-hash mismatch must
 * miss, a corrupt file must degrade to a cold run, and an end-to-end
 * engine run over a scratch tree must keep producing the same graph
 * findings from cached indexes without re-lexing anything.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/cache.h"
#include "analysis/engine.h"

namespace minjie::analysis {
namespace {

namespace fs = std::filesystem;

CachedTu
sampleTu()
{
    CachedTu tu;
    tu.path = "src/util/helper.cpp";
    tu.hash = 0x1234;

    Finding f;
    f.ruleId = "MJ-DET-001";
    f.path = tu.path;
    f.line = 7;
    f.col = 3;
    f.message = "message with\ttab and\nnewline";
    f.snippet = "rand();";
    tu.findings.push_back(f);
    tu.suppressedInline = 1;
    tu.supEntries.push_back({12, "MJ-FRK-003"});

    FunctionIndex fn;
    fn.name = "emitProgress";
    fn.qualName = "minjie::util::emitProgress";
    fn.line = 5;
    CallEvent c;
    c.name = "write";
    c.qualHint = "detail";
    c.firstArg = "stderr,buf";
    c.recv = "sink";
    c.line = 6;
    c.member = true;
    c.heldLocks = {"poolMu", "statsMu"};
    fn.calls.push_back(c);
    LockEvent l;
    l.lockName = "poolMu";
    l.line = 8;
    l.heldBefore = {"statsMu"};
    fn.locks.push_back(l);
    DetEvent d;
    d.what = "rand()";
    d.line = 7;
    fn.detSources.push_back(d);
    IterEvent it;
    it.line = 9;
    it.names = {"rowsById"};
    fn.iterUses.push_back(it);
    WriteEvent w;
    w.what = "x[] store";
    w.line = 10;
    fn.archWrites.push_back(w);

    tu.index.path = tu.path;
    tu.index.functions.push_back(std::move(fn));
    tu.index.unorderedNames = {"rowsById"};
    tu.index.lockNames = {"poolMu"};
    tu.index.varTypes = {{"sink", "Sink"}};
    return tu;
}

TEST(Cache, RoundTripPreservesEveryIndexField)
{
    std::string path = testing::TempDir() + "minjie_cache_rt.txt";
    AnalysisCache out;
    out.put(sampleTu());
    ASSERT_TRUE(out.write(path));

    AnalysisCache in;
    ASSERT_TRUE(in.load(path));
    const CachedTu *got = in.lookup("src/util/helper.cpp", 0x1234);
    ASSERT_NE(got, nullptr);

    ASSERT_EQ(got->findings.size(), 1u);
    EXPECT_EQ(got->findings[0].ruleId, "MJ-DET-001");
    EXPECT_EQ(got->findings[0].line, 7u);
    EXPECT_EQ(got->findings[0].message, "message with\ttab and\nnewline");
    EXPECT_EQ(got->suppressedInline, 1u);
    ASSERT_EQ(got->supEntries.size(), 1u);
    EXPECT_EQ(got->supEntries[0].line, 12u);
    EXPECT_EQ(got->supEntries[0].ruleId, "MJ-FRK-003");

    const TuIndex &idx = got->index;
    EXPECT_EQ(idx.path, "src/util/helper.cpp");
    EXPECT_EQ(idx.unorderedNames,
              std::vector<std::string>{"rowsById"});
    EXPECT_EQ(idx.lockNames, std::vector<std::string>{"poolMu"});
    ASSERT_EQ(idx.varTypes.size(), 1u);
    EXPECT_EQ(idx.varTypes[0].first, "sink");
    EXPECT_EQ(idx.varTypes[0].second, "Sink");

    ASSERT_EQ(idx.functions.size(), 1u);
    const FunctionIndex &fn = idx.functions[0];
    EXPECT_EQ(fn.qualName, "minjie::util::emitProgress");
    EXPECT_EQ(fn.line, 5u);
    ASSERT_EQ(fn.calls.size(), 1u);
    EXPECT_EQ(fn.calls[0].name, "write");
    EXPECT_EQ(fn.calls[0].qualHint, "detail");
    EXPECT_EQ(fn.calls[0].firstArg, "stderr,buf");
    EXPECT_EQ(fn.calls[0].recv, "sink");
    EXPECT_TRUE(fn.calls[0].member);
    EXPECT_EQ(fn.calls[0].heldLocks,
              (std::vector<std::string>{"poolMu", "statsMu"}));
    ASSERT_EQ(fn.locks.size(), 1u);
    EXPECT_EQ(fn.locks[0].lockName, "poolMu");
    EXPECT_EQ(fn.locks[0].heldBefore,
              std::vector<std::string>{"statsMu"});
    ASSERT_EQ(fn.detSources.size(), 1u);
    EXPECT_EQ(fn.detSources[0].what, "rand()");
    ASSERT_EQ(fn.iterUses.size(), 1u);
    EXPECT_EQ(fn.iterUses[0].names,
              std::vector<std::string>{"rowsById"});
    ASSERT_EQ(fn.archWrites.size(), 1u);
    EXPECT_EQ(fn.archWrites[0].what, "x[] store");
    EXPECT_EQ(fn.archWrites[0].line, 10u);
}

TEST(Cache, HashMismatchMisses)
{
    std::string path = testing::TempDir() + "minjie_cache_hm.txt";
    AnalysisCache out;
    out.put(sampleTu());
    ASSERT_TRUE(out.write(path));

    AnalysisCache in;
    ASSERT_TRUE(in.load(path));
    EXPECT_EQ(in.lookup("src/util/helper.cpp", 0x9999), nullptr);
    EXPECT_EQ(in.lookup("src/util/other.cpp", 0x1234), nullptr);
}

TEST(Cache, CorruptFileDropsToEmptyCache)
{
    std::string path = testing::TempDir() + "minjie_cache_bad.txt";
    {
        std::ofstream os(path);
        os << "minjie-lint-cache v999\ngarbage\tgarbage\n";
    }
    AnalysisCache in;
    EXPECT_FALSE(in.load(path));
    EXPECT_EQ(in.size(), 0u);
    EXPECT_EQ(in.lookup("src/util/helper.cpp", 0x1234), nullptr);
}

// ------------------------------------------------- end-to-end engine

void
writeFile(const fs::path &p, const std::string &text)
{
    std::ofstream os(p);
    os << text;
    ASSERT_TRUE(os.good()) << "cannot write " << p;
}

const char *const ROOT_TU = "namespace minjie::lightsss {\n"
                            "void replayWindow(int n)\n"
                            "{\n"
                            "    util::emitProgress(n);\n"
                            "}\n"
                            "} // namespace minjie::lightsss\n";

const char *const HELPER_BAD = "namespace minjie::util {\n"
                               "void emitProgress(int n)\n"
                               "{\n"
                               "    printf(\"%d\\n\", n);\n"
                               "}\n"
                               "} // namespace minjie::util\n";

const char *const HELPER_CLEAN = "namespace minjie::util {\n"
                                 "void emitProgress(int n)\n"
                                 "{\n"
                                 "    fprintf(stderr, \"%d\\n\", n);\n"
                                 "}\n"
                                 "} // namespace minjie::util\n";

TEST(Cache, EngineWarmRunReproducesGraphFindingsWithoutLexing)
{
    fs::path root = fs::path(testing::TempDir()) / "minjie_cache_repo";
    fs::remove_all(root);
    fs::create_directories(root / "src" / "lightsss");
    fs::create_directories(root / "src" / "util");
    writeFile(root / "src" / "lightsss" / "replay.cpp", ROOT_TU);
    writeFile(root / "src" / "util" / "progress.cpp", HELPER_BAD);

    EngineConfig cfg;
    cfg.root = root.string();
    cfg.scanDirs = {"src"};
    cfg.cachePath = (root / "lint.cache").string();
    Engine engine(cfg);

    auto cold = engine.run();
    EXPECT_EQ(cold.filesScanned, 2u);
    EXPECT_EQ(cold.filesLexed, 2u);
    ASSERT_EQ(cold.findings.size(), 1u);
    EXPECT_EQ(cold.findings[0].ruleId, "MJ-FRK2-001");

    // Warm: nothing re-lexed, yet the graph finding — never cached —
    // is recomputed identically from the cached indexes.
    auto warm = engine.run();
    EXPECT_EQ(warm.filesLexed, 0u);
    ASSERT_EQ(warm.findings.size(), 1u);
    EXPECT_EQ(warm.findings[0].ruleId, "MJ-FRK2-001");
    EXPECT_EQ(warm.findings[0].path, "src/util/progress.cpp");
    EXPECT_EQ(warm.findings[0].callPath, cold.findings[0].callPath);
    ASSERT_EQ(warm.findings[0].callPath.size(), 2u);

    // Edit one file: exactly that file is re-lexed and the finding
    // disappears (stderr is tolerated on the fork path).
    writeFile(root / "src" / "util" / "progress.cpp", HELPER_CLEAN);
    auto inc = engine.run();
    EXPECT_EQ(inc.filesLexed, 1u);
    EXPECT_TRUE(inc.findings.empty())
        << inc.findings[0].ruleId << ": " << inc.findings[0].message;

    // A corrupt cache degrades to a full cold run, not a failure.
    writeFile(root / "lint.cache", "not a cache\n");
    auto cold2 = engine.run();
    EXPECT_EQ(cold2.filesLexed, 2u);
    EXPECT_TRUE(cold2.findings.empty());

    fs::remove_all(root);
}

} // namespace
} // namespace minjie::analysis
