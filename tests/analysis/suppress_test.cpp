/**
 * Unit tests for the suppression directive parser, the baseline file,
 * and finding fingerprints (the identity the baseline keys on).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "analysis/baseline.h"
#include "analysis/lexer.h"
#include "analysis/suppress.h"

namespace minjie::analysis {
namespace {

Suppressions
parse(const std::string &text, std::vector<Finding> &diags,
      const char *path = "src/campaign/x.cpp")
{
    SourceFile f(path, text);
    LexResult r = lex(f);
    return Suppressions(path, r.comments, f, diags);
}

TEST(Suppress, TrailingDirectiveCoversItsLine)
{
    std::vector<Finding> diags;
    auto s = parse("int a = rand(); // lint:allow MJ-DET-001 test rig\n",
                   diags);
    EXPECT_TRUE(diags.empty());
    EXPECT_EQ(s.directiveCount(), 1u);
    EXPECT_TRUE(s.allows(1, "MJ-DET-001"));
    EXPECT_FALSE(s.allows(1, "MJ-DET-002"));
    EXPECT_FALSE(s.allows(2, "MJ-DET-001"));
}

TEST(Suppress, OwnLineDirectiveCoversNextLine)
{
    std::vector<Finding> diags;
    auto s = parse("// lint:allow MJ-FRK-003 flushed before fork\n"
                   "printf(\"x\");\n",
                   diags);
    EXPECT_TRUE(diags.empty());
    EXPECT_TRUE(s.allows(1, "MJ-FRK-003"));
    EXPECT_TRUE(s.allows(2, "MJ-FRK-003"));
    EXPECT_FALSE(s.allows(3, "MJ-FRK-003"));
}

TEST(Suppress, MissingJustificationIsReported)
{
    std::vector<Finding> diags;
    auto s = parse("int a = rand(); // lint:allow MJ-DET-001\n", diags);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].ruleId, "MJ-SUP-001");
    EXPECT_EQ(diags[0].line, 1u);
    // The malformed directive must not suppress anything.
    EXPECT_FALSE(s.allows(1, "MJ-DET-001"));
}

TEST(Suppress, MissingRuleIdIsReported)
{
    std::vector<Finding> diags;
    parse("// lint:allow\nint a;\n", diags);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].ruleId, "MJ-SUP-001");
}

TEST(Fingerprint, IgnoresLineNumberAndWhitespace)
{
    Finding a{"MJ-DET-001", "src/campaign/x.cpp", 10, 4, "m",
              "int a = rand();", {}};
    Finding b = a;
    b.line = 99;
    b.col = 1;
    b.snippet = "int  a =\trand();"; // same modulo whitespace
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, SensitiveToRulePathAndSnippet)
{
    Finding a{"MJ-DET-001", "src/campaign/x.cpp", 1, 1, "m", "rand();",
              {}};
    Finding rule = a, path = a, snip = a;
    rule.ruleId = "MJ-DET-002";
    path.path = "src/campaign/y.cpp";
    snip.snippet = "srand();";
    EXPECT_NE(a.fingerprint(), rule.fingerprint());
    EXPECT_NE(a.fingerprint(), path.fingerprint());
    EXPECT_NE(a.fingerprint(), snip.fingerprint());
}

TEST(Baseline, RoundTripAndStaleTracking)
{
    Finding known{"MJ-DET-003", "src/campaign/x.cpp", 5, 1, "m",
                  "std::unordered_map<int, int> h;", {}};
    Finding gone{"MJ-DET-001", "src/campaign/y.cpp", 7, 1, "m",
                 "rand();", {}};

    std::string path =
        testing::TempDir() + "/minjie_lint_baseline_test.txt";
    ASSERT_TRUE(Baseline::write(path, {known, gone}));

    Baseline bl;
    ASSERT_TRUE(bl.load(path));
    EXPECT_EQ(bl.size(), 2u);

    // 'known' still fires (different line: fingerprints are
    // line-independent); 'gone' was fixed, so its entry goes stale.
    Finding knownMoved = known;
    knownMoved.line = 50;
    EXPECT_TRUE(bl.matches(knownMoved));
    EXPECT_FALSE(
        bl.matches(Finding{"MJ-DET-002", "a", 1, 1, "m", "s", {}}));

    auto stale = bl.unusedEntries();
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_NE(stale[0].find("src/campaign/y.cpp"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Baseline, MissingFileIsEmpty)
{
    Baseline bl;
    EXPECT_TRUE(bl.load(testing::TempDir() + "/does_not_exist_873"));
    EXPECT_EQ(bl.size(), 0u);
}

} // namespace
} // namespace minjie::analysis
