/**
 * Rule-family tests driven by the seeded-violation fixtures in
 * tests/analysis/fixtures/. Each fixture is loaded under a path inside
 * the family's scope and must trigger exactly the rule ids its
 * comments claim — no more, no fewer. The same fixtures under an
 * out-of-scope or exempt path must be silent, proving the scoping
 * logic and not just the matchers.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "analysis/engine.h"

namespace minjie::analysis {
namespace {

std::string
fixturePath(const std::string &name)
{
    return std::string(MINJIE_SOURCE_DIR) + "/tests/analysis/fixtures/" +
           name;
}

/** Load fixture @p name as if it lived at @p scopedRel in the repo. */
SourceFile
loadFixture(const std::string &name, const std::string &scopedRel)
{
    SourceFile f("", "");
    if (!SourceFile::load(fixturePath(name), scopedRel, f))
        ADD_FAILURE() << "cannot load fixture " << name;
    return f;
}

/** ruleId -> count over the findings. */
std::map<std::string, int>
idCounts(const EngineResult &res)
{
    std::map<std::string, int> m;
    for (const Finding &f : res.findings)
        ++m[f.ruleId];
    return m;
}

Engine
plainEngine()
{
    return Engine(EngineConfig{});
}

TEST(Rules, DeterminismFixtureFiresExactIds)
{
    auto res = plainEngine().runOnFile(
        loadFixture("determinism.cpp", "src/campaign/fixture.cpp"));
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-DET-001"], 2); // rand(), mt19937
    EXPECT_EQ(ids["MJ-DET-002"], 2); // time(), steady_clock
    EXPECT_EQ(ids["MJ-DET-003"], 1); // unordered_map
    EXPECT_EQ(ids["MJ-DET-004"], 1); // map<const Block *, ...>
    EXPECT_EQ(res.findings.size(), 6u);
}

TEST(Rules, DeterminismScopeCoversXiangshan)
{
    // Regression for the scope extension that came with the scheduler
    // fast paths: the DUT timing model must be bit-reproducible (the
    // sched_diff rig depends on it), so src/xiangshan/ is inside the
    // MJ-DET contract and fires exactly like src/campaign/.
    auto res = plainEngine().runOnFile(
        loadFixture("determinism.cpp", "src/xiangshan/fixture.cpp"));
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-DET-001"], 2);
    EXPECT_EQ(ids["MJ-DET-002"], 2);
    EXPECT_EQ(ids["MJ-DET-003"], 1);
    EXPECT_EQ(ids["MJ-DET-004"], 1);
    EXPECT_EQ(res.findings.size(), 6u);
}

TEST(Rules, DeterminismScopeIsEnforced)
{
    // Same content outside the deterministic paths: no contract, no
    // findings (src/uarch is free to use host RNG).
    auto res = plainEngine().runOnFile(
        loadFixture("determinism.cpp", "src/uarch/fixture.cpp"));
    EXPECT_TRUE(res.findings.empty());
}

TEST(Rules, ProbeFixtureFiresExactIds)
{
    auto res = plainEngine().runOnFile(
        loadFixture("probe.cpp", "src/nemu/fixture.cpp"));
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-PRB-001"], 1); // st.x[...] =
    EXPECT_EQ(ids["MJ-PRB-002"], 1); // st.f[...] |=
    EXPECT_EQ(ids["MJ-PRB-003"], 1); // st.csr.mstatus =
    EXPECT_EQ(res.findings.size(), 3u);
}

TEST(Rules, ProbeAccessorHomesAreExempt)
{
    // arch_state.h IS the accessor; the rule must not flag the
    // implementation it funnels everything into.
    auto res = plainEngine().runOnFile(
        loadFixture("probe.cpp", "src/iss/arch_state.h"));
    EXPECT_TRUE(res.findings.empty());
}

TEST(Rules, ForkFixtureFiresExactIds)
{
    auto res = plainEngine().runOnFile(
        loadFixture("fork.cpp", "src/lightsss/fixture.cpp"));
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-FRK-001"], 1); // std::thread
    EXPECT_EQ(ids["MJ-FRK-002"], 1); // std::mutex
    EXPECT_EQ(ids["MJ-FRK-003"], 1); // printf (stderr fprintf is clean)
    EXPECT_EQ(res.findings.size(), 3u);
}

TEST(Rules, ForkRulesCoverSampleEngineScope)
{
    // Regression for the scope extension that came with the sampled
    // simulation engine: src/sample/ forks one worker per SimPoint
    // slice, so the per-file fork rules apply there verbatim.
    auto res = plainEngine().runOnFile(
        loadFixture("fork.cpp", "src/sample/fixture.cpp"));
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-FRK-001"], 1);
    EXPECT_EQ(ids["MJ-FRK-002"], 1);
    EXPECT_EQ(ids["MJ-FRK-003"], 1);
    EXPECT_EQ(res.findings.size(), 3u);
}

TEST(Rules, ForkRulesStopAtLightsssBoundary)
{
    // The campaign driver quiesces before snapshots; threads and
    // mutexes are legal there.
    auto res = plainEngine().runOnFile(
        loadFixture("fork.cpp", "src/campaign/fixture.cpp"));
    for (const Finding &f : res.findings)
        EXPECT_NE(f.ruleId.substr(0, 6), "MJ-FRK") << f.ruleId;
}

TEST(Rules, LayoutFixtureFlagsOnlyUnpinnedStruct)
{
    auto res = plainEngine().runOnFile(
        loadFixture("layout.cpp", "src/nemu/fixture.h"));
    ASSERT_EQ(res.findings.size(), 1u);
    EXPECT_EQ(res.findings[0].ruleId, "MJ-LAY-001");
    EXPECT_NE(res.findings[0].message.find("Unpinned"),
              std::string::npos);
}

TEST(Rules, SuppressedFixtureHonorsAndPolicesDirectives)
{
    auto res = plainEngine().runOnFile(
        loadFixture("suppressed.cpp", "src/campaign/fixture.cpp"));
    // Two justified directives suppress their rand() calls; the bare
    // one suppresses nothing and is itself reported.
    EXPECT_EQ(res.suppressedInline, 2u);
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-SUP-001"], 1);
    EXPECT_EQ(ids["MJ-DET-001"], 1); // the one the bare allow missed
    EXPECT_EQ(res.findings.size(), 2u);
}

TEST(Rules, RuleFilterRestrictsOutput)
{
    EngineConfig cfg;
    cfg.onlyRules = {"MJ-DET-003"};
    auto res = Engine(cfg).runOnFile(
        loadFixture("determinism.cpp", "src/campaign/fixture.cpp"));
    ASSERT_EQ(res.findings.size(), 1u);
    EXPECT_EQ(res.findings[0].ruleId, "MJ-DET-003");
}

TEST(Rules, EveryFamilyIsRegistered)
{
    auto e = plainEngine();
    std::map<std::string, int> families;
    for (const auto &r : e.rules())
        ++families[std::string(r->id().substr(0, 6))];
    EXPECT_EQ(families["MJ-DET"], 4);
    EXPECT_EQ(families["MJ-PRB"], 3);
    EXPECT_EQ(families["MJ-FRK"], 3);
    EXPECT_EQ(families["MJ-LAY"], 1);
}

} // namespace
} // namespace minjie::analysis
