/**
 * Unit tests for the lint lexer: token kinds, positions, comment
 * collection, raw strings, and #include swallowing — the properties
 * every rule in src/analysis/ builds on.
 */

#include <gtest/gtest.h>

#include "analysis/lexer.h"

namespace minjie::analysis {
namespace {

/** Keeps the SourceFile alive next to the tokens that view into it. */
struct Lexed
{
    SourceFile file;
    LexResult r;

    explicit Lexed(const std::string &text)
        : file("src/campaign/x.cpp", text), r(lex(file))
    {
    }

    const std::vector<Token> &tokens() const { return r.tokens; }
    const std::vector<Comment> &comments() const { return r.comments; }
};

TEST(Lexer, BasicTokenKinds)
{
    Lexed l("int a = rand() + 0x1f;\n");
    ASSERT_EQ(l.tokens().size(), 9u);
    EXPECT_EQ(l.tokens()[0].kind, Tok::Ident);
    EXPECT_EQ(l.tokens()[0].text, "int");
    EXPECT_EQ(l.tokens()[3].text, "rand");
    EXPECT_EQ(l.tokens()[4].text, "(");
    EXPECT_EQ(l.tokens()[7].kind, Tok::Number);
    EXPECT_EQ(l.tokens()[7].text, "0x1f");
    EXPECT_EQ(l.tokens()[8].text, ";");
}

TEST(Lexer, LineAndColumnAreOneBased)
{
    Lexed l("a\n  b\n");
    ASSERT_EQ(l.tokens().size(), 2u);
    EXPECT_EQ(l.tokens()[0].line, 1u);
    EXPECT_EQ(l.tokens()[0].col, 1u);
    EXPECT_EQ(l.tokens()[1].line, 2u);
    EXPECT_EQ(l.tokens()[1].col, 3u);
}

TEST(Lexer, CommentsCollectedSeparately)
{
    Lexed l("int a; // trailing\n// own line\nint b;\n");
    ASSERT_EQ(l.comments().size(), 2u);
    EXPECT_EQ(l.comments()[0].text, " trailing");
    EXPECT_FALSE(l.comments()[0].ownLine);
    EXPECT_EQ(l.comments()[1].text, " own line");
    EXPECT_TRUE(l.comments()[1].ownLine);
    EXPECT_EQ(l.comments()[1].line, 2u);
    // No comment text leaks into the token stream.
    for (const Token &t : l.tokens())
        EXPECT_NE(t.text, "trailing");
}

TEST(Lexer, BlockCommentSpansLines)
{
    Lexed l("/* one\n   two */ int a;\n");
    ASSERT_EQ(l.comments().size(), 1u);
    EXPECT_EQ(l.comments()[0].line, 1u);
    ASSERT_GE(l.tokens().size(), 1u);
    EXPECT_EQ(l.tokens()[0].text, "int");
    EXPECT_EQ(l.tokens()[0].line, 2u);
}

TEST(Lexer, StringAndCharLiteralsAreOpaque)
{
    // rand() inside a string must not look like a call to the rules.
    Lexed l("const char *s = \"rand() \\\" quoted\"; char c = 'x';\n");
    bool sawRandIdent = false;
    for (const Token &t : l.tokens())
        if (t.kind == Tok::Ident && t.text == "rand")
            sawRandIdent = true;
    EXPECT_FALSE(sawRandIdent);
    bool sawStr = false, sawChar = false;
    for (const Token &t : l.tokens()) {
        sawStr |= t.kind == Tok::Str;
        sawChar |= t.kind == Tok::Char;
    }
    EXPECT_TRUE(sawStr);
    EXPECT_TRUE(sawChar);
}

TEST(Lexer, RawStringLiteral)
{
    Lexed l("auto s = R\"(no \"escape\" rand() here)\"; int z;\n");
    for (const Token &t : l.tokens())
        EXPECT_FALSE(t.isIdent("rand"));
    // Lexing resumes correctly after the raw string.
    EXPECT_TRUE(l.tokens().back().is(";"));
    EXPECT_TRUE(l.tokens()[l.tokens().size() - 2].isIdent("z"));
}

TEST(Lexer, RawStringWithDelimiter)
{
    Lexed l("auto s = R\"x(inner )\" rand() )x\"; int z;\n");
    for (const Token &t : l.tokens())
        EXPECT_FALSE(t.isIdent("rand"));
    EXPECT_TRUE(l.tokens().back().is(";"));
    EXPECT_TRUE(l.tokens()[l.tokens().size() - 2].isIdent("z"));
}

TEST(Lexer, IdentEndingInRIsNotARawStringPrefix)
{
    // Regression: PRIuPTR-style macro pastes (`SCNdPTR"..."`) used to
    // trip the raw-string branch and swallow the rest of the file.
    Lexed l("printf(SCNdPTR \"x\");\nsrand(1);\n");
    bool sawSrand = false;
    for (const Token &t : l.tokens())
        sawSrand |= t.isIdent("srand");
    EXPECT_TRUE(sawSrand);
    // The paste ident survives as an ordinary identifier.
    bool sawMacro = false;
    for (const Token &t : l.tokens())
        sawMacro |= t.isIdent("SCNdPTR");
    EXPECT_TRUE(sawMacro);
}

TEST(Lexer, EncodedRawStringPrefixes)
{
    Lexed l("auto a = u8R\"(rand())\"; auto b = LR\"(time(0))\"; int z;\n");
    for (const Token &t : l.tokens()) {
        EXPECT_FALSE(t.isIdent("rand"));
        EXPECT_FALSE(t.isIdent("time"));
    }
    EXPECT_TRUE(l.tokens()[l.tokens().size() - 2].isIdent("z"));
}

TEST(Lexer, LineContinuationIsInvisible)
{
    // Regression: the backslash used to surface as a stray Punct
    // between `srand` and `(`, breaking call-adjacency rules.
    Lexed l("#define SEED srand \\\n(42)\n");
    const auto &toks = l.tokens();
    bool adjacent = false;
    for (size_t i = 0; i + 1 < toks.size(); ++i)
        adjacent |= toks[i].isIdent("srand") && toks[i + 1].is("(");
    EXPECT_TRUE(adjacent);
    for (const Token &t : toks)
        EXPECT_NE(t.text, "\\");
}

TEST(Lexer, ContinuedLineCommentSwallowsNextLine)
{
    // A // comment ending in a backslash continues onto the next
    // physical line; its content must not leak into the tokens.
    Lexed l("// part one \\\nrand();\nint a;\n");
    for (const Token &t : l.tokens())
        EXPECT_FALSE(t.isIdent("rand"));
    EXPECT_TRUE(l.tokens()[0].isIdent("int"));
}

TEST(Lexer, DigitSeparatorsStayOneNumber)
{
    Lexed l("uint64_t n = 1'000'000; f('x');\n");
    bool sawNum = false, sawChar = false;
    for (const Token &t : l.tokens()) {
        if (t.kind == Tok::Number) {
            EXPECT_EQ(t.text, "1'000'000");
            sawNum = true;
        }
        sawChar |= t.kind == Tok::Char;
    }
    EXPECT_TRUE(sawNum);
    // The 'x' after f( is a char literal, not part of a number.
    EXPECT_TRUE(sawChar);
}

TEST(Lexer, ApostropheAfterNumberIsCharLiteral)
{
    // `case 1: g('a')` — the quote after `1` opens a char literal;
    // it must not be eaten as a digit separator.
    Lexed l("switch (v) { case 1: g('a'); }\n");
    bool sawCase1 = false, sawChar = false;
    for (const Token &t : l.tokens()) {
        if (t.kind == Tok::Number)
            sawCase1 |= t.text == "1";
        sawChar |= t.kind == Tok::Char && t.text == "'a'";
    }
    EXPECT_TRUE(sawCase1);
    EXPECT_TRUE(sawChar);
}

TEST(Lexer, IncludeSwallowedWhole)
{
    // <random> in an include must not produce a 'random' identifier.
    Lexed l("#include <random>\n#include \"map/set.h\"\nint a;\n");
    for (const Token &t : l.tokens()) {
        EXPECT_FALSE(t.isIdent("random"));
        EXPECT_FALSE(t.isIdent("map"));
    }
    EXPECT_TRUE(l.tokens()[0].isIdent("int"));
}

TEST(Lexer, NonIncludePreprocessorLinesAreLexed)
{
    // Macro bodies stay visible so rules can flag them.
    Lexed l("#define DRAW() rand()\n");
    bool sawRand = false;
    for (const Token &t : l.tokens())
        sawRand |= t.isIdent("rand");
    EXPECT_TRUE(sawRand);
}

TEST(Lexer, MaximalMunchPunctuation)
{
    Lexed l("a <<= b; c->d; e <=> f; x >= y;\n");
    std::vector<std::string_view> puncts;
    for (const Token &t : l.tokens())
        if (t.kind == Tok::Punct)
            puncts.push_back(t.text);
    ASSERT_GE(puncts.size(), 4u);
    EXPECT_EQ(puncts[0], "<<=");
    EXPECT_EQ(puncts[2], "->");
    EXPECT_EQ(puncts[4], "<=>");
    EXPECT_EQ(puncts[6], ">=");
}

} // namespace
} // namespace minjie::analysis
