/**
 * Unit tests for the lint lexer: token kinds, positions, comment
 * collection, raw strings, and #include swallowing — the properties
 * every rule in src/analysis/ builds on.
 */

#include <gtest/gtest.h>

#include "analysis/lexer.h"

namespace minjie::analysis {
namespace {

/** Keeps the SourceFile alive next to the tokens that view into it. */
struct Lexed
{
    SourceFile file;
    LexResult r;

    explicit Lexed(const std::string &text)
        : file("src/campaign/x.cpp", text), r(lex(file))
    {
    }

    const std::vector<Token> &tokens() const { return r.tokens; }
    const std::vector<Comment> &comments() const { return r.comments; }
};

TEST(Lexer, BasicTokenKinds)
{
    Lexed l("int a = rand() + 0x1f;\n");
    ASSERT_EQ(l.tokens().size(), 9u);
    EXPECT_EQ(l.tokens()[0].kind, Tok::Ident);
    EXPECT_EQ(l.tokens()[0].text, "int");
    EXPECT_EQ(l.tokens()[3].text, "rand");
    EXPECT_EQ(l.tokens()[4].text, "(");
    EXPECT_EQ(l.tokens()[7].kind, Tok::Number);
    EXPECT_EQ(l.tokens()[7].text, "0x1f");
    EXPECT_EQ(l.tokens()[8].text, ";");
}

TEST(Lexer, LineAndColumnAreOneBased)
{
    Lexed l("a\n  b\n");
    ASSERT_EQ(l.tokens().size(), 2u);
    EXPECT_EQ(l.tokens()[0].line, 1u);
    EXPECT_EQ(l.tokens()[0].col, 1u);
    EXPECT_EQ(l.tokens()[1].line, 2u);
    EXPECT_EQ(l.tokens()[1].col, 3u);
}

TEST(Lexer, CommentsCollectedSeparately)
{
    Lexed l("int a; // trailing\n// own line\nint b;\n");
    ASSERT_EQ(l.comments().size(), 2u);
    EXPECT_EQ(l.comments()[0].text, " trailing");
    EXPECT_FALSE(l.comments()[0].ownLine);
    EXPECT_EQ(l.comments()[1].text, " own line");
    EXPECT_TRUE(l.comments()[1].ownLine);
    EXPECT_EQ(l.comments()[1].line, 2u);
    // No comment text leaks into the token stream.
    for (const Token &t : l.tokens())
        EXPECT_NE(t.text, "trailing");
}

TEST(Lexer, BlockCommentSpansLines)
{
    Lexed l("/* one\n   two */ int a;\n");
    ASSERT_EQ(l.comments().size(), 1u);
    EXPECT_EQ(l.comments()[0].line, 1u);
    ASSERT_GE(l.tokens().size(), 1u);
    EXPECT_EQ(l.tokens()[0].text, "int");
    EXPECT_EQ(l.tokens()[0].line, 2u);
}

TEST(Lexer, StringAndCharLiteralsAreOpaque)
{
    // rand() inside a string must not look like a call to the rules.
    Lexed l("const char *s = \"rand() \\\" quoted\"; char c = 'x';\n");
    bool sawRandIdent = false;
    for (const Token &t : l.tokens())
        if (t.kind == Tok::Ident && t.text == "rand")
            sawRandIdent = true;
    EXPECT_FALSE(sawRandIdent);
    bool sawStr = false, sawChar = false;
    for (const Token &t : l.tokens()) {
        sawStr |= t.kind == Tok::Str;
        sawChar |= t.kind == Tok::Char;
    }
    EXPECT_TRUE(sawStr);
    EXPECT_TRUE(sawChar);
}

TEST(Lexer, RawStringLiteral)
{
    Lexed l("auto s = R\"(no \"escape\" rand() here)\"; int z;\n");
    for (const Token &t : l.tokens())
        EXPECT_FALSE(t.isIdent("rand"));
    // Lexing resumes correctly after the raw string.
    EXPECT_TRUE(l.tokens().back().is(";"));
    EXPECT_TRUE(l.tokens()[l.tokens().size() - 2].isIdent("z"));
}

TEST(Lexer, IncludeSwallowedWhole)
{
    // <random> in an include must not produce a 'random' identifier.
    Lexed l("#include <random>\n#include \"map/set.h\"\nint a;\n");
    for (const Token &t : l.tokens()) {
        EXPECT_FALSE(t.isIdent("random"));
        EXPECT_FALSE(t.isIdent("map"));
    }
    EXPECT_TRUE(l.tokens()[0].isIdent("int"));
}

TEST(Lexer, NonIncludePreprocessorLinesAreLexed)
{
    // Macro bodies stay visible so rules can flag them.
    Lexed l("#define DRAW() rand()\n");
    bool sawRand = false;
    for (const Token &t : l.tokens())
        sawRand |= t.isIdent("rand");
    EXPECT_TRUE(sawRand);
}

TEST(Lexer, MaximalMunchPunctuation)
{
    Lexed l("a <<= b; c->d; e <=> f; x >= y;\n");
    std::vector<std::string_view> puncts;
    for (const Token &t : l.tokens())
        if (t.kind == Tok::Punct)
            puncts.push_back(t.text);
    ASSERT_GE(puncts.size(), 4u);
    EXPECT_EQ(puncts[0], "<<=");
    EXPECT_EQ(puncts[2], "->");
    EXPECT_EQ(puncts[4], "<=>");
    EXPECT_EQ(puncts[6], ">=");
}

} // namespace
} // namespace minjie::analysis
