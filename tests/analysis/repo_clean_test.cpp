/**
 * The repo-is-lint-clean gate, as a unit test: run the full engine —
 * per-file rules plus the interprocedural pass — over the checked-out
 * src/, tools/, and tests/ trees with the checked-in baseline and
 * require zero unsuppressed findings and zero stale baseline entries.
 * The minjie-lint CLI registers the same check as the
 * `lint_repo_clean` ctest; this version produces gtest-grade
 * diagnostics when it fires.
 */

#include <gtest/gtest.h>

#include "analysis/engine.h"

namespace minjie::analysis {
namespace {

EngineConfig
repoConfig()
{
    EngineConfig cfg;
    cfg.root = MINJIE_SOURCE_DIR;
    cfg.scanDirs = {"src", "tools", "tests"};
    cfg.excludePrefixes = {"tests/analysis/fixtures"};
    cfg.baselinePath =
        std::string(MINJIE_SOURCE_DIR) + "/.minjie-lint-baseline";
    return cfg;
}

TEST(RepoClean, ZeroUnsuppressedFindings)
{
    auto res = Engine(repoConfig()).run();

    EXPECT_GT(res.filesScanned, 80u) << "scan rooted in the wrong place?";
    for (const Finding &f : res.findings)
        ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.ruleId
                      << "] " << f.message << "\n    " << f.snippet;
    EXPECT_TRUE(res.findings.empty());
    for (const std::string &s : res.staleBaseline)
        ADD_FAILURE() << "stale baseline entry: " << s;
}

TEST(RepoClean, InterproceduralPassCoversRepo)
{
    // The graph pass must actually have run over the merged program:
    // a regression that silently dropped the interprocedural rules
    // (or the indexes feeding them) would leave ZeroUnsuppressed
    // green while checking nothing. Restricting to the MJ-*2/MJ-LCK
    // families re-runs the pipeline bypassing the cache path, and the
    // two defects this pass originally caught stay pinned by their
    // justified inline suppressions.
    EngineConfig cfg = repoConfig();
    cfg.onlyRules = {"MJ-FRK2-001", "MJ-DET2-001", "MJ-PRB2-001",
                     "MJ-LCK-001"};
    Engine engine(cfg);
    EXPECT_EQ(engine.graphRules().size(), 4u);
    auto res = engine.run();
    for (const Finding &f : res.findings)
        ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.ruleId
                      << "] " << f.message;
    EXPECT_TRUE(res.findings.empty());
    // The historical defect sites remain inline-suppressed (with
    // justifications), proving the rules still see through them.
    EXPECT_GE(res.suppressedInline, 2u);
}

} // namespace
} // namespace minjie::analysis
