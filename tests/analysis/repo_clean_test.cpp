/**
 * The repo-is-lint-clean gate, as a unit test: run the full engine
 * over the checked-out src/ and tools/ trees with the checked-in
 * baseline and require zero unsuppressed findings and zero stale
 * baseline entries. The minjie-lint CLI registers the same check as
 * the `lint_repo_clean` ctest; this version produces gtest-grade
 * diagnostics when it fires.
 */

#include <gtest/gtest.h>

#include "analysis/engine.h"

namespace minjie::analysis {
namespace {

TEST(RepoClean, ZeroUnsuppressedFindings)
{
    EngineConfig cfg;
    cfg.root = MINJIE_SOURCE_DIR;
    cfg.baselinePath = std::string(MINJIE_SOURCE_DIR) +
                       "/.minjie-lint-baseline";
    auto res = Engine(cfg).run();

    EXPECT_GT(res.filesScanned, 80u) << "scan rooted in the wrong place?";
    for (const Finding &f : res.findings)
        ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.ruleId
                      << "] " << f.message << "\n    " << f.snippet;
    EXPECT_TRUE(res.findings.empty());
    for (const std::string &s : res.staleBaseline)
        ADD_FAILURE() << "stale baseline entry: " << s;
}

} // namespace
} // namespace minjie::analysis
