// Seeded MJ-DET-* violations. This fixture is DATA, not code: it is
// never compiled and never scanned by lint_repo_clean (which only
// walks src/ and tools/). rules_test.cpp feeds it to the engine under
// the scoped path src/campaign/fixture.cpp and asserts the exact rule
// ids below, line by line.
#include <cstdlib>

void
fixture_determinism()
{
    int a = rand();                                 // MJ-DET-001
    std::mt19937 gen(42);                           // MJ-DET-001
    long t = time(nullptr);                         // MJ-DET-002
    auto now = std::chrono::steady_clock::now();    // MJ-DET-002
    std::unordered_map<int, int> hist;              // MJ-DET-003
    std::map<const Block *, int> order;             // MJ-DET-004
    (void)a; (void)t; (void)now; (void)hist; (void)order;
}
