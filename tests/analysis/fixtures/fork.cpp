// Seeded MJ-FRK-* violations: constructs that are unsafe to duplicate
// across a LightSSS fork() snapshot. Fixture data only — never
// compiled; see fixtures/determinism.cpp for the scheme.

void
fixture_fork()
{
    std::thread pool(worker);           // MJ-FRK-001
    std::mutex guard;                   // MJ-FRK-002
    printf("snapshot %d\n", 1);         // MJ-FRK-003
    fprintf(stderr, "replay\n");        // stderr is unbuffered: clean
}
