// MJ-FRK2 fixture, sample-engine root TU: loaded under src/sample/
// so the worker pool's fork-then-report path is a fork-path root. The
// classic bug: fork() a slice worker, then call a helper that writes
// through buffered stdio — bytes pending at fork() are emitted twice.
// Fixture data only — never compiled.

namespace minjie::sample {

void
evalSliceForked(int idx)
{
    util::emitProgress(idx);
}

} // namespace minjie::sample
