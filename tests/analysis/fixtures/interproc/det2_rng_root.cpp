// MJ-DET2 fixture, sanctioned-sink root TU: loaded under
// src/campaign/. Draws randomness through the repo's seeded Rng
// wrapper — a sanctioned sink the graph rules must not traverse into,
// even though its implementation touches the host RNG.

namespace minjie::campaign {

unsigned long
drawSeed()
{
    util::Rng rng;
    return rng.next(); // clean: Rng:: is a sanctioned sink
}

} // namespace minjie::campaign
