// MJ-PRB2 fixture, choke-point TU: loaded under src/iss/arch_state.cpp
// — one of the PRB-exempt accessor files. The BFS never enters exempt
// files, so the store helper this accessor calls stays sanctioned.

namespace minjie::iss {

void
ArchState::setX(State &raw, int idx)
{
    util::pokeReg(raw, idx);
}

} // namespace minjie::iss
