// MJ-LCK fixture, interprocedural cycle, caller TU: loaded under
// src/campaign/. publishResult() calls noteStat() — defined in
// another TU — WITH poolMu held; the lock the callee takes orders
// after poolMu. drainStats() orders the same pair the other way
// round, closing the cycle.

namespace minjie::campaign {

std::mutex poolMu;
std::mutex statsMu;

void
publishResult()
{
    std::lock_guard<std::mutex> g(poolMu);
    noteStat(); // callee acquires statsMu: poolMu -> statsMu
}

void
drainStats()
{
    std::lock_guard<std::mutex> g1(statsMu);
    std::lock_guard<std::mutex> g2(poolMu); // statsMu -> poolMu: cycle
}

} // namespace minjie::campaign
