// MJ-DET2 fixture, iteration TU: loaded under src/campaign/. This TU
// never mentions "unordered", so the per-file MJ-DET-003 cannot flag
// it; the container is declared std::unordered_map in
// det2_rows_decl.cpp (another TU).

namespace minjie::campaign {

int
sumRows(util::RowTable &t)
{
    int sum = 0;
    for (const auto &kv : t.rowsById) // MJ-DET2-001: cross-TU unordered
        sum += kv.second;
    return sum;
}

} // namespace minjie::campaign
