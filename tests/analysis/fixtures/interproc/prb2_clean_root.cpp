// MJ-PRB2 fixture, clean root TU: loaded under src/nemu/. Routes the
// register write through the ArchState accessor — the exempt choke
// point — so anything the accessor's implementation reaches is
// sanctioned.

namespace minjie::nemu {

void
applyPatch(ArchState &st)
{
    st.setX(5, 0); // clean: goes through the accessor choke point
}

} // namespace minjie::nemu
