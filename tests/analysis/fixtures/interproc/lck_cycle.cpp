// MJ-LCK fixture, intraprocedural cycle: loaded under src/campaign/.
// Two functions acquire the same pair of mutexes in opposite orders —
// the classic ABBA deadlock. Fixture data only — never compiled.

namespace minjie::campaign {

std::mutex poolMu;
std::mutex statsMu;

void
recordResult()
{
    std::lock_guard<std::mutex> g1(poolMu);
    std::lock_guard<std::mutex> g2(statsMu); // poolMu -> statsMu
}

void
flushStats()
{
    std::lock_guard<std::mutex> g1(statsMu);
    std::lock_guard<std::mutex> g2(poolMu); // statsMu -> poolMu: cycle
}

} // namespace minjie::campaign
