// MJ-LCK fixture, clean: loaded under src/campaign/. Both functions
// acquire the pair in the same global order — the order graph is
// acyclic, so no finding.

namespace minjie::campaign {

std::mutex poolMu;
std::mutex statsMu;

void
recordResult()
{
    std::lock_guard<std::mutex> g1(poolMu);
    std::lock_guard<std::mutex> g2(statsMu); // poolMu -> statsMu
}

void
flushStats()
{
    std::lock_guard<std::mutex> g1(poolMu);
    std::lock_guard<std::mutex> g2(statsMu); // same order: clean
}

} // namespace minjie::campaign
