// MJ-DET2 fixture, root TU: loaded under src/campaign/ (a
// deterministic path). Calls a seed-mixing helper defined in another
// TU; determinism of this function depends on that helper.
// Fixture data only — never compiled.

namespace minjie::campaign {

int
pickSeed(int iteration)
{
    return util::hashSeed(iteration);
}

} // namespace minjie::campaign
