// MJ-FRK2 fixture, bad helper TU: loaded under src/util/, outside the
// per-file MJ-FRK scope, so only the call graph can see that printf's
// user-space buffering is reachable from the LightSSS fork path.

namespace minjie::util {

void
emitProgress(int n)
{
    printf("replayed %d cycles\n", n); // MJ-FRK2-001 via replayWindow
}

} // namespace minjie::util
