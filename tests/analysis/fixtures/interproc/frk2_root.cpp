// MJ-FRK2 fixture, root TU: loaded under src/lightsss/ so every
// function here is a fork-path root. The root itself is clean — the
// violation (or its absence) lives in the helper TU it calls.
// Fixture data only — never compiled.

namespace minjie::lightsss {

void
replayWindow(int cycles)
{
    util::emitProgress(cycles);
}

} // namespace minjie::lightsss
