// MJ-PRB2 fixture, root TU: loaded under src/nemu/ (engine code).
// Delegates a register patch to a helper in another TU instead of
// going through the ArchState accessors.
// Fixture data only — never compiled.

namespace minjie::nemu {

void
applyPatch(State &st)
{
    util::patchRegs(st);
}

} // namespace minjie::nemu
