// MJ-PRB2 fixture, choked helper TU: loaded under src/util/. Contains
// a raw x[] store, but its ONLY caller is the exempt ArchState
// accessor — reachable-through-the-choke-point is the sanctioned way,
// so no finding.

namespace minjie::util {

void
pokeReg(State &raw, int idx)
{
    raw.x[idx] = 0; // clean: only reachable through ArchState::setX
}

} // namespace minjie::util
