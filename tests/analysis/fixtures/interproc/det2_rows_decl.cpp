// MJ-DET2 fixture, declaration TU: loaded under src/util/ (outside
// the per-file MJ-DET scope, so MJ-DET-003 stays silent here). The
// unordered member is what makes iteration in det2_rows_use.cpp
// host-order-dependent — only the merged program model can connect
// the two TUs.

namespace minjie::util {

struct RowTable
{
    std::unordered_map<int, int> rowsById;
};

} // namespace minjie::util
