// MJ-DET2 fixture, bad helper TU: loaded under src/util/, outside the
// per-file MJ-DET scope. The host-RNG call is invisible to per-file
// rules yet poisons every deterministic caller.

namespace minjie::util {

int
hashSeed(int iteration)
{
    return static_cast<int>(rand()) ^ iteration; // MJ-DET2-001
}

} // namespace minjie::util
