// MJ-DET2 fixture, sanctioned-sink TU: loaded under src/util/. The
// Rng:: qualifier marks the seeded-wrapper choke point; the rand()
// inside must NOT be reported through callers that stay behind it.

namespace minjie::util {

unsigned long
Rng::next()
{
    return static_cast<unsigned long>(rand()); // behind the sink
}

} // namespace minjie::util
