// MJ-LCK fixture, interprocedural cycle, callee TU: loaded under
// src/campaign/ as a second TU of the same namespace. Takes statsMu;
// the deadlock only exists because lck_inter_a.cpp calls this with
// poolMu held — no single TU shows the inverted order.

namespace minjie::campaign {

void
noteStat()
{
    std::lock_guard<std::mutex> g(statsMu);
}

} // namespace minjie::campaign
