// MJ-FRK2 fixture, clean helper TU: same shape as frk2_helper_bad.cpp
// but stderr-directed. stderr is unbuffered, so reaching it from the
// fork path is fine — the graph rule must apply the same stderr
// tolerance as the per-file MJ-FRK-003.

namespace minjie::util {

void
emitProgress(int n)
{
    fprintf(stderr, "replayed %d cycles\n", n); // clean: unbuffered
}

} // namespace minjie::util
