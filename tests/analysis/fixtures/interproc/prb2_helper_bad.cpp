// MJ-PRB2 fixture, bad helper TU: loaded under src/util/, outside the
// per-file MJ-PRB scope. The raw x[] store bypasses the
// ArchState/CsrFile choke point (and its DiffTest probes) yet is
// reachable from engine code.

namespace minjie::util {

void
patchRegs(State &st)
{
    st.x[5] = 0; // MJ-PRB2-001 via nemu::applyPatch
}

} // namespace minjie::util
