// Seeded MJ-PRB-* violations: direct architectural-state stores that
// bypass the ArchState / CsrFile accessors (the DiffTest probe choke
// points). Fixture data only — never compiled; see fixtures/
// determinism.cpp for the scheme.

void
fixture_probe(iss::ArchState &st, const DecodedInst &di, uint64_t v)
{
    st.x[di.rd] = v;            // MJ-PRB-001
    st.f[di.rd] |= v;           // MJ-PRB-002
    st.csr.mstatus = v;         // MJ-PRB-003
    st.setX(di.rd, v);          // accessor: clean
    uint64_t r = st.x[di.rd];   // read: clean
    (void)r;
}
