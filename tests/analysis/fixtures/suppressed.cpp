// Exercises the suppression mechanism itself. Fixture data only —
// never compiled; see fixtures/determinism.cpp for the scheme.

void
fixture_suppressed()
{
    // lint:allow MJ-DET-001 fixture: justified directive on prior line
    int a = rand();                 // suppressed
    int b = rand(); // lint:allow MJ-DET-001 same-line directive
    int c = rand(); // lint:allow MJ-DET-001
    (void)a; (void)b; (void)c;
}
