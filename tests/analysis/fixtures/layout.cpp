// Seeded MJ-LAY-001 violation: a layout-constrained struct without a
// static_assert pinning the claim. Fixture data only — never
// compiled; see fixtures/determinism.cpp for the scheme. (Pinned's
// static_assert would not even hold if compiled; only the *presence*
// of the assertion is what the rule checks.)

struct alignas(64) Unpinned      // MJ-LAY-001
{
    uint64_t a;
};

struct alignas(64) Pinned        // clean: asserted below
{
    uint64_t a;
};
static_assert(sizeof(Pinned) == 64, "hot-loop line size");

alignas(16) static uint8_t scratch[64]; // variable alignas: out of scope
