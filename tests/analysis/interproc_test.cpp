/**
 * Interprocedural rule-family tests driven by the multi-TU fixtures
 * in tests/analysis/fixtures/interproc/. Each family gets a known-bad
 * set — asserting the exact rule id, finding site, and call-path
 * witness — and a known-clean set proving the sanctioned escape hatch
 * (stderr, Rng:: sink, accessor choke point, consistent lock order)
 * really silences the rule, not just the matcher.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "analysis/engine.h"

namespace minjie::analysis {
namespace {

std::string
fixturePath(const std::string &name)
{
    return std::string(MINJIE_SOURCE_DIR) +
           "/tests/analysis/fixtures/interproc/" + name;
}

/** Load fixture @p name as if it lived at @p scopedRel in the repo. */
SourceFile
loadFixture(const std::string &name, const std::string &scopedRel)
{
    SourceFile f("", "");
    if (!SourceFile::load(fixturePath(name), scopedRel, f))
        ADD_FAILURE() << "cannot load fixture " << name;
    return f;
}

/** ruleId -> count over the findings. */
std::map<std::string, int>
idCounts(const EngineResult &res)
{
    std::map<std::string, int> m;
    for (const Finding &f : res.findings)
        ++m[f.ruleId];
    return m;
}

EngineResult
lint(const std::vector<SourceFile> &files)
{
    return Engine(EngineConfig{}).runOnFiles(files);
}

bool
frameMentions(const std::vector<std::string> &frames, size_t i,
              const std::string &needle)
{
    return i < frames.size() &&
           frames[i].find(needle) != std::string::npos;
}

// ----------------------------------------------------------------- FRK2

TEST(Interproc, ForkPathReachesBufferedStdioInHelper)
{
    auto res = lint({
        loadFixture("frk2_root.cpp", "src/lightsss/replay_root.cpp"),
        loadFixture("frk2_helper_bad.cpp", "src/util/progress.cpp"),
    });
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-FRK2-001"], 1);
    ASSERT_EQ(res.findings.size(), 1u);
    const Finding &f = res.findings[0];
    EXPECT_EQ(f.path, "src/util/progress.cpp");
    // Witness: root first, defect site last.
    ASSERT_EQ(f.callPath.size(), 2u);
    EXPECT_TRUE(frameMentions(f.callPath, 0,
                              "minjie::lightsss::replayWindow"))
        << f.callPath[0];
    EXPECT_TRUE(frameMentions(f.callPath, 0, "src/lightsss/"))
        << f.callPath[0];
    EXPECT_TRUE(frameMentions(f.callPath, 1,
                              "minjie::util::emitProgress"))
        << f.callPath[1];
}

TEST(Interproc, SampleWorkerForkPathReachesBufferedStdio)
{
    // The sampled-simulation engine forks one worker per SimPoint
    // slice; a helper that buffers stdio on that path double-emits
    // bytes pending at fork(). src/sample/ roots must fire exactly
    // like src/lightsss/ ones.
    auto res = lint({
        loadFixture("frk2_sample_root.cpp", "src/sample/worker_root.cpp"),
        loadFixture("frk2_helper_bad.cpp", "src/util/progress.cpp"),
    });
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-FRK2-001"], 1);
    ASSERT_EQ(res.findings.size(), 1u);
    const Finding &f = res.findings[0];
    EXPECT_EQ(f.path, "src/util/progress.cpp");
    ASSERT_EQ(f.callPath.size(), 2u);
    EXPECT_TRUE(frameMentions(f.callPath, 0,
                              "minjie::sample::evalSliceForked"))
        << f.callPath[0];
    EXPECT_TRUE(frameMentions(f.callPath, 0, "src/sample/"))
        << f.callPath[0];
}

TEST(Interproc, ForkPathToleratesStderrOnlyHelper)
{
    auto res = lint({
        loadFixture("frk2_root.cpp", "src/lightsss/replay_root.cpp"),
        loadFixture("frk2_helper_clean.cpp", "src/util/progress.cpp"),
    });
    EXPECT_TRUE(res.findings.empty())
        << res.findings[0].ruleId << ": " << res.findings[0].message;
}

TEST(Interproc, ForkRuleIgnoresHelperWithNoForkRoot)
{
    // The same bad helper with no src/lightsss/ TU in the program:
    // nothing is reachable from the fork path, so nothing fires.
    auto res = lint({
        loadFixture("frk2_helper_bad.cpp", "src/util/progress.cpp"),
    });
    EXPECT_TRUE(res.findings.empty());
}

// ----------------------------------------------------------------- DET2

TEST(Interproc, DeterministicPathReachesHostRngInHelper)
{
    auto res = lint({
        loadFixture("det2_root.cpp", "src/campaign/sched_root.cpp"),
        loadFixture("det2_helper_bad.cpp", "src/util/seed_mix.cpp"),
    });
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-DET2-001"], 1);
    ASSERT_EQ(res.findings.size(), 1u);
    const Finding &f = res.findings[0];
    EXPECT_EQ(f.path, "src/util/seed_mix.cpp");
    ASSERT_EQ(f.callPath.size(), 2u);
    EXPECT_TRUE(frameMentions(f.callPath, 0,
                              "minjie::campaign::pickSeed"))
        << f.callPath[0];
    EXPECT_TRUE(frameMentions(f.callPath, 1, "minjie::util::hashSeed"))
        << f.callPath[1];
}

TEST(Interproc, CrossTuUnorderedIterationIsFlagged)
{
    // The unordered declaration and the iteration live in different
    // TUs; neither alone trips a per-file rule.
    auto res = lint({
        loadFixture("det2_rows_decl.cpp", "src/util/row_table.h"),
        loadFixture("det2_rows_use.cpp", "src/campaign/rows_use.cpp"),
    });
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-DET2-001"], 1);
    ASSERT_EQ(res.findings.size(), 1u);
    EXPECT_EQ(res.findings[0].path, "src/campaign/rows_use.cpp");
    EXPECT_NE(res.findings[0].message.find("rowsById"),
              std::string::npos)
        << res.findings[0].message;
}

TEST(Interproc, SanctionedRngSinkIsNotTraversed)
{
    // rand() lives behind the Rng:: wrapper — the sanctioned way to
    // draw randomness — so the deterministic caller stays clean.
    auto res = lint({
        loadFixture("det2_rng_root.cpp", "src/campaign/seed_draw.cpp"),
        loadFixture("det2_rng_sink.cpp", "src/util/rng.cpp"),
    });
    EXPECT_TRUE(res.findings.empty())
        << res.findings[0].ruleId << ": " << res.findings[0].message;
}

// ----------------------------------------------------------------- PRB2

TEST(Interproc, EngineCodeReachesRawArchStoreInHelper)
{
    auto res = lint({
        loadFixture("prb2_root.cpp", "src/nemu/exec_root.cpp"),
        loadFixture("prb2_helper_bad.cpp", "src/util/patch.cpp"),
    });
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-PRB2-001"], 1);
    ASSERT_EQ(res.findings.size(), 1u);
    const Finding &f = res.findings[0];
    EXPECT_EQ(f.path, "src/util/patch.cpp");
    ASSERT_EQ(f.callPath.size(), 2u);
    EXPECT_TRUE(frameMentions(f.callPath, 0,
                              "minjie::nemu::applyPatch"))
        << f.callPath[0];
    EXPECT_TRUE(frameMentions(f.callPath, 1,
                              "minjie::util::patchRegs"))
        << f.callPath[1];
}

TEST(Interproc, StoreBehindAccessorChokePointIsSanctioned)
{
    // The raw store is only reachable THROUGH the exempt ArchState
    // accessor; the BFS refuses to enter exempt files, so the helper
    // stays sanctioned.
    auto res = lint({
        loadFixture("prb2_clean_root.cpp", "src/nemu/exec_clean.cpp"),
        loadFixture("prb2_clean_choke.cpp", "src/iss/arch_state.cpp"),
        loadFixture("prb2_clean_helper.cpp", "src/util/poke.cpp"),
    });
    EXPECT_TRUE(res.findings.empty())
        << res.findings[0].ruleId << ": " << res.findings[0].message;
}

// ------------------------------------------------------------------ LCK

TEST(Interproc, IntraproceduralLockOrderCycle)
{
    auto res = lint({
        loadFixture("lck_cycle.cpp", "src/campaign/pool_fixture.cpp"),
    });
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-LCK-001"], 1);
    ASSERT_EQ(res.findings.size(), 1u);
    const Finding &f = res.findings[0];
    EXPECT_NE(f.message.find("poolMu"), std::string::npos) << f.message;
    EXPECT_NE(f.message.find("statsMu"), std::string::npos)
        << f.message;
    ASSERT_FALSE(f.callPath.empty());
}

TEST(Interproc, CrossTuLockOrderCycleThroughCall)
{
    // publishResult() holds poolMu while calling noteStat() — defined
    // in another TU — where statsMu is taken; drainStats() orders the
    // pair the other way. Neither TU alone contains both orders.
    auto res = lint({
        loadFixture("lck_inter_a.cpp", "src/campaign/pool_a.cpp"),
        loadFixture("lck_inter_b.cpp", "src/campaign/stats_b.cpp"),
    });
    auto ids = idCounts(res);
    EXPECT_EQ(ids["MJ-LCK-001"], 1);
    ASSERT_EQ(res.findings.size(), 1u);
    const Finding &f = res.findings[0];
    EXPECT_NE(f.message.find("lock-order cycle"), std::string::npos)
        << f.message;
    ASSERT_FALSE(f.callPath.empty());
}

TEST(Interproc, ConsistentLockOrderIsClean)
{
    auto res = lint({
        loadFixture("lck_clean.cpp", "src/campaign/pool_fixture.cpp"),
    });
    EXPECT_TRUE(res.findings.empty())
        << res.findings[0].ruleId << ": " << res.findings[0].message;
}

} // namespace
} // namespace minjie::analysis
