/**
 * uop-cache behaviour tests: trace organization, capacity flushes,
 * block chaining, and mid-block entry (jump targets land inside an
 * already-translated block).
 */

#include <gtest/gtest.h>

#include "nemu/nemu.h"
#include "iss/system.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::iss;
using minjie::nemu::Nemu;
namespace wl = minjie::workload;

TEST(UopCache, CapacityFlushAndRefill)
{
    // A program whose code footprint exceeds a tiny uop cache: N
    // distinct straight-line chunks chained by jumps, looped twice.
    wl::Layout layout;
    wl::Asm a(layout.codeBase);
    a.li(wl::s2, 3); // outer passes
    wl::Label top = a.boundLabel();
    for (int chunk = 0; chunk < 40; ++chunk)
        for (int i = 0; i < 16; ++i)
            a.itype(isa::Op::Addi, wl::a0, wl::a0, 1);
    a.itype(isa::Op::Addi, wl::s2, wl::s2, -1);
    a.branch(isa::Op::Bne, wl::s2, wl::zero, top);
    a.exit(0);
    wl::Program prog;
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());

    System sys(32);
    prog.loadInto(sys.dram);
    Nemu nemu(sys.bus, sys.dram, 0, prog.entry, /*uopCacheCap=*/256);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = nemu.run(100'000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(sys.simctrl.exitCode(), 0u);
    // 640+ instructions of code with a 256-entry cache: flushes and
    // retranslations are mandatory, and results stay correct.
    EXPECT_GE(nemu.stats().flushes, 3u);
    EXPECT_GT(nemu.stats().translations, 640u);
    EXPECT_EQ(nemu.state().x[wl::a0], 3u * 40 * 16);
}

TEST(UopCache, MidBlockEntry)
{
    // A backward branch targets the middle of a previously-translated
    // block: the per-instruction pc map must resolve it.
    wl::Layout layout;
    wl::Asm a(layout.codeBase);
    a.li(wl::a0, 0);
    a.li(wl::s2, 10);
    a.itype(isa::Op::Addi, wl::a0, wl::a0, 100); // block head (run once)
    wl::Label mid = a.boundLabel();              // mid-block target
    a.itype(isa::Op::Addi, wl::a0, wl::a0, 1);
    a.itype(isa::Op::Addi, wl::s2, wl::s2, -1);
    a.branch(isa::Op::Bne, wl::s2, wl::zero, mid);
    a.exit(0);
    wl::Program prog;
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());

    System sys(32);
    prog.loadInto(sys.dram);
    Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = nemu.run(10'000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(nemu.state().x[wl::a0], 110u);
}

TEST(UopCache, ChainingResolvesOnce)
{
    // A steady loop: after warmup, branch targets are chained and the
    // resolve counter stops growing.
    auto prog = wl::sumProgram(5000);
    System sys(32);
    prog.loadInto(sys.dram);
    Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });
    nemu.run(1'000);
    uint64_t early = nemu.stats().chainResolves;
    nemu.run(1'000'000);
    uint64_t late = nemu.stats().chainResolves;
    // Thousands of loop iterations later, only a handful of new edges.
    EXPECT_LT(late - early, 20u);
}

TEST(UopCache, TraceOrganizationGroupsSequentially)
{
    // Within a block, successive instructions occupy successive uop
    // slots (the "+1" advance): observable indirectly via translation
    // count == static code size on a straight-line program.
    wl::Layout layout;
    wl::Asm a(layout.codeBase);
    for (int i = 0; i < 50; ++i)
        a.itype(isa::Op::Addi, wl::a0, wl::a0, 1);
    a.exit(0);
    wl::Program prog;
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());

    System sys(32);
    prog.loadInto(sys.dram);
    Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = nemu.run(10'000);
    ASSERT_TRUE(r.halted);
    // Straight-line code: every instruction translated exactly once.
    EXPECT_LE(nemu.stats().translations, 70u);
    EXPECT_EQ(nemu.state().x[wl::a0], 50u);
}

} // namespace
