#include <gtest/gtest.h>

#include "common/clock.h"
#include "nemu/nemu.h"
#include "iss/system.h"
#include "workload/programs.h"

namespace {

using namespace minjie;
using namespace minjie::iss;
using minjie::nemu::Nemu;
namespace wl = minjie::workload;

TEST(Nemu, SumProgramFastPath)
{
    System sys(32);
    auto prog = wl::sumProgram(1000);
    prog.loadInto(sys.dram);
    Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = nemu.run(1'000'000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(sys.simctrl.exitCode(), 0u);
    EXPECT_GT(r.executed, 3000u);
    EXPECT_LT(r.executed, 3200u);
    // The loop should be served from the uop cache, not retranslated.
    EXPECT_LT(nemu.stats().translations, 100u);
}

TEST(Nemu, InstretMatchesExecuted)
{
    System sys(32);
    auto prog = wl::sumProgram(123);
    prog.loadInto(sys.dram);
    Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });
    auto r = nemu.run(100'000);
    EXPECT_EQ(nemu.state().instret, r.executed);
    EXPECT_EQ(nemu.state().csr.minstret, r.executed);
}

TEST(Nemu, MatchesSpikeOnRandomPrograms)
{
    for (int seed = 0; seed < 20; ++seed) {
        Rng rng(7000 + seed);
        auto prog = wl::randomProgram(rng, 300, /*withFp=*/true);

        System sysA(32), sysB(32);
        prog.loadInto(sysA.dram);
        prog.loadInto(sysB.dram);

        Nemu nemu(sysA.bus, sysA.dram, 0, prog.entry);
        nemu.setHaltFn([&] { return sysA.simctrl.exited(); });
        SpikeInterp spike(sysB.bus, 0, prog.entry);
        spike.setHaltFn([&] { return sysB.simctrl.exited(); });

        auto ra = nemu.run(2'000'000);
        auto rb = spike.run(2'000'000);
        ASSERT_TRUE(ra.halted) << "seed " << seed;
        ASSERT_TRUE(rb.halted) << "seed " << seed;

        const auto &a = nemu.state();
        const auto &b = spike.state();
        for (int i = 0; i < 32; ++i) {
            ASSERT_EQ(a.x[i], b.x[i]) << "x" << i << " seed " << seed;
            ASSERT_EQ(a.f[i], b.f[i]) << "f" << i << " seed " << seed;
        }
        ASSERT_EQ(a.csr.fflags, b.csr.fflags) << "seed " << seed;
        for (unsigned off = 0; off < 4096; off += 8) {
            uint64_t va, vb;
            sysA.bus.read(0x80100000 + off, 8, va);
            sysB.bus.read(0x80100000 + off, 8, vb);
            ASSERT_EQ(va, vb) << "mem off " << off << " seed " << seed;
        }
    }
}

TEST(Nemu, MatchesSpikeOnProxyBenchmark)
{
    auto prog = wl::buildProxy(wl::specIntSuite()[2], 50); // mcf proxy
    System sysA(128), sysB(128);
    prog.loadInto(sysA.dram);
    prog.loadInto(sysB.dram);

    Nemu nemu(sysA.bus, sysA.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sysA.simctrl.exited(); });
    SpikeInterp spike(sysB.bus, 0, prog.entry);
    spike.setHaltFn([&] { return sysB.simctrl.exited(); });

    auto ra = nemu.run(50'000'000);
    auto rb = spike.run(50'000'000);
    ASSERT_TRUE(ra.halted);
    ASSERT_TRUE(rb.halted);
    EXPECT_EQ(ra.executed, rb.executed);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(nemu.state().x[i], spike.state().x[i]) << "x" << i;
}

TEST(Nemu, StepPathMatchesFastPath)
{
    auto prog = wl::sumProgram(500);
    System sysA(32), sysB(32);
    prog.loadInto(sysA.dram);
    prog.loadInto(sysB.dram);

    Nemu fast(sysA.bus, sysA.dram, 0, prog.entry);
    fast.setHaltFn([&] { return sysA.simctrl.exited(); });
    Nemu stepper(sysB.bus, sysB.dram, 0, prog.entry);
    stepper.setHaltFn([&] { return sysB.simctrl.exited(); });

    auto ra = fast.run(100'000);
    auto rb = stepper.Interp::run(100'000); // step-by-step path
    ASSERT_TRUE(ra.halted);
    ASSERT_TRUE(rb.halted);
    EXPECT_EQ(ra.executed, rb.executed);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(fast.state().x[i], stepper.state().x[i]) << "x" << i;
}

TEST(Nemu, UopCacheFlushOnFenceI)
{
    System sys(32);
    auto prog = wl::sumProgram(10);
    prog.loadInto(sys.dram);
    Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });
    nemu.run(100'000);
    uint64_t flushesBefore = nemu.stats().flushes;
    nemu.flushUopCache();
    EXPECT_EQ(nemu.stats().flushes, flushesBefore + 1);
}

TEST(Nemu, BlockHookSeesBasicBlocks)
{
    System sys(32);
    auto prog = wl::sumProgram(100);
    prog.loadInto(sys.dram);
    Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sys.simctrl.exited(); });

    uint64_t blocks = 0, insts = 0;
    nemu.setBlockHook([&](Addr pc, uint32_t len) {
        ++blocks;
        insts += len;
        EXPECT_GT(len, 0u);
        EXPECT_GE(pc, DRAM_BASE);
    });
    auto r = nemu.Interp::run(100'000);
    ASSERT_TRUE(r.halted);
    // Every loop iteration ends in a branch: ~100 blocks.
    EXPECT_GT(blocks, 100u);
    // All counted instructions belong to some block (the final spin
    // block may be in flight when the run stops).
    EXPECT_LE(insts, r.executed);
    EXPECT_GT(insts, r.executed - 10);
}

TEST(Nemu, FastPathIsFasterThanSpike)
{
    auto prog = wl::coremarkProxy(300);
    System sysA(64), sysB(64);
    prog.loadInto(sysA.dram);
    prog.loadInto(sysB.dram);

    Nemu nemu(sysA.bus, sysA.dram, 0, prog.entry);
    nemu.setHaltFn([&] { return sysA.simctrl.exited(); });
    SpikeInterp spike(sysB.bus, 0, prog.entry);
    spike.setHaltFn([&] { return sysB.simctrl.exited(); });

    Stopwatch sw;
    auto ra = nemu.run(100'000'000);
    double nemuTime = sw.elapsedSec();
    sw.reset();
    auto rb = spike.run(100'000'000);
    double spikeTime = sw.elapsedSec();
    ASSERT_TRUE(ra.halted);
    ASSERT_TRUE(rb.halted);
    // The paper reports ~5x; require at least 1.5x to keep the test
    // robust on slow CI machines.
    EXPECT_LT(nemuTime * 1.5, spikeTime)
        << "nemu " << nemuTime << "s vs spike " << spikeTime << "s";
}

} // namespace
