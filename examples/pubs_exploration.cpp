/**
 * @file
 * The Section IV-D feature-exploration case study: implement and
 * evaluate an academic micro-architecture idea (PUBS, [Ando MICRO'18])
 * on XIANGSHAN "within hours".
 *
 * The PUBS issue policy is already implemented as a CoreConfig switch
 * (the paper's four components — ConfTable / BrSliceTable / DefTable /
 * PriorityIssue — map onto TAGE confidence, the rename-map producer
 * walk, and the priority-first selection in the reservation stations).
 * This example reproduces the evaluation narrative: measure AGE vs
 * PUBS on sjeng, then explain the null result with the ready-count
 * counters of Figure 15.
 *
 * Build & run:  ./build/examples/pubs_exploration
 */

#include <cstdio>

#include "workload/programs.h"
#include "xiangshan/soc.h"

using namespace minjie;
using namespace minjie::xs;
namespace wl = minjie::workload;

namespace {

struct Measurement
{
    double ipc;
    double readyGt2Pct;
    double hiPriPct;
};

Measurement
run(IssuePolicy policy, const wl::Program &prog)
{
    CoreConfig cfg = CoreConfig::nh();
    cfg.policy = policy;
    Soc soc(cfg);
    prog.loadInto(soc.system().dram);
    soc.setEntry(prog.entry);
    soc.runUntilInstrs(250'000, 100'000'000);

    const auto &p = soc.core(0).perf();
    double gt2 = 0;
    for (unsigned b = 3; b < PerfCounters::READY_BUCKETS; ++b)
        gt2 += static_cast<double>(p.readyHist[b]);
    return {p.ipc(),
            p.readySamples
                ? 100.0 * gt2 / static_cast<double>(p.readySamples)
                : 0.0,
            p.instrs ? 100.0 * static_cast<double>(p.highPriorityInsts) /
                           static_cast<double>(p.instrs)
                     : 0.0};
}

} // namespace

int
main()
{
    std::printf("=== Feature exploration: PUBS on XIANGSHAN (paper "
                "Section IV-D) ===\n\n");
    std::printf("Paper timeline: 4 iterative features, <200 minutes, "
                "~300 lines of Chisel.\n");
    std::printf("Here: IssuePolicy::Pubs + markPubsSlice() in the "
                "cycle model (~60 lines of C++).\n\n");

    std::printf("%-10s %10s %10s %12s %12s\n", "checkpoint", "AGE ipc",
                "PUBS ipc", "delta", "hi-pri insts");
    for (int seed = 1; seed <= 5; ++seed) {
        auto prog = wl::buildProxy(wl::specIntSuite()[5], 1'000'000,
                                   seed); // sjeng
        auto age = run(IssuePolicy::Age, prog);
        auto pubs = run(IssuePolicy::Pubs, prog);
        std::printf("sjeng_%-4d %10.3f %10.3f %+11.2f%% %11.1f%%\n",
                    seed, age.ipc, pubs.ipc,
                    age.ipc ? 100.0 * (pubs.ipc / age.ipc - 1) : 0.0,
                    pubs.hiPriPct);
    }

    // The explanatory counters (paper Figure 15 analysis).
    auto prog = wl::buildProxy(wl::specIntSuite()[5], 1'000'000, 1);
    auto age = run(IssuePolicy::Age, prog);
    std::printf("\nwhy the null result: only %.1f%% of RS-cycles have "
                ">2 ready instructions\n(paper: 12.8%%), so the "
                "priority selector almost never gets to reorder;\n"
                "XIANGSHAN's wide distributed issue absorbs the "
                "unconfident slices that PUBS\nwould have accelerated "
                "on a narrower machine (the PUBS paper reported +6.5%% "
                "on sjeng).\n",
                age.readyGt2Pct);
    return 0;
}
