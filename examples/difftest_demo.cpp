/**
 * @file
 * The Section IV-C debugging story, end to end:
 *
 * A dual-core XIANGSHAN runs a shared-memory workload while DiffTest
 * checks every commit against per-core NEMU references (with the Global
 * Memory rule reconciling cross-core stores), LightSSS snapshots the
 * whole simulator process periodically, and ArchDB records cache
 * transactions. A data-corruption fault is injected into one core's
 * load path mid-run; DiffTest flags the mismatch, LightSSS wakes the
 * pre-failure snapshot which replays the failure window with debug
 * logging enabled, and the ArchDB transaction table is queried for the
 * affected cache line — exactly the paper's bug-hunt workflow.
 *
 * Build & run:  ./build/examples/difftest_demo
 */

#include <cstdio>

#include "archdb/archdb.h"
#include "common/log.h"
#include "difftest/difftest.h"
#include "lightsss/lightsss.h"
#include "workload/programs.h"
#include "xiangshan/soc.h"

using namespace minjie;
namespace wl = minjie::workload;

namespace {

/** Build the demo system fresh (both the main run and the replay child
 *  construct the identical simulator; the child then reproduces the
 *  window from its copy-on-write snapshot state). */
struct Demo
{
    xs::Soc soc{xs::CoreConfig::nh(), 2};
    difftest::DiffTest dt{soc};
    archdb::ArchDB db;
    wl::Program prog = wl::coremarkProxy(2000);

    Demo()
    {
        prog.loadInto(soc.system().dram);
        for (const auto &seg : prog.segments)
            dt.loadRefMemory(seg.base, seg.bytes.data(),
                             seg.bytes.size());
        soc.setEntry(prog.entry);
        dt.resetRefs(prog.entry);
        soc.mem().setTxnLog([this](const uarch::Transaction &t) {
            db.recordTransaction(t);
        });
    }
};

} // namespace

int
main()
{
    std::printf("=== DiffTest + LightSSS + ArchDB demo (paper Section "
                "IV-C) ===\n\n");

    Demo demo;
    lightsss::LightSSS sss({50'000, 2, true});

    // Inject a single-bit corruption into core 1's load path after it
    // has been running for a while (the L2 MSHR bug stand-in).
    const Cycle injectAt = 180'000;
    bool injected = false;

    std::string mismatch;
    demo.dt.setOnMismatch([&](const std::string &m) { mismatch = m; });

    Cycle cycle = 0;
    bool replayMode = false;
    Cycle replayUntil = 0;

    while (cycle < 5'000'000) {
        auto role = sss.tick(cycle);
        if (role == lightsss::LightSSS::Role::ReplayChild) {
            // We are the woken snapshot: turn on debug logging and
            // replay the window (paper: "3 minutes to re-simulate the
            // last 30.8K cycles with waveform enabled").
            replayMode = true;
            replayUntil = sss.replayTargetCycle();
            Logger::instance().setOutputFile("difftest_demo_replay.log");
            Logger::instance().setLevel(LogLevel::Debug);
            MJ_DEBUG("replay starts at cycle %llu, target %llu",
                     static_cast<unsigned long long>(cycle),
                     static_cast<unsigned long long>(replayUntil));
        }

        if (!injected && cycle >= injectAt) {
            demo.soc.core(1).injectLoadFault(0x0000000000010000ULL);
            injected = true;
        }

        bool allDone = true;
        for (unsigned c = 0; c < demo.soc.numCores(); ++c) {
            if (!demo.soc.core(c).done()) {
                demo.soc.core(c).tick();
                allDone = false;
            }
        }
        if (replayMode && Logger::instance().debugEnabled() &&
            (cycle % 1000) == 0) {
            MJ_DEBUG("cycle %llu: core0 %llu instrs, core1 %llu instrs",
                     static_cast<unsigned long long>(cycle),
                     static_cast<unsigned long long>(
                         demo.soc.core(0).perf().instrs),
                     static_cast<unsigned long long>(
                         demo.soc.core(1).perf().instrs));
        }
        ++cycle;

        if (!demo.dt.ok()) {
            if (replayMode) {
                MJ_DEBUG("failure reproduced at cycle %llu: %s",
                         static_cast<unsigned long long>(cycle),
                         demo.dt.failures().front().c_str());
                std::printf("[replay child] failure reproduced at cycle "
                            "%llu; debug log written\n",
                            static_cast<unsigned long long>(cycle));
                lightsss::LightSSS::finishReplay(0);
            }
            break;
        }
        if (allDone)
            break;
    }

    if (demo.dt.ok()) {
        std::printf("no mismatch detected (unexpected for this demo)\n");
        return 1;
    }

    std::printf("[difftest] mismatch at cycle %llu after %llu checked "
                "commits:\n  %s\n\n",
                static_cast<unsigned long long>(cycle),
                static_cast<unsigned long long>(
                    demo.dt.stats().commitsChecked),
                mismatch.c_str());

    std::printf("[lightsss] waking the pre-failure snapshot for a "
                "debug-mode replay...\n");
    if (sss.triggerReplay(cycle)) {
        std::printf("[lightsss] replay finished; see "
                    "difftest_demo_replay.log\n\n");
    } else {
        std::printf("[lightsss] no snapshot available\n\n");
    }

    // ArchDB: query the transactions on the affected line, as the
    // paper does to spot the Acquire/Probe overlap.
    std::printf("[archdb] %s\n", demo.db.report().c_str());

    std::printf("demo complete: fault injected -> DiffTest caught -> "
                "LightSSS replayed -> ArchDB queried\n");
    return 0;
}
