/**
 * @file
 * Multi-core co-simulation with the Global Memory diff-rule (paper
 * Section III-B2b): two cores hammer a shared lock-free counter with
 * lr/sc and plain loads/stores; each core's single-core REF cannot know
 * the other hart's stores, so DiffTest reconciles load values through
 * the Global Memory while the permission scoreboard audits the cache
 * coherence transactions underneath.
 *
 * Build & run:  ./build/examples/multicore_difftest
 */

#include <cstdio>

#include "difftest/difftest.h"
#include "workload/programs.h"
#include "xiangshan/soc.h"

using namespace minjie;
namespace wl = minjie::workload;

namespace {

/** Both harts: atomically increment a shared counter 500 times with
 *  lr/sc retry loops, then spin on a flag word written by hart 0. */
wl::Program
sharedCounterProgram()
{
    wl::Layout layout;
    wl::Asm a(layout.codeBase);
    const Addr counter = layout.dataBase;

    a.li(wl::s0, counter);
    a.li(wl::s2, 500);

    wl::Label loop = a.newLabel();
    wl::Label done = a.newLabel();
    a.bind(loop);
    a.branch(isa::Op::Beq, wl::s2, wl::zero, done);
    // retry: lr/sc increment. The always-taken branch between lr and
    // sc forces them into different fetch groups so the sibling hart
    // can interleave stores into the reservation window — the paper's
    // "SC instructions are allowed to fail on a timeout between the LR
    // and SC" scenario.
    wl::Label retry = a.boundLabel();
    a.rtype(isa::Op::LrD, wl::t1, wl::s0, 0);
    wl::Label cont = a.newLabel();
    a.branch(isa::Op::Beq, wl::t1, wl::t1, cont); // always taken
    a.bind(cont);
    a.itype(isa::Op::Addi, wl::t1, wl::t1, 1);
    a.rtype(isa::Op::ScD, wl::t2, wl::s0, wl::t1);
    a.branch(isa::Op::Bne, wl::t2, wl::zero, retry);
    // plus a plain shared-memory read/write pair
    a.load(isa::Op::Ld, wl::t3, 8, wl::s0);
    a.rtype(isa::Op::Add, wl::t3, wl::t3, wl::t1);
    a.store(isa::Op::Sd, wl::t3, 8, wl::s0);
    a.itype(isa::Op::Addi, wl::s2, wl::s2, -1);
    a.j(loop);

    a.bind(done);
    a.exit(0);

    wl::Program prog;
    prog.name = "shared-counter";
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());
    prog.segments.push_back({layout.dataBase,
                             std::vector<uint8_t>(64, 0)});
    return prog;
}

} // namespace

int
main()
{
    std::printf("=== dual-core DiffTest with the Global Memory rule "
                "===\n\n");

    xs::Soc soc(xs::CoreConfig::nh(), 2);
    difftest::DiffTest dt(soc);

    auto prog = sharedCounterProgram();
    prog.loadInto(soc.system().dram);
    for (const auto &seg : prog.segments)
        dt.loadRefMemory(seg.base, seg.bytes.data(), seg.bytes.size());
    soc.setEntry(prog.entry);
    dt.resetRefs(prog.entry);

    Cycle cycles = dt.run(20'000'000);

    uint64_t counter = 0;
    soc.system().dram.read(0x80100000, 8, counter);

    std::printf("simulated %llu cycles\n",
                static_cast<unsigned long long>(cycles));
    std::printf("shared counter final value: %llu (first-exiting hart "
                "did 500; the\n  other stopped at the shared halt, so "
                "slightly under 1000 is expected;\n  every increment "
                "that DID commit is atomic)\n",
                static_cast<unsigned long long>(counter));
    std::printf("commits checked:        %llu\n",
                static_cast<unsigned long long>(
                    dt.stats().commitsChecked));
    std::printf("global-memory patches:  %llu  <- cross-core values "
                "reconciled\n",
                static_cast<unsigned long long>(
                    dt.stats().globalMemoryPatches));
    std::printf("forced SC failures:     %llu  <- sc-failure diff-rule\n",
                static_cast<unsigned long long>(
                    dt.stats().forcedScFailures));
    std::printf("coherence transactions: %llu, scoreboard %s\n",
                static_cast<unsigned long long>(
                    dt.scoreboard().transactionsChecked()),
                dt.scoreboard().ok() ? "clean" : "VIOLATED");
    std::printf("difftest verdict:       %s\n",
                dt.ok() ? "PASS" : dt.failures().front().c_str());
    return dt.ok() && dt.scoreboard().ok() ? 0 : 1;
}
