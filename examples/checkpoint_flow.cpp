/**
 * @file
 * The Section III-D performance-evaluation workflow:
 *
 *   profile (NEMU + BBV)  ->  SimPoint clustering  ->  checkpoints  ->
 *   restore each into a XIANGSHAN instance  ->  weighted CPI estimate,
 *
 * compared against the full-program cycle simulation (the paper's RTL
 * simulation deviates 5-10% from hardware; our estimate's error is
 * dominated by micro-architectural warmup, which the paper names as
 * future work).
 *
 * Build & run:  ./build/examples/checkpoint_flow
 */

#include <cstdio>

#include "checkpoint/generator.h"
#include "xiangshan/soc.h"

using namespace minjie;
using namespace minjie::checkpoint;
namespace wl = minjie::workload;

int
main()
{
    auto prog = wl::buildProxy(wl::specIntSuite()[4], 4000); // hmmer
    std::printf("workload: %s proxy\n\n", prog.name.c_str());

    // ---- full-program reference measurement ----
    std::printf("[1/3] full cycle-model run...\n");
    xs::Soc full(xs::CoreConfig::nh());
    prog.loadInto(full.system().dram);
    full.setEntry(prog.entry);
    auto r = full.run(100'000'000);
    double fullIpc = full.core(0).perf().ipc();
    std::printf("      %llu instructions, ipc %.3f%s\n",
                static_cast<unsigned long long>(full.core(0).perf().instrs),
                fullIpc, r.completed ? "" : " (cycle limit)");

    // ---- checkpoint generation ----
    std::printf("[2/3] profiling + SimPoint + checkpoint generation...\n");
    auto gen = generateCheckpoints(prog, 100'000, 6, 100'000'000);
    std::printf("      %llu instructions profiled at %.0f MIPS; "
                "%zu checkpoints generated at %.0f MIPS\n",
                static_cast<unsigned long long>(gen.totalInsts),
                gen.profileMips, gen.checkpoints.size(),
                gen.generateMips);

    // ---- parallel-style estimation (sequential here; the paper
    // spreads ~1K checkpoints over five 128-core servers) ----
    std::printf("[3/3] restoring checkpoints into XIANGSHAN...\n");
    std::vector<double> cpis, weights;
    for (size_t i = 0; i < gen.checkpoints.size(); ++i) {
        const auto &cp = gen.checkpoints[i];
        xs::Soc soc(xs::CoreConfig::nh());
        if (!restore(cp, soc.core(0).oracleState(),
                     soc.system().dram)) {
            std::printf("      checkpoint %zu: restore FAILED\n", i);
            return 1;
        }
        // Warmup then measure (paper: 20M + 20M; scaled down here).
        soc.runUntilInstrs(30'000, 50'000'000);
        Cycle warmCycles = soc.core(0).perf().cycles;
        InstCount warmInstrs = soc.core(0).perf().instrs;
        soc.runUntilInstrs(warmInstrs + 50'000, 100'000'000);
        double cpi =
            static_cast<double>(soc.core(0).perf().cycles - warmCycles) /
            static_cast<double>(std::max<InstCount>(
                1, soc.core(0).perf().instrs - warmInstrs));
        cpis.push_back(cpi);
        weights.push_back(cp.weight);
        std::printf("      checkpoint %zu @%9llu insts  weight %5.1f%%  "
                    "cpi %.3f\n",
                    i, static_cast<unsigned long long>(cp.instCount),
                    cp.weight * 100, cpi);
    }

    double estCpi = weightedCpi(cpis, weights);
    double estIpc = estCpi > 0 ? 1.0 / estCpi : 0;
    std::printf("\nweighted estimate: ipc %.3f   full run: ipc %.3f   "
                "deviation: %+.1f%%\n",
                estIpc, fullIpc,
                fullIpc > 0 ? 100.0 * (estIpc / fullIpc - 1) : 0.0);
    std::printf("(paper: 5-10%% deviation against silicon; warmup "
                "dominates the error)\n");
    return 0;
}
