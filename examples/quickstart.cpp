/**
 * @file
 * Quickstart: the 5-minute tour of the MINJIE platform.
 *
 * 1. Assemble a small RV64 program with the workload builder.
 * 2. Run it on NEMU (the fast interpreter / DiffTest REF).
 * 3. Run it on the XIANGSHAN cycle model under DiffTest co-simulation.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "difftest/difftest.h"
#include "iss/system.h"
#include "nemu/nemu.h"
#include "workload/programs.h"
#include "xiangshan/soc.h"

using namespace minjie;
namespace wl = minjie::workload;

int
main()
{
    // ---- 1. assemble a program: sum of squares 1..100 ----
    wl::Layout layout;
    wl::Asm a(layout.codeBase);
    a.li(wl::a0, 0);   // acc
    a.li(wl::a1, 100); // i
    wl::Label loop = a.boundLabel();
    a.rtype(isa::Op::Mul, wl::a2, wl::a1, wl::a1);
    a.rtype(isa::Op::Add, wl::a0, wl::a0, wl::a2);
    a.itype(isa::Op::Addi, wl::a1, wl::a1, -1);
    a.branch(isa::Op::Bne, wl::a1, wl::zero, loop);
    a.exit(0);

    wl::Program prog;
    prog.name = "sum-of-squares";
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());

    std::printf("assembled %zu bytes of RV64 code\n",
                prog.segments[0].bytes.size());

    // ---- 2. run on NEMU ----
    {
        iss::System sys(64);
        prog.loadInto(sys.dram);
        nemu::Nemu nemu(sys.bus, sys.dram, 0, prog.entry);
        nemu.setHaltFn([&] { return sys.simctrl.exited(); });
        auto r = nemu.run(1'000'000);
        std::printf("[nemu]      executed %llu instructions, "
                    "a0 = %llu (expected 338350)\n",
                    static_cast<unsigned long long>(r.executed),
                    static_cast<unsigned long long>(nemu.state().x[10]));
    }

    // ---- 3. run on XIANGSHAN with DiffTest attached ----
    {
        xs::Soc soc(xs::CoreConfig::nh());
        difftest::DiffTest dt(soc);
        prog.loadInto(soc.system().dram);
        for (const auto &seg : prog.segments)
            dt.loadRefMemory(seg.base, seg.bytes.data(),
                             seg.bytes.size());
        soc.setEntry(prog.entry);
        dt.resetRefs(prog.entry);

        Cycle cycles = dt.run(10'000'000);
        const auto &p = soc.core(0).perf();
        std::printf("[xiangshan] %llu instructions in %llu cycles "
                    "(ipc %.2f), a0 = %llu\n",
                    static_cast<unsigned long long>(p.instrs),
                    static_cast<unsigned long long>(cycles), p.ipc(),
                    static_cast<unsigned long long>(
                        soc.core(0).oracleState().x[10]));
        std::printf("[difftest]  %llu commits checked, %s\n",
                    static_cast<unsigned long long>(
                        dt.stats().commitsChecked),
                    dt.ok() ? "no mismatches" : "MISMATCH FOUND");
        if (!dt.ok()) {
            std::printf("  %s\n", dt.failures().front().c_str());
            return 1;
        }
    }
    std::printf("quickstart OK\n");
    return 0;
}
