file(REMOVE_RECURSE
  "CMakeFiles/minjie-sim.dir/minjie_sim.cpp.o"
  "CMakeFiles/minjie-sim.dir/minjie_sim.cpp.o.d"
  "minjie-sim"
  "minjie-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minjie-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
