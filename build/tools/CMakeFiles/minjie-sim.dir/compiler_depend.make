# Empty compiler generated dependencies file for minjie-sim.
# This may be replaced when dependencies are built.
