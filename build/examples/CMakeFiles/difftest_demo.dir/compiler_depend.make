# Empty compiler generated dependencies file for difftest_demo.
# This may be replaced when dependencies are built.
