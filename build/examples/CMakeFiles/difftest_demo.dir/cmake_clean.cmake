file(REMOVE_RECURSE
  "CMakeFiles/difftest_demo.dir/difftest_demo.cpp.o"
  "CMakeFiles/difftest_demo.dir/difftest_demo.cpp.o.d"
  "difftest_demo"
  "difftest_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftest_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
