# Empty dependencies file for multicore_difftest.
# This may be replaced when dependencies are built.
