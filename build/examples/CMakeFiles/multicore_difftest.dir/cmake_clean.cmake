file(REMOVE_RECURSE
  "CMakeFiles/multicore_difftest.dir/multicore_difftest.cpp.o"
  "CMakeFiles/multicore_difftest.dir/multicore_difftest.cpp.o.d"
  "multicore_difftest"
  "multicore_difftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_difftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
