file(REMOVE_RECURSE
  "CMakeFiles/pubs_exploration.dir/pubs_exploration.cpp.o"
  "CMakeFiles/pubs_exploration.dir/pubs_exploration.cpp.o.d"
  "pubs_exploration"
  "pubs_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubs_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
