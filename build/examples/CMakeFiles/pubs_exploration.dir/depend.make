# Empty dependencies file for pubs_exploration.
# This may be replaced when dependencies are built.
