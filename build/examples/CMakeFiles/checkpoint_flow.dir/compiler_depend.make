# Empty compiler generated dependencies file for checkpoint_flow.
# This may be replaced when dependencies are built.
