file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_flow.dir/checkpoint_flow.cpp.o"
  "CMakeFiles/checkpoint_flow.dir/checkpoint_flow.cpp.o.d"
  "checkpoint_flow"
  "checkpoint_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
