file(REMOVE_RECURSE
  "CMakeFiles/fig15_ready_dist.dir/fig15_ready_dist.cpp.o"
  "CMakeFiles/fig15_ready_dist.dir/fig15_ready_dist.cpp.o.d"
  "fig15_ready_dist"
  "fig15_ready_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ready_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
