# Empty dependencies file for fig15_ready_dist.
# This may be replaced when dependencies are built.
