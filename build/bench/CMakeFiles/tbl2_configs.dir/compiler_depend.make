# Empty compiler generated dependencies file for tbl2_configs.
# This may be replaced when dependencies are built.
