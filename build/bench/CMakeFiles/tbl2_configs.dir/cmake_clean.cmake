file(REMOVE_RECURSE
  "CMakeFiles/tbl2_configs.dir/tbl2_configs.cpp.o"
  "CMakeFiles/tbl2_configs.dir/tbl2_configs.cpp.o.d"
  "tbl2_configs"
  "tbl2_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl2_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
