# Empty compiler generated dependencies file for fig9_checkpoints.
# This may be replaced when dependencies are built.
