file(REMOVE_RECURSE
  "CMakeFiles/fig9_checkpoints.dir/fig9_checkpoints.cpp.o"
  "CMakeFiles/fig9_checkpoints.dir/fig9_checkpoints.cpp.o.d"
  "fig9_checkpoints"
  "fig9_checkpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_checkpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
