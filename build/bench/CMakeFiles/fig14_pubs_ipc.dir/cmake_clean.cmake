file(REMOVE_RECURSE
  "CMakeFiles/fig14_pubs_ipc.dir/fig14_pubs_ipc.cpp.o"
  "CMakeFiles/fig14_pubs_ipc.dir/fig14_pubs_ipc.cpp.o.d"
  "fig14_pubs_ipc"
  "fig14_pubs_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_pubs_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
