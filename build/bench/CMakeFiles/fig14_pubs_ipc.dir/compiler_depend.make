# Empty compiler generated dependencies file for fig14_pubs_ipc.
# This may be replaced when dependencies are built.
