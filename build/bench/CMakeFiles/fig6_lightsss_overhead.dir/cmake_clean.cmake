file(REMOVE_RECURSE
  "CMakeFiles/fig6_lightsss_overhead.dir/fig6_lightsss_overhead.cpp.o"
  "CMakeFiles/fig6_lightsss_overhead.dir/fig6_lightsss_overhead.cpp.o.d"
  "fig6_lightsss_overhead"
  "fig6_lightsss_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lightsss_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
