
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_lightsss_overhead.cpp" "bench/CMakeFiles/fig6_lightsss_overhead.dir/fig6_lightsss_overhead.cpp.o" "gcc" "bench/CMakeFiles/fig6_lightsss_overhead.dir/fig6_lightsss_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mj_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/fp/CMakeFiles/mj_fp.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/mj_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mj_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/nemu/CMakeFiles/mj_nemu.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/mj_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/xiangshan/CMakeFiles/mj_xiangshan.dir/DependInfo.cmake"
  "/root/repo/build/src/difftest/CMakeFiles/mj_difftest.dir/DependInfo.cmake"
  "/root/repo/build/src/lightsss/CMakeFiles/mj_lightsss.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/mj_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/archdb/CMakeFiles/mj_archdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
