# Empty dependencies file for fig6_lightsss_overhead.
# This may be replaced when dependencies are built.
