file(REMOVE_RECURSE
  "CMakeFiles/tbl1_snapshot_schemes.dir/tbl1_snapshot_schemes.cpp.o"
  "CMakeFiles/tbl1_snapshot_schemes.dir/tbl1_snapshot_schemes.cpp.o.d"
  "tbl1_snapshot_schemes"
  "tbl1_snapshot_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl1_snapshot_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
