# Empty compiler generated dependencies file for tbl1_snapshot_schemes.
# This may be replaced when dependencies are built.
