file(REMOVE_RECURSE
  "CMakeFiles/fig12_spec_scores.dir/fig12_spec_scores.cpp.o"
  "CMakeFiles/fig12_spec_scores.dir/fig12_spec_scores.cpp.o.d"
  "fig12_spec_scores"
  "fig12_spec_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_spec_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
