# Empty compiler generated dependencies file for fig12_spec_scores.
# This may be replaced when dependencies are built.
