# Empty compiler generated dependencies file for fig8_interp_mips.
# This may be replaced when dependencies are built.
