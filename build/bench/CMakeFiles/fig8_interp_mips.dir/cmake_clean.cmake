file(REMOVE_RECURSE
  "CMakeFiles/fig8_interp_mips.dir/fig8_interp_mips.cpp.o"
  "CMakeFiles/fig8_interp_mips.dir/fig8_interp_mips.cpp.o.d"
  "fig8_interp_mips"
  "fig8_interp_mips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_interp_mips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
