# Empty dependencies file for nemu_test.
# This may be replaced when dependencies are built.
