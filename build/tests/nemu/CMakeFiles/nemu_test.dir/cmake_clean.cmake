file(REMOVE_RECURSE
  "CMakeFiles/nemu_test.dir/nemu_test.cpp.o"
  "CMakeFiles/nemu_test.dir/nemu_test.cpp.o.d"
  "CMakeFiles/nemu_test.dir/uopcache_test.cpp.o"
  "CMakeFiles/nemu_test.dir/uopcache_test.cpp.o.d"
  "nemu_test"
  "nemu_test.pdb"
  "nemu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
