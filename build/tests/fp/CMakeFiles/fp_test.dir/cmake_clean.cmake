file(REMOVE_RECURSE
  "CMakeFiles/fp_test.dir/ops_test.cpp.o"
  "CMakeFiles/fp_test.dir/ops_test.cpp.o.d"
  "CMakeFiles/fp_test.dir/softfloat_test.cpp.o"
  "CMakeFiles/fp_test.dir/softfloat_test.cpp.o.d"
  "fp_test"
  "fp_test.pdb"
  "fp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
