
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/isa/compressed_test.cpp" "tests/isa/CMakeFiles/isa_test.dir/compressed_test.cpp.o" "gcc" "tests/isa/CMakeFiles/isa_test.dir/compressed_test.cpp.o.d"
  "/root/repo/tests/isa/decode_test.cpp" "tests/isa/CMakeFiles/isa_test.dir/decode_test.cpp.o" "gcc" "tests/isa/CMakeFiles/isa_test.dir/decode_test.cpp.o.d"
  "/root/repo/tests/isa/encode_roundtrip_test.cpp" "tests/isa/CMakeFiles/isa_test.dir/encode_roundtrip_test.cpp.o" "gcc" "tests/isa/CMakeFiles/isa_test.dir/encode_roundtrip_test.cpp.o.d"
  "/root/repo/tests/isa/op_meta_test.cpp" "tests/isa/CMakeFiles/isa_test.dir/op_meta_test.cpp.o" "gcc" "tests/isa/CMakeFiles/isa_test.dir/op_meta_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mj_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/fp/CMakeFiles/mj_fp.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/mj_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mj_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/nemu/CMakeFiles/mj_nemu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
