# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("isa")
subdirs("mem")
subdirs("fp")
subdirs("iss")
subdirs("nemu")
subdirs("uarch")
subdirs("xiangshan")
subdirs("difftest")
subdirs("lightsss")
subdirs("checkpoint")
subdirs("archdb")
subdirs("workload")
