file(REMOVE_RECURSE
  "CMakeFiles/uarch_test.dir/cache_test.cpp.o"
  "CMakeFiles/uarch_test.dir/cache_test.cpp.o.d"
  "CMakeFiles/uarch_test.dir/coherence_property_test.cpp.o"
  "CMakeFiles/uarch_test.dir/coherence_property_test.cpp.o.d"
  "CMakeFiles/uarch_test.dir/predictors_test.cpp.o"
  "CMakeFiles/uarch_test.dir/predictors_test.cpp.o.d"
  "CMakeFiles/uarch_test.dir/tlb_test.cpp.o"
  "CMakeFiles/uarch_test.dir/tlb_test.cpp.o.d"
  "uarch_test"
  "uarch_test.pdb"
  "uarch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
