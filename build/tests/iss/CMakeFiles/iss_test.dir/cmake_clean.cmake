file(REMOVE_RECURSE
  "CMakeFiles/iss_test.dir/csr_test.cpp.o"
  "CMakeFiles/iss_test.dir/csr_test.cpp.o.d"
  "CMakeFiles/iss_test.dir/exec_test.cpp.o"
  "CMakeFiles/iss_test.dir/exec_test.cpp.o.d"
  "CMakeFiles/iss_test.dir/fuzz_cosim_test.cpp.o"
  "CMakeFiles/iss_test.dir/fuzz_cosim_test.cpp.o.d"
  "CMakeFiles/iss_test.dir/interp_test.cpp.o"
  "CMakeFiles/iss_test.dir/interp_test.cpp.o.d"
  "CMakeFiles/iss_test.dir/mmu_test.cpp.o"
  "CMakeFiles/iss_test.dir/mmu_test.cpp.o.d"
  "CMakeFiles/iss_test.dir/priv_test.cpp.o"
  "CMakeFiles/iss_test.dir/priv_test.cpp.o.d"
  "CMakeFiles/iss_test.dir/smc_test.cpp.o"
  "CMakeFiles/iss_test.dir/smc_test.cpp.o.d"
  "iss_test"
  "iss_test.pdb"
  "iss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
