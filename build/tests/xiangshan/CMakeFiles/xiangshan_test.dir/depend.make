# Empty dependencies file for xiangshan_test.
# This may be replaced when dependencies are built.
