file(REMOVE_RECURSE
  "CMakeFiles/xiangshan_test.dir/config_test.cpp.o"
  "CMakeFiles/xiangshan_test.dir/config_test.cpp.o.d"
  "CMakeFiles/xiangshan_test.dir/core_test.cpp.o"
  "CMakeFiles/xiangshan_test.dir/core_test.cpp.o.d"
  "xiangshan_test"
  "xiangshan_test.pdb"
  "xiangshan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xiangshan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
