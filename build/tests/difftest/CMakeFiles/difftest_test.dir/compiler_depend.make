# Empty compiler generated dependencies file for difftest_test.
# This may be replaced when dependencies are built.
