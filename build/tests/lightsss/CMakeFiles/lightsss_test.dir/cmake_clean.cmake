file(REMOVE_RECURSE
  "CMakeFiles/lightsss_test.dir/lightsss_test.cpp.o"
  "CMakeFiles/lightsss_test.dir/lightsss_test.cpp.o.d"
  "lightsss_test"
  "lightsss_test.pdb"
  "lightsss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightsss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
