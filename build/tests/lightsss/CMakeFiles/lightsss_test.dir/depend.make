# Empty dependencies file for lightsss_test.
# This may be replaced when dependencies are built.
