# Empty compiler generated dependencies file for archdb_test.
# This may be replaced when dependencies are built.
