file(REMOVE_RECURSE
  "CMakeFiles/archdb_test.dir/archdb_test.cpp.o"
  "CMakeFiles/archdb_test.dir/archdb_test.cpp.o.d"
  "archdb_test"
  "archdb_test.pdb"
  "archdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
