file(REMOVE_RECURSE
  "CMakeFiles/mj_common.dir/clock.cpp.o"
  "CMakeFiles/mj_common.dir/clock.cpp.o.d"
  "CMakeFiles/mj_common.dir/log.cpp.o"
  "CMakeFiles/mj_common.dir/log.cpp.o.d"
  "libmj_common.a"
  "libmj_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mj_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
