# Empty compiler generated dependencies file for mj_common.
# This may be replaced when dependencies are built.
