file(REMOVE_RECURSE
  "libmj_common.a"
)
