file(REMOVE_RECURSE
  "CMakeFiles/mj_lightsss.dir/lightsss.cpp.o"
  "CMakeFiles/mj_lightsss.dir/lightsss.cpp.o.d"
  "libmj_lightsss.a"
  "libmj_lightsss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mj_lightsss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
