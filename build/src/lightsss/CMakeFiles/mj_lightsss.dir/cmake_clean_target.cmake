file(REMOVE_RECURSE
  "libmj_lightsss.a"
)
