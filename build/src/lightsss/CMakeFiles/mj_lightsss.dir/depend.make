# Empty dependencies file for mj_lightsss.
# This may be replaced when dependencies are built.
