file(REMOVE_RECURSE
  "libmj_workload.a"
)
