file(REMOVE_RECURSE
  "CMakeFiles/mj_workload.dir/programs.cpp.o"
  "CMakeFiles/mj_workload.dir/programs.cpp.o.d"
  "libmj_workload.a"
  "libmj_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mj_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
