# Empty dependencies file for mj_workload.
# This may be replaced when dependencies are built.
