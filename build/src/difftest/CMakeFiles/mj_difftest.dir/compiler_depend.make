# Empty compiler generated dependencies file for mj_difftest.
# This may be replaced when dependencies are built.
