file(REMOVE_RECURSE
  "libmj_difftest.a"
)
