file(REMOVE_RECURSE
  "CMakeFiles/mj_difftest.dir/csr_rules.cpp.o"
  "CMakeFiles/mj_difftest.dir/csr_rules.cpp.o.d"
  "CMakeFiles/mj_difftest.dir/difftest.cpp.o"
  "CMakeFiles/mj_difftest.dir/difftest.cpp.o.d"
  "CMakeFiles/mj_difftest.dir/scoreboard.cpp.o"
  "CMakeFiles/mj_difftest.dir/scoreboard.cpp.o.d"
  "libmj_difftest.a"
  "libmj_difftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mj_difftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
