file(REMOVE_RECURSE
  "libmj_uarch.a"
)
