
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/cache.cpp" "src/uarch/CMakeFiles/mj_uarch.dir/cache.cpp.o" "gcc" "src/uarch/CMakeFiles/mj_uarch.dir/cache.cpp.o.d"
  "/root/repo/src/uarch/hierarchy.cpp" "src/uarch/CMakeFiles/mj_uarch.dir/hierarchy.cpp.o" "gcc" "src/uarch/CMakeFiles/mj_uarch.dir/hierarchy.cpp.o.d"
  "/root/repo/src/uarch/predictors.cpp" "src/uarch/CMakeFiles/mj_uarch.dir/predictors.cpp.o" "gcc" "src/uarch/CMakeFiles/mj_uarch.dir/predictors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
