file(REMOVE_RECURSE
  "CMakeFiles/mj_uarch.dir/cache.cpp.o"
  "CMakeFiles/mj_uarch.dir/cache.cpp.o.d"
  "CMakeFiles/mj_uarch.dir/hierarchy.cpp.o"
  "CMakeFiles/mj_uarch.dir/hierarchy.cpp.o.d"
  "CMakeFiles/mj_uarch.dir/predictors.cpp.o"
  "CMakeFiles/mj_uarch.dir/predictors.cpp.o.d"
  "libmj_uarch.a"
  "libmj_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mj_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
