# Empty compiler generated dependencies file for mj_uarch.
# This may be replaced when dependencies are built.
