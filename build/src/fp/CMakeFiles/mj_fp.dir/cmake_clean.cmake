file(REMOVE_RECURSE
  "CMakeFiles/mj_fp.dir/ops.cpp.o"
  "CMakeFiles/mj_fp.dir/ops.cpp.o.d"
  "CMakeFiles/mj_fp.dir/softfloat.cpp.o"
  "CMakeFiles/mj_fp.dir/softfloat.cpp.o.d"
  "libmj_fp.a"
  "libmj_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mj_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
