file(REMOVE_RECURSE
  "libmj_fp.a"
)
