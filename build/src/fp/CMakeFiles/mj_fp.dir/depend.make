# Empty dependencies file for mj_fp.
# This may be replaced when dependencies are built.
