# Empty compiler generated dependencies file for mj_checkpoint.
# This may be replaced when dependencies are built.
