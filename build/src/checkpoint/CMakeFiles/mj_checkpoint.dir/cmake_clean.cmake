file(REMOVE_RECURSE
  "CMakeFiles/mj_checkpoint.dir/checkpoint.cpp.o"
  "CMakeFiles/mj_checkpoint.dir/checkpoint.cpp.o.d"
  "CMakeFiles/mj_checkpoint.dir/generator.cpp.o"
  "CMakeFiles/mj_checkpoint.dir/generator.cpp.o.d"
  "CMakeFiles/mj_checkpoint.dir/simpoint.cpp.o"
  "CMakeFiles/mj_checkpoint.dir/simpoint.cpp.o.d"
  "libmj_checkpoint.a"
  "libmj_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mj_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
