file(REMOVE_RECURSE
  "libmj_checkpoint.a"
)
