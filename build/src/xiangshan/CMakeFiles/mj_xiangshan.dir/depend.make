# Empty dependencies file for mj_xiangshan.
# This may be replaced when dependencies are built.
