file(REMOVE_RECURSE
  "CMakeFiles/mj_xiangshan.dir/config.cpp.o"
  "CMakeFiles/mj_xiangshan.dir/config.cpp.o.d"
  "CMakeFiles/mj_xiangshan.dir/core.cpp.o"
  "CMakeFiles/mj_xiangshan.dir/core.cpp.o.d"
  "CMakeFiles/mj_xiangshan.dir/soc.cpp.o"
  "CMakeFiles/mj_xiangshan.dir/soc.cpp.o.d"
  "libmj_xiangshan.a"
  "libmj_xiangshan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mj_xiangshan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
