file(REMOVE_RECURSE
  "libmj_xiangshan.a"
)
