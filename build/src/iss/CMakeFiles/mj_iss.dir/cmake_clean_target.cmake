file(REMOVE_RECURSE
  "libmj_iss.a"
)
