
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iss/arch_state.cpp" "src/iss/CMakeFiles/mj_iss.dir/arch_state.cpp.o" "gcc" "src/iss/CMakeFiles/mj_iss.dir/arch_state.cpp.o.d"
  "/root/repo/src/iss/csrfile.cpp" "src/iss/CMakeFiles/mj_iss.dir/csrfile.cpp.o" "gcc" "src/iss/CMakeFiles/mj_iss.dir/csrfile.cpp.o.d"
  "/root/repo/src/iss/exec.cpp" "src/iss/CMakeFiles/mj_iss.dir/exec.cpp.o" "gcc" "src/iss/CMakeFiles/mj_iss.dir/exec.cpp.o.d"
  "/root/repo/src/iss/interp.cpp" "src/iss/CMakeFiles/mj_iss.dir/interp.cpp.o" "gcc" "src/iss/CMakeFiles/mj_iss.dir/interp.cpp.o.d"
  "/root/repo/src/iss/mmu.cpp" "src/iss/CMakeFiles/mj_iss.dir/mmu.cpp.o" "gcc" "src/iss/CMakeFiles/mj_iss.dir/mmu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mj_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/fp/CMakeFiles/mj_fp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
