# Empty compiler generated dependencies file for mj_iss.
# This may be replaced when dependencies are built.
