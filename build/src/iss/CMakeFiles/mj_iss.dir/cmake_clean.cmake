file(REMOVE_RECURSE
  "CMakeFiles/mj_iss.dir/arch_state.cpp.o"
  "CMakeFiles/mj_iss.dir/arch_state.cpp.o.d"
  "CMakeFiles/mj_iss.dir/csrfile.cpp.o"
  "CMakeFiles/mj_iss.dir/csrfile.cpp.o.d"
  "CMakeFiles/mj_iss.dir/exec.cpp.o"
  "CMakeFiles/mj_iss.dir/exec.cpp.o.d"
  "CMakeFiles/mj_iss.dir/interp.cpp.o"
  "CMakeFiles/mj_iss.dir/interp.cpp.o.d"
  "CMakeFiles/mj_iss.dir/mmu.cpp.o"
  "CMakeFiles/mj_iss.dir/mmu.cpp.o.d"
  "libmj_iss.a"
  "libmj_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mj_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
