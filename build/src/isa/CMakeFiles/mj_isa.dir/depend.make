# Empty dependencies file for mj_isa.
# This may be replaced when dependencies are built.
