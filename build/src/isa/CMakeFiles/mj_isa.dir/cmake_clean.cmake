file(REMOVE_RECURSE
  "CMakeFiles/mj_isa.dir/decode.cpp.o"
  "CMakeFiles/mj_isa.dir/decode.cpp.o.d"
  "CMakeFiles/mj_isa.dir/disasm.cpp.o"
  "CMakeFiles/mj_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/mj_isa.dir/encode.cpp.o"
  "CMakeFiles/mj_isa.dir/encode.cpp.o.d"
  "CMakeFiles/mj_isa.dir/op.cpp.o"
  "CMakeFiles/mj_isa.dir/op.cpp.o.d"
  "libmj_isa.a"
  "libmj_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mj_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
