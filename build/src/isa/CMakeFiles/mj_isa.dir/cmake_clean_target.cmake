file(REMOVE_RECURSE
  "libmj_isa.a"
)
