file(REMOVE_RECURSE
  "CMakeFiles/mj_nemu.dir/nemu.cpp.o"
  "CMakeFiles/mj_nemu.dir/nemu.cpp.o.d"
  "libmj_nemu.a"
  "libmj_nemu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mj_nemu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
