# Empty dependencies file for mj_nemu.
# This may be replaced when dependencies are built.
