file(REMOVE_RECURSE
  "libmj_nemu.a"
)
