file(REMOVE_RECURSE
  "CMakeFiles/mj_archdb.dir/archdb.cpp.o"
  "CMakeFiles/mj_archdb.dir/archdb.cpp.o.d"
  "libmj_archdb.a"
  "libmj_archdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mj_archdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
