# Empty compiler generated dependencies file for mj_archdb.
# This may be replaced when dependencies are built.
