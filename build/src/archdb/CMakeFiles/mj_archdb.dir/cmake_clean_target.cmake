file(REMOVE_RECURSE
  "libmj_archdb.a"
)
