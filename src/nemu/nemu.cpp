#include "nemu/nemu.h"

#include <cstring>

#include "common/bitutil.h"
#include "common/log.h"
#include "isa/decode.h"

namespace minjie::nemu {

using namespace minjie::isa;
using namespace minjie::iss;

namespace {

/** Threaded-code handler indices; order must match the labels array. */
enum Handler : uint8_t {
    H_LUI, H_AUIPC, H_LI,
    H_ADDI, H_SLTI, H_SLTIU, H_XORI, H_ORI, H_ANDI,
    H_SLLI, H_SRLI, H_SRAI, H_ADDIW, H_SLLIW, H_SRLIW, H_SRAIW,
    H_ADD, H_SUB, H_SLL, H_SLT, H_SLTU, H_XOR, H_SRL, H_SRA, H_OR, H_AND,
    H_ADDW, H_SUBW, H_SLLW, H_SRLW, H_SRAW,
    H_MUL, H_MULH, H_MULHSU, H_MULHU, H_DIV, H_DIVU, H_REM, H_REMU,
    H_MULW, H_DIVW, H_DIVUW, H_REMW, H_REMUW,
    H_LD, H_LW, H_LWU, H_LH, H_LHU, H_LB, H_LBU,
    H_SD, H_SW, H_SH, H_SB,
    H_FLD, H_FLW, H_FSD, H_FSW,
    H_BEQ, H_BNE, H_BLT, H_BGE, H_BLTU, H_BGEU,
    H_J, H_JAL, H_JALR, H_RET,
    H_FP,
    H_SLOW,
    H_COUNT,
};

const void **g_labels = nullptr;

int64_t s64(uint64_t v) { return static_cast<int64_t>(v); }
int32_t s32(uint64_t v) { return static_cast<int32_t>(v); }
uint64_t sx32(uint64_t v) { return static_cast<uint64_t>(sext(v, 32)); }

} // namespace

void
Nemu::assignHandler(Uop &u, const DecodedInst &di)
{
    const void *const *tab = handlerTable();
    auto set = [&](Handler h) { u.handler = tab[h]; };

    u.rd = di.rd == 0 ? &sink_ : &st_.x[di.rd];
    u.rs1 = &st_.x[di.rs1];
    u.rs2 = &st_.x[di.rs2];
    u.imm = di.imm;
    u.op = di.op;
    u.rm = di.rm;
    u.rs3 = di.rs3;

    switch (di.op) {
      case Op::Lui: set(H_LUI); break;
      case Op::Auipc:
        // Pseudo-inst specialization: fold pc into the immediate.
        u.imm = static_cast<int64_t>(u.pc + di.imm);
        set(H_AUIPC);
        break;
      case Op::Addi:
        // li specialization: rs1 == x0 means "load immediate".
        set(di.rs1 == 0 ? H_LI : H_ADDI);
        break;
      case Op::Slti: set(H_SLTI); break;
      case Op::Sltiu: set(H_SLTIU); break;
      case Op::Xori: set(H_XORI); break;
      case Op::Ori: set(H_ORI); break;
      case Op::Andi: set(H_ANDI); break;
      case Op::Slli: set(H_SLLI); break;
      case Op::Srli: set(H_SRLI); break;
      case Op::Srai: set(H_SRAI); break;
      case Op::Addiw: set(H_ADDIW); break;
      case Op::Slliw: set(H_SLLIW); break;
      case Op::Srliw: set(H_SRLIW); break;
      case Op::Sraiw: set(H_SRAIW); break;
      case Op::Add: set(H_ADD); break;
      case Op::Sub: set(H_SUB); break;
      case Op::Sll: set(H_SLL); break;
      case Op::Slt: set(H_SLT); break;
      case Op::Sltu: set(H_SLTU); break;
      case Op::Xor: set(H_XOR); break;
      case Op::Srl: set(H_SRL); break;
      case Op::Sra: set(H_SRA); break;
      case Op::Or: set(H_OR); break;
      case Op::And: set(H_AND); break;
      case Op::Addw: set(H_ADDW); break;
      case Op::Subw: set(H_SUBW); break;
      case Op::Sllw: set(H_SLLW); break;
      case Op::Srlw: set(H_SRLW); break;
      case Op::Sraw: set(H_SRAW); break;
      case Op::Mul: set(H_MUL); break;
      case Op::Mulh: set(H_MULH); break;
      case Op::Mulhsu: set(H_MULHSU); break;
      case Op::Mulhu: set(H_MULHU); break;
      case Op::Div: set(H_DIV); break;
      case Op::Divu: set(H_DIVU); break;
      case Op::Rem: set(H_REM); break;
      case Op::Remu: set(H_REMU); break;
      case Op::Mulw: set(H_MULW); break;
      case Op::Divw: set(H_DIVW); break;
      case Op::Divuw: set(H_DIVUW); break;
      case Op::Remw: set(H_REMW); break;
      case Op::Remuw: set(H_REMUW); break;
      case Op::Ld: set(H_LD); break;
      case Op::Lw: set(H_LW); break;
      case Op::Lwu: set(H_LWU); break;
      case Op::Lh: set(H_LH); break;
      case Op::Lhu: set(H_LHU); break;
      case Op::Lb: set(H_LB); break;
      case Op::Lbu: set(H_LBU); break;
      case Op::Sd: set(H_SD); break;
      case Op::Sw: set(H_SW); break;
      case Op::Sh: set(H_SH); break;
      case Op::Sb: set(H_SB); break;
      case Op::Fld:
        u.rd = &st_.f[di.rd];
        set(H_FLD);
        break;
      case Op::Flw:
        u.rd = &st_.f[di.rd];
        set(H_FLW);
        break;
      case Op::Fsd:
        u.rs2 = &st_.f[di.rs2];
        set(H_FSD);
        break;
      case Op::Fsw:
        u.rs2 = &st_.f[di.rs2];
        set(H_FSW);
        break;
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu:
        // Precompute the absolute taken target: the branch handlers
        // never need the cold decode.
        u.imm = static_cast<int64_t>(u.pc + di.imm);
        switch (di.op) {
          case Op::Beq: set(H_BEQ); break;
          case Op::Bne: set(H_BNE); break;
          case Op::Blt: set(H_BLT); break;
          case Op::Bge: set(H_BGE); break;
          case Op::Bltu: set(H_BLTU); break;
          default: set(H_BGEU); break;
        }
        break;
      case Op::Jal:
        u.imm = static_cast<int64_t>(u.pc + di.imm); // absolute target
        set(di.rd == 0 ? H_J : H_JAL);
        break;
      case Op::Jalr:
        // ret specialization: jalr x0, 0(rs1). rs2 is unused, so the
        // slot doubles as the indirect inline-cache key (with target
        // as the cached uop index), keeping the cache in the hot line.
        u.indirPc = ~0ULL;
        set(di.rd == 0 && di.imm == 0 ? H_RET : H_JALR);
        break;
      default:
        if (isFp(di.op) && !isMem(di.op)) {
            u.rs1 = readsFpRs1(di.op) ? &st_.f[di.rs1] : &st_.x[di.rs1];
            u.rs2 = &st_.f[di.rs2];
            u.rd = writesFpRd(di.op)
                ? &st_.f[di.rd]
                : (di.rd == 0 ? &sink_ : &st_.x[di.rd]);
            set(H_FP);
        } else {
            set(H_SLOW);
        }
        break;
    }

    // The branch-predictor-friendly "+1" rule requires every branch to
    // know its own fallthrough; interior uops use sequential dispatch.
}

Nemu::Nemu(mem::MemPort &bus, mem::PhysMem &dram, HartId hart, Addr entry,
           unsigned uopCacheCap)
    : Interp(bus, hart, entry, fp::FpBackend::Host), dram_(dram),
      cap_(uopCacheCap)
{
    uops_.reserve(cap_ + 256);
    cold_.reserve(cap_ + 256);
    handlerTable(); // force label collection before first translation
    stampRegime();
    // A guest TLB flush (sfence.vma) must also shoot down the cached
    // host pointers derived from those translations.
    mmu_.setFlushHook([this] { hostTlbFlush(); });
}

void
Nemu::flushUopCache()
{
    uops_.clear();
    cold_.clear();
    pcMap_.clear();
    ++stats_.flushes;
    // Uop-cache flushes accompany every translation-regime change
    // (fence.i, satp write, xRET, trap): drop the host pointers too.
    hostTlbFlush();
}

int32_t
Nemu::translateBlock(Addr pc, Trap &trap)
{
    if (uops_.size() >= cap_)
        flushUopCache();

    int32_t first = static_cast<int32_t>(uops_.size());
    Addr cur = pc;
    int32_t chainFrom = -1; // jal uop waiting for its inlined target
    for (unsigned n = 0; n < 128; ++n) {
        if (chainFrom >= 0) {
            // Superblock formation ran into already-translated code:
            // chain the jump to the existing entry and stop.
            auto hit = pcMap_.find(cur);
            if (hit != pcMap_.end()) {
                uops_[static_cast<size_t>(chainFrom)].target = hit->second;
                chainFrom = -1;
                break;
            }
        }
        uint32_t raw;
        Trap t = mmu_.fetch(cur, raw);
        if (t.pending()) {
            if (uops_.size() == static_cast<size_t>(first)) {
                trap = t;
                return -1;
            }
            break; // partial block is fine; the tail re-faults on reach
        }
        DecodedInst di = decode(raw);
        ++stats_.translations;
        Uop u;
        u.pc = cur;
        u.size = di.size;
        assignHandler(u, di);
        uops_.push_back(u);
        UopCold cold;
        cold.di = di;
        cold_.push_back(cold);
        int32_t here = static_cast<int32_t>(uops_.size() - 1);
        pcMap_.emplace(cur, here);
        if (chainFrom >= 0) {
            uops_[static_cast<size_t>(chainFrom)].target = here;
            chainFrom = -1;
        }
        cur += di.size;
        if (uops_.size() >= cap_ + 128)
            break;
        if (chainOn_ && di.op == Op::Jal) {
            // Superblock formation: follow the unconditional direct
            // jump so the hot trace stays contiguous, pre-chaining the
            // jal to the uop translated next.
            chainFrom = here;
            cur = u.pc + di.imm;
            ++stats_.superblockJumps;
            continue;
        }
        if (isControl(di.op) || isSystem(di.op) || isFence(di.op) ||
            di.op == Op::Illegal)
            break;
    }
    // A truncated block (length limit or a mid-block fetch fault) ends
    // in a non-terminator whose "+1" successor is NOT the next guest
    // instruction; route it through the generic handler, which re-syncs
    // pc and re-dispatches by lookup.
    if (!uops_.empty()) {
        Uop &last = uops_.back();
        Op lop = last.op;
        if (!(isControl(lop) || isSystem(lop) || isFence(lop) ||
              lop == Op::Illegal))
            last.handler = handlerTable()[H_SLOW];
    }
    return first;
}

int32_t
Nemu::lookupOrTranslate(Addr pc, Trap &trap)
{
    auto it = pcMap_.find(pc);
    if (it != pcMap_.end()) {
        ++stats_.uopHits;
        return it->second;
    }
    return translateBlock(pc, trap);
}

Trap
Nemu::stepOnce(ExecInfo *info)
{
    Trap t = Trap::none();
    int32_t idx = lookupOrTranslate(st_.pc, t);
    if (idx < 0)
        return t;
    const DecodedInst &di = cold_[static_cast<size_t>(idx)].di;

    if (blockHook_) {
        if (blockStart_ == ~0ULL)
            blockStart_ = st_.pc;
        ++blockLen_;
    }

    // Always observe CSR writes even when the caller passed no probe:
    // satp-write detection below must not depend on it.
    ExecInfo local;
    ExecInfo *ei = info ? info : &local;
    Trap et = execInst(st_, mmu_, di, fpb_, ei);

    if (blockHook_ &&
        (isControl(di.op) || isSystem(di.op) || et.pending())) {
        blockHook_(blockStart_, blockLen_);
        blockStart_ = ~0ULL;
        blockLen_ = 0;
    }

    // Flush conditions: code or translation environment changed.
    if (di.op == Op::FenceI || di.op == Op::SfenceVma) {
        flushUopCache();
    } else if (ei->csrWritten && ei->csrAddr == CSR_SATP) {
        flushUopCache();
    } else if (et.pending() || di.op == Op::Mret || di.op == Op::Sret) {
        // Privilege may have changed; virtual pc aliasing requires a
        // flush when the translation regime differs.
        flushUopCache();
    } else if (ei->csrWritten) {
        hostTlbFlush();
    }
    return et;
}

struct NemuExec
{
    static RunResult
    engine(Nemu *self, InstCount maxInsts, const void ***tableOut)
    {
        // Label table, collected once on the first (self == nullptr)
        // invocation; order must match enum Handler.
        static const void *labels[] = {
            &&h_lui, &&h_auipc, &&h_li,
            &&h_addi, &&h_slti, &&h_sltiu, &&h_xori, &&h_ori, &&h_andi,
            &&h_slli, &&h_srli, &&h_srai, &&h_addiw, &&h_slliw,
            &&h_srliw, &&h_sraiw,
            &&h_add, &&h_sub, &&h_sll, &&h_slt, &&h_sltu, &&h_xor,
            &&h_srl, &&h_sra, &&h_or, &&h_and,
            &&h_addw, &&h_subw, &&h_sllw, &&h_srlw, &&h_sraw,
            &&h_mul, &&h_mulh, &&h_mulhsu, &&h_mulhu, &&h_div, &&h_divu,
            &&h_rem, &&h_remu,
            &&h_mulw, &&h_divw, &&h_divuw, &&h_remw, &&h_remuw,
            &&h_ld, &&h_lw, &&h_lwu, &&h_lh, &&h_lhu, &&h_lb, &&h_lbu,
            &&h_sd, &&h_sw, &&h_sh, &&h_sb,
            &&h_fld, &&h_flw, &&h_fsd, &&h_fsw,
            &&h_beq, &&h_bne, &&h_blt, &&h_bge, &&h_bltu, &&h_bgeu,
            &&h_j, &&h_jal, &&h_jalr, &&h_ret,
            &&h_fp,
            &&h_slow,
        };
        static_assert(std::size(labels) == H_COUNT);
        if (tableOut) {
            *tableOut = labels;
            return {};
        }

        Nemu &n = *self;
        ArchState &st = n.st_;
        mem::PhysMem &dram = n.dram_;
        RunResult result;

        const bool chain = n.chainOn_;
        const bool fastOn = n.fastPathOn_;
        // State mutated outside run() (DiffTest pokes, checkpoint
        // restore, DRAM clear) invalidates cached host pointers.
        if (n.regimeChanged())
            n.hostTlbFlush();
        bool fastmem = fastOn && n.fastMemOk();
        bool fpDirty = false;
        // Start from a clean host-FPU flag state for deferred capture.
        (void)fp::harvestHostFpFlags();
        Trap trap = Trap::none();

        while (result.executed < maxInsts) {
            InstCount chunk = maxInsts - result.executed;
            if (chunk > 8192)
                chunk = 8192;
            InstCount budget = chunk;

            int32_t idx = n.lookupOrTranslate(st.pc, trap);
            // uops_ reserves cap_+256 up front and flushes clear()
            // without shrinking, so data() never moves: the base can
            // live in a register across handler calls that append or
            // flush entries, and chain edges resolve with one add.
            Nemu::Uop *const ubase = n.uops_.data();
            Nemu::Uop *u = ubase;
            if (idx < 0)
                goto take_fetch_trap;
            u = ubase + idx;

// Dispatch the uop u already points at. The budget check runs before
// the handler, so at chunk_done u names the next undispatched uop.
#define DISPATCH() \
    do { \
        if (budget == 0) \
            goto chunk_done; \
        --budget; \
        goto *u->handler; \
    } while (0)

// Advance within a block: trace organization guarantees +1, so the
// cursor is a pointer increment with no index arithmetic.
#define NEXT() \
    do { \
        ++u; \
        DISPATCH(); \
    } while (0)

// Resolve a control-transfer edge with block chaining. @p field caches
// the resolved uop index unless the cache was flushed during translate.
// With chaining ablated, every control transfer leaves the threaded
// code and returns to the outer dispatch loop (pc sync, retirement
// accounting, halt poll, hash-map lookup) — the classic unchained
// interpreter block boundary the optimization removes.
#define CHAIN(field, targetPc) \
    do { \
        if (!chain) { \
            st.pc = (targetPc); \
            goto block_boundary; \
        } \
        int32_t t = u->field; \
        if (t < 0) { \
            Nemu::Uop *cu = u; \
            uint64_t fl = n.stats_.flushes; \
            t = n.lookupOrTranslate((targetPc), trap); \
            if (t < 0) { \
                st.pc = (targetPc); \
                goto take_fetch_trap; \
            } \
            if (n.stats_.flushes == fl) \
                cu->field = t; \
            ++n.stats_.chainResolves; \
        } \
        u = ubase + t; \
        DISPATCH(); \
    } while (0)

// Resolve an indirect control transfer: a one-entry inline cache per
// uop (last target pc in the repurposed rs2 slot, its uop index in
// target) backed by the pc hash map. Living in the hot uop, the cache
// hit costs one compare on an already-fetched line.
#define CHAIN_INDIRECT(targetPc) \
    do { \
        Addr tp = (targetPc); \
        if (!chain) { \
            st.pc = tp; \
            goto block_boundary; \
        } \
        if (u->indirPc == tp) { \
            u = ubase + u->target; \
            DISPATCH(); \
        } \
        Nemu::Uop *cu = u; \
        uint64_t fl = n.stats_.flushes; \
        int32_t t = n.lookupOrTranslate(tp, trap); \
        if (t < 0) { \
            st.pc = tp; \
            goto take_fetch_trap; \
        } \
        if (n.stats_.flushes == fl) { \
            cu->indirPc = tp; \
            cu->target = t; \
        } \
        ++n.stats_.chainResolves; \
        u = ubase + t; \
        DISPATCH(); \
    } while (0)

            DISPATCH();

          h_lui: *u->rd = static_cast<uint64_t>(u->imm); NEXT();
          h_auipc: *u->rd = static_cast<uint64_t>(u->imm); NEXT();
          h_li: *u->rd = static_cast<uint64_t>(u->imm); NEXT();
          h_addi: *u->rd = *u->rs1 + u->imm; NEXT();
          h_slti: *u->rd = s64(*u->rs1) < u->imm; NEXT();
          h_sltiu: *u->rd = *u->rs1 < static_cast<uint64_t>(u->imm); NEXT();
          h_xori: *u->rd = *u->rs1 ^ u->imm; NEXT();
          h_ori: *u->rd = *u->rs1 | u->imm; NEXT();
          h_andi: *u->rd = *u->rs1 & u->imm; NEXT();
          h_slli: *u->rd = *u->rs1 << (u->imm & 63); NEXT();
          h_srli: *u->rd = *u->rs1 >> (u->imm & 63); NEXT();
          h_srai:
            *u->rd = static_cast<uint64_t>(s64(*u->rs1) >> (u->imm & 63));
            NEXT();
          h_addiw: *u->rd = sx32(*u->rs1 + u->imm); NEXT();
          h_slliw: *u->rd = sx32(*u->rs1 << (u->imm & 31)); NEXT();
          h_srliw:
            *u->rd = sx32((*u->rs1 & 0xffffffffu) >> (u->imm & 31));
            NEXT();
          h_sraiw:
            *u->rd = static_cast<uint64_t>(
                static_cast<int64_t>(s32(*u->rs1) >> (u->imm & 31)));
            NEXT();
          h_add: *u->rd = *u->rs1 + *u->rs2; NEXT();
          h_sub: *u->rd = *u->rs1 - *u->rs2; NEXT();
          h_sll: *u->rd = *u->rs1 << (*u->rs2 & 63); NEXT();
          h_slt: *u->rd = s64(*u->rs1) < s64(*u->rs2); NEXT();
          h_sltu: *u->rd = *u->rs1 < *u->rs2; NEXT();
          h_xor: *u->rd = *u->rs1 ^ *u->rs2; NEXT();
          h_srl: *u->rd = *u->rs1 >> (*u->rs2 & 63); NEXT();
          h_sra:
            *u->rd = static_cast<uint64_t>(s64(*u->rs1) >> (*u->rs2 & 63));
            NEXT();
          h_or: *u->rd = *u->rs1 | *u->rs2; NEXT();
          h_and: *u->rd = *u->rs1 & *u->rs2; NEXT();
          h_addw: *u->rd = sx32(*u->rs1 + *u->rs2); NEXT();
          h_subw: *u->rd = sx32(*u->rs1 - *u->rs2); NEXT();
          h_sllw: *u->rd = sx32(*u->rs1 << (*u->rs2 & 31)); NEXT();
          h_srlw:
            *u->rd = sx32((*u->rs1 & 0xffffffffu) >> (*u->rs2 & 31));
            NEXT();
          h_sraw:
            *u->rd = static_cast<uint64_t>(
                static_cast<int64_t>(s32(*u->rs1) >> (*u->rs2 & 31)));
            NEXT();

          h_mul: *u->rd = *u->rs1 * *u->rs2; NEXT();
          h_mulh:
            *u->rd = static_cast<uint64_t>(
                (static_cast<__int128>(s64(*u->rs1)) * s64(*u->rs2)) >> 64);
            NEXT();
          h_mulhsu:
            *u->rd = static_cast<uint64_t>(
                (static_cast<__int128>(s64(*u->rs1)) *
                 static_cast<unsigned __int128>(*u->rs2)) >> 64);
            NEXT();
          h_mulhu:
            *u->rd = static_cast<uint64_t>(
                (static_cast<unsigned __int128>(*u->rs1) * *u->rs2) >> 64);
            NEXT();
          h_div: {
            int64_t a = s64(*u->rs1), b = s64(*u->rs2);
            *u->rd = b == 0 ? ~0ULL
                : (a == INT64_MIN && b == -1
                       ? static_cast<uint64_t>(INT64_MIN)
                       : static_cast<uint64_t>(a / b));
            NEXT();
          }
          h_divu:
            *u->rd = *u->rs2 == 0 ? ~0ULL : *u->rs1 / *u->rs2;
            NEXT();
          h_rem: {
            int64_t a = s64(*u->rs1), b = s64(*u->rs2);
            *u->rd = b == 0 ? static_cast<uint64_t>(a)
                : (a == INT64_MIN && b == -1
                       ? 0 : static_cast<uint64_t>(a % b));
            NEXT();
          }
          h_remu:
            *u->rd = *u->rs2 == 0 ? *u->rs1 : *u->rs1 % *u->rs2;
            NEXT();
          h_mulw: *u->rd = sx32(*u->rs1 * *u->rs2); NEXT();
          h_divw: {
            int32_t a = s32(*u->rs1), b = s32(*u->rs2);
            int32_t r = b == 0 ? -1
                : (a == INT32_MIN && b == -1 ? INT32_MIN : a / b);
            *u->rd = static_cast<uint64_t>(static_cast<int64_t>(r));
            NEXT();
          }
          h_divuw: {
            uint32_t a = static_cast<uint32_t>(*u->rs1);
            uint32_t b = static_cast<uint32_t>(*u->rs2);
            *u->rd = b == 0 ? ~0ULL : sx32(a / b);
            NEXT();
          }
          h_remw: {
            int32_t a = s32(*u->rs1), b = s32(*u->rs2);
            int32_t r = b == 0 ? a
                : (a == INT32_MIN && b == -1 ? 0 : a % b);
            *u->rd = static_cast<uint64_t>(static_cast<int64_t>(r));
            NEXT();
          }
          h_remuw: {
            uint32_t a = static_cast<uint32_t>(*u->rs1);
            uint32_t b = static_cast<uint32_t>(*u->rs2);
            *u->rd = b == 0 ? sx32(a) : sx32(a % b);
            NEXT();
          }

// Fast-path load, tried in order: (1) host-pointer TLB hit — an aligned
// access whose virtual page was translated before reads host memory
// directly, skipping Mmu::translate and the bus; (2) direct DRAM access
// when translation is off in M-mode; (3) the full MMU walk, which on
// success fills the host-pointer TLB for the next access to that page.
#define LOAD(size, convert) \
    do { \
        Addr addr = *u->rs1 + u->imm; \
        uint64_t data; \
        const Nemu::HostTlbEnt &he = \
            n.ldTlb_[(addr >> 12) & Nemu::HTLB_MASK]; \
        if ((addr & ((size) - 1)) == 0 && he.vpn == (addr >> 12)) { \
            data = 0; \
            std::memcpy(&data, he.host + (addr & 0xfff), (size)); \
        } else if (fastmem && dram.contains(addr, size)) { \
            dram.read(addr, size, data); \
            /* M-mode bare: identity mapping, cache the host page. */ \
            n.hostTlbFillPhys(n.ldTlb_, addr, addr, size); \
        } else { \
            st.pc = u->pc; \
            Trap t = n.mmu_.load(addr, size, data); \
            if (t.pending()) { \
                trap = t; \
                goto take_trap; \
            } \
            if (fastOn) \
                n.hostTlbFill(n.ldTlb_, addr, size); \
        } \
        *u->rd = (convert); \
        NEXT(); \
    } while (0)

#define STORE(size, value) \
    do { \
        Addr addr = *u->rs1 + u->imm; \
        const Nemu::HostTlbEnt &he = \
            n.stTlb_[(addr >> 12) & Nemu::HTLB_MASK]; \
        if ((addr & ((size) - 1)) == 0 && he.vpn == (addr >> 12)) { \
            uint64_t v = (value); \
            std::memcpy(he.host + (addr & 0xfff), &v, (size)); \
        } else if (fastmem && dram.contains(addr, size)) { \
            dram.write(addr, size, (value)); \
            n.hostTlbFillPhys(n.stTlb_, addr, addr, size); \
        } else { \
            st.pc = u->pc; \
            Trap t = n.mmu_.store(addr, size, (value)); \
            if (t.pending()) { \
                trap = t; \
                goto take_trap; \
            } \
            if (fastOn) \
                n.hostTlbFill(n.stTlb_, addr, size); \
            /* MMIO stores may complete the workload (SimCtrl exit); \
               honour the halt predicate immediately like the baseline \
               engines do. */ \
            if (n.haltFn_ && n.haltFn_()) \
                goto halt_now; \
        } \
        NEXT(); \
    } while (0)

          h_ld: LOAD(8, data);
          h_lw: LOAD(4, static_cast<uint64_t>(sext(data, 32)));
          h_lwu: LOAD(4, data);
          h_lh: LOAD(2, static_cast<uint64_t>(sext(data, 16)));
          h_lhu: LOAD(2, data);
          h_lb: LOAD(1, static_cast<uint64_t>(sext(data, 8)));
          h_lbu: LOAD(1, data);
          h_sd: STORE(8, *u->rs2);
          h_sw: STORE(4, *u->rs2);
          h_sh: STORE(2, *u->rs2);
          h_sb: STORE(1, *u->rs2);
          h_fld: LOAD(8, data);
          h_flw: LOAD(4, fp::boxF32(static_cast<uint32_t>(data)));
          h_fsd: STORE(8, *u->rs2);
          h_fsw: STORE(4, *u->rs2 & 0xffffffffu);

#define BRANCH(cond) \
    do { \
        if (cond) \
            CHAIN(target, static_cast<Addr>(u->imm)); \
        else \
            CHAIN(next, u->pc + u->size); \
    } while (0)

          h_beq: BRANCH(*u->rs1 == *u->rs2);
          h_bne: BRANCH(*u->rs1 != *u->rs2);
          h_blt: BRANCH(s64(*u->rs1) < s64(*u->rs2));
          h_bge: BRANCH(s64(*u->rs1) >= s64(*u->rs2));
          h_bltu: BRANCH(*u->rs1 < *u->rs2);
          h_bgeu: BRANCH(*u->rs1 >= *u->rs2);

          h_j:
            CHAIN(target, static_cast<Addr>(u->imm));
          h_jal:
            *u->rd = u->pc + u->size;
            CHAIN(target, static_cast<Addr>(u->imm));
          h_jalr: {
            // Target computed before the link write (rd may alias rs1).
            Addr target = (*u->rs1 + u->imm) & ~1ULL;
            *u->rd = u->pc + u->size;
            CHAIN_INDIRECT(target);
          }
          h_ret: {
            Addr target = (*u->rs1 + u->imm) & ~1ULL;
            CHAIN_INDIRECT(target);
          }

          h_fp: {
            if (!st.csr.fpEnabled())
                goto slow_path;
            unsigned rm = u->rm;
            if (rm == 7)
                rm = st.csr.frm;
            if (rm > 4)
                goto slow_path;
            uint64_t c = st.f[u->rs3];
            // Deferred-flag host execution: exception bits accumulate
            // in the MXCSR and are harvested before any architectural
            // fflags access (slow path / run exit).
            fp::FpOut out = fp::fpExecFast(u->op, *u->rs1, *u->rs2,
                                           c, rm);
            fpDirty = true;
            *u->rd = out.value;
            if (out.flags)
                st.csr.accumulateFflags(out.flags);
            st.csr.setFsDirty();
            NEXT();
          }

          h_slow:
          slow_path: {
            // Sync pc and the retired-instruction counters (the current
            // uop was dispatched but not yet counted), then run the
            // generic executor and re-resolve everything afterwards.
            if (fpDirty) {
                st.csr.accumulateFflags(fp::harvestHostFpFlags());
                fpDirty = false;
            }
            st.pc = u->pc;
            InstCount completed = chunk - budget - 1;
            st.instret += completed;
            st.csr.minstret += completed;
            st.csr.mcycle += completed;
            result.executed += completed;

            ExecInfo info;
            const DecodedInst &sdi =
                n.cold_[static_cast<size_t>(u - ubase)].di;
            Trap t = execInst(st, n.mmu_, sdi, n.fpb_, &info);
            Op op = sdi.op;
            bool flush = op == Op::FenceI || op == Op::SfenceVma ||
                         (info.csrWritten && info.csrAddr == CSR_SATP) ||
                         op == Op::Mret || op == Op::Sret;
            if (t.pending()) {
                takeTrap(st, t, st.pc);
                result.trapped = true;
                flush = true;
            }
            ++st.instret;
            ++st.csr.minstret;
            ++st.csr.mcycle;
            ++result.executed;
            chunk = budget; // remaining budget becomes the new chunk
            if (flush)
                n.flushUopCache();
            else if (info.csrWritten)
                // Any CSR write may alter the translation regime
                // (mstatus SUM/MXR/MPRV, satp): drop cached host
                // pointers. flushUopCache above already did so.
                n.hostTlbFlush();
            fastmem = fastOn && n.fastMemOk();
            if (result.executed >= maxInsts || budget == 0)
                goto chunk_boundary;
            idx = n.lookupOrTranslate(st.pc, trap);
            if (idx < 0)
                goto take_fetch_trap;
            u = ubase + idx;
            DISPATCH();
          }

          take_trap: {
            // Memory trap raised by a fast-path handler; pc already set.
            // The trapped instruction counts as a step, matching the
            // baseline engines' accounting.
            InstCount done = chunk - budget;
            st.instret += done;
            st.csr.minstret += done;
            st.csr.mcycle += done;
            result.executed += done;
            takeTrap(st, trap, st.pc);
            trap = Trap::none();
            result.trapped = true;
            fastmem = fastOn && n.fastMemOk();
            n.flushUopCache();
            chunk = budget = 0;
            goto chunk_boundary;
          }

          take_fetch_trap: {
            // Instruction fetch fault: the target instruction was never
            // dispatched; only previously completed uops are counted.
            InstCount done = chunk - budget;
            st.instret += done;
            st.csr.minstret += done;
            st.csr.mcycle += done;
            result.executed += done;
            takeTrap(st, trap, st.pc);
            trap = Trap::none();
            result.trapped = true;
            fastmem = fastOn && n.fastMemOk();
            n.flushUopCache();
            // Guarantee forward progress when the trap handler itself
            // cannot be fetched (e.g. mtvec at unmapped memory).
            if (done == 0)
                ++result.executed;
            chunk = budget = 0;
            goto chunk_boundary;
          }

          halt_now: {
            // The current (store) uop completed and the halt predicate
            // fired; account for it and stop at the next pc.
            InstCount done = chunk - budget;
            st.instret += done;
            st.csr.minstret += done;
            st.csr.mcycle += done;
            result.executed += done;
            st.pc = u->pc + u->size;
            result.halted = true;
            goto out;
          }

          chunk_done: {
            // u names the next (undispatched) uop: resume from there.
            st.pc = u->pc;
            st.instret += chunk;
            st.csr.minstret += chunk;
            st.csr.mcycle += chunk;
            result.executed += chunk;
            goto chunk_boundary;
          }

          block_boundary: {
            // Chaining ablated: the control-transfer uop completed and
            // set st.pc; commit the block and fall back into the outer
            // dispatch loop.
            InstCount done = chunk - budget;
            st.instret += done;
            st.csr.minstret += done;
            st.csr.mcycle += done;
            result.executed += done;
            goto chunk_boundary;
          }

          chunk_boundary:
            if (n.haltFn_ && n.haltFn_()) {
                result.halted = true;
                goto out;
            }
            continue;

          out:
            break;
        }

#undef DISPATCH
#undef NEXT
#undef CHAIN
#undef CHAIN_INDIRECT
#undef LOAD
#undef STORE
#undef BRANCH

        if (fpDirty)
            st.csr.accumulateFflags(fp::harvestHostFpFlags());
        if (!result.halted && self->haltFn_ && self->haltFn_())
            result.halted = true;
        return result;
    }
};

const void *const *
Nemu::handlerTable()
{
    // Magic static: campaign workers race to translate their first
    // block, so the one-time label collection must be synchronized.
    static const void *const *labels = [] {
        NemuExec::engine(nullptr, 0, &g_labels);
        return const_cast<const void *const *>(g_labels);
    }();
    return labels;
}

RunResult
Nemu::run(InstCount maxInsts)
{
    return NemuExec::engine(this, maxInsts, nullptr);
}

} // namespace minjie::nemu
