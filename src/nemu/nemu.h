/**
 * @file
 * NEMU: the fast threaded-code RV64 interpreter (paper Section III-D).
 *
 * Faithfully reimplements the performance techniques of Figure 7:
 *  - a trace-organized uop cache storing fully-decoded results (operand
 *    register pointers, inlined immediates, handler addresses), with
 *    entries allocated sequentially along the dynamic instruction
 *    stream so intra-block advance is "+1" and conflict misses cannot
 *    occur (entries are only dropped by whole-cache flushes);
 *  - threaded-code dispatch via computed goto;
 *  - block chaining for direct jumps/branches and a hash list for
 *    indirect jumps;
 *  - the zero-register redirect: uops targeting x0 write to a sink
 *    variable instead of checking rd on every instruction;
 *  - host floating point execution (fp::FpBackend::Host);
 *  - pseudo-instruction specialization (e.g. a jal with rd=x0 uses a
 *    link-free handler; li-like addi with rs1=x0 loads the immediate).
 *
 * NEMU also doubles as the DiffTest REF (paper Section III-B): the
 * Interp::step() path executes through the same uop cache but one
 * instruction at a time with probe extraction.
 */

#ifndef MINJIE_NEMU_NEMU_H
#define MINJIE_NEMU_NEMU_H

#include <functional>
#include <unordered_map>
#include <vector>

#include "iss/interp.h"
#include "mem/physmem.h"

namespace minjie::nemu {

/** Statistics from the uop cache. */
struct NemuStats
{
    uint64_t uopHits = 0;      ///< dispatches served from the cache
    uint64_t translations = 0; ///< instructions fetched+decoded
    uint64_t flushes = 0;      ///< whole-cache flushes
    uint64_t chainResolves = 0;
};

class Nemu : public iss::Interp
{
  public:
    /**
     * @param bus         full system bus (MMIO and translated accesses)
     * @param dram        DRAM for the direct fast path
     * @param uopCacheCap uop cache capacity (paper selects 16384)
     */
    Nemu(mem::MemPort &bus, mem::PhysMem &dram, HartId hart, Addr entry,
         unsigned uopCacheCap = 16384);

    /** Fast threaded-code execution of up to @p maxInsts instructions. */
    iss::RunResult run(InstCount maxInsts);

    /** Drop every uop (fence.i, satp change, cache full). */
    void flushUopCache();

    const NemuStats &stats() const { return stats_; }

    /**
     * Basic-block profiling hook for SimPoint BBV collection: invoked
     * with (block start pc, block length in instructions) every time a
     * control transfer ends a block. Enabling this uses the slower
     * step-path dispatch.
     */
    void
    setBlockHook(std::function<void(Addr, uint32_t)> hook)
    {
        blockHook_ = std::move(hook);
    }

  protected:
    isa::Trap stepOnce(iss::ExecInfo *info) override;

  private:
    /** One decoded micro-operation in the trace cache. */
    struct Uop
    {
        const void *handler = nullptr;
        uint64_t *rd = nullptr;       ///< destination (sink for x0)
        const uint64_t *rs1 = nullptr;
        const uint64_t *rs2 = nullptr;
        int64_t imm = 0;
        Addr pc = 0;
        uint8_t size = 4;
        int32_t next = -1;            ///< chained fallthrough uop
        int32_t target = -1;          ///< chained taken-target uop
        isa::DecodedInst di;          ///< full decode for slow handlers
    };

    /** Find (or translate) the uop index for @p pc; -1 on fetch trap. */
    int32_t lookupOrTranslate(Addr pc, isa::Trap &trap);

    /** Translate one basic block starting at @p pc into the cache. */
    int32_t translateBlock(Addr pc, isa::Trap &trap);

    /** Assign the threaded-code handler for @p di into @p u. */
    void assignHandler(Uop &u, const isa::DecodedInst &di);

    /** True when the direct-DRAM fast path is usable. */
    bool
    fastMemOk() const
    {
        return st_.priv == isa::Priv::M &&
               (st_.csr.mstatus & isa::MSTATUS_MPRV) == 0;
    }

    mem::PhysMem &dram_;
    unsigned cap_;
    std::vector<Uop> uops_;
    std::unordered_map<Addr, int32_t> pcMap_;
    NemuStats stats_;
    uint64_t sink_ = 0; ///< zero-register write target
    std::function<void(Addr, uint32_t)> blockHook_;
    Addr blockStart_ = ~0ULL; ///< step-path BBV tracking
    uint32_t blockLen_ = 0;

    // Handler dispatch table, filled by the first run() invocation.
    static const void *const *handlerTable();
    friend struct NemuExec;
};

} // namespace minjie::nemu

#endif // MINJIE_NEMU_NEMU_H
