/**
 * @file
 * NEMU: the fast threaded-code RV64 interpreter (paper Section III-D).
 *
 * Faithfully reimplements the performance techniques of Figure 7:
 *  - a trace-organized uop cache storing fully-decoded results (operand
 *    register pointers, inlined immediates, handler addresses), with
 *    entries allocated sequentially along the dynamic instruction
 *    stream so intra-block advance is "+1" and conflict misses cannot
 *    occur (entries are only dropped by whole-cache flushes);
 *  - threaded-code dispatch via computed goto;
 *  - block chaining: direct branches/jumps cache the uop index of their
 *    resolved successor (patched on first execution, dropped on cache
 *    flush), superblocks are formed across unconditional direct jumps
 *    so hot traces are laid out contiguously, and indirect jumps keep a
 *    one-entry inline target cache backed by the pc hash map;
 *  - a software load/store fast path: a small direct-mapped
 *    host-pointer TLB (virtual page -> host page base) filled from
 *    successful MMU walks, so the common Sv39/bare hit skips
 *    Mmu::translate and the bus entirely; shot down on sfence.vma,
 *    satp/mstatus writes, privilege changes and DRAM snapshot restore;
 *  - the zero-register redirect: uops targeting x0 write to a sink
 *    variable instead of checking rd on every instruction;
 *  - host floating point execution (fp::FpBackend::Host);
 *  - pseudo-instruction specialization (e.g. a jal with rd=x0 uses a
 *    link-free handler; li-like addi with rs1=x0 loads the immediate).
 *
 * Block chaining and the memory fast path can be ablated independently
 * (setChainingEnabled / setFastPathEnabled) for the Figure 8 speedup
 * breakdown and the `--nemu-no-chain` / `--nemu-no-fastpath` flags.
 *
 * NEMU also doubles as the DiffTest REF (paper Section III-B): the
 * Interp::step() path executes through the same uop cache but one
 * instruction at a time with probe extraction, and run(1) drives the
 * chained engine with per-instruction commit granularity for lockstep
 * co-simulation.
 */

#ifndef MINJIE_NEMU_NEMU_H
#define MINJIE_NEMU_NEMU_H

#include <functional>
#include <unordered_map>
#include <vector>

#include "iss/interp.h"
#include "mem/physmem.h"

namespace minjie::nemu {

/** Statistics from the uop cache and the memory fast path. */
struct NemuStats
{
    uint64_t uopHits = 0;      ///< dispatches served from the cache
    uint64_t translations = 0; ///< instructions fetched+decoded
    uint64_t flushes = 0;      ///< whole-cache flushes
    uint64_t chainResolves = 0;
    uint64_t superblockJumps = 0; ///< direct jumps followed at translate
    uint64_t hostTlbFills = 0;    ///< host-pointer TLB insertions
    uint64_t hostTlbFlushes = 0;  ///< host-pointer TLB shootdowns
};

class Nemu : public iss::Interp
{
  public:
    /**
     * @param bus         full system bus (MMIO and translated accesses)
     * @param dram        DRAM for the direct fast path
     * @param uopCacheCap uop cache capacity (paper selects 16384)
     */
    Nemu(mem::MemPort &bus, mem::PhysMem &dram, HartId hart, Addr entry,
         unsigned uopCacheCap = 16384);

    /** Fast threaded-code execution of up to @p maxInsts instructions. */
    iss::RunResult run(InstCount maxInsts) override;

    /** Drop every uop (fence.i, satp change, cache full). Also shoots
     *  down the host-pointer TLB. */
    void flushUopCache();

    /** Interrupt delivery changes privilege: drop cached translations. */
    void
    raiseInterrupt(isa::Irq irq) override
    {
        Interp::raiseInterrupt(irq);
        flushUopCache();
    }

    /**
     * Ablation: disable block chaining (successor caching, superblock
     * formation, the indirect inline cache). Every control transfer
     * then returns to the hash-map dispatch loop.
     */
    void
    setChainingEnabled(bool on)
    {
        chainOn_ = on;
        flushUopCache();
    }

    /**
     * Ablation: disable the memory fast path (host-pointer TLB and the
     * direct-DRAM M-mode shortcut). Every load/store then funnels
     * through Mmu::translate and the bus.
     */
    void
    setFastPathEnabled(bool on)
    {
        fastPathOn_ = on;
        hostTlbFlush();
    }

    bool chainingEnabled() const { return chainOn_; }
    bool fastPathEnabled() const { return fastPathOn_; }

    const NemuStats &stats() const { return stats_; }

    /**
     * Basic-block profiling hook for SimPoint BBV collection: invoked
     * with (block start pc, block length in instructions) every time a
     * control transfer ends a block. Enabling this uses the slower
     * step-path dispatch.
     */
    void
    setBlockHook(std::function<void(Addr, uint32_t)> hook)
    {
        blockHook_ = std::move(hook);
    }

  protected:
    isa::Trap stepOnce(iss::ExecInfo *info) override;

  private:
    /**
     * One decoded micro-operation in the trace cache: exactly one cache
     * line of hot state (operand pointers, inlined immediate, chain
     * edges, the fp fast fields). Branches and direct jumps hold their
     * absolute taken-target virtual address in @c imm, so the hot path
     * never touches the cold side.
     */
    struct alignas(64) Uop
    {
        const void *handler = nullptr;
        uint64_t *rd = nullptr;       ///< destination (sink for x0)
        const uint64_t *rs1 = nullptr;
        union {
            const uint64_t *rs2 = nullptr;
            Addr indirPc;             ///< jalr/ret: inline-cache key
        };
        int64_t imm = 0;              ///< immediate / absolute target va
        Addr pc = 0;
        int32_t next = -1;            ///< chained fallthrough uop
        int32_t target = -1;          ///< taken-target / indirect-cache uop
        uint8_t size = 4;
        uint8_t rm = 0;               ///< fp rounding mode field
        uint8_t rs3 = 0;              ///< fp fma third operand index
        isa::Op op = isa::Op::Illegal;
    };
    static_assert(sizeof(void *) != 8 || sizeof(Uop) == 64,
                  "hot uop must stay one cache line");

    /** Cold per-uop state, indexed in lockstep with the hot array: the
     *  full decode for the generic executor and probe extraction. */
    struct UopCold
    {
        isa::DecodedInst di;
    };

    /**
     * Host-pointer TLB entry: virtual page -> host base of the backing
     * DRAM page. Load and store entries are kept in separate ways so a
     * store entry implies a walk that set the PTE dirty bit.
     */
    struct HostTlbEnt
    {
        Addr vpn = ~0ULL;
        uint8_t *host = nullptr;
    };
    // Sized so the multi-MB working sets of the memory-bound SPEC
    // proxies (4MB = 1024 pages) map without conflict: 1024 x 16B =
    // 16KB per way, far cheaper per hit than the sparse-page hash
    // lookup it replaces.
    static constexpr unsigned HTLB_SIZE = 1024;
    static constexpr Addr HTLB_MASK = HTLB_SIZE - 1;

    /** Find (or translate) the uop index for @p pc; -1 on fetch trap. */
    int32_t lookupOrTranslate(Addr pc, isa::Trap &trap);

    /** Translate one basic block (superblock across direct jumps when
     *  chaining is on) starting at @p pc into the cache. */
    int32_t translateBlock(Addr pc, isa::Trap &trap);

    /** Assign the threaded-code handler for @p di into @p u. */
    void assignHandler(Uop &u, const isa::DecodedInst &di);

    /** True when the direct-DRAM fast path is usable. */
    bool
    fastMemOk() const
    {
        return st_.priv == isa::Priv::M &&
               (st_.csr.mstatus & isa::MSTATUS_MPRV) == 0;
    }

    /** Install the mapping @p vaddr -> @p paddr's page into one of the
     *  host-pointer TLB ways. */
    void
    hostTlbFillPhys(HostTlbEnt *way, Addr vaddr, Addr paddr,
                    unsigned size)
    {
        if (vaddr & (size - 1))
            return; // only aligned (single-page) accesses are cached
        uint8_t *hp = dram_.hostPage(paddr);
        if (!hp)
            return; // MMIO or past the end of DRAM
        HostTlbEnt &e = way[(vaddr >> 12) & HTLB_MASK];
        e.vpn = vaddr >> 12;
        e.host = hp;
        ++stats_.hostTlbFills;
    }

    /** Install @p vaddr's translation (just completed by the MMU) into
     *  one of the host-pointer TLB ways. */
    void
    hostTlbFill(HostTlbEnt *way, Addr vaddr, unsigned size)
    {
        hostTlbFillPhys(way, vaddr, mmu_.lastPaddr(), size);
    }

    /** Shoot down the host-pointer TLB and restamp the translation
     *  regime it was filled under. */
    void
    hostTlbFlush()
    {
        for (auto &e : ldTlb_)
            e.vpn = ~0ULL;
        for (auto &e : stTlb_)
            e.vpn = ~0ULL;
        ++stats_.hostTlbFlushes;
        stampRegime();
    }

    /** Record the translation regime the host TLB contents assume. */
    void
    stampRegime()
    {
        regimeSatp_ = st_.csr.satp;
        regimeMstatus_ = st_.csr.mstatus;
        regimePriv_ = st_.priv;
        regimeEpoch_ = dram_.epoch();
    }

    /** True when state mutated outside run() invalidates the TLB. */
    bool
    regimeChanged() const
    {
        return regimeSatp_ != st_.csr.satp ||
               regimeMstatus_ != st_.csr.mstatus ||
               regimePriv_ != st_.priv || regimeEpoch_ != dram_.epoch();
    }

    mem::PhysMem &dram_;
    unsigned cap_;
    std::vector<Uop> uops_;
    std::vector<UopCold> cold_;
    std::unordered_map<Addr, int32_t> pcMap_;
    NemuStats stats_;
    uint64_t sink_ = 0; ///< zero-register write target
    bool chainOn_ = true;
    bool fastPathOn_ = true;
    HostTlbEnt ldTlb_[HTLB_SIZE];
    HostTlbEnt stTlb_[HTLB_SIZE];
    uint64_t regimeSatp_ = 0;
    uint64_t regimeMstatus_ = 0;
    isa::Priv regimePriv_ = isa::Priv::M;
    uint64_t regimeEpoch_ = 0;
    std::function<void(Addr, uint32_t)> blockHook_;
    Addr blockStart_ = ~0ULL; ///< step-path BBV tracking
    uint32_t blockLen_ = 0;

    // Handler dispatch table, filled by the first run() invocation.
    static const void *const *handlerTable();
    friend struct NemuExec;
};

} // namespace minjie::nemu

#endif // MINJIE_NEMU_NEMU_H
