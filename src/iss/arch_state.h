/**
 * @file
 * The RISC-V architectural state: exactly the state space S_P the DRAV
 * formalism compares between DUT and REF (paper Section III-A).
 */

#ifndef MINJIE_ISS_ARCH_STATE_H
#define MINJIE_ISS_ARCH_STATE_H

#include <cstdint>

#include "common/types.h"
#include "iss/csrfile.h"
#include "isa/trap.h"

namespace minjie::iss {

/** Complete per-hart architectural state. */
struct ArchState
{
    Addr pc = 0;
    RegVal x[32] = {};   ///< integer registers; x[0] pinned to zero
    uint64_t f[32] = {}; ///< fp registers (raw bit patterns, NaN-boxed)
    isa::Priv priv = isa::Priv::M;
    CsrFile csr;

    // LR/SC reservation.
    bool resValid = false;
    Addr resAddr = 0;

    InstCount instret = 0;

    void
    reset(Addr entry, uint64_t hartid)
    {
        pc = entry;
        for (auto &r : x)
            r = 0;
        for (auto &r : f)
            r = 0;
        priv = isa::Priv::M;
        csr.reset(hartid);
        resValid = false;
        instret = 0;
    }

    /** Write an integer register, keeping x0 hardwired to zero. */
    void
    setX(unsigned rd, RegVal val)
    {
        x[rd] = val;
        x[0] = 0;
    }

    /**
     * Write an fp register (raw NaN-boxed bit pattern). The single
     * sanctioned store path into f[] (lint MJ-PRB-002): every value
     * DiffTest compares flows through here, so probes and future
     * write-tracing hook one place. Callers still mark mstatus.FS
     * dirty via CsrFile::setFsDirty().
     */
    void
    setF(unsigned rd, uint64_t bits)
    {
        f[rd] = bits;
    }
};

/**
 * Redirect @p st into the trap handler for @p trap raised at @p epc.
 * Handles M/S delegation, cause/tval/epc bookkeeping, and the status
 * stack (xPIE/xPP).
 */
void takeTrap(ArchState &st, const isa::Trap &trap, Addr epc);

/** Enter the interrupt handler for @p irq (mcause interrupt bit set). */
void takeInterrupt(ArchState &st, isa::Irq irq);

/**
 * Highest-priority interrupt currently deliverable to @p st, or zero.
 * Deliverability follows mstatus.MIE/SIE, mideleg and the privilege
 * level; the result is an Irq cause or ~0 when none is pending.
 */
uint64_t pendingInterrupt(const ArchState &st);

} // namespace minjie::iss

#endif // MINJIE_ISS_ARCH_STATE_H
