#include "iss/mmu.h"

#include "common/bitutil.h"

namespace minjie::iss {

using namespace minjie::isa;

namespace {

// PTE permission bits.
constexpr uint64_t PTE_V = 1 << 0;
constexpr uint64_t PTE_R = 1 << 1;
constexpr uint64_t PTE_W = 1 << 2;
constexpr uint64_t PTE_X = 1 << 3;
constexpr uint64_t PTE_U = 1 << 4;
constexpr uint64_t PTE_A = 1 << 6;
constexpr uint64_t PTE_D = 1 << 7;

} // namespace

Priv
Mmu::effectivePriv(Access acc) const
{
    const auto &csr = st_.csr;
    if (acc != Access::Fetch && (csr.mstatus & MSTATUS_MPRV))
        return static_cast<Priv>((csr.mstatus & MSTATUS_MPP) >> 11);
    return st_.priv;
}

bool
Mmu::translationOn() const
{
    return (st_.csr.satp >> SATP_MODE_SHIFT) == SATP_MODE_SV39 &&
           effectivePriv(Access::Load) != Priv::M;
}

Exc
Mmu::faultFor(Access acc) const
{
    switch (acc) {
      case Access::Fetch: return Exc::InstPageFault;
      case Access::Load: return Exc::LoadPageFault;
      default: return Exc::StorePageFault;
    }
}

Trap
Mmu::translate(Addr vaddr, Access acc, Addr &paddr)
{
    Priv eff = effectivePriv(acc);
    bool on = (st_.csr.satp >> SATP_MODE_SHIFT) == SATP_MODE_SV39 &&
              eff != Priv::M;
    if (!on) {
        paddr = vaddr;
        lastPaddr_ = paddr;
        return Trap::none();
    }

    // Sv39 requires bits 63..39 to equal bit 38.
    int64_t sva = static_cast<int64_t>(vaddr);
    if ((sva << 25) >> 25 != sva) {
        ++stats_.pageFaults;
        return Trap::make(faultFor(acc), vaddr);
    }

    // TLB lookup (accessed/dirty already guaranteed set on insert path).
    Addr vpn = vaddr >> 12;
    TlbEntry &e = tlb_[vpn % TLB_SIZE];
    if (e.valid && e.vpn == vpn) {
        uint64_t p = e.perms;
        bool ok;
        const auto &csr = st_.csr;
        switch (acc) {
          case Access::Fetch:
            ok = (p & PTE_X) &&
                 ((eff == Priv::U) == static_cast<bool>(p & PTE_U));
            break;
          case Access::Load:
            ok = ((p & PTE_R) ||
                  ((csr.mstatus & MSTATUS_MXR) && (p & PTE_X)));
            if (eff == Priv::U)
                ok = ok && (p & PTE_U);
            else if (p & PTE_U)
                ok = ok && (csr.mstatus & MSTATUS_SUM);
            break;
          default:
            ok = (p & PTE_W) && (p & PTE_D);
            if (eff == Priv::U)
                ok = ok && (p & PTE_U);
            else if (p & PTE_U)
                ok = ok && (csr.mstatus & MSTATUS_SUM);
            break;
        }
        if (ok) {
            ++stats_.tlbHits;
            paddr = (e.ppn << 12) | (vaddr & 0xfff);
            lastPaddr_ = paddr;
            return Trap::none();
        }
    }
    ++stats_.tlbMisses;
    return walk(vaddr, acc, eff, paddr);
}

Trap
Mmu::walk(Addr vaddr, Access acc, Priv eff, Addr &paddr)
{
    ++stats_.pageWalks;
    const auto &csr = st_.csr;
    Addr root = (csr.satp & SATP_PPN_MASK) << 12;
    Addr a = root;
    int level = 2;
    uint64_t pte = 0;
    Addr pteAddr = 0;

    for (;;) {
        unsigned idx = static_cast<unsigned>(
            (vaddr >> (12 + 9 * level)) & 0x1ff);
        pteAddr = a + idx * 8;
        if (!readPhys(pteAddr, 8, pte)) {
            ++stats_.pageFaults;
            return Trap::make(acc == Access::Fetch
                                  ? Exc::InstAccessFault
                                  : (acc == Access::Load
                                         ? Exc::LoadAccessFault
                                         : Exc::StoreAccessFault),
                              vaddr);
        }
        if (!(pte & PTE_V) || (!(pte & PTE_R) && (pte & PTE_W))) {
            ++stats_.pageFaults;
            return Trap::make(faultFor(acc), vaddr);
        }
        if (pte & (PTE_R | PTE_X))
            break; // leaf
        if (--level < 0) {
            ++stats_.pageFaults;
            return Trap::make(faultFor(acc), vaddr);
        }
        a = ((pte >> 10) & ((1ULL << 44) - 1)) << 12;
    }

    // Permission checks.
    bool ok = true;
    switch (acc) {
      case Access::Fetch:
        ok = (pte & PTE_X);
        if (eff == Priv::U)
            ok = ok && (pte & PTE_U);
        else
            ok = ok && !(pte & PTE_U);
        break;
      case Access::Load:
        ok = (pte & PTE_R) ||
             ((csr.mstatus & MSTATUS_MXR) && (pte & PTE_X));
        if (eff == Priv::U)
            ok = ok && (pte & PTE_U);
        else if (pte & PTE_U)
            ok = ok && (csr.mstatus & MSTATUS_SUM);
        break;
      default:
        ok = (pte & PTE_W);
        if (eff == Priv::U)
            ok = ok && (pte & PTE_U);
        else if (pte & PTE_U)
            ok = ok && (csr.mstatus & MSTATUS_SUM);
        break;
    }
    if (!ok) {
        ++stats_.pageFaults;
        return Trap::make(faultFor(acc), vaddr);
    }

    // Misaligned superpage?
    uint64_t ppn = (pte >> 10) & ((1ULL << 44) - 1);
    if (level > 0 && (ppn & ((1ULL << (9 * level)) - 1))) {
        ++stats_.pageFaults;
        return Trap::make(faultFor(acc), vaddr);
    }

    // Hardware A/D update (Svadu-style, matching the DUT configuration).
    uint64_t newPte = pte | PTE_A | (acc == Access::Store ? PTE_D : 0);
    if (newPte != pte)
        writePhys(pteAddr, 8, newPte);

    // Compose the physical address; superpages take low PPN bits from va.
    Addr vpn = vaddr >> 12;
    Addr leafPpn = ppn;
    if (level > 0) {
        Addr mask = (1ULL << (9 * level)) - 1;
        leafPpn = (ppn & ~mask) | (vpn & mask);
    }
    paddr = (leafPpn << 12) | (vaddr & 0xfff);
    lastPaddr_ = paddr;

    // Insert a 4K-granule entry into the TLB. Stores require the D bit
    // which we just set; record the updated permissions.
    TlbEntry &e = tlb_[vpn % TLB_SIZE];
    e.vpn = vpn;
    e.ppn = leafPpn;
    e.perms = static_cast<uint8_t>(newPte & 0xff);
    e.valid = true;
    return Trap::none();
}

Trap
Mmu::load(Addr vaddr, unsigned size, uint64_t &data)
{
    if ((vaddr & (size - 1)) &&
        ((vaddr & 0xfff) + size > 0x1000)) {
        // Misaligned access crossing a page: split bytewise.
        data = 0;
        for (unsigned i = 0; i < size; ++i) {
            uint64_t byte;
            Trap t = load(vaddr + i, 1, byte);
            if (t.pending())
                return Trap::make(t.cause, vaddr);
            data |= byte << (8 * i);
        }
        return Trap::none();
    }
    Addr paddr;
    Trap t = translate(vaddr, Access::Load, paddr);
    if (t.pending())
        return t;
    if (!readPhys(paddr, size, data))
        return Trap::make(Exc::LoadAccessFault, vaddr);
    return Trap::none();
}

Trap
Mmu::store(Addr vaddr, unsigned size, uint64_t data)
{
    if ((vaddr & (size - 1)) &&
        ((vaddr & 0xfff) + size > 0x1000)) {
        for (unsigned i = 0; i < size; ++i) {
            Trap t = store(vaddr + i, 1, (data >> (8 * i)) & 0xff);
            if (t.pending())
                return Trap::make(t.cause, vaddr);
        }
        return Trap::none();
    }
    Addr paddr;
    Trap t = translate(vaddr, Access::Store, paddr);
    if (t.pending())
        return t;
    if (!writePhys(paddr, size, data))
        return Trap::make(Exc::StoreAccessFault, vaddr);
    return Trap::none();
}

Trap
Mmu::fetch(Addr vaddr, uint32_t &raw)
{
    if (vaddr & 1)
        return Trap::make(Exc::InstAddrMisaligned, vaddr);
    Addr paddr;
    Trap t = translate(vaddr, Access::Fetch, paddr);
    if (t.pending())
        return t;

    // Fast path: when all 4 bytes sit in one page, grab them with a
    // single bus read. A compressed instruction just ignores the high
    // half, so the result is identical to the two-halfword path; if
    // the wide read fails (e.g. the last 2 bytes of the DRAM window or
    // an MMIO fetch), fall through to the exact bytewise sequence.
    uint64_t wide;
    if ((vaddr & 0xfff) <= 0xffc && readPhys(paddr, 4, wide)) {
        raw = static_cast<uint32_t>(wide);
        if ((raw & 0x3) != 0x3)
            raw &= 0xffff; // compressed: match the halfword read
        return Trap::none();
    }

    uint64_t lo;
    if (!readPhys(paddr, 2, lo))
        return Trap::make(Exc::InstAccessFault, vaddr);
    raw = static_cast<uint32_t>(lo);
    if ((raw & 0x3) != 0x3)
        return Trap::none(); // compressed

    Addr vhi = vaddr + 2;
    Addr phi = paddr + 2;
    if ((vhi & 0xfff) == 0) { // crosses a page
        Trap t2 = translate(vhi, Access::Fetch, phi);
        if (t2.pending())
            return t2;
    }
    uint64_t hi;
    if (!readPhys(phi, 2, hi))
        return Trap::make(Exc::InstAccessFault, vhi);
    raw |= static_cast<uint32_t>(hi) << 16;
    return Trap::none();
}

void
Mmu::flushTlb()
{
    for (auto &e : tlb_)
        e.valid = false;
    if (flushHook_)
        flushHook_();
}

} // namespace minjie::iss
