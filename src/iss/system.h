/**
 * @file
 * A minimal functional system: DRAM + bus + standard devices. Both the
 * reference models and the cycle model instantiate one of these.
 */

#ifndef MINJIE_ISS_SYSTEM_H
#define MINJIE_ISS_SYSTEM_H

#include "mem/bus.h"

namespace minjie::iss {

/** DRAM base used by every workload in the repository. */
constexpr Addr DRAM_BASE = 0x80000000;

struct System
{
    explicit System(uint64_t dram_mb = 256)
        : dram(DRAM_BASE, dram_mb * 1024 * 1024), bus(dram)
    {
        bus.addDevice(&uart);
        bus.addDevice(&clint);
        bus.addDevice(&simctrl);
    }

    mem::PhysMem dram;
    mem::Bus bus;
    mem::Uart uart;
    mem::Clint clint;
    mem::SimCtrl simctrl;
};

} // namespace minjie::iss

#endif // MINJIE_ISS_SYSTEM_H
