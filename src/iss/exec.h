/**
 * @file
 * Architectural instruction semantics shared by every execution engine.
 */

#ifndef MINJIE_ISS_EXEC_H
#define MINJIE_ISS_EXEC_H

#include "fp/ops.h"
#include "isa/inst.h"
#include "iss/arch_state.h"
#include "iss/mmu.h"

namespace minjie::iss {

/**
 * Probe-visible side effects of one executed instruction; DiffTest's
 * information probes are populated from this (paper Section III-B3).
 */
struct ExecInfo
{
    bool memValid = false;  ///< instruction accessed memory
    bool isStore = false;
    bool isMmio = false;    ///< access hit device space (skip in REF)
    Addr memVaddr = 0;
    Addr memPaddr = 0;
    uint64_t memData = 0;   ///< store data / load result
    uint8_t memSize = 0;
    bool scFailed = false;  ///< store-conditional failed
    bool csrWritten = false;
    uint16_t csrAddr = 0;
};

/**
 * Execute @p di against @p st.
 *
 * On success the architectural state (registers, CSRs, pc) reflects the
 * completed instruction and Trap::none() is returned. On a trap the
 * state is unmodified except as permitted (no partial effects) and the
 * caller is responsible for takeTrap(). @p info, when non-null, receives
 * the probe-visible side effects.
 */
isa::Trap execInst(ArchState &st, Mmu &mmu, const isa::DecodedInst &di,
                   fp::FpBackend fpb, ExecInfo *info = nullptr);

} // namespace minjie::iss

#endif // MINJIE_ISS_EXEC_H
