#include "iss/exec.h"

#include <bit>

#include "common/bitutil.h"

namespace minjie::iss {

using namespace minjie::isa;

namespace {

int64_t s64(uint64_t v) { return static_cast<int64_t>(v); }
int32_t s32(uint64_t v) { return static_cast<int32_t>(v); }
uint64_t sx32(uint64_t v) { return static_cast<uint64_t>(s64(sext(v, 32))); }

uint64_t
mulhu64(uint64_t a, uint64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(a) * b) >> 64);
}

uint64_t
mulh64(int64_t a, int64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<__int128>(a) * b) >> 64);
}

uint64_t
mulhsu64(int64_t a, uint64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<__int128>(a) * static_cast<unsigned __int128>(b)) >>
        64);
}

uint64_t
div64(int64_t a, int64_t b)
{
    if (b == 0)
        return ~0ULL;
    if (a == INT64_MIN && b == -1)
        return static_cast<uint64_t>(INT64_MIN);
    return static_cast<uint64_t>(a / b);
}

uint64_t
rem64(int64_t a, int64_t b)
{
    if (b == 0)
        return static_cast<uint64_t>(a);
    if (a == INT64_MIN && b == -1)
        return 0;
    return static_cast<uint64_t>(a % b);
}

/** LR/SC reservation granule: 64-byte blocks, matching the DUT caches. */
constexpr Addr RES_GRANULE = ~static_cast<Addr>(63);

uint64_t
amoCompute(Op op, uint64_t old, uint64_t src, unsigned size)
{
    bool w = size == 4;
    int64_t so = w ? s32(old) : s64(old);
    int64_t ss = w ? s32(src) : s64(src);
    uint64_t uo = w ? (old & 0xffffffffu) : old;
    uint64_t us = w ? (src & 0xffffffffu) : src;
    switch (op) {
      case Op::AmoSwapW: case Op::AmoSwapD: return src;
      case Op::AmoAddW: case Op::AmoAddD: return old + src;
      case Op::AmoXorW: case Op::AmoXorD: return old ^ src;
      case Op::AmoAndW: case Op::AmoAndD: return old & src;
      case Op::AmoOrW: case Op::AmoOrD: return old | src;
      case Op::AmoMinW: case Op::AmoMinD:
        return so < ss ? old : src;
      case Op::AmoMaxW: case Op::AmoMaxD:
        return so > ss ? old : src;
      case Op::AmoMinuW: case Op::AmoMinuD:
        return uo < us ? old : src;
      case Op::AmoMaxuW: case Op::AmoMaxuD:
        return uo > us ? old : src;
      default: return src;
    }
}

} // namespace

Trap
execInst(ArchState &st, Mmu &mmu, const DecodedInst &di, fp::FpBackend fpb,
         ExecInfo *info)
{
    const Op op = di.op;
    const Addr pc = st.pc;
    const Addr next = pc + di.size;
    const uint64_t rs1 = st.x[di.rs1];
    const uint64_t rs2 = st.x[di.rs2];
    const int64_t imm = di.imm;
    auto &csr = st.csr;

    auto setRd = [&](uint64_t v) { st.setX(di.rd, v); };
    auto trapIllegal = [&] {
        return Trap::make(Exc::IllegalInst, di.raw);
    };

    switch (op) {
      case Op::Illegal:
        return trapIllegal();

      // ------------------------------------------------ control flow
      case Op::Lui: setRd(static_cast<uint64_t>(imm)); break;
      case Op::Auipc: setRd(pc + static_cast<uint64_t>(imm)); break;
      case Op::Jal:
        setRd(next);
        st.pc = pc + static_cast<uint64_t>(imm);
        return Trap::none();
      case Op::Jalr: {
        Addr target = (rs1 + static_cast<uint64_t>(imm)) & ~1ULL;
        setRd(next);
        st.pc = target;
        return Trap::none();
      }
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu: {
        bool taken;
        switch (op) {
          case Op::Beq: taken = rs1 == rs2; break;
          case Op::Bne: taken = rs1 != rs2; break;
          case Op::Blt: taken = s64(rs1) < s64(rs2); break;
          case Op::Bge: taken = s64(rs1) >= s64(rs2); break;
          case Op::Bltu: taken = rs1 < rs2; break;
          default: taken = rs1 >= rs2; break;
        }
        st.pc = taken ? pc + static_cast<uint64_t>(imm) : next;
        return Trap::none();
      }

      // ------------------------------------------------ loads/stores
      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Ld:
      case Op::Lbu: case Op::Lhu: case Op::Lwu: {
        Addr va = rs1 + static_cast<uint64_t>(imm);
        unsigned size = memSize(op);
        uint64_t data;
        Trap t = mmu.load(va, size, data);
        if (t.pending())
            return t;
        uint64_t val = loadSigned(op)
            ? static_cast<uint64_t>(sext(data, size * 8))
            : data;
        setRd(val);
        if (info) {
            info->memValid = true;
            info->memVaddr = va;
            info->memPaddr = mmu.lastPaddr();
            info->memData = val;
            info->memSize = static_cast<uint8_t>(size);
            info->isMmio = mmu.mem().isMmio(mmu.lastPaddr());
        }
        break;
      }
      case Op::Sb: case Op::Sh: case Op::Sw: case Op::Sd: {
        Addr va = rs1 + static_cast<uint64_t>(imm);
        unsigned size = memSize(op);
        Trap t = mmu.store(va, size, rs2);
        if (t.pending())
            return t;
        if (info) {
            info->memValid = true;
            info->isStore = true;
            info->memVaddr = va;
            info->memPaddr = mmu.lastPaddr();
            info->memData = size == 8 ? rs2 : zext(rs2, size * 8);
            info->memSize = static_cast<uint8_t>(size);
            info->isMmio = mmu.mem().isMmio(mmu.lastPaddr());
        }
        break;
      }
      case Op::Flw: case Op::Fld: {
        if (!csr.fpEnabled())
            return trapIllegal();
        Addr va = rs1 + static_cast<uint64_t>(imm);
        unsigned size = memSize(op);
        uint64_t data;
        Trap t = mmu.load(va, size, data);
        if (t.pending())
            return t;
        st.setF(di.rd, op == Op::Flw
            ? fp::boxF32(static_cast<uint32_t>(data)) : data);
        csr.setFsDirty();
        if (info) {
            info->memValid = true;
            info->memVaddr = va;
            info->memPaddr = mmu.lastPaddr();
            info->memData = data;
            info->memSize = static_cast<uint8_t>(size);
            info->isMmio = mmu.mem().isMmio(mmu.lastPaddr());
        }
        break;
      }
      case Op::Fsw: case Op::Fsd: {
        if (!csr.fpEnabled())
            return trapIllegal();
        Addr va = rs1 + static_cast<uint64_t>(imm);
        unsigned size = memSize(op);
        uint64_t data = st.f[di.rs2];
        Trap t = mmu.store(va, size, data);
        if (t.pending())
            return t;
        if (info) {
            info->memValid = true;
            info->isStore = true;
            info->memVaddr = va;
            info->memPaddr = mmu.lastPaddr();
            info->memData = size == 8 ? data : zext(data, size * 8);
            info->memSize = static_cast<uint8_t>(size);
            info->isMmio = mmu.mem().isMmio(mmu.lastPaddr());
        }
        break;
      }

      // ------------------------------------------------ atomics
      case Op::LrW: case Op::LrD: {
        unsigned size = memSize(op);
        if (rs1 & (size - 1))
            return Trap::make(Exc::LoadAddrMisaligned, rs1);
        uint64_t data;
        Trap t = mmu.load(rs1, size, data);
        if (t.pending())
            return t;
        setRd(static_cast<uint64_t>(sext(data, size * 8)));
        st.resValid = true;
        st.resAddr = rs1 & RES_GRANULE;
        if (info) {
            info->memValid = true;
            info->memVaddr = rs1;
            info->memPaddr = mmu.lastPaddr();
            info->memData = data;
            info->memSize = static_cast<uint8_t>(size);
        }
        break;
      }
      case Op::ScW: case Op::ScD: {
        unsigned size = memSize(op);
        if (rs1 & (size - 1))
            return Trap::make(Exc::StoreAddrMisaligned, rs1);
        bool ok = st.resValid && st.resAddr == (rs1 & RES_GRANULE);
        st.resValid = false;
        if (ok) {
            Trap t = mmu.store(rs1, size, rs2);
            if (t.pending())
                return t;
            setRd(0);
            if (info) {
                info->memValid = true;
                info->isStore = true;
                info->memVaddr = rs1;
                info->memPaddr = mmu.lastPaddr();
                info->memData = size == 8 ? rs2 : zext(rs2, size * 8);
                info->memSize = static_cast<uint8_t>(size);
            }
        } else {
            setRd(1);
            if (info)
                info->scFailed = true;
        }
        break;
      }
      case Op::AmoSwapW: case Op::AmoAddW: case Op::AmoXorW:
      case Op::AmoAndW: case Op::AmoOrW: case Op::AmoMinW:
      case Op::AmoMaxW: case Op::AmoMinuW: case Op::AmoMaxuW:
      case Op::AmoSwapD: case Op::AmoAddD: case Op::AmoXorD:
      case Op::AmoAndD: case Op::AmoOrD: case Op::AmoMinD:
      case Op::AmoMaxD: case Op::AmoMinuD: case Op::AmoMaxuD: {
        unsigned size = memSize(op);
        if (rs1 & (size - 1))
            return Trap::make(Exc::StoreAddrMisaligned, rs1);
        uint64_t old;
        // AMO requires write permission even for the read half.
        Addr paddr;
        Trap t = mmu.translate(rs1, Access::Store, paddr);
        if (t.pending())
            return t;
        if (!mmu.mem().read(paddr, size, old))
            return Trap::make(Exc::StoreAccessFault, rs1);
        uint64_t newval = amoCompute(op, old, rs2, size);
        if (!mmu.mem().write(paddr, size, newval))
            return Trap::make(Exc::StoreAccessFault, rs1);
        setRd(static_cast<uint64_t>(sext(old, size * 8)));
        if (info) {
            info->memValid = true;
            info->isStore = true;
            info->memVaddr = rs1;
            info->memPaddr = paddr;
            info->memData = size == 8 ? newval : zext(newval, size * 8);
            info->memSize = static_cast<uint8_t>(size);
        }
        break;
      }

      // ------------------------------------------------ integer ALU
      case Op::Addi: setRd(rs1 + imm); break;
      case Op::Slti: setRd(s64(rs1) < imm ? 1 : 0); break;
      case Op::Sltiu:
        setRd(rs1 < static_cast<uint64_t>(imm) ? 1 : 0);
        break;
      case Op::Xori: setRd(rs1 ^ static_cast<uint64_t>(imm)); break;
      case Op::Ori: setRd(rs1 | static_cast<uint64_t>(imm)); break;
      case Op::Andi: setRd(rs1 & static_cast<uint64_t>(imm)); break;
      case Op::Slli: setRd(rs1 << (imm & 63)); break;
      case Op::Srli: setRd(rs1 >> (imm & 63)); break;
      case Op::Srai: setRd(static_cast<uint64_t>(s64(rs1) >> (imm & 63)));
        break;
      case Op::Add: setRd(rs1 + rs2); break;
      case Op::Sub: setRd(rs1 - rs2); break;
      case Op::Sll: setRd(rs1 << (rs2 & 63)); break;
      case Op::Slt: setRd(s64(rs1) < s64(rs2) ? 1 : 0); break;
      case Op::Sltu: setRd(rs1 < rs2 ? 1 : 0); break;
      case Op::Xor: setRd(rs1 ^ rs2); break;
      case Op::Srl: setRd(rs1 >> (rs2 & 63)); break;
      case Op::Sra:
        setRd(static_cast<uint64_t>(s64(rs1) >> (rs2 & 63)));
        break;
      case Op::Or: setRd(rs1 | rs2); break;
      case Op::And: setRd(rs1 & rs2); break;
      case Op::Addiw: setRd(sx32(rs1 + imm)); break;
      case Op::Slliw: setRd(sx32(rs1 << (imm & 31))); break;
      case Op::Srliw:
        setRd(sx32((rs1 & 0xffffffffu) >> (imm & 31)));
        break;
      case Op::Sraiw:
        setRd(static_cast<uint64_t>(
            static_cast<int64_t>(s32(rs1) >> (imm & 31))));
        break;
      case Op::Addw: setRd(sx32(rs1 + rs2)); break;
      case Op::Subw: setRd(sx32(rs1 - rs2)); break;
      case Op::Sllw: setRd(sx32(rs1 << (rs2 & 31))); break;
      case Op::Srlw:
        setRd(sx32((rs1 & 0xffffffffu) >> (rs2 & 31)));
        break;
      case Op::Sraw:
        setRd(static_cast<uint64_t>(
            static_cast<int64_t>(s32(rs1) >> (rs2 & 31))));
        break;

      // ------------------------------------------------ M extension
      case Op::Mul: setRd(rs1 * rs2); break;
      case Op::Mulh: setRd(mulh64(s64(rs1), s64(rs2))); break;
      case Op::Mulhsu: setRd(mulhsu64(s64(rs1), rs2)); break;
      case Op::Mulhu: setRd(mulhu64(rs1, rs2)); break;
      case Op::Div: setRd(div64(s64(rs1), s64(rs2))); break;
      case Op::Divu: setRd(rs2 == 0 ? ~0ULL : rs1 / rs2); break;
      case Op::Rem: setRd(rem64(s64(rs1), s64(rs2))); break;
      case Op::Remu: setRd(rs2 == 0 ? rs1 : rs1 % rs2); break;
      case Op::Mulw: setRd(sx32(rs1 * rs2)); break;
      case Op::Divw: {
        int32_t a = s32(rs1), b = s32(rs2);
        int32_t r = b == 0 ? -1
            : (a == INT32_MIN && b == -1 ? INT32_MIN : a / b);
        setRd(static_cast<uint64_t>(static_cast<int64_t>(r)));
        break;
      }
      case Op::Divuw: {
        uint32_t a = static_cast<uint32_t>(rs1);
        uint32_t b = static_cast<uint32_t>(rs2);
        setRd(b == 0 ? ~0ULL : sx32(a / b));
        break;
      }
      case Op::Remw: {
        int32_t a = s32(rs1), b = s32(rs2);
        int32_t r = b == 0 ? a
            : (a == INT32_MIN && b == -1 ? 0 : a % b);
        setRd(static_cast<uint64_t>(static_cast<int64_t>(r)));
        break;
      }
      case Op::Remuw: {
        uint32_t a = static_cast<uint32_t>(rs1);
        uint32_t b = static_cast<uint32_t>(rs2);
        setRd(b == 0 ? sx32(a) : sx32(a % b));
        break;
      }

      // ------------------------------------------------ Zba / Zbb
      case Op::AddUw: setRd((rs1 & 0xffffffffu) + rs2); break;
      case Op::Sh1add: setRd((rs1 << 1) + rs2); break;
      case Op::Sh2add: setRd((rs1 << 2) + rs2); break;
      case Op::Sh3add: setRd((rs1 << 3) + rs2); break;
      case Op::Sh1addUw: setRd(((rs1 & 0xffffffffu) << 1) + rs2); break;
      case Op::Sh2addUw: setRd(((rs1 & 0xffffffffu) << 2) + rs2); break;
      case Op::Sh3addUw: setRd(((rs1 & 0xffffffffu) << 3) + rs2); break;
      case Op::SlliUw: setRd((rs1 & 0xffffffffu) << (imm & 63)); break;
      case Op::Andn: setRd(rs1 & ~rs2); break;
      case Op::Orn: setRd(rs1 | ~rs2); break;
      case Op::Xnor: setRd(~(rs1 ^ rs2)); break;
      case Op::Clz: setRd(std::countl_zero(rs1)); break;
      case Op::Ctz: setRd(std::countr_zero(rs1)); break;
      case Op::Cpop: setRd(std::popcount(rs1)); break;
      case Op::Clzw:
        setRd(std::countl_zero(static_cast<uint32_t>(rs1)));
        break;
      case Op::Ctzw:
        setRd(std::countr_zero(static_cast<uint32_t>(rs1)));
        break;
      case Op::Cpopw:
        setRd(std::popcount(static_cast<uint32_t>(rs1)));
        break;
      case Op::Max: setRd(s64(rs1) > s64(rs2) ? rs1 : rs2); break;
      case Op::Maxu: setRd(rs1 > rs2 ? rs1 : rs2); break;
      case Op::Min: setRd(s64(rs1) < s64(rs2) ? rs1 : rs2); break;
      case Op::Minu: setRd(rs1 < rs2 ? rs1 : rs2); break;
      case Op::SextB: setRd(static_cast<uint64_t>(sext(rs1, 8))); break;
      case Op::SextH: setRd(static_cast<uint64_t>(sext(rs1, 16))); break;
      case Op::ZextH: setRd(rs1 & 0xffff); break;
      case Op::Rol: setRd(std::rotl(rs1, static_cast<int>(rs2 & 63)));
        break;
      case Op::Ror: setRd(std::rotr(rs1, static_cast<int>(rs2 & 63)));
        break;
      case Op::Rori: setRd(std::rotr(rs1, static_cast<int>(imm & 63)));
        break;
      case Op::Rolw:
        setRd(sx32(std::rotl(static_cast<uint32_t>(rs1),
                             static_cast<int>(rs2 & 31))));
        break;
      case Op::Rorw:
        setRd(sx32(std::rotr(static_cast<uint32_t>(rs1),
                             static_cast<int>(rs2 & 31))));
        break;
      case Op::Roriw:
        setRd(sx32(std::rotr(static_cast<uint32_t>(rs1),
                             static_cast<int>(imm & 31))));
        break;
      case Op::OrcB: {
        uint64_t r = 0;
        for (int i = 0; i < 8; ++i)
            if ((rs1 >> (8 * i)) & 0xff)
                r |= 0xffULL << (8 * i);
        setRd(r);
        break;
      }
      case Op::Rev8: {
        uint64_t r = __builtin_bswap64(rs1);
        setRd(r);
        break;
      }

      // ------------------------------------------------ fences/system
      case Op::Fence:
        break;
      case Op::FenceI:
        break;
      case Op::SfenceVma:
        if (st.priv == Priv::U ||
            (st.priv == Priv::S && (csr.mstatus & MSTATUS_TVM)))
            return trapIllegal();
        mmu.flushTlb();
        break;
      case Op::Ecall:
        switch (st.priv) {
          case Priv::U: return Trap::make(Exc::EcallFromU);
          case Priv::S: return Trap::make(Exc::EcallFromS);
          default: return Trap::make(Exc::EcallFromM);
        }
      case Op::Ebreak:
        return Trap::make(Exc::Breakpoint, pc);
      case Op::Mret: {
        if (st.priv != Priv::M)
            return trapIllegal();
        uint64_t s = csr.mstatus;
        auto mpp = static_cast<Priv>((s & MSTATUS_MPP) >> 11);
        s = (s & ~MSTATUS_MIE) | ((s & MSTATUS_MPIE) ? MSTATUS_MIE : 0);
        s |= MSTATUS_MPIE;
        s &= ~MSTATUS_MPP;
        if (mpp != Priv::M)
            s &= ~MSTATUS_MPRV;
        csr.setMstatusForTrap(s);
        st.priv = mpp;
        st.pc = csr.mepc;
        return Trap::none();
      }
      case Op::Sret: {
        if (st.priv == Priv::U ||
            (st.priv == Priv::S && (csr.mstatus & MSTATUS_TSR)))
            return trapIllegal();
        uint64_t s = csr.mstatus;
        auto spp = (s & MSTATUS_SPP) ? Priv::S : Priv::U;
        s = (s & ~MSTATUS_SIE) | ((s & MSTATUS_SPIE) ? MSTATUS_SIE : 0);
        s |= MSTATUS_SPIE;
        s &= ~MSTATUS_SPP;
        if (spp != Priv::M)
            s &= ~MSTATUS_MPRV;
        csr.setMstatusForTrap(s);
        st.priv = spp;
        st.pc = csr.sepc;
        return Trap::none();
      }
      case Op::Wfi:
        if (st.priv == Priv::U)
            return trapIllegal();
        break; // modeled as a nop

      // ------------------------------------------------ CSR
      case Op::Csrrw: case Op::Csrrs: case Op::Csrrc:
      case Op::Csrrwi: case Op::Csrrsi: case Op::Csrrci: {
        auto addr = static_cast<uint16_t>(imm & 0xfff);
        bool is_imm = op >= Op::Csrrwi;
        uint64_t src = is_imm ? di.rs1 : rs1;
        bool do_write = (op == Op::Csrrw || op == Op::Csrrwi) ||
                        di.rs1 != 0;
        bool do_read = !(op == Op::Csrrw || op == Op::Csrrwi) ||
                       di.rd != 0;
        uint64_t old = 0;
        if (do_read || do_write) {
            if (!csr.read(addr, st.priv, old))
                return trapIllegal();
        }
        if (do_write) {
            uint64_t newval;
            switch (op) {
              case Op::Csrrw: case Op::Csrrwi: newval = src; break;
              case Op::Csrrs: case Op::Csrrsi: newval = old | src; break;
              default: newval = old & ~src; break;
            }
            if (!csr.write(addr, st.priv, newval))
                return trapIllegal();
            if (info) {
                info->csrWritten = true;
                info->csrAddr = addr;
            }
        }
        setRd(old);
        break;
      }

      // ------------------------------------------------ floating point
      default: {
        if (!isFp(op))
            return trapIllegal();
        if (!csr.fpEnabled())
            return trapIllegal();
        unsigned rm = di.rm;
        if (rm == 7)
            rm = csr.frm;
        if (rm > 4)
            return trapIllegal();
        uint64_t a = readsFpRs1(op) ? st.f[di.rs1] : rs1;
        uint64_t b = st.f[di.rs2];
        uint64_t c = st.f[di.rs3];
        fp::FpOut out = fp::fpExec(op, a, b, c, rm, fpb);
        if (writesFpRd(op)) {
            st.setF(di.rd, out.value);
        } else {
            setRd(out.value);
        }
        if (out.flags) {
            csr.accumulateFflags(out.flags);
        }
        csr.setFsDirty();
        break;
      }
    }

    st.pc = next;
    return Trap::none();
}

} // namespace minjie::iss
