#include "iss/arch_state.h"

#include "isa/csr.h"

namespace minjie::iss {

using namespace minjie::isa;

namespace {

void
enterTrap(ArchState &st, uint64_t cause, uint64_t tval, Addr epc,
          bool interrupt)
{
    auto &csr = st.csr;
    bool delegate = st.priv != Priv::M &&
                    (interrupt ? (csr.mideleg >> (cause & 63)) & 1
                               : (csr.medeleg >> (cause & 63)) & 1);
    uint64_t cause_val = cause | (interrupt ? (1ULL << 63) : 0);

    if (delegate) {
        csr.sepc = epc;
        csr.scause = cause_val;
        csr.stval = tval;
        // Stack SIE into SPIE, record previous privilege.
        uint64_t s = csr.mstatus;
        s = (s & ~MSTATUS_SPIE) | ((s & MSTATUS_SIE) ? MSTATUS_SPIE : 0);
        s &= ~MSTATUS_SIE;
        s = (s & ~MSTATUS_SPP) |
            (st.priv == Priv::S ? MSTATUS_SPP : 0);
        csr.mstatus = s;
        st.priv = Priv::S;
        Addr base = csr.stvec & ~3ULL;
        if ((csr.stvec & 3) == 1 && interrupt)
            st.pc = base + 4 * cause;
        else
            st.pc = base;
    } else {
        csr.mepc = epc;
        csr.mcause = cause_val;
        csr.mtval = tval;
        uint64_t s = csr.mstatus;
        s = (s & ~MSTATUS_MPIE) | ((s & MSTATUS_MIE) ? MSTATUS_MPIE : 0);
        s &= ~MSTATUS_MIE;
        s = (s & ~MSTATUS_MPP) |
            (static_cast<uint64_t>(st.priv) << 11);
        csr.mstatus = s;
        st.priv = Priv::M;
        Addr base = csr.mtvec & ~3ULL;
        if ((csr.mtvec & 3) == 1 && interrupt)
            st.pc = base + 4 * cause;
        else
            st.pc = base;
    }
}

} // namespace

void
takeTrap(ArchState &st, const Trap &trap, Addr epc)
{
    enterTrap(st, static_cast<uint64_t>(trap.cause), trap.tval, epc, false);
}

void
takeInterrupt(ArchState &st, Irq irq)
{
    enterTrap(st, static_cast<uint64_t>(irq), 0, st.pc, true);
}

uint64_t
pendingInterrupt(const ArchState &st)
{
    const auto &csr = st.csr;
    uint64_t pending = csr.mip & csr.mie;
    if (!pending)
        return ~0ULL;

    uint64_t m_pending = pending & ~csr.mideleg;
    uint64_t s_pending = pending & csr.mideleg;

    bool m_enabled = st.priv != Priv::M || (csr.mstatus & MSTATUS_MIE);
    bool s_enabled = st.priv == Priv::U ||
                     (st.priv == Priv::S && (csr.mstatus & MSTATUS_SIE));

    // M-mode interrupts preempt S-mode ones.
    uint64_t take = 0;
    if (m_enabled && m_pending)
        take = m_pending;
    else if (s_enabled && s_pending)
        take = s_pending;
    if (!take)
        return ~0ULL;

    // Priority: MEI, MSI, MTI, SEI, SSI, STI.
    static const uint64_t order[] = {MIP_MEIP, MIP_MSIP, MIP_MTIP,
                                     MIP_SEIP, MIP_SSIP, MIP_STIP};
    static const uint64_t causes[] = {11, 3, 7, 9, 1, 5};
    for (unsigned i = 0; i < 6; ++i)
        if (take & order[i])
            return causes[i];
    return ~0ULL;
}

} // namespace minjie::iss
