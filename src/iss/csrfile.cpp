#include "iss/csrfile.h"

namespace minjie::iss {

using namespace minjie::isa;

namespace {

// Writable mstatus bits under M-mode writes.
constexpr uint64_t MSTATUS_WMASK =
    MSTATUS_SIE | MSTATUS_MIE | MSTATUS_SPIE | MSTATUS_MPIE | MSTATUS_SPP |
    MSTATUS_MPP | MSTATUS_FS | MSTATUS_MPRV | MSTATUS_SUM | MSTATUS_MXR |
    MSTATUS_TVM | MSTATUS_TW | MSTATUS_TSR;

// Writable sstatus bits (a view of mstatus).
constexpr uint64_t SSTATUS_WMASK =
    MSTATUS_SIE | MSTATUS_SPIE | MSTATUS_SPP | MSTATUS_FS | MSTATUS_SUM |
    MSTATUS_MXR;

constexpr uint64_t MIP_WMASK = MIP_SSIP | MIP_STIP | MIP_SEIP;

uint64_t
legalizeMstatus(uint64_t v)
{
    // MPP is WARL over {U, S, M}; an illegal write becomes U.
    if (((v & MSTATUS_MPP) >> 11) == 2)
        v &= ~MSTATUS_MPP;
    // UXL/SXL pinned to RV64.
    v = (v & ~(MSTATUS_UXL | MSTATUS_SXL)) | (2ULL << 32) | (2ULL << 34);
    // SD mirrors FS.
    if ((v & MSTATUS_FS) == MSTATUS_FS)
        v |= MSTATUS_SD;
    else
        v &= ~MSTATUS_SD;
    return v;
}

} // namespace

void
CsrFile::reset(uint64_t hartid)
{
    mstatus = legalizeMstatus(MSTATUS_FS); // fp initially on for bare-metal
    // RV64IMAFDC + S + U.
    misa = (2ULL << 62) | (1 << 0) | (1 << 2) | (1 << 3) | (1 << 5) |
           (1 << 8) | (1 << 12) | (1 << 18) | (1 << 20) | (1 << 1);
    medeleg = mideleg = 0;
    mie = mip = 0;
    mtvec = stvec = 0;
    mcounteren = scounteren = ~0ULL;
    mscratch = sscratch = 0;
    mepc = sepc = 0;
    mcause = scause = 0;
    mtval = stval = 0;
    mcycle = minstret = 0;
    mhartid = hartid;
    satp = 0;
    fflags = 0;
    frm = 0;
}

bool
CsrFile::read(uint16_t addr, isa::Priv priv, uint64_t &val) const
{
    // Privilege check: bits [9:8] give the minimum privilege.
    unsigned need = (addr >> 8) & 3;
    if (static_cast<unsigned>(priv) < need)
        return false;

    switch (addr) {
      case CSR_FFLAGS: val = fflags; return fpEnabled();
      case CSR_FRM: val = frm; return fpEnabled();
      case CSR_FCSR:
        val = (static_cast<uint64_t>(frm) << 5) | fflags;
        return fpEnabled();
      case CSR_CYCLE: val = mcycle; return true;
      case CSR_TIME: val = timeSrc ? *timeSrc : 0; return true;
      case CSR_INSTRET: val = minstret; return true;
      case CSR_SSTATUS: val = mstatus & SSTATUS_MASK; return true;
      case CSR_SIE: val = mie & mideleg; return true;
      case CSR_STVEC: val = stvec; return true;
      case CSR_SCOUNTEREN: val = scounteren; return true;
      case CSR_SSCRATCH: val = sscratch; return true;
      case CSR_SEPC: val = sepc; return true;
      case CSR_SCAUSE: val = scause; return true;
      case CSR_STVAL: val = stval; return true;
      case CSR_SIP: val = mip & mideleg; return true;
      case CSR_SATP:
        if (priv == isa::Priv::S && (mstatus & MSTATUS_TVM))
            return false;
        val = satp;
        return true;
      case CSR_MVENDORID: val = 0; return true;
      case CSR_MARCHID: val = 25; return true; // XiangShan's marchid
      case CSR_MIMPID: val = 0; return true;
      case CSR_MHARTID: val = mhartid; return true;
      case CSR_MSTATUS: val = mstatus; return true;
      case CSR_MISA: val = misa; return true;
      case CSR_MEDELEG: val = medeleg; return true;
      case CSR_MIDELEG: val = mideleg; return true;
      case CSR_MIE: val = mie; return true;
      case CSR_MTVEC: val = mtvec; return true;
      case CSR_MCOUNTEREN: val = mcounteren; return true;
      case CSR_MSCRATCH: val = mscratch; return true;
      case CSR_MEPC: val = mepc; return true;
      case CSR_MCAUSE: val = mcause; return true;
      case CSR_MTVAL: val = mtval; return true;
      case CSR_MIP: val = mip; return true;
      case CSR_PMPCFG0: val = pmpcfg0; return true;
      case CSR_PMPADDR0: val = pmpaddr0; return true;
      case CSR_MCYCLE: val = mcycle; return true;
      case CSR_MINSTRET: val = minstret; return true;
      case CSR_TSELECT: val = 0; return true;
      case CSR_TDATA1: val = 0; return true;
      default:
        // hpmcounters / hpmevents read as zero.
        if ((addr >= 0xb03 && addr <= 0xb1f) ||
            (addr >= 0x323 && addr <= 0x33f) ||
            (addr >= 0xc03 && addr <= 0xc1f)) {
            val = 0;
            return true;
        }
        return false;
    }
}

bool
CsrFile::write(uint16_t addr, isa::Priv priv, uint64_t val)
{
    unsigned need = (addr >> 8) & 3;
    if (static_cast<unsigned>(priv) < need)
        return false;
    if (((addr >> 10) & 3) == 3)
        return false; // read-only region

    switch (addr) {
      case CSR_FFLAGS:
        if (!fpEnabled())
            return false;
        fflags = val & 0x1f;
        setFsDirty();
        return true;
      case CSR_FRM:
        if (!fpEnabled())
            return false;
        frm = val & 0x7;
        setFsDirty();
        return true;
      case CSR_FCSR:
        if (!fpEnabled())
            return false;
        fflags = val & 0x1f;
        frm = (val >> 5) & 0x7;
        setFsDirty();
        return true;
      case CSR_SSTATUS:
        mstatus = legalizeMstatus((mstatus & ~SSTATUS_WMASK) |
                                  (val & SSTATUS_WMASK));
        return true;
      case CSR_SIE:
        mie = (mie & ~mideleg) | (val & mideleg);
        return true;
      case CSR_STVEC: stvec = val & ~2ULL; return true;
      case CSR_SCOUNTEREN: scounteren = val; return true;
      case CSR_SSCRATCH: sscratch = val; return true;
      case CSR_SEPC: sepc = val & ~1ULL; return true;
      case CSR_SCAUSE: scause = val; return true;
      case CSR_STVAL: stval = val; return true;
      case CSR_SIP:
        mip = (mip & ~(MIP_SSIP & mideleg)) | (val & MIP_SSIP & mideleg);
        return true;
      case CSR_SATP: {
        if (priv == isa::Priv::S && (mstatus & MSTATUS_TVM))
            return false;
        uint64_t mode = val >> SATP_MODE_SHIFT;
        if (mode != SATP_MODE_BARE && mode != SATP_MODE_SV39)
            return true; // WARL: ignore illegal mode writes
        satp = val & ((0xfULL << SATP_MODE_SHIFT) | (0xffffULL << 44) |
                      SATP_PPN_MASK);
        return true;
      }
      case CSR_MSTATUS:
        mstatus = legalizeMstatus((mstatus & ~MSTATUS_WMASK) |
                                  (val & MSTATUS_WMASK));
        return true;
      case CSR_MISA: return true; // WARL: ignore
      case CSR_MEDELEG:
        // Ecall-from-M is never delegable.
        medeleg = val & ~(1ULL << 11);
        return true;
      case CSR_MIDELEG:
        mideleg = val & SIP_MASK;
        return true;
      case CSR_MIE:
        mie = val & (MIP_SSIP | MIP_MSIP | MIP_STIP | MIP_MTIP | MIP_SEIP |
                     MIP_MEIP);
        return true;
      case CSR_MTVEC: mtvec = val & ~2ULL; return true;
      case CSR_MCOUNTEREN: mcounteren = val; return true;
      case CSR_MSCRATCH: mscratch = val; return true;
      case CSR_MEPC: mepc = val & ~1ULL; return true;
      case CSR_MCAUSE: mcause = val; return true;
      case CSR_MTVAL: mtval = val; return true;
      case CSR_MIP:
        mip = (mip & ~MIP_WMASK) | (val & MIP_WMASK);
        return true;
      case CSR_PMPCFG0: pmpcfg0 = val; return true;
      case CSR_PMPADDR0: pmpaddr0 = val; return true;
      case CSR_MCYCLE: mcycle = val; return true;
      case CSR_MINSTRET: minstret = val; return true;
      case CSR_TSELECT: return true;
      case CSR_TDATA1: return true;
      default:
        if ((addr >= 0xb03 && addr <= 0xb1f) ||
            (addr >= 0x323 && addr <= 0x33f))
            return true; // hpm stubs accept writes
        return false;
    }
}

} // namespace minjie::iss
