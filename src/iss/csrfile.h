/**
 * @file
 * Machine/supervisor CSR file with WARL write legalization.
 */

#ifndef MINJIE_ISS_CSRFILE_H
#define MINJIE_ISS_CSRFILE_H

#include <cstdint>

#include "isa/csr.h"
#include "isa/trap.h"

namespace minjie::iss {

/**
 * Storage and access legality for the implemented CSR subset.
 *
 * The ~120 machine-CSR diff-rules of the paper (Section III-B2) are
 * expressed over these fields; see difftest/csr_rules.cpp for the rule
 * table that captures which fields may legally diverge between DUT and
 * REF.
 */
class CsrFile
{
  public:
    CsrFile() { reset(0); }

    /** Reset to the architectural power-on state for hart @p hartid. */
    void reset(uint64_t hartid);

    /**
     * Read CSR @p addr as privilege @p priv.
     * @return false if the access is illegal (raise IllegalInst).
     */
    bool read(uint16_t addr, isa::Priv priv, uint64_t &val) const;

    /** Write CSR @p addr; applies WARL legalization. */
    bool write(uint16_t addr, isa::Priv priv, uint64_t val);

    // Direct named access for the executor / trap logic / probes.
    uint64_t mstatus = 0;
    uint64_t misa = 0;
    uint64_t medeleg = 0;
    uint64_t mideleg = 0;
    uint64_t mie = 0;
    uint64_t mtvec = 0;
    uint64_t mcounteren = 0;
    uint64_t mscratch = 0;
    uint64_t mepc = 0;
    uint64_t mcause = 0;
    uint64_t mtval = 0;
    uint64_t mip = 0;
    uint64_t mcycle = 0;
    uint64_t minstret = 0;
    uint64_t mhartid = 0;
    uint64_t stvec = 0;
    uint64_t scounteren = 0;
    uint64_t sscratch = 0;
    uint64_t sepc = 0;
    uint64_t scause = 0;
    uint64_t stval = 0;
    uint64_t satp = 0;
    uint64_t pmpcfg0 = 0;
    uint64_t pmpaddr0 = 0;
    uint8_t fflags = 0;
    uint8_t frm = 0;

    /** External time source (CLINT mtime); null reads as 0. */
    const uint64_t *timeSrc = nullptr;

    /** Set the FS field dirty after any fp register write. */
    void
    setFsDirty()
    {
        mstatus |= isa::MSTATUS_FS | isa::MSTATUS_SD;
    }

    /**
     * OR fp exception flags into fflags: the sanctioned accumulation
     * path for the executors (lint MJ-PRB-003). fflags is pure status
     * — every bit is writable — so no WARL legalization applies.
     */
    void
    accumulateFflags(uint8_t flags)
    {
        fflags |= flags;
    }

    /**
     * Install an mstatus image produced by trap entry / trap return
     * sequencing (lint MJ-PRB-003). The value must already be legal:
     * callers edit individual fields of the current image, they do
     * not launder arbitrary writes past write()'s legalization.
     */
    void
    setMstatusForTrap(uint64_t value)
    {
        mstatus = value;
    }

    bool fpEnabled() const { return (mstatus & isa::MSTATUS_FS) != 0; }
};

} // namespace minjie::iss

#endif // MINJIE_ISS_CSRFILE_H
