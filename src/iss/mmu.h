/**
 * @file
 * Sv39 MMU: translation, page-table walking, and a small functional TLB.
 *
 * This is the functional translation path shared by the interpreters;
 * the cycle model adds its own timing TLBs (uarch/tlb.h) on top. The
 * speculative-TLB diff-rule of the paper (Figure 3) exists because a
 * DUT's cached translation may be staler than this walker's view.
 */

#ifndef MINJIE_ISS_MMU_H
#define MINJIE_ISS_MMU_H

#include <functional>

#include "common/types.h"
#include "iss/arch_state.h"
#include "mem/bus.h"

namespace minjie::iss {

enum class Access : uint8_t { Fetch, Load, Store };

/** Statistics exposed for tests and perf counters. */
struct MmuStats
{
    uint64_t tlbHits = 0;
    uint64_t tlbMisses = 0;
    uint64_t pageWalks = 0;
    uint64_t pageFaults = 0;
};

class Mmu
{
  public:
    Mmu(ArchState &state, mem::MemPort &mem) : st_(state), mem_(mem)
    {
        flushTlb();
    }

    /**
     * Translate @p vaddr for @p acc; on success @p paddr holds the
     * physical address and Trap::none() is returned.
     */
    isa::Trap translate(Addr vaddr, Access acc, Addr &paddr);

    /** Virtual load with translation and misalignment handling. */
    isa::Trap load(Addr vaddr, unsigned size, uint64_t &data);

    /** Virtual store. */
    isa::Trap store(Addr vaddr, unsigned size, uint64_t data);

    /**
     * Fetch one instruction at @p vaddr (16-bit aware; handles fetches
     * that cross a page boundary).
     */
    isa::Trap fetch(Addr vaddr, uint32_t &raw);

    /** sfence.vma: drop all cached translations. */
    void flushTlb();

    /**
     * Shootdown hook invoked whenever the functional TLB is flushed
     * (sfence.vma, satp change). Fast interpreters caching derived
     * translations (e.g. NEMU's host-pointer TLB) register here so a
     * guest TLB flush also drops their cached host mappings.
     */
    void setFlushHook(std::function<void()> hook)
    {
        flushHook_ = std::move(hook);
    }

    /** True when translation is active for data accesses. */
    bool translationOn() const;

    const MmuStats &stats() const { return stats_; }
    mem::MemPort &mem() { return mem_; }

    /**
     * Let translation and data accesses that land in @p dram bypass
     * the bus's virtual dispatch. Optional; when unset every access
     * goes through the generic port as before.
     */
    void bindDram(mem::PhysMem *dram) { dram_ = dram; }

    /** Last translated physical address (probe support). */
    Addr lastPaddr() const { return lastPaddr_; }

  private:
    struct TlbEntry
    {
        Addr vpn = ~0ULL;
        Addr ppn = 0;
        uint8_t perms = 0; // pte low bits (V/R/W/X/U/A/D)
        bool valid = false;
    };

    static constexpr unsigned TLB_SIZE = 256;

    isa::Trap walk(Addr vaddr, Access acc, isa::Priv eff_priv, Addr &paddr);
    isa::Priv effectivePriv(Access acc) const;
    isa::Exc faultFor(Access acc) const;

    /**
     * Direct DRAM access used when the target range is known to be
     * backed by @p dram_: the bus would route there anyway, so this
     * skips the virtual dispatch on the fetch/load/store hot path.
     * Falls back to the full bus for MMIO and unbound ports.
     */
    bool
    readPhys(Addr paddr, unsigned size, uint64_t &data)
    {
        if (dram_ && dram_->contains(paddr, size))
            return dram_->read(paddr, size, data);
        return mem_.read(paddr, size, data);
    }

    bool
    writePhys(Addr paddr, unsigned size, uint64_t data)
    {
        if (dram_ && dram_->contains(paddr, size))
            return dram_->write(paddr, size, data);
        return mem_.write(paddr, size, data);
    }

    ArchState &st_;
    mem::MemPort &mem_;
    mem::PhysMem *dram_ = nullptr;
    TlbEntry tlb_[TLB_SIZE];
    MmuStats stats_;
    Addr lastPaddr_ = 0;
    std::function<void()> flushHook_;
};

} // namespace minjie::iss

#endif // MINJIE_ISS_MMU_H
