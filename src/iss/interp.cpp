#include "iss/interp.h"

namespace minjie::iss {

using namespace minjie::isa;

Trap
SpikeInterp::stepOnce(ExecInfo *info)
{
    Addr pc = st_.pc;
    Entry &e = cache_[(pc >> 1) & mask_];
    if (e.pc != pc) {
        ++misses_;
        uint32_t raw;
        Trap t = mmu_.fetch(pc, raw);
        if (t.pending())
            return t;
        e.pc = pc;
        e.di = decode(raw);
    } else {
        ++hits_;
    }
    Trap t = execInst(st_, mmu_, e.di, fpb_, info);
    if (t.pending() && t.cause == Exc::IllegalInst) {
        // fence.i / sfence may invalidate cached decodes elsewhere; the
        // decode cache is PC-tagged so self-modifying code still needs
        // an explicit flush, which fence.i execution performs below.
    }
    if (e.di.op == Op::FenceI) {
        for (auto &entry : cache_)
            entry.pc = ~0ULL;
    }
    return t;
}

Trap
DromajoInterp::stepOnce(ExecInfo *info)
{
    uint32_t raw;
    Trap t = mmu_.fetch(st_.pc, raw);
    if (t.pending())
        return t;
    DecodedInst di = decode(raw);
    return execInst(st_, mmu_, di, fpb_, info);
}

TciInterp::Block *
TciInterp::lookupBlock(Addr pc, Trap &trap)
{
    Block &b = blocks_[(pc >> 1) % BLOCK_CACHE];
    if (b.pc == pc)
        return &b;

    // Translate a basic block: decode until a control transfer or
    // system instruction, lowering each guest instruction to bytecode.
    b.pc = pc;
    b.code.clear();
    b.insts.clear();
    Addr cur = pc;
    for (unsigned n = 0; n < 64; ++n) {
        uint32_t raw;
        Trap t = mmu_.fetch(cur, raw);
        if (t.pending()) {
            if (b.insts.empty()) {
                b.pc = ~0ULL;
                trap = t;
                return nullptr;
            }
            break;
        }
        DecodedInst di = decode(raw);
        auto idx = static_cast<uint8_t>(b.insts.size());
        b.insts.push_back(di);
        b.code.push_back(static_cast<uint8_t>(Bc::LdOperands));
        b.code.push_back(di.rs1);
        b.code.push_back(di.rs2);
        b.code.push_back(static_cast<uint8_t>(Bc::Exec));
        b.code.push_back(idx);
        b.code.push_back(static_cast<uint8_t>(Bc::WriteBack));
        b.code.push_back(di.rd);
        b.code.push_back(static_cast<uint8_t>(Bc::AdvancePc));
        b.code.push_back(di.size);
        cur += di.size;
        if (isControl(di.op) || isSystem(di.op) || isFence(di.op) ||
            di.op == Op::Illegal)
            break;
    }
    return &b;
}

Trap
TciInterp::stepOnce(ExecInfo *info)
{
    Trap trap = Trap::none();
    Block *b = lookupBlock(st_.pc, trap);
    if (!b)
        return trap;

    // Interpret the bytecode for exactly one guest instruction: find the
    // record for the current pc within the block.
    Addr off = st_.pc - b->pc;
    size_t idx = 0;
    Addr scan = 0;
    while (idx < b->insts.size() && scan < off)
        scan += b->insts[idx++].size;
    if (idx >= b->insts.size() || scan != off) {
        // Entry into the middle of a stale block: retranslate.
        b->pc = ~0ULL;
        b = lookupBlock(st_.pc, trap);
        if (!b)
            return trap;
        idx = 0;
    }

    // Walk this instruction's 4 bytecode records through the nested
    // dispatcher (the TCI-style overhead being modeled).
    size_t cp = idx * 9; // each guest inst lowers to 9 bytecode bytes
    const DecodedInst &di = b->insts[idx];
    Trap t = Trap::none();
    for (int rec = 0; rec < 4 && cp < b->code.size();) {
        auto bc = static_cast<Bc>(b->code[cp]);
        switch (bc) {
          case Bc::LdOperands:
            tmp_[0] = st_.x[b->code[cp + 1]];
            tmp_[1] = st_.x[b->code[cp + 2]];
            cp += 3;
            break;
          case Bc::Exec:
            t = execInst(st_, mmu_, b->insts[b->code[cp + 1]], fpb_, info);
            cp += 2;
            break;
          case Bc::WriteBack:
            tmp_[2] = st_.x[b->code[cp + 1]];
            cp += 2;
            break;
          case Bc::AdvancePc:
            cp += 2;
            break;
        }
        ++rec;
        if (t.pending())
            return t;
    }
    if (di.op == Op::FenceI) {
        for (auto &blk : blocks_)
            blk.pc = ~0ULL;
    }
    return t;
}

} // namespace minjie::iss
