/**
 * @file
 * Functional interpreter engines.
 *
 * Three baseline engines reproduce the architectural differences of the
 * interpreters compared in the paper's Figure 8 (we implement the
 * *architectures*, not the tools themselves):
 *
 *  - SpikeInterp   — decoded-instruction software cache (direct-mapped,
 *                    configurable entries, default 16384 as selected in
 *                    the paper) + switch execution + soft-float;
 *  - DromajoInterp — fetch + full decode on every instruction, no cache,
 *                    soft-float;
 *  - TciInterp     — guest instructions pre-translated into a multi-uop
 *                    bytecode stream interpreted op-by-op (the QEMU-TCI
 *                    execution model), soft-float.
 *
 * The fast NEMU engine lives in src/nemu/.
 */

#ifndef MINJIE_ISS_INTERP_H
#define MINJIE_ISS_INTERP_H

#include <functional>
#include <memory>
#include <vector>

#include "isa/decode.h"
#include "iss/exec.h"

namespace minjie::iss {

/** Result of running an interpreter for a bounded number of steps. */
struct RunResult
{
    InstCount executed = 0;
    bool halted = false;  ///< halt predicate fired (e.g. SimCtrl exit)
    bool trapped = false; ///< at least one trap was taken during the run
};

/**
 * Base class owning the architectural state, the MMU and the step loop.
 * Engines override stepOnce().
 */
class Interp
{
  public:
    Interp(mem::MemPort &mem, HartId hart, Addr entry,
           fp::FpBackend fpb)
        : mem_(mem), mmu_(st_, mem), fpb_(fpb)
    {
        st_.reset(entry, hart);
    }
    virtual ~Interp() = default;

    ArchState &state() { return st_; }
    const ArchState &state() const { return st_; }
    Mmu &mmu() { return mmu_; }

    /** Optional halt predicate polled between instructions. */
    void setHaltFn(std::function<bool()> fn) { haltFn_ = std::move(fn); }

    /**
     * Execute one instruction (committing a trap redirect if raised).
     * @p info receives probe-visible effects when non-null.
     * @return the trap taken, or none.
     */
    isa::Trap
    step(ExecInfo *info = nullptr)
    {
        isa::Trap t = stepOnce(info);
        if (t.pending())
            takeTrap(st_, t, st_.pc);
        ++st_.instret;
        ++st_.csr.minstret;
        ++st_.csr.mcycle;
        return t;
    }

    /**
     * Deliver interrupt @p irq now (DiffTest uses this to force the REF
     * to take the same interrupt as the DUT). Virtual so engines caching
     * translations can drop them across the privilege change.
     */
    virtual void raiseInterrupt(isa::Irq irq) { takeInterrupt(st_, irq); }

    /**
     * Run up to @p maxInsts instructions or until the halt predicate.
     * Virtual: NEMU overrides with its threaded-code engine, so run(1)
     * through an Interp pointer still drives the chained fast path with
     * per-instruction commit granularity (lockstep co-simulation).
     */
    virtual RunResult
    run(InstCount maxInsts)
    {
        RunResult r;
        while (r.executed < maxInsts) {
            if (step().pending())
                r.trapped = true;
            ++r.executed;
            if (haltFn_ && haltFn_()) {
                r.halted = true;
                break;
            }
        }
        return r;
    }

  protected:
    /** Engine-specific fetch/decode/execute of one instruction. */
    virtual isa::Trap stepOnce(ExecInfo *info) = 0;

    ArchState st_;
    mem::MemPort &mem_;
    Mmu mmu_;
    fp::FpBackend fpb_;
    std::function<bool()> haltFn_;
};

/** Spike-proxy: direct-mapped decoded-instruction cache + soft-float. */
class SpikeInterp : public Interp
{
  public:
    SpikeInterp(mem::MemPort &mem, HartId hart, Addr entry,
                unsigned cacheEntries = 16384)
        : Interp(mem, hart, entry, fp::FpBackend::Soft),
          mask_(cacheEntries - 1), cache_(cacheEntries)
    {
    }

    uint64_t decodeCacheHits() const { return hits_; }
    uint64_t decodeCacheMisses() const { return misses_; }

  protected:
    isa::Trap stepOnce(ExecInfo *info) override;

  private:
    struct Entry
    {
        Addr pc = ~0ULL;
        isa::DecodedInst di;
    };
    uint64_t mask_;
    std::vector<Entry> cache_;
    uint64_t hits_ = 0, misses_ = 0;
};

/** Dromajo-proxy: no decode cache at all. */
class DromajoInterp : public Interp
{
  public:
    DromajoInterp(mem::MemPort &mem, HartId hart, Addr entry)
        : Interp(mem, hart, entry, fp::FpBackend::Soft)
    {
    }

  protected:
    isa::Trap stepOnce(ExecInfo *info) override;
};

/**
 * QEMU-TCI proxy: each guest instruction is translated (per basic
 * block) into several bytecode micro-ops that a nested dispatcher
 * interprets one by one, reading operands from the byte stream.
 */
class TciInterp : public Interp
{
  public:
    TciInterp(mem::MemPort &mem, HartId hart, Addr entry)
        : Interp(mem, hart, entry, fp::FpBackend::Soft)
    {
    }

  protected:
    isa::Trap stepOnce(ExecInfo *info) override;

  private:
    // Bytecode ops: a guest instruction expands to LD_OPERANDS,
    // EXEC, WRITE_BACK, ADVANCE_PC records, mirroring how TCG lowers
    // one guest op into several TCG ops.
    enum class Bc : uint8_t { LdOperands, Exec, WriteBack, AdvancePc };

    struct Block
    {
        Addr pc = ~0ULL;
        std::vector<uint8_t> code;
        std::vector<isa::DecodedInst> insts;
    };

    static constexpr unsigned BLOCK_CACHE = 4096;
    Block *lookupBlock(Addr pc, isa::Trap &trap);

    std::vector<Block> blocks_ = std::vector<Block>(BLOCK_CACHE);
    // Scratch "TCG registers" the bytecode moves operands through.
    uint64_t tmp_[4] = {};
};

} // namespace minjie::iss

#endif // MINJIE_ISS_INTERP_H
