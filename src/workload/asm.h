/**
 * @file
 * In-memory RV64 assembler used to build workload programs.
 *
 * The paper runs SPEC CPU2006 binaries; we cannot ship those, so every
 * workload in this repository is assembled from scratch through this
 * builder (see DESIGN.md, substitution table).
 */

#ifndef MINJIE_WORKLOAD_ASM_H
#define MINJIE_WORKLOAD_ASM_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/types.h"
#include "isa/decode.h"
#include "isa/encode.h"
#include "mem/physmem.h"

namespace minjie::workload {

/** ABI register numbers. */
enum Reg : uint8_t {
    zero = 0, ra = 1, sp = 2, gp = 3, tp = 4,
    t0 = 5, t1 = 6, t2 = 7,
    s0 = 8, s1 = 9,
    a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15,
    a6 = 16, a7 = 17,
    s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23,
    s8 = 24, s9 = 25, s10 = 26, s11 = 27,
    t3 = 28, t4 = 29, t5 = 30, t6 = 31,
};

/** Forward-referenceable code label. */
struct Label
{
    uint32_t id = ~0u;
};

/**
 * A loadable program: code+data segments plus the entry point.
 */
struct Program
{
    std::string name;
    Addr entry = 0;
    struct Segment
    {
        Addr base;
        std::vector<uint8_t> bytes;
    };
    std::vector<Segment> segments;

    void
    loadInto(mem::PhysMem &pm) const
    {
        for (const auto &seg : segments)
            pm.load(seg.base, seg.bytes.data(), seg.bytes.size());
    }
};

/**
 * Linear assembler with label fixups. Emits 32-bit encodings only
 * (compressed forms are exercised through the decoder tests instead).
 */
class Asm
{
  public:
    explicit Asm(Addr base) : base_(base) {}

    Addr here() const { return base_ + code_.size(); }
    Addr base() const { return base_; }

    // ---- labels ----
    Label
    newLabel()
    {
        labels_.push_back(~0ULL);
        return {static_cast<uint32_t>(labels_.size() - 1)};
    }

    void bind(Label l) { labels_[l.id] = here(); }

    Label
    boundLabel()
    {
        Label l = newLabel();
        bind(l);
        return l;
    }

    // ---- generic emitters ----
    void
    emit(const isa::DecodedInst &di)
    {
        uint32_t w = isa::encode(di);
        code_.push_back(static_cast<uint8_t>(w & 0xff));
        code_.push_back(static_cast<uint8_t>((w >> 8) & 0xff));
        code_.push_back(static_cast<uint8_t>((w >> 16) & 0xff));
        code_.push_back(static_cast<uint8_t>((w >> 24) & 0xff));
    }

    /** Emit a raw 16-bit (compressed) encoding. */
    void
    raw16(uint16_t w)
    {
        code_.push_back(static_cast<uint8_t>(w & 0xff));
        code_.push_back(static_cast<uint8_t>((w >> 8) & 0xff));
    }

    /**
     * Append pre-assembled position-independent bytes (e.g. a shrinkable
     * program chunk). The bytes must not contain unresolved fixups.
     */
    void
    bytes(const std::vector<uint8_t> &blob)
    {
        code_.insert(code_.end(), blob.begin(), blob.end());
    }

    void
    rtype(isa::Op op, uint8_t rd, uint8_t rs1, uint8_t rs2)
    {
        isa::DecodedInst di;
        di.op = op;
        di.rd = rd;
        di.rs1 = rs1;
        di.rs2 = rs2;
        emit(di);
    }

    void
    itype(isa::Op op, uint8_t rd, uint8_t rs1, int64_t imm)
    {
        checkImm(op, imm);
        isa::DecodedInst di;
        di.op = op;
        di.rd = rd;
        di.rs1 = rs1;
        di.imm = imm;
        emit(di);
    }

    /** load: rd <- [rs1 + off] */
    void
    load(isa::Op op, uint8_t rd, int64_t off, uint8_t rs1)
    {
        itype(op, rd, rs1, off);
    }

    /** store: [rs1 + off] <- rs2 */
    void
    store(isa::Op op, uint8_t rs2, int64_t off, uint8_t rs1)
    {
        checkImm(op, off);
        isa::DecodedInst di;
        di.op = op;
        di.rs1 = rs1;
        di.rs2 = rs2;
        di.imm = off;
        emit(di);
    }

    void
    branch(isa::Op op, uint8_t rs1, uint8_t rs2, Label target)
    {
        fixups_.push_back({code_.size(), target.id, FixKind::Branch});
        isa::DecodedInst di;
        di.op = op;
        di.rs1 = rs1;
        di.rs2 = rs2;
        emit(di);
    }

    void
    jal(uint8_t rd, Label target)
    {
        fixups_.push_back({code_.size(), target.id, FixKind::Jal});
        isa::DecodedInst di;
        di.op = isa::Op::Jal;
        di.rd = rd;
        emit(di);
    }

    void j(Label target) { jal(zero, target); }
    void call(Label target) { jal(ra, target); }
    void ret() { itype(isa::Op::Jalr, zero, ra, 0); }
    void jr(uint8_t rs) { itype(isa::Op::Jalr, zero, rs, 0); }
    void nop() { itype(isa::Op::Addi, zero, zero, 0); }

    void
    fp3(isa::Op op, uint8_t rd, uint8_t rs1, uint8_t rs2, uint8_t rs3 = 0)
    {
        isa::DecodedInst di;
        di.op = op;
        di.rd = rd;
        di.rs1 = rs1;
        di.rs2 = rs2;
        di.rs3 = rs3;
        emit(di);
    }

    void
    csr(isa::Op op, uint8_t rd, uint16_t addr, uint8_t rs1)
    {
        isa::DecodedInst di;
        di.op = op;
        di.rd = rd;
        di.rs1 = rs1;
        di.imm = addr;
        emit(di);
    }

    /** Load an arbitrary 64-bit constant (lui/addi/shift sequence). */
    void
    li(uint8_t rd, uint64_t value)
    {
        int64_t v = static_cast<int64_t>(value);
        if (v >= -2048 && v < 2048) {
            itype(isa::Op::Addi, rd, zero, v);
            return;
        }
        if (v == static_cast<int32_t>(v)) {
            // lui + addi covers most of the 32-bit signed range; lui's
            // 20-bit immediate sign-extends on RV64, so values near
            // INT32_MAX (hi == 0x80000) need the general path.
            int64_t hi = (v + 0x800) >> 12;
            int64_t lo = v - (hi << 12);
            int64_t luiVal = static_cast<int32_t>(hi << 12);
            if (luiVal + lo == v) {
                isa::DecodedInst di;
                di.op = isa::Op::Lui;
                di.rd = rd;
                di.imm = luiVal;
                emit(di);
                if (lo)
                    itype(isa::Op::Addi, rd, rd, lo);
                return;
            }
        }
        // General case: materialize the upper 32 bits, then append the
        // low 32 bits as 11+11+10-bit positive chunks (addi-safe).
        li(rd, static_cast<uint64_t>(v >> 32));
        uint32_t low = static_cast<uint32_t>(v);
        itype(isa::Op::Slli, rd, rd, 11);
        itype(isa::Op::Addi, rd, rd, (low >> 21) & 0x7ff);
        itype(isa::Op::Slli, rd, rd, 11);
        itype(isa::Op::Addi, rd, rd, (low >> 10) & 0x7ff);
        itype(isa::Op::Slli, rd, rd, 10);
        itype(isa::Op::Addi, rd, rd, low & 0x3ff);
    }

    /** Exit the simulation with status @p code via the SimCtrl device. */
    void
    exit(uint64_t code, Addr simctrlBase = 0x40000000)
    {
        li(t6, simctrlBase);
        li(t5, (code << 1) | 1);
        store(isa::Op::Sd, t5, 0, t6);
        // Exit is asynchronous in the cycle model; spin afterwards.
        Label spin = boundLabel();
        j(spin);
    }

    /** Print the low byte of @p rs through SimCtrl. */
    void
    putchar(uint8_t rs, Addr simctrlBase = 0x40000000)
    {
        li(t6, simctrlBase);
        store(isa::Op::Sb, rs, 8, t6);
    }

    /** Finalize: resolve fixups and return the code segment. */
    Program::Segment
    finish()
    {
        for (const auto &f : fixups_) {
            Addr target = labels_[f.label];
            Addr pc = base_ + f.offset;
            int64_t delta = static_cast<int64_t>(target) -
                            static_cast<int64_t>(pc);
            uint32_t w = read32(f.offset);
            isa::DecodedInst di = isa::decode32(w);
            di.imm = delta;
            uint32_t patched = isa::encode(di);
            write32(f.offset, patched);
        }
        fixups_.clear();
        return {base_, code_};
    }

  private:
    /** Catch silently-truncating immediates at assembly time. */
    static void
    checkImm(isa::Op op, int64_t imm)
    {
        using isa::Op;
        switch (op) {
          case Op::Slli: case Op::Srli: case Op::Srai: case Op::Rori:
          case Op::SlliUw:
            if (imm < 0 || imm > 63)
                panic("asm: shift amount %lld out of range",
                      static_cast<long long>(imm));
            return;
          case Op::Slliw: case Op::Srliw: case Op::Sraiw: case Op::Roriw:
            if (imm < 0 || imm > 31)
                panic("asm: shift amount %lld out of range",
                      static_cast<long long>(imm));
            return;
          case Op::Csrrw: case Op::Csrrs: case Op::Csrrc:
          case Op::Csrrwi: case Op::Csrrsi: case Op::Csrrci:
            if (imm < 0 || imm > 0xfff)
                panic("asm: csr number %lld out of range",
                      static_cast<long long>(imm));
            return;
          case Op::Clz: case Op::Ctz: case Op::Cpop: case Op::Clzw:
          case Op::Ctzw: case Op::Cpopw: case Op::SextB: case Op::SextH:
          case Op::OrcB: case Op::Rev8: case Op::Fence: case Op::FenceI:
            return;
          default:
            if (imm < -2048 || imm > 2047)
                panic("asm: 12-bit immediate %lld out of range for %s",
                      static_cast<long long>(imm), isa::opName(op));
            return;
        }
    }

    enum class FixKind { Branch, Jal };
    struct Fixup
    {
        size_t offset;
        uint32_t label;
        FixKind kind;
    };

    uint32_t
    read32(size_t off) const
    {
        return static_cast<uint32_t>(code_[off]) |
               (static_cast<uint32_t>(code_[off + 1]) << 8) |
               (static_cast<uint32_t>(code_[off + 2]) << 16) |
               (static_cast<uint32_t>(code_[off + 3]) << 24);
    }

    void
    write32(size_t off, uint32_t w)
    {
        code_[off] = static_cast<uint8_t>(w & 0xff);
        code_[off + 1] = static_cast<uint8_t>((w >> 8) & 0xff);
        code_[off + 2] = static_cast<uint8_t>((w >> 16) & 0xff);
        code_[off + 3] = static_cast<uint8_t>((w >> 24) & 0xff);
    }

    Addr base_;
    std::vector<uint8_t> code_;
    std::vector<Addr> labels_;
    std::vector<Fixup> fixups_;
};

} // namespace minjie::workload

#endif // MINJIE_WORKLOAD_ASM_H
