#include "workload/programs.h"

#include "workload/shrinkable.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/bitutil.h"
#include "isa/csr.h"

namespace minjie::workload {

using isa::Op;

namespace {

/** Append a little-endian 64-bit value to a byte vector. */
void
push64(std::vector<uint8_t> &v, uint64_t x)
{
    for (int i = 0; i < 8; ++i)
        v.push_back(static_cast<uint8_t>(x >> (8 * i)));
}

/** Build a single-cycle pointer ring of @p n nodes at @p base with
 *  @p spacing bytes between nodes (Sattolo's algorithm), stored as
 *  absolute 64-bit next pointers. */
std::vector<uint8_t>
buildRing(Addr base, size_t n, Rng &rng, size_t spacing = 8)
{
    std::vector<uint32_t> perm(n);
    for (size_t i = 0; i < n; ++i)
        perm[i] = static_cast<uint32_t>(i);
    for (size_t i = n - 1; i > 0; --i) {
        size_t j = rng.below(i);
        std::swap(perm[i], perm[j]);
    }
    // perm as a cycle: node i points at node perm-successor.
    std::vector<uint32_t> next(n);
    for (size_t i = 0; i + 1 < n; ++i)
        next[perm[i]] = perm[i + 1];
    next[perm[n - 1]] = perm[0];

    std::vector<uint8_t> bytes(n * spacing, 0);
    for (size_t i = 0; i < n; ++i) {
        uint64_t ptr = base + static_cast<Addr>(next[i]) * spacing;
        std::memcpy(&bytes[i * spacing], &ptr, 8);
    }
    return bytes;
}

/** Emit one xorshift64 step on s4 using t0 as scratch. */
void
prngStep(Asm &a)
{
    a.itype(Op::Slli, t0, s4, 13);
    a.rtype(Op::Xor, s4, s4, t0);
    a.itype(Op::Srli, t0, s4, 7);
    a.rtype(Op::Xor, s4, s4, t0);
    a.itype(Op::Slli, t0, s4, 17);
    a.rtype(Op::Xor, s4, s4, t0);
}

} // namespace

const std::vector<ProxySpec> &
specIntSuite()
{
    // name, fp, wsKB, chase, branch, entropy, fp, store, call, indirect
    static const std::vector<ProxySpec> suite = {
        {"401.bzip2", false, 256, 5, 25, 30, 0, 20, 5, 0},
        {"403.gcc", false, 1024, 10, 25, 20, 0, 15, 15, 8},
        {"429.mcf", false, 8192, 12, 12, 25, 0, 10, 5, 0},
        {"445.gobmk", false, 512, 8, 30, 28, 0, 15, 18, 5},
        {"456.hmmer", false, 128, 0, 8, 5, 0, 25, 5, 0},
        {"458.sjeng", false, 512, 8, 30, 38, 0, 10, 18, 10},
        {"462.libquantum", false, 4096, 5, 8, 3, 0, 30, 0, 0},
        {"464.h264ref", false, 256, 5, 15, 12, 0, 25, 10, 5},
        {"471.omnetpp", false, 4096, 10, 18, 22, 0, 15, 15, 10},
        {"473.astar", false, 4096, 8, 22, 30, 0, 10, 10, 0},
        {"483.xalancbmk", false, 2048, 20, 20, 22, 0, 10, 18, 12},
    };
    return suite;
}

const std::vector<ProxySpec> &
specFpSuite()
{
    static const std::vector<ProxySpec> suite = {
        {"410.bwaves", true, 4096, 0, 4, 2, 55, 15, 0, 0},
        {"433.milc", true, 4096, 5, 4, 5, 45, 20, 5, 0},
        {"434.zeusmp", true, 2048, 0, 4, 2, 50, 20, 0, 0},
        {"436.cactusADM", true, 1024, 0, 4, 2, 60, 15, 0, 0},
        {"437.leslie3d", true, 2048, 0, 4, 2, 55, 15, 0, 0},
        {"444.namd", true, 256, 5, 8, 8, 50, 10, 10, 0},
        {"447.dealII", true, 1024, 12, 12, 12, 35, 10, 15, 5},
        {"450.soplex", true, 2048, 10, 12, 15, 30, 10, 10, 0},
        {"453.povray", true, 128, 8, 16, 15, 35, 10, 15, 5},
        {"454.calculix", true, 512, 5, 8, 8, 45, 15, 5, 0},
        {"459.GemsFDTD", true, 4096, 5, 4, 2, 50, 20, 0, 0},
        {"465.tonto", true, 512, 5, 8, 8, 45, 15, 10, 0},
        {"470.lbm", true, 8192, 0, 4, 2, 45, 30, 0, 0},
        {"481.wrf", true, 2048, 5, 8, 5, 45, 15, 5, 0},
        {"482.sphinx3", true, 512, 5, 12, 12, 40, 15, 5, 0},
    };
    return suite;
}

Program
buildProxy(const ProxySpec &spec, uint64_t iterations, uint64_t seed,
           const Layout &layout)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + std::hash<std::string>{}(spec.name));
    Program prog;
    prog.name = spec.name;
    prog.entry = layout.codeBase;

    // ---- data segments ----
    // The pointer-chase ring spreads one node per cache line across the
    // whole working set; re-traversal after a full cycle gives the
    // LLC-level reuse real pointer codes exhibit.
    const size_t wsBytes = static_cast<size_t>(spec.wsKB) * 1024;
    // Chase-ring sizing. Cache-resident benchmarks use a small ring
    // that is re-traversed constantly (L2-resident latency behaviour).
    // The memory-bound class (>=4MB working sets) uses a 4MB ring with
    // a periodic chase-pointer reset emitted in the loop body: the
    // visited prefix (~2.6MB) is re-walked on every reset, so it
    // thrashes a 2MB LLC, fits a 4-6MB one, and reaches DRAM on a
    // 1MB-L2-only machine — the paper's Figure 12 capacity axis.
    const bool memBound = spec.wsKB >= 4096;
    const size_t ringBytes = memBound
        ? 4 * 1024 * 1024
        : std::max<size_t>(4096, std::min<size_t>(wsBytes / 2,
                                                  256 * 1024));
    const Addr ringBase = layout.dataBase;
    const Addr intsBase = ringBase + wsBytes;
    const Addr dblsBase = intsBase + wsBytes;
    // Memory-bound fp benchmarks stream a multi-MB grid of doubles
    // (bwaves/lbm/GemsFDTD class); others work a hot 32KB table.
    const size_t dblsBytes = (spec.fp && memBound)
        ? 4 * 1024 * 1024
        : 32 * 1024;
    // Hot subset of the int array (L1-resident on both generations,
    // as the bulk of real benchmarks' accesses are) and a cold region
    // whose random revisits produce gradual LLC-capacity sensitivity.
    const size_t hotBytes = std::min<size_t>(wsBytes, 32 * 1024);
    const size_t coldBytes = std::min<size_t>(wsBytes,
                                              4 * 1024 * 1024);

    prog.segments.push_back(
        {ringBase, buildRing(ringBase, ringBytes / 64, rng, 64)});

    std::vector<uint8_t> ints;
    ints.reserve(wsBytes);
    for (size_t i = 0; i < wsBytes / 8; ++i)
        push64(ints, rng.next());
    prog.segments.push_back({intsBase, std::move(ints)});

    std::vector<uint8_t> dbls;
    dbls.reserve(dblsBytes);
    for (size_t i = 0; i < dblsBytes / 8; ++i) {
        double d = 1.0 + static_cast<double>(i % 997) * 0.001;
        push64(dbls, std::bit_cast<uint64_t>(d));
    }
    prog.segments.push_back({dblsBase, std::move(dbls)});

    // ---- indirect-jump case blocks (fixed-address aux segment) ----
    {
        Asm cases(layout.auxCode);
        for (unsigned c = 0; c < 16; ++c) {
            // Each case is exactly 8 instructions = 32 bytes.
            cases.itype(Op::Addi, s6, s6, static_cast<int64_t>(c));
            cases.itype(Op::Xori, s4, s4, static_cast<int64_t>(c * 3 + 1));
            cases.rtype(Op::Add, s6, s6, s4);
            cases.nop();
            cases.nop();
            cases.nop();
            cases.nop();
            cases.ret();
        }
        prog.segments.push_back(cases.finish());
    }

    // ---- main code ----
    Asm a(layout.codeBase);
    a.li(sp, layout.stackTop);
    a.li(s0, intsBase);
    a.li(s1, ringBase);
    a.li(s2, iterations);
    a.li(s3, 0);
    a.li(s4, rng.next() | 1);
    a.li(s5, coldBytes - 8);     // cold-region index mask
    a.li(s6, 0);
    a.li(s7, hotBytes - 8);      // hot-region mask
    a.li(s8, dblsBase);
    a.li(s10, dblsBytes - 8);    // doubles mask
    a.li(s11, layout.auxCode);
    if (spec.fpPct) {
        a.load(Op::Fld, 8 /*fs0*/, 0, s8);
        a.li(t0, std::bit_cast<uint64_t>(0.5));
        a.fp3(Op::FmvDX, 9 /*fs1*/, t0, 0);
    }

    // Rotate accumulators so independent dependence chains exist (real
    // code has several live chains; a single accumulator would serialize
    // every load through one register and cap ILP at 1).
    const uint8_t accs[] = {s6, a4, a5, a6, a7};
    auto pickAcc = [&]() { return accs[rng.below(std::size(accs))]; };
    const uint8_t faccs[] = {8 /*fs0*/, 18 /*fs2*/, 19 /*fs3*/,
                             20 /*fs4*/};
    auto pickFacc = [&]() { return faccs[rng.below(std::size(faccs))]; };
    if (spec.fpPct) {
        for (uint8_t f : faccs)
            a.load(Op::Fld, f, 8 * (f % 8), s8);
    }

    // Deterministic cold-site rotation: with only ~10 memory sites per
    // body a per-site probability would frequently generate zero cold
    // sites; every 7th site (~14%) touching the cold region guarantees
    // each benchmark exercises its full working set.
    unsigned memSite = 0;
    const unsigned coldEvery = memBound ? 2 : 7;
    auto coldSite = [&]() { return (memSite++ % coldEvery) ==
                                   coldEvery - 1; };

    Label leaves[4];
    Label loop = a.newLabel();
    Label done = a.newLabel();
    for (auto &l : leaves)
        l = a.newLabel();

    a.bind(loop);
    a.branch(Op::Beq, s2, zero, done);

    if (memBound) {
        // Reset the chase pointer every 1024 iterations so the chase
        // footprint stays bounded and re-walked (the random cold walk,
        // not the chase, carries the DRAM/LLC-capacity behaviour).
        Label noReset = a.newLabel();
        a.itype(Op::Andi, t0, s2, 1023);
        a.branch(Op::Bne, t0, zero, noReset);
        a.li(s1, ringBase);
        a.bind(noReset);
    }

    // Emit 24 body groups drawn from the characteristic mixture.
    for (unsigned g = 0; g < 24; ++g) {
        unsigned roll = static_cast<unsigned>(rng.below(100));
        unsigned acc = spec.chasePct;
        if (roll < acc) {
            // pointer chase: one dependent hop
            a.load(Op::Ld, s1, 0, s1);
            continue;
        }
        acc += spec.branchPct;
        if (roll < acc) {
            prngStep(a);
            Label skip = a.newLabel();
            bool random = rng.below(100) < spec.entropyPct;
            if (random) {
                a.itype(Op::Andi, t0, s4, 1);
                a.branch(Op::Beq, t0, zero, skip);
            } else {
                a.itype(Op::Andi, t0, s3, 63);
                a.branch(Op::Bne, t0, zero, skip);
            }
            uint8_t A = pickAcc();
            a.itype(Op::Addi, A, A, 1);
            a.rtype(Op::Xor, A, A, s4);
            a.bind(skip);
            continue;
        }
        acc += spec.fpPct;
        if (roll < acc) {
            uint8_t F = pickFacc();
            // Hot fp sites reuse a 32KB table; cold sites walk the
            // full doubles region (capacity behaviour for fp codes).
            bool cold = dblsBytes > 32 * 1024 && coldSite();
            a.rtype(Op::And, t0, s3, cold ? s10 : s7);
            a.rtype(Op::Add, t0, t0, s8);
            a.load(Op::Fld, 10 /*fa0*/, 0, t0);
            // Real fp kernels are dense: several MACs per load, spread
            // over independent accumulator chains.
            a.fp3(Op::FmaddD, F, F, 9, 10); // F = F*fs1 + fa0
            uint8_t F2 = pickFacc();
            a.fp3(Op::FmaddD, F2, F2, 9, 10);
            uint8_t F3 = pickFacc();
            a.fp3(Op::FnmsubD, F3, F3, 9, 10);
            a.itype(Op::Addi, s3, s3, 40);
            if (rng.chance(10))
                a.fp3(Op::FdivD, 11, 10, F); // fa1 = fa0/F
            continue;
        }
        acc += spec.storePct;
        if (roll < acc) {
            if (!coldSite()) {
                a.rtype(Op::And, t0, s3, s7);
            } else {
                // Cold store: pseudo-random line within the cold region.
                a.itype(Op::Slli, t0, s3, 7);
                a.rtype(Op::Xor, t0, t0, s3);
                a.rtype(Op::And, t0, t0, s5);
                a.itype(Op::Andi, t0, t0, -8);
            }
            a.rtype(Op::Add, t0, t0, s0);
            a.store(Op::Sd, pickAcc(), 0, t0);
            a.itype(Op::Addi, s3, s3, 72);
            continue;
        }
        acc += spec.callPct;
        if (roll < acc) {
            a.call(leaves[rng.below(4)]);
            continue;
        }
        acc += spec.indirectPct;
        if (roll < acc) {
            if (rng.chance(80)) {
                // Monomorphic call site (the common case in real code:
                // a virtual call that always dispatches one target).
                a.itype(Op::Addi, t0, s11,
                        static_cast<int64_t>(rng.below(16) * 32));
            } else {
                // Polymorphic site: data-dependent target.
                prngStep(a);
                a.itype(Op::Andi, t0, s4, 15);
                a.itype(Op::Slli, t0, t0, 5);
                a.rtype(Op::Add, t0, t0, s11);
            }
            a.itype(Op::Jalr, ra, t0, 0);
            continue;
        }
        // default: load + ALU mix; 85%% of sites touch the hot region,
        // the rest revisit pseudo-random lines of the cold region.
        uint8_t A = pickAcc();
        if (!coldSite()) {
            a.rtype(Op::And, t0, s3, s7);
        } else {
            a.itype(Op::Slli, t0, s3, 7);
            a.rtype(Op::Xor, t0, t0, s3);
            a.rtype(Op::And, t0, t0, s5);
            a.itype(Op::Andi, t0, t0, -8);
        }
        a.rtype(Op::Add, t0, t0, s0);
        a.load(Op::Ld, t1, 0, t0);
        a.rtype(Op::Add, A, A, t1);
        a.itype(Op::Addi, s3, s3, 64);
        if (rng.chance(30))
            a.rtype(Op::Mul, t1, t1, s4);
        a.rtype(Op::Xor, A, A, t1);
    }

    a.itype(Op::Addi, s2, s2, -1);
    a.j(loop);

    // Leaf functions.
    for (unsigned i = 0; i < 4; ++i) {
        a.bind(leaves[i]);
        a.itype(Op::Addi, s6, s6, static_cast<int64_t>(i + 1));
        a.itype(Op::Xori, s4, s4, static_cast<int64_t>(i * 5 + 3));
        a.ret();
    }

    a.bind(done);
    a.exit(0);
    prog.segments.push_back(a.finish());
    return prog;
}

Program
sumProgram(uint64_t n, const Layout &layout)
{
    Program prog;
    prog.name = "sum";
    prog.entry = layout.codeBase;

    Asm a(layout.codeBase);
    a.li(a0, 0);
    a.li(a1, n);
    Label loop = a.boundLabel();
    a.rtype(Op::Add, a0, a0, a1);
    a.itype(Op::Addi, a1, a1, -1);
    a.branch(Op::Bne, a1, zero, loop);
    a.li(a2, n * (n + 1) / 2);
    Label fail = a.newLabel();
    a.branch(Op::Bne, a0, a2, fail);
    a.exit(0);
    a.bind(fail);
    a.exit(1);
    prog.segments.push_back(a.finish());
    return prog;
}

Program
coremarkProxy(uint64_t iterations, const Layout &layout)
{
    Rng rng(0xc04e);
    Program prog;
    prog.name = "coremark-proxy";
    prog.entry = layout.codeBase;

    // List region: a 4K-node pointer ring; matrix region: 32x32 i64.
    const Addr listBase = layout.dataBase;
    prog.segments.push_back({listBase, buildRing(listBase, 4096, rng)});
    const Addr matBase = listBase + 4096 * 8;
    std::vector<uint8_t> mat;
    for (unsigned i = 0; i < 32 * 32; ++i)
        push64(mat, (i * 2654435761u) & 0xffff);
    prog.segments.push_back({matBase, std::move(mat)});

    Asm a(layout.codeBase);
    a.li(sp, layout.stackTop);
    a.li(s0, listBase);
    a.li(s1, listBase);
    a.li(s2, iterations);
    a.li(s3, matBase);
    a.li(s4, 0x12345678);
    a.li(s6, 0);

    Label outer = a.newLabel();
    Label done = a.newLabel();
    a.bind(outer);
    a.branch(Op::Beq, s2, zero, done);

    // Phase 1: list walk (64 hops).
    a.li(t2, 64);
    Label walk = a.boundLabel();
    a.load(Op::Ld, s1, 0, s1);
    a.itype(Op::Addi, t2, t2, -1);
    a.branch(Op::Bne, t2, zero, walk);

    // Phase 2: row x column dot product (32 MACs).
    a.li(t2, 32);
    a.li(t3, 0);
    a.rtype(Op::Add, t4, s3, zero);
    Label dot = a.boundLabel();
    a.load(Op::Ld, t0, 0, t4);
    a.load(Op::Ld, t1, 256, t4);
    a.rtype(Op::Mul, t0, t0, t1);
    a.rtype(Op::Add, t3, t3, t0);
    a.itype(Op::Addi, t4, t4, 8);
    a.itype(Op::Addi, t2, t2, -1);
    a.branch(Op::Bne, t2, zero, dot);
    a.rtype(Op::Add, s6, s6, t3);

    // Phase 3: CRC-ish bit loop over the accumulator (16 rounds).
    a.li(t2, 16);
    Label crc = a.boundLabel();
    a.itype(Op::Andi, t0, s4, 1);
    a.itype(Op::Srli, s4, s4, 1);
    Label noxor = a.newLabel();
    a.branch(Op::Beq, t0, zero, noxor);
    a.li(t1, 0xedb88320);
    a.rtype(Op::Xor, s4, s4, t1);
    a.bind(noxor);
    a.itype(Op::Addi, t2, t2, -1);
    a.branch(Op::Bne, t2, zero, crc);
    a.rtype(Op::Add, s6, s6, s4);

    a.itype(Op::Addi, s2, s2, -1);
    a.j(outer);

    a.bind(done);
    a.exit(0);
    prog.segments.push_back(a.finish());
    return prog;
}

Program
memStressProgram(uint64_t iterations, unsigned footprintMB,
                 const Layout &layout)
{
    Program prog;
    prog.name = "memstress";
    prog.entry = layout.codeBase;

    Asm a(layout.codeBase);
    const uint64_t mask = static_cast<uint64_t>(footprintMB) * 1024 * 1024 - 1;
    a.li(s0, layout.dataBase);
    a.li(s2, iterations);
    a.li(s4, 0x2545F4914F6CDD1DULL);
    a.li(s5, mask & ~0xfffULL); // page-aligned offsets
    a.li(s6, 0);

    Label loop = a.newLabel();
    Label done = a.newLabel();
    a.bind(loop);
    a.branch(Op::Beq, s2, zero, done);
    prngStep(a);
    a.rtype(Op::And, t0, s4, s5);
    a.rtype(Op::Add, t0, t0, s0);
    a.store(Op::Sd, s4, 0, t0);     // dirty a page
    a.load(Op::Ld, t1, 8, t0);
    a.rtype(Op::Add, s6, s6, t1);
    a.itype(Op::Addi, s2, s2, -1);
    a.j(loop);
    a.bind(done);
    a.exit(0);
    prog.segments.push_back(a.finish());
    return prog;
}


Program
sv39Program(const Layout &layout)
{
    Asm a(layout.codeBase);
    const Addr root = 0x80200000; // L2 table (1GB entries)

    constexpr uint64_t V = 1, R = 2, W = 4, X = 8, A = 1 << 6,
                       D = 1 << 7;

    // Gigapage identity map: VA 0x80000000 -> PA 0x80000000 (DRAM) and
    // VA 0x40000000 -> PA 0x40000000 (SimCtrl device window).
    a.li(t0, root);
    a.li(t1, ((0x80000000ULL >> 12) << 10) | V | R | W | X | A | D);
    a.store(Op::Sd, t1, 16, t0);
    a.li(t1, ((0x40000000ULL >> 12) << 10) | V | R | W | A | D);
    a.store(Op::Sd, t1, 8, t0);

    // satp = Sv39 | root ppn, then sfence.vma.
    a.li(t1, (8ULL << 60) | (root >> 12));
    a.csr(Op::Csrrw, zero, isa::CSR_SATP, t1);
    a.itype(Op::SfenceVma, 0, 0, 0);

    // Drop to S-mode (mret with MPP=S): translation then covers code
    // fetches as well.
    a.li(t1, 1ULL << 11); // MPP = S
    a.csr(Op::Csrrw, zero, isa::CSR_MSTATUS, t1);
    a.li(t1, 0x80000100);
    a.csr(Op::Csrrw, zero, isa::CSR_MEPC, t1);
    a.itype(Op::Mret, 0, 0, 0);

    while (a.here() < 0x80000100)
        a.nop();
    // S-mode, Sv39 active: virtually-addressed compute + memory.
    a.li(a0, 0);
    a.li(a1, 100);
    Label loop = a.boundLabel();
    a.rtype(Op::Add, a0, a0, a1);
    a.itype(Op::Addi, a1, a1, -1);
    a.branch(Op::Bne, a1, zero, loop);
    a.li(s0, 0x80100000);
    a.store(Op::Sd, a0, 0, s0);
    a.load(Op::Ld, a2, 0, s0);
    a.exit(0);

    Program prog;
    prog.name = "sv39";
    prog.entry = layout.codeBase;
    prog.segments.push_back(a.finish());
    return prog;
}

Program
randomProgram(Rng &rng, unsigned nInsts, bool withFp, const Layout &layout)
{
    // Delegates to the shrinkable chunk-based generator (shrinkable.h)
    // so fuzz tests and campaign jobs share one instruction mix.
    RandomSpec spec;
    spec.nInsts = nInsts;
    spec.withFp = withFp;
    return randomShrinkable(rng, spec, layout).assemble();
}

} // namespace minjie::workload
