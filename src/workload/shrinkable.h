/**
 * @file
 * Shrinkable random programs for fuzz co-simulation campaigns.
 *
 * A random program is represented as a fixed prologue (register seeding,
 * sandbox anchor) plus a list of *chunks*: short, self-contained,
 * position-independent instruction sequences. Because every chunk is
 * independent of its neighbours (branches resolve within the chunk,
 * memory operations are re-anchored off s0 each time), any subset of
 * chunks assembles into a valid program. That property is what lets the
 * campaign shrinker delta-debug a failing program down to a minimal
 * reproducer, and what makes corpus files replayable byte-for-byte.
 */

#ifndef MINJIE_WORKLOAD_SHRINKABLE_H
#define MINJIE_WORKLOAD_SHRINKABLE_H

#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/programs.h"

namespace minjie::workload {

/** Knobs for random program generation. */
struct RandomSpec
{
    unsigned nInsts = 400; ///< approximate body instruction count
    bool withFp = false;   ///< include fp arithmetic and fp<->int moves
    bool withRvc = false;  ///< include compressed (RVC) sequences
    bool withAmo = true;   ///< include AMO and LR/SC sequences
};

/** A self-contained, position-independent body fragment. */
struct Chunk
{
    std::vector<uint8_t> bytes;
    unsigned nInsts = 0;
};

/**
 * A random program in shrinkable form: initial register values, the
 * sandbox-fill seed, and the chunk list. assemble() produces the
 * loadable Program; dropping chunks yields smaller but still-valid
 * programs with the identical prologue.
 */
struct ShrinkableProgram
{
    std::string name = "random";
    uint64_t xInit[32] = {}; ///< integer register seeds (x0/s0 ignored)
    uint64_t fInit[32] = {}; ///< fp register seeds (when withFp)
    bool withFp = false;
    uint64_t dataSeed = 0;   ///< sandbox contents = Rng(dataSeed) stream
    std::vector<Chunk> chunks;
    Layout layout;

    Program assemble() const;

    /** Total body instructions across all chunks. */
    unsigned bodyInsts() const;

    /**
     * Text serialization for corpus files (versioned, line-oriented).
     * deserialize() accepts exactly what serialize() emits and returns
     * false on malformed input.
     */
    std::string serialize() const;
    static bool deserialize(const std::string &text, ShrinkableProgram &out);
};

/** Generate one random chunk according to @p spec. */
Chunk randomChunk(Rng &rng, const RandomSpec &spec);

/** Generate a full shrinkable random program. */
ShrinkableProgram randomShrinkable(Rng &rng, const RandomSpec &spec,
                                   const Layout &layout = {});

} // namespace minjie::workload

#endif // MINJIE_WORKLOAD_SHRINKABLE_H
