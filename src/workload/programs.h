/**
 * @file
 * Workload programs: SPEC CPU2006 proxy kernels, CoreMark-like loops,
 * and random programs for fuzz co-simulation.
 */

#ifndef MINJIE_WORKLOAD_PROGRAMS_H
#define MINJIE_WORKLOAD_PROGRAMS_H

#include <vector>

#include "common/rng.h"
#include "workload/asm.h"

namespace minjie::workload {

/** Standard layout used by every canned program. */
struct Layout
{
    Addr codeBase = 0x80000000;
    Addr auxCode = 0x80040000;  ///< indirect-jump case blocks
    Addr dataBase = 0x80100000;
    Addr stackTop = 0x80f00000;
};

/**
 * Characteristics of one SPEC-proxy benchmark. The numbers steer the
 * generator toward the qualitative behaviour class of the original
 * benchmark (memory-bound, branchy, fp-heavy, ...).
 */
struct ProxySpec
{
    const char *name;
    bool fp;               ///< belongs to the SPECfp suite
    unsigned wsKB;          ///< data working-set size (power of two KB)
    unsigned chasePct;      ///< % of body groups doing pointer chasing
    unsigned branchPct;     ///< % of body groups with a data-dep branch
    unsigned entropyPct;    ///< of those branches, % truly random
    unsigned fpPct;         ///< % of body groups doing fp arithmetic
    unsigned storePct;      ///< % of body groups storing
    unsigned callPct;       ///< % of body groups calling a leaf
    unsigned indirectPct;   ///< % of body groups taking an indirect jump
};

/** The SPECint 2006 proxy suite (paper's Figure 8/12 benchmark list,
 *  excluding 400.perlbench as the paper does). */
const std::vector<ProxySpec> &specIntSuite();

/** The SPECfp 2006 proxy suite (excluding 435.gromacs as the paper
 *  does). */
const std::vector<ProxySpec> &specFpSuite();

/**
 * Build the proxy program for @p spec.
 *
 * @param iterations  outer-loop trip count; total dynamic instructions
 *                    scale roughly as 300-600 per iteration
 * @param seed        generator seed (layout of body groups)
 */
Program buildProxy(const ProxySpec &spec, uint64_t iterations,
                   uint64_t seed = 1, const Layout &layout = {});

/** Small deterministic sanity program: sums 1..n, exits 0 on success. */
Program sumProgram(uint64_t n, const Layout &layout = {});

/** CoreMark-stand-in: list walk + matrix-ish multiply + CRC loop. */
Program coremarkProxy(uint64_t iterations, const Layout &layout = {});

/**
 * Long-running allocator/lookup stress that keeps dirtying new pages;
 * used by the LightSSS overhead experiments (paper Figure 6).
 */
Program memStressProgram(uint64_t iterations, unsigned footprintMB,
                         const Layout &layout = {});

/**
 * A supervisor-mode Sv39 program: builds gigapage identity-mapped page
 * tables, enables translation, drops to S-mode via mret, and runs a
 * virtually-addressed kernel before exiting through the mapped device.
 * Exercises the full privilege + paging stack end-to-end.
 */
Program sv39Program(const Layout &layout = {});

/**
 * Random straight-line program for fuzz co-simulation: arithmetic,
 * short forward branches and sandboxed loads/stores, ending with a
 * SimCtrl exit. All engines must produce identical architectural state.
 */
Program randomProgram(Rng &rng, unsigned nInsts, bool withFp,
                      const Layout &layout = {});

} // namespace minjie::workload

#endif // MINJIE_WORKLOAD_PROGRAMS_H
