#include "workload/shrinkable.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/log.h"
#include "isa/decode.h"

namespace minjie::workload {

using isa::Op;

namespace {

// ---------------------------------------------------------------- RVC
// Compressed-instruction encoders. Field layouts follow the RVC spec;
// every produced encoding is checked against the repo decoder at
// generation time so a generator bug cannot silently emit garbage.

/** CI format (c.addi/c.addiw/c.li/c.slli). */
uint16_t
ci(unsigned f3, unsigned quad, uint8_t rd, int imm6)
{
    uint16_t u = static_cast<uint16_t>(imm6 & 0x3f);
    return static_cast<uint16_t>((f3 << 13) | (((u >> 5) & 1) << 12) |
                                 (rd << 7) | ((u & 0x1f) << 2) | quad);
}

uint16_t cAddi(uint8_t rd, int imm6) { return ci(0b000, 0b01, rd, imm6); }
uint16_t cAddiw(uint8_t rd, int imm6) { return ci(0b001, 0b01, rd, imm6); }
uint16_t cLi(uint8_t rd, int imm6) { return ci(0b010, 0b01, rd, imm6); }
uint16_t cSlli(uint8_t rd, unsigned sh)
{
    return ci(0b000, 0b10, rd, static_cast<int>(sh));
}

/** CB-format shifts/andi on x8..x15 (@p rdp is reg-8). */
uint16_t
cbAlu(unsigned funct2, uint8_t rdp, int imm6)
{
    uint16_t u = static_cast<uint16_t>(imm6 & 0x3f);
    return static_cast<uint16_t>((0b100 << 13) | (((u >> 5) & 1) << 12) |
                                 (funct2 << 10) | ((rdp & 7) << 7) |
                                 ((u & 0x1f) << 2) | 0b01);
}

uint16_t cSrli(uint8_t rdp, unsigned sh) { return cbAlu(0b00, rdp, sh); }
uint16_t cSrai(uint8_t rdp, unsigned sh) { return cbAlu(0b01, rdp, sh); }
uint16_t cAndi(uint8_t rdp, int imm6) { return cbAlu(0b10, rdp, imm6); }

/** CA format: c.sub/c.xor/c.or/c.and (w=0) and c.subw/c.addw (w=1). */
uint16_t
caAlu(unsigned funct2, bool w, uint8_t rdp, uint8_t rs2p)
{
    return static_cast<uint16_t>((0b100 << 13) | ((w ? 1 : 0) << 12) |
                                 (0b11 << 10) | ((rdp & 7) << 7) |
                                 (funct2 << 5) | ((rs2p & 7) << 2) | 0b01);
}

/** CR format: c.mv (add12=0) / c.add (add12=1), full register fields. */
uint16_t
crMove(bool add, uint8_t rd, uint8_t rs2)
{
    return static_cast<uint16_t>((0b100 << 13) | ((add ? 1 : 0) << 12) |
                                 (rd << 7) | (rs2 << 2) | 0b10);
}

/** CL/CS word access: c.lw/c.sw, offset multiple of 4 below 128. */
uint16_t
clsWord(bool store, uint8_t rdp, uint8_t rs1p, unsigned off)
{
    return static_cast<uint16_t>(((store ? 0b110 : 0b010) << 13) |
                                 (((off >> 3) & 7) << 10) |
                                 ((rs1p & 7) << 7) |
                                 (((off >> 2) & 1) << 6) |
                                 (((off >> 6) & 1) << 5) |
                                 ((rdp & 7) << 2) | 0b00);
}

/** CL/CS doubleword access: c.ld/c.sd, offset multiple of 8 below 256. */
uint16_t
clsDouble(bool store, uint8_t rdp, uint8_t rs1p, unsigned off)
{
    return static_cast<uint16_t>(((store ? 0b111 : 0b011) << 13) |
                                 (((off >> 3) & 7) << 10) |
                                 ((rs1p & 7) << 7) |
                                 (((off >> 6) & 3) << 5) |
                                 ((rdp & 7) << 2) | 0b00);
}

/** Emit one compressed encoding, validating it against the decoder. */
void
emitRvc(Asm &a, uint16_t enc)
{
    isa::DecodedInst di = isa::decode16(enc);
    if (di.op == Op::Illegal)
        panic("rvc generator produced illegal encoding 0x%04x", enc);
    a.raw16(enc);
}

// ------------------------------------------------------- op tables
const Op ALU_R[] = {
    Op::Add, Op::Sub, Op::Sll, Op::Slt, Op::Sltu, Op::Xor, Op::Srl,
    Op::Sra, Op::Or, Op::And, Op::Addw, Op::Subw, Op::Sllw, Op::Srlw,
    Op::Sraw, Op::Mul, Op::Mulh, Op::Mulhsu, Op::Mulhu, Op::Div,
    Op::Divu, Op::Rem, Op::Remu, Op::Mulw, Op::Divw, Op::Divuw,
    Op::Remw, Op::Remuw, Op::Andn, Op::Orn, Op::Xnor, Op::Max,
    Op::Maxu, Op::Min, Op::Minu, Op::Rol, Op::Ror, Op::Sh1add,
    Op::Sh2add, Op::Sh3add, Op::AddUw, Op::Rolw, Op::Rorw,
};
const Op ALU_I[] = {
    Op::Addi, Op::Slti, Op::Sltiu, Op::Xori, Op::Ori, Op::Andi,
    Op::Addiw,
};
const Op SHIFT_I[] = {Op::Slli, Op::Srli, Op::Srai, Op::Rori};
const Op UNARY[] = {
    Op::Clz, Op::Ctz, Op::Cpop, Op::Clzw, Op::Ctzw, Op::Cpopw,
    Op::SextB, Op::SextH, Op::ZextH, Op::OrcB, Op::Rev8,
};
const Op LOADS[] = {Op::Lb, Op::Lh, Op::Lw, Op::Ld, Op::Lbu, Op::Lhu,
                    Op::Lwu};
const Op STORES[] = {Op::Sb, Op::Sh, Op::Sw, Op::Sd};
const Op BRANCHES[] = {Op::Beq, Op::Bne, Op::Blt, Op::Bge, Op::Bltu,
                       Op::Bgeu};
const Op FP_ARITH[] = {
    Op::FaddD, Op::FsubD, Op::FmulD, Op::FdivD, Op::FsqrtD,
    Op::FaddS, Op::FsubS, Op::FmulS, Op::FdivS, Op::FsqrtS,
    Op::FsgnjD, Op::FsgnjnD, Op::FsgnjxD, Op::FminD, Op::FmaxD,
    Op::FsgnjS, Op::FminS, Op::FmaxS,
    Op::FmaddD, Op::FmsubD, Op::FnmsubD, Op::FnmaddD,
};
const Op AMOS[] = {
    Op::AmoSwapW, Op::AmoAddW, Op::AmoXorW, Op::AmoAndW, Op::AmoOrW,
    Op::AmoMinW, Op::AmoMaxW, Op::AmoMinuW, Op::AmoMaxuW,
    Op::AmoSwapD, Op::AmoAddD, Op::AmoXorD, Op::AmoAndD, Op::AmoOrD,
    Op::AmoMinD, Op::AmoMaxD, Op::AmoMinuD, Op::AmoMaxuD,
};

/** Any integer register except zero's sandbox anchor s0. */
uint8_t
pickRd(Rng &rng)
{
    uint8_t r;
    do {
        r = static_cast<uint8_t>(rng.below(32));
    } while (r == s0);
    return r;
}

uint8_t pickRs(Rng &rng) { return static_cast<uint8_t>(rng.below(32)); }

/** Compressed rd' field: x9..x15 (never the s0/x8 anchor). */
uint8_t pickRdc(Rng &rng) { return static_cast<uint8_t>(9 + rng.below(7)); }

/**
 * Emit t0 = s0 + aligned offset within the low 2 KB of the sandbox.
 * Two andi steps: clamp positive (0x7ff), then align (-size has all
 * high bits set, so it only clears the low alignment bits).
 */
void
sandboxAddr(Asm &a, Rng &rng, unsigned size)
{
    a.itype(Op::Andi, t0, pickRs(rng), 0x7ff);
    a.itype(Op::Andi, t0, t0, -static_cast<int64_t>(size));
    a.rtype(Op::Add, t0, t0, s0);
}

} // namespace

Chunk
randomChunk(Rng &rng, const RandomSpec &spec)
{
    Asm a(0);
    unsigned n = 0;
    unsigned cat = static_cast<unsigned>(rng.below(100));

    auto aluRChunk = [&] {
        unsigned count = 1 + static_cast<unsigned>(rng.below(3));
        for (unsigned k = 0; k < count; ++k)
            a.rtype(ALU_R[rng.below(std::size(ALU_R))], pickRd(rng),
                    pickRs(rng), pickRs(rng));
        n += count;
    };

    if (cat < 26) {
        aluRChunk();
    } else if (cat < 38) {
        a.itype(ALU_I[rng.below(std::size(ALU_I))], pickRd(rng),
                pickRs(rng), static_cast<int64_t>(rng.next() & 0xfff) - 2048);
        n += 1;
    } else if (cat < 45) {
        a.itype(SHIFT_I[rng.below(std::size(SHIFT_I))], pickRd(rng),
                pickRs(rng), static_cast<int64_t>(rng.below(64)));
        n += 1;
    } else if (cat < 51) {
        a.itype(UNARY[rng.below(std::size(UNARY))], pickRd(rng),
                pickRs(rng), 0);
        n += 1;
    } else if (cat < 61) {
        Op op = LOADS[rng.below(std::size(LOADS))];
        sandboxAddr(a, rng, isa::memSize(op));
        a.load(op, pickRd(rng), 0, t0);
        n += 4;
    } else if (cat < 69) {
        Op op = STORES[rng.below(std::size(STORES))];
        sandboxAddr(a, rng, isa::memSize(op));
        a.store(op, pickRs(rng), 0, t0);
        n += 4;
    } else if (cat < 77) {
        // Short forward branch over 1-3 filler instructions; the label
        // resolves within the chunk, keeping it position-independent.
        Label skip = a.newLabel();
        a.branch(BRANCHES[rng.below(std::size(BRANCHES))], pickRs(rng),
                 pickRs(rng), skip);
        unsigned fill = 1 + static_cast<unsigned>(rng.below(3));
        for (unsigned k = 0; k < fill; ++k)
            a.rtype(ALU_R[rng.below(std::size(ALU_R))], pickRd(rng),
                    pickRs(rng), pickRs(rng));
        a.bind(skip);
        n += 1 + fill;
    } else if (cat < 84 && spec.withRvc) {
        // Compressed sequence: 2-5 RVC instructions. Loads/stores use
        // the s0 anchor (x8 encodes as compressed register 0).
        unsigned count = 2 + static_cast<unsigned>(rng.below(4));
        for (unsigned k = 0; k < count; ++k) {
            int imm6 = static_cast<int>(rng.below(63)) - 31;
            if (imm6 == 0)
                imm6 = 1;
            switch (rng.below(9)) {
              case 0:
                emitRvc(a, cLi(pickRd(rng), imm6));
                break;
              case 1:
                emitRvc(a, cAddi(pickRd(rng), imm6));
                break;
              case 2: {
                uint8_t rd = pickRd(rng);
                if (rd == 0)
                    rd = t1; // c.addiw with rd=x0 is reserved
                emitRvc(a, cAddiw(rd, imm6));
                break;
              }
              case 3:
                emitRvc(a, cSlli(pickRd(rng),
                                 1 + static_cast<unsigned>(rng.below(63))));
                break;
              case 4: {
                unsigned sh = 1 + static_cast<unsigned>(rng.below(63));
                uint8_t rdp = static_cast<uint8_t>(pickRdc(rng) - 8);
                emitRvc(a, rng.chance(50) ? cSrli(rdp, sh)
                                          : cSrai(rdp, sh));
                break;
              }
              case 5:
                emitRvc(a, cAndi(static_cast<uint8_t>(pickRdc(rng) - 8),
                                 imm6));
                break;
              case 6: {
                // c.sub/c.xor/c.or/c.and or the RV64 c.subw/c.addw.
                bool w = rng.chance(33);
                unsigned f2 = static_cast<unsigned>(rng.below(w ? 2 : 4));
                emitRvc(a, caAlu(f2, w,
                                 static_cast<uint8_t>(pickRdc(rng) - 8),
                                 static_cast<uint8_t>(pickRdc(rng) - 8)));
                break;
              }
              case 7: {
                uint8_t rs2 = pickRs(rng);
                if (rs2 == 0)
                    rs2 = t1;
                emitRvc(a, crMove(rng.chance(50), pickRd(rng), rs2));
                break;
              }
              default: {
                bool dbl = rng.chance(50);
                bool store = rng.chance(40);
                uint8_t rp = static_cast<uint8_t>(pickRdc(rng) - 8);
                unsigned off = dbl
                                   ? 8 * static_cast<unsigned>(rng.below(32))
                                   : 4 * static_cast<unsigned>(rng.below(32));
                emitRvc(a, dbl ? clsDouble(store, rp, 0, off)
                               : clsWord(store, rp, 0, off));
                break;
              }
            }
        }
        n += count;
    } else if (cat < 89 && spec.withFp) {
        Op op = FP_ARITH[rng.below(std::size(FP_ARITH))];
        a.fp3(op, static_cast<uint8_t>(rng.below(32)),
              static_cast<uint8_t>(rng.below(32)),
              static_cast<uint8_t>(rng.below(32)),
              static_cast<uint8_t>(rng.below(32)));
        n += 1;
    } else if (cat < 92 && spec.withFp) {
        // fp <-> int traffic
        isa::DecodedInst mv;
        if (rng.chance(50)) {
            mv.op = Op::FmvDX;
            mv.rd = static_cast<uint8_t>(rng.below(32));
            mv.rs1 = pickRs(rng);
        } else {
            mv.op = Op::FmvXD;
            mv.rd = pickRd(rng);
            mv.rs1 = static_cast<uint8_t>(rng.below(32));
        }
        a.emit(mv);
        n += 1;
    } else if (cat < 96 && spec.withAmo) {
        Op op = AMOS[rng.below(std::size(AMOS))];
        sandboxAddr(a, rng, isa::memSize(op));
        a.rtype(op, pickRd(rng), t0, pickRs(rng));
        n += 4;
    } else if (spec.withAmo) {
        // LR/SC sequence. Half the time a bare pair, half a
        // load-modify-conditional-store with a branch on the SC result.
        bool dbl = rng.chance(50);
        sandboxAddr(a, rng, 8);
        uint8_t lrd = pickRd(rng);
        while (lrd == t0)
            lrd = pickRd(rng);
        a.rtype(dbl ? Op::LrD : Op::LrW, lrd, t0, 0);
        n += 4;
        if (rng.chance(50)) {
            a.rtype(dbl ? Op::ScD : Op::ScW, pickRd(rng), t0, pickRs(rng));
            n += 1;
        } else {
            uint8_t mod = pickRd(rng);
            while (mod == t0)
                mod = pickRd(rng);
            a.rtype(ALU_R[rng.below(std::size(ALU_R))], mod, lrd,
                    pickRs(rng));
            uint8_t flag = pickRd(rng);
            while (flag == t0)
                flag = pickRd(rng);
            a.rtype(dbl ? Op::ScD : Op::ScW, flag, t0, mod);
            Label done = a.newLabel();
            a.branch(Op::Bne, flag, zero, done);
            a.rtype(Op::Add, pickRd(rng), mod, flag);
            a.bind(done);
            n += 4;
        }
    } else {
        aluRChunk();
    }

    Chunk c;
    c.bytes = a.finish().bytes;
    c.nInsts = n;
    return c;
}

ShrinkableProgram
randomShrinkable(Rng &rng, const RandomSpec &spec, const Layout &layout)
{
    ShrinkableProgram sp;
    sp.layout = layout;
    sp.withFp = spec.withFp;
    sp.dataSeed = rng.next();
    for (unsigned r = 1; r < 32; ++r)
        sp.xInit[r] = rng.next();
    if (spec.withFp)
        for (unsigned r = 0; r < 32; ++r)
            sp.fInit[r] = rng.next();

    unsigned total = 0;
    while (total < spec.nInsts) {
        sp.chunks.push_back(randomChunk(rng, spec));
        total += sp.chunks.back().nInsts;
    }
    return sp;
}

Program
ShrinkableProgram::assemble() const
{
    Program prog;
    prog.name = name;
    prog.entry = layout.codeBase;

    // 4 KB sandbox for memory operations, filled from the data seed so
    // a corpus file reproduces the exact memory image.
    std::vector<uint8_t> sandbox(4096);
    Rng drng(dataSeed);
    for (auto &b : sandbox)
        b = static_cast<uint8_t>(drng.next());
    prog.segments.push_back({layout.dataBase, std::move(sandbox)});

    Asm a(layout.codeBase);
    for (unsigned r = 1; r < 32; ++r) {
        if (r == s0)
            continue;
        a.li(static_cast<uint8_t>(r), xInit[r]);
    }
    if (withFp) {
        for (unsigned r = 0; r < 32; ++r) {
            a.li(t0, fInit[r]);
            isa::DecodedInst mv;
            mv.op = Op::FmvDX;
            mv.rd = static_cast<uint8_t>(r);
            mv.rs1 = t0;
            a.emit(mv);
        }
        a.li(t0, xInit[t0]); // restore t0's integer seed
    }
    a.li(s0, layout.dataBase);

    for (const auto &c : chunks)
        a.bytes(c.bytes);

    a.exit(0);
    prog.segments.push_back(a.finish());
    return prog;
}

unsigned
ShrinkableProgram::bodyInsts() const
{
    unsigned total = 0;
    for (const auto &c : chunks)
        total += c.nInsts;
    return total;
}

std::string
ShrinkableProgram::serialize() const
{
    char buf[96];
    std::string out = "minjie-program v1\n";
    out += "name " + name + "\n";
    std::snprintf(buf, sizeof(buf), "fp %d\n", withFp ? 1 : 0);
    out += buf;
    std::snprintf(buf, sizeof(buf), "dataseed 0x%llx\n",
                  static_cast<unsigned long long>(dataSeed));
    out += buf;
    std::snprintf(buf, sizeof(buf), "layout 0x%llx 0x%llx 0x%llx 0x%llx\n",
                  static_cast<unsigned long long>(layout.codeBase),
                  static_cast<unsigned long long>(layout.auxCode),
                  static_cast<unsigned long long>(layout.dataBase),
                  static_cast<unsigned long long>(layout.stackTop));
    out += buf;
    for (unsigned r = 1; r < 32; ++r) {
        std::snprintf(buf, sizeof(buf), "x%u 0x%llx\n", r,
                      static_cast<unsigned long long>(xInit[r]));
        out += buf;
    }
    if (withFp) {
        for (unsigned r = 0; r < 32; ++r) {
            std::snprintf(buf, sizeof(buf), "f%u 0x%llx\n", r,
                          static_cast<unsigned long long>(fInit[r]));
            out += buf;
        }
    }
    for (const auto &c : chunks) {
        std::snprintf(buf, sizeof(buf), "chunk %u ", c.nInsts);
        out += buf;
        for (uint8_t b : c.bytes) {
            std::snprintf(buf, sizeof(buf), "%02x", b);
            out += buf;
        }
        out += "\n";
    }
    out += "end\n";
    return out;
}

bool
ShrinkableProgram::deserialize(const std::string &text,
                               ShrinkableProgram &out)
{
    out = ShrinkableProgram{};
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != "minjie-program v1")
        return false;
    bool sawEnd = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line == "end") {
            sawEnd = true;
            break;
        }
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "name") {
            ls >> out.name;
        } else if (tag == "fp") {
            int v = 0;
            ls >> v;
            out.withFp = v != 0;
        } else if (tag == "dataseed") {
            ls >> std::hex >> out.dataSeed;
        } else if (tag == "layout") {
            ls >> std::hex >> out.layout.codeBase >> out.layout.auxCode >>
                out.layout.dataBase >> out.layout.stackTop;
        } else if (tag.size() > 1 && (tag[0] == 'x' || tag[0] == 'f')) {
            unsigned r = static_cast<unsigned>(
                std::strtoul(tag.c_str() + 1, nullptr, 10));
            if (r >= 32)
                return false;
            uint64_t v = 0;
            ls >> std::hex >> v;
            (tag[0] == 'x' ? out.xInit : out.fInit)[r] = v;
        } else if (tag == "chunk") {
            Chunk c;
            std::string hexBytes;
            ls >> std::dec >> c.nInsts >> hexBytes;
            if (hexBytes.size() % 2 != 0)
                return false;
            for (size_t i = 0; i < hexBytes.size(); i += 2) {
                char pair[3] = {hexBytes[i], hexBytes[i + 1], 0};
                char *endp = nullptr;
                c.bytes.push_back(static_cast<uint8_t>(
                    std::strtoul(pair, &endp, 16)));
                if (endp != pair + 2)
                    return false;
            }
            out.chunks.push_back(std::move(c));
        } else {
            return false; // unknown tag: refuse rather than misparse
        }
    }
    return sawEnd;
}

} // namespace minjie::workload
