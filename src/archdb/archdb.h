/**
 * @file
 * ArchDB: the probe-driven event database (paper Section III-B3).
 *
 * The paper's ArchDB is an SQLite database whose tables are generated
 * automatically from probe definitions and used to filter and visualize
 * events (e.g. the L2/L3 Acquire/Probe overlap in the Section IV-C bug
 * hunt). This build environment has no SQLite, so ArchDB is an
 * in-memory relational store with the same shape: schema-from-probe
 * table creation, insertion from probe objects, predicate queries, and
 * simple aggregation for debugging.
 */

#ifndef MINJIE_ARCHDB_ARCHDB_H
#define MINJIE_ARCHDB_ARCHDB_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "difftest/probes.h"
#include "uarch/cache.h"

namespace minjie::archdb {

/** One cell: all probe fields are integral; strings cover names. */
struct Value
{
    enum class Kind : uint8_t { Int, Str } kind = Kind::Int;
    uint64_t num = 0;
    std::string str;

    Value() = default;
    Value(uint64_t v) : kind(Kind::Int), num(v) {}
    Value(int v) : kind(Kind::Int), num(static_cast<uint64_t>(v)) {}
    Value(const char *s) : kind(Kind::Str), str(s) {}
    Value(std::string s) : kind(Kind::Str), str(std::move(s)) {}

    bool
    operator==(const Value &o) const
    {
        return kind == o.kind &&
               (kind == Kind::Int ? num == o.num : str == o.str);
    }
};

using Row = std::vector<Value>;

/** A typed table with named columns. */
class Table
{
  public:
    Table() = default;
    Table(std::string name, std::vector<std::string> columns)
        : name_(std::move(name)), columns_(std::move(columns))
    {
    }

    const std::string &name() const { return name_; }
    const std::vector<std::string> &columns() const { return columns_; }
    size_t size() const { return rows_.size(); }

    void
    insert(Row row)
    {
        rows_.push_back(std::move(row));
    }

    int columnIndex(const std::string &col) const;

    /** All rows where @p col equals @p v. */
    std::vector<Row> selectEq(const std::string &col,
                              const Value &v) const;

    /** All rows matching an arbitrary predicate. */
    std::vector<Row>
    selectWhere(const std::function<bool(const Row &)> &pred) const
    {
        std::vector<Row> out;
        for (const auto &r : rows_)
            if (pred(r))
                out.push_back(r);
        return out;
    }

    /** Count of rows grouped by the values of @p col. */
    std::map<std::string, uint64_t> histogram(const std::string &col)
        const;

    const std::vector<Row> &rows() const { return rows_; }

  private:
    std::string name_;
    std::vector<std::string> columns_;
    std::vector<Row> rows_;
};

/**
 * The database: tables auto-created from the probe types, plus
 * user-defined tables for custom probes.
 */
class ArchDB
{
  public:
    ArchDB();

    /** Record a commit probe (table "commits"). */
    void recordCommit(const difftest::CommitProbe &probe, Cycle at);

    /** Record a store probe (table "stores"). */
    void recordStore(const difftest::StoreProbe &probe, Cycle at);

    /** Record a cache transaction (table "transactions"). */
    void recordTransaction(const uarch::Transaction &txn);

    /**
     * Record one named counter value (table "counters",
     * schema-from-counter: rows carry the dotted tree path). The obs
     * layer streams CounterSnapshot entries through here.
     */
    void recordCounter(const std::string &path, uint64_t value);

    /** Record one trace event (table "trace_events"). */
    void recordTraceEvent(Cycle at, const std::string &kind, Addr pc,
                          uint64_t arg0, uint64_t arg1, unsigned hart);

    /** Create (or fetch) a user table. */
    Table &table(const std::string &name,
                 std::vector<std::string> columns = {});

    bool hasTable(const std::string &name) const
    {
        return tables_.count(name) != 0;
    }

    /** Total rows across all tables. */
    size_t totalRows() const;

    /** Render a compact textual report (the "visualization"). */
    std::string report() const;

  private:
    std::map<std::string, Table> tables_;
};

} // namespace minjie::archdb

#endif // MINJIE_ARCHDB_ARCHDB_H
