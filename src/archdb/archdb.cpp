#include "archdb/archdb.h"

#include <sstream>

#include "isa/decode.h"
#include "isa/disasm.h"

namespace minjie::archdb {

int
Table::columnIndex(const std::string &col) const
{
    for (size_t i = 0; i < columns_.size(); ++i)
        if (columns_[i] == col)
            return static_cast<int>(i);
    return -1;
}

std::vector<Row>
Table::selectEq(const std::string &col, const Value &v) const
{
    std::vector<Row> out;
    int idx = columnIndex(col);
    if (idx < 0)
        return out;
    for (const auto &r : rows_)
        if (r[static_cast<size_t>(idx)] == v)
            out.push_back(r);
    return out;
}

std::map<std::string, uint64_t>
Table::histogram(const std::string &col) const
{
    std::map<std::string, uint64_t> h;
    int idx = columnIndex(col);
    if (idx < 0)
        return h;
    for (const auto &r : rows_) {
        const Value &v = r[static_cast<size_t>(idx)];
        if (v.kind == Value::Kind::Str) {
            ++h[v.str];
        } else {
            ++h[std::to_string(v.num)];
        }
    }
    return h;
}

ArchDB::ArchDB()
{
    // Tables generated from the probe definitions (one column per
    // probe field, as the paper's auto-generation does).
    tables_.emplace("commits",
                    Table("commits",
                          {"cycle", "hart", "pc", "inst", "disasm", "rd",
                           "rd_written", "rd_value", "is_load",
                           "is_store", "mem_paddr", "mem_data", "trap",
                           "trap_cause"}));
    tables_.emplace("stores", Table("stores", {"cycle", "hart", "paddr",
                                               "data", "size"}));
    tables_.emplace(
        "transactions",
        Table("transactions", {"cycle", "kind", "cache", "line"}));
    tables_.emplace("counters", Table("counters", {"name", "value"}));
    tables_.emplace("trace_events",
                    Table("trace_events", {"cycle", "kind", "pc", "arg0",
                                           "arg1", "hart"}));
}

void
ArchDB::recordCommit(const difftest::CommitProbe &p, Cycle at)
{
    auto di = isa::decode(p.inst);
    tables_["commits"].insert({Value(at), Value(uint64_t(p.hart)),
                               Value(p.pc), Value(uint64_t(p.inst)),
                               Value(isa::disasm(di)),
                               Value(uint64_t(p.rd)),
                               Value(uint64_t(p.rdWritten)),
                               Value(p.rdValue),
                               Value(uint64_t(p.isLoad)),
                               Value(uint64_t(p.isStore)),
                               Value(p.memPaddr), Value(p.memData),
                               Value(uint64_t(p.trap)),
                               Value(p.trapCause)});
}

void
ArchDB::recordStore(const difftest::StoreProbe &p, Cycle at)
{
    tables_["stores"].insert({Value(at), Value(uint64_t(p.hart)),
                              Value(p.paddr), Value(p.data),
                              Value(uint64_t(p.size))});
}

void
ArchDB::recordTransaction(const uarch::Transaction &txn)
{
    tables_["transactions"].insert({Value(txn.at),
                                    Value(uarch::txnKindName(txn.kind)),
                                    Value(txn.cacheName),
                                    Value(txn.line)});
}

void
ArchDB::recordCounter(const std::string &path, uint64_t value)
{
    tables_["counters"].insert({Value(path), Value(value)});
}

void
ArchDB::recordTraceEvent(Cycle at, const std::string &kind, Addr pc,
                         uint64_t arg0, uint64_t arg1, unsigned hart)
{
    tables_["trace_events"].insert({Value(at), Value(kind), Value(pc),
                                    Value(arg0), Value(arg1),
                                    Value(uint64_t(hart))});
}

Table &
ArchDB::table(const std::string &name, std::vector<std::string> columns)
{
    auto it = tables_.find(name);
    if (it == tables_.end())
        it = tables_.emplace(name, Table(name, std::move(columns))).first;
    return it->second;
}

size_t
ArchDB::totalRows() const
{
    size_t n = 0;
    for (const auto &[name, t] : tables_)
        n += t.size();
    return n;
}

std::string
ArchDB::report() const
{
    std::ostringstream os;
    os << "ArchDB: " << tables_.size() << " tables, " << totalRows()
       << " rows\n";
    for (const auto &[name, t] : tables_) {
        os << "  " << name << ": " << t.size() << " rows\n";
        if (name == "transactions" && t.size()) {
            for (const auto &[kind, count] :
                 t.histogram("kind"))
                os << "    " << kind << ": " << count << "\n";
        }
    }
    return os.str();
}

} // namespace minjie::archdb
