#include "sample/store.h"

#include <cmath>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "checkpoint/generator.h"

namespace minjie::sample {

namespace {

constexpr uint64_t MAGIC = 0x4d4a504b30303031ULL; // "MJPK0001"
constexpr uint64_t VERSION = 1;
constexpr size_t HEADER_U64 = 6;
constexpr size_t TABLE_U64 = 5;
constexpr size_t PAGE = mem::PhysMem::PAGE_SIZE;

void
put64(std::vector<uint8_t> &v, uint64_t x)
{
    size_t off = v.size();
    v.resize(off + 8);
    std::memcpy(v.data() + off, &x, 8);
}

uint64_t
rd64(const uint8_t *p)
{
    uint64_t x;
    std::memcpy(&x, p, 8);
    return x;
}

/** FNV-1a over one page, folded 8 bytes at a time. */
uint64_t
hashPage(const uint8_t *page)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < PAGE; i += 8) {
        uint64_t w;
        std::memcpy(&w, page + i, 8);
        h = (h ^ w) * 0x100000001b3ULL;
    }
    return h;
}

bool
writeAll(int fd, const uint8_t *p, size_t n)
{
    while (n) {
        ssize_t w = ::write(fd, p, n);
        if (w <= 0)
            return false;
        p += static_cast<size_t>(w);
        n -= static_cast<size_t>(w);
    }
    return true;
}

} // namespace

uint64_t
PackWriter::poolIndexFor(const uint8_t *page)
{
    uint64_t h = hashPage(page);
    auto &bucket = hashToIdx_[h];
    for (uint64_t idx : bucket) {
        if (std::memcmp(pool_.data() + idx * PAGE, page, PAGE) == 0)
            return idx;
    }
    uint64_t idx = pool_.size() / PAGE;
    pool_.insert(pool_.end(), page, page + PAGE);
    bucket.push_back(idx);
    return idx;
}

bool
PackWriter::add(const checkpoint::Checkpoint &cp, uint64_t weightNum)
{
    const auto &v = cp.bytes;
    size_t archLen = checkpoint::archHeaderBytes();
    if (v.size() < archLen + 8)
        return false;

    Entry e;
    e.instCount = cp.instCount;
    e.weightNum = weightNum;
    e.arch.assign(v.begin(),
                  v.begin() + static_cast<ptrdiff_t>(archLen));

    size_t off = archLen;
    uint64_t pages = rd64(v.data() + off);
    off += 8;
    for (uint64_t p = 0; p < pages; ++p) {
        if (off + 8 + PAGE > v.size())
            return false;
        uint64_t base = rd64(v.data() + off);
        off += 8;
        e.pages.emplace_back(base, poolIndexFor(v.data() + off));
        off += PAGE;
    }
    totalRefs_ += e.pages.size();
    table_.push_back(std::move(e));
    return true;
}

std::vector<uint8_t>
PackWriter::bytes() const
{
    // Offsets: header, table, then per-checkpoint arch blob followed
    // by its page-entry array, then the page pool aligned to 4096.
    size_t n = table_.size();
    uint64_t cursor = (HEADER_U64 + TABLE_U64 * n) * 8;
    std::vector<uint64_t> archOff(n), entryOff(n);
    for (size_t i = 0; i < n; ++i) {
        archOff[i] = cursor;
        cursor += table_[i].arch.size();
        entryOff[i] = cursor;
        cursor += table_[i].pages.size() * 16;
    }
    uint64_t poolOff = (cursor + PAGE - 1) / PAGE * PAGE;

    std::vector<uint8_t> out;
    out.reserve(poolOff + pool_.size());
    put64(out, MAGIC);
    put64(out, VERSION);
    put64(out, n);
    put64(out, weightDen_);
    put64(out, poolOff);
    put64(out, pool_.size() / PAGE);
    for (size_t i = 0; i < n; ++i) {
        put64(out, table_[i].instCount);
        put64(out, table_[i].weightNum);
        put64(out, archOff[i]);
        put64(out, entryOff[i]);
        put64(out, table_[i].pages.size());
    }
    for (const auto &e : table_) {
        out.insert(out.end(), e.arch.begin(), e.arch.end());
        for (const auto &[base, idx] : e.pages) {
            put64(out, base);
            put64(out, idx);
        }
    }
    out.resize(poolOff, 0);
    out.insert(out.end(), pool_.begin(), pool_.end());
    return out;
}

bool
PackWriter::writeFile(const std::string &path) const
{
    auto img = bytes();
    int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    bool ok = writeAll(fd, img.data(), img.size());
    ok = (::close(fd) == 0) && ok;
    return ok;
}

PackReader::~PackReader()
{
    close();
}

PackReader &
PackReader::operator=(PackReader &&other) noexcept
{
    if (this != &other) {
        close();
        data_ = other.data_;
        len_ = other.len_;
        fd_ = other.fd_;
        own_ = std::move(other.own_);
        nCheckpoints_ = other.nCheckpoints_;
        weightDen_ = other.weightDen_;
        pagePoolOff_ = other.pagePoolOff_;
        nPoolPages_ = other.nPoolPages_;
        other.data_ = nullptr;
        other.len_ = 0;
        other.fd_ = -1;
        other.nCheckpoints_ = 0;
    }
    return *this;
}

void
PackReader::close()
{
    if (fd_ >= 0) {
        ::munmap(const_cast<uint8_t *>(data_), len_);
        ::close(fd_);
        fd_ = -1;
    }
    data_ = nullptr;
    len_ = 0;
    own_.clear();
    nCheckpoints_ = 0;
}

bool
PackReader::openFile(const std::string &path)
{
    close();
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return false;
    }
    size_t len = static_cast<size_t>(st.st_size);
    void *p = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
    if (p == MAP_FAILED) {
        ::close(fd);
        return false;
    }
    fd_ = fd;
    data_ = static_cast<const uint8_t *>(p);
    len_ = len;
    if (!parse()) {
        close();
        return false;
    }
    return true;
}

bool
PackReader::openMemory(std::vector<uint8_t> bytes)
{
    close();
    own_ = std::move(bytes);
    data_ = own_.data();
    len_ = own_.size();
    if (!parse()) {
        close();
        return false;
    }
    return true;
}

bool
PackReader::parse()
{
    if (len_ < HEADER_U64 * 8 || rd64(data_) != MAGIC ||
        rd64(data_ + 8) != VERSION)
        return false;
    nCheckpoints_ = rd64(data_ + 16);
    weightDen_ = rd64(data_ + 24);
    pagePoolOff_ = rd64(data_ + 32);
    nPoolPages_ = rd64(data_ + 40);
    if ((HEADER_U64 + TABLE_U64 * nCheckpoints_) * 8 > len_)
        return false;
    if (pagePoolOff_ > len_ || nPoolPages_ * PAGE > len_ - pagePoolOff_)
        return false;
    return true;
}

const uint8_t *
PackReader::tableEntry(size_t i) const
{
    return data_ + (HEADER_U64 + TABLE_U64 * i) * 8;
}

uint64_t
PackReader::weightNum(size_t i) const
{
    return rd64(tableEntry(i) + 8);
}

uint64_t
PackReader::instCount(size_t i) const
{
    return rd64(tableEntry(i));
}

double
PackReader::weight(size_t i) const
{
    return weightDen_ ? static_cast<double>(weightNum(i)) /
                            static_cast<double>(weightDen_)
                      : 0.0;
}

bool
PackReader::restoreInto(size_t i, iss::ArchState &state,
                        mem::PhysMem &mem) const
{
    if (i >= nCheckpoints_)
        return false;
    const uint8_t *te = tableEntry(i);
    uint64_t archOff = rd64(te + 16);
    uint64_t entryOff = rd64(te + 24);
    uint64_t nEntries = rd64(te + 32);
    size_t archLen = checkpoint::archHeaderBytes();
    if (archOff + archLen > len_ || entryOff + nEntries * 16 > len_)
        return false;
    if (!checkpoint::restoreArch(data_ + archOff, archLen, state))
        return false;

    mem.clear();
    for (uint64_t e = 0; e < nEntries; ++e) {
        uint64_t base = rd64(data_ + entryOff + e * 16);
        uint64_t idx = rd64(data_ + entryOff + e * 16 + 8);
        if (idx >= nPoolPages_)
            return false;
        mem.load(base, data_ + pagePoolOff_ + idx * PAGE, PAGE);
    }
    return true;
}

std::vector<uint8_t>
packFromGen(const checkpoint::GenResult &gen)
{
    if (gen.checkpoints.empty())
        return {};
    // SimPoint weights are clusterSize / intervalCount; recover the
    // integer numerator so downstream reduction is exact. The
    // whole-run fallback (one checkpoint, weight 1.0) lands on 1/1.
    uint64_t den = gen.simpoints.assignment.size();
    if (den == 0)
        den = 1;
    PackWriter w(den);
    for (const auto &cp : gen.checkpoints) {
        uint64_t num = static_cast<uint64_t>(
            std::llround(cp.weight * static_cast<double>(den)));
        if (!w.add(cp, num))
            return {};
    }
    return w.bytes();
}

} // namespace minjie::sample
