#include "sample/engine.h"

#include <cstring>
#include <deque>

#include <sys/wait.h>
#include <unistd.h>
#if defined(__GLIBC__)
#include <stdio_ext.h> // __fpurge: discard inherited stdio buffers
#endif

#include "checkpoint/checkpoint.h"
#include "common/clock.h"
#include "iss/system.h"
#include "nemu/nemu.h"
#include "obs/collect.h"

namespace minjie::sample {

namespace {

constexpr uint64_t BLOB_MAGIC = 0x4d4a534c30303031ULL; // "MJSL0001"

void
put64(std::vector<uint8_t> &v, uint64_t x)
{
    size_t off = v.size();
    v.resize(off + 8);
    std::memcpy(v.data() + off, &x, 8);
}

uint64_t
get64(const std::vector<uint8_t> &v, size_t &off)
{
    uint64_t x = 0;
    if (off + 8 <= v.size()) {
        std::memcpy(&x, v.data() + off, 8);
        off += 8;
    }
    return x;
}

bool
writeAll(int fd, const uint8_t *p, size_t n)
{
    while (n) {
        ssize_t w = ::write(fd, p, n);
        if (w <= 0)
            return false;
        p += static_cast<size_t>(w);
        n -= static_cast<size_t>(w);
    }
    return true;
}

/** Drain @p fd to EOF (the child writes one blob and exits). */
std::vector<uint8_t>
readAll(int fd)
{
    std::vector<uint8_t> out;
    uint8_t buf[4096];
    for (;;) {
        ssize_t r = ::read(fd, buf, sizeof(buf));
        if (r <= 0)
            break;
        out.insert(out.end(), buf, buf + r);
    }
    return out;
}

/** Snapshot the whole SoC counter tree with bare "core0.*" keys. */
obs::CounterSnapshot
socSnapshot(xs::Soc &soc)
{
    obs::CounterGroup root;
    obs::collectSoc(root, soc);
    obs::CounterSnapshot s;
    root.flattenInto(s, "");
    return s;
}

} // namespace

std::vector<uint8_t>
encodeSlice(const SliceResult &r)
{
    std::vector<uint8_t> v;
    put64(v, BLOB_MAGIC);
    put64(v, r.ok ? 1 : 0);
    put64(v, r.cycles);
    put64(v, r.instrs);
    put64(v, r.counters.values.size());
    for (const auto &[k, val] : r.counters.values) {
        put64(v, k.size());
        v.insert(v.end(), k.begin(), k.end());
        put64(v, val);
    }
    return v;
}

bool
decodeSlice(const std::vector<uint8_t> &blob, SliceResult &r)
{
    size_t off = 0;
    if (get64(blob, off) != BLOB_MAGIC)
        return false;
    r.ok = get64(blob, off) != 0;
    r.cycles = get64(blob, off);
    r.instrs = get64(blob, off);
    uint64_t n = get64(blob, off);
    r.counters.values.clear();
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t len = get64(blob, off);
        if (off + len + 8 > blob.size())
            return false;
        std::string key(reinterpret_cast<const char *>(blob.data()) +
                            off,
                        len);
        off += len;
        r.counters.values[std::move(key)] = get64(blob, off);
    }
    return true;
}

SliceResult
runSlice(const PackReader &pack, size_t i, const SampleConfig &cfg)
{
    SliceResult res;
    if (i >= pack.count() || i == cfg.crashSliceForTest)
        return res;

    xs::Soc soc(cfg.coreCfg, 1, cfg.dramMb);
    if (cfg.warmupInsts > 0) {
        // Functional warmup: fast-forward on NEMU from the checkpoint,
        // then hand the advanced state to the detailed core. The
        // measurement point moves warmupInsts past the slice start.
        iss::System warm(cfg.dramMb);
        nemu::Nemu nemu(warm.bus, warm.dram, 0, 0);
        if (!pack.restoreInto(i, nemu.state(), warm.dram))
            return res;
        nemu.flushUopCache();
        nemu.setHaltFn([&] { return warm.simctrl.exited(); });
        nemu.run(cfg.warmupInsts);
        auto cp = checkpoint::serialize(nemu.state(), warm.dram);
        if (!checkpoint::restore(cp, soc.core(0).oracleState(),
                                 soc.system().dram))
            return res;
    } else {
        if (!pack.restoreInto(i, soc.core(0).oracleState(),
                              soc.system().dram))
            return res;
    }

    auto before = socSnapshot(soc);
    soc.runUntilInstrs(cfg.measureInsts, cfg.maxCycles);
    res.counters = socSnapshot(soc).delta(before);
    res.cycles = soc.core(0).perf().cycles;
    res.instrs = soc.core(0).perf().instrs;
    res.ok = true;
    return res;
}

namespace {

struct Inflight
{
    pid_t pid;
    int fd;
    size_t idx;
};

/** Child body: evaluate one slice, pipe the blob back, _exit. Never
 *  returns. The child inherits the parent's read-only pack mapping
 *  (or COW heap copy), so no checkpoint bytes are re-transferred. */
[[noreturn]] void
childMain(const PackReader &pack, size_t idx, const SampleConfig &cfg,
          int wfd)
{
#if defined(__GLIBC__)
    // Discard stdio bytes duplicated from the parent by fork(); the
    // parent flushes its own copy. This worker writes only to wfd.
    __fpurge(stdout);
    __fpurge(stdin);
#endif
    if (idx == cfg.crashSliceForTest)
        ::_exit(42); // simulated crash: die without reporting
    SliceResult r = runSlice(pack, idx, cfg);
    auto blob = encodeSlice(r);
    writeAll(wfd, blob.data(), blob.size());
    ::close(wfd);
    ::_exit(0);
}

/** Reap the oldest in-flight worker into its result slot. */
void
reapOne(std::deque<Inflight> &inflight, std::vector<SliceResult> &out)
{
    Inflight f = inflight.front();
    inflight.pop_front();
    std::vector<uint8_t> blob = readAll(f.fd);
    ::close(f.fd);
    int status = 0;
    ::waitpid(f.pid, &status, 0);
    bool cleanExit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    SliceResult r;
    if (!cleanExit || !decodeSlice(blob, r))
        r = SliceResult{}; // crashed / truncated pipe: failed slice
    out[f.idx] = std::move(r);
}

} // namespace

SampleReport
runSampled(const PackReader &pack, const SampleConfig &cfg)
{
    SampleReport rep;
    rep.weightDen = pack.weightDen();
    size_t n = pack.count();
    rep.slices.resize(n);

    Stopwatch sw;
    if (cfg.workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            rep.slices[i] = runSlice(pack, i, cfg);
    } else {
        std::deque<Inflight> inflight;
        size_t next = 0;
        while (next < n || !inflight.empty()) {
            if (next < n && inflight.size() < cfg.workers) {
                int fds[2];
                if (::pipe(fds) != 0) {
                    rep.slices[next] = runSlice(pack, next, cfg);
                    ++next;
                    continue;
                }
                pid_t pid = ::fork();
                if (pid == 0) {
                    ::close(fds[0]);
                    childMain(pack, next, cfg, fds[1]);
                }
                ::close(fds[1]);
                if (pid < 0) {
                    // Fork pressure: degrade to in-process, results
                    // stay identical (the slice itself is
                    // deterministic either way).
                    ::close(fds[0]);
                    rep.slices[next] = runSlice(pack, next, cfg);
                } else {
                    inflight.push_back({pid, fds[0], next});
                }
                ++next;
            } else {
                reapOne(inflight, rep.slices);
            }
        }
    }
    rep.wallSec = sw.elapsedSec();

    // Deterministic reduction: checkpoint order, exact integer
    // weights. Worker scheduling cannot reorder or change anything
    // below because results are indexed by slice.
    for (size_t i = 0; i < n; ++i) {
        const SliceResult &s = rep.slices[i];
        if (!s.ok) {
            ++rep.failures;
            continue;
        }
        uint64_t w = pack.weightNum(i);
        rep.weighted.mergeScaled(s.counters, w);
        rep.weightedCycles += w * s.cycles;
        rep.weightedInstrs += w * s.instrs;
    }
    rep.stack = obs::CpiStack::fromCounters(rep.weighted, "core0");
    return rep;
}

} // namespace minjie::sample
