/**
 * @file
 * The `.mjk` checkpoint pack: an on-disk, mmap-able store holding every
 * SimPoint checkpoint of one workload behind a single deduplicated page
 * pool.
 *
 * Serial evaluation kept each checkpoint as its own
 * `std::vector<uint8_t>`, so N slices of one program carried N copies
 * of the (mostly identical) memory image. The pack stores each distinct
 * page once — content-hashed across checkpoints, zero pages elided
 * entirely — and the reader maps the file read-only, so forked workers
 * share one physical copy of the pool through the page cache instead of
 * re-faulting private heap copies.
 *
 * Weights are stored as exact integers (numerator over a common
 * denominator, the SimPoint interval count): the reduction then runs in
 * pure uint64 arithmetic, which is what makes the weighted top-down
 * stack byte-identical across worker counts.
 *
 * Layout (all fields little-endian u64, offsets from file start):
 *
 *   header:    magic, version, nCheckpoints, weightDen,
 *              pagePoolOff, nPoolPages
 *   table:     nCheckpoints x {instCount, weightNum,
 *              archOff, pageEntryOff, nPageEntries}
 *   arch blobs and page-entry arrays ({baseAddr, poolIdx} pairs)
 *   page pool: 4096-aligned, nPoolPages x 4096 bytes, deduplicated
 */

#ifndef MINJIE_SAMPLE_STORE_H
#define MINJIE_SAMPLE_STORE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "iss/arch_state.h"
#include "mem/physmem.h"

namespace minjie::checkpoint {
struct GenResult;
}

namespace minjie::sample {

/** Builds a pack in memory; write it out once all checkpoints are in. */
class PackWriter
{
  public:
    /** @param weightDen common weight denominator (SimPoint interval
     *  count); every added checkpoint's weight is weightNum/weightDen. */
    explicit PackWriter(uint64_t weightDen) : weightDen_(weightDen) {}

    /**
     * Add one serialized checkpoint. The image is split at the
     * architectural-header boundary; each memory page is content-hashed
     * into the shared pool.
     * @return false if @p cp is malformed.
     */
    bool add(const checkpoint::Checkpoint &cp, uint64_t weightNum);

    /** Serialize the pack to bytes (deterministic for equal input). */
    std::vector<uint8_t> bytes() const;

    /** Write the pack to @p path (unbuffered POSIX I/O; fork-safe).
     *  @return false on any I/O error. */
    bool writeFile(const std::string &path) const;

    size_t checkpointCount() const { return table_.size(); }
    /** Distinct pages stored (after dedup + zero elision). */
    size_t poolPages() const { return pool_.size() / PAGE; }
    /** Page references across all checkpoints (before dedup). */
    size_t totalPageRefs() const { return totalRefs_; }

  private:
    static constexpr size_t PAGE = mem::PhysMem::PAGE_SIZE;

    struct Entry
    {
        uint64_t instCount;
        uint64_t weightNum;
        std::vector<uint8_t> arch;
        std::vector<std::pair<uint64_t, uint64_t>> pages; // base, idx
    };

    uint64_t poolIndexFor(const uint8_t *page);

    uint64_t weightDen_;
    std::vector<Entry> table_;
    std::vector<uint8_t> pool_;
    // lint:allow MJ-DET-003 lookup-only dedup buckets, never iterated
    std::unordered_map<uint64_t, std::vector<uint64_t>> hashToIdx_;
    size_t totalRefs_ = 0;
};

/** Read-only view of a pack: either an mmap of the file (shared
 *  copy-free across forked workers) or an owned byte buffer. */
class PackReader
{
  public:
    PackReader() = default;
    ~PackReader();
    PackReader(PackReader &&other) noexcept { *this = std::move(other); }
    PackReader &operator=(PackReader &&other) noexcept;
    PackReader(const PackReader &) = delete;
    PackReader &operator=(const PackReader &) = delete;

    /** mmap @p path read-only. @return false on I/O or format error. */
    bool openFile(const std::string &path);

    /** Adopt an in-memory pack (tests, or writer-to-engine handoff). */
    bool openMemory(std::vector<uint8_t> bytes);

    bool valid() const { return data_ != nullptr; }
    size_t count() const { return nCheckpoints_; }
    uint64_t weightDen() const { return weightDen_; }
    uint64_t weightNum(size_t i) const;
    uint64_t instCount(size_t i) const;
    /** weightNum/weightDen as a double (reporting only — the
     *  reduction itself never leaves integer arithmetic). */
    double weight(size_t i) const;

    /** Restore checkpoint @p i into @p state / @p mem. Clears @p mem
     *  first; elided zero pages read back as zero-fill. */
    bool restoreInto(size_t i, iss::ArchState &state,
                     mem::PhysMem &mem) const;

    size_t poolPages() const { return nPoolPages_; }
    size_t sizeBytes() const { return len_; }

  private:
    bool parse();
    void close();
    const uint8_t *tableEntry(size_t i) const;

    const uint8_t *data_ = nullptr;
    size_t len_ = 0;
    int fd_ = -1;               ///< >= 0 when mmap-backed
    std::vector<uint8_t> own_; ///< backing store for openMemory

    size_t nCheckpoints_ = 0;
    uint64_t weightDen_ = 0;
    uint64_t pagePoolOff_ = 0;
    uint64_t nPoolPages_ = 0;
};

/**
 * Pack a generator result, recovering SimPoint's exact integer weights
 * (clusterSize over intervalCount) from the fractional ones.
 * @return the serialized pack; empty when @p gen holds no checkpoints.
 */
std::vector<uint8_t> packFromGen(const checkpoint::GenResult &gen);

} // namespace minjie::sample

#endif // MINJIE_SAMPLE_STORE_H
