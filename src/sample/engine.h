/**
 * @file
 * Fork-fanout sampled-simulation engine (paper Section III-D3).
 *
 * Each SimPoint slice restores a checkpoint from the shared read-only
 * pack, optionally fast-forwards `warmupInsts` functionally on NEMU,
 * then measures a detailed window on the XIANGSHAN core. Slices are
 * independent, so the engine forks one worker per slice (at most
 * `workers` in flight, LightSSS-style COW fork) and pipes back the
 * window's CounterSnapshot; a crashing slice kills only its own
 * process and is reported as a failed slice, never as a lost run.
 *
 * Reduction is deterministic by construction: results are indexed by
 * slice and merged in checkpoint order with exact integer SimPoint
 * weights (weightNum over the pack's common denominator), so weighted
 * IPC and the weighted top-down stack are byte-identical for any
 * worker count — the same invariance contract the campaign engine
 * gives, extended to performance sampling.
 */

#ifndef MINJIE_SAMPLE_ENGINE_H
#define MINJIE_SAMPLE_ENGINE_H

#include <cstdint>
#include <vector>

#include "obs/counter.h"
#include "obs/topdown.h"
#include "sample/store.h"
#include "xiangshan/soc.h"

namespace minjie::sample {

struct SampleConfig
{
    /** Forked workers in flight; <= 1 runs slices in-process. */
    unsigned workers = 1;
    /** Functional-warmup instructions on NEMU before the detailed
     *  window (moves the measurement point past the checkpoint). */
    uint64_t warmupInsts = 0;
    /** Detailed-core measurement window, in committed instructions. */
    uint64_t measureInsts = 20'000;
    /** Per-slice detailed-cycle budget. */
    Cycle maxCycles = 20'000'000;
    /** Functional DRAM size for both warmup and detail. */
    uint64_t dramMb = 256;
    xs::CoreConfig coreCfg = xs::CoreConfig::nh();

    /** Test hook: the slice with this index dies without reporting
     *  (forked: child _exit(42); in-process: marked failed), so tests
     *  can pin crash isolation without a real crash. */
    size_t crashSliceForTest = SIZE_MAX;
};

/** One evaluated slice (measurement window only, warmup excluded). */
struct SliceResult
{
    bool ok = false;
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    /** Window delta of the full SoC tree ("core0.*", "mem.*"). */
    obs::CounterSnapshot counters;
};

struct SampleReport
{
    std::vector<SliceResult> slices;
    /** Sum of slice counters scaled by integer weight numerators. */
    obs::CounterSnapshot weighted;
    uint64_t weightDen = 0;
    uint64_t weightedCycles = 0; ///< sum weightNum[i] * cycles[i]
    uint64_t weightedInstrs = 0; ///< sum weightNum[i] * instrs[i]
    /** Top-down stack rebuilt from the weighted counters; the bucket
     *  exact-sum invariant survives the weighting (linearity). */
    obs::CpiStack stack;
    unsigned failures = 0;
    /** Parent wall-clock over all slices (reporting only). */
    double wallSec = 0;

    bool allOk() const { return failures == 0; }

    double
    weightedIpc() const
    {
        return weightedCycles
                   ? static_cast<double>(weightedInstrs) /
                         static_cast<double>(weightedCycles)
                   : 0.0;
    }

    double
    weightedCpi() const
    {
        return weightedInstrs
                   ? static_cast<double>(weightedCycles) /
                         static_cast<double>(weightedInstrs)
                   : 0.0;
    }
};

/** Evaluate slice @p i in the calling process. */
SliceResult runSlice(const PackReader &pack, size_t i,
                     const SampleConfig &cfg);

/** Evaluate every slice of @p pack and reduce. */
SampleReport runSampled(const PackReader &pack,
                        const SampleConfig &cfg);

/** Wire format of one slice result (pipe payload; exposed for
 *  tests). Encodes ok/cycles/instrs plus every counter key. */
std::vector<uint8_t> encodeSlice(const SliceResult &r);
bool decodeSlice(const std::vector<uint8_t> &blob, SliceResult &r);

} // namespace minjie::sample

#endif // MINJIE_SAMPLE_ENGINE_H
