/**
 * @file
 * RISC-V F/D instruction semantics.
 *
 * Every interpreter and the cycle model execute fp instructions through
 * fpExec(), selecting one of two backends:
 *  - FpBackend::Host — host FPU instructions (the NEMU approach,
 *    paper Section III-D1d);
 *  - FpBackend::Soft — the bit-level software float in softfloat.h (the
 *    Spike/SoftFloat approach the paper compares against).
 * Both produce identical bit patterns (RISC-V canonical NaNs), verified
 * by property tests, so DiffTest comparisons are backend-independent.
 */

#ifndef MINJIE_FP_OPS_H
#define MINJIE_FP_OPS_H

#include <cstdint>

#include "isa/op.h"

namespace minjie::fp {

enum class FpBackend : uint8_t { Host, Soft };

/** Result of one fp operation: a value plus accumulated fflags bits. */
struct FpOut
{
    uint64_t value = 0; ///< fp register pattern or integer result
    uint8_t flags = 0;  ///< FpFlags bits to OR into fflags
};

/**
 * Execute the fp instruction @p op.
 *
 * @param op   the decoded operation (must satisfy isa::isFp or be an
 *             int-to-fp move/convert)
 * @param a    rs1: raw f-register pattern, or integer operand for
 *             int-to-fp conversions / fmv.w.x
 * @param b    rs2 raw f-register pattern (when read)
 * @param c    rs3 raw f-register pattern (FMA family)
 * @param rm   rounding-mode field (dynamic resolved by the caller);
 *             honoured for conversions, RNE assumed for arithmetic
 * @param backend which execution backend to use
 */
FpOut fpExec(isa::Op op, uint64_t a, uint64_t b, uint64_t c, unsigned rm,
             FpBackend backend);

/**
 * Fast-path variant for the NEMU hot loop (paper Section III-D1d):
 * arithmetic runs on the raw host FPU with NO per-op exception-flag
 * capture; flags accumulate stickily in the host MXCSR and are
 * harvested lazily via harvestHostFpFlags() before any architectural
 * fflags access. Non-arithmetic ops (converts, compares, min/max)
 * still return their cheaply-computed flags in FpOut::flags.
 */
FpOut fpExecFast(isa::Op op, uint64_t a, uint64_t b, uint64_t c,
                 unsigned rm);

/** Collect (and clear) the host FPU's sticky exception flags as RISC-V
 *  fflags bits. Pairs with fpExecFast. */
uint8_t harvestHostFpFlags();

/** NaN-box a binary32 value into a 64-bit f-register pattern. */
constexpr uint64_t
boxF32(uint32_t v)
{
    return 0xffffffff00000000ull | v;
}

/** Unbox a binary32 from an f-register; unboxed inputs read as qNaN. */
constexpr uint32_t
unboxF32(uint64_t v)
{
    return (v >> 32) == 0xffffffffu ? static_cast<uint32_t>(v)
                                    : 0x7fc00000u;
}

} // namespace minjie::fp

#endif // MINJIE_FP_OPS_H
