#include "fp/ops.h"

#include <bit>
#include <cfenv>
#include <cmath>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

#include "common/log.h"
#include "fp/softfloat.h"

namespace minjie::fp {

namespace {

// Exception-flag capture. The NEMU speed story (paper Figure 8)
// depends on host fp ops being nearly free; glibc's fenv functions
// cost ~100 cycles each, so on x86 we read/write MXCSR directly
// (all our fp math compiles to SSE).
#if defined(__SSE2__)

inline void
clearFpExceptions()
{
    _mm_setcsr(_mm_getcsr() & ~0x3fu);
}

inline uint8_t
flagsFromHost()
{
    unsigned e = _mm_getcsr();
    uint8_t f = 0;
    if (e & 0x20) // PE: precision (inexact)
        f |= FLAG_NX;
    if (e & 0x10) // UE: underflow
        f |= FLAG_UF;
    if (e & 0x08) // OE: overflow
        f |= FLAG_OF;
    if (e & 0x04) // ZE: zero-divide
        f |= FLAG_DZ;
    if (e & 0x01) // IE: invalid
        f |= FLAG_NV;
    return f;
}

#else

inline void
clearFpExceptions()
{
    std::feclearexcept(FE_ALL_EXCEPT);
}

inline uint8_t
flagsFromHost()
{
    int e = std::fetestexcept(FE_ALL_EXCEPT);
    uint8_t f = 0;
    if (e & FE_INEXACT)
        f |= FLAG_NX;
    if (e & FE_UNDERFLOW)
        f |= FLAG_UF;
    if (e & FE_OVERFLOW)
        f |= FLAG_OF;
    if (e & FE_DIVBYZERO)
        f |= FLAG_DZ;
    if (e & FE_INVALID)
        f |= FLAG_NV;
    return f;
}

#endif

float
canon(float v)
{
    return std::isnan(v) ? std::bit_cast<float>(CANONICAL_NAN32) : v;
}

double
canon(double v)
{
    return std::isnan(v) ? std::bit_cast<double>(CANONICAL_NAN64) : v;
}

/** Run a host-FPU binary op under a clean fp environment. */
template <typename T, typename F>
uint64_t
hostBin(T a, T b, F fn, uint8_t &flags)
{
    clearFpExceptions();
    volatile T r = fn(a, b);
    flags |= flagsFromHost();
    if constexpr (sizeof(T) == 4)
        return boxF32(std::bit_cast<uint32_t>(canon(static_cast<T>(r))));
    else
        return std::bit_cast<uint64_t>(canon(static_cast<T>(r)));
}

template <typename T>
uint64_t
hostSqrt(T a, uint8_t &flags)
{
    clearFpExceptions();
    volatile T r = std::sqrt(a);
    flags |= flagsFromHost();
    if constexpr (sizeof(T) == 4)
        return boxF32(std::bit_cast<uint32_t>(canon(static_cast<T>(r))));
    else
        return std::bit_cast<uint64_t>(canon(static_cast<T>(r)));
}

template <typename T>
uint64_t
hostFma(T a, T b, T c, uint8_t &flags)
{
    clearFpExceptions();
    volatile T r = std::fma(a, b, c);
    flags |= flagsFromHost();
    if constexpr (sizeof(T) == 4)
        return boxF32(std::bit_cast<uint32_t>(canon(static_cast<T>(r))));
    else
        return std::bit_cast<uint64_t>(canon(static_cast<T>(r)));
}

template <typename T>
T
roundByRm(T v, unsigned rm)
{
    switch (rm) {
      case 0: return std::nearbyint(v); // RNE (default fenv mode)
      case 1: return std::trunc(v);     // RTZ
      case 2: return std::floor(v);     // RDN
      case 3: return std::ceil(v);      // RUP
      case 4: return std::round(v);     // RMM
      default: return std::nearbyint(v);
    }
}

/** Sign-extend 32-bit conversion results into rd as the ISA requires. */
template <typename I>
uint64_t
toRd(I v)
{
    if constexpr (sizeof(I) == 4)
        return static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(v)));
    else
        return static_cast<uint64_t>(v);
}

/**
 * Convert fp to integer with RISC-V saturating semantics.
 * @tparam I destination integer type
 */
template <typename I, typename T>
uint64_t
cvtF2I(T v, unsigned rm, uint8_t &flags)
{
    constexpr bool is_signed = static_cast<I>(-1) < 0;
    constexpr I maxv = is_signed
        ? static_cast<I>((~static_cast<uint64_t>(0)) >>
                         (65 - sizeof(I) * 8))
        : static_cast<I>(~static_cast<I>(0));
    constexpr I minv = is_signed
        ? static_cast<I>(static_cast<uint64_t>(1) << (sizeof(I) * 8 - 1))
        : 0;

    if (std::isnan(v)) {
        flags |= FLAG_NV;
        return toRd(maxv);
    }
    T r = roundByRm(v, rm);
    // Bounds: 2^(w-1) and 2^w are exactly representable in T.
    T upper = is_signed ? std::ldexp(T(1), sizeof(I) * 8 - 1)
                        : std::ldexp(T(1), sizeof(I) * 8);
    if (r >= upper) {
        flags |= FLAG_NV;
        return toRd(maxv);
    }
    if (is_signed ? (r < -upper) : (r < 0)) {
        flags |= FLAG_NV;
        return toRd(minv);
    }
    if (r != v)
        flags |= FLAG_NX;
    return toRd(static_cast<I>(r));
}

/** Convert integer to fp; detects inexactness via x87 extended compare. */
template <typename T, typename I>
uint64_t
cvtI2F(I v, uint8_t &flags)
{
    T r = static_cast<T>(v);
    if (static_cast<long double>(r) != static_cast<long double>(v))
        flags |= FLAG_NX;
    if constexpr (sizeof(T) == 4)
        return boxF32(std::bit_cast<uint32_t>(r));
    else
        return std::bit_cast<uint64_t>(r);
}

template <typename T>
bool
isSnanV(T v)
{
    if (!std::isnan(v))
        return false;
    if constexpr (sizeof(T) == 4)
        return !(std::bit_cast<uint32_t>(v) & 0x00400000u);
    else
        return !(std::bit_cast<uint64_t>(v) & 0x0008000000000000ull);
}

/** RISC-V fmin/fmax: NaN-aware, -0 considered less than +0. */
template <typename T>
uint64_t
minMax(T a, T b, bool is_max, uint8_t &flags)
{
    if (isSnanV(a) || isSnanV(b))
        flags |= FLAG_NV;
    T r;
    if (std::isnan(a) && std::isnan(b)) {
        r = canon(a);
    } else if (std::isnan(a)) {
        r = b;
    } else if (std::isnan(b)) {
        r = a;
    } else if (a == b) {
        // Distinguish -0 and +0.
        bool sa = std::signbit(a), sb = std::signbit(b);
        r = is_max ? (sa ? b : a) : (sa ? a : b);
        (void)sb;
    } else {
        r = is_max ? (a > b ? a : b) : (a < b ? a : b);
    }
    if constexpr (sizeof(T) == 4)
        return boxF32(std::bit_cast<uint32_t>(r));
    else
        return std::bit_cast<uint64_t>(r);
}

template <typename T>
uint64_t
cmp(T a, T b, int kind, uint8_t &flags)
{
    // kind: 0=feq (quiet), 1=flt, 2=fle (signaling).
    if (std::isnan(a) || std::isnan(b)) {
        if (kind != 0 || isSnanV(a) || isSnanV(b))
            flags |= FLAG_NV;
        return 0;
    }
    switch (kind) {
      case 0: return a == b;
      case 1: return a < b;
      default: return a <= b;
    }
}

template <typename T>
uint64_t
fclass(T v)
{
    bool neg = std::signbit(v);
    if (std::isinf(v))
        return neg ? 1u << 0 : 1u << 7;
    if (std::isnan(v))
        return isSnanV(v) ? 1u << 8 : 1u << 9;
    if (v == T(0))
        return neg ? 1u << 3 : 1u << 4;
    if (std::fpclassify(v) == FP_SUBNORMAL)
        return neg ? 1u << 2 : 1u << 5;
    return neg ? 1u << 1 : 1u << 6;
}

float asF(uint64_t v) { return std::bit_cast<float>(unboxF32(v)); }
double asD(uint64_t v) { return std::bit_cast<double>(v); }

/** Raw host arithmetic: no flag capture (see fpExecFast). */
template <typename T, typename F>
uint64_t
rawBin(T a, T b, F fn)
{
    T r = fn(a, b);
    if constexpr (sizeof(T) == 4)
        return boxF32(std::bit_cast<uint32_t>(canon(r)));
    else
        return std::bit_cast<uint64_t>(canon(r));
}

uint64_t
sgnj32(uint64_t a, uint64_t b, int mode)
{
    uint32_t ua = unboxF32(a), ub = unboxF32(b);
    uint32_t sign;
    switch (mode) {
      case 0: sign = ub & 0x80000000u; break;
      case 1: sign = ~ub & 0x80000000u; break;
      default: sign = (ua ^ ub) & 0x80000000u; break;
    }
    return boxF32((ua & 0x7fffffffu) | sign);
}

uint64_t
sgnj64(uint64_t a, uint64_t b, int mode)
{
    constexpr uint64_t S = 0x8000000000000000ull;
    uint64_t sign;
    switch (mode) {
      case 0: sign = b & S; break;
      case 1: sign = ~b & S; break;
      default: sign = (a ^ b) & S; break;
    }
    return (a & ~S) | sign;
}

} // namespace

FpOut
fpExec(isa::Op op, uint64_t a, uint64_t b, uint64_t c, unsigned rm,
       FpBackend be)
{
    using isa::Op;
    FpOut out;
    uint8_t &f = out.flags;
    bool soft = be == FpBackend::Soft;

    switch (op) {
      // --- binary32 arithmetic ---
      case Op::FaddS:
        out.value = soft ? boxF32(softAdd32(unboxF32(a), unboxF32(b), f))
                         : hostBin<float>(asF(a), asF(b),
                                          [](float x, float y) { return x + y; }, f);
        break;
      case Op::FsubS:
        out.value = soft ? boxF32(softSub32(unboxF32(a), unboxF32(b), f))
                         : hostBin<float>(asF(a), asF(b),
                                          [](float x, float y) { return x - y; }, f);
        break;
      case Op::FmulS:
        out.value = soft ? boxF32(softMul32(unboxF32(a), unboxF32(b), f))
                         : hostBin<float>(asF(a), asF(b),
                                          [](float x, float y) { return x * y; }, f);
        break;
      case Op::FdivS:
        out.value = soft ? boxF32(softDiv32(unboxF32(a), unboxF32(b), f))
                         : hostBin<float>(asF(a), asF(b),
                                          [](float x, float y) { return x / y; }, f);
        break;
      case Op::FsqrtS:
        out.value = soft ? boxF32(softSqrt32(unboxF32(a), f))
                         : hostSqrt<float>(asF(a), f);
        break;

      // --- binary64 arithmetic ---
      case Op::FaddD:
        out.value = soft ? softAdd64(a, b, f)
                         : hostBin<double>(asD(a), asD(b),
                                           [](double x, double y) { return x + y; }, f);
        break;
      case Op::FsubD:
        out.value = soft ? softSub64(a, b, f)
                         : hostBin<double>(asD(a), asD(b),
                                           [](double x, double y) { return x - y; }, f);
        break;
      case Op::FmulD:
        out.value = soft ? softMul64(a, b, f)
                         : hostBin<double>(asD(a), asD(b),
                                           [](double x, double y) { return x * y; }, f);
        break;
      case Op::FdivD:
        out.value = soft ? softDiv64(a, b, f)
                         : hostBin<double>(asD(a), asD(b),
                                           [](double x, double y) { return x / y; }, f);
        break;
      case Op::FsqrtD:
        out.value = soft ? softSqrt64(a, f) : hostSqrt<double>(asD(a), f);
        break;

      // --- FMA family (host fma for both backends; the paper's NEMU
      // likewise calls the math library's fma()) ---
      case Op::FmaddS:
        out.value = hostFma<float>(asF(a), asF(b), asF(c), f);
        break;
      case Op::FmsubS:
        out.value = hostFma<float>(asF(a), asF(b), -asF(c), f);
        break;
      case Op::FnmsubS:
        out.value = hostFma<float>(-asF(a), asF(b), asF(c), f);
        break;
      case Op::FnmaddS:
        out.value = hostFma<float>(-asF(a), asF(b), -asF(c), f);
        break;
      case Op::FmaddD:
        out.value = hostFma<double>(asD(a), asD(b), asD(c), f);
        break;
      case Op::FmsubD:
        out.value = hostFma<double>(asD(a), asD(b), -asD(c), f);
        break;
      case Op::FnmsubD:
        out.value = hostFma<double>(-asD(a), asD(b), asD(c), f);
        break;
      case Op::FnmaddD:
        out.value = hostFma<double>(-asD(a), asD(b), -asD(c), f);
        break;

      // --- sign injection ---
      case Op::FsgnjS: out.value = sgnj32(a, b, 0); break;
      case Op::FsgnjnS: out.value = sgnj32(a, b, 1); break;
      case Op::FsgnjxS: out.value = sgnj32(a, b, 2); break;
      case Op::FsgnjD: out.value = sgnj64(a, b, 0); break;
      case Op::FsgnjnD: out.value = sgnj64(a, b, 1); break;
      case Op::FsgnjxD: out.value = sgnj64(a, b, 2); break;

      // --- min/max ---
      case Op::FminS: out.value = minMax<float>(asF(a), asF(b), false, f); break;
      case Op::FmaxS: out.value = minMax<float>(asF(a), asF(b), true, f); break;
      case Op::FminD: out.value = minMax<double>(asD(a), asD(b), false, f); break;
      case Op::FmaxD: out.value = minMax<double>(asD(a), asD(b), true, f); break;

      // --- comparisons ---
      case Op::FeqS: out.value = cmp<float>(asF(a), asF(b), 0, f); break;
      case Op::FltS: out.value = cmp<float>(asF(a), asF(b), 1, f); break;
      case Op::FleS: out.value = cmp<float>(asF(a), asF(b), 2, f); break;
      case Op::FeqD: out.value = cmp<double>(asD(a), asD(b), 0, f); break;
      case Op::FltD: out.value = cmp<double>(asD(a), asD(b), 1, f); break;
      case Op::FleD: out.value = cmp<double>(asD(a), asD(b), 2, f); break;

      // --- classification ---
      case Op::FclassS: out.value = fclass<float>(asF(a)); break;
      case Op::FclassD: out.value = fclass<double>(asD(a)); break;

      // --- fp -> int conversions ---
      case Op::FcvtWS: out.value = cvtF2I<int32_t>(asF(a), rm, f); break;
      case Op::FcvtWuS: out.value = cvtF2I<uint32_t>(asF(a), rm, f); break;
      case Op::FcvtLS: out.value = cvtF2I<int64_t>(asF(a), rm, f); break;
      case Op::FcvtLuS: out.value = cvtF2I<uint64_t>(asF(a), rm, f); break;
      case Op::FcvtWD: out.value = cvtF2I<int32_t>(asD(a), rm, f); break;
      case Op::FcvtWuD: out.value = cvtF2I<uint32_t>(asD(a), rm, f); break;
      case Op::FcvtLD: out.value = cvtF2I<int64_t>(asD(a), rm, f); break;
      case Op::FcvtLuD: out.value = cvtF2I<uint64_t>(asD(a), rm, f); break;

      // --- int -> fp conversions (operand in a as raw integer) ---
      case Op::FcvtSW:
        out.value = cvtI2F<float>(static_cast<int32_t>(a), f);
        break;
      case Op::FcvtSWu:
        out.value = cvtI2F<float>(static_cast<uint32_t>(a), f);
        break;
      case Op::FcvtSL:
        out.value = cvtI2F<float>(static_cast<int64_t>(a), f);
        break;
      case Op::FcvtSLu:
        out.value = cvtI2F<float>(a, f);
        break;
      case Op::FcvtDW:
        out.value = cvtI2F<double>(static_cast<int32_t>(a), f);
        break;
      case Op::FcvtDWu:
        out.value = cvtI2F<double>(static_cast<uint32_t>(a), f);
        break;
      case Op::FcvtDL:
        out.value = cvtI2F<double>(static_cast<int64_t>(a), f);
        break;
      case Op::FcvtDLu:
        out.value = cvtI2F<double>(a, f);
        break;

      // --- fp <-> fp conversions ---
      case Op::FcvtSD: {
        clearFpExceptions();
        volatile float r = static_cast<float>(asD(a));
        f |= flagsFromHost();
        if (isSnanV(asD(a)))
            f |= FLAG_NV;
        out.value = boxF32(std::bit_cast<uint32_t>(
            canon(static_cast<float>(r))));
        break;
      }
      case Op::FcvtDS: {
        float v = asF(a);
        if (isSnanV(v))
            f |= FLAG_NV;
        out.value = std::bit_cast<uint64_t>(
            canon(static_cast<double>(v)));
        break;
      }

      // --- moves ---
      case Op::FmvXW:
        out.value = static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(a)));
        break;
      case Op::FmvWX:
        out.value = boxF32(static_cast<uint32_t>(a));
        break;
      case Op::FmvXD:
        out.value = a;
        break;
      case Op::FmvDX:
        out.value = a;
        break;

      default:
        panic("fpExec: not an fp op: %s", isa::opName(op));
    }
    return out;
}

uint8_t
harvestHostFpFlags()
{
    uint8_t f = flagsFromHost();
    clearFpExceptions();
    return f;
}

FpOut
fpExecFast(isa::Op op, uint64_t a, uint64_t b, uint64_t c, unsigned rm)
{
    using isa::Op;
    FpOut out;
    switch (op) {
      case Op::FaddS:
        out.value = rawBin<float>(asF(a), asF(b),
                                  [](float x, float y) { return x + y; });
        return out;
      case Op::FsubS:
        out.value = rawBin<float>(asF(a), asF(b),
                                  [](float x, float y) { return x - y; });
        return out;
      case Op::FmulS:
        out.value = rawBin<float>(asF(a), asF(b),
                                  [](float x, float y) { return x * y; });
        return out;
      case Op::FdivS:
        out.value = rawBin<float>(asF(a), asF(b),
                                  [](float x, float y) { return x / y; });
        return out;
      case Op::FsqrtS:
        out.value = boxF32(std::bit_cast<uint32_t>(
            canon(std::sqrt(asF(a)))));
        return out;
      case Op::FaddD:
        out.value = rawBin<double>(asD(a), asD(b),
                                   [](double x, double y) { return x + y; });
        return out;
      case Op::FsubD:
        out.value = rawBin<double>(asD(a), asD(b),
                                   [](double x, double y) { return x - y; });
        return out;
      case Op::FmulD:
        out.value = rawBin<double>(asD(a), asD(b),
                                   [](double x, double y) { return x * y; });
        return out;
      case Op::FdivD:
        out.value = rawBin<double>(asD(a), asD(b),
                                   [](double x, double y) { return x / y; });
        return out;
      case Op::FsqrtD:
        out.value =
            std::bit_cast<uint64_t>(canon(std::sqrt(asD(a))));
        return out;
      case Op::FmaddS:
        out.value = boxF32(std::bit_cast<uint32_t>(
            canon(std::fma(asF(a), asF(b), asF(c)))));
        return out;
      case Op::FmsubS:
        out.value = boxF32(std::bit_cast<uint32_t>(
            canon(std::fma(asF(a), asF(b), -asF(c)))));
        return out;
      case Op::FnmsubS:
        out.value = boxF32(std::bit_cast<uint32_t>(
            canon(std::fma(-asF(a), asF(b), asF(c)))));
        return out;
      case Op::FnmaddS:
        out.value = boxF32(std::bit_cast<uint32_t>(
            canon(std::fma(-asF(a), asF(b), -asF(c)))));
        return out;
      case Op::FmaddD:
        out.value = std::bit_cast<uint64_t>(
            canon(std::fma(asD(a), asD(b), asD(c))));
        return out;
      case Op::FmsubD:
        out.value = std::bit_cast<uint64_t>(
            canon(std::fma(asD(a), asD(b), -asD(c))));
        return out;
      case Op::FnmsubD:
        out.value = std::bit_cast<uint64_t>(
            canon(std::fma(-asD(a), asD(b), asD(c))));
        return out;
      case Op::FnmaddD:
        out.value = std::bit_cast<uint64_t>(
            canon(std::fma(-asD(a), asD(b), -asD(c))));
        return out;
      default:
        // Converts, compares, moves, min/max: the flag computation is
        // already cheap and manual; reuse the flagged path.
        return fpExec(op, a, b, c, rm, FpBackend::Host);
    }
}

} // namespace minjie::fp
