/**
 * @file
 * Bit-level IEEE-754 software floating point (binary32/binary64).
 *
 * This is the slow path used by the Spike-proxy interpreter; the paper
 * attributes much of NEMU's SPECfp speedup to replacing a SoftFloat
 * library with host floating-point instructions, so we keep a genuine
 * software implementation here rather than a stub. Round-to-nearest-even
 * only; results are verified bit-exact against the host FPU by property
 * tests (tests/fp).
 */

#ifndef MINJIE_FP_SOFTFLOAT_H
#define MINJIE_FP_SOFTFLOAT_H

#include <cstdint>

namespace minjie::fp {

/** RISC-V fflags bits. */
enum FpFlags : uint8_t {
    FLAG_NX = 0x01, ///< inexact
    FLAG_UF = 0x02, ///< underflow
    FLAG_OF = 0x04, ///< overflow
    FLAG_DZ = 0x08, ///< divide by zero
    FLAG_NV = 0x10, ///< invalid
};

/** Canonical (quiet) NaN patterns mandated by RISC-V for NaN results. */
constexpr uint32_t CANONICAL_NAN32 = 0x7fc00000u;
constexpr uint64_t CANONICAL_NAN64 = 0x7ff8000000000000ull;

// binary32 operations on raw bit patterns; @p flags accumulates fflags.
uint32_t softAdd32(uint32_t a, uint32_t b, uint8_t &flags);
uint32_t softSub32(uint32_t a, uint32_t b, uint8_t &flags);
uint32_t softMul32(uint32_t a, uint32_t b, uint8_t &flags);
uint32_t softDiv32(uint32_t a, uint32_t b, uint8_t &flags);
uint32_t softSqrt32(uint32_t a, uint8_t &flags);

// binary64 operations.
uint64_t softAdd64(uint64_t a, uint64_t b, uint8_t &flags);
uint64_t softSub64(uint64_t a, uint64_t b, uint8_t &flags);
uint64_t softMul64(uint64_t a, uint64_t b, uint8_t &flags);
uint64_t softDiv64(uint64_t a, uint64_t b, uint8_t &flags);
uint64_t softSqrt64(uint64_t a, uint8_t &flags);

} // namespace minjie::fp

#endif // MINJIE_FP_SOFTFLOAT_H
