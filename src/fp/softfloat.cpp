#include "fp/softfloat.h"

#include <utility>

namespace minjie::fp {

namespace {

/**
 * Generic IEEE-754 binary-format core, round-to-nearest-even.
 *
 * Internal representation inside an operation: a significand @c sig with
 * the hidden bit at position FB+3 (three guard/round/sticky bits below
 * the ulp), plus a biased exponent that may temporarily leave the legal
 * range; roundPack() normalizes, rounds, and handles overflow/underflow.
 *
 * @tparam UI storage integer for the format (uint32_t / uint64_t)
 * @tparam UW wide integer able to hold a full product (uint64_t / u128)
 * @tparam EB exponent field width
 * @tparam FB fraction field width
 */
template <typename UI, typename UW, int EB, int FB>
struct SF
{
    static constexpr int BIAS = (1 << (EB - 1)) - 1;
    static constexpr int EXP_MAX = (1 << EB) - 1;
    static constexpr UI FRAC_MASK = (UI(1) << FB) - 1;
    static constexpr UI HIDDEN = UI(1) << FB;
    static constexpr UI QNAN =
        (UI(EXP_MAX) << FB) | (UI(1) << (FB - 1));

    static bool sign(UI a) { return (a >> (EB + FB)) & 1; }
    static int expf(UI a) { return static_cast<int>((a >> FB) & EXP_MAX); }
    static UI frac(UI a) { return a & FRAC_MASK; }
    static bool isNan(UI a) { return expf(a) == EXP_MAX && frac(a) != 0; }
    static bool
    isSnan(UI a)
    {
        return isNan(a) && !((a >> (FB - 1)) & 1);
    }
    static bool isInf(UI a) { return expf(a) == EXP_MAX && frac(a) == 0; }
    static bool isZero(UI a) { return (a << 1) == 0; }

    static UI
    pack(bool s, int e, UI f)
    {
        return (UI(s) << (EB + FB)) | (UI(e) << FB) | f;
    }
    static UI inf(bool s) { return pack(s, EXP_MAX, 0); }

    static int
    msbIndex(UW v)
    {
        int i = -1;
        while (v) {
            v >>= 1;
            ++i;
        }
        return i;
    }

    static UW
    shiftRightSticky(UW v, int n)
    {
        if (n <= 0)
            return v << (-n);
        if (n >= static_cast<int>(sizeof(UW) * 8))
            return v ? 1 : 0;
        UW out = v >> n;
        if (v & ((UW(1) << n) - 1))
            out |= 1;
        return out;
    }

    /** Drop the 3 GRS bits with round-to-nearest-even. */
    static UW
    rne3(UW sig)
    {
        UW r = sig >> 3;
        unsigned low = static_cast<unsigned>(sig & 7);
        if (low > 4 || (low == 4 && (r & 1)))
            ++r;
        return r;
    }

    /**
     * Normalize, round and pack (sign, exp, sig) where the value is
     * sig * 2^(exp - BIAS - FB - 3). @p sig may be unnormalized.
     */
    static UI
    roundPack(bool s, int exp, UW sig, uint8_t &flags)
    {
        if (sig == 0)
            return pack(s, 0, 0);

        // Normalize hidden bit to position FB+3.
        int msb = msbIndex(sig);
        if (msb < FB + 3) {
            sig <<= (FB + 3 - msb);
            exp -= (FB + 3 - msb);
        } else if (msb > FB + 3) {
            sig = shiftRightSticky(sig, msb - (FB + 3));
            exp += msb - (FB + 3);
        }

        if (exp >= EXP_MAX) {
            flags |= FLAG_OF | FLAG_NX;
            return inf(s);
        }

        if (exp <= 0) {
            // Tininess detected after rounding with unbounded exponent,
            // matching the x86 FPU so the host path agrees bit-for-bit.
            UW unb = rne3(sig);
            bool tiny = exp + msbIndex(unb) < FB + 1;
            int shift = 1 - exp;
            if (shift > FB + 4)
                shift = FB + 4;
            sig = shiftRightSticky(sig, shift);
            bool inexact = (sig & 7) != 0;
            UW rounded = rne3(sig);
            if (inexact) {
                flags |= FLAG_NX;
                if (tiny)
                    flags |= FLAG_UF;
            }
            if (rounded >> FB)
                return pack(s, 1, static_cast<UI>(rounded) & FRAC_MASK);
            return pack(s, 0, static_cast<UI>(rounded));
        }

        bool inexact = (sig & 7) != 0;
        UW rounded = rne3(sig);
        if (inexact)
            flags |= FLAG_NX;
        if (rounded >> (FB + 1)) {
            rounded >>= 1;
            ++exp;
            if (exp >= EXP_MAX) {
                flags |= FLAG_OF | FLAG_NX;
                return inf(s);
            }
        }
        return pack(s, exp, static_cast<UI>(rounded) & FRAC_MASK);
    }

    static UI
    propagateNan(UI a, UI b, uint8_t &flags)
    {
        if (isSnan(a) || isSnan(b))
            flags |= FLAG_NV;
        return QNAN;
    }

    static UI
    add(UI a, UI b, uint8_t &flags)
    {
        if (isNan(a) || isNan(b))
            return propagateNan(a, b, flags);
        if (isInf(a) || isInf(b)) {
            if (isInf(a) && isInf(b) && sign(a) != sign(b)) {
                flags |= FLAG_NV;
                return QNAN;
            }
            return isInf(a) ? a : b;
        }
        if (isZero(a) && isZero(b)) {
            // (+0)+(+0)=+0, (-0)+(-0)=-0, mixed = +0 under RNE.
            return (sign(a) && sign(b)) ? pack(true, 0, 0) : pack(false, 0, 0);
        }

        bool sa = sign(a), sb = sign(b);
        int ea = expf(a) ? expf(a) : 1;
        int eb = expf(b) ? expf(b) : 1;
        UW siga = (UW(frac(a)) | (expf(a) ? UW(HIDDEN) : 0)) << 3;
        UW sigb = (UW(frac(b)) | (expf(b) ? UW(HIDDEN) : 0)) << 3;

        // Order so |a| >= |b|.
        if (ea < eb || (ea == eb && siga < sigb)) {
            std::swap(ea, eb);
            std::swap(siga, sigb);
            std::swap(sa, sb);
        }
        sigb = shiftRightSticky(sigb, ea - eb);

        if (sa == sb)
            return roundPack(sa, ea, siga + sigb, flags);
        UW diff = siga - sigb;
        if (diff == 0)
            return pack(false, 0, 0);
        return roundPack(sa, ea, diff, flags);
    }

    static UI
    sub(UI a, UI b, uint8_t &flags)
    {
        if (isNan(a) || isNan(b))
            return propagateNan(a, b, flags);
        return add(a, b ^ (UI(1) << (EB + FB)), flags);
    }

    static UI
    mul(UI a, UI b, uint8_t &flags)
    {
        if (isNan(a) || isNan(b))
            return propagateNan(a, b, flags);
        bool s = sign(a) ^ sign(b);
        if (isInf(a) || isInf(b)) {
            if (isZero(a) || isZero(b)) {
                flags |= FLAG_NV;
                return QNAN;
            }
            return inf(s);
        }
        if (isZero(a) || isZero(b))
            return pack(s, 0, 0);

        int ea = expf(a) ? expf(a) : 1;
        int eb = expf(b) ? expf(b) : 1;
        UW siga = UW(frac(a)) | (expf(a) ? UW(HIDDEN) : 0);
        UW sigb = UW(frac(b)) | (expf(b) ? UW(HIDDEN) : 0);
        while (!(siga >> FB)) {
            siga <<= 1;
            --ea;
        }
        while (!(sigb >> FB)) {
            sigb <<= 1;
            --eb;
        }
        UW product = siga * sigb;
        UW sig = shiftRightSticky(product, FB - 3);
        return roundPack(s, ea + eb - BIAS, sig, flags);
    }

    static UI
    div(UI a, UI b, uint8_t &flags)
    {
        if (isNan(a) || isNan(b))
            return propagateNan(a, b, flags);
        bool s = sign(a) ^ sign(b);
        if (isInf(a)) {
            if (isInf(b)) {
                flags |= FLAG_NV;
                return QNAN;
            }
            return inf(s);
        }
        if (isInf(b))
            return pack(s, 0, 0);
        if (isZero(b)) {
            if (isZero(a)) {
                flags |= FLAG_NV;
                return QNAN;
            }
            flags |= FLAG_DZ;
            return inf(s);
        }
        if (isZero(a))
            return pack(s, 0, 0);

        int ea = expf(a) ? expf(a) : 1;
        int eb = expf(b) ? expf(b) : 1;
        UW siga = UW(frac(a)) | (expf(a) ? UW(HIDDEN) : 0);
        UW sigb = UW(frac(b)) | (expf(b) ? UW(HIDDEN) : 0);
        while (!(siga >> FB)) {
            siga <<= 1;
            --ea;
        }
        while (!(sigb >> FB)) {
            sigb <<= 1;
            --eb;
        }
        UW num = siga << (FB + 4);
        UW q = num / sigb;
        if (num % sigb)
            q |= 1;
        return roundPack(s, ea - eb + BIAS - 1, q, flags);
    }

    static UI
    sqrt(UI a, uint8_t &flags)
    {
        if (isNan(a)) {
            if (isSnan(a))
                flags |= FLAG_NV;
            return QNAN;
        }
        if (isZero(a))
            return a; // +-0
        if (sign(a)) {
            flags |= FLAG_NV;
            return QNAN;
        }
        if (isInf(a))
            return a;

        int ea = expf(a) ? expf(a) : 1;
        UW sig = UW(frac(a)) | (expf(a) ? UW(HIDDEN) : 0);
        while (!(sig >> FB)) {
            sig <<= 1;
            --ea;
        }
        int e = ea - BIAS;                 // unbiased exponent
        int k = (e >= 0) ? e / 2 : (e - 1) / 2; // floor(e/2)
        // radicand = sig * 2^(e - FB), expressed as m * 2^(2k) with
        // m in [1,4); integer R = m << (2*(FB+3)).
        UW r = sig << (FB + 6 + (e - 2 * k));

        // Bitwise integer square root of R.
        UW res = 0, bitpos = UW(1) << ((msbIndex(r) / 2) * 2);
        UW rem = r;
        while (bitpos) {
            if (rem >= res + bitpos) {
                rem -= res + bitpos;
                res = (res >> 1) + bitpos;
            } else {
                res >>= 1;
            }
            bitpos >>= 2;
        }
        if (rem)
            res |= 1; // sticky; sqrt can never be an exact tie
        return roundPack(false, k + BIAS, res, flags);
    }
};

using F32 = SF<uint32_t, uint64_t, 8, 23>;
using F64 = SF<uint64_t, unsigned __int128, 11, 52>;

} // namespace

uint32_t softAdd32(uint32_t a, uint32_t b, uint8_t &f) { return F32::add(a, b, f); }
uint32_t softSub32(uint32_t a, uint32_t b, uint8_t &f) { return F32::sub(a, b, f); }
uint32_t softMul32(uint32_t a, uint32_t b, uint8_t &f) { return F32::mul(a, b, f); }
uint32_t softDiv32(uint32_t a, uint32_t b, uint8_t &f) { return F32::div(a, b, f); }
uint32_t softSqrt32(uint32_t a, uint8_t &f) { return F32::sqrt(a, f); }

uint64_t softAdd64(uint64_t a, uint64_t b, uint8_t &f) { return F64::add(a, b, f); }
uint64_t softSub64(uint64_t a, uint64_t b, uint8_t &f) { return F64::sub(a, b, f); }
uint64_t softMul64(uint64_t a, uint64_t b, uint8_t &f) { return F64::mul(a, b, f); }
uint64_t softDiv64(uint64_t a, uint64_t b, uint8_t &f) { return F64::div(a, b, f); }
uint64_t softSqrt64(uint64_t a, uint8_t &f) { return F64::sqrt(a, f); }

} // namespace minjie::fp
