/**
 * @file
 * Tiny disassembler for trace output and ArchDB records.
 */

#ifndef MINJIE_ISA_DISASM_H
#define MINJIE_ISA_DISASM_H

#include <string>

#include "isa/inst.h"

namespace minjie::isa {

/** Render @p di as "mnemonic rd, rs1, rs2/imm". */
std::string disasm(const DecodedInst &di);

/** Canonical RISC-V ABI name for integer register @p reg. */
const char *regName(unsigned reg);

/** ABI name for fp register @p reg. */
const char *fregName(unsigned reg);

} // namespace minjie::isa

#endif // MINJIE_ISA_DISASM_H
