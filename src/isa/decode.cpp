#include "isa/decode.h"

#include "common/bitutil.h"

namespace minjie::isa {

namespace {

// Immediate extractors for the base 32-bit formats.
int64_t immI(uint32_t i) { return sext(bits(i, 31, 20), 12); }
int64_t
immS(uint32_t i)
{
    return sext((bits(i, 31, 25) << 5) | bits(i, 11, 7), 12);
}
int64_t
immB(uint32_t i)
{
    uint64_t v = (bit(i, 31) << 12) | (bit(i, 7) << 11) |
                 (bits(i, 30, 25) << 5) | (bits(i, 11, 8) << 1);
    return sext(v, 13);
}
int64_t immU(uint32_t i) { return sext(bits(i, 31, 12) << 12, 32); }
int64_t
immJ(uint32_t i)
{
    uint64_t v = (bit(i, 31) << 20) | (bits(i, 19, 12) << 12) |
                 (bit(i, 20) << 11) | (bits(i, 30, 21) << 1);
    return sext(v, 21);
}

DecodedInst
make(uint32_t raw, Op op, unsigned rd, unsigned rs1, unsigned rs2,
     int64_t imm, uint8_t size = 4)
{
    DecodedInst di;
    di.raw = raw;
    di.op = op;
    di.rd = static_cast<uint8_t>(rd);
    di.rs1 = static_cast<uint8_t>(rs1);
    di.rs2 = static_cast<uint8_t>(rs2);
    di.imm = imm;
    di.size = size;
    return di;
}

DecodedInst
illegal(uint32_t raw, uint8_t size = 4)
{
    DecodedInst di;
    di.raw = raw;
    di.size = size;
    return di;
}

Op
decodeOpImm(uint32_t i, unsigned f3)
{
    unsigned f6 = static_cast<unsigned>(bits(i, 31, 26));
    unsigned f7 = static_cast<unsigned>(bits(i, 31, 25));
    unsigned shtype = static_cast<unsigned>(bits(i, 24, 20));
    switch (f3) {
      case 0: return Op::Addi;
      case 1:
        if (f6 == 0x00)
            return Op::Slli;
        if (f7 == 0x30) {
            switch (shtype) {
              case 0: return Op::Clz;
              case 1: return Op::Ctz;
              case 2: return Op::Cpop;
              case 4: return Op::SextB;
              case 5: return Op::SextH;
            }
        }
        return Op::Illegal;
      case 2: return Op::Slti;
      case 3: return Op::Sltiu;
      case 4: return Op::Xori;
      case 5:
        if (f6 == 0x00)
            return Op::Srli;
        if (f6 == 0x10)
            return Op::Srai;
        if (f6 == 0x18)
            return Op::Rori;
        if (bits(i, 31, 20) == 0x287)
            return Op::OrcB;
        if (bits(i, 31, 20) == 0x6b8)
            return Op::Rev8;
        return Op::Illegal;
      case 6: return Op::Ori;
      case 7: return Op::Andi;
    }
    return Op::Illegal;
}

Op
decodeOp(unsigned f7, unsigned f3)
{
    switch (f7) {
      case 0x00:
        switch (f3) {
          case 0: return Op::Add;
          case 1: return Op::Sll;
          case 2: return Op::Slt;
          case 3: return Op::Sltu;
          case 4: return Op::Xor;
          case 5: return Op::Srl;
          case 6: return Op::Or;
          case 7: return Op::And;
        }
        break;
      case 0x20:
        switch (f3) {
          case 0: return Op::Sub;
          case 4: return Op::Xnor;
          case 5: return Op::Sra;
          case 6: return Op::Orn;
          case 7: return Op::Andn;
        }
        break;
      case 0x01:
        switch (f3) {
          case 0: return Op::Mul;
          case 1: return Op::Mulh;
          case 2: return Op::Mulhsu;
          case 3: return Op::Mulhu;
          case 4: return Op::Div;
          case 5: return Op::Divu;
          case 6: return Op::Rem;
          case 7: return Op::Remu;
        }
        break;
      case 0x10:
        switch (f3) {
          case 2: return Op::Sh1add;
          case 4: return Op::Sh2add;
          case 6: return Op::Sh3add;
        }
        break;
      case 0x05:
        switch (f3) {
          case 4: return Op::Min;
          case 5: return Op::Minu;
          case 6: return Op::Max;
          case 7: return Op::Maxu;
        }
        break;
      case 0x30:
        switch (f3) {
          case 1: return Op::Rol;
          case 5: return Op::Ror;
        }
        break;
    }
    return Op::Illegal;
}

Op
decodeOp32(uint32_t i, unsigned f7, unsigned f3)
{
    switch (f7) {
      case 0x00:
        switch (f3) {
          case 0: return Op::Addw;
          case 1: return Op::Sllw;
          case 5: return Op::Srlw;
        }
        break;
      case 0x20:
        switch (f3) {
          case 0: return Op::Subw;
          case 5: return Op::Sraw;
        }
        break;
      case 0x01:
        switch (f3) {
          case 0: return Op::Mulw;
          case 4: return Op::Divw;
          case 5: return Op::Divuw;
          case 6: return Op::Remw;
          case 7: return Op::Remuw;
        }
        break;
      case 0x04:
        if (f3 == 0)
            return Op::AddUw;
        if (f3 == 4 && bits(i, 24, 20) == 0)
            return Op::ZextH;
        break;
      case 0x10:
        switch (f3) {
          case 2: return Op::Sh1addUw;
          case 4: return Op::Sh2addUw;
          case 6: return Op::Sh3addUw;
        }
        break;
      case 0x30:
        switch (f3) {
          case 1: return Op::Rolw;
          case 5: return Op::Rorw;
        }
        break;
    }
    return Op::Illegal;
}

Op
decodeAmo(unsigned f5, bool dbl)
{
    switch (f5) {
      case 0x02: return dbl ? Op::LrD : Op::LrW;
      case 0x03: return dbl ? Op::ScD : Op::ScW;
      case 0x01: return dbl ? Op::AmoSwapD : Op::AmoSwapW;
      case 0x00: return dbl ? Op::AmoAddD : Op::AmoAddW;
      case 0x04: return dbl ? Op::AmoXorD : Op::AmoXorW;
      case 0x0c: return dbl ? Op::AmoAndD : Op::AmoAndW;
      case 0x08: return dbl ? Op::AmoOrD : Op::AmoOrW;
      case 0x10: return dbl ? Op::AmoMinD : Op::AmoMinW;
      case 0x14: return dbl ? Op::AmoMaxD : Op::AmoMaxW;
      case 0x18: return dbl ? Op::AmoMinuD : Op::AmoMinuW;
      case 0x1c: return dbl ? Op::AmoMaxuD : Op::AmoMaxuW;
    }
    return Op::Illegal;
}

Op
decodeOpFp(uint32_t i, unsigned f7, unsigned f3, unsigned rs2)
{
    switch (f7) {
      case 0x00: return Op::FaddS;
      case 0x01: return Op::FaddD;
      case 0x04: return Op::FsubS;
      case 0x05: return Op::FsubD;
      case 0x08: return Op::FmulS;
      case 0x09: return Op::FmulD;
      case 0x0c: return Op::FdivS;
      case 0x0d: return Op::FdivD;
      case 0x2c: return rs2 == 0 ? Op::FsqrtS : Op::Illegal;
      case 0x2d: return rs2 == 0 ? Op::FsqrtD : Op::Illegal;
      case 0x10:
        switch (f3) {
          case 0: return Op::FsgnjS;
          case 1: return Op::FsgnjnS;
          case 2: return Op::FsgnjxS;
        }
        break;
      case 0x11:
        switch (f3) {
          case 0: return Op::FsgnjD;
          case 1: return Op::FsgnjnD;
          case 2: return Op::FsgnjxD;
        }
        break;
      case 0x14: return f3 == 0 ? Op::FminS : (f3 == 1 ? Op::FmaxS : Op::Illegal);
      case 0x15: return f3 == 0 ? Op::FminD : (f3 == 1 ? Op::FmaxD : Op::Illegal);
      case 0x50:
        switch (f3) {
          case 2: return Op::FeqS;
          case 1: return Op::FltS;
          case 0: return Op::FleS;
        }
        break;
      case 0x51:
        switch (f3) {
          case 2: return Op::FeqD;
          case 1: return Op::FltD;
          case 0: return Op::FleD;
        }
        break;
      case 0x60:
        switch (rs2) {
          case 0: return Op::FcvtWS;
          case 1: return Op::FcvtWuS;
          case 2: return Op::FcvtLS;
          case 3: return Op::FcvtLuS;
        }
        break;
      case 0x61:
        switch (rs2) {
          case 0: return Op::FcvtWD;
          case 1: return Op::FcvtWuD;
          case 2: return Op::FcvtLD;
          case 3: return Op::FcvtLuD;
        }
        break;
      case 0x68:
        switch (rs2) {
          case 0: return Op::FcvtSW;
          case 1: return Op::FcvtSWu;
          case 2: return Op::FcvtSL;
          case 3: return Op::FcvtSLu;
        }
        break;
      case 0x69:
        switch (rs2) {
          case 0: return Op::FcvtDW;
          case 1: return Op::FcvtDWu;
          case 2: return Op::FcvtDL;
          case 3: return Op::FcvtDLu;
        }
        break;
      case 0x20: return rs2 == 1 ? Op::FcvtSD : Op::Illegal;
      case 0x21: return rs2 == 0 ? Op::FcvtDS : Op::Illegal;
      case 0x70:
        if (f3 == 0 && rs2 == 0)
            return Op::FmvXW;
        if (f3 == 1 && rs2 == 0)
            return Op::FclassS;
        break;
      case 0x71:
        if (f3 == 0 && rs2 == 0)
            return Op::FmvXD;
        if (f3 == 1 && rs2 == 0)
            return Op::FclassD;
        break;
      case 0x78: return (f3 == 0 && rs2 == 0) ? Op::FmvWX : Op::Illegal;
      case 0x79: return (f3 == 0 && rs2 == 0) ? Op::FmvDX : Op::Illegal;
    }
    return Op::Illegal;
}

} // namespace

DecodedInst
decode32(uint32_t i)
{
    unsigned opcode = static_cast<unsigned>(bits(i, 6, 0));
    unsigned rd = static_cast<unsigned>(bits(i, 11, 7));
    unsigned rs1 = static_cast<unsigned>(bits(i, 19, 15));
    unsigned rs2 = static_cast<unsigned>(bits(i, 24, 20));
    unsigned f3 = static_cast<unsigned>(bits(i, 14, 12));
    unsigned f7 = static_cast<unsigned>(bits(i, 31, 25));

    switch (opcode) {
      case 0x37: return make(i, Op::Lui, rd, 0, 0, immU(i));
      case 0x17: return make(i, Op::Auipc, rd, 0, 0, immU(i));
      case 0x6f: return make(i, Op::Jal, rd, 0, 0, immJ(i));
      case 0x67:
        return f3 == 0 ? make(i, Op::Jalr, rd, rs1, 0, immI(i))
                       : illegal(i);
      case 0x63: {
        static const Op branches[8] = {Op::Beq, Op::Bne, Op::Illegal,
                                       Op::Illegal, Op::Blt, Op::Bge,
                                       Op::Bltu, Op::Bgeu};
        Op op = branches[f3];
        return op == Op::Illegal ? illegal(i)
                                 : make(i, op, 0, rs1, rs2, immB(i));
      }
      case 0x03: {
        static const Op loads[8] = {Op::Lb, Op::Lh, Op::Lw, Op::Ld,
                                    Op::Lbu, Op::Lhu, Op::Lwu, Op::Illegal};
        Op op = loads[f3];
        return op == Op::Illegal ? illegal(i)
                                 : make(i, op, rd, rs1, 0, immI(i));
      }
      case 0x23: {
        static const Op stores[8] = {Op::Sb, Op::Sh, Op::Sw, Op::Sd,
                                     Op::Illegal, Op::Illegal, Op::Illegal,
                                     Op::Illegal};
        Op op = stores[f3];
        return op == Op::Illegal ? illegal(i)
                                 : make(i, op, 0, rs1, rs2, immS(i));
      }
      case 0x13: {
        Op op = decodeOpImm(i, f3);
        if (op == Op::Illegal)
            return illegal(i);
        int64_t imm = immI(i);
        if (op == Op::Slli || op == Op::Srli || op == Op::Srai ||
            op == Op::Rori) {
            imm = static_cast<int64_t>(bits(i, 25, 20)); // 6-bit shamt
        } else if (op == Op::Clz || op == Op::Ctz || op == Op::Cpop ||
                   op == Op::SextB || op == Op::SextH || op == Op::OrcB ||
                   op == Op::Rev8) {
            imm = 0;
        }
        return make(i, op, rd, rs1, 0, imm);
      }
      case 0x1b: {
        switch (f3) {
          case 0: return make(i, Op::Addiw, rd, rs1, 0, immI(i));
          case 1:
            if (bits(i, 31, 25) == 0x00)
                return make(i, Op::Slliw, rd, rs1, 0,
                            static_cast<int64_t>(bits(i, 24, 20)));
            if (bits(i, 31, 26) == 0x02)
                return make(i, Op::SlliUw, rd, rs1, 0,
                            static_cast<int64_t>(bits(i, 25, 20)));
            if (bits(i, 31, 25) == 0x30) {
                switch (rs2) {
                  case 0: return make(i, Op::Clzw, rd, rs1, 0, 0);
                  case 1: return make(i, Op::Ctzw, rd, rs1, 0, 0);
                  case 2: return make(i, Op::Cpopw, rd, rs1, 0, 0);
                }
            }
            return illegal(i);
          case 5:
            if (f7 == 0x00)
                return make(i, Op::Srliw, rd, rs1, 0,
                            static_cast<int64_t>(bits(i, 24, 20)));
            if (f7 == 0x20)
                return make(i, Op::Sraiw, rd, rs1, 0,
                            static_cast<int64_t>(bits(i, 24, 20)));
            if (f7 == 0x30)
                return make(i, Op::Roriw, rd, rs1, 0,
                            static_cast<int64_t>(bits(i, 24, 20)));
            return illegal(i);
        }
        return illegal(i);
      }
      case 0x33: {
        Op op = decodeOp(f7, f3);
        return op == Op::Illegal ? illegal(i) : make(i, op, rd, rs1, rs2, 0);
      }
      case 0x3b: {
        Op op = decodeOp32(i, f7, f3);
        return op == Op::Illegal ? illegal(i) : make(i, op, rd, rs1, rs2, 0);
      }
      case 0x0f:
        if (f3 == 0)
            return make(i, Op::Fence, rd, rs1, 0, immI(i));
        if (f3 == 1)
            return make(i, Op::FenceI, rd, rs1, 0, immI(i));
        return illegal(i);
      case 0x73: {
        if (f3 == 0) {
            uint64_t f12 = bits(i, 31, 20);
            if (f7 == 0x09)
                return make(i, Op::SfenceVma, 0, rs1, rs2, 0);
            if (rd != 0 || rs1 != 0)
                return illegal(i);
            switch (f12) {
              case 0x000: return make(i, Op::Ecall, 0, 0, 0, 0);
              case 0x001: return make(i, Op::Ebreak, 0, 0, 0, 0);
              case 0x102: return make(i, Op::Sret, 0, 0, 0, 0);
              case 0x302: return make(i, Op::Mret, 0, 0, 0, 0);
              case 0x105: return make(i, Op::Wfi, 0, 0, 0, 0);
            }
            return illegal(i);
        }
        static const Op csrs[8] = {Op::Illegal, Op::Csrrw, Op::Csrrs,
                                   Op::Csrrc, Op::Illegal, Op::Csrrwi,
                                   Op::Csrrsi, Op::Csrrci};
        Op op = csrs[f3];
        if (op == Op::Illegal)
            return illegal(i);
        // imm carries the CSR number; rs1 carries the zimm for *i forms.
        return make(i, op, rd, rs1, 0,
                    static_cast<int64_t>(bits(i, 31, 20)));
      }
      case 0x2f: {
        if (f3 != 2 && f3 != 3)
            return illegal(i);
        Op op = decodeAmo(static_cast<unsigned>(bits(i, 31, 27)), f3 == 3);
        return op == Op::Illegal ? illegal(i) : make(i, op, rd, rs1, rs2, 0);
      }
      case 0x07:
        if (f3 == 2)
            return make(i, Op::Flw, rd, rs1, 0, immI(i));
        if (f3 == 3)
            return make(i, Op::Fld, rd, rs1, 0, immI(i));
        return illegal(i);
      case 0x27:
        if (f3 == 2)
            return make(i, Op::Fsw, 0, rs1, rs2, immS(i));
        if (f3 == 3)
            return make(i, Op::Fsd, 0, rs1, rs2, immS(i));
        return illegal(i);
      case 0x53: {
        Op op = decodeOpFp(i, f7, f3, rs2);
        if (op == Op::Illegal)
            return illegal(i);
        DecodedInst di = make(i, op, rd, rs1, rs2, 0);
        di.rm = static_cast<uint8_t>(f3);
        return di;
      }
      case 0x43: case 0x47: case 0x4b: case 0x4f: {
        unsigned fmt = static_cast<unsigned>(bits(i, 26, 25));
        if (fmt > 1)
            return illegal(i);
        static const Op fmas[4][2] = {
            {Op::FmaddS, Op::FmaddD}, {Op::FmsubS, Op::FmsubD},
            {Op::FnmsubS, Op::FnmsubD}, {Op::FnmaddS, Op::FnmaddD}};
        DecodedInst di = make(i, fmas[(opcode >> 2) & 3][fmt], rd, rs1,
                              rs2, 0);
        di.rs3 = static_cast<uint8_t>(bits(i, 31, 27));
        di.rm = static_cast<uint8_t>(f3);
        return di;
      }
    }
    return illegal(i);
}

DecodedInst
decode16(uint16_t c)
{
    unsigned quad = c & 0x3;
    unsigned f3 = static_cast<unsigned>(bits(c, 15, 13));
    // Registers in the compressed 3-bit fields map to x8..x15.
    unsigned rdp = 8 + static_cast<unsigned>(bits(c, 4, 2));
    unsigned rs1p = 8 + static_cast<unsigned>(bits(c, 9, 7));
    unsigned rdFull = static_cast<unsigned>(bits(c, 11, 7));
    unsigned rs2Full = static_cast<unsigned>(bits(c, 6, 2));

    auto ok = [c](Op op, unsigned rd, unsigned rs1, unsigned rs2,
                  int64_t imm) {
        return make(c, op, rd, rs1, rs2, imm, 2);
    };

    if (c == 0)
        return illegal(c, 2);

    switch (quad) {
      case 0:
        switch (f3) {
          case 0: { // c.addi4spn
            uint64_t imm = (bits(c, 10, 7) << 6) | (bits(c, 12, 11) << 4) |
                           (bit(c, 5) << 3) | (bit(c, 6) << 2);
            if (imm == 0)
                return illegal(c, 2);
            return ok(Op::Addi, rdp, 2, 0, static_cast<int64_t>(imm));
          }
          case 1: { // c.fld
            uint64_t imm = (bits(c, 6, 5) << 6) | (bits(c, 12, 10) << 3);
            return ok(Op::Fld, rdp, rs1p, 0, static_cast<int64_t>(imm));
          }
          case 2: { // c.lw
            uint64_t imm = (bit(c, 5) << 6) | (bits(c, 12, 10) << 3) |
                           (bit(c, 6) << 2);
            return ok(Op::Lw, rdp, rs1p, 0, static_cast<int64_t>(imm));
          }
          case 3: { // c.ld
            uint64_t imm = (bits(c, 6, 5) << 6) | (bits(c, 12, 10) << 3);
            return ok(Op::Ld, rdp, rs1p, 0, static_cast<int64_t>(imm));
          }
          case 5: { // c.fsd
            uint64_t imm = (bits(c, 6, 5) << 6) | (bits(c, 12, 10) << 3);
            return ok(Op::Fsd, 0, rs1p, rdp, static_cast<int64_t>(imm));
          }
          case 6: { // c.sw
            uint64_t imm = (bit(c, 5) << 6) | (bits(c, 12, 10) << 3) |
                           (bit(c, 6) << 2);
            return ok(Op::Sw, 0, rs1p, rdp, static_cast<int64_t>(imm));
          }
          case 7: { // c.sd
            uint64_t imm = (bits(c, 6, 5) << 6) | (bits(c, 12, 10) << 3);
            return ok(Op::Sd, 0, rs1p, rdp, static_cast<int64_t>(imm));
          }
        }
        return illegal(c, 2);

      case 1:
        switch (f3) {
          case 0: { // c.addi / c.nop
            int64_t imm = sext((bit(c, 12) << 5) | bits(c, 6, 2), 6);
            return ok(Op::Addi, rdFull, rdFull, 0, imm);
          }
          case 1: { // c.addiw
            if (rdFull == 0)
                return illegal(c, 2);
            int64_t imm = sext((bit(c, 12) << 5) | bits(c, 6, 2), 6);
            return ok(Op::Addiw, rdFull, rdFull, 0, imm);
          }
          case 2: { // c.li
            int64_t imm = sext((bit(c, 12) << 5) | bits(c, 6, 2), 6);
            return ok(Op::Addi, rdFull, 0, 0, imm);
          }
          case 3: {
            if (rdFull == 2) { // c.addi16sp
                int64_t imm = sext((bit(c, 12) << 9) | (bits(c, 4, 3) << 7) |
                                   (bit(c, 5) << 6) | (bit(c, 2) << 5) |
                                   (bit(c, 6) << 4), 10);
                if (imm == 0)
                    return illegal(c, 2);
                return ok(Op::Addi, 2, 2, 0, imm);
            }
            // c.lui
            int64_t imm = sext((bit(c, 12) << 17) | (bits(c, 6, 2) << 12),
                               18);
            if (imm == 0)
                return illegal(c, 2);
            return ok(Op::Lui, rdFull, 0, 0, imm);
          }
          case 4: {
            unsigned sub = static_cast<unsigned>(bits(c, 11, 10));
            if (sub == 0 || sub == 1) { // c.srli / c.srai
                int64_t shamt = static_cast<int64_t>((bit(c, 12) << 5) |
                                                     bits(c, 6, 2));
                return ok(sub == 0 ? Op::Srli : Op::Srai, rs1p, rs1p, 0,
                          shamt);
            }
            if (sub == 2) { // c.andi
                int64_t imm = sext((bit(c, 12) << 5) | bits(c, 6, 2), 6);
                return ok(Op::Andi, rs1p, rs1p, 0, imm);
            }
            unsigned rs2 = 8 + static_cast<unsigned>(bits(c, 4, 2));
            unsigned f2 = static_cast<unsigned>(bits(c, 6, 5));
            if (bit(c, 12) == 0) {
                static const Op ops[4] = {Op::Sub, Op::Xor, Op::Or, Op::And};
                return ok(ops[f2], rs1p, rs1p, rs2, 0);
            }
            if (f2 == 0)
                return ok(Op::Subw, rs1p, rs1p, rs2, 0);
            if (f2 == 1)
                return ok(Op::Addw, rs1p, rs1p, rs2, 0);
            return illegal(c, 2);
          }
          case 5: { // c.j
            int64_t imm = sext((bit(c, 12) << 11) | (bit(c, 8) << 10) |
                               (bits(c, 10, 9) << 8) | (bit(c, 6) << 7) |
                               (bit(c, 7) << 6) | (bit(c, 2) << 5) |
                               (bit(c, 11) << 4) | (bits(c, 5, 3) << 1),
                               12);
            return ok(Op::Jal, 0, 0, 0, imm);
          }
          case 6: case 7: { // c.beqz / c.bnez
            int64_t imm = sext((bit(c, 12) << 8) | (bits(c, 6, 5) << 6) |
                               (bit(c, 2) << 5) | (bits(c, 11, 10) << 3) |
                               (bits(c, 4, 3) << 1), 9);
            return ok(f3 == 6 ? Op::Beq : Op::Bne, 0, rs1p, 0, imm);
          }
        }
        return illegal(c, 2);

      case 2:
        switch (f3) {
          case 0: { // c.slli
            int64_t shamt = static_cast<int64_t>((bit(c, 12) << 5) |
                                                 bits(c, 6, 2));
            return ok(Op::Slli, rdFull, rdFull, 0, shamt);
          }
          case 1: { // c.fldsp
            uint64_t imm = (bits(c, 4, 2) << 6) | (bit(c, 12) << 5) |
                           (bits(c, 6, 5) << 3);
            return ok(Op::Fld, rdFull, 2, 0, static_cast<int64_t>(imm));
          }
          case 2: { // c.lwsp
            if (rdFull == 0)
                return illegal(c, 2);
            uint64_t imm = (bits(c, 3, 2) << 6) | (bit(c, 12) << 5) |
                           (bits(c, 6, 4) << 2);
            return ok(Op::Lw, rdFull, 2, 0, static_cast<int64_t>(imm));
          }
          case 3: { // c.ldsp
            if (rdFull == 0)
                return illegal(c, 2);
            uint64_t imm = (bits(c, 4, 2) << 6) | (bit(c, 12) << 5) |
                           (bits(c, 6, 5) << 3);
            return ok(Op::Ld, rdFull, 2, 0, static_cast<int64_t>(imm));
          }
          case 4: {
            if (bit(c, 12) == 0) {
                if (rs2Full == 0) { // c.jr
                    if (rdFull == 0)
                        return illegal(c, 2);
                    return ok(Op::Jalr, 0, rdFull, 0, 0);
                }
                return ok(Op::Add, rdFull, 0, rs2Full, 0); // c.mv
            }
            if (rs2Full == 0) {
                if (rdFull == 0)
                    return ok(Op::Ebreak, 0, 0, 0, 0); // c.ebreak
                return ok(Op::Jalr, 1, rdFull, 0, 0);  // c.jalr
            }
            return ok(Op::Add, rdFull, rdFull, rs2Full, 0); // c.add
          }
          case 5: { // c.fsdsp
            uint64_t imm = (bits(c, 9, 7) << 6) | (bits(c, 12, 10) << 3);
            return ok(Op::Fsd, 0, 2, rs2Full, static_cast<int64_t>(imm));
          }
          case 6: { // c.swsp
            uint64_t imm = (bits(c, 8, 7) << 6) | (bits(c, 12, 9) << 2);
            return ok(Op::Sw, 0, 2, rs2Full, static_cast<int64_t>(imm));
          }
          case 7: { // c.sdsp
            uint64_t imm = (bits(c, 9, 7) << 6) | (bits(c, 12, 10) << 3);
            return ok(Op::Sd, 0, 2, rs2Full, static_cast<int64_t>(imm));
          }
        }
        return illegal(c, 2);
    }
    return illegal(c, 2);
}

DecodedInst
decode(uint32_t raw)
{
    if (isCompressed(raw))
        return decode16(static_cast<uint16_t>(raw));
    return decode32(raw);
}

} // namespace minjie::isa
