#include "isa/op.h"

namespace minjie::isa {

const char *
opName(Op op)
{
    switch (op) {
#define N(o, s) case Op::o: return s
        N(Illegal, "illegal");
        N(Lui, "lui"); N(Auipc, "auipc"); N(Jal, "jal"); N(Jalr, "jalr");
        N(Beq, "beq"); N(Bne, "bne"); N(Blt, "blt"); N(Bge, "bge");
        N(Bltu, "bltu"); N(Bgeu, "bgeu");
        N(Lb, "lb"); N(Lh, "lh"); N(Lw, "lw"); N(Ld, "ld");
        N(Lbu, "lbu"); N(Lhu, "lhu"); N(Lwu, "lwu");
        N(Sb, "sb"); N(Sh, "sh"); N(Sw, "sw"); N(Sd, "sd");
        N(Addi, "addi"); N(Slti, "slti"); N(Sltiu, "sltiu");
        N(Xori, "xori"); N(Ori, "ori"); N(Andi, "andi");
        N(Slli, "slli"); N(Srli, "srli"); N(Srai, "srai");
        N(Add, "add"); N(Sub, "sub"); N(Sll, "sll"); N(Slt, "slt");
        N(Sltu, "sltu"); N(Xor, "xor"); N(Srl, "srl"); N(Sra, "sra");
        N(Or, "or"); N(And, "and");
        N(Addiw, "addiw"); N(Slliw, "slliw"); N(Srliw, "srliw");
        N(Sraiw, "sraiw");
        N(Addw, "addw"); N(Subw, "subw"); N(Sllw, "sllw");
        N(Srlw, "srlw"); N(Sraw, "sraw");
        N(Fence, "fence"); N(FenceI, "fence.i");
        N(Ecall, "ecall"); N(Ebreak, "ebreak");
        N(Mul, "mul"); N(Mulh, "mulh"); N(Mulhsu, "mulhsu");
        N(Mulhu, "mulhu"); N(Div, "div"); N(Divu, "divu");
        N(Rem, "rem"); N(Remu, "remu");
        N(Mulw, "mulw"); N(Divw, "divw"); N(Divuw, "divuw");
        N(Remw, "remw"); N(Remuw, "remuw");
        N(LrW, "lr.w"); N(ScW, "sc.w");
        N(AmoSwapW, "amoswap.w"); N(AmoAddW, "amoadd.w");
        N(AmoXorW, "amoxor.w"); N(AmoAndW, "amoand.w");
        N(AmoOrW, "amoor.w"); N(AmoMinW, "amomin.w");
        N(AmoMaxW, "amomax.w"); N(AmoMinuW, "amominu.w");
        N(AmoMaxuW, "amomaxu.w");
        N(LrD, "lr.d"); N(ScD, "sc.d");
        N(AmoSwapD, "amoswap.d"); N(AmoAddD, "amoadd.d");
        N(AmoXorD, "amoxor.d"); N(AmoAndD, "amoand.d");
        N(AmoOrD, "amoor.d"); N(AmoMinD, "amomin.d");
        N(AmoMaxD, "amomax.d"); N(AmoMinuD, "amominu.d");
        N(AmoMaxuD, "amomaxu.d");
        N(Flw, "flw"); N(Fsw, "fsw");
        N(FaddS, "fadd.s"); N(FsubS, "fsub.s"); N(FmulS, "fmul.s");
        N(FdivS, "fdiv.s"); N(FsqrtS, "fsqrt.s");
        N(FsgnjS, "fsgnj.s"); N(FsgnjnS, "fsgnjn.s");
        N(FsgnjxS, "fsgnjx.s"); N(FminS, "fmin.s"); N(FmaxS, "fmax.s");
        N(FcvtWS, "fcvt.w.s"); N(FcvtWuS, "fcvt.wu.s");
        N(FcvtLS, "fcvt.l.s"); N(FcvtLuS, "fcvt.lu.s");
        N(FcvtSW, "fcvt.s.w"); N(FcvtSWu, "fcvt.s.wu");
        N(FcvtSL, "fcvt.s.l"); N(FcvtSLu, "fcvt.s.lu");
        N(FmvXW, "fmv.x.w"); N(FmvWX, "fmv.w.x");
        N(FeqS, "feq.s"); N(FltS, "flt.s"); N(FleS, "fle.s");
        N(FclassS, "fclass.s");
        N(FmaddS, "fmadd.s"); N(FmsubS, "fmsub.s");
        N(FnmsubS, "fnmsub.s"); N(FnmaddS, "fnmadd.s");
        N(Fld, "fld"); N(Fsd, "fsd");
        N(FaddD, "fadd.d"); N(FsubD, "fsub.d"); N(FmulD, "fmul.d");
        N(FdivD, "fdiv.d"); N(FsqrtD, "fsqrt.d");
        N(FsgnjD, "fsgnj.d"); N(FsgnjnD, "fsgnjn.d");
        N(FsgnjxD, "fsgnjx.d"); N(FminD, "fmin.d"); N(FmaxD, "fmax.d");
        N(FcvtWD, "fcvt.w.d"); N(FcvtWuD, "fcvt.wu.d");
        N(FcvtLD, "fcvt.l.d"); N(FcvtLuD, "fcvt.lu.d");
        N(FcvtDW, "fcvt.d.w"); N(FcvtDWu, "fcvt.d.wu");
        N(FcvtDL, "fcvt.d.l"); N(FcvtDLu, "fcvt.d.lu");
        N(FcvtSD, "fcvt.s.d"); N(FcvtDS, "fcvt.d.s");
        N(FmvXD, "fmv.x.d"); N(FmvDX, "fmv.d.x");
        N(FeqD, "feq.d"); N(FltD, "flt.d"); N(FleD, "fle.d");
        N(FclassD, "fclass.d");
        N(FmaddD, "fmadd.d"); N(FmsubD, "fmsub.d");
        N(FnmsubD, "fnmsub.d"); N(FnmaddD, "fnmadd.d");
        N(Csrrw, "csrrw"); N(Csrrs, "csrrs"); N(Csrrc, "csrrc");
        N(Csrrwi, "csrrwi"); N(Csrrsi, "csrrsi"); N(Csrrci, "csrrci");
        N(Mret, "mret"); N(Sret, "sret"); N(Wfi, "wfi");
        N(SfenceVma, "sfence.vma");
        N(AddUw, "add.uw"); N(Sh1add, "sh1add"); N(Sh2add, "sh2add");
        N(Sh3add, "sh3add"); N(Sh1addUw, "sh1add.uw");
        N(Sh2addUw, "sh2add.uw"); N(Sh3addUw, "sh3add.uw");
        N(SlliUw, "slli.uw");
        N(Andn, "andn"); N(Orn, "orn"); N(Xnor, "xnor");
        N(Clz, "clz"); N(Ctz, "ctz"); N(Cpop, "cpop");
        N(Clzw, "clzw"); N(Ctzw, "ctzw"); N(Cpopw, "cpopw");
        N(Max, "max"); N(Maxu, "maxu"); N(Min, "min"); N(Minu, "minu");
        N(SextB, "sext.b"); N(SextH, "sext.h"); N(ZextH, "zext.h");
        N(Rol, "rol"); N(Ror, "ror"); N(Rori, "rori");
        N(Rolw, "rolw"); N(Rorw, "rorw"); N(Roriw, "roriw");
        N(OrcB, "orc.b"); N(Rev8, "rev8");
#undef N
      default:
        return "unknown";
    }
}

// Switch-based ground truth for the per-op flag table. The public
// predicates in op.h are single loads from opdetail::flags; these
// constexpr impls exist only to populate that table at compile time,
// so the readable switch form stays the single source of truth.
namespace {

constexpr bool
isLoadImpl(Op op)
{
    switch (op) {
      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Ld:
      case Op::Lbu: case Op::Lhu: case Op::Lwu:
      case Op::Flw: case Op::Fld:
      case Op::LrW: case Op::LrD:
        return true;
      default:
        return false;
    }
}

constexpr bool
isStoreImpl(Op op)
{
    switch (op) {
      case Op::Sb: case Op::Sh: case Op::Sw: case Op::Sd:
      case Op::Fsw: case Op::Fsd:
      case Op::ScW: case Op::ScD:
        return true;
      default:
        return false;
    }
}

constexpr bool
isAmoImpl(Op op)
{
    return op >= Op::AmoSwapW && op <= Op::AmoMaxuW
        ? true
        : (op >= Op::AmoSwapD && op <= Op::AmoMaxuD);
}

constexpr bool
isLrImpl(Op op)
{
    return op == Op::LrW || op == Op::LrD;
}

constexpr bool
isScImpl(Op op)
{
    return op == Op::ScW || op == Op::ScD;
}

constexpr bool
isCondBranchImpl(Op op)
{
    return op >= Op::Beq && op <= Op::Bgeu;
}

constexpr bool
isJumpImpl(Op op)
{
    return op == Op::Jal || op == Op::Jalr;
}

constexpr bool
isFpImpl(Op op)
{
    return (op >= Op::Flw && op <= Op::FnmaddD);
}

constexpr bool
readsFpRs1Impl(Op op)
{
    if (!isFpImpl(op))
        return false;
    switch (op) {
      case Op::Flw: case Op::Fld: case Op::Fsw: case Op::Fsd:
      case Op::FcvtSW: case Op::FcvtSWu: case Op::FcvtSL: case Op::FcvtSLu:
      case Op::FcvtDW: case Op::FcvtDWu: case Op::FcvtDL: case Op::FcvtDLu:
      case Op::FmvWX: case Op::FmvDX:
        return false;
      default:
        return true;
    }
}

constexpr bool
readsFpRs2Impl(Op op)
{
    if (!isFpImpl(op))
        return false;
    switch (op) {
      case Op::Fsw: case Op::Fsd:
      case Op::FaddS: case Op::FsubS: case Op::FmulS: case Op::FdivS:
      case Op::FsgnjS: case Op::FsgnjnS: case Op::FsgnjxS:
      case Op::FminS: case Op::FmaxS:
      case Op::FeqS: case Op::FltS: case Op::FleS:
      case Op::FmaddS: case Op::FmsubS: case Op::FnmsubS: case Op::FnmaddS:
      case Op::FaddD: case Op::FsubD: case Op::FmulD: case Op::FdivD:
      case Op::FsgnjD: case Op::FsgnjnD: case Op::FsgnjxD:
      case Op::FminD: case Op::FmaxD:
      case Op::FeqD: case Op::FltD: case Op::FleD:
      case Op::FmaddD: case Op::FmsubD: case Op::FnmsubD: case Op::FnmaddD:
        return true;
      default:
        return false;
    }
}

constexpr bool
writesFpRdImpl(Op op)
{
    if (!isFpImpl(op))
        return false;
    switch (op) {
      case Op::Fsw: case Op::Fsd:
      case Op::FcvtWS: case Op::FcvtWuS: case Op::FcvtLS: case Op::FcvtLuS:
      case Op::FcvtWD: case Op::FcvtWuD: case Op::FcvtLD: case Op::FcvtLuD:
      case Op::FmvXW: case Op::FmvXD:
      case Op::FeqS: case Op::FltS: case Op::FleS: case Op::FclassS:
      case Op::FeqD: case Op::FltD: case Op::FleD: case Op::FclassD:
        return false;
      default:
        return true;
    }
}

constexpr bool
isCsrImpl(Op op)
{
    return op >= Op::Csrrw && op <= Op::Csrrci;
}

constexpr bool
isFenceImpl(Op op)
{
    return op == Op::Fence || op == Op::FenceI || op == Op::SfenceVma;
}

constexpr bool
isSystemImpl(Op op)
{
    switch (op) {
      case Op::Ecall: case Op::Ebreak: case Op::Mret: case Op::Sret:
      case Op::Wfi: case Op::SfenceVma:
        return true;
      default:
        return isCsrImpl(op);
    }
}

constexpr bool
hasRs3Impl(Op op)
{
    switch (op) {
      case Op::FmaddS: case Op::FmsubS: case Op::FnmsubS: case Op::FnmaddS:
      case Op::FmaddD: case Op::FmsubD: case Op::FnmsubD: case Op::FnmaddD:
        return true;
      default:
        return false;
    }
}

constexpr FuType
fuTypeImpl(Op op)
{
    if (isLoadImpl(op))
        return FuType::Ldu;
    if (isStoreImpl(op) || isAmoImpl(op))
        return FuType::Sta;   // split into Sta+Std by the rename stage
    if (isCondBranchImpl(op) || isJumpImpl(op) || isCsrImpl(op) || isSystemImpl(op))
        return FuType::Jmp;
    switch (op) {
      case Op::Mul: case Op::Mulh: case Op::Mulhsu: case Op::Mulhu:
      case Op::Mulw:
        return FuType::Mul;
      case Op::Div: case Op::Divu: case Op::Rem: case Op::Remu:
      case Op::Divw: case Op::Divuw: case Op::Remw: case Op::Remuw:
        return FuType::Div;
      case Op::FdivS: case Op::FsqrtS: case Op::FdivD: case Op::FsqrtD:
        return FuType::Fdiv;
      case Op::FaddS: case Op::FsubS: case Op::FmulS:
      case Op::FmaddS: case Op::FmsubS: case Op::FnmsubS: case Op::FnmaddS:
      case Op::FaddD: case Op::FsubD: case Op::FmulD:
      case Op::FmaddD: case Op::FmsubD: case Op::FnmsubD: case Op::FnmaddD:
        return FuType::Fma;
      case Op::Fence: case Op::FenceI:
        return FuType::None;
      case Op::FmvWX: case Op::FmvDX:
      case Op::FcvtSW: case Op::FcvtSWu: case Op::FcvtSL: case Op::FcvtSLu:
      case Op::FcvtDW: case Op::FcvtDWu: case Op::FcvtDL: case Op::FcvtDLu:
        return FuType::Jmp;   // int-to-float path shares the JMP/I2F unit
      default:
        if (isFpImpl(op))
            return FuType::Fmisc;
        return FuType::Alu;
    }
}

constexpr unsigned
memSizeImpl(Op op)
{
    switch (op) {
      case Op::Lb: case Op::Lbu: case Op::Sb:
        return 1;
      case Op::Lh: case Op::Lhu: case Op::Sh:
        return 2;
      case Op::Lw: case Op::Lwu: case Op::Sw: case Op::Flw: case Op::Fsw:
      case Op::LrW: case Op::ScW:
        return 4;
      case Op::Ld: case Op::Sd: case Op::Fld: case Op::Fsd:
      case Op::LrD: case Op::ScD:
        return 8;
      default:
        if (isAmoImpl(op)) {
            return (op >= Op::AmoSwapD && op <= Op::AmoMaxuD) ? 8 : 4;
        }
        return 0;
    }
}

constexpr bool
loadSignedImpl(Op op)
{
    switch (op) {
      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Ld:
      case Op::LrW: case Op::LrD:
        return true;
      default:
        return false;
    }
}

constexpr std::array<uint8_t, static_cast<size_t>(Op::NumOps)>
buildMemSizeTable()
{
    std::array<uint8_t, static_cast<size_t>(Op::NumOps)> t{};
    for (size_t i = 0; i < t.size(); ++i) {
        const Op op = static_cast<Op>(i);
        t[i] = static_cast<uint8_t>(memSizeImpl(op)) |
               (loadSignedImpl(op) ? 0x80 : 0);
    }
    return t;
}

constexpr std::array<FuType, static_cast<size_t>(Op::NumOps)>
buildFuTable()
{
    std::array<FuType, static_cast<size_t>(Op::NumOps)> t{};
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = fuTypeImpl(static_cast<Op>(i));
    return t;
}

constexpr std::array<uint16_t, static_cast<size_t>(Op::NumOps)>
buildFlags()
{
    std::array<uint16_t, static_cast<size_t>(Op::NumOps)> t{};
    for (size_t i = 0; i < t.size(); ++i) {
        const Op op = static_cast<Op>(i);
        uint16_t f = 0;
        if (isLoadImpl(op)) f |= opdetail::kLoad;
        if (isStoreImpl(op)) f |= opdetail::kStore;
        if (isAmoImpl(op)) f |= opdetail::kAmo;
        if (isLrImpl(op)) f |= opdetail::kLr;
        if (isScImpl(op)) f |= opdetail::kSc;
        if (isCondBranchImpl(op)) f |= opdetail::kCondBranch;
        if (isJumpImpl(op)) f |= opdetail::kJump;
        if (isFpImpl(op)) f |= opdetail::kFp;
        if (readsFpRs1Impl(op)) f |= opdetail::kReadsFpRs1;
        if (readsFpRs2Impl(op)) f |= opdetail::kReadsFpRs2;
        if (writesFpRdImpl(op)) f |= opdetail::kWritesFpRd;
        if (isCsrImpl(op)) f |= opdetail::kCsr;
        if (isFenceImpl(op)) f |= opdetail::kFence;
        if (isSystemImpl(op)) f |= opdetail::kSystem;
        if (hasRs3Impl(op)) f |= opdetail::kRs3;
        t[i] = f;
    }
    return t;
}

} // namespace

namespace opdetail {
// constexpr initializer + const object => constant-initialized, so the
// table is ready before any other static initializer runs.
const std::array<uint16_t, static_cast<size_t>(Op::NumOps)> flags =
    buildFlags();
const std::array<FuType, static_cast<size_t>(Op::NumOps)> fuTable =
    buildFuTable();
const std::array<uint8_t, static_cast<size_t>(Op::NumOps)> memSizeTable =
    buildMemSizeTable();
} // namespace opdetail

const char *
opClassName(Op op)
{
    if (op == Op::Illegal)
        return "illegal";
    if (isAmo(op) || isLr(op) || isSc(op))
        return "amo";
    if (isFp(op))
        return "fp";
    if (isLoad(op))
        return "load";
    if (isStore(op))
        return "store";
    if (isCondBranch(op))
        return "branch";
    if (isJump(op))
        return "jump";
    if (isCsr(op) || isSystem(op))
        return "sys";
    if (isFence(op))
        return "fence";
    return "alu";
}

} // namespace minjie::isa

