/**
 * @file
 * RV64 operation enumeration and static metadata.
 *
 * Covers RV64I, M, A, F, D, Zicsr, Zifencei, the privileged instructions
 * needed for machine/supervisor mode, and the Zba/Zbb subsets that the
 * XIANGSHAN NH generation (RV64GCBK) exposes to the compiler.  Compressed
 * (C) instructions are expanded to these base operations by the decoder.
 */

#ifndef MINJIE_ISA_OP_H
#define MINJIE_ISA_OP_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace minjie::isa {

enum class Op : uint16_t {
    Illegal = 0,

    // RV64I
    Lui, Auipc, Jal, Jalr,
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Lb, Lh, Lw, Ld, Lbu, Lhu, Lwu,
    Sb, Sh, Sw, Sd,
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    Addiw, Slliw, Srliw, Sraiw,
    Addw, Subw, Sllw, Srlw, Sraw,
    Fence, FenceI, Ecall, Ebreak,

    // RV64M
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    Mulw, Divw, Divuw, Remw, Remuw,

    // RV64A
    LrW, ScW, AmoSwapW, AmoAddW, AmoXorW, AmoAndW, AmoOrW,
    AmoMinW, AmoMaxW, AmoMinuW, AmoMaxuW,
    LrD, ScD, AmoSwapD, AmoAddD, AmoXorD, AmoAndD, AmoOrD,
    AmoMinD, AmoMaxD, AmoMinuD, AmoMaxuD,

    // RV64F
    Flw, Fsw,
    FaddS, FsubS, FmulS, FdivS, FsqrtS,
    FsgnjS, FsgnjnS, FsgnjxS, FminS, FmaxS,
    FcvtWS, FcvtWuS, FcvtLS, FcvtLuS,
    FcvtSW, FcvtSWu, FcvtSL, FcvtSLu,
    FmvXW, FmvWX,
    FeqS, FltS, FleS, FclassS,
    FmaddS, FmsubS, FnmsubS, FnmaddS,

    // RV64D
    Fld, Fsd,
    FaddD, FsubD, FmulD, FdivD, FsqrtD,
    FsgnjD, FsgnjnD, FsgnjxD, FminD, FmaxD,
    FcvtWD, FcvtWuD, FcvtLD, FcvtLuD,
    FcvtDW, FcvtDWu, FcvtDL, FcvtDLu,
    FcvtSD, FcvtDS,
    FmvXD, FmvDX,
    FeqD, FltD, FleD, FclassD,
    FmaddD, FmsubD, FnmsubD, FnmaddD,

    // Zicsr
    Csrrw, Csrrs, Csrrc, Csrrwi, Csrrsi, Csrrci,

    // Privileged
    Mret, Sret, Wfi, SfenceVma,

    // Zba
    AddUw, Sh1add, Sh2add, Sh3add, Sh1addUw, Sh2addUw, Sh3addUw, SlliUw,

    // Zbb
    Andn, Orn, Xnor,
    Clz, Ctz, Cpop, Clzw, Ctzw, Cpopw,
    Max, Maxu, Min, Minu,
    SextB, SextH, ZextH,
    Rol, Ror, Rori, Rolw, Rorw, Roriw,
    OrcB, Rev8,

    NumOps
};

/** Functional-unit class used by the cycle model's issue logic. */
enum class FuType : uint8_t {
    Alu,    ///< single-cycle integer
    Mul,    ///< pipelined multiplier
    Div,    ///< iterative divider
    Jmp,    ///< jumps / CSR / int-to-float moves
    Ldu,    ///< load unit
    Sta,    ///< store-address uop
    Std,    ///< store-data uop
    Fma,    ///< cascade FMA pipeline
    Fmisc,  ///< fp compare/convert/sign-injection
    Fdiv,   ///< fp divide / sqrt
    None,   ///< does not occupy an execution unit (fences in some models)
};

/** Human-readable mnemonic for @p op. */
const char *opName(Op op);

/**
 * Coarse class of @p op for failure bucketing: "alu", "load", "store",
 * "amo", "branch", "jump", "fp", "sys", "fence" or "illegal".
 */
const char *opClassName(Op op);

/**
 * Per-op classification bits, constant-initialized in op.cpp from the
 * switch-based class definitions. The cycle model's rename/commit
 * paths query several predicates per dynamic instruction, so each
 * public predicate below is one table load instead of an out-of-line
 * switch call.
 */
namespace opdetail {
enum : uint16_t {
    kLoad = 1u << 0,
    kStore = 1u << 1,
    kAmo = 1u << 2,
    kLr = 1u << 3,
    kSc = 1u << 4,
    kCondBranch = 1u << 5,
    kJump = 1u << 6,
    kFp = 1u << 7,
    kReadsFpRs1 = 1u << 8,
    kReadsFpRs2 = 1u << 9,
    kWritesFpRd = 1u << 10,
    kCsr = 1u << 11,
    kFence = 1u << 12,
    kSystem = 1u << 13,
    kRs3 = 1u << 14,
};
extern const std::array<uint16_t, static_cast<size_t>(Op::NumOps)> flags;
extern const std::array<FuType, static_cast<size_t>(Op::NumOps)> fuTable;
/// Low 7 bits: access size in bytes; bit 7: load result sign-extends.
extern const std::array<uint8_t, static_cast<size_t>(Op::NumOps)>
    memSizeTable;
inline uint16_t
of(Op op)
{
    return flags[static_cast<size_t>(op)];
}
} // namespace opdetail

inline bool isLoad(Op op) { return opdetail::of(op) & opdetail::kLoad; }
inline bool isStore(Op op) { return opdetail::of(op) & opdetail::kStore; }
inline bool isAmo(Op op) { return opdetail::of(op) & opdetail::kAmo; }
inline bool isLr(Op op) { return opdetail::of(op) & opdetail::kLr; }
inline bool isSc(Op op) { return opdetail::of(op) & opdetail::kSc; }
/** Conditional branches only. */
inline bool
isCondBranch(Op op)
{
    return opdetail::of(op) & opdetail::kCondBranch;
}
/** jal/jalr. */
inline bool isJump(Op op) { return opdetail::of(op) & opdetail::kJump; }
/** Any control transfer the branch predictor must handle. */
inline bool
isControl(Op op)
{
    return opdetail::of(op) & (opdetail::kCondBranch | opdetail::kJump);
}
/** True when the op reads/writes the FP register file. */
inline bool isFp(Op op) { return opdetail::of(op) & opdetail::kFp; }
/** True when rs1 names an FP register. */
inline bool
readsFpRs1(Op op)
{
    return opdetail::of(op) & opdetail::kReadsFpRs1;
}
/** True when rs2 names an FP register. */
inline bool
readsFpRs2(Op op)
{
    return opdetail::of(op) & opdetail::kReadsFpRs2;
}
/** True when rd names an FP register. */
inline bool
writesFpRd(Op op)
{
    return opdetail::of(op) & opdetail::kWritesFpRd;
}
inline bool isCsr(Op op) { return opdetail::of(op) & opdetail::kCsr; }
inline bool isFence(Op op) { return opdetail::of(op) & opdetail::kFence; }
inline bool isSystem(Op op) { return opdetail::of(op) & opdetail::kSystem; }
/** True for any op that may access memory (loads, stores, amo, lr/sc). */
inline bool
isMem(Op op)
{
    return opdetail::of(op) &
           (opdetail::kLoad | opdetail::kStore | opdetail::kAmo);
}

/** Memory access size in bytes for memory ops (1/2/4/8). */
inline unsigned
memSize(Op op)
{
    return opdetail::memSizeTable[static_cast<size_t>(op)] & 0x7f;
}
/** True when a load result is sign-extended. */
inline bool
loadSigned(Op op)
{
    return opdetail::memSizeTable[static_cast<size_t>(op)] & 0x80;
}

/** Execution-unit class for the cycle model. */
inline FuType
fuType(Op op)
{
    return opdetail::fuTable[static_cast<size_t>(op)];
}

/** True when the op uses rs3 (FMA family). */
inline bool hasRs3(Op op) { return opdetail::of(op) & opdetail::kRs3; }

} // namespace minjie::isa

#endif // MINJIE_ISA_OP_H
