/**
 * @file
 * RV64 operation enumeration and static metadata.
 *
 * Covers RV64I, M, A, F, D, Zicsr, Zifencei, the privileged instructions
 * needed for machine/supervisor mode, and the Zba/Zbb subsets that the
 * XIANGSHAN NH generation (RV64GCBK) exposes to the compiler.  Compressed
 * (C) instructions are expanded to these base operations by the decoder.
 */

#ifndef MINJIE_ISA_OP_H
#define MINJIE_ISA_OP_H

#include <cstdint>

namespace minjie::isa {

enum class Op : uint16_t {
    Illegal = 0,

    // RV64I
    Lui, Auipc, Jal, Jalr,
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Lb, Lh, Lw, Ld, Lbu, Lhu, Lwu,
    Sb, Sh, Sw, Sd,
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    Addiw, Slliw, Srliw, Sraiw,
    Addw, Subw, Sllw, Srlw, Sraw,
    Fence, FenceI, Ecall, Ebreak,

    // RV64M
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    Mulw, Divw, Divuw, Remw, Remuw,

    // RV64A
    LrW, ScW, AmoSwapW, AmoAddW, AmoXorW, AmoAndW, AmoOrW,
    AmoMinW, AmoMaxW, AmoMinuW, AmoMaxuW,
    LrD, ScD, AmoSwapD, AmoAddD, AmoXorD, AmoAndD, AmoOrD,
    AmoMinD, AmoMaxD, AmoMinuD, AmoMaxuD,

    // RV64F
    Flw, Fsw,
    FaddS, FsubS, FmulS, FdivS, FsqrtS,
    FsgnjS, FsgnjnS, FsgnjxS, FminS, FmaxS,
    FcvtWS, FcvtWuS, FcvtLS, FcvtLuS,
    FcvtSW, FcvtSWu, FcvtSL, FcvtSLu,
    FmvXW, FmvWX,
    FeqS, FltS, FleS, FclassS,
    FmaddS, FmsubS, FnmsubS, FnmaddS,

    // RV64D
    Fld, Fsd,
    FaddD, FsubD, FmulD, FdivD, FsqrtD,
    FsgnjD, FsgnjnD, FsgnjxD, FminD, FmaxD,
    FcvtWD, FcvtWuD, FcvtLD, FcvtLuD,
    FcvtDW, FcvtDWu, FcvtDL, FcvtDLu,
    FcvtSD, FcvtDS,
    FmvXD, FmvDX,
    FeqD, FltD, FleD, FclassD,
    FmaddD, FmsubD, FnmsubD, FnmaddD,

    // Zicsr
    Csrrw, Csrrs, Csrrc, Csrrwi, Csrrsi, Csrrci,

    // Privileged
    Mret, Sret, Wfi, SfenceVma,

    // Zba
    AddUw, Sh1add, Sh2add, Sh3add, Sh1addUw, Sh2addUw, Sh3addUw, SlliUw,

    // Zbb
    Andn, Orn, Xnor,
    Clz, Ctz, Cpop, Clzw, Ctzw, Cpopw,
    Max, Maxu, Min, Minu,
    SextB, SextH, ZextH,
    Rol, Ror, Rori, Rolw, Rorw, Roriw,
    OrcB, Rev8,

    NumOps
};

/** Functional-unit class used by the cycle model's issue logic. */
enum class FuType : uint8_t {
    Alu,    ///< single-cycle integer
    Mul,    ///< pipelined multiplier
    Div,    ///< iterative divider
    Jmp,    ///< jumps / CSR / int-to-float moves
    Ldu,    ///< load unit
    Sta,    ///< store-address uop
    Std,    ///< store-data uop
    Fma,    ///< cascade FMA pipeline
    Fmisc,  ///< fp compare/convert/sign-injection
    Fdiv,   ///< fp divide / sqrt
    None,   ///< does not occupy an execution unit (fences in some models)
};

/** Human-readable mnemonic for @p op. */
const char *opName(Op op);

/**
 * Coarse class of @p op for failure bucketing: "alu", "load", "store",
 * "amo", "branch", "jump", "fp", "sys", "fence" or "illegal".
 */
const char *opClassName(Op op);

bool isLoad(Op op);
bool isStore(Op op);
bool isAmo(Op op);
bool isLr(Op op);
bool isSc(Op op);
/** Conditional branches only. */
bool isCondBranch(Op op);
/** jal/jalr. */
bool isJump(Op op);
/** Any control transfer the branch predictor must handle. */
inline bool isControl(Op op) { return isCondBranch(op) || isJump(op); }
/** True when the op reads/writes the FP register file. */
bool isFp(Op op);
/** True when rs1 names an FP register. */
bool readsFpRs1(Op op);
/** True when rs2 names an FP register. */
bool readsFpRs2(Op op);
/** True when rd names an FP register. */
bool writesFpRd(Op op);
bool isCsr(Op op);
bool isFence(Op op);
bool isSystem(Op op);
/** True for any op that may access memory (loads, stores, amo, lr/sc). */
inline bool isMem(Op op) { return isLoad(op) || isStore(op) || isAmo(op); }

/** Memory access size in bytes for memory ops (1/2/4/8). */
unsigned memSize(Op op);
/** True when a load result is sign-extended. */
bool loadSigned(Op op);

/** Execution-unit class for the cycle model. */
FuType fuType(Op op);

/** True when the op uses rs3 (FMA family). */
bool hasRs3(Op op);

} // namespace minjie::isa

#endif // MINJIE_ISA_OP_H
