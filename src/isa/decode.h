/**
 * @file
 * RV64GC(+Zba/Zbb subset) instruction decoder.
 */

#ifndef MINJIE_ISA_DECODE_H
#define MINJIE_ISA_DECODE_H

#include <cstdint>

#include "isa/inst.h"

namespace minjie::isa {

/** True when the low 16 bits of @p raw begin a compressed instruction. */
inline bool
isCompressed(uint32_t raw)
{
    return (raw & 0x3) != 0x3;
}

/**
 * Decode one instruction starting at the low bits of @p raw.
 *
 * Compressed instructions are expanded to their base-ISA equivalent with
 * DecodedInst::size set to 2. Undecodable encodings yield Op::Illegal.
 */
DecodedInst decode(uint32_t raw);

/** Decode a 32-bit (uncompressed) encoding. */
DecodedInst decode32(uint32_t raw);

/** Decode and expand a 16-bit compressed encoding. */
DecodedInst decode16(uint16_t raw);

} // namespace minjie::isa

#endif // MINJIE_ISA_DECODE_H
