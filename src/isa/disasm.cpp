#include "isa/disasm.h"

#include <cstdio>

namespace minjie::isa {

const char *
regName(unsigned reg)
{
    static const char *names[32] = {
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
        "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
        "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
        "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
    return reg < 32 ? names[reg] : "x?";
}

const char *
fregName(unsigned reg)
{
    static const char *names[32] = {
        "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
        "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
        "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
        "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"};
    return reg < 32 ? names[reg] : "f?";
}

std::string
disasm(const DecodedInst &di)
{
    char buf[96];
    Op op = di.op;
    const char *rd = writesFpRd(op) ? fregName(di.rd) : regName(di.rd);
    const char *rs1 = readsFpRs1(op) ? fregName(di.rs1) : regName(di.rs1);
    const char *rs2 = readsFpRs2(op) ? fregName(di.rs2) : regName(di.rs2);

    if (op == Op::Illegal) {
        std::snprintf(buf, sizeof(buf), ".word 0x%08x", di.raw);
    } else if (isLoad(op)) {
        std::snprintf(buf, sizeof(buf), "%-8s %s, %lld(%s)", opName(op), rd,
                      static_cast<long long>(di.imm), rs1);
    } else if (isStore(op) && !isSc(op)) {
        std::snprintf(buf, sizeof(buf), "%-8s %s, %lld(%s)", opName(op), rs2,
                      static_cast<long long>(di.imm), rs1);
    } else if (isAmo(op) || isSc(op)) {
        std::snprintf(buf, sizeof(buf), "%-8s %s, %s, (%s)", opName(op), rd,
                      rs2, rs1);
    } else if (isCondBranch(op)) {
        std::snprintf(buf, sizeof(buf), "%-8s %s, %s, %+lld", opName(op),
                      rs1, rs2, static_cast<long long>(di.imm));
    } else if (op == Op::Jal) {
        std::snprintf(buf, sizeof(buf), "%-8s %s, %+lld", opName(op), rd,
                      static_cast<long long>(di.imm));
    } else if (op == Op::Jalr) {
        std::snprintf(buf, sizeof(buf), "%-8s %s, %lld(%s)", opName(op), rd,
                      static_cast<long long>(di.imm), rs1);
    } else if (op == Op::Lui || op == Op::Auipc) {
        std::snprintf(buf, sizeof(buf), "%-8s %s, 0x%llx", opName(op), rd,
                      static_cast<unsigned long long>(di.imm) >> 12);
    } else if (isCsr(op)) {
        std::snprintf(buf, sizeof(buf), "%-8s %s, 0x%03llx, %s", opName(op),
                      rd, static_cast<unsigned long long>(di.imm),
                      op >= Op::Csrrwi ? std::to_string(di.rs1).c_str()
                                       : rs1);
    } else if (hasRs3(op)) {
        std::snprintf(buf, sizeof(buf), "%-8s %s, %s, %s, %s", opName(op),
                      rd, rs1, rs2, fregName(di.rs3));
    } else if (di.imm != 0 || op == Op::Addi || op == Op::Slti ||
               op == Op::Sltiu || op == Op::Xori || op == Op::Ori ||
               op == Op::Andi || op == Op::Addiw || op == Op::Slli ||
               op == Op::Srli || op == Op::Srai) {
        std::snprintf(buf, sizeof(buf), "%-8s %s, %s, %lld", opName(op), rd,
                      rs1, static_cast<long long>(di.imm));
    } else {
        std::snprintf(buf, sizeof(buf), "%-8s %s, %s, %s", opName(op), rd,
                      rs1, rs2);
    }
    return buf;
}

} // namespace minjie::isa
