/**
 * @file
 * RV64 instruction encoder: the backend of the workload assembler and the
 * inverse of the decoder (used by roundtrip property tests).
 */

#ifndef MINJIE_ISA_ENCODE_H
#define MINJIE_ISA_ENCODE_H

#include <cstdint>

#include "isa/inst.h"

namespace minjie::isa {

/**
 * Encode @p di as a 32-bit instruction word.
 *
 * The relevant fields per format are taken from the DecodedInst:
 * registers from rd/rs1/rs2/rs3, the immediate (or CSR number, or shift
 * amount) from imm, and the fp rounding mode from rm. Ops that cannot be
 * encoded (Illegal) return 0.
 */
uint32_t encode(const DecodedInst &di);

} // namespace minjie::isa

#endif // MINJIE_ISA_ENCODE_H
