/**
 * @file
 * Decoded-instruction representation shared by every interpreter and by
 * the XIANGSHAN cycle model.
 */

#ifndef MINJIE_ISA_INST_H
#define MINJIE_ISA_INST_H

#include <cstdint>

#include "isa/op.h"

namespace minjie::isa {

/**
 * One decoded RV64 instruction. Compressed instructions are expanded to
 * their 32-bit equivalents with @ref size set to 2.
 */
struct DecodedInst
{
    uint32_t raw = 0;     ///< original encoding (16-bit in low half for RVC)
    Op op = Op::Illegal;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    uint8_t rs3 = 0;      ///< FMA third operand
    uint8_t size = 4;     ///< 2 for compressed, 4 otherwise
    uint8_t rm = 0;       ///< fp rounding mode field (7 = dynamic)
    int64_t imm = 0;      ///< sign-extended immediate (csr number for Zicsr)

    bool valid() const { return op != Op::Illegal; }
};

} // namespace minjie::isa

#endif // MINJIE_ISA_INST_H
