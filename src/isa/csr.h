/**
 * @file
 * CSR addresses and field masks for the machine/supervisor-mode subset
 * implemented by both the reference models and the cycle model.
 */

#ifndef MINJIE_ISA_CSR_H
#define MINJIE_ISA_CSR_H

#include <cstdint>

namespace minjie::isa {

/** CSR address space (12-bit). */
enum Csr : uint16_t {
    // Unprivileged
    CSR_FFLAGS = 0x001,
    CSR_FRM = 0x002,
    CSR_FCSR = 0x003,
    CSR_CYCLE = 0xc00,
    CSR_TIME = 0xc01,
    CSR_INSTRET = 0xc02,

    // Supervisor
    CSR_SSTATUS = 0x100,
    CSR_SIE = 0x104,
    CSR_STVEC = 0x105,
    CSR_SCOUNTEREN = 0x106,
    CSR_SSCRATCH = 0x140,
    CSR_SEPC = 0x141,
    CSR_SCAUSE = 0x142,
    CSR_STVAL = 0x143,
    CSR_SIP = 0x144,
    CSR_SATP = 0x180,

    // Machine
    CSR_MVENDORID = 0xf11,
    CSR_MARCHID = 0xf12,
    CSR_MIMPID = 0xf13,
    CSR_MHARTID = 0xf14,
    CSR_MSTATUS = 0x300,
    CSR_MISA = 0x301,
    CSR_MEDELEG = 0x302,
    CSR_MIDELEG = 0x303,
    CSR_MIE = 0x304,
    CSR_MTVEC = 0x305,
    CSR_MCOUNTEREN = 0x306,
    CSR_MSCRATCH = 0x340,
    CSR_MEPC = 0x341,
    CSR_MCAUSE = 0x342,
    CSR_MTVAL = 0x343,
    CSR_MIP = 0x344,
    CSR_PMPCFG0 = 0x3a0,
    CSR_PMPADDR0 = 0x3b0,
    CSR_MCYCLE = 0xb00,
    CSR_MINSTRET = 0xb02,
    CSR_MHPMCOUNTER3 = 0xb03,
    CSR_MHPMEVENT3 = 0x323,
    CSR_TSELECT = 0x7a0,
    CSR_TDATA1 = 0x7a1,
};

// mstatus fields.
constexpr uint64_t MSTATUS_SIE = 1ULL << 1;
constexpr uint64_t MSTATUS_MIE = 1ULL << 3;
constexpr uint64_t MSTATUS_SPIE = 1ULL << 5;
constexpr uint64_t MSTATUS_MPIE = 1ULL << 7;
constexpr uint64_t MSTATUS_SPP = 1ULL << 8;
constexpr uint64_t MSTATUS_MPP = 3ULL << 11;
constexpr uint64_t MSTATUS_FS = 3ULL << 13;
constexpr uint64_t MSTATUS_MPRV = 1ULL << 17;
constexpr uint64_t MSTATUS_SUM = 1ULL << 18;
constexpr uint64_t MSTATUS_MXR = 1ULL << 19;
constexpr uint64_t MSTATUS_TVM = 1ULL << 20;
constexpr uint64_t MSTATUS_TW = 1ULL << 21;
constexpr uint64_t MSTATUS_TSR = 1ULL << 22;
constexpr uint64_t MSTATUS_UXL = 3ULL << 32;
constexpr uint64_t MSTATUS_SXL = 3ULL << 34;
constexpr uint64_t MSTATUS_SD = 1ULL << 63;

// mip/mie bits.
constexpr uint64_t MIP_SSIP = 1ULL << 1;
constexpr uint64_t MIP_MSIP = 1ULL << 3;
constexpr uint64_t MIP_STIP = 1ULL << 5;
constexpr uint64_t MIP_MTIP = 1ULL << 7;
constexpr uint64_t MIP_SEIP = 1ULL << 9;
constexpr uint64_t MIP_MEIP = 1ULL << 11;

// satp fields (Sv39).
constexpr uint64_t SATP_MODE_SHIFT = 60;
constexpr uint64_t SATP_MODE_BARE = 0;
constexpr uint64_t SATP_MODE_SV39 = 8;
constexpr uint64_t SATP_PPN_MASK = (1ULL << 44) - 1;

/** The sstatus view is a masked window onto mstatus. */
constexpr uint64_t SSTATUS_MASK =
    MSTATUS_SIE | MSTATUS_SPIE | MSTATUS_SPP | MSTATUS_FS | MSTATUS_SUM |
    MSTATUS_MXR | MSTATUS_UXL | MSTATUS_SD;

/** Delegable-to-S interrupt bits. */
constexpr uint64_t SIP_MASK = MIP_SSIP | MIP_STIP | MIP_SEIP;

} // namespace minjie::isa

#endif // MINJIE_ISA_CSR_H
