#include "isa/encode.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace minjie::isa {

namespace {

uint32_t
encR(unsigned opcode, unsigned f3, unsigned f7, unsigned rd, unsigned rs1,
     unsigned rs2)
{
    return opcode | (rd << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) |
           (f7 << 25);
}

uint32_t
encI(unsigned opcode, unsigned f3, unsigned rd, unsigned rs1, int64_t imm)
{
    return opcode | (rd << 7) | (f3 << 12) | (rs1 << 15) |
           (static_cast<uint32_t>(imm & 0xfff) << 20);
}

uint32_t
encS(unsigned opcode, unsigned f3, unsigned rs1, unsigned rs2, int64_t imm)
{
    uint32_t i = static_cast<uint32_t>(imm & 0xfff);
    return opcode | ((i & 0x1f) << 7) | (f3 << 12) | (rs1 << 15) |
           (rs2 << 20) | ((i >> 5) << 25);
}

uint32_t
encB(unsigned opcode, unsigned f3, unsigned rs1, unsigned rs2, int64_t imm)
{
    uint32_t i = static_cast<uint32_t>(imm & 0x1fff);
    return opcode | (((i >> 11) & 1) << 7) | (((i >> 1) & 0xf) << 8) |
           (f3 << 12) | (rs1 << 15) | (rs2 << 20) |
           (((i >> 5) & 0x3f) << 25) | (((i >> 12) & 1) << 31);
}

uint32_t
encU(unsigned opcode, unsigned rd, int64_t imm)
{
    return opcode | (rd << 7) |
           (static_cast<uint32_t>((imm >> 12) & 0xfffff) << 12);
}

uint32_t
encJ(unsigned opcode, unsigned rd, int64_t imm)
{
    uint32_t i = static_cast<uint32_t>(imm & 0x1fffff);
    return opcode | (rd << 7) | (((i >> 12) & 0xff) << 12) |
           (((i >> 11) & 1) << 20) | (((i >> 1) & 0x3ff) << 21) |
           (((i >> 20) & 1) << 31);
}

uint32_t
encShift(unsigned f3, unsigned f6, unsigned rd, unsigned rs1, int64_t shamt)
{
    return encI(0x13, f3, rd, rs1,
                static_cast<int64_t>((f6 << 6) | (shamt & 0x3f)));
}

uint32_t
encShiftW(unsigned f3, unsigned f7, unsigned rd, unsigned rs1, int64_t shamt)
{
    return encI(0x1b, f3, rd, rs1,
                static_cast<int64_t>((f7 << 5) | (shamt & 0x1f)));
}

uint32_t
encAmo(unsigned f5, unsigned f3, unsigned rd, unsigned rs1, unsigned rs2)
{
    // aq/rl bits left clear.
    return encR(0x2f, f3, f5 << 2, rd, rs1, rs2);
}

uint32_t
encFpR(unsigned f7, unsigned rm, unsigned rd, unsigned rs1, unsigned rs2)
{
    return encR(0x53, rm, f7, rd, rs1, rs2);
}

uint32_t
encFma(unsigned opcode, unsigned fmt, const DecodedInst &di)
{
    return opcode | (di.rd << 7) | (di.rm << 12) | (di.rs1 << 15) |
           (di.rs2 << 20) | (fmt << 25) |
           (static_cast<uint32_t>(di.rs3) << 27);
}

uint32_t
encUnary(unsigned opcode, unsigned f3, unsigned f7, unsigned sub,
         unsigned rd, unsigned rs1)
{
    return encR(opcode, f3, f7, rd, rs1, sub);
}

} // namespace

uint32_t
encode(const DecodedInst &di)
{
    unsigned rd = di.rd, rs1 = di.rs1, rs2 = di.rs2;
    int64_t imm = di.imm;
    switch (di.op) {
      case Op::Lui: return encU(0x37, rd, imm);
      case Op::Auipc: return encU(0x17, rd, imm);
      case Op::Jal: return encJ(0x6f, rd, imm);
      case Op::Jalr: return encI(0x67, 0, rd, rs1, imm);
      case Op::Beq: return encB(0x63, 0, rs1, rs2, imm);
      case Op::Bne: return encB(0x63, 1, rs1, rs2, imm);
      case Op::Blt: return encB(0x63, 4, rs1, rs2, imm);
      case Op::Bge: return encB(0x63, 5, rs1, rs2, imm);
      case Op::Bltu: return encB(0x63, 6, rs1, rs2, imm);
      case Op::Bgeu: return encB(0x63, 7, rs1, rs2, imm);
      case Op::Lb: return encI(0x03, 0, rd, rs1, imm);
      case Op::Lh: return encI(0x03, 1, rd, rs1, imm);
      case Op::Lw: return encI(0x03, 2, rd, rs1, imm);
      case Op::Ld: return encI(0x03, 3, rd, rs1, imm);
      case Op::Lbu: return encI(0x03, 4, rd, rs1, imm);
      case Op::Lhu: return encI(0x03, 5, rd, rs1, imm);
      case Op::Lwu: return encI(0x03, 6, rd, rs1, imm);
      case Op::Sb: return encS(0x23, 0, rs1, rs2, imm);
      case Op::Sh: return encS(0x23, 1, rs1, rs2, imm);
      case Op::Sw: return encS(0x23, 2, rs1, rs2, imm);
      case Op::Sd: return encS(0x23, 3, rs1, rs2, imm);
      case Op::Addi: return encI(0x13, 0, rd, rs1, imm);
      case Op::Slti: return encI(0x13, 2, rd, rs1, imm);
      case Op::Sltiu: return encI(0x13, 3, rd, rs1, imm);
      case Op::Xori: return encI(0x13, 4, rd, rs1, imm);
      case Op::Ori: return encI(0x13, 6, rd, rs1, imm);
      case Op::Andi: return encI(0x13, 7, rd, rs1, imm);
      case Op::Slli: return encShift(1, 0x00, rd, rs1, imm);
      case Op::Srli: return encShift(5, 0x00, rd, rs1, imm);
      case Op::Srai: return encShift(5, 0x10, rd, rs1, imm);
      case Op::Rori: return encShift(5, 0x18, rd, rs1, imm);
      case Op::Add: return encR(0x33, 0, 0x00, rd, rs1, rs2);
      case Op::Sub: return encR(0x33, 0, 0x20, rd, rs1, rs2);
      case Op::Sll: return encR(0x33, 1, 0x00, rd, rs1, rs2);
      case Op::Slt: return encR(0x33, 2, 0x00, rd, rs1, rs2);
      case Op::Sltu: return encR(0x33, 3, 0x00, rd, rs1, rs2);
      case Op::Xor: return encR(0x33, 4, 0x00, rd, rs1, rs2);
      case Op::Srl: return encR(0x33, 5, 0x00, rd, rs1, rs2);
      case Op::Sra: return encR(0x33, 5, 0x20, rd, rs1, rs2);
      case Op::Or: return encR(0x33, 6, 0x00, rd, rs1, rs2);
      case Op::And: return encR(0x33, 7, 0x00, rd, rs1, rs2);
      case Op::Addiw: return encI(0x1b, 0, rd, rs1, imm);
      case Op::Slliw: return encShiftW(1, 0x00, rd, rs1, imm);
      case Op::Srliw: return encShiftW(5, 0x00, rd, rs1, imm);
      case Op::Sraiw: return encShiftW(5, 0x20, rd, rs1, imm);
      case Op::Roriw: return encShiftW(5, 0x30, rd, rs1, imm);
      case Op::Addw: return encR(0x3b, 0, 0x00, rd, rs1, rs2);
      case Op::Subw: return encR(0x3b, 0, 0x20, rd, rs1, rs2);
      case Op::Sllw: return encR(0x3b, 1, 0x00, rd, rs1, rs2);
      case Op::Srlw: return encR(0x3b, 5, 0x00, rd, rs1, rs2);
      case Op::Sraw: return encR(0x3b, 5, 0x20, rd, rs1, rs2);
      case Op::Fence: return encI(0x0f, 0, rd, rs1, imm);
      case Op::FenceI: return encI(0x0f, 1, rd, rs1, imm);
      case Op::Ecall: return 0x00000073;
      case Op::Ebreak: return 0x00100073;
      case Op::Mul: return encR(0x33, 0, 0x01, rd, rs1, rs2);
      case Op::Mulh: return encR(0x33, 1, 0x01, rd, rs1, rs2);
      case Op::Mulhsu: return encR(0x33, 2, 0x01, rd, rs1, rs2);
      case Op::Mulhu: return encR(0x33, 3, 0x01, rd, rs1, rs2);
      case Op::Div: return encR(0x33, 4, 0x01, rd, rs1, rs2);
      case Op::Divu: return encR(0x33, 5, 0x01, rd, rs1, rs2);
      case Op::Rem: return encR(0x33, 6, 0x01, rd, rs1, rs2);
      case Op::Remu: return encR(0x33, 7, 0x01, rd, rs1, rs2);
      case Op::Mulw: return encR(0x3b, 0, 0x01, rd, rs1, rs2);
      case Op::Divw: return encR(0x3b, 4, 0x01, rd, rs1, rs2);
      case Op::Divuw: return encR(0x3b, 5, 0x01, rd, rs1, rs2);
      case Op::Remw: return encR(0x3b, 6, 0x01, rd, rs1, rs2);
      case Op::Remuw: return encR(0x3b, 7, 0x01, rd, rs1, rs2);
      case Op::LrW: return encAmo(0x02, 2, rd, rs1, 0);
      case Op::ScW: return encAmo(0x03, 2, rd, rs1, rs2);
      case Op::AmoSwapW: return encAmo(0x01, 2, rd, rs1, rs2);
      case Op::AmoAddW: return encAmo(0x00, 2, rd, rs1, rs2);
      case Op::AmoXorW: return encAmo(0x04, 2, rd, rs1, rs2);
      case Op::AmoAndW: return encAmo(0x0c, 2, rd, rs1, rs2);
      case Op::AmoOrW: return encAmo(0x08, 2, rd, rs1, rs2);
      case Op::AmoMinW: return encAmo(0x10, 2, rd, rs1, rs2);
      case Op::AmoMaxW: return encAmo(0x14, 2, rd, rs1, rs2);
      case Op::AmoMinuW: return encAmo(0x18, 2, rd, rs1, rs2);
      case Op::AmoMaxuW: return encAmo(0x1c, 2, rd, rs1, rs2);
      case Op::LrD: return encAmo(0x02, 3, rd, rs1, 0);
      case Op::ScD: return encAmo(0x03, 3, rd, rs1, rs2);
      case Op::AmoSwapD: return encAmo(0x01, 3, rd, rs1, rs2);
      case Op::AmoAddD: return encAmo(0x00, 3, rd, rs1, rs2);
      case Op::AmoXorD: return encAmo(0x04, 3, rd, rs1, rs2);
      case Op::AmoAndD: return encAmo(0x0c, 3, rd, rs1, rs2);
      case Op::AmoOrD: return encAmo(0x08, 3, rd, rs1, rs2);
      case Op::AmoMinD: return encAmo(0x10, 3, rd, rs1, rs2);
      case Op::AmoMaxD: return encAmo(0x14, 3, rd, rs1, rs2);
      case Op::AmoMinuD: return encAmo(0x18, 3, rd, rs1, rs2);
      case Op::AmoMaxuD: return encAmo(0x1c, 3, rd, rs1, rs2);
      case Op::Flw: return encI(0x07, 2, rd, rs1, imm);
      case Op::Fld: return encI(0x07, 3, rd, rs1, imm);
      case Op::Fsw: return encS(0x27, 2, rs1, rs2, imm);
      case Op::Fsd: return encS(0x27, 3, rs1, rs2, imm);
      case Op::FaddS: return encFpR(0x00, di.rm, rd, rs1, rs2);
      case Op::FsubS: return encFpR(0x04, di.rm, rd, rs1, rs2);
      case Op::FmulS: return encFpR(0x08, di.rm, rd, rs1, rs2);
      case Op::FdivS: return encFpR(0x0c, di.rm, rd, rs1, rs2);
      case Op::FsqrtS: return encFpR(0x2c, di.rm, rd, rs1, 0);
      case Op::FsgnjS: return encFpR(0x10, 0, rd, rs1, rs2);
      case Op::FsgnjnS: return encFpR(0x10, 1, rd, rs1, rs2);
      case Op::FsgnjxS: return encFpR(0x10, 2, rd, rs1, rs2);
      case Op::FminS: return encFpR(0x14, 0, rd, rs1, rs2);
      case Op::FmaxS: return encFpR(0x14, 1, rd, rs1, rs2);
      case Op::FcvtWS: return encFpR(0x60, di.rm, rd, rs1, 0);
      case Op::FcvtWuS: return encFpR(0x60, di.rm, rd, rs1, 1);
      case Op::FcvtLS: return encFpR(0x60, di.rm, rd, rs1, 2);
      case Op::FcvtLuS: return encFpR(0x60, di.rm, rd, rs1, 3);
      case Op::FcvtSW: return encFpR(0x68, di.rm, rd, rs1, 0);
      case Op::FcvtSWu: return encFpR(0x68, di.rm, rd, rs1, 1);
      case Op::FcvtSL: return encFpR(0x68, di.rm, rd, rs1, 2);
      case Op::FcvtSLu: return encFpR(0x68, di.rm, rd, rs1, 3);
      case Op::FmvXW: return encFpR(0x70, 0, rd, rs1, 0);
      case Op::FmvWX: return encFpR(0x78, 0, rd, rs1, 0);
      case Op::FeqS: return encFpR(0x50, 2, rd, rs1, rs2);
      case Op::FltS: return encFpR(0x50, 1, rd, rs1, rs2);
      case Op::FleS: return encFpR(0x50, 0, rd, rs1, rs2);
      case Op::FclassS: return encFpR(0x70, 1, rd, rs1, 0);
      case Op::FmaddS: return encFma(0x43, 0, di);
      case Op::FmsubS: return encFma(0x47, 0, di);
      case Op::FnmsubS: return encFma(0x4b, 0, di);
      case Op::FnmaddS: return encFma(0x4f, 0, di);
      case Op::FaddD: return encFpR(0x01, di.rm, rd, rs1, rs2);
      case Op::FsubD: return encFpR(0x05, di.rm, rd, rs1, rs2);
      case Op::FmulD: return encFpR(0x09, di.rm, rd, rs1, rs2);
      case Op::FdivD: return encFpR(0x0d, di.rm, rd, rs1, rs2);
      case Op::FsqrtD: return encFpR(0x2d, di.rm, rd, rs1, 0);
      case Op::FsgnjD: return encFpR(0x11, 0, rd, rs1, rs2);
      case Op::FsgnjnD: return encFpR(0x11, 1, rd, rs1, rs2);
      case Op::FsgnjxD: return encFpR(0x11, 2, rd, rs1, rs2);
      case Op::FminD: return encFpR(0x15, 0, rd, rs1, rs2);
      case Op::FmaxD: return encFpR(0x15, 1, rd, rs1, rs2);
      case Op::FcvtWD: return encFpR(0x61, di.rm, rd, rs1, 0);
      case Op::FcvtWuD: return encFpR(0x61, di.rm, rd, rs1, 1);
      case Op::FcvtLD: return encFpR(0x61, di.rm, rd, rs1, 2);
      case Op::FcvtLuD: return encFpR(0x61, di.rm, rd, rs1, 3);
      case Op::FcvtDW: return encFpR(0x69, di.rm, rd, rs1, 0);
      case Op::FcvtDWu: return encFpR(0x69, di.rm, rd, rs1, 1);
      case Op::FcvtDL: return encFpR(0x69, di.rm, rd, rs1, 2);
      case Op::FcvtDLu: return encFpR(0x69, di.rm, rd, rs1, 3);
      case Op::FcvtSD: return encFpR(0x20, di.rm, rd, rs1, 1);
      case Op::FcvtDS: return encFpR(0x21, di.rm, rd, rs1, 0);
      case Op::FmvXD: return encFpR(0x71, 0, rd, rs1, 0);
      case Op::FmvDX: return encFpR(0x79, 0, rd, rs1, 0);
      case Op::FeqD: return encFpR(0x51, 2, rd, rs1, rs2);
      case Op::FltD: return encFpR(0x51, 1, rd, rs1, rs2);
      case Op::FleD: return encFpR(0x51, 0, rd, rs1, rs2);
      case Op::FclassD: return encFpR(0x71, 1, rd, rs1, 0);
      case Op::FmaddD: return encFma(0x43, 1, di);
      case Op::FmsubD: return encFma(0x47, 1, di);
      case Op::FnmsubD: return encFma(0x4b, 1, di);
      case Op::FnmaddD: return encFma(0x4f, 1, di);
      case Op::Csrrw: return encI(0x73, 1, rd, rs1, imm);
      case Op::Csrrs: return encI(0x73, 2, rd, rs1, imm);
      case Op::Csrrc: return encI(0x73, 3, rd, rs1, imm);
      case Op::Csrrwi: return encI(0x73, 5, rd, rs1, imm);
      case Op::Csrrsi: return encI(0x73, 6, rd, rs1, imm);
      case Op::Csrrci: return encI(0x73, 7, rd, rs1, imm);
      case Op::Mret: return 0x30200073;
      case Op::Sret: return 0x10200073;
      case Op::Wfi: return 0x10500073;
      case Op::SfenceVma: return encR(0x73, 0, 0x09, 0, rs1, rs2);
      case Op::AddUw: return encR(0x3b, 0, 0x04, rd, rs1, rs2);
      case Op::Sh1add: return encR(0x33, 2, 0x10, rd, rs1, rs2);
      case Op::Sh2add: return encR(0x33, 4, 0x10, rd, rs1, rs2);
      case Op::Sh3add: return encR(0x33, 6, 0x10, rd, rs1, rs2);
      case Op::Sh1addUw: return encR(0x3b, 2, 0x10, rd, rs1, rs2);
      case Op::Sh2addUw: return encR(0x3b, 4, 0x10, rd, rs1, rs2);
      case Op::Sh3addUw: return encR(0x3b, 6, 0x10, rd, rs1, rs2);
      case Op::SlliUw:
        return encI(0x1b, 1, rd, rs1,
                    static_cast<int64_t>((0x02ULL << 6) | (imm & 0x3f)));
      case Op::Andn: return encR(0x33, 7, 0x20, rd, rs1, rs2);
      case Op::Orn: return encR(0x33, 6, 0x20, rd, rs1, rs2);
      case Op::Xnor: return encR(0x33, 4, 0x20, rd, rs1, rs2);
      case Op::Clz: return encUnary(0x13, 1, 0x30, 0, rd, rs1);
      case Op::Ctz: return encUnary(0x13, 1, 0x30, 1, rd, rs1);
      case Op::Cpop: return encUnary(0x13, 1, 0x30, 2, rd, rs1);
      case Op::Clzw: return encUnary(0x1b, 1, 0x30, 0, rd, rs1);
      case Op::Ctzw: return encUnary(0x1b, 1, 0x30, 1, rd, rs1);
      case Op::Cpopw: return encUnary(0x1b, 1, 0x30, 2, rd, rs1);
      case Op::Max: return encR(0x33, 6, 0x05, rd, rs1, rs2);
      case Op::Maxu: return encR(0x33, 7, 0x05, rd, rs1, rs2);
      case Op::Min: return encR(0x33, 4, 0x05, rd, rs1, rs2);
      case Op::Minu: return encR(0x33, 5, 0x05, rd, rs1, rs2);
      case Op::SextB: return encUnary(0x13, 1, 0x30, 4, rd, rs1);
      case Op::SextH: return encUnary(0x13, 1, 0x30, 5, rd, rs1);
      case Op::ZextH: return encR(0x3b, 4, 0x04, rd, rs1, 0);
      case Op::Rol: return encR(0x33, 1, 0x30, rd, rs1, rs2);
      case Op::Ror: return encR(0x33, 5, 0x30, rd, rs1, rs2);
      case Op::Rolw: return encR(0x3b, 1, 0x30, rd, rs1, rs2);
      case Op::Rorw: return encR(0x3b, 5, 0x30, rd, rs1, rs2);
      case Op::OrcB: return encI(0x13, 5, rd, rs1, 0x287);
      case Op::Rev8: return encI(0x13, 5, rd, rs1, 0x6b8);
      case Op::Illegal:
      default:
        return 0;
    }
}

} // namespace minjie::isa
