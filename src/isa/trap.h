/**
 * @file
 * RISC-V trap causes and the trap descriptor passed between the executor
 * and the privilege logic.
 */

#ifndef MINJIE_ISA_TRAP_H
#define MINJIE_ISA_TRAP_H

#include <cstdint>

namespace minjie::isa {

/** Synchronous exception causes (mcause values, interrupt bit clear). */
enum class Exc : uint64_t {
    InstAddrMisaligned = 0,
    InstAccessFault = 1,
    IllegalInst = 2,
    Breakpoint = 3,
    LoadAddrMisaligned = 4,
    LoadAccessFault = 5,
    StoreAddrMisaligned = 6,
    StoreAccessFault = 7,
    EcallFromU = 8,
    EcallFromS = 9,
    EcallFromM = 11,
    InstPageFault = 12,
    LoadPageFault = 13,
    StorePageFault = 15,
    None = ~0ULL,
};

/** Interrupt causes (mcause values with the interrupt bit set). */
enum class Irq : uint64_t {
    SSoft = 1,
    MSoft = 3,
    STimer = 5,
    MTimer = 7,
    SExt = 9,
    MExt = 11,
};

/** Privilege levels. */
enum class Priv : uint8_t { U = 0, S = 1, M = 3 };

/** A pending trap: exception cause plus the trap value (tval). */
struct Trap
{
    Exc cause = Exc::None;
    uint64_t tval = 0;

    bool pending() const { return cause != Exc::None; }
    static Trap none() { return {}; }
    static Trap make(Exc cause, uint64_t tval = 0) { return {cause, tval}; }
};

/** True when @p exc is a page fault (the DRAV page-fault rule cares). */
inline bool
isPageFault(Exc exc)
{
    return exc == Exc::InstPageFault || exc == Exc::LoadPageFault ||
           exc == Exc::StorePageFault;
}

} // namespace minjie::isa

#endif // MINJIE_ISA_TRAP_H
