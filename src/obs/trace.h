/**
 * @file
 * Fixed-capacity ring-buffer event tracer: typed pipeline/memory
 * records cheap enough to leave attached during co-simulation
 * (FERIVer-style always-on capture around the DiffTest boundary).
 *
 * Fork-safety contract (MJ-FRK): record() touches only pre-allocated
 * memory — no locks, no heap growth, no stdio — so a LightSSS fork can
 * happen between any two events and both processes keep consistent,
 * independent buffers. All allocation happens once, in the
 * constructor; all I/O lives in the serialization helpers the *driver*
 * calls after the run (see serialize.h).
 */

#ifndef MINJIE_OBS_TRACE_H
#define MINJIE_OBS_TRACE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace minjie::obs {

/** Typed trace-event kinds. Values are part of the .mjt format. */
enum class Ev : uint8_t {
    Fetch = 0,       ///< pc fetched; arg0 = fetch-group size
    Rename = 1,      ///< uop renamed/dispatched; arg0 = rob occupancy
    Issue = 2,       ///< uop issued; arg0 = issue latency
    Commit = 3,      ///< instruction retired; arg0 = rdValue, arg1 = rd
    CacheMiss = 4,   ///< arg0 = line addr, arg1 = level (1/2/3)
    CacheTxn = 5,    ///< coherence txn; arg0 = line, arg1 = kind
    TlbWalk = 6,     ///< page-table walk; arg0 = vaddr
    StoreDrain = 7,  ///< store buffer drain; arg0 = paddr, arg1 = data
    Block = 8,       ///< REF basic block; arg0 = length
    FaultInject = 9, ///< test-only fault hook fired; arg0 = detail
    Divergence = 10, ///< DiffTest mismatch; arg0 = instr count
};

/** Printable name for an event kind (stable, used in reports). */
const char *evName(Ev kind);

/** One trace record; fixed 32-byte layout, POD. */
struct TraceEvent
{
    Cycle cycle = 0;   ///< DUT cycle (or REF instruction index)
    Addr pc = 0;       ///< program counter associated with the event
    uint64_t arg0 = 0; ///< kind-specific payload (see Ev)
    uint32_t arg1 = 0; ///< kind-specific payload (see Ev)
    Ev kind = Ev::Fetch;
    uint8_t hart = 0;  ///< originating hart
    uint16_t aux = 0;  ///< kind-specific small payload
};

/**
 * Pre-allocated ring buffer of TraceEvents. Capacity is fixed at
 * construction; once full, new events overwrite the oldest, so the
 * buffer always holds the most recent window — exactly what a
 * divergence post-mortem needs.
 */
class TraceBuffer
{
  public:
    explicit TraceBuffer(size_t capacity)
        : ring_(capacity ? capacity : 1)
    {
    }

    /** Append one event; O(1), no allocation, fork-safe. */
    void
    record(const TraceEvent &e)
    {
        ring_[head_] = e;
        head_ = (head_ + 1) % ring_.size();
        if (size_ < ring_.size())
            ++size_;
        ++recorded_;
    }

    void
    record(Ev kind, Cycle cycle, Addr pc, uint64_t arg0 = 0,
           uint32_t arg1 = 0, uint8_t hart = 0, uint16_t aux = 0)
    {
        TraceEvent e;
        e.cycle = cycle;
        e.pc = pc;
        e.arg0 = arg0;
        e.arg1 = arg1;
        e.kind = kind;
        e.hart = hart;
        e.aux = aux;
        record(e);
    }

    size_t capacity() const { return ring_.size(); }
    size_t size() const { return size_; }

    /** Total events ever recorded, including overwritten ones. */
    uint64_t recorded() const { return recorded_; }

    /** Events in recording order, oldest first. */
    std::vector<TraceEvent> events() const;

    /** The most recent @p k events, oldest first. */
    std::vector<TraceEvent> lastK(size_t k) const;

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
        recorded_ = 0;
    }

  private:
    std::vector<TraceEvent> ring_;
    size_t head_ = 0;
    size_t size_ = 0;
    uint64_t recorded_ = 0;
};

} // namespace minjie::obs

#endif // MINJIE_OBS_TRACE_H
