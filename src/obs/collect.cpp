#include "obs/collect.h"

#include <string>

#include "archdb/archdb.h"
#include "iss/interp.h"
#include "nemu/nemu.h"
#include "uarch/hierarchy.h"
#include "xiangshan/soc.h"

namespace minjie::obs {

namespace {

void
collectCacheInto(CounterGroup &g, const uarch::Cache &cache)
{
    const auto &s = cache.stats();
    CounterGroup &c = g.group(cache.name());
    c.set("hits", s.hits);
    c.set("misses", s.misses);
    c.set("writebacks", s.writebacks);
    c.set("probes_received", s.probesReceived);
    c.set("upgrades", s.upgrades);
    c.set("mshr_stalls", s.mshrStalls);
}

void
collectTlbInto(CounterGroup &g, const char *name,
               const uarch::TlbStats &s)
{
    CounterGroup &t = g.group(name);
    t.set("hits", s.hits);
    t.set("misses", s.misses);
}

void
collectMmuInto(CounterGroup &g, const iss::MmuStats &s)
{
    CounterGroup &m = g.group("mmu");
    m.set("tlb_hits", s.tlbHits);
    m.set("tlb_misses", s.tlbMisses);
    m.set("page_walks", s.pageWalks);
    m.set("page_faults", s.pageFaults);
}

} // namespace

void
collectCore(CounterGroup &g, xs::Core &core)
{
    const xs::PerfCounters &p = core.perf();
    g.set("cycles", p.cycles);
    g.set("instrs", p.instrs);
    g.set("fetched_instrs", p.fetchedInstrs);
    g.set("branches", p.branches);
    g.set("branch_mispredicts", p.branchMispredicts);
    g.set("indirects", p.indirects);
    g.set("indirect_mispredicts", p.indirectMispredicts);
    g.set("loads", p.loads);
    g.set("stores", p.stores);
    g.set("store_forwards", p.storeForwards);
    g.set("fused_pairs", p.fusedPairs);
    g.set("moves_eliminated", p.movesEliminated);

    CounterGroup &fe = g.group("frontend");
    fe.set("fetch_stall_cycles", p.fetchStallCycles);
    fe.set("stall_mispredict", p.stallMispredict);
    fe.set("stall_serialize", p.stallSerialize);
    fe.set("stall_bubble", p.stallBubble);

    CounterGroup &be = g.group("backend");
    be.set("rob_full_stalls", p.robFullStalls);
    be.set("rs_full_stalls", p.rsFullStalls);
    be.set("high_priority_insts", p.highPriorityInsts);
    be.set("load_defers", p.loadDefers);

    CounterGroup &td = g.group("topdown");
    td.set("retiring", p.tdRetiring);
    td.set("frontend", p.tdFrontend);
    td.set("bad_speculation", p.tdBadSpec);
    td.set("backend_memory", p.tdBackendMem);
    td.set("backend_core", p.tdBackendCore);

    // Figure 15 ready-count distribution.
    CounterGroup &rh = g.group("ready_hist");
    for (unsigned b = 0; b < xs::PerfCounters::READY_BUCKETS; ++b)
        rh.set("bucket" + std::to_string(b), p.readyHist[b]);
    rh.set("samples", p.readySamples);

    // Host-speed metadata: how much of the run the event-driven model
    // fast-forwarded. Deliberately outside PerfCounters — the skipped
    // cycles are already charged to the counters above, and the
    // differential rig compares PerfCounters byte-for-byte across
    // model configurations.
    CounterGroup &sched = g.group("sched");
    sched.set("skipped_cycles", core.skippedCycles());
    sched.set("skip_jumps", core.skipJumps());

    collectMmuInto(g, core.oracleMmu().stats());
}

void
collectMem(CounterGroup &g, uarch::MemHierarchy &mem)
{
    for (unsigned c = 0; c < mem.numCores(); ++c) {
        collectCacheInto(g, mem.l1i(c));
        collectCacheInto(g, mem.l1d(c));
    }
    // Shared L2/L3 are deduplicated by cache name (group() fetches the
    // same node, set() overwrites with identical values).
    for (unsigned c = 0; c < mem.numCores(); ++c)
        if (const uarch::Cache *l2 = mem.l2(c))
            collectCacheInto(g, *l2);
    if (const uarch::Cache *l3 = mem.l3())
        collectCacheInto(g, *l3);
    g.set("dram_accesses", mem.dram().accesses());

    for (unsigned c = 0; c < mem.numCores(); ++c) {
        CounterGroup &tg = g.group("tlb" + std::to_string(c));
        collectTlbInto(tg, "itlb", mem.itlbPath(c).l1().stats());
        collectTlbInto(tg, "dtlb", mem.dtlbPath(c).l1().stats());
    }
}

void
collectSoc(CounterGroup &root, xs::Soc &soc)
{
    for (unsigned c = 0; c < soc.numCores(); ++c)
        collectCore(root.group("core" + std::to_string(c)),
                    soc.core(c));
    collectMem(root.group("mem"), soc.mem());
}

void
collectNemu(CounterGroup &g, nemu::Nemu &nemu)
{
    const nemu::NemuStats &s = nemu.stats();
    CounterGroup &n = g.group("nemu");
    n.set("uop_hits", s.uopHits);
    n.set("translations", s.translations);
    n.set("flushes", s.flushes);
    n.set("chain_resolves", s.chainResolves);
    n.set("superblock_jumps", s.superblockJumps);
    n.set("host_tlb_fills", s.hostTlbFills);
    n.set("host_tlb_flushes", s.hostTlbFlushes);
    collectMmuInto(g, nemu.mmu().stats());
}

void
collectInterp(CounterGroup &g, iss::Interp &interp)
{
    collectMmuInto(g, interp.mmu().stats());
    if (auto *spike = dynamic_cast<iss::SpikeInterp *>(&interp)) {
        CounterGroup &d = g.group("decode_cache");
        d.set("hits", spike->decodeCacheHits());
        d.set("misses", spike->decodeCacheMisses());
    }
}

void
attachCacheTrace(uarch::MemHierarchy &mem, TraceBuffer &trace)
{
    mem.addTxnLog([&trace](const uarch::Transaction &t) {
        trace.record(Ev::CacheTxn, t.at, t.line, t.line,
                     static_cast<uint32_t>(t.kind));
    });
    mem.setTrace(&trace);
}

void
exportToArchDB(archdb::ArchDB &db, const CounterSnapshot &snap)
{
    for (const auto &[k, v] : snap.values)
        db.recordCounter(k, v);
}

void
exportTraceToArchDB(archdb::ArchDB &db,
                    const std::vector<TraceEvent> &events)
{
    for (const auto &e : events)
        db.recordTraceEvent(e.cycle, evName(e.kind), e.pc, e.arg0,
                            e.arg1, e.hart);
}

} // namespace minjie::obs
