/**
 * @file
 * Top-down CPI-stack analyzer ("Towards Accurate Performance Modeling
 * of RISC-V Designs", arXiv:2106.09991): cycles attributed exclusively
 * to retiring / frontend / bad-speculation / backend-memory /
 * backend-core buckets. The XiangShan core model charges each cycle to
 * exactly one bucket (Core::classifyCycle), so sumsExactly() is an
 * invariant, not an approximation — the acceptance gate for
 * `minjie-trace report`.
 */

#ifndef MINJIE_OBS_TOPDOWN_H
#define MINJIE_OBS_TOPDOWN_H

#include <string>

#include "obs/counter.h"

namespace minjie::obs {

/** One core's top-down cycle accounting. */
struct CpiStack
{
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    uint64_t retiring = 0;
    uint64_t frontend = 0;
    uint64_t badSpec = 0;
    uint64_t backendMem = 0;
    uint64_t backendCore = 0;

    uint64_t
    bucketSum() const
    {
        return retiring + frontend + badSpec + backendMem + backendCore;
    }

    /** The exactness invariant: buckets partition the cycle count. */
    bool sumsExactly() const { return bucketSum() == cycles; }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instrs) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Bucket share of total cycles, in [0,1]. */
    double share(uint64_t bucket) const;

    /**
     * Rebuild a stack from a counter snapshot: reads
     * "<prefix>.cycles", "<prefix>.instrs" and the
     * "<prefix>.topdown.*" bucket counters (the names collectCore
     * emits).
     */
    static CpiStack fromCounters(const CounterSnapshot &snap,
                                 const std::string &prefix);

    /** Fixed-width human-readable table (deterministic output). */
    std::string table(const std::string &title) const;

    /** Compact JSON object. */
    std::string toJson() const;
};

} // namespace minjie::obs

#endif // MINJIE_OBS_TOPDOWN_H
