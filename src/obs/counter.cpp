#include "obs/counter.h"

#include <cstdlib>
#include <cstring>

#include "common/jsonw.h"

namespace minjie::obs {

bool
enabled()
{
    static const bool on = [] {
        const char *env = std::getenv("MINJIE_OBS");
        if (!env)
            return true;
        return std::strcmp(env, "off") != 0 &&
               std::strcmp(env, "0") != 0;
    }();
    return on;
}

CounterSnapshot
CounterSnapshot::delta(const CounterSnapshot &earlier) const
{
    CounterSnapshot d;
    for (const auto &[k, v] : values) {
        uint64_t before = earlier.get(k);
        d.values[k] = v >= before ? v - before : 0;
    }
    return d;
}

std::string
CounterSnapshot::toJson() const
{
    JsonWriter jw;
    jw.beginObject();
    for (const auto &[k, v] : values)
        jw.key(k).value(v);
    jw.endObject();
    return jw.str();
}

CounterGroup &
CounterGroup::group(const std::string &child)
{
    auto &slot = children_[child];
    if (!slot)
        slot = std::make_unique<CounterGroup>(child);
    return *slot;
}

uint64_t &
CounterGroup::counter(const std::string &counterName)
{
    return counters_[counterName];
}

void
CounterGroup::flattenInto(CounterSnapshot &out,
                          const std::string &prefix) const
{
    for (const auto &[k, v] : counters_)
        out.values[prefix.empty() ? k : prefix + "." + k] += v;
    for (const auto &[k, child] : children_)
        child->flattenInto(out, prefix.empty() ? k : prefix + "." + k);
}

} // namespace minjie::obs
