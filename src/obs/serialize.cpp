#include "obs/serialize.h"

#include <cstring>

#include "common/jsonw.h"

namespace minjie::obs {

namespace {

// Explicit little-endian primitives: the .mjt byte stream must be
// identical regardless of host endianness or struct padding.

void
putU8(std::string &out, uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU16(std::string &out, uint16_t v)
{
    for (int i = 0; i < 2; ++i)
        putU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        putU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        putU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out += s;
}

struct Reader
{
    const std::string &buf;
    size_t pos = 0;
    bool ok = true;

    bool
    need(size_t n)
    {
        if (pos + n > buf.size()) {
            ok = false;
            return false;
        }
        return true;
    }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return static_cast<uint8_t>(buf[pos++]);
    }

    uint16_t
    u16()
    {
        uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v = static_cast<uint16_t>(v | (static_cast<uint16_t>(u8())
                                           << (8 * i)));
        return v;
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(u8()) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(u8()) << (8 * i);
        return v;
    }

    std::string
    str()
    {
        uint32_t n = u32();
        if (!need(n))
            return {};
        std::string s = buf.substr(pos, n);
        pos += n;
        return s;
    }
};

constexpr char kMagic[4] = {'M', 'J', 'T', '1'};
constexpr uint32_t kVersion = 1;

} // namespace

std::string
serializeMjt(const RunArtifact &artifact)
{
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    putU32(out, kVersion);
    putStr(out, artifact.runLabel);

    putU32(out, static_cast<uint32_t>(artifact.counters.values.size()));
    for (const auto &[k, v] : artifact.counters.values) {
        putStr(out, k);
        putU64(out, v);
    }

    putU32(out, static_cast<uint32_t>(artifact.events.size()));
    for (const auto &e : artifact.events) {
        putU64(out, e.cycle);
        putU64(out, e.pc);
        putU64(out, e.arg0);
        putU32(out, e.arg1);
        putU8(out, static_cast<uint8_t>(e.kind));
        putU8(out, e.hart);
        putU16(out, e.aux);
    }
    return out;
}

bool
parseMjt(const std::string &bytes, RunArtifact &out)
{
    Reader r{bytes};
    if (!r.need(sizeof(kMagic)) ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return false;
    r.pos = sizeof(kMagic);
    if (r.u32() != kVersion)
        return false;

    RunArtifact a;
    a.runLabel = r.str();

    uint32_t nCounters = r.u32();
    for (uint32_t i = 0; i < nCounters && r.ok; ++i) {
        std::string k = r.str();
        uint64_t v = r.u64();
        a.counters.values[k] = v;
    }

    uint32_t nEvents = r.u32();
    for (uint32_t i = 0; i < nEvents && r.ok; ++i) {
        TraceEvent e;
        e.cycle = r.u64();
        e.pc = r.u64();
        e.arg0 = r.u64();
        e.arg1 = r.u32();
        e.kind = static_cast<Ev>(r.u8());
        e.hart = r.u8();
        e.aux = r.u16();
        a.events.push_back(e);
    }
    if (!r.ok || r.pos != bytes.size())
        return false;
    out = std::move(a);
    return true;
}

std::string
toChromeJson(const RunArtifact &artifact)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("displayTimeUnit").value("ns");
    jw.key("otherData").beginObject();
    jw.key("run").value(artifact.runLabel);
    for (const auto &[k, v] : artifact.counters.values)
        jw.key(k).value(v);
    jw.endObject();
    jw.key("traceEvents").beginArray();
    for (const auto &e : artifact.events) {
        jw.beginObject();
        jw.key("name").value(evName(e.kind));
        jw.key("ph").value("i");
        jw.key("s").value("t");
        jw.key("ts").value(e.cycle);
        jw.key("pid").value(1);
        jw.key("tid").value(static_cast<unsigned>(e.hart));
        jw.key("args").beginObject();
        jw.key("pc").hex(e.pc);
        jw.key("arg0").hex(e.arg0);
        jw.key("arg1").value(static_cast<uint64_t>(e.arg1));
        jw.key("aux").value(static_cast<uint64_t>(e.aux));
        jw.endObject();
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    return jw.str();
}

} // namespace minjie::obs
