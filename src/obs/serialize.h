/**
 * @file
 * Run-artifact serialization: a counter snapshot plus trace window
 * packed into the compact binary `.mjt` format, or rendered as Chrome
 * `trace_event` JSON (load chrome://tracing or ui.perfetto.dev).
 *
 * Everything here works on std::string buffers — file I/O stays in the
 * tools layer, keeping this module free of stdio (MJ-FRK) and easy to
 * golden-test byte-for-byte. The binary encoding is explicit
 * little-endian field-by-field (never memcpy of structs), so the bytes
 * are identical across hosts and compilers.
 */

#ifndef MINJIE_OBS_SERIALIZE_H
#define MINJIE_OBS_SERIALIZE_H

#include <string>
#include <tuple>

#include "obs/counter.h"
#include "obs/trace.h"

namespace minjie::obs {

/** Everything one recorded run produces. */
struct RunArtifact
{
    std::string runLabel;      ///< workload/config tag, e.g. "coremark@nh"
    CounterSnapshot counters;  ///< flattened counter tree at end of run
    std::vector<TraceEvent> events; ///< trace window, oldest first

    bool
    operator==(const RunArtifact &o) const
    {
        auto key = [](const TraceEvent &e) {
            return std::tuple(e.cycle, e.pc, e.arg0, e.arg1, e.kind,
                              e.hart, e.aux);
        };
        if (runLabel != o.runLabel || !(counters == o.counters) ||
            events.size() != o.events.size())
            return false;
        for (size_t i = 0; i < events.size(); ++i)
            if (key(events[i]) != key(o.events[i]))
                return false;
        return true;
    }
};

/** Encode to the binary .mjt format (magic "MJT1"). */
std::string serializeMjt(const RunArtifact &artifact);

/** Decode a .mjt buffer; returns false on malformed input. */
bool parseMjt(const std::string &bytes, RunArtifact &out);

/**
 * Chrome trace_event JSON: counters become a metadata record, events
 * become instant events with ts = cycle and tid = hart.
 */
std::string toChromeJson(const RunArtifact &artifact);

} // namespace minjie::obs

#endif // MINJIE_OBS_SERIALIZE_H
