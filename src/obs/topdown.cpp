#include "obs/topdown.h"

#include <cstdio>

#include "common/jsonw.h"

namespace minjie::obs {

double
CpiStack::share(uint64_t bucket) const
{
    return cycles ? static_cast<double>(bucket) /
                        static_cast<double>(cycles)
                  : 0.0;
}

CpiStack
CpiStack::fromCounters(const CounterSnapshot &snap,
                       const std::string &prefix)
{
    CpiStack s;
    auto at = [&](const char *leaf) {
        return snap.get(prefix + "." + leaf);
    };
    s.cycles = at("cycles");
    s.instrs = at("instrs");
    s.retiring = at("topdown.retiring");
    s.frontend = at("topdown.frontend");
    s.badSpec = at("topdown.bad_speculation");
    s.backendMem = at("topdown.backend_memory");
    s.backendCore = at("topdown.backend_core");
    return s;
}

std::string
CpiStack::table(const std::string &title) const
{
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "top-down CPI stack: %s\n"
                  "  cycles %llu  instrs %llu  ipc %.3f\n",
                  title.c_str(),
                  static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(instrs), ipc());
    out += line;
    struct Row
    {
        const char *name;
        uint64_t v;
    } rows[] = {
        {"retiring", retiring},         {"frontend", frontend},
        {"bad_speculation", badSpec},   {"backend_memory", backendMem},
        {"backend_core", backendCore},
    };
    for (const auto &r : rows) {
        unsigned bar =
            static_cast<unsigned>(share(r.v) * 40.0 + 0.5);
        std::snprintf(line, sizeof(line), "  %-16s %10llu  %5.1f%%  ",
                      r.name, static_cast<unsigned long long>(r.v),
                      share(r.v) * 100.0);
        out += line;
        for (unsigned i = 0; i < bar; ++i)
            out += '#';
        out += '\n';
    }
    std::snprintf(line, sizeof(line),
                  "  bucket sum %llu / cycles %llu (%s)\n",
                  static_cast<unsigned long long>(bucketSum()),
                  static_cast<unsigned long long>(cycles),
                  sumsExactly() ? "exact" : "MISMATCH");
    out += line;
    return out;
}

std::string
CpiStack::toJson() const
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("cycles").value(cycles);
    jw.key("instrs").value(instrs);
    jw.key("retiring").value(retiring);
    jw.key("frontend").value(frontend);
    jw.key("bad_speculation").value(badSpec);
    jw.key("backend_memory").value(backendMem);
    jw.key("backend_core").value(backendCore);
    jw.key("exact").value(sumsExactly());
    jw.endObject();
    return jw.str();
}

} // namespace minjie::obs
