#include "obs/trace.h"

namespace minjie::obs {

const char *
evName(Ev kind)
{
    switch (kind) {
      case Ev::Fetch: return "fetch";
      case Ev::Rename: return "rename";
      case Ev::Issue: return "issue";
      case Ev::Commit: return "commit";
      case Ev::CacheMiss: return "cache_miss";
      case Ev::CacheTxn: return "cache_txn";
      case Ev::TlbWalk: return "tlb_walk";
      case Ev::StoreDrain: return "store_drain";
      case Ev::Block: return "block";
      case Ev::FaultInject: return "fault_inject";
      case Ev::Divergence: return "divergence";
    }
    return "unknown";
}

std::vector<TraceEvent>
TraceBuffer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(size_);
    size_t start = (head_ + ring_.size() - size_) % ring_.size();
    for (size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

std::vector<TraceEvent>
TraceBuffer::lastK(size_t k) const
{
    if (k > size_)
        k = size_;
    std::vector<TraceEvent> out;
    out.reserve(k);
    size_t start = (head_ + ring_.size() - k) % ring_.size();
    for (size_t i = 0; i < k; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

} // namespace minjie::obs
