/**
 * @file
 * Hierarchical performance-counter tree (the observability layer's
 * metrics half; ROADMAP "tracing, metrics, profiling hooks").
 *
 * A CounterGroup is a named tree node holding counters and child
 * groups; flattening produces a CounterSnapshot keyed by dotted paths
 * ("core0.frontend.fetch_stall_cycles"). Snapshots are deterministic:
 * both the tree and the snapshot are sorted containers, so
 * serialization is byte-stable across hosts and runs, and merge() is
 * a commutative per-key sum, so sharded campaign workers aggregate
 * worker-count-invariantly.
 *
 * The tree is populated from the simulators' existing stats structs at
 * snapshot points (see collect.h), never from hot loops, so the layer
 * costs nothing when observability is off (MINJIE_OBS=off).
 */

#ifndef MINJIE_OBS_COUNTER_H
#define MINJIE_OBS_COUNTER_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace minjie::obs {

/**
 * Runtime master switch: false when the environment sets MINJIE_OBS to
 * "off" or "0". Read once per process; tools and drivers consult it
 * before attaching tracers or collecting counters.
 */
bool enabled();

/** Flattened, order-stable view of a counter tree. */
class CounterSnapshot
{
  public:
    /** Dotted path -> value; std::map keeps serialization byte-stable. */
    std::map<std::string, uint64_t> values;

    void
    set(const std::string &path, uint64_t v)
    {
        values[path] = v;
    }

    void
    add(const std::string &path, uint64_t v)
    {
        values[path] += v;
    }

    uint64_t
    get(const std::string &path) const
    {
        auto it = values.find(path);
        return it == values.end() ? 0 : it->second;
    }

    bool has(const std::string &path) const
    {
        return values.count(path) != 0;
    }

    /** Per-key sum; commutative and associative, so aggregating shard
     *  results in any grouping yields identical totals. */
    void
    merge(const CounterSnapshot &other)
    {
        for (const auto &[k, v] : other.values)
            values[k] += v;
    }

    /** Per-key `values[k] += other[k] * scale`: the integer-weighted
     *  merge the sampled-simulation reduction uses. Scaling every key
     *  by the same factor preserves any exact-sum relation between
     *  keys (sums are linear), so a weighted top-down stack still
     *  satisfies sumsExactly(). */
    void
    mergeScaled(const CounterSnapshot &other, uint64_t scale)
    {
        for (const auto &[k, v] : other.values)
            values[k] += v * scale;
    }

    /** this - earlier, clamped at zero per key (monotonic counters). */
    CounterSnapshot delta(const CounterSnapshot &earlier) const;

    bool
    operator==(const CounterSnapshot &o) const
    {
        return values == o.values;
    }

    /** Compact JSON object {"path":value,...} in key order. */
    std::string toJson() const;
};

/** One node of the counter tree. */
class CounterGroup
{
  public:
    explicit CounterGroup(std::string name = "") : name_(std::move(name))
    {
    }

    const std::string &name() const { return name_; }

    /** Fetch-or-create a child group. */
    CounterGroup &group(const std::string &child);

    /** Fetch-or-create a counter; returns a mutable reference. */
    uint64_t &counter(const std::string &counterName);

    void set(const std::string &c, uint64_t v) { counter(c) = v; }
    void add(const std::string &c, uint64_t v) { counter(c) += v; }

    /** Flatten this subtree into dotted-path entries under @p prefix
     *  (the group's own name is used when @p prefix is empty). */
    void flattenInto(CounterSnapshot &out, const std::string &prefix)
        const;

    CounterSnapshot
    snapshot() const
    {
        CounterSnapshot s;
        flattenInto(s, name_);
        return s;
    }

    void
    clear()
    {
        counters_.clear();
        children_.clear();
    }

    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }

  private:
    std::string name_;
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, std::unique_ptr<CounterGroup>> children_;
};

} // namespace minjie::obs

#endif // MINJIE_OBS_COUNTER_H
