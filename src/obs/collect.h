/**
 * @file
 * Collectors: walk the simulators' existing stats structs into the
 * hierarchical counter tree at snapshot points (end of run, campaign
 * job boundary). Pull-based by design — the hot loops stay untouched,
 * so observability off means literally zero work in the models.
 */

#ifndef MINJIE_OBS_COLLECT_H
#define MINJIE_OBS_COLLECT_H

#include "obs/counter.h"
#include "obs/trace.h"

namespace minjie::archdb {
class ArchDB;
}
namespace minjie::iss {
class Interp;
}
namespace minjie::nemu {
class Nemu;
}
namespace minjie::uarch {
class MemHierarchy;
}
namespace minjie::xs {
class Core;
class Soc;
}

namespace minjie::obs {

/** Pipeline + predictor + top-down counters of one core into @p g. */
void collectCore(CounterGroup &g, xs::Core &core);

/** Cache / TLB / DRAM counters of the hierarchy into @p g. */
void collectMem(CounterGroup &g, uarch::MemHierarchy &mem);

/** Whole SoC: per-core groups ("core0"...) plus a "mem" group. */
void collectSoc(CounterGroup &root, xs::Soc &soc);

/** NEMU uop-cache / chaining / host-TLB counters plus MMU stats. */
void collectNemu(CounterGroup &g, nemu::Nemu &nemu);

/** Generic interpreter: functional MMU stats (+ decode cache). */
void collectInterp(CounterGroup &g, iss::Interp &interp);

/** Subscribe @p trace to the hierarchy's coherence transactions
 *  (CacheTxn events) without disturbing other observers. */
void attachCacheTrace(uarch::MemHierarchy &mem, TraceBuffer &trace);

/** Stream a snapshot into ArchDB's "counters" table (key order). */
void exportToArchDB(archdb::ArchDB &db, const CounterSnapshot &snap);

/** Stream trace events into ArchDB's "trace_events" table. */
void exportTraceToArchDB(archdb::ArchDB &db,
                         const std::vector<TraceEvent> &events);

} // namespace minjie::obs

#endif // MINJIE_OBS_COLLECT_H
