/**
 * @file
 * Branch prediction components of the XIANGSHAN frontend (Table II):
 * micro-BTB, main BTB, a 4-table TAGE with statistical corrector, an
 * ITTAGE indirect-target predictor, and a return address stack.
 *
 * The predictors are real (tables, folded histories, allocation and
 * useful-bit policies), not oracles; their accuracy drives the cycle
 * model's misprediction penalties, and TAGE confidence feeds the PUBS
 * issue-policy case study (paper Section IV-D).
 */

#ifndef MINJIE_UARCH_PREDICTORS_H
#define MINJIE_UARCH_PREDICTORS_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace minjie::uarch {

/**
 * Prediction result with the confidence PUBS consumes, plus the table
 * indices/tags computed from the prediction-time history. Training at
 * commit uses these stored coordinates so allocation, lookup and update
 * always agree on the history context of a dynamic branch.
 */
struct CondPred
{
    bool taken = false;
    bool confident = true;  ///< strong provider counter and no SC dissent
    int provider = -1;      ///< tagged table that provided (-1 = base)
    uint32_t idx[4] = {};
    uint16_t tag[4] = {};
    uint32_t scIdx[2] = {};
    uint32_t baseIdx = 0;
};

/**
 * TAGE conditional predictor with 4 tagged tables and a statistical
 * corrector, plus a bimodal base table.
 */
class Tage
{
  public:
    /** @param totalEntries across tagged tables (paper: 16K) */
    explicit Tage(unsigned totalEntries = 16384, uint64_t seed = 42);

    /**
     * Predict the branch at @p pc using the current (fetch-time)
     * history. The caller must pushHistory() with the resolved
     * direction immediately afterwards (the cycle model's fetch always
     * follows the correct path, so no history repair is needed).
     */
    CondPred predict(Addr pc) const;

    /** Commit-time update using the coordinates saved at prediction. */
    void update(const CondPred &pred, bool taken);

    /** Fetch-time history push with the actual direction. */
    void pushHistory(bool taken);

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }

  private:
    struct TaggedEntry
    {
        uint16_t tag = 0;
        int8_t ctr = 0;   ///< -4..3 signed: >=0 means taken
        uint8_t useful = 0;
    };

    static constexpr unsigned N_TABLES = 4;
    static constexpr unsigned HIST_LEN[N_TABLES] = {8, 16, 32, 64};
    static constexpr unsigned TAG_BITS = 9;

    unsigned tableIndex(unsigned t, Addr pc) const;
    uint16_t tableTag(unsigned t, Addr pc) const;

    unsigned entriesPerTable_;
    unsigned indexBits_;
    std::vector<TaggedEntry> tables_[N_TABLES];
    std::vector<int8_t> base_; // bimodal: -2..1, >=0 taken
    uint64_t ghr_ = 0;         // 64-bit global history

    // Statistical corrector: per-table 6-bit signed counters summed
    // against the TAGE output.
    static constexpr unsigned SC_TABLES = 2;
    static constexpr unsigned SC_ENTRIES = 1024;
    std::vector<int8_t> sc_[SC_TABLES];
    int scThreshold_ = 6;

    uint64_t rngState_;
    mutable uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

/** ITTAGE prediction with stored table coordinates (same scheme as
 *  CondPred). */
struct IndirectPred
{
    Addr target = 0;
    uint32_t idx[2] = {};
    uint16_t tag[2] = {};
    uint32_t baseIdx = 0;
};

/** ITTAGE indirect-target predictor (two tagged tables over a base). */
class Ittage
{
  public:
    explicit Ittage(unsigned entries = 512);

    /** Predict the target of the indirect branch at @p pc. */
    IndirectPred predict(Addr pc) const;
    /** Commit-time update with the prediction-time coordinates. */
    void update(const IndirectPred &pred, Addr target);
    /** Fetch-time path-history push with the actual target. */
    void pushHistory(Addr target);

  private:
    struct Entry
    {
        uint16_t tag = 0;
        Addr target = 0;
        uint8_t conf = 0;
    };
    static constexpr unsigned HIST_LEN[2] = {8, 24};
    unsigned entries_;
    std::vector<Entry> tables_[2];
    std::vector<Addr> base_;
    uint64_t pathHist_ = 0;

    unsigned idx(unsigned t, Addr pc) const;
    uint16_t tag(unsigned t, Addr pc) const;
};

/** Direct-mapped micro-BTB: single-cycle next-line prediction. */
class MicroBtb
{
  public:
    explicit MicroBtb(unsigned entries) : entries_(entries),
        table_(entries) {}

    /** @return true on hit; fills @p target and @p taken bias. */
    bool
    predict(Addr pc, Addr &target, bool &taken) const
    {
        const auto &e = table_[index(pc)];
        if (e.valid && e.pc == pc) {
            target = e.target;
            taken = e.taken;
            return true;
        }
        return false;
    }

    void
    update(Addr pc, Addr target, bool taken)
    {
        auto &e = table_[index(pc)];
        e.valid = true;
        e.pc = pc;
        e.target = target;
        e.taken = taken;
    }

  private:
    struct Entry
    {
        bool valid = false;
        bool taken = false;
        Addr pc = 0;
        Addr target = 0;
    };
    unsigned
    index(Addr pc) const
    {
        return static_cast<unsigned>((pc >> 1) % entries_);
    }
    unsigned entries_;
    std::vector<Entry> table_;
};

/** 4-way set-associative BTB with true-LRU. */
class Btb
{
  public:
    explicit Btb(unsigned entries, unsigned ways = 4);

    bool predict(Addr pc, Addr &target) const;
    void update(Addr pc, Addr target);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
        uint64_t lru = 0;
    };
    unsigned sets_, ways_;
    std::vector<Entry> table_;
    uint64_t tick_ = 0;
    mutable uint64_t hits_ = 0, misses_ = 0;
};

/** Return address stack with overflow wrap (no recovery checkpointing:
 *  the cycle model trains at commit so the RAS stays architectural). */
class Ras
{
  public:
    explicit Ras(unsigned depth = 32) : stack_(depth) {}

    void
    push(Addr ret)
    {
        top_ = static_cast<unsigned>((top_ + 1) % stack_.size());
        stack_[top_] = ret;
        if (size_ < stack_.size())
            ++size_;
    }

    Addr
    pop()
    {
        if (size_ == 0)
            return 0;
        Addr v = stack_[top_];
        top_ = static_cast<unsigned>((top_ + stack_.size() - 1) %
                                     stack_.size());
        --size_;
        return v;
    }

    unsigned size() const { return size_; }

  private:
    std::vector<Addr> stack_;
    unsigned top_ = 0;
    unsigned size_ = 0;
};

} // namespace minjie::uarch

#endif // MINJIE_UARCH_PREDICTORS_H
