#include "uarch/hierarchy.h"

namespace minjie::uarch {

MemHierarchy::MemHierarchy(const MemCfg &cfg, unsigned nCores) : cfg_(cfg)
{
    dram_ = std::make_unique<DramModel>(cfg.dram);

    if (cfg.l3)
        l3_ = std::make_unique<Cache>("L3", *cfg.l3, nullptr, dram_.get());

    Cache *topParent = l3_.get();
    DramModel *topDram = l3_ ? nullptr : dram_.get();

    unsigned nL2 = cfg.l2Private ? nCores : 1;
    for (unsigned i = 0; i < nL2; ++i) {
        auto l2 = std::make_unique<Cache>(
            "L2." + std::to_string(i), cfg.l2, topParent, topDram);
        if (topParent)
            topParent->addChild(l2.get());
        l2_.push_back(std::move(l2));
    }

    stlb_ = std::make_unique<TimingTlb>(cfg.stlb);

    for (unsigned c = 0; c < nCores; ++c) {
        Cache *l2 = l2_[cfg.l2Private ? c : 0].get();

        // YQH's L1+ is an instruction-side L1.5 between the L1I and
        // the L2; the data cache connects to the L2 directly.
        Cache *iParent = l2;
        if (cfg.l1plus) {
            auto lp = std::make_unique<Cache>(
                "L1plus." + std::to_string(c), *cfg.l1plus, l2, nullptr);
            l2->addChild(lp.get());
            iParent = lp.get();
            l1plus_.push_back(std::move(lp));
        }

        auto l1i = std::make_unique<Cache>(
            "L1I." + std::to_string(c), cfg.l1i, iParent, nullptr);
        auto l1d = std::make_unique<Cache>(
            "L1D." + std::to_string(c), cfg.l1d, l2, nullptr);
        iParent->addChild(l1i.get());
        l2->addChild(l1d.get());
        l1i_.push_back(std::move(l1i));
        l1d_.push_back(std::move(l1d));

        itlb_.push_back(std::make_unique<TlbPath>(cfg.itlb, *stlb_,
                                                  cfg.walkLatency));
        dtlb_.push_back(std::make_unique<TlbPath>(cfg.dtlb, *stlb_,
                                                  cfg.walkLatency));
    }
}

unsigned
MemHierarchy::fetch(HartId core, Addr vaddr, Addr paddr, Cycle now)
{
    bool walked = false;
    unsigned tlbLat = itlb_[core]->access(vaddr, &walked);
    if (walked && trace_)
        trace_->record(obs::Ev::TlbWalk, now, vaddr, vaddr, 0,
                       static_cast<uint8_t>(core), /*itlb=*/1);
    return tlbLat + l1i_[core]->access(paddr, false, now + tlbLat);
}

unsigned
MemHierarchy::load(HartId core, Addr vaddr, Addr paddr, Cycle now)
{
    bool walked = false;
    unsigned tlbLat = dtlb_[core]->access(vaddr, &walked);
    if (walked && trace_)
        trace_->record(obs::Ev::TlbWalk, now, vaddr, vaddr, 0,
                       static_cast<uint8_t>(core));
    return tlbLat + l1d_[core]->access(paddr, false, now + tlbLat);
}

unsigned
MemHierarchy::store(HartId core, Addr vaddr, Addr paddr, Cycle now)
{
    bool walked = false;
    unsigned tlbLat = dtlb_[core]->access(vaddr, &walked);
    if (walked && trace_)
        trace_->record(obs::Ev::TlbWalk, now, vaddr, vaddr, 0,
                       static_cast<uint8_t>(core));
    return tlbLat + l1d_[core]->access(paddr, true, now + tlbLat);
}

void
MemHierarchy::flushTlbs(HartId core)
{
    itlb_[core]->flush();
    dtlb_[core]->flush();
    stlb_->flush();
}

void
MemHierarchy::setTxnLog(TxnLog log)
{
    if (l3_) {
        l3_->setTxnLog(log);
        return; // propagates to children
    }
    for (auto &l2 : l2_)
        l2->setTxnLog(log);
}

void
MemHierarchy::addTxnLog(TxnLog log)
{
    if (l3_) {
        l3_->addTxnLog(log);
        return; // propagates to children
    }
    for (auto &l2 : l2_)
        l2->addTxnLog(log);
}

} // namespace minjie::uarch
