#include "uarch/cache.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace minjie::uarch {

const char *
txnKindName(TxnKind kind)
{
    switch (kind) {
      case TxnKind::AcquireShared: return "AcquireShared";
      case TxnKind::AcquireExclusive: return "AcquireExclusive";
      case TxnKind::GrantShared: return "GrantShared";
      case TxnKind::GrantExclusive: return "GrantExclusive";
      case TxnKind::ProbeShared: return "ProbeShared";
      case TxnKind::ProbeInvalid: return "ProbeInvalid";
      case TxnKind::Release: return "Release";
      case TxnKind::MemRead: return "MemRead";
      case TxnKind::MemWrite: return "MemWrite";
    }
    return "?";
}

Cache::Cache(std::string name, const CacheCfg &cfg, Cache *parent,
             DramModel *dram)
    : name_(std::move(name)), cfg_(cfg), parent_(parent), dram_(dram)
{
    if (!isPow2(cfg.lineBytes) || cfg.ways == 0)
        fatal("cache %s: bad geometry", name_.c_str());
    sets_ = static_cast<unsigned>(cfg.sizeBytes /
                                  (cfg.lineBytes * cfg.ways));
    if (sets_ == 0)
        sets_ = 1;
    lineMask_ = cfg.lineBytes - 1;
    lines_.assign(static_cast<size_t>(sets_) * cfg.ways, {});
    mshrs_.assign(cfg.mshrs, {});
}

unsigned
Cache::setIndex(Addr line) const
{
    return static_cast<unsigned>((line / cfg_.lineBytes) % sets_);
}

Cache::Line *
Cache::findLine(Addr line)
{
    unsigned set = setIndex(line);
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Line &l = lines_[static_cast<size_t>(set) * cfg_.ways + w];
        if (l.st != CohState::I && l.tag == line)
            return &l;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line) const
{
    return const_cast<Cache *>(this)->findLine(line);
}

bool
Cache::holds(Addr line) const
{
    return findLine(lineAddr(line)) != nullptr;
}

CohState
Cache::state(Addr line) const
{
    const Line *l = findLine(lineAddr(line));
    return l ? l->st : CohState::I;
}

void
Cache::flushAll()
{
    for (auto &l : lines_)
        l.st = CohState::I;
    for (auto &m : mshrs_)
        m.line = ~0ULL;
}

void
Cache::setTxnLog(TxnLog log)
{
    txnLogs_.clear();
    if (log)
        txnLogs_.push_back(log);
    for (auto *c : children_)
        c->setTxnLog(log);
}

void
Cache::addTxnLog(TxnLog log)
{
    if (log)
        txnLogs_.push_back(log);
    for (auto *c : children_)
        c->addTxnLog(log);
}

unsigned
Cache::mshrDelay(Addr line, Cycle now, unsigned missLatency)
{
    // Merge with an in-flight miss to the same line.
    for (auto &m : mshrs_) {
        if (m.line == line && m.readyAt > now)
            return static_cast<unsigned>(m.readyAt - now);
    }
    // Claim a free slot, or stall until the earliest one retires.
    Mshr *victim = &mshrs_[0];
    for (auto &m : mshrs_) {
        if (m.readyAt <= now) {
            m.line = line;
            m.readyAt = now + missLatency;
            return missLatency;
        }
        if (m.readyAt < victim->readyAt)
            victim = &m;
    }
    ++stats_.mshrStalls;
    unsigned stall = static_cast<unsigned>(victim->readyAt - now);
    victim->line = line;
    victim->readyAt = victim->readyAt + missLatency;
    return stall + missLatency;
}

unsigned
Cache::probeInvalidate(Addr line, Cycle now)
{
    unsigned lat = 0;
    for (auto *c : children_)
        lat += c->probeInvalidate(line, now);
    Line *l = findLine(line);
    if (l) {
        ++stats_.probesReceived;
        if (l->st == CohState::M) {
            ++stats_.writebacks;
            // Dirty data leaves with (before) the invalidation ack.
            log(TxnKind::Release, line, now);
            lat += 4; // dirty data travels to the prober
        }
        log(TxnKind::ProbeInvalid, line, now);
        l->st = CohState::I;
        lat += 2;
    }
    return lat;
}

unsigned
Cache::probeShared(Addr line, Cycle now)
{
    unsigned lat = 0;
    for (auto *c : children_)
        lat += c->probeShared(line, now);
    Line *l = findLine(line);
    if (l && (l->st == CohState::M || l->st == CohState::E)) {
        ++stats_.probesReceived;
        if (l->st == CohState::M) {
            ++stats_.writebacks;
            log(TxnKind::Release, line, now);
            lat += 4;
        }
        log(TxnKind::ProbeShared, line, now);
        l->st = CohState::S;
        lat += 2;
    }
    return lat;
}

unsigned
Cache::install(Addr line, CohState st, Cycle now)
{
    unsigned set = setIndex(line);
    Line *victim = nullptr;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Line &l = lines_[static_cast<size_t>(set) * cfg_.ways + w];
        if (l.st == CohState::I) {
            victim = &l;
            break;
        }
        if (!victim || l.lru < victim->lru)
            victim = &l;
    }
    unsigned lat = 0;
    if (victim->st != CohState::I) {
        if (victim->st == CohState::M) {
            ++stats_.writebacks;
            log(TxnKind::Release, victim->tag, now);
        }
        if (cfg_.inclusive) {
            // Inclusive victims must leave the children too.
            for (auto *c : children_)
                lat += c->probeInvalidate(victim->tag, now);
        }
        victim->st = CohState::I;
    }
    victim->tag = line;
    victim->st = st;
    victim->lru = ++tick_;
    return lat;
}

unsigned
Cache::acquire(Cache *requester, Addr line, bool exclusive,
               bool &grantExcl, Cycle now)
{
    log(exclusive ? TxnKind::AcquireExclusive : TxnKind::AcquireShared,
        line, now);
    unsigned lat = cfg_.hitLatency;

    // Probe the requester's peers.
    bool peerHeld = false;
    for (auto *c : children_) {
        if (c == requester)
            continue;
        if (c->holds(line) || [&] {
                // Children of children may hold it even if the direct
                // child does not track it (non-inclusive levels).
                for (auto *gc : c->children_)
                    if (gc->holds(line))
                        return true;
                return false;
            }()) {
            peerHeld = true;
            lat += exclusive ? c->probeInvalidate(line, now)
                             : c->probeShared(line, now);
        }
    }

    Line *l = findLine(line);
    if (l) {
        ++stats_.hits;
        l->lru = ++tick_;
        if (exclusive && l->st == CohState::S) {
            // Upgrade requires permission from our parent.
            ++stats_.upgrades;
            if (parent_) {
                bool excl = false;
                lat += parent_->acquire(this, line, true, excl, now);
            } else if (dram_) {
                lat += 0; // top level owns the directory
            }
            l->st = CohState::M;
        }
        grantExcl = exclusive || !peerHeld;
        log(grantExcl ? TxnKind::GrantExclusive : TxnKind::GrantShared,
            line, now);
        return lat;
    }

    // Miss here: go toward memory.
    ++stats_.misses;
    unsigned missLat;
    bool excl = false;
    if (parent_) {
        missLat = parent_->acquire(this, line, exclusive, excl, now + lat);
    } else if (dram_) {
        missLat = dram_->access(line, now + lat, false);
        log(TxnKind::MemRead, line, now);
        excl = true;
    } else {
        missLat = 0;
        excl = true;
    }
    missLat = mshrDelay(line, now, missLat);
    lat += missLat;
    lat += install(line, exclusive ? CohState::M
                                   : (excl && !peerHeld ? CohState::E
                                                        : CohState::S),
                   now);
    grantExcl = exclusive || (excl && !peerHeld);
    log(grantExcl ? TxnKind::GrantExclusive : TxnKind::GrantShared, line,
        now);
    return lat;
}

unsigned
Cache::access(Addr paddr, bool write, Cycle now)
{
    Addr line = lineAddr(paddr);
    Line *l = findLine(line);

    if (l) {
        ++stats_.hits;
        l->lru = ++tick_;
        unsigned lat = cfg_.hitLatency;
        if (write) {
            if (l->st == CohState::S) {
                ++stats_.upgrades;
                log(TxnKind::AcquireExclusive, line, now);
                if (parent_) {
                    bool excl = false;
                    lat += parent_->acquire(this, line, true, excl, now);
                }
                l->st = CohState::M;
                log(TxnKind::GrantExclusive, line, now + lat);
            } else if (l->st == CohState::E) {
                l->st = CohState::M;
            }
        }
        return lat;
    }

    ++stats_.misses;
    log(write ? TxnKind::AcquireExclusive : TxnKind::AcquireShared, line,
        now);
    unsigned lat = cfg_.hitLatency;
    unsigned missLat;
    bool excl = false;
    if (parent_) {
        missLat = parent_->acquire(this, line, write, excl, now + lat);
    } else if (dram_) {
        missLat = dram_->access(line, now + lat, write);
        log(write ? TxnKind::MemWrite : TxnKind::MemRead, line, now);
        excl = true;
    } else {
        missLat = 0;
        excl = true;
    }
    missLat = mshrDelay(line, now, missLat);
    lat += missLat;
    lat += install(line, write ? CohState::M
                               : (excl ? CohState::E : CohState::S),
                   now);
    log(write || excl ? TxnKind::GrantExclusive : TxnKind::GrantShared,
        line, now + lat);
    return lat;
}

} // namespace minjie::uarch
