#include "uarch/predictors.h"

#include "common/bitutil.h"

namespace minjie::uarch {

namespace {

/** Fold @p hist's low @p len bits down to @p bits bits by xor. */
uint32_t
fold(uint64_t hist, unsigned len, unsigned bits)
{
    uint64_t h = len >= 64 ? hist : (hist & ((1ULL << len) - 1));
    uint32_t out = 0;
    while (h) {
        out ^= static_cast<uint32_t>(h) & ((1u << bits) - 1);
        h >>= bits;
    }
    return out;
}

} // namespace

constexpr unsigned Tage::HIST_LEN[Tage::N_TABLES];

Tage::Tage(unsigned totalEntries, uint64_t seed)
    : entriesPerTable_(totalEntries / N_TABLES), rngState_(seed | 1)
{
    indexBits_ = log2i(entriesPerTable_);
    for (auto &t : tables_)
        t.resize(entriesPerTable_);
    base_.assign(8192, 0);
    for (auto &t : sc_)
        t.assign(SC_ENTRIES, 0);
}

unsigned
Tage::tableIndex(unsigned t, Addr pc) const
{
    uint32_t h = fold(ghr_, HIST_LEN[t], indexBits_);
    return (static_cast<uint32_t>(pc >> 1) ^ h ^
            (static_cast<uint32_t>(pc >> (indexBits_ + 1)))) &
           (entriesPerTable_ - 1);
}

uint16_t
Tage::tableTag(unsigned t, Addr pc) const
{
    uint32_t h = fold(ghr_, HIST_LEN[t], TAG_BITS);
    uint32_t h2 = fold(ghr_, HIST_LEN[t], TAG_BITS - 1) << 1;
    return static_cast<uint16_t>(
        (static_cast<uint32_t>(pc >> 1) ^ h ^ h2) & ((1u << TAG_BITS) - 1));
}

CondPred
Tage::predict(Addr pc) const
{
    ++lookups_;
    CondPred pred;

    // Record every table coordinate under the current history so the
    // commit-time update operates on exactly these entries.
    pred.baseIdx = static_cast<uint32_t>((pc >> 1) & (base_.size() - 1));
    for (unsigned t = 0; t < N_TABLES; ++t) {
        pred.idx[t] = tableIndex(t, pc);
        pred.tag[t] = tableTag(t, pc);
    }
    for (unsigned s = 0; s < SC_TABLES; ++s)
        pred.scIdx[s] = (static_cast<uint32_t>(pc >> 1) ^
                         fold(ghr_, s ? 16 : 4, 10)) &
                        (SC_ENTRIES - 1);

    // Base bimodal prediction.
    int8_t baseCtr = base_[pred.baseIdx];
    pred.taken = baseCtr >= 0;
    pred.confident = baseCtr <= -2 || baseCtr >= 1;
    pred.provider = -1;

    // Longest-history tagged hit wins.
    for (int t = N_TABLES - 1; t >= 0; --t) {
        const auto &e = tables_[t][pred.idx[t]];
        if (e.tag == pred.tag[t]) {
            pred.taken = e.ctr >= 0;
            pred.confident = e.ctr <= -3 || e.ctr >= 2;
            pred.provider = t;
            break;
        }
    }

    // Statistical corrector: sum per-history-bias counters; a strong
    // disagreement overrides the TAGE output.
    int sum = 0;
    for (unsigned s = 0; s < SC_TABLES; ++s)
        sum += sc_[s][pred.scIdx[s]];
    bool scPred = sum >= 0;
    if (scPred != pred.taken) {
        if (sum >= scThreshold_ || sum <= -scThreshold_) {
            pred.taken = scPred;
            pred.confident = false; // corrector overrides are low-trust
        } else {
            pred.confident = false;
        }
    }
    return pred;
}

void
Tage::update(const CondPred &pred, bool taken)
{
    if (pred.taken != taken)
        ++mispredicts_;

    // Base table always trains.
    int8_t &b = base_[pred.baseIdx];
    if (taken)
        b = static_cast<int8_t>(b < 1 ? b + 1 : b);
    else
        b = static_cast<int8_t>(b > -2 ? b - 1 : b);

    // Provider trains; on mispredict allocate in a longer table.
    int provider = -1;
    for (int t = N_TABLES - 1; t >= 0; --t) {
        auto &e = tables_[t][pred.idx[t]];
        if (e.tag == pred.tag[t]) {
            provider = t;
            if (taken)
                e.ctr = static_cast<int8_t>(e.ctr < 3 ? e.ctr + 1 : e.ctr);
            else
                e.ctr = static_cast<int8_t>(e.ctr > -4 ? e.ctr - 1
                                                       : e.ctr);
            bool correct = (e.ctr >= 0) == taken;
            if (correct && e.useful < 3)
                ++e.useful;
            else if (!correct && e.useful > 0)
                --e.useful;
            break;
        }
    }

    if (pred.taken != taken && provider < static_cast<int>(N_TABLES) - 1) {
        // Allocate one entry in a randomly chosen longer table whose
        // victim is not useful.
        rngState_ = rngState_ * 6364136223846793005ULL + 1;
        unsigned start =
            static_cast<unsigned>(provider + 1) +
            static_cast<unsigned>((rngState_ >> 33) %
                                  (N_TABLES - provider - 1));
        for (unsigned t = start; t < N_TABLES; ++t) {
            auto &e = tables_[t][pred.idx[t]];
            if (e.useful == 0) {
                e.tag = pred.tag[t];
                e.ctr = taken ? 0 : -1;
                break;
            }
            if (e.useful > 0)
                --e.useful; // age the victim
        }
    }

    // Statistical corrector trains toward the outcome.
    for (unsigned s = 0; s < SC_TABLES; ++s) {
        int8_t &c = sc_[s][pred.scIdx[s]];
        if (taken)
            c = static_cast<int8_t>(c < 31 ? c + 1 : c);
        else
            c = static_cast<int8_t>(c > -32 ? c - 1 : c);
    }
}

void
Tage::pushHistory(bool taken)
{
    ghr_ = (ghr_ << 1) | (taken ? 1 : 0);
}

constexpr unsigned Ittage::HIST_LEN[2];

Ittage::Ittage(unsigned entries) : entries_(entries / 2)
{
    for (auto &t : tables_)
        t.resize(entries_);
    base_.assign(entries_, 0);
}

unsigned
Ittage::idx(unsigned t, Addr pc) const
{
    return (static_cast<uint32_t>(pc >> 1) ^
            fold(pathHist_, HIST_LEN[t], log2i(entries_))) %
           entries_;
}

uint16_t
Ittage::tag(unsigned t, Addr pc) const
{
    return static_cast<uint16_t>(
        (static_cast<uint32_t>(pc >> 1) ^ fold(pathHist_, HIST_LEN[t], 8)) &
        0x1ff);
}

IndirectPred
Ittage::predict(Addr pc) const
{
    IndirectPred pred;
    pred.baseIdx = static_cast<uint32_t>((pc >> 1) % entries_);
    for (unsigned t = 0; t < 2; ++t) {
        pred.idx[t] = idx(t, pc);
        pred.tag[t] = tag(t, pc);
    }
    pred.target = base_[pred.baseIdx];
    for (int t = 1; t >= 0; --t) {
        const auto &e = tables_[t][pred.idx[t]];
        if (e.tag == pred.tag[t] && e.target) {
            pred.target = e.target;
            break;
        }
    }
    return pred;
}

void
Ittage::update(const IndirectPred &pred, Addr target)
{
    base_[pred.baseIdx] = target;
    bool hit = false;
    for (int t = 1; t >= 0; --t) {
        auto &e = tables_[t][pred.idx[t]];
        if (e.tag == pred.tag[t]) {
            hit = true;
            if (e.target == target) {
                if (e.conf < 3)
                    ++e.conf;
            } else if (e.conf > 0) {
                --e.conf;
            } else {
                e.target = target;
            }
            break;
        }
    }
    if (!hit) {
        // Allocate in table 0 first, then 1.
        for (unsigned t = 0; t < 2; ++t) {
            auto &e = tables_[t][pred.idx[t]];
            if (e.conf == 0) {
                e.tag = pred.tag[t];
                e.target = target;
                e.conf = 1;
                break;
            }
            --e.conf;
        }
    }
}

void
Ittage::pushHistory(Addr target)
{
    pathHist_ = (pathHist_ << 2) ^ (target >> 1);
}

Btb::Btb(unsigned entries, unsigned ways)
    : sets_(entries / ways), ways_(ways), table_(entries)
{
}

bool
Btb::predict(Addr pc, Addr &target) const
{
    unsigned set = static_cast<unsigned>((pc >> 1) % sets_);
    for (unsigned w = 0; w < ways_; ++w) {
        const auto &e = table_[set * ways_ + w];
        if (e.valid && e.pc == pc) {
            target = e.target;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
Btb::update(Addr pc, Addr target)
{
    unsigned set = static_cast<unsigned>((pc >> 1) % sets_);
    unsigned victim = 0;
    uint64_t oldest = ~0ULL;
    for (unsigned w = 0; w < ways_; ++w) {
        auto &e = table_[set * ways_ + w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.lru = ++tick_;
            return;
        }
        if (!e.valid) {
            victim = w;
            oldest = 0;
        } else if (e.lru < oldest) {
            victim = w;
            oldest = e.lru;
        }
    }
    auto &e = table_[set * ways_ + victim];
    e.valid = true;
    e.pc = pc;
    e.target = target;
    e.lru = ++tick_;
}

} // namespace minjie::uarch
