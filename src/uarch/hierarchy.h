/**
 * @file
 * Assembly of the full memory system for 1..N cores: per-core L1I/L1D
 * (plus the YQH "L1+" middle level), private-or-shared L2, optional
 * shared L3, DRAM, and the per-core TLB paths.
 */

#ifndef MINJIE_UARCH_HIERARCHY_H
#define MINJIE_UARCH_HIERARCHY_H

#include <memory>
#include <optional>

#include "obs/trace.h"
#include "uarch/cache.h"
#include "uarch/tlb.h"

namespace minjie::uarch {

/** Full memory-system configuration (Table II columns). */
struct MemCfg
{
    CacheCfg l1i{16 * 1024, 4, 1, 64, false, 4};
    CacheCfg l1d{32 * 1024, 8, 2, 64, false, 8};
    std::optional<CacheCfg> l1plus;      ///< YQH's 128KB L1+
    CacheCfg l2{1024 * 1024, 8, 14, 64, true, 16};
    bool l2Private = false;              ///< NH: one L2 per core
    std::optional<CacheCfg> l3;          ///< NH: shared 6MB L3
    DramCfg dram;
    TlbCfg itlb{40, 0, 1};
    TlbCfg dtlb{40, 0, 1};
    TlbCfg stlb{4096, 4, 2};
    unsigned walkLatency = 40;
};

/**
 * The coherent memory system. All latencies flow from here into the
 * core model; transaction logging feeds ArchDB and the DiffTest
 * permission scoreboard.
 */
class MemHierarchy
{
  public:
    MemHierarchy(const MemCfg &cfg, unsigned nCores);

    /** Instruction fetch through ITLB + L1I. */
    unsigned fetch(HartId core, Addr vaddr, Addr paddr, Cycle now);

    /** Data load through DTLB + L1D. */
    unsigned load(HartId core, Addr vaddr, Addr paddr, Cycle now);

    /** Committed store draining from the store buffer. */
    unsigned store(HartId core, Addr vaddr, Addr paddr, Cycle now);

    /** sfence.vma analogue on the timing TLBs. */
    void flushTlbs(HartId core);

    void setTxnLog(TxnLog log);

    /** Add an observer without disturbing installed ones. */
    void addTxnLog(TxnLog log);

    /** Attach an event tracer for TLB-walk events (null detaches). */
    void setTrace(obs::TraceBuffer *trace) { trace_ = trace; }

    Cache &l1d(HartId core) { return *l1d_[core]; }
    Cache &l1i(HartId core) { return *l1i_[core]; }
    Cache *l2(HartId core)
    {
        return l2_.empty() ? nullptr
                           : l2_[cfg_.l2Private ? core : 0].get();
    }
    Cache *l3() { return l3_.get(); }
    DramModel &dram() { return *dram_; }
    TlbPath &dtlbPath(HartId core) { return *dtlb_[core]; }
    TlbPath &itlbPath(HartId core) { return *itlb_[core]; }

    unsigned numCores() const { return static_cast<unsigned>(l1d_.size()); }

  private:
    MemCfg cfg_;
    std::unique_ptr<DramModel> dram_;
    std::unique_ptr<Cache> l3_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::unique_ptr<Cache>> l1plus_;
    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::unique_ptr<TimingTlb> stlb_;
    std::vector<std::unique_ptr<TlbPath>> itlb_;
    std::vector<std::unique_ptr<TlbPath>> dtlb_;
    obs::TraceBuffer *trace_ = nullptr;
};

} // namespace minjie::uarch

#endif // MINJIE_UARCH_HIERARCHY_H
