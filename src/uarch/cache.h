/**
 * @file
 * Timing model of a coherent multi-level cache hierarchy.
 *
 * Data lives in the functional PhysMem; these caches track tags, MESI
 * states, LRU and MSHR occupancy, and return access latencies. Parent
 * caches coordinate coherence with TileLink-flavoured transactions
 * (Acquire / Probe / Grant / Release) that are reported to an optional
 * transaction log — the paper's ArchDB records exactly these, and the
 * DiffTest permission scoreboard (Section III-B2b) checks them.
 */

#ifndef MINJIE_UARCH_CACHE_H
#define MINJIE_UARCH_CACHE_H

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace minjie::uarch {

/** Geometry and latency of one cache level. */
struct CacheCfg
{
    uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned hitLatency = 2;
    unsigned lineBytes = 64;
    bool inclusive = false; ///< back-invalidates children on eviction
    unsigned mshrs = 8;     ///< outstanding-miss capacity
};

/** MESI line states. */
enum class CohState : uint8_t { I, S, E, M };

/** Coherence/bus transaction kinds (TileLink-flavoured). */
enum class TxnKind : uint8_t {
    AcquireShared,    ///< child requests read permission
    AcquireExclusive, ///< child requests write permission
    GrantShared,
    GrantExclusive,
    ProbeShared,      ///< downgrade a peer to S
    ProbeInvalid,     ///< invalidate a peer
    Release,          ///< dirty writeback from child
    MemRead,
    MemWrite,
};

const char *txnKindName(TxnKind kind);

/** One observed transaction, for ArchDB and the permission scoreboard. */
struct Transaction
{
    TxnKind kind;
    Addr line;              ///< line-aligned address
    const void *cache;      ///< cache the transaction concerns
    const char *cacheName;
    Cycle at;
};

using TxnLog = std::function<void(const Transaction &)>;

/** DRAM timing: fixed AMAT (the paper's FPGA configs) or a DDR-like
 *  channel model with row-buffer hits (the RTL-simulation configs). */
struct DramCfg
{
    enum class Mode { FixedAmat, Ddr };
    Mode mode = Mode::FixedAmat;
    unsigned amatCycles = 90;   ///< FixedAmat: flat latency
    unsigned ddrBase = 170;     ///< Ddr: closed-row access latency
    unsigned ddrRowHit = 110;   ///< Ddr: open-row access latency
    unsigned burstCycles = 8;   ///< channel occupancy per access
    unsigned channels = 2;
};

class DramModel
{
  public:
    explicit DramModel(const DramCfg &cfg) : cfg_(cfg)
    {
        busy_.assign(cfg.channels, 0);
        openRow_.assign(cfg.channels, ~0ULL);
    }

    /** Latency of an access issued at @p now. */
    unsigned
    access(Addr addr, Cycle now, bool write)
    {
        ++accesses_;
        if (cfg_.mode == DramCfg::Mode::FixedAmat)
            return cfg_.amatCycles;
        unsigned ch = static_cast<unsigned>((addr >> 6) % cfg_.channels);
        Cycle start = now > busy_[ch] ? now : busy_[ch];
        uint64_t row = addr >> 13;
        unsigned lat = openRow_[ch] == row ? cfg_.ddrRowHit : cfg_.ddrBase;
        openRow_[ch] = row;
        busy_[ch] = start + cfg_.burstCycles;
        return static_cast<unsigned>(start - now) + lat;
    }

    uint64_t accesses() const { return accesses_; }

  private:
    DramCfg cfg_;
    std::vector<Cycle> busy_;
    std::vector<uint64_t> openRow_;
    uint64_t accesses_ = 0;
};

/** Per-cache statistics. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;
    uint64_t probesReceived = 0;
    uint64_t upgrades = 0;
    uint64_t mshrStalls = 0;
};

/**
 * One cache level. Parents own coherence among their children.
 */
class Cache
{
  public:
    Cache(std::string name, const CacheCfg &cfg, Cache *parent,
          DramModel *dram);

    /** Register @p child for coherence probes. */
    void addChild(Cache *child) { children_.push_back(child); }

    /**
     * Access @p paddr at cycle @p now.
     * @param write  requires exclusive permission
     * @return latency in cycles until data is available
     */
    unsigned access(Addr paddr, bool write, Cycle now);

    /** Does this cache (not counting children) hold the line? */
    bool holds(Addr line) const;
    CohState state(Addr line) const;

    /** Invalidate everything (used by checkpoint restore). */
    void flushAll();

    const CacheStats &stats() const { return stats_; }
    const std::string &name() const { return name_; }
    const CacheCfg &cfg() const { return cfg_; }

    /** Install a transaction observer on this level and below,
     *  replacing any previously installed observers. */
    void setTxnLog(TxnLog log);

    /** Add a transaction observer on this level and below, keeping the
     *  existing ones (DiffTest's scoreboard and the obs tracer can
     *  watch the same hierarchy). */
    void addTxnLog(TxnLog log);

  private:
    struct Line
    {
        Addr tag = 0;
        CohState st = CohState::I;
        uint64_t lru = 0;
    };

    struct Mshr
    {
        Addr line = ~0ULL;
        Cycle readyAt = 0;
    };

    Addr lineAddr(Addr paddr) const { return paddr & ~lineMask_; }
    unsigned setIndex(Addr line) const;
    Line *findLine(Addr line);
    const Line *findLine(Addr line) const;

    /**
     * Serve a child's Acquire. Handles peer probes, self lookup, and
     * recursion toward memory.
     * @param requester     the child asking (nullptr = self/L1 path)
     * @param exclusive     write permission required
     * @param grantExcl     out: true when the grant is E/M-capable
     * @return latency contribution
     */
    unsigned acquire(Cache *requester, Addr line, bool exclusive,
                     bool &grantExcl, Cycle now);

    /** Recursively drop the line (peer invalidation / back-inval). */
    unsigned probeInvalidate(Addr line, Cycle now);

    /** Recursively downgrade to shared. */
    unsigned probeShared(Addr line, Cycle now);

    /** Install @p line in this array, evicting as needed. */
    unsigned install(Addr line, CohState st, Cycle now);

    /** Account an MSHR slot; returns extra delay and merge latency. */
    unsigned mshrDelay(Addr line, Cycle now, unsigned missLatency);

    void
    log(TxnKind kind, Addr line, Cycle at) const
    {
        for (const auto &observer : txnLogs_)
            observer({kind, line, this, name_.c_str(), at});
    }

    std::string name_;
    CacheCfg cfg_;
    Cache *parent_;
    DramModel *dram_;
    std::vector<Cache *> children_;
    std::vector<Line> lines_;
    std::vector<Mshr> mshrs_;
    unsigned sets_;
    Addr lineMask_;
    uint64_t tick_ = 0;
    CacheStats stats_;
    std::vector<TxnLog> txnLogs_;
};

} // namespace minjie::uarch

#endif // MINJIE_UARCH_CACHE_H
