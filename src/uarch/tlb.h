/**
 * @file
 * Timing TLBs (L1 ITLB / L1 DTLB / unified STLB, Table II).
 *
 * Functional translation is done by iss::Mmu; these model only the
 * latency and reach of the hardware TLBs, including the NH design's
 * split L1 DTLB (direct-mapped large part + fully-associative part).
 */

#ifndef MINJIE_UARCH_TLB_H
#define MINJIE_UARCH_TLB_H

#include <vector>

#include "common/types.h"

namespace minjie::uarch {

struct TlbCfg
{
    unsigned entries = 40;
    unsigned ways = 0;       ///< 0 = fully associative
    unsigned hitLatency = 1;
};

struct TlbStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
};

/** One timing TLB level (tags only). */
class TimingTlb
{
  public:
    explicit TimingTlb(const TlbCfg &cfg) : cfg_(cfg)
    {
        unsigned ways = cfg.ways ? cfg.ways : cfg.entries;
        sets_ = cfg.entries / ways;
        if (sets_ == 0)
            sets_ = 1;
        ways_ = ways;
        entries_.assign(cfg.entries, {});
    }

    bool
    lookup(Addr vpn)
    {
        unsigned set = static_cast<unsigned>(vpn % sets_);
        for (unsigned w = 0; w < ways_; ++w) {
            Entry &e = entries_[static_cast<size_t>(set) * ways_ + w];
            if (e.valid && e.vpn == vpn) {
                e.lru = ++tick_;
                ++stats_.hits;
                return true;
            }
        }
        ++stats_.misses;
        return false;
    }

    void
    insert(Addr vpn)
    {
        unsigned set = static_cast<unsigned>(vpn % sets_);
        Entry *victim = nullptr;
        for (unsigned w = 0; w < ways_; ++w) {
            Entry &e = entries_[static_cast<size_t>(set) * ways_ + w];
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (!victim || e.lru < victim->lru)
                victim = &e;
        }
        victim->valid = true;
        victim->vpn = vpn;
        victim->lru = ++tick_;
    }

    void
    flush()
    {
        for (auto &e : entries_)
            e.valid = false;
    }

    const TlbStats &stats() const { return stats_; }
    unsigned hitLatency() const { return cfg_.hitLatency; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr vpn = 0;
        uint64_t lru = 0;
    };
    TlbCfg cfg_;
    unsigned sets_, ways_;
    std::vector<Entry> entries_;
    uint64_t tick_ = 0;
    TlbStats stats_;
};

/** Two-level TLB path: L1 (I or D) backed by the shared STLB and a
 *  page-table walker with a fixed walk latency. */
class TlbPath
{
  public:
    TlbPath(const TlbCfg &l1, TimingTlb &stlb, unsigned walkLatency)
        : l1_(l1), stlb_(stlb), walkLatency_(walkLatency)
    {
    }

    /** Latency to translate the page containing @p vaddr.
     *  @param walked  optional out: set when a page-table walk ran
     *                 (both TLB levels missed) */
    unsigned
    access(Addr vaddr, bool *walked = nullptr)
    {
        Addr vpn = vaddr >> 12;
        if (l1_.lookup(vpn))
            return l1_.hitLatency();
        unsigned lat = l1_.hitLatency() + 2; // STLB lookup
        if (!stlb_.lookup(vpn)) {
            lat += walkLatency_;
            stlb_.insert(vpn);
            if (walked)
                *walked = true;
        }
        l1_.insert(vpn);
        return lat;
    }

    void flush() { l1_.flush(); }

    TimingTlb &l1() { return l1_; }

  private:
    TimingTlb l1_;
    TimingTlb &stlb_;
    unsigned walkLatency_;
};

} // namespace minjie::uarch

#endif // MINJIE_UARCH_TLB_H
