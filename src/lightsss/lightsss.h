/**
 * @file
 * LightSSS: lightweight simulation snapshots (paper Section III-C).
 *
 * Instead of serializing circuit state, the simulator process itself is
 * snapshotted with fork(): the kernel's copy-on-write pages make each
 * snapshot incremental (only pages the parent subsequently dirties are
 * copied) and circuit-agnostic (external C/C++ models such as the DRAM
 * simulator are captured for free). Snapshots are taken every N cycles;
 * only the most recent two are kept. On a failure, the oldest surviving
 * snapshot is woken and replays the last <= 2N cycles with debugging
 * output enabled.
 *
 * The SSS baseline of Section III-C2 — an explicit full-image,
 * circuit-dependent snapshot — lives in sss.h for the Figure 6 /
 * Table I comparison.
 */

#ifndef MINJIE_LIGHTSSS_LIGHTSSS_H
#define MINJIE_LIGHTSSS_LIGHTSSS_H

#include <deque>
#include <string>

#include <sys/types.h>

#include "common/types.h"

namespace minjie::lightsss {

struct LightSssConfig
{
    Cycle intervalCycles = 1'000'000; ///< snapshot period N
    unsigned keepSnapshots = 2;       ///< retained snapshots (paper: 2)
    bool enabled = true;
};

struct LightSssStats
{
    uint64_t forks = 0;
    uint64_t lastForkUs = 0;   ///< wall time of the last fork() call
    uint64_t totalForkUs = 0;
    uint64_t kills = 0;        ///< snapshots dropped (beyond keep limit)
};

class LightSSS
{
  public:
    enum class Role {
        Parent,      ///< normal simulation continues
        ReplayChild, ///< this process is a woken snapshot: re-run in
                     ///< debug mode up to replayTargetCycle()
    };

    explicit LightSSS(const LightSssConfig &cfg = {});
    ~LightSSS();

    /**
     * Periodic driver hook; forks a snapshot when the interval has
     * elapsed. In the parent this returns Role::Parent (quickly); a
     * woken snapshot child returns Role::ReplayChild exactly once.
     */
    Role tick(Cycle now);

    /**
     * A failure was detected at @p failCycle: wake the oldest snapshot
     * to replay the failure window, wait for it to finish, and drop all
     * snapshots. @return false when no snapshot exists (e.g. failure
     * before the first interval).
     */
    bool triggerReplay(Cycle failCycle);

    /** The cycle this replay child must simulate up to (inclusive). */
    Cycle replayTargetCycle() const { return replayTarget_; }

    /** The cycle at which this child process was snapshotted. */
    Cycle snapshotCycle() const { return snapshotCycle_; }

    /** Terminate a replay child (never returns). Uses _exit so the
     *  forked copy does not run atexit handlers twice. */
    [[noreturn]] static void finishReplay(int exitCode = 0);

    const LightSssStats &stats() const { return stats_; }
    bool enabled() const { return cfg_.enabled; }

    /** Drop all snapshots (e.g. end of simulation). */
    void discardAll();

  private:
    struct Snapshot
    {
        pid_t pid;
        int wakeFd; ///< write end of the child's control pipe
        Cycle cycle;
    };

    LightSssConfig cfg_;
    std::deque<Snapshot> snapshots_;
    Cycle lastForkCycle_ = 0;
    Cycle snapshotCycle_ = 0;
    Cycle replayTarget_ = 0;
    LightSssStats stats_;
};

} // namespace minjie::lightsss

#endif // MINJIE_LIGHTSSS_LIGHTSSS_H
