/**
 * @file
 * SSS: the circuit-dependent full-image snapshot baseline (paper
 * Section III-C2, Table I). Every snapshot concatenates the entire
 * simulator state — architectural state plus every allocated DRAM
 * page — into one in-memory image, the approach whose 10-20%% overhead
 * (LiveSim) and multi-second snapshot times motivate LightSSS.
 */

#ifndef MINJIE_LIGHTSSS_SSS_H
#define MINJIE_LIGHTSSS_SSS_H

#include <cstring>
#include <deque>
#include <vector>

#include "common/clock.h"
#include "iss/arch_state.h"
#include "mem/physmem.h"

namespace minjie::lightsss {

class SssSnapshotter
{
  public:
    /** @param keep retained snapshot count (match LightSSS for
     *  comparable memory behaviour). */
    explicit SssSnapshotter(mem::PhysMem &dram, unsigned keep = 2)
        : dram_(dram), keep_(keep)
    {
    }

    /** Capture a full image; returns the bytes copied. */
    size_t
    takeSnapshot(const iss::ArchState &st, Cycle cycle)
    {
        Stopwatch sw;
        Image img;
        img.cycle = cycle;
        img.state = st;
        img.pages.reserve(dram_.allocatedPages());
        dram_.forEachPage([&](Addr base, const uint8_t *data) {
            img.pages.emplace_back();
            img.pages.back().base = base;
            std::memcpy(img.pages.back().bytes, data,
                        mem::PhysMem::PAGE_SIZE);
        });
        size_t bytes = sizeof(iss::ArchState) +
                       img.pages.size() * mem::PhysMem::PAGE_SIZE;
        images_.push_back(std::move(img));
        while (images_.size() > keep_)
            images_.pop_front();
        lastSnapshotUs_ = sw.elapsedUs();
        totalSnapshotUs_ += lastSnapshotUs_;
        ++snapshots_;
        return bytes;
    }

    /** Restore the oldest retained image. @return its cycle. */
    Cycle
    restoreOldest(iss::ArchState &st)
    {
        const Image &img = images_.front();
        st = img.state;
        dram_.clear();
        for (const auto &page : img.pages)
            dram_.load(page.base, page.bytes, mem::PhysMem::PAGE_SIZE);
        return img.cycle;
    }

    bool hasSnapshot() const { return !images_.empty(); }
    uint64_t lastSnapshotUs() const { return lastSnapshotUs_; }
    uint64_t totalSnapshotUs() const { return totalSnapshotUs_; }
    uint64_t snapshots() const { return snapshots_; }

  private:
    struct Page
    {
        Addr base;
        uint8_t bytes[mem::PhysMem::PAGE_SIZE];
    };
    struct Image
    {
        Cycle cycle;
        iss::ArchState state;
        std::vector<Page> pages;
    };

    mem::PhysMem &dram_;
    unsigned keep_;
    std::deque<Image> images_;
    uint64_t lastSnapshotUs_ = 0;
    uint64_t totalSnapshotUs_ = 0;
    uint64_t snapshots_ = 0;
};

} // namespace minjie::lightsss

#endif // MINJIE_LIGHTSSS_SSS_H
