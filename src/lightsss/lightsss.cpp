#include "lightsss/lightsss.h"

#include <cstdint>
#include <cstdio>
#include <cstring>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#if defined(__GLIBC__)
#include <stdio_ext.h> // __fpurge: discard inherited stdio buffers
#endif

#include "common/clock.h"
#include "common/log.h"

namespace minjie::lightsss {

namespace {

/** Control message from parent to a snapshot child. */
struct WakeMsg
{
    uint64_t action; ///< 0 = die, 1 = replay
    uint64_t targetCycle;
};

} // namespace

LightSSS::LightSSS(const LightSssConfig &cfg) : cfg_(cfg) {}

LightSSS::~LightSSS()
{
    discardAll();
}

void
LightSSS::discardAll()
{
    for (auto &snap : snapshots_) {
        WakeMsg msg{0, 0};
        (void)!write(snap.wakeFd, &msg, sizeof(msg));
        close(snap.wakeFd);
        int status;
        waitpid(snap.pid, &status, 0);
    }
    snapshots_.clear();
}

LightSSS::Role
LightSSS::tick(Cycle now)
{
    if (!cfg_.enabled)
        return Role::Parent;
    if (now < lastForkCycle_) {
        // The cycle counter rewound (checkpoint restore, replay child
        // re-simulating from its window start, a fresh run reusing
        // this instance). The unsigned difference below would wrap to
        // a huge value and fork immediately; re-arm the interval from
        // the rewound clock instead.
        lastForkCycle_ = now;
        return Role::Parent;
    }
    if (now - lastForkCycle_ < cfg_.intervalCycles && now != 0)
        return Role::Parent;
    lastForkCycle_ = now;

    // Drop the oldest snapshot beyond the retention limit BEFORE
    // forking, so at most keepSnapshots processes exist at once.
    while (snapshots_.size() >= cfg_.keepSnapshots) {
        Snapshot old = snapshots_.front();
        snapshots_.pop_front();
        WakeMsg msg{0, 0};
        (void)!write(old.wakeFd, &msg, sizeof(msg));
        close(old.wakeFd);
        int status;
        waitpid(old.pid, &status, 0);
        ++stats_.kills;
    }

    int pipefd[2];
    if (pipe(pipefd) != 0) {
        MJ_WARN("LightSSS: pipe() failed: %s", strerror(errno));
        return Role::Parent;
    }

    Stopwatch sw;
    pid_t pid = fork();
    if (pid < 0) {
        MJ_WARN("LightSSS: fork() failed: %s", strerror(errno));
        close(pipefd[0]);
        close(pipefd[1]);
        return Role::Parent;
    }

    if (pid == 0) {
        // Snapshot child: the parent's buffered-but-unflushed stdio
        // bytes were duplicated into this address space by fork(). The
        // parent will flush them itself, so DISCARD our copy — flushing
        // it later would emit those bytes twice. Purge before the child
        // produces any output of its own so nothing legitimate is lost.
#if defined(__GLIBC__)
        __fpurge(stdout);
        __fpurge(stdin);
#endif
        // Release inherited snapshot handles (they belong to the
        // parent) and sleep until woken.
        close(pipefd[1]);
        for (auto &snap : snapshots_)
            close(snap.wakeFd);
        snapshots_.clear();

        WakeMsg msg{};
        ssize_t got = read(pipefd[0], &msg, sizeof(msg));
        close(pipefd[0]);
        if (got != sizeof(msg) || msg.action == 0)
            _exit(0); // dropped: this snapshot was never needed

        // Woken for replay: the caller re-runs the window in debug mode.
        snapshotCycle_ = now;
        replayTarget_ = msg.targetCycle;
        // Re-arm the fork interval at the snapshot point so a replay
        // that keeps ticking does not fork off the parent's stale base.
        lastForkCycle_ = now;
        return Role::ReplayChild;
    }

    // Parent.
    close(pipefd[0]);
    snapshots_.push_back({pid, pipefd[1], now});
    ++stats_.forks;
    stats_.lastForkUs = sw.elapsedUs();
    stats_.totalForkUs += stats_.lastForkUs;
    return Role::Parent;
}

bool
LightSSS::triggerReplay(Cycle failCycle)
{
    if (snapshots_.empty())
        return false;

    // Wake the oldest snapshot (paper: "the second to last snapshot"),
    // giving the longest pre-failure window in the replay.
    Snapshot oldest = snapshots_.front();
    snapshots_.pop_front();
    WakeMsg msg{1, failCycle};
    if (write(oldest.wakeFd, &msg, sizeof(msg)) != sizeof(msg)) {
        MJ_WARN("LightSSS: failed to wake snapshot %d", oldest.pid);
        close(oldest.wakeFd);
        return false;
    }
    close(oldest.wakeFd);

    int status = 0;
    waitpid(oldest.pid, &status, 0);
    MJ_INFO("LightSSS: replay child %d finished with status %d",
            oldest.pid, WEXITSTATUS(status));

    // Remaining (younger) snapshots are no longer needed.
    discardAll();
    return true;
}

void
LightSSS::finishReplay(int exitCode)
{
    // Flush only the streams this replay child wrote itself. A blanket
    // fflush(nullptr) would also flush streams inherited from the
    // parent (log files, result files) whose buffered bytes the parent
    // still owns and will flush — emitting them twice. stdout is safe:
    // its inherited buffer was purged at fork time in tick().
    // lint:allow MJ-FRK2-001 stdout purged at fork; only replay-child output remains
    std::fflush(stdout);
    std::fflush(stderr);
    _exit(exitCode);
}

} // namespace minjie::lightsss
