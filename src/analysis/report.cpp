#include "analysis/report.h"

#include <cstdio>

#include "common/jsonw.h"

namespace minjie::analysis {

std::string
renderHuman(const EngineResult &res)
{
    std::string out;
    char buf[256];
    for (const Finding &f : res.findings) {
        std::snprintf(buf, sizeof(buf), "%s:%u:%u: warning: ",
                      f.path.c_str(), f.line, f.col);
        out += buf;
        out += f.message;
        out += " [" + f.ruleId + "]\n";
        if (!f.snippet.empty())
            out += "    " + f.snippet + "\n";
        if (!f.callPath.empty()) {
            out += "    call path:\n";
            for (size_t i = 0; i < f.callPath.size(); ++i)
                out += "      " + std::string(i * 2, ' ') +
                       (i == 0 ? "" : "-> ") + f.callPath[i] + "\n";
        }
    }
    std::snprintf(buf, sizeof(buf),
                  "minjie-lint: %zu finding%s in %llu files "
                  "(%llu inline-suppressed, %llu baselined)\n",
                  res.findings.size(),
                  res.findings.size() == 1 ? "" : "s",
                  static_cast<unsigned long long>(res.filesScanned),
                  static_cast<unsigned long long>(res.suppressedInline),
                  static_cast<unsigned long long>(
                      res.suppressedBaseline));
    out += buf;
    for (const std::string &stale : res.staleBaseline)
        out += "minjie-lint: stale baseline entry: " + stale + "\n";
    return out;
}

std::string
renderJson(const EngineResult &res)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("files_scanned").value(res.filesScanned);
    jw.key("files_lexed").value(res.filesLexed);
    jw.key("suppressed_inline").value(res.suppressedInline);
    jw.key("suppressed_baseline").value(res.suppressedBaseline);
    jw.key("findings").beginArray();
    for (const Finding &f : res.findings) {
        jw.beginObject();
        jw.key("rule").value(f.ruleId);
        jw.key("path").value(f.path);
        jw.key("line").value(f.line);
        jw.key("col").value(f.col);
        jw.key("message").value(f.message);
        jw.key("snippet").value(f.snippet);
        if (!f.callPath.empty()) {
            jw.key("call_path").beginArray();
            for (const std::string &frame : f.callPath)
                jw.value(frame);
            jw.endArray();
        }
        jw.endObject();
    }
    jw.endArray();
    jw.key("stale_baseline").beginArray();
    for (const std::string &s : res.staleBaseline)
        jw.value(s);
    jw.endArray();
    jw.endObject();
    return jw.str();
}

std::string
renderSarif(const EngineResult &res, const Engine &engine)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("version").value("2.1.0");
    jw.key("$schema")
        .value("https://json.schemastore.org/sarif-2.1.0.json");
    jw.key("runs").beginArray();
    jw.beginObject();

    jw.key("tool").beginObject();
    jw.key("driver").beginObject();
    jw.key("name").value("minjie-lint");
    jw.key("informationUri")
        .value("README.md#static-analysis--sanitizers");
    jw.key("rules").beginArray();
    for (const auto &rule : engine.rules()) {
        jw.beginObject();
        jw.key("id").value(std::string(rule->id()));
        jw.key("shortDescription").beginObject();
        jw.key("text").value(std::string(rule->summary()));
        jw.endObject();
        jw.endObject();
    }
    for (const auto &rule : engine.graphRules()) {
        jw.beginObject();
        jw.key("id").value(std::string(rule->id()));
        jw.key("shortDescription").beginObject();
        jw.key("text").value(std::string(rule->summary()));
        jw.endObject();
        jw.endObject();
    }
    jw.endArray();
    jw.endObject(); // driver
    jw.endObject(); // tool

    jw.key("results").beginArray();
    for (const Finding &f : res.findings) {
        jw.beginObject();
        jw.key("ruleId").value(f.ruleId);
        jw.key("level").value("error");
        jw.key("message").beginObject();
        jw.key("text").value(f.message);
        jw.endObject();
        jw.key("locations").beginArray();
        jw.beginObject();
        jw.key("physicalLocation").beginObject();
        jw.key("artifactLocation").beginObject();
        jw.key("uri").value(f.path);
        jw.endObject();
        jw.key("region").beginObject();
        jw.key("startLine").value(f.line);
        jw.key("startColumn").value(f.col);
        jw.endObject();
        jw.endObject(); // physicalLocation
        jw.endObject();
        jw.endArray(); // locations
        // Interprocedural findings carry their call-path witness as a
        // SARIF codeFlow so viewers can step the chain.
        if (!f.callPath.empty()) {
            jw.key("codeFlows").beginArray();
            jw.beginObject();
            jw.key("threadFlows").beginArray();
            jw.beginObject();
            jw.key("locations").beginArray();
            for (const std::string &frame : f.callPath) {
                jw.beginObject();
                jw.key("location").beginObject();
                jw.key("message").beginObject();
                jw.key("text").value(frame);
                jw.endObject();
                jw.endObject();
                jw.endObject();
            }
            jw.endArray(); // locations
            jw.endObject();
            jw.endArray(); // threadFlows
            jw.endObject();
            jw.endArray(); // codeFlows
        }
        jw.endObject();
    }
    jw.endArray(); // results

    jw.endObject(); // run
    jw.endArray();  // runs
    jw.endObject();
    return jw.str();
}

} // namespace minjie::analysis
