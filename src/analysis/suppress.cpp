#include "analysis/suppress.h"

#include <cctype>

namespace minjie::analysis {

namespace {

constexpr std::string_view MARKER = "lint:allow";

std::string_view
trim(std::string_view s)
{
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
    return s;
}

} // namespace

Suppressions::Suppressions(const std::string &path,
                           const std::vector<Comment> &comments,
                           const SourceFile &file,
                           std::vector<Finding> &diagnostics)
{
    for (const Comment &cm : comments) {
        size_t pos = cm.text.find(MARKER);
        if (pos == std::string_view::npos)
            continue;
        std::string_view rest = trim(cm.text.substr(pos + MARKER.size()));
        size_t sp = rest.find_first_of(" \t");
        std::string_view ruleId =
            sp == std::string_view::npos ? rest : rest.substr(0, sp);
        std::string_view reason =
            sp == std::string_view::npos ? std::string_view()
                                         : trim(rest.substr(sp));

        if (ruleId.empty() || reason.empty()) {
            Finding f;
            f.ruleId = "MJ-SUP-001";
            f.path = path;
            f.line = cm.line;
            f.col = 1;
            f.message = "lint:allow without " +
                        std::string(ruleId.empty() ? "a rule id"
                                                   : "a justification") +
                        "; write `lint:allow <RULE-ID> <why this is "
                        "safe>`";
            std::string_view lt = file.lineText(cm.line);
            f.snippet = std::string(trim(lt));
            diagnostics.push_back(std::move(f));
            continue;
        }

        Entry e;
        e.ruleId = std::string(ruleId);
        e.line = cm.line;
        entries_.push_back(e);
        if (cm.ownLine) {
            // A directive on its own comment line covers the next line.
            e.line = cm.line + 1;
            entries_.push_back(e);
        }
    }
}

bool
Suppressions::allows(uint32_t line, const std::string &ruleId) const
{
    for (const Entry &e : entries_)
        if (e.line == line && e.ruleId == ruleId)
            return true;
    return false;
}

} // namespace minjie::analysis
