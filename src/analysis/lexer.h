/**
 * @file
 * Token stream for the lint rules.
 *
 * A deliberately small C++ lexer: it understands comments (collected
 * separately so suppression directives can be parsed), string / char
 * literals including raw strings, identifiers, numbers, and
 * maximal-munch punctuation. `#include` directives are swallowed
 * whole so header names never masquerade as identifiers; every other
 * preprocessor line is lexed normally, which keeps macro bodies
 * visible to the rules.
 */

#ifndef MINJIE_ANALYSIS_LEXER_H
#define MINJIE_ANALYSIS_LEXER_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "analysis/source.h"

namespace minjie::analysis {

enum class Tok : uint8_t {
    Ident,  ///< identifier or keyword
    Number, ///< numeric literal (integer or floating)
    Str,    ///< string literal, text includes quotes
    Char,   ///< character literal
    Punct,  ///< operator / punctuation, maximal munch
};

struct Token
{
    Tok kind = Tok::Punct;
    std::string_view text; ///< view into the SourceFile text
    uint32_t line = 0;     ///< 1-based
    uint32_t col = 0;      ///< 1-based

    bool is(std::string_view s) const { return text == s; }
    bool isIdent(std::string_view s) const
    {
        return kind == Tok::Ident && text == s;
    }
};

/** A comment, kept out of the token stream. */
struct Comment
{
    std::string_view text; ///< without the // or slash-star markers
    uint32_t line = 0;     ///< line the comment starts on
    bool ownLine = false;  ///< nothing but whitespace precedes it
};

struct LexResult
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/** Tokenize @p file. Never fails: unrecognized bytes become Punct. */
LexResult lex(const SourceFile &file);

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_LEXER_H
