/**
 * @file
 * MJ-DET-*: determinism of the campaign, difftest, and report paths.
 *
 * The campaign engine's contract (PR 1) is that results are invariant
 * across worker counts and reproducible from a seed; these rules ban
 * the host-dependent inputs that silently break that contract.
 */

#include "analysis/rules_impl.h"

namespace minjie::analysis {

namespace {

/** Directories whose outputs must be bit-reproducible from a seed. */
const std::vector<std::string> DET_SCOPE = {
    "src/campaign/",
    "src/difftest/",
    "src/archdb/",
    "src/obs/",
    "src/sample/", // weighted reduction: worker-count invariant
    "src/xiangshan/", // DUT timing model: cycle-exact across schedulers
    "tools/",
};

class BannedRandom final : public BasicRule
{
  public:
    BannedRandom()
        : BasicRule("MJ-DET-001",
                    "host RNG in a deterministic path; seed minjie::Rng "
                    "instead",
                    DET_SCOPE)
    {
    }

    void
    run(const RuleContext &ctx, std::vector<Finding> &out) const override
    {
        static const std::vector<std::string_view> calls = {
            "rand",   "srand",   "random", "srandom",
            "rand_r", "drand48", "lrand48"};
        const auto &toks = ctx.tokens;
        for (size_t i = 0; i < toks.size(); ++i) {
            if (isPlainCall(toks, i, calls)) {
                report(ctx, toks[i],
                       "call to " + std::string(toks[i].text) +
                           "() draws from host RNG state; all campaign/"
                           "difftest randomness must come from a seeded "
                           "minjie::Rng",
                       out);
                continue;
            }
            if (toks[i].isIdent("random_device") ||
                toks[i].isIdent("mt19937") ||
                toks[i].isIdent("mt19937_64")) {
                report(ctx, toks[i],
                       "std::" + std::string(toks[i].text) +
                           " is not seed-reproducible across hosts; use "
                           "minjie::Rng",
                       out);
            }
        }
    }
};

class BannedWallClock final : public BasicRule
{
  public:
    BannedWallClock()
        : BasicRule("MJ-DET-002",
                    "wall-clock read in a deterministic path; route "
                    "timing through minjie::Stopwatch",
                    DET_SCOPE)
    {
    }

    void
    run(const RuleContext &ctx, std::vector<Finding> &out) const override
    {
        static const std::vector<std::string_view> calls = {
            "time",      "clock",        "gettimeofday",
            "localtime", "gmtime",       "ctime",
            "mktime",    "clock_gettime"};
        const auto &toks = ctx.tokens;
        for (size_t i = 0; i < toks.size(); ++i) {
            if (isPlainCall(toks, i, calls)) {
                report(ctx, toks[i],
                       "call to " + std::string(toks[i].text) +
                           "() reads the wall clock; keep timing inside "
                           "minjie::Stopwatch and out of functional "
                           "outputs (seeds, orderings, signatures)",
                       out);
                continue;
            }
            if (toks[i].isIdent("system_clock") ||
                toks[i].isIdent("steady_clock") ||
                toks[i].isIdent("high_resolution_clock")) {
                report(ctx, toks[i],
                       "std::chrono::" + std::string(toks[i].text) +
                           " in a deterministic path; use "
                           "minjie::Stopwatch for reporting-only timing",
                       out);
            }
        }
    }
};

class UnorderedContainer final : public BasicRule
{
  public:
    UnorderedContainer()
        : BasicRule("MJ-DET-003",
                    "std::unordered_* container in a deterministic "
                    "path: iteration order is host-dependent",
                    DET_SCOPE)
    {
    }

    void
    run(const RuleContext &ctx, std::vector<Finding> &out) const override
    {
        for (const Token &t : ctx.tokens) {
            if (t.isIdent("unordered_map") ||
                t.isIdent("unordered_set") ||
                t.isIdent("unordered_multimap") ||
                t.isIdent("unordered_multiset")) {
                report(ctx, t,
                       "std::" + std::string(t.text) +
                           " iterates in hash order, which varies with "
                           "libstdc++ version and pointer layout; use "
                           "std::map / sorted vector, or suppress with "
                           "a justification if the container is "
                           "lookup-only",
                       out);
            }
        }
    }
};

class PointerKeyedOrder final : public BasicRule
{
  public:
    PointerKeyedOrder()
        : BasicRule("MJ-DET-004",
                    "pointer-keyed ordered container: iteration order "
                    "follows allocation addresses",
                    DET_SCOPE)
    {
    }

    void
    run(const RuleContext &ctx, std::vector<Finding> &out) const override
    {
        const auto &toks = ctx.tokens;
        for (size_t i = 0; i + 1 < toks.size(); ++i) {
            if (!(toks[i].isIdent("map") || toks[i].isIdent("set") ||
                  toks[i].isIdent("multimap") ||
                  toks[i].isIdent("multiset")))
                continue;
            if (!toks[i + 1].is("<"))
                continue;
            size_t close = matchBracket(toks, i + 1);
            if (close == toks.size())
                continue;
            // Scan the first template argument (the key type) only.
            int depth = 0;
            for (size_t j = i + 2; j < close; ++j) {
                if (toks[j].is("<") || toks[j].is("(") || toks[j].is("["))
                    ++depth;
                else if (toks[j].is(">") || toks[j].is(")") ||
                         toks[j].is("]"))
                    --depth;
                else if (toks[j].is(",") && depth == 0)
                    break;
                else if (toks[j].is("*") && depth == 0) {
                    report(ctx, toks[i],
                           "std::" + std::string(toks[i].text) +
                               " keyed by a pointer orders entries by "
                               "allocation address; key by a stable id "
                               "(name, index) instead",
                           out);
                    break;
                }
            }
        }
    }
};

} // namespace

std::vector<std::unique_ptr<Rule>>
makeDeterminismRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<BannedRandom>());
    rules.push_back(std::make_unique<BannedWallClock>());
    rules.push_back(std::make_unique<UnorderedContainer>());
    rules.push_back(std::make_unique<PointerKeyedOrder>());
    return rules;
}

} // namespace minjie::analysis
