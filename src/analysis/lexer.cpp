#include "analysis/lexer.h"

#include <cctype>
#include <cstring>

namespace minjie::analysis {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character operators, longest first within each head. */
const char *const PUNCT3[] = {"<<=", ">>=", "...", "->*", "<=>"};
const char *const PUNCT2[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                              ">=", "==", "!=", "&&", "||", "+=", "-=",
                              "*=", "/=", "%=", "&=", "|=", "^=", "##"};

/** The only identifiers that prefix a raw string literal. Anything
 *  else ending in R before a '"' (PRIuPTR-style macro pastes) is an
 *  ordinary identifier followed by an ordinary string. */
bool
isRawStringPrefix(std::string_view ident)
{
    return ident == "R" || ident == "LR" || ident == "uR" ||
           ident == "UR" || ident == "u8R";
}

/** Valid raw-string delimiter char (C++ basic charset minus parens,
 *  backslash, and whitespace); delimiters are at most 16 chars. */
bool
isRawDelimChar(char c)
{
    return c != '(' && c != ')' && c != '\\' &&
           !std::isspace(static_cast<unsigned char>(c)) &&
           std::isprint(static_cast<unsigned char>(c));
}

} // namespace

LexResult
lex(const SourceFile &file)
{
    LexResult out;
    std::string_view s = file.text();
    size_t i = 0;
    const size_t n = s.size();
    bool lineHasToken = false; ///< non-comment content seen on this line

    auto push = [&](Tok kind, size_t begin, size_t end) {
        Token t;
        t.kind = kind;
        t.text = s.substr(begin, end - begin);
        t.line = file.lineOf(begin);
        t.col = file.colOf(begin);
        out.tokens.push_back(t);
        lineHasToken = true;
    };

    auto skipString = [&](size_t from) -> size_t {
        // from points at the opening quote.
        char quote = s[from];
        size_t j = from + 1;
        while (j < n && s[j] != quote) {
            if (s[j] == '\\' && j + 1 < n)
                ++j;
            ++j;
        }
        return j < n ? j + 1 : n;
    };

    while (i < n) {
        char c = s[i];

        if (c == '\n') {
            lineHasToken = false;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line-continuation backslash: splices the next line onto this
        // one, so it is whitespace to the token stream (and must not
        // surface as a stray Punct that breaks token-adjacency rules).
        if (c == '\\' && i + 1 < n &&
            (s[i + 1] == '\n' ||
             (s[i + 1] == '\r' && i + 2 < n && s[i + 2] == '\n'))) {
            i += s[i + 1] == '\r' ? 3 : 2;
            continue;
        }

        // Comments.
        if (c == '/' && i + 1 < n && s[i + 1] == '/') {
            size_t end = s.find('\n', i);
            // A // comment whose line ends in a continuation backslash
            // extends onto the next line.
            while (end != std::string_view::npos && end > 0 &&
                   (s[end - 1] == '\\' ||
                    (s[end - 1] == '\r' && end > 1 && s[end - 2] == '\\')))
                end = s.find('\n', end + 1);
            if (end == std::string_view::npos)
                end = n;
            Comment cm;
            cm.text = s.substr(i + 2, end - i - 2);
            cm.line = file.lineOf(i);
            cm.ownLine = !lineHasToken;
            out.comments.push_back(cm);
            i = end;
            continue;
        }
        if (c == '/' && i + 1 < n && s[i + 1] == '*') {
            size_t end = s.find("*/", i + 2);
            size_t stop = end == std::string_view::npos ? n : end;
            Comment cm;
            cm.text = s.substr(i + 2, stop - i - 2);
            cm.line = file.lineOf(i);
            cm.ownLine = !lineHasToken;
            out.comments.push_back(cm);
            i = end == std::string_view::npos ? n : end + 2;
            continue;
        }

        // #include directives are swallowed whole: the <header> /
        // "header" operand must not leak identifiers into the stream.
        if (c == '#' && !lineHasToken) {
            size_t j = i + 1;
            while (j < n && (s[j] == ' ' || s[j] == '\t'))
                ++j;
            if (s.substr(j, 7) == "include") {
                while (i < n && s[i] != '\n') {
                    if (s[i] == '\\' && i + 1 < n && s[i + 1] == '\n')
                        ++i; // line continuation
                    ++i;
                }
                continue;
            }
            push(Tok::Punct, i, i + 1);
            ++i;
            continue;
        }

        // String / char literals (including raw strings).
        if (c == '"') {
            size_t end = skipString(i);
            push(Tok::Str, i, end);
            i = end;
            continue;
        }
        if (c == '\'') {
            size_t end = skipString(i);
            push(Tok::Char, i, end);
            i = end;
            continue;
        }

        if (isIdentStart(c)) {
            size_t j = i;
            while (j < n && isIdentChar(s[j]))
                ++j;
            // Raw string: one of the standard prefixes directly before
            // '"'. Identifiers merely *ending* in R (PRIuPTR-style
            // macro pastes) are ordinary idents before ordinary strings.
            if (j < n && s[j] == '"' &&
                isRawStringPrefix(s.substr(i, j - i))) {
                size_t d = j + 1;
                while (d < n && isRawDelimChar(s[d]) && d - j - 1 < 16)
                    ++d;
                if (d < n && s[d] == '(') {
                    std::string delim(s.substr(j + 1, d - j - 1));
                    std::string closer = ")" + delim + "\"";
                    size_t end = s.find(closer, d + 1);
                    end = end == std::string_view::npos
                              ? n
                              : end + closer.size();
                    push(Tok::Str, i, end);
                    i = end;
                    continue;
                }
                // Malformed raw string (no delimiter-terminating '('):
                // fall through and lex the prefix as an identifier.
            }
            push(Tok::Ident, i, j);
            i = j;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
            size_t j = i;
            while (j < n) {
                char d = s[j];
                if (isIdentChar(d) || d == '.') {
                    ++j;
                    continue;
                }
                // Digit separator: only between digits/hex-digits. A
                // bare apostrophe after a number is a char literal
                // (e.g. `case 1: f('x')` must not eat the quote).
                if (d == '\'' && j + 1 < n &&
                    std::isalnum(static_cast<unsigned char>(s[j + 1]))) {
                    ++j;
                    continue;
                }
                // Exponent sign: 1e+3, 0x1p-4.
                if ((d == '+' || d == '-') && j > i &&
                    (s[j - 1] == 'e' || s[j - 1] == 'E' ||
                     s[j - 1] == 'p' || s[j - 1] == 'P')) {
                    ++j;
                    continue;
                }
                break;
            }
            push(Tok::Number, i, j);
            i = j;
            continue;
        }

        // Punctuation, maximal munch.
        size_t len = 1;
        for (const char *p : PUNCT3)
            if (s.substr(i, 3) == p) {
                len = 3;
                break;
            }
        if (len == 1)
            for (const char *p : PUNCT2)
                if (s.substr(i, 2) == p) {
                    len = 2;
                    break;
                }
        push(Tok::Punct, i, i + len);
        i += len;
    }

    return out;
}

} // namespace minjie::analysis
