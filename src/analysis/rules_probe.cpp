/**
 * @file
 * MJ-PRB-*: architectural-state writes must flow through the approved
 * accessors so every DiffTest-compared bit has a single choke point
 * (the DRAV probes of paper Section III-B3 hang off these accessors).
 *
 * Approved homes — exempt from the rules because they ARE the
 * accessors / trap machinery:
 *   src/iss/arch_state.h   (setX / setF)
 *   src/iss/arch_state.cpp (takeTrap / takeInterrupt sequencing)
 *   src/iss/csrfile.h,.cpp (CsrFile::write + named accessors)
 */

#include "analysis/rules_impl.h"

namespace minjie::analysis {

namespace {

const std::vector<std::string> PRB_SCOPE = {
    "src/iss/",
    "src/nemu/",
    "src/difftest/",
};

const std::vector<std::string> PRB_EXEMPT = {
    "src/iss/arch_state.h",
    "src/iss/arch_state.cpp",
    "src/iss/csrfile.h",
    "src/iss/csrfile.cpp",
};

/** CSR fields whose values DiffTest compares verbatim; the cycle /
 *  instret counters are excluded (they have dedicated diff-rules and
 *  are legitimately bumped inline on hot paths). */
const std::vector<std::string_view> PROTECTED_CSRS = {
    "mstatus", "mepc",     "mcause", "mtval",   "mtvec", "mscratch",
    "mie",     "medeleg",  "mideleg", "sepc",   "scause", "stval",
    "stvec",   "sscratch", "satp",    "fflags", "frm",    "pmpcfg0",
    "pmpaddr0"};

/**
 * Direct store through a register-file member: `<expr>.x[i] = v`,
 * `->f[i] |= v`, or a post-increment after the subscript.
 */
class RegfileDirectStore : public BasicRule
{
  public:
    RegfileDirectStore(std::string id, std::string_view member,
                       std::string accessor)
        : BasicRule(std::move(id),
                    "direct " + std::string(member) +
                        "-regfile store bypasses ArchState::" + accessor,
                    PRB_SCOPE, PRB_EXEMPT),
          member_(member), accessor_(std::move(accessor))
    {
    }

    void
    run(const RuleContext &ctx, std::vector<Finding> &out) const override
    {
        const auto &toks = ctx.tokens;
        for (size_t i = 0; i + 2 < toks.size(); ++i) {
            if (!(toks[i].is(".") || toks[i].is("->")))
                continue;
            if (!toks[i + 1].isIdent(member_) || !toks[i + 2].is("["))
                continue;
            size_t close = matchBracket(toks, i + 2);
            if (close + 1 >= toks.size())
                continue;
            const Token &next = toks[close + 1];
            if (isAssignOp(next) || next.is("++") || next.is("--"))
                report(ctx, toks[i + 1],
                       "direct store to ArchState::" +
                           std::string(member_) +
                           "[] bypasses " + accessor_ +
                           " (x0 pinning and the probe choke point); "
                           "use the accessor",
                       out);
        }
    }

  private:
    std::string_view member_;
    std::string accessor_;
};

/** Direct store to a DiffTest-compared CsrFile field outside the CSR
 *  write-legalization / trap machinery. */
class CsrDirectStore final : public BasicRule
{
  public:
    CsrDirectStore()
        : BasicRule("MJ-PRB-003",
                    "direct CSR field store bypasses CsrFile's WARL "
                    "legalization / named accessors",
                    PRB_SCOPE, PRB_EXEMPT)
    {
    }

    void
    run(const RuleContext &ctx, std::vector<Finding> &out) const override
    {
        const auto &toks = ctx.tokens;
        for (size_t i = 0; i + 3 < toks.size(); ++i) {
            if (!toks[i].isIdent("csr"))
                continue;
            if (!toks[i + 1].is("."))
                continue;
            const Token &field = toks[i + 2];
            if (field.kind != Tok::Ident)
                continue;
            bool protect = false;
            for (std::string_view f : PROTECTED_CSRS)
                if (field.text == f) {
                    protect = true;
                    break;
                }
            if (!protect)
                continue;
            const Token &next = toks[i + 3];
            if (isAssignOp(next) || next.is("++") || next.is("--"))
                report(ctx, field,
                       "direct store to CsrFile::" +
                           std::string(field.text) +
                           " skips WARL legalization and the accessor "
                           "audit trail; use CsrFile::write() or a "
                           "named accessor",
                       out);
        }
    }
};

} // namespace

std::vector<std::unique_ptr<Rule>>
makeProbeRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<RegfileDirectStore>(
        "MJ-PRB-001", "x", "setX"));
    rules.push_back(std::make_unique<RegfileDirectStore>(
        "MJ-PRB-002", "f", "setF"));
    rules.push_back(std::make_unique<CsrDirectStore>());
    return rules;
}

} // namespace minjie::analysis
