#include "analysis/baseline.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace minjie::analysis {

bool
Baseline::load(const std::string &path)
{
    entries_.clear();
    FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return true; // no baseline == empty baseline
    char line[1024];
    while (std::fgets(line, sizeof(line), f)) {
        char rule[64], file[512];
        uint64_t fp = 0;
        if (line[0] == '#' || line[0] == '\n')
            continue;
        if (std::sscanf(line, "%63s %511s %16" SCNx64, rule, file, &fp) !=
            3)
            continue;
        Entry e;
        e.ruleId = rule;
        e.path = file;
        e.fingerprint = fp;
        entries_.push_back(std::move(e));
    }
    std::fclose(f);
    return true;
}

bool
Baseline::write(const std::string &path,
                const std::vector<Finding> &findings)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "# minjie-lint baseline: known findings, one per "
                    "line. Regenerate with --update-baseline.\n");
    for (const Finding &fd : findings)
        std::fprintf(f, "%s %s %016" PRIx64 "  # %s\n", fd.ruleId.c_str(),
                     fd.path.c_str(), fd.fingerprint(),
                     fd.snippet.c_str());
    std::fclose(f);
    return true;
}

bool
Baseline::matches(const Finding &f)
{
    uint64_t fp = f.fingerprint();
    for (Entry &e : entries_) {
        if (e.fingerprint == fp && e.ruleId == f.ruleId &&
            e.path == f.path) {
            e.used = true;
            return true;
        }
    }
    return false;
}

std::vector<std::string>
Baseline::unusedEntries() const
{
    std::vector<std::string> out;
    for (const Entry &e : entries_)
        if (!e.used)
            out.push_back(e.ruleId + " " + e.path);
    return out;
}

} // namespace minjie::analysis
