/**
 * @file
 * Internal convenience base for concrete rules: stores id, summary,
 * scope, and exemptions so rule classes only implement run().
 */

#ifndef MINJIE_ANALYSIS_RULES_IMPL_H
#define MINJIE_ANALYSIS_RULES_IMPL_H

#include <utility>

#include "analysis/rule.h"

namespace minjie::analysis {

class BasicRule : public Rule
{
  public:
    BasicRule(std::string id, std::string summary,
              std::vector<std::string> scope,
              std::vector<std::string> exempt = {})
        : id_(std::move(id)), summary_(std::move(summary)),
          scope_(std::move(scope)), exempt_(std::move(exempt))
    {
    }

    std::string_view id() const override { return id_; }
    std::string_view summary() const override { return summary_; }
    const std::vector<std::string> &scope() const override
    {
        return scope_;
    }
    const std::vector<std::string> &exemptFiles() const override
    {
        return exempt_;
    }

  private:
    std::string id_;
    std::string summary_;
    std::vector<std::string> scope_;
    std::vector<std::string> exempt_;
};

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_RULES_IMPL_H
