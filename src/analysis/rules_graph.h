/**
 * @file
 * Interprocedural rule interface: rules that run once over the merged
 * ProgramModel instead of per file. Families:
 *
 *   MJ-FRK2-*  fork-unsafe work transitively reachable from LightSSS
 *   MJ-DET2-*  nondeterminism taint reaching deterministic paths
 *   MJ-PRB2-*  arch-state stores reachable around the accessors
 *   MJ-LCK-*   lock-acquisition-order cycles
 */

#ifndef MINJIE_ANALYSIS_RULES_GRAPH_H
#define MINJIE_ANALYSIS_RULES_GRAPH_H

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/finding.h"

namespace minjie::analysis {

/** Everything a graph rule may inspect. */
struct GraphRuleContext
{
    const ProgramModel &model;
    /** Whitespace-trimmed source text of path:line ("" when the file
     *  is not available, e.g. purely cached runs). */
    std::function<std::string(const std::string &path, uint32_t line)>
        snippet;
};

class GraphRule
{
  public:
    virtual ~GraphRule() = default;

    virtual std::string_view id() const = 0;

    /** One-line description rendered into SARIF rule metadata. */
    virtual std::string_view summary() const = 0;

    virtual void run(const GraphRuleContext &ctx,
                     std::vector<Finding> &out) const = 0;
};

/** The interprocedural rule set, in stable id order. */
std::vector<std::unique_ptr<GraphRule>> makeGraphRules();

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_RULES_GRAPH_H
