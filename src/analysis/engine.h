/**
 * @file
 * The lint engine: walks the tree, tokenizes each source file, runs
 * every per-file rule in scope, merges the per-TU symbol indexes into
 * a whole-program call graph, runs the interprocedural rules over it,
 * then applies inline suppressions and the baseline. An optional
 * content-hash-keyed cache skips the per-file work for unchanged
 * files, making warm repo-wide runs a small fraction of cold ones.
 */

#ifndef MINJIE_ANALYSIS_ENGINE_H
#define MINJIE_ANALYSIS_ENGINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cache.h"
#include "analysis/finding.h"
#include "analysis/rule.h"
#include "analysis/rules_graph.h"

namespace minjie::analysis {

struct EngineConfig
{
    std::string root;                  ///< repo root (absolute or cwd-rel)
    std::vector<std::string> scanDirs = {"src", "tools"};
    std::vector<std::string> excludePrefixes; ///< repo-relative prefixes
    std::string baselinePath;          ///< empty = no baseline
    std::string cachePath;             ///< empty = no incremental cache
    std::vector<std::string> onlyRules; ///< restrict to these ids
    bool ignoreScopes = false; ///< run every rule on every file (tests)
};

struct EngineResult
{
    std::vector<Finding> findings;      ///< unsuppressed, sorted
    uint64_t filesScanned = 0;
    uint64_t filesLexed = 0; ///< cache misses (== filesScanned when cold)
    uint64_t suppressedInline = 0;
    uint64_t suppressedBaseline = 0;
    std::vector<std::string> staleBaseline; ///< unused baseline entries
};

class Engine
{
  public:
    explicit Engine(EngineConfig cfg);

    /** Scan the configured tree (per-file + interprocedural pass). */
    EngineResult run() const;

    /** Lint a single in-memory file with the per-file rules only
     *  (unit tests / fixtures). */
    EngineResult runOnFile(const SourceFile &file) const;

    /** Full pipeline — per-file rules, call graph, graph rules — over
     *  in-memory files (multi-TU fixtures in tests). No baseline, no
     *  cache. */
    EngineResult runOnFiles(const std::vector<SourceFile> &files) const;

    const std::vector<std::unique_ptr<Rule>> &rules() const
    {
        return rules_;
    }

    const std::vector<std::unique_ptr<GraphRule>> &graphRules() const
    {
        return graphRules_;
    }

  private:
    bool idSelected(std::string_view id) const;
    bool ruleApplies(const Rule &r, const std::string &relPath) const;

    /** Lex + per-file rules + suppressions + index for one file. */
    CachedTu lintOneFile(const SourceFile &file) const;

    EngineConfig cfg_;
    std::vector<std::unique_ptr<Rule>> rules_;
    std::vector<std::unique_ptr<GraphRule>> graphRules_;
};

/** Repo-relative paths of every lintable file under cfg's scan dirs,
 *  sorted so reports are stable across filesystems. */
std::vector<std::string> collectFiles(const EngineConfig &cfg);

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_ENGINE_H
