/**
 * @file
 * The lint engine: walks the tree, tokenizes each source file, runs
 * every rule in scope, applies inline suppressions and the baseline,
 * and returns the surviving findings.
 */

#ifndef MINJIE_ANALYSIS_ENGINE_H
#define MINJIE_ANALYSIS_ENGINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/finding.h"
#include "analysis/rule.h"

namespace minjie::analysis {

struct EngineConfig
{
    std::string root;                  ///< repo root (absolute or cwd-rel)
    std::vector<std::string> scanDirs = {"src", "tools"};
    std::vector<std::string> excludePrefixes; ///< repo-relative prefixes
    std::string baselinePath;          ///< empty = no baseline
    std::vector<std::string> onlyRules; ///< restrict to these ids
    bool ignoreScopes = false; ///< run every rule on every file (tests)
};

struct EngineResult
{
    std::vector<Finding> findings;      ///< unsuppressed, sorted
    uint64_t filesScanned = 0;
    uint64_t suppressedInline = 0;
    uint64_t suppressedBaseline = 0;
    std::vector<std::string> staleBaseline; ///< unused baseline entries
};

class Engine
{
  public:
    explicit Engine(EngineConfig cfg);

    /** Scan the configured tree. */
    EngineResult run() const;

    /** Lint a single in-memory file (unit tests / fixtures). */
    EngineResult runOnFile(const SourceFile &file) const;

    const std::vector<std::unique_ptr<Rule>> &rules() const
    {
        return rules_;
    }

  private:
    bool ruleSelected(const Rule &r) const;
    bool ruleApplies(const Rule &r, const std::string &relPath) const;
    void lintFile(const SourceFile &file, std::vector<Finding> &out,
                  uint64_t &suppressedInline) const;

    EngineConfig cfg_;
    std::vector<std::unique_ptr<Rule>> rules_;
};

/** Repo-relative paths of every lintable file under cfg's scan dirs,
 *  sorted so reports are stable across filesystems. */
std::vector<std::string> collectFiles(const EngineConfig &cfg);

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_ENGINE_H
