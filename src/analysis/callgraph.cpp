#include "analysis/callgraph.h"

#include <algorithm>
#include <deque>

namespace minjie::analysis {

namespace {

/** True when @p q is @p want or ends with "::" + @p want. */
bool
qualMatches(const std::string &q, const std::string &want)
{
    if (q == want)
        return true;
    if (q.size() < want.size() + 2)
        return false;
    size_t at = q.size() - want.size();
    return q.compare(at, want.size(), want) == 0 &&
           q[at - 1] == ':' && q[at - 2] == ':';
}

/** True when @p inner is @p outer or nested inside it (`outer::...`). */
bool
scopeContains(const std::string &outer, const std::string &inner)
{
    if (outer.empty() || outer == inner)
        return true;
    return inner.size() > outer.size() + 2 &&
           inner.compare(0, outer.size(), outer) == 0 &&
           inner[outer.size()] == ':' && inner[outer.size() + 1] == ':';
}

} // namespace

void
ProgramModel::build(const std::vector<TuIndex> &tus)
{
    std::vector<const TuIndex *> ptrs;
    ptrs.reserve(tus.size());
    for (const TuIndex &tu : tus)
        ptrs.push_back(&tu);
    build(ptrs);
}

void
ProgramModel::build(const std::vector<const TuIndex *> &tus)
{
    nodes_.clear();
    byName_.clear();
    unordered_.clear();
    unorderedByTu_.clear();
    varTypes_.clear();

    for (const TuIndex *tu : tus) {
        for (const std::string &n : tu->unorderedNames) {
            unordered_.insert(n);
            unorderedByTu_[tu->path].insert(n);
        }
        for (const auto &[var, type] : tu->varTypes)
            varTypes_[var].insert(type);
        for (const FunctionIndex &fn : tu->functions) {
            Node node;
            node.fn = &fn;
            node.path = tu->path;
            nodes_.push_back(std::move(node));
        }
    }

    // Deterministic node order regardless of scan order.
    std::sort(nodes_.begin(), nodes_.end(),
              [](const Node &a, const Node &b) {
                  if (a.fn->qualName != b.fn->qualName)
                      return a.fn->qualName < b.fn->qualName;
                  if (a.path != b.path)
                      return a.path < b.path;
                  return a.fn->line < b.fn->line;
              });

    for (uint32_t id = 0; id < nodes_.size(); ++id)
        byName_[nodes_[id].fn->name].push_back(id);

    // Resolve edges. Candidates share the bare name; then:
    //  - a qualifier chain at the call site narrows to definitions
    //    whose qualName ends with it;
    //  - a member call (obj.f()) narrows to definitions whose
    //    enclosing class matches a declared type of `obj` when the
    //    index saw one (an empty result means the callee lives
    //    outside the repo, e.g. std::fstream::write); receivers with
    //    no type hint stay conservative and match any definition;
    //  - a plain unqualified call can only name a function visible
    //    from the caller's scope: the candidate's enclosing scope
    //    must be a prefix of the caller's. This is what keeps
    //    `write(fd, ...)` (a syscall) from resolving to
    //    SomeClass::write in an unrelated subsystem.
    for (uint32_t id = 0; id < nodes_.size(); ++id) {
        Node &node = nodes_[id];
        std::string callerScope = node.fn->qualName;
        size_t cut = callerScope.rfind("::");
        callerScope =
            cut == std::string::npos ? "" : callerScope.substr(0, cut);
        for (uint32_t ci = 0;
             ci < static_cast<uint32_t>(node.fn->calls.size()); ++ci) {
            const CallEvent &c = node.fn->calls[ci];
            auto it = byName_.find(c.name);
            if (it == byName_.end())
                continue;
            std::vector<uint32_t> targets;
            if (!c.qualHint.empty()) {
                std::string want = c.qualHint + "::" + c.name;
                for (uint32_t t : it->second)
                    if (qualMatches(nodes_[t].fn->qualName, want))
                        targets.push_back(t);
                if (targets.empty())
                    targets = it->second; // alias/using: stay broad
            } else if (c.member) {
                auto vt = c.recv.empty() ? varTypes_.end()
                                         : varTypes_.find(c.recv);
                if (vt == varTypes_.end()) {
                    targets = it->second;
                } else {
                    for (uint32_t t : it->second) {
                        const std::string &q = nodes_[t].fn->qualName;
                        size_t tc = q.rfind("::");
                        if (tc == std::string::npos || tc == 0)
                            continue;
                        size_t sc = q.rfind("::", tc - 1);
                        std::string cls = q.substr(
                            sc == std::string::npos ? 0 : sc + 2,
                            tc - (sc == std::string::npos ? 0
                                                          : sc + 2));
                        if (vt->second.count(cls) != 0)
                            targets.push_back(t);
                    }
                }
            } else {
                for (uint32_t t : it->second) {
                    const std::string &q = nodes_[t].fn->qualName;
                    size_t tc = q.rfind("::");
                    std::string scope =
                        tc == std::string::npos ? "" : q.substr(0, tc);
                    if (scopeContains(scope, callerScope))
                        targets.push_back(t);
                }
            }
            for (uint32_t t : targets)
                node.callees.push_back({t, c.line, ci});
        }
        std::sort(node.callees.begin(), node.callees.end(),
                  [](const Edge &a, const Edge &b) {
                      if (a.target != b.target)
                          return a.target < b.target;
                      return a.line < b.line;
                  });
        node.callees.erase(
            std::unique(node.callees.begin(), node.callees.end(),
                        [](const Edge &a, const Edge &b) {
                            return a.target == b.target;
                        }),
            node.callees.end());
    }
}

const std::vector<uint32_t> &
ProgramModel::byName(const std::string &name) const
{
    static const std::vector<uint32_t> none;
    auto it = byName_.find(name);
    return it == byName_.end() ? none : it->second;
}

bool
ProgramModel::isUnorderedElsewhere(const std::string &name,
                                   const std::string &path) const
{
    if (unordered_.count(name) == 0)
        return false;
    for (const auto &[tu, names] : unorderedByTu_)
        if (tu != path && names.count(name) != 0)
            return true;
    return false;
}

std::vector<ProgramModel::Parent>
ProgramModel::reach(const std::vector<uint32_t> &roots,
                    const std::function<bool(uint32_t)> &enter) const
{
    std::vector<Parent> parents(nodes_.size());
    std::deque<uint32_t> queue;

    std::vector<uint32_t> sortedRoots = roots;
    std::sort(sortedRoots.begin(), sortedRoots.end());
    for (uint32_t r : sortedRoots) {
        if (parents[r].node != -1 || (enter && !enter(r)))
            continue;
        parents[r].node = -2;
        queue.push_back(r);
    }

    while (!queue.empty()) {
        uint32_t u = queue.front();
        queue.pop_front();
        for (const Edge &e : nodes_[u].callees) {
            if (parents[e.target].node != -1)
                continue;
            if (enter && !enter(e.target))
                continue;
            parents[e.target].node = static_cast<int32_t>(u);
            parents[e.target].line = e.line;
            queue.push_back(e.target);
        }
    }
    return parents;
}

std::vector<std::string>
ProgramModel::witness(const std::vector<Parent> &parents,
                      uint32_t target, uint32_t eventLine) const
{
    // Collect the chain root..target, then render each frame with the
    // line of the call that leads to the NEXT frame.
    std::vector<uint32_t> chain;
    int32_t cur = static_cast<int32_t>(target);
    while (cur >= 0) {
        chain.push_back(static_cast<uint32_t>(cur));
        if (parents[static_cast<size_t>(cur)].node == -2)
            break;
        cur = parents[static_cast<size_t>(cur)].node;
    }
    std::reverse(chain.begin(), chain.end());

    std::vector<std::string> frames;
    frames.reserve(chain.size());
    for (size_t i = 0; i < chain.size(); ++i) {
        const Node &n = nodes_[chain[i]];
        uint32_t line = i + 1 < chain.size()
                            ? parents[chain[i + 1]].line
                            : eventLine;
        frames.push_back(n.fn->qualName + " (" + n.path + ":" +
                         std::to_string(line) + ")");
    }
    return frames;
}

} // namespace minjie::analysis
