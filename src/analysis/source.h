/**
 * @file
 * A source file loaded for analysis: raw text plus a line table so
 * byte offsets translate to 1-based line/column positions.
 */

#ifndef MINJIE_ANALYSIS_SOURCE_H
#define MINJIE_ANALYSIS_SOURCE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace minjie::analysis {

class SourceFile
{
  public:
    /** Wrap @p text as file @p relPath (repo-relative, '/'-separated). */
    SourceFile(std::string relPath, std::string text);

    /** Load @p absPath from disk. @return false on I/O error. */
    static bool load(const std::string &absPath, const std::string &relPath,
                     SourceFile &out);

    const std::string &path() const { return relPath_; }
    std::string_view text() const { return text_; }

    /** 1-based line number containing byte @p offset. */
    uint32_t lineOf(size_t offset) const;

    /** 1-based column of byte @p offset within its line. */
    uint32_t colOf(size_t offset) const;

    /** Text of 1-based line @p line, without the newline. */
    std::string_view lineText(uint32_t line) const;

    uint32_t lineCount() const
    {
        return static_cast<uint32_t>(lineStarts_.size());
    }

  private:
    std::string relPath_;
    std::string text_;
    std::vector<size_t> lineStarts_; ///< byte offset of each line start
};

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_SOURCE_H
