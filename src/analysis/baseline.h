/**
 * @file
 * Checked-in finding baseline.
 *
 * The baseline lets a new rule land before every legacy finding is
 * fixed: known findings are recorded by fingerprint and reported
 * separately from fresh ones. The repo's own baseline
 * (`.minjie-lint-baseline`) is kept empty — the tree is lint-clean —
 * but the mechanism is exercised by tests and available to future
 * rules.
 *
 * Format: one entry per line,
 *   <rule-id> <path> <16-hex fingerprint>  # <snippet>
 * '#' starts a comment; blank lines are ignored.
 */

#ifndef MINJIE_ANALYSIS_BASELINE_H
#define MINJIE_ANALYSIS_BASELINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/finding.h"

namespace minjie::analysis {

class Baseline
{
  public:
    /** Load @p path. Missing file == empty baseline (returns true);
     *  malformed lines are skipped. */
    bool load(const std::string &path);

    /** Serialize @p findings as a baseline file at @p path. */
    static bool write(const std::string &path,
                      const std::vector<Finding> &findings);

    /** True when @p f matches a recorded entry (marks it used). */
    bool matches(const Finding &f);

    size_t size() const { return entries_.size(); }

    /** Entries no finding matched: stale, should be pruned. */
    std::vector<std::string> unusedEntries() const;

  private:
    struct Entry
    {
        std::string ruleId;
        std::string path;
        uint64_t fingerprint;
        bool used = false;
    };
    std::vector<Entry> entries_;
};

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_BASELINE_H
