/**
 * @file
 * Report renderers for lint results: human (compiler-style lines),
 * JSON (campaign-tooling-friendly, same JsonWriter as the campaign
 * reports), and SARIF 2.1.0 (CI code-scanning upload).
 */

#ifndef MINJIE_ANALYSIS_REPORT_H
#define MINJIE_ANALYSIS_REPORT_H

#include <string>

#include "analysis/engine.h"

namespace minjie::analysis {

/** `path:line:col: warning: message [rule-id]` plus a summary line. */
std::string renderHuman(const EngineResult &res);

/** Compact JSON: findings array + counters. */
std::string renderJson(const EngineResult &res);

/** SARIF 2.1.0 with rule metadata from @p engine's registry. */
std::string renderSarif(const EngineResult &res, const Engine &engine);

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_REPORT_H
