#include "analysis/cache.h"

#include <fstream>
#include <sstream>
#include <string_view>

namespace minjie::analysis {

namespace {

constexpr std::string_view MAGIC = "minjie-lint-cache v1";

/** \-escape tabs/newlines/backslashes so any string fits one field. */
std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '\t': out += "\\t"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        default: out += c;
        }
    }
    return out;
}

std::string
unesc(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
        case '\\': out += '\\'; break;
        case 't': out += '\t'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        default: out += s[i];
        }
    }
    return out;
}

/** Views into @p line — valid only while the line buffer lives. */
std::vector<std::string_view>
splitTabs(std::string_view line)
{
    std::vector<std::string_view> out;
    size_t start = 0;
    while (true) {
        size_t tab = line.find('\t', start);
        if (tab == std::string_view::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

std::string
joinComma(const std::vector<std::string> &v)
{
    std::string out;
    for (const std::string &s : v) {
        if (!out.empty())
            out += ",";
        out += esc(s); // names never contain ',' post-escape in practice
    }
    return out.empty() ? "-" : out;
}

std::vector<std::string>
splitComma(std::string_view s)
{
    std::vector<std::string> out;
    if (s == "-")
        return out;
    size_t start = 0;
    while (true) {
        size_t c = s.find(',', start);
        if (c == std::string_view::npos) {
            out.push_back(unesc(s.substr(start)));
            return out;
        }
        out.push_back(unesc(s.substr(start, c - start)));
        start = c + 1;
    }
}

uint64_t
toU64(std::string_view s)
{
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            break;
        v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    return v;
}

uint32_t
toU32(std::string_view s)
{
    return static_cast<uint32_t>(toU64(s));
}

} // namespace

bool
AnalysisCache::load(const std::string &path)
{
    tus_.clear();
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line) || line != MAGIC)
        return false;

    CachedTu cur;
    bool open = false;
    FunctionIndex *fn = nullptr;

    auto commit = [&]() {
        if (open)
            tus_.emplace(cur.path, std::move(cur));
        cur = CachedTu();
        fn = nullptr;
        open = false;
    };

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::vector<std::string_view> f = splitTabs(line);
        std::string_view tag = f[0];
        if (tag == "file" && f.size() >= 3) {
            commit();
            cur.path = unesc(f[1]);
            cur.hash = toU64(f[2]);
            cur.index.path = cur.path;
            open = true;
        } else if (!open) {
            tus_.clear();
            return false;
        } else if (tag == "N" && f.size() >= 2) {
            cur.suppressedInline = toU64(f[1]);
        } else if (tag == "S" && f.size() >= 3) {
            cur.supEntries.push_back({toU32(f[1]), unesc(f[2])});
        } else if (tag == "X" && f.size() >= 6) {
            Finding fd;
            fd.ruleId = unesc(f[1]);
            fd.path = cur.path;
            fd.line = toU32(f[2]);
            fd.col = toU32(f[3]);
            fd.message = unesc(f[4]);
            fd.snippet = unesc(f[5]);
            cur.findings.push_back(std::move(fd));
        } else if (tag == "U" && f.size() >= 2) {
            cur.index.unorderedNames.push_back(unesc(f[1]));
        } else if (tag == "L" && f.size() >= 2) {
            cur.index.lockNames.push_back(unesc(f[1]));
        } else if (tag == "V" && f.size() >= 3) {
            cur.index.varTypes.emplace_back(unesc(f[1]), unesc(f[2]));
        } else if (tag == "F" && f.size() >= 4) {
            FunctionIndex fi;
            fi.line = toU32(f[1]);
            fi.qualName = unesc(f[2]);
            fi.name = unesc(f[3]);
            cur.index.functions.push_back(std::move(fi));
            fn = &cur.index.functions.back();
        } else if (fn == nullptr) {
            tus_.clear();
            return false;
        } else if (tag == "C" && f.size() >= 7) {
            CallEvent c;
            c.line = toU32(f[1]);
            c.name = unesc(f[2]);
            c.qualHint = f[3] == "-" ? "" : unesc(f[3]);
            c.firstArg = f[4] == "-" ? "" : unesc(f[4]);
            c.member = f[5] == "1";
            c.heldLocks = splitComma(f[6]);
            if (f.size() >= 8 && f[7] != "-")
                c.recv = unesc(f[7]);
            fn->calls.push_back(std::move(c));
        } else if (tag == "K" && f.size() >= 4) {
            LockEvent l;
            l.line = toU32(f[1]);
            l.lockName = unesc(f[2]);
            l.heldBefore = splitComma(f[3]);
            fn->locks.push_back(std::move(l));
        } else if (tag == "D" && f.size() >= 3) {
            fn->detSources.push_back({unesc(f[2]), toU32(f[1])});
        } else if (tag == "I" && f.size() >= 3) {
            IterEvent e;
            e.line = toU32(f[1]);
            e.names = splitComma(f[2]);
            fn->iterUses.push_back(std::move(e));
        } else if (tag == "W" && f.size() >= 3) {
            fn->archWrites.push_back({unesc(f[2]), toU32(f[1])});
        }
        // Unknown tags are skipped: forward-compatible within v1.
    }
    commit();
    return true;
}

bool
AnalysisCache::write(const std::string &path) const
{
    std::ostringstream out;
    out << MAGIC << "\n";
    for (const auto &[rel, tu] : tus_) {
        out << "file\t" << esc(rel) << "\t" << tu.hash << "\n";
        out << "N\t" << tu.suppressedInline << "\n";
        for (const auto &e : tu.supEntries)
            out << "S\t" << e.line << "\t" << esc(e.ruleId) << "\n";
        for (const Finding &fd : tu.findings)
            out << "X\t" << esc(fd.ruleId) << "\t" << fd.line << "\t"
                << fd.col << "\t" << esc(fd.message) << "\t"
                << esc(fd.snippet) << "\n";
        for (const std::string &u : tu.index.unorderedNames)
            out << "U\t" << esc(u) << "\n";
        for (const std::string &l : tu.index.lockNames)
            out << "L\t" << esc(l) << "\n";
        for (const auto &[var, type] : tu.index.varTypes)
            out << "V\t" << esc(var) << "\t" << esc(type) << "\n";
        for (const FunctionIndex &fi : tu.index.functions) {
            out << "F\t" << fi.line << "\t" << esc(fi.qualName) << "\t"
                << esc(fi.name) << "\n";
            for (const CallEvent &c : fi.calls)
                out << "C\t" << c.line << "\t" << esc(c.name) << "\t"
                    << (c.qualHint.empty() ? "-" : esc(c.qualHint))
                    << "\t"
                    << (c.firstArg.empty() ? "-" : esc(c.firstArg))
                    << "\t" << (c.member ? "1" : "0") << "\t"
                    << joinComma(c.heldLocks) << "\t"
                    << (c.recv.empty() ? "-" : esc(c.recv)) << "\n";
            for (const LockEvent &l : fi.locks)
                out << "K\t" << l.line << "\t" << esc(l.lockName)
                    << "\t" << joinComma(l.heldBefore) << "\n";
            for (const DetEvent &d : fi.detSources)
                out << "D\t" << d.line << "\t" << esc(d.what) << "\n";
            for (const IterEvent &e : fi.iterUses)
                out << "I\t" << e.line << "\t" << joinComma(e.names)
                    << "\n";
            for (const WriteEvent &w : fi.archWrites)
                out << "W\t" << w.line << "\t" << esc(w.what) << "\n";
        }
    }

    std::ofstream f(path, std::ios::trunc);
    if (!f)
        return false;
    f << out.str();
    return static_cast<bool>(f);
}

const CachedTu *
AnalysisCache::lookup(const std::string &relPath, uint64_t hash) const
{
    auto it = tus_.find(relPath);
    if (it == tus_.end() || it->second.hash != hash)
        return nullptr;
    return &it->second;
}

CachedTu &
AnalysisCache::put(CachedTu tu)
{
    std::string key = tu.path;
    return tus_[key] = std::move(tu);
}

} // namespace minjie::analysis
