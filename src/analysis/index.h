/**
 * @file
 * Per-translation-unit symbol index: the facts the interprocedural
 * pass needs, extracted once per file from the existing token stream.
 *
 * The index deliberately stays syntactic — no type resolution, no
 * overload sets. Each function definition carries the event lists the
 * graph rules consume (call sites with held locks, lock acquisitions,
 * nondeterminism sources, container iterations, arch-state writes),
 * and each TU contributes the container/lock object names it declares.
 * Cross-TU meaning (which names are unordered, which calls resolve to
 * which definitions) is assigned later by ProgramModel so a cached
 * index stays valid as long as its file's bytes are unchanged.
 */

#ifndef MINJIE_ANALYSIS_INDEX_H
#define MINJIE_ANALYSIS_INDEX_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lexer.h"
#include "analysis/source.h"

namespace minjie::analysis {

/** A plain or member call inside a function body. */
struct CallEvent
{
    std::string name;     ///< unqualified callee name
    std::string qualHint; ///< `A::B` qualifier chain, "" when absent
    std::string firstArg; ///< first-arg text for stdio calls ("" else)
    std::string recv;     ///< member-call receiver name ("" when not a
                          ///< single identifier)
    uint32_t line = 0;
    bool member = false;  ///< receiver-dot/arrow call (`obj.f()`)
    std::vector<std::string> heldLocks; ///< locks held at the call
};

/** A lock acquisition (guard construction or explicit .lock()). */
struct LockEvent
{
    std::string lockName; ///< source text of the locked object
    uint32_t line = 0;
    std::vector<std::string> heldBefore; ///< locks already held
};

/** A direct nondeterminism source (host RNG, wall clock, ...). */
struct DetEvent
{
    std::string what; ///< e.g. "rand()", "std::mt19937"
    uint32_t line = 0;
};

/** Container iteration whose order matters if the container turns out
 *  to be unordered (resolved cross-TU by ProgramModel). */
struct IterEvent
{
    std::vector<std::string> names; ///< candidate container names
    uint32_t line = 0;
};

/** A direct architectural-state store (regfile / protected CSR). */
struct WriteEvent
{
    std::string what; ///< e.g. "x[] store", "csr.mstatus store"
    uint32_t line = 0;
};

/** One function (or method) definition and everything inside it. */
struct FunctionIndex
{
    std::string qualName; ///< Namespace::Class::name as written
    std::string name;     ///< last component
    uint32_t line = 0;    ///< line of the name token
    std::vector<CallEvent> calls;
    std::vector<LockEvent> locks;
    std::vector<DetEvent> detSources;
    std::vector<IterEvent> iterUses;
    std::vector<WriteEvent> archWrites;
};

/** Everything indexed from one file. */
struct TuIndex
{
    std::string path; ///< repo-relative
    std::vector<FunctionIndex> functions; ///< in definition order
    std::vector<std::string> unorderedNames; ///< names declared std::unordered_*
    std::vector<std::string> lockNames;      ///< names declared as mutexes
    /** (variable, type) pairs from `Type name;`-shaped declarations —
     *  the receiver-type hints that narrow member-call resolution. */
    std::vector<std::pair<std::string, std::string>> varTypes;
};

/** Build the index for one lexed file. */
TuIndex buildIndex(const SourceFile &file, const LexResult &lexed);

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_INDEX_H
