/**
 * @file
 * Whole-program model: merged TU indexes, a cross-TU call graph with
 * deterministic node ordering, and a reachability engine that keeps
 * parent pointers so every graph finding carries a call-path witness.
 *
 * Resolution is name-based (no types, no overload sets): a call site
 * `f(...)` gets an edge to every indexed definition named `f`; a
 * qualifier chain at the call site (`Ns::Cls::f`) narrows the
 * candidates when it matches, and a member call `obj.f()` narrows to
 * definitions in classes matching obj's declared type when the index
 * saw a declaration for obj. This over-approximates — exactly right
 * for the "nothing bad is reachable" rules built on top.
 */

#ifndef MINJIE_ANALYSIS_CALLGRAPH_H
#define MINJIE_ANALYSIS_CALLGRAPH_H

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/index.h"

namespace minjie::analysis {

/** One resolved call-graph edge. */
struct Edge
{
    uint32_t target = 0; ///< callee node id
    uint32_t line = 0;   ///< call-site line in the caller
    uint32_t call = 0;   ///< index into fn.calls of the site
};

/** One function definition in the merged program. Holds a pointer
 *  into the TuIndexes passed to build(), which must outlive the
 *  model — copying every FunctionIndex would double the warm-run
 *  cost of the incremental cache. */
struct Node
{
    const FunctionIndex *fn = nullptr;
    std::string path;          ///< defining file, repo-relative
    std::vector<Edge> callees; ///< sorted by (target, line)
};

class ProgramModel
{
  public:
    /** Merge @p tus (any order) into a deterministic graph. */
    void build(const std::vector<TuIndex> &tus);

    /** Zero-copy variant: @p tus must outlive the call (the graph
     *  still copies what it keeps; only the pass-in copy is saved). */
    void build(const std::vector<const TuIndex *> &tus);

    const std::vector<Node> &nodes() const { return nodes_; }

    /** Node ids of every definition named @p name (sorted). */
    const std::vector<uint32_t> &byName(const std::string &name) const;

    /** True when @p name is declared as a std::unordered_* container
     *  anywhere in the program. */
    bool isUnordered(const std::string &name) const
    {
        return unordered_.count(name) != 0;
    }

    /** True when some TU other than @p path declares @p name as an
     *  unordered container (the cross-TU case a per-file rule cannot
     *  see). */
    bool isUnorderedElsewhere(const std::string &name,
                              const std::string &path) const;

    /** BFS parent link; node -2 marks a root, -1 unreached. */
    struct Parent
    {
        int32_t node = -1;
        uint32_t line = 0; ///< call-site line in the parent
    };

    /**
     * Multi-root BFS over the call graph. @p enter gates traversal:
     * a node failing it is neither visited nor expanded (used for
     * sanctioned choke points like Logger::log or the CSR accessors).
     * Roots are visited in ascending id order so witness paths are
     * deterministic.
     */
    std::vector<Parent>
    reach(const std::vector<uint32_t> &roots,
          const std::function<bool(uint32_t)> &enter) const;

    /**
     * Call-path witness for @p target: one frame per hop from a root,
     * each "qualName (path:line)" where line is the call site leading
     * to the next frame (the last frame uses @p eventLine).
     */
    std::vector<std::string>
    witness(const std::vector<Parent> &parents, uint32_t target,
            uint32_t eventLine) const;

  private:
    std::vector<Node> nodes_;
    std::map<std::string, std::vector<uint32_t>> byName_;
    std::set<std::string> unordered_;
    std::map<std::string, std::set<std::string>> unorderedByTu_;
    /// variable name -> declared type names seen anywhere (union over
    /// TUs; a name reused with different types keeps every hint)
    std::map<std::string, std::set<std::string>> varTypes_;
};

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_CALLGRAPH_H
