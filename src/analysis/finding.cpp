#include "analysis/finding.h"

#include <cctype>

namespace minjie::analysis {

uint64_t
fnv1a(std::string_view s, uint64_t seed)
{
    uint64_t h = seed;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

uint64_t
Finding::fingerprint() const
{
    std::string norm;
    norm.reserve(snippet.size());
    for (char c : snippet)
        if (!std::isspace(static_cast<unsigned char>(c)))
            norm += c;
    uint64_t h = fnv1a(ruleId);
    h = fnv1a(path, h);
    h = fnv1a(norm, h);
    return h;
}

} // namespace minjie::analysis
