/**
 * @file
 * Inline suppressions: `// lint:allow <RULE-ID> <justification>`.
 *
 * A directive on the flagged line (or on a comment line directly
 * above it) suppresses that rule there. The justification is
 * mandatory — a bare allow is itself reported (MJ-SUP-001) so
 * suppressions cannot silently accumulate without rationale.
 */

#ifndef MINJIE_ANALYSIS_SUPPRESS_H
#define MINJIE_ANALYSIS_SUPPRESS_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/finding.h"
#include "analysis/lexer.h"

namespace minjie::analysis {

class Suppressions
{
  public:
    struct Entry
    {
        uint32_t line; ///< line the directive covers
        std::string ruleId;
    };

    /**
     * Parse every lint:allow directive in @p comments (from @p path).
     * Malformed directives (missing rule id or justification) are
     * appended to @p diagnostics as MJ-SUP-001 findings.
     */
    Suppressions(const std::string &path,
                 const std::vector<Comment> &comments,
                 const SourceFile &file,
                 std::vector<Finding> &diagnostics);

    /** Rebuild from entries cached by a previous run. */
    explicit Suppressions(std::vector<Entry> entries)
        : entries_(std::move(entries))
    {
    }

    /** True when @p ruleId is allowed on @p line. */
    bool allows(uint32_t line, const std::string &ruleId) const;

    /** Parsed directives, for the incremental cache. */
    const std::vector<Entry> &entries() const { return entries_; }

    uint64_t directiveCount() const { return entries_.size(); }

  private:
    std::vector<Entry> entries_;
};

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_SUPPRESS_H
