/**
 * @file
 * A single lint finding plus its stable fingerprint.
 */

#ifndef MINJIE_ANALYSIS_FINDING_H
#define MINJIE_ANALYSIS_FINDING_H

#include <cstdint>
#include <string>
#include <vector>

namespace minjie::analysis {

struct Finding
{
    std::string ruleId;  ///< e.g. "MJ-DET-001"
    std::string path;    ///< repo-relative, '/'-separated
    uint32_t line = 0;   ///< 1-based
    uint32_t col = 0;    ///< 1-based
    std::string message;
    std::string snippet; ///< source line, whitespace-trimmed

    /** Interprocedural witness: the call chain proving reachability,
     *  one "qualName (path:line)" frame per hop, root first. Empty
     *  for per-file findings. Excluded from fingerprint() so a
     *  baseline entry survives unrelated call-graph churn. */
    std::vector<std::string> callPath;

    /**
     * Line-number-independent identity used by the baseline file: a
     * finding survives unrelated edits above it as long as the rule,
     * file, and (whitespace-normalized) flagged line are unchanged.
     */
    uint64_t fingerprint() const;
};

/** FNV-1a, the repo-wide cheap stable hash. */
uint64_t fnv1a(std::string_view s, uint64_t seed = 0xcbf29ce484222325ULL);

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_FINDING_H
