/**
 * @file
 * MJ-LAY-*: size/alignment claims must be static_assert-backed.
 *
 * The NEMU hot path depends on layout facts (the 64-byte hot Uop of
 * PR 2); a struct that requests an alignment or packing without a
 * static_assert nearby will silently drift when a field is added.
 */

#include "analysis/rules_impl.h"

namespace minjie::analysis {

namespace {

const std::vector<std::string> LAY_SCOPE = {"src/", "tools/"};

class UncheckedLayout final : public BasicRule
{
  public:
    UncheckedLayout()
        : BasicRule("MJ-LAY-001",
                    "alignas/packed struct without a static_assert "
                    "pinning its size or alignment",
                    LAY_SCOPE)
    {
    }

    void
    run(const RuleContext &ctx, std::vector<Finding> &out) const override
    {
        const auto &toks = ctx.tokens;

        // Names covered by a static_assert(sizeof(...)/alignof(...))
        // anywhere in this file.
        std::vector<std::string_view> asserted;
        for (size_t i = 0; i + 1 < toks.size(); ++i) {
            if (!toks[i].isIdent("static_assert") || !toks[i + 1].is("("))
                continue;
            size_t close = matchBracket(toks, i + 1);
            bool layoutClaim = false;
            for (size_t j = i + 2; j < close && j < toks.size(); ++j)
                if (toks[j].isIdent("sizeof") ||
                    toks[j].isIdent("alignof")) {
                    layoutClaim = true;
                    break;
                }
            if (!layoutClaim)
                continue;
            for (size_t j = i + 2; j < close && j < toks.size(); ++j)
                if (toks[j].kind == Tok::Ident)
                    asserted.push_back(toks[j].text);
        }

        auto covered = [&](std::string_view name) {
            for (std::string_view a : asserted)
                if (a == name)
                    return true;
            return false;
        };

        for (size_t i = 0; i < toks.size(); ++i) {
            bool isAlign = toks[i].isIdent("alignas");
            bool isPacked = toks[i].isIdent("packed");
            if (!isAlign && !isPacked)
                continue;

            // Find the struct/class this attribute decorates: scan
            // back a short window for the keyword, then forward from
            // it for the first plain identifier that is the tag name.
            std::string_view name;
            size_t kw = 0;
            bool haveKw = false;
            for (size_t back = 0; back < 12 && back <= i; ++back) {
                size_t j = i - back;
                if (toks[j].isIdent("struct") ||
                    toks[j].isIdent("class")) {
                    kw = j;
                    haveKw = true;
                    break;
                }
                if (toks[j].is(";") || toks[j].is("}"))
                    break;
            }
            if (!haveKw)
                continue; // alignas on a variable / array: out of scope
            int depth = 0;
            for (size_t j = kw + 1; j < toks.size() && j < kw + 24; ++j) {
                if (toks[j].is("(") || toks[j].is("["))
                    ++depth;
                else if (toks[j].is(")") || toks[j].is("]"))
                    --depth;
                else if (depth == 0 && toks[j].kind == Tok::Ident &&
                         !toks[j].isIdent("alignas") &&
                         !toks[j].isIdent("packed") &&
                         !toks[j].isIdent("gnu") &&
                         !toks[j].isIdent("__attribute__") &&
                         !toks[j].isIdent("final")) {
                    name = toks[j].text;
                    break;
                } else if (depth == 0 &&
                           (toks[j].is("{") || toks[j].is(";"))) {
                    break;
                }
            }
            if (name.empty() || covered(name))
                continue;
            report(ctx, toks[i],
                   "struct " + std::string(name) +
                       " requests a layout (alignas/packed) but no "
                       "static_assert in this file pins sizeof/alignof(" +
                       std::string(name) +
                       "); layout drift would be silent",
                   out);
        }
    }
};

} // namespace

std::vector<std::unique_ptr<Rule>>
makeLayoutRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<UncheckedLayout>());
    return rules;
}

std::vector<std::unique_ptr<Rule>>
makeDefaultRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    for (auto &r : makeDeterminismRules())
        rules.push_back(std::move(r));
    for (auto &r : makeProbeRules())
        rules.push_back(std::move(r));
    for (auto &r : makeForkRules())
        rules.push_back(std::move(r));
    for (auto &r : makeLayoutRules())
        rules.push_back(std::move(r));
    return rules;
}

} // namespace minjie::analysis
