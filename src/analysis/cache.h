/**
 * @file
 * Incremental analysis cache: per-TU results keyed by a content hash.
 *
 * A warm entry replaces the expensive per-file work (lex + token
 * rules + indexing) byte-for-byte: it stores the file's surviving
 * findings (after inline suppression, before baseline), the inline
 * suppression bookkeeping, and the full TuIndex so the whole-program
 * model rebuilds without touching unchanged files. Graph findings are
 * never cached — they depend on every TU, and recomputing them from
 * cached indexes is cheap.
 *
 * The on-disk format is a versioned, line-oriented text file; any
 * parse mismatch (version bump, truncation, hand edits) simply drops
 * the cache and the next run is a cold run.
 */

#ifndef MINJIE_ANALYSIS_CACHE_H
#define MINJIE_ANALYSIS_CACHE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/finding.h"
#include "analysis/index.h"
#include "analysis/suppress.h"

namespace minjie::analysis {

/** Everything the engine learns about one file. */
struct CachedTu
{
    std::string path; ///< repo-relative
    uint64_t hash = 0; ///< fnv1a of the file bytes
    std::vector<Finding> findings; ///< per-file, post-inline-suppression
    uint64_t suppressedInline = 0;
    std::vector<Suppressions::Entry> supEntries;
    TuIndex index;
};

class AnalysisCache
{
  public:
    /** Load @p path; false (and empty cache) on any mismatch. */
    bool load(const std::string &path);

    /** Persist every stored TU to @p path; false on I/O error. */
    bool write(const std::string &path) const;

    /** The cached record for @p relPath iff its hash still matches. */
    const CachedTu *lookup(const std::string &relPath,
                           uint64_t hash) const;

    /** Mutable variant of lookup(): lets a hit be moved out instead of
     *  deep-copied when the cache is about to be discarded anyway. */
    CachedTu *lookupMutable(const std::string &relPath, uint64_t hash)
    {
        return const_cast<CachedTu *>(lookup(relPath, hash));
    }

    /** Store @p tu; the returned reference stays valid for the cache's
     *  lifetime (map nodes are stable). */
    CachedTu &put(CachedTu tu);

    size_t size() const { return tus_.size(); }

  private:
    std::map<std::string, CachedTu> tus_;
};

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_CACHE_H
