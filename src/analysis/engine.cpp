#include "analysis/engine.h"

#include <algorithm>
#include <filesystem>
#include <map>

#include "analysis/baseline.h"
#include "analysis/callgraph.h"
#include "analysis/suppress.h"

namespace minjie::analysis {

namespace fs = std::filesystem;

namespace {

bool
lintableExtension(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool
hasPrefix(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

void
sortFindings(std::vector<Finding> &v)
{
    std::sort(v.begin(), v.end(), [](const Finding &a, const Finding &b) {
        if (a.path != b.path)
            return a.path < b.path;
        if (a.line != b.line)
            return a.line < b.line;
        return a.ruleId < b.ruleId;
    });
}

std::string
trimmed(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() &&
           (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return std::string(s);
}

} // namespace

std::vector<std::string>
collectFiles(const EngineConfig &cfg)
{
    std::vector<std::string> out;
    for (const std::string &dir : cfg.scanDirs) {
        fs::path base = fs::path(cfg.root) / dir;
        std::error_code ec;
        if (!fs::is_directory(base, ec))
            continue;
        for (fs::recursive_directory_iterator
                 it(base, fs::directory_options::skip_permission_denied,
                    ec),
             end;
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (!it->is_regular_file(ec) ||
                !lintableExtension(it->path()))
                continue;
            std::string rel =
                fs::relative(it->path(), cfg.root, ec).generic_string();
            bool excluded = false;
            for (const std::string &px : cfg.excludePrefixes)
                if (hasPrefix(rel, px)) {
                    excluded = true;
                    break;
                }
            if (!excluded)
                out.push_back(std::move(rel));
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

Engine::Engine(EngineConfig cfg)
    : cfg_(std::move(cfg)), rules_(makeDefaultRules()),
      graphRules_(makeGraphRules())
{
}

bool
Engine::idSelected(std::string_view id) const
{
    if (cfg_.onlyRules.empty())
        return true;
    for (const std::string &want : cfg_.onlyRules)
        if (id == want)
            return true;
    return false;
}

bool
Engine::ruleApplies(const Rule &r, const std::string &relPath) const
{
    if (cfg_.ignoreScopes)
        return true;
    for (const std::string &ex : r.exemptFiles())
        if (relPath == ex)
            return false;
    const auto &scope = r.scope();
    if (scope.empty())
        return true;
    for (const std::string &prefix : scope)
        if (hasPrefix(relPath, prefix))
            return true;
    return false;
}

CachedTu
Engine::lintOneFile(const SourceFile &file) const
{
    CachedTu tu;
    tu.path = file.path();
    tu.hash = fnv1a(file.text());

    LexResult lexed = lex(file);
    RuleContext ctx{file, lexed.tokens, lexed.comments};

    std::vector<Finding> fileFindings;
    for (const auto &rule : rules_) {
        if (!idSelected(rule->id()) || !ruleApplies(*rule, file.path()))
            continue;
        rule->run(ctx, fileFindings);
    }

    // Suppression directives apply to rule findings; malformed
    // directives become findings themselves (never suppressible).
    std::vector<Finding> supDiags;
    Suppressions sup(file.path(), lexed.comments, file, supDiags);
    tu.supEntries = sup.entries();
    for (Finding &f : fileFindings) {
        if (sup.allows(f.line, f.ruleId))
            ++tu.suppressedInline;
        else
            tu.findings.push_back(std::move(f));
    }
    if (idSelected("MJ-SUP-001"))
        for (Finding &f : supDiags)
            tu.findings.push_back(std::move(f));

    tu.index = buildIndex(file, lexed);
    return tu;
}

EngineResult
Engine::run() const
{
    EngineResult res;
    Baseline baseline;
    if (!cfg_.baselinePath.empty())
        baseline.load(cfg_.baselinePath);

    // The cache stores results of the full default configuration;
    // filtered runs (rule subsets, ignored scopes) bypass it rather
    // than poison it.
    bool useCache = !cfg_.cachePath.empty() && cfg_.onlyRules.empty() &&
                    !cfg_.ignoreScopes;
    AnalysisCache cache;
    if (useCache)
        cache.load(cfg_.cachePath);
    AnalysisCache next; // rebuilt fresh so deleted files drop out

    std::vector<Finding> raw;
    std::vector<const TuIndex *> tus; // point into `next`: map nodes
                                      // are stable, no index copies
    std::map<std::string, SourceFile> files;
    std::map<std::string, std::vector<Suppressions::Entry>> supByPath;

    for (const std::string &rel : collectFiles(cfg_)) {
        SourceFile file("", "");
        std::string abs = (fs::path(cfg_.root) / rel).string();
        if (!SourceFile::load(abs, rel, file))
            continue;
        ++res.filesScanned;

        uint64_t hash = fnv1a(file.text());
        CachedTu *hit = useCache ? cache.lookupMutable(rel, hash)
                                 : nullptr;
        CachedTu tu;
        if (hit != nullptr) {
            // The old cache is discarded after this loop, so hits can
            // be moved out rather than deep-copied.
            tu = std::move(*hit);
        } else {
            tu = lintOneFile(file);
            ++res.filesLexed;
        }

        res.suppressedInline += tu.suppressedInline;
        for (const Finding &f : tu.findings)
            raw.push_back(f);
        supByPath[rel] = tu.supEntries;
        tus.push_back(&next.put(std::move(tu)).index);
        files.emplace(rel, std::move(file));
    }

    // Whole-program pass: merge indexes, resolve the call graph, run
    // the interprocedural rules, then apply inline suppressions to
    // their findings exactly like per-file ones.
    ProgramModel model;
    model.build(tus);
    GraphRuleContext gctx{
        model, [&files](const std::string &path, uint32_t line) {
            auto it = files.find(path);
            if (it == files.end())
                return std::string();
            return trimmed(it->second.lineText(line));
        }};
    std::vector<Finding> graphRaw;
    for (const auto &gr : graphRules_) {
        if (!idSelected(gr->id()))
            continue;
        gr->run(gctx, graphRaw);
    }
    for (Finding &f : graphRaw) {
        auto it = supByPath.find(f.path);
        bool allowed = false;
        if (it != supByPath.end())
            for (const Suppressions::Entry &e : it->second)
                if (e.line == f.line && e.ruleId == f.ruleId) {
                    allowed = true;
                    break;
                }
        if (allowed)
            ++res.suppressedInline;
        else
            raw.push_back(std::move(f));
    }

    for (Finding &f : raw) {
        if (!cfg_.baselinePath.empty() && baseline.matches(f)) {
            ++res.suppressedBaseline;
            continue;
        }
        res.findings.push_back(std::move(f));
    }

    sortFindings(res.findings);
    res.staleBaseline = baseline.unusedEntries();
    // Rewriting an identical cache is the single biggest warm-run
    // cost; skip it when nothing was re-lexed and no file vanished.
    if (useCache &&
        (res.filesLexed > 0 || next.size() != cache.size()))
        next.write(cfg_.cachePath);
    return res;
}

EngineResult
Engine::runOnFile(const SourceFile &file) const
{
    EngineResult res;
    res.filesScanned = 1;
    res.filesLexed = 1;
    CachedTu tu = lintOneFile(file);
    res.suppressedInline = tu.suppressedInline;
    res.findings = std::move(tu.findings);
    sortFindings(res.findings);
    return res;
}

EngineResult
Engine::runOnFiles(const std::vector<SourceFile> &files) const
{
    EngineResult res;
    std::vector<Finding> raw;
    std::vector<TuIndex> tus;
    std::map<std::string, const SourceFile *> byPath;
    std::map<std::string, std::vector<Suppressions::Entry>> supByPath;

    for (const SourceFile &file : files) {
        ++res.filesScanned;
        ++res.filesLexed;
        CachedTu tu = lintOneFile(file);
        res.suppressedInline += tu.suppressedInline;
        for (const Finding &f : tu.findings)
            raw.push_back(f);
        supByPath[file.path()] = tu.supEntries;
        tus.push_back(std::move(tu.index));
        byPath[file.path()] = &file;
    }

    ProgramModel model;
    model.build(tus);
    GraphRuleContext gctx{
        model, [&byPath](const std::string &path, uint32_t line) {
            auto it = byPath.find(path);
            if (it == byPath.end())
                return std::string();
            return trimmed(it->second->lineText(line));
        }};
    std::vector<Finding> graphRaw;
    for (const auto &gr : graphRules_) {
        if (!idSelected(gr->id()))
            continue;
        gr->run(gctx, graphRaw);
    }
    for (Finding &f : graphRaw) {
        auto it = supByPath.find(f.path);
        bool allowed = false;
        if (it != supByPath.end())
            for (const Suppressions::Entry &e : it->second)
                if (e.line == f.line && e.ruleId == f.ruleId) {
                    allowed = true;
                    break;
                }
        if (allowed)
            ++res.suppressedInline;
        else
            raw.push_back(std::move(f));
    }

    res.findings = std::move(raw);
    sortFindings(res.findings);
    return res;
}

} // namespace minjie::analysis
