#include "analysis/engine.h"

#include <algorithm>
#include <filesystem>

#include "analysis/baseline.h"
#include "analysis/suppress.h"

namespace minjie::analysis {

namespace fs = std::filesystem;

namespace {

bool
lintableExtension(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool
hasPrefix(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

void
sortFindings(std::vector<Finding> &v)
{
    std::sort(v.begin(), v.end(), [](const Finding &a, const Finding &b) {
        if (a.path != b.path)
            return a.path < b.path;
        if (a.line != b.line)
            return a.line < b.line;
        return a.ruleId < b.ruleId;
    });
}

} // namespace

std::vector<std::string>
collectFiles(const EngineConfig &cfg)
{
    std::vector<std::string> out;
    for (const std::string &dir : cfg.scanDirs) {
        fs::path base = fs::path(cfg.root) / dir;
        std::error_code ec;
        if (!fs::is_directory(base, ec))
            continue;
        for (fs::recursive_directory_iterator
                 it(base, fs::directory_options::skip_permission_denied,
                    ec),
             end;
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (!it->is_regular_file(ec) ||
                !lintableExtension(it->path()))
                continue;
            std::string rel =
                fs::relative(it->path(), cfg.root, ec).generic_string();
            bool excluded = false;
            for (const std::string &px : cfg.excludePrefixes)
                if (hasPrefix(rel, px)) {
                    excluded = true;
                    break;
                }
            if (!excluded)
                out.push_back(std::move(rel));
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

Engine::Engine(EngineConfig cfg)
    : cfg_(std::move(cfg)), rules_(makeDefaultRules())
{
}

bool
Engine::ruleSelected(const Rule &r) const
{
    if (cfg_.onlyRules.empty())
        return true;
    for (const std::string &id : cfg_.onlyRules)
        if (r.id() == id)
            return true;
    return false;
}

bool
Engine::ruleApplies(const Rule &r, const std::string &relPath) const
{
    if (cfg_.ignoreScopes)
        return true;
    for (const std::string &ex : r.exemptFiles())
        if (relPath == ex)
            return false;
    const auto &scope = r.scope();
    if (scope.empty())
        return true;
    for (const std::string &prefix : scope)
        if (hasPrefix(relPath, prefix))
            return true;
    return false;
}

void
Engine::lintFile(const SourceFile &file, std::vector<Finding> &out,
                 uint64_t &suppressedInline) const
{
    LexResult lexed = lex(file);
    RuleContext ctx{file, lexed.tokens, lexed.comments};

    std::vector<Finding> fileFindings;
    for (const auto &rule : rules_) {
        if (!ruleSelected(*rule) || !ruleApplies(*rule, file.path()))
            continue;
        rule->run(ctx, fileFindings);
    }

    // Suppression directives apply to rule findings; malformed
    // directives become findings themselves (never suppressible).
    std::vector<Finding> supDiags;
    Suppressions sup(file.path(), lexed.comments, file, supDiags);
    for (Finding &f : fileFindings) {
        if (sup.allows(f.line, f.ruleId))
            ++suppressedInline;
        else
            out.push_back(std::move(f));
    }
    bool supRuleWanted = cfg_.onlyRules.empty();
    for (const std::string &id : cfg_.onlyRules)
        if (id == "MJ-SUP-001")
            supRuleWanted = true;
    if (supRuleWanted)
        for (Finding &f : supDiags)
            out.push_back(std::move(f));
}

EngineResult
Engine::run() const
{
    EngineResult res;
    Baseline baseline;
    if (!cfg_.baselinePath.empty())
        baseline.load(cfg_.baselinePath);

    std::vector<Finding> raw;
    for (const std::string &rel : collectFiles(cfg_)) {
        SourceFile file("", "");
        std::string abs = (fs::path(cfg_.root) / rel).string();
        if (!SourceFile::load(abs, rel, file))
            continue;
        ++res.filesScanned;
        lintFile(file, raw, res.suppressedInline);
    }

    for (Finding &f : raw) {
        if (!cfg_.baselinePath.empty() && baseline.matches(f)) {
            ++res.suppressedBaseline;
            continue;
        }
        res.findings.push_back(std::move(f));
    }

    sortFindings(res.findings);
    res.staleBaseline = baseline.unusedEntries();
    return res;
}

EngineResult
Engine::runOnFile(const SourceFile &file) const
{
    EngineResult res;
    res.filesScanned = 1;
    lintFile(file, res.findings, res.suppressedInline);
    sortFindings(res.findings);
    return res;
}

} // namespace minjie::analysis
