/**
 * @file
 * The four interprocedural rule families. Each runs one deterministic
 * multi-root BFS over the ProgramModel and reports events with a
 * call-path witness. Division of labour with the per-file rules: a
 * banned construct INSIDE a rule's per-file scope is the per-file
 * rule's finding; the graph rules add what only the call graph can
 * see — the same construct in a helper defined elsewhere but
 * transitively reachable, plus the few constructs (fflush, exit,
 * cross-TU unordered iteration, lock-order cycles) that no per-file
 * pattern covers.
 */

#include "analysis/rules_graph.h"

#include <algorithm>

namespace minjie::analysis {

namespace {

bool
pathIn(const std::string &path,
       const std::vector<std::string> &prefixes)
{
    for (const std::string &p : prefixes)
        if (path.compare(0, p.size(), p) == 0)
            return true;
    return false;
}

bool
isAnyOf(std::string_view s, std::initializer_list<std::string_view> set)
{
    for (std::string_view c : set)
        if (s == c)
            return true;
    return false;
}

/** Test code is never a runtime callee of production code; letting
 *  name collisions pull test helpers into the graph is pure noise. */
bool
isTestPath(const std::string &path)
{
    return path.compare(0, 6, "tests/") == 0;
}

/** Sanctioned choke points the graph rules never traverse into: the
 *  flushing logger and the abort/exit error paths quiesce or
 *  terminate, so nothing "reachable through" them matters. */
bool
isSanctionedSink(const Node &n)
{
    if (n.fn->name == "panic" || n.fn->name == "fatal")
        return true;
    return n.fn->qualName.find("Logger::") != std::string::npos ||
           n.fn->qualName.find("Stopwatch::") != std::string::npos ||
           n.fn->qualName.find("Rng::") != std::string::npos;
}

Finding
makeFinding(const GraphRuleContext &ctx, std::string ruleId,
            const std::string &path, uint32_t line, std::string message,
            std::vector<std::string> callPath)
{
    Finding f;
    f.ruleId = std::move(ruleId);
    f.path = path;
    f.line = line;
    f.col = 1;
    f.message = std::move(message);
    f.snippet = ctx.snippet ? ctx.snippet(path, line) : "";
    f.callPath = std::move(callPath);
    return f;
}

class GraphRuleBase : public GraphRule
{
  public:
    GraphRuleBase(std::string id, std::string summary)
        : id_(std::move(id)), summary_(std::move(summary))
    {
    }
    std::string_view id() const override { return id_; }
    std::string_view summary() const override { return summary_; }

  private:
    std::string id_;
    std::string summary_;
};

// ---------------------------------------------------------------- FRK2

const std::vector<std::string> FRK_FILE_SCOPE = {
    "src/lightsss/", "src/obs/", "src/sample/"};

/** Functions that sit at a fork point themselves: the LightSSS
 *  snapshotter and the sampled-simulation worker pool both fork, so
 *  everything they reach runs on a fork path. */
bool
isForkRootPath(const std::string &path)
{
    return path.compare(0, 13, "src/lightsss/") == 0 ||
           path.compare(0, 11, "src/sample/") == 0;
}

/** Fork-unsafe work transitively reachable from the LightSSS
 *  snapshot/replay path. */
class ForkReachability final : public GraphRuleBase
{
  public:
    ForkReachability()
        : GraphRuleBase(
              "MJ-FRK2-001",
              "fork-unsafe call transitively reachable from LightSSS: "
              "buffered stdio, locks, threads, or stdio flushes on the "
              "snapshot/replay path")
    {
    }

    void
    run(const GraphRuleContext &ctx,
        std::vector<Finding> &out) const override
    {
        const ProgramModel &m = ctx.model;
        std::vector<uint32_t> roots;
        for (uint32_t id = 0;
             id < static_cast<uint32_t>(m.nodes().size()); ++id)
            if (isForkRootPath(m.nodes()[id].path))
                roots.push_back(id);
        auto parents = m.reach(roots, [&](uint32_t id) {
            const Node &n = m.nodes()[id];
            return !isTestPath(n.path) && !isSanctionedSink(n);
        });

        for (uint32_t id = 0;
             id < static_cast<uint32_t>(m.nodes().size()); ++id) {
            if (parents[id].node == -1)
                continue;
            const Node &n = m.nodes()[id];
            bool inFrkScope = pathIn(n.path, FRK_FILE_SCOPE);
            for (const CallEvent &c : n.fn->calls) {
                bool stderrOnly =
                    c.firstArg.find("stderr") != std::string::npos;
                std::string why;
                // Constructs no per-file rule covers, flagged
                // everywhere on the path.
                if (c.name == "fflush" && !stderrOnly)
                    why = "fflush() emits bytes another process may "
                          "also hold buffered — purge, don't flush, "
                          "inherited stdio state";
                else if (isAnyOf(c.name, {"exit", "atexit",
                                          "at_quick_exit"}))
                    why = c.name + "() runs atexit handlers and "
                                   "flushes inherited stdio; a replay "
                                   "child must _exit()";
                // Constructs the per-file MJ-FRK rules already flag
                // inside their scope — only report them when reached
                // in an out-of-scope helper.
                else if (!inFrkScope) {
                    if (isAnyOf(c.name, {"printf", "puts", "putchar",
                                         "vprintf"}) ||
                        (isAnyOf(c.name, {"fprintf", "vfprintf",
                                          "fputs", "fputc", "fwrite"}) &&
                         !stderrOnly))
                        why = c.name + "() buffers in user space; "
                                       "bytes pending at fork() are "
                                       "emitted by parent and child";
                    else if (isAnyOf(c.name, {"pthread_create",
                                              "thread", "jthread",
                                              "async"}))
                        why = c.name + " spawns a thread the snapshot "
                                       "child will not inherit";
                }
                if (why.empty())
                    continue;
                auto frames = m.witness(parents, id, c.line);
                out.push_back(makeFinding(
                    ctx, "MJ-FRK2-001", n.path, c.line,
                    "reachable from a fork path: " + why,
                    std::move(frames)));
            }
            if (!inFrkScope) {
                for (const LockEvent &l : n.fn->locks) {
                    auto frames = m.witness(parents, id, l.line);
                    out.push_back(makeFinding(
                        ctx, "MJ-FRK2-001", n.path, l.line,
                        "lock on '" + l.lockName +
                            "' reachable from a fork path: a mutex "
                            "held by another thread at fork() stays "
                            "locked forever in the child",
                        std::move(frames)));
                }
            }
        }
    }
};

// ---------------------------------------------------------------- DET2

const std::vector<std::string> DET2_SCOPE = {
    "src/campaign/", "src/difftest/",   "src/archdb/",
    "src/obs/",      "src/checkpoint/", "src/sample/",
    "src/xiangshan/", "tools/",
};

/** Nondeterminism taint flowing through calls into deterministic
 *  paths. */
class DeterminismTaint final : public GraphRuleBase
{
  public:
    DeterminismTaint()
        : GraphRuleBase(
              "MJ-DET2-001",
              "nondeterminism (host RNG, wall clock, unordered "
              "iteration) transitively reachable from a deterministic "
              "path")
    {
    }

    void
    run(const GraphRuleContext &ctx,
        std::vector<Finding> &out) const override
    {
        const ProgramModel &m = ctx.model;
        std::vector<uint32_t> roots;
        for (uint32_t id = 0;
             id < static_cast<uint32_t>(m.nodes().size()); ++id)
            if (pathIn(m.nodes()[id].path, DET2_SCOPE))
                roots.push_back(id);
        auto parents = m.reach(roots, [&](uint32_t id) {
            const Node &n = m.nodes()[id];
            return !isTestPath(n.path) && !isSanctionedSink(n);
        });

        for (uint32_t id = 0;
             id < static_cast<uint32_t>(m.nodes().size()); ++id) {
            if (parents[id].node == -1)
                continue;
            const Node &n = m.nodes()[id];
            bool inScope = pathIn(n.path, DET2_SCOPE);
            if (!inScope) {
                // Direct sources in out-of-scope helpers (in-scope
                // ones are the per-file MJ-DET rules' findings).
                for (const DetEvent &d : n.fn->detSources) {
                    auto frames = m.witness(parents, id, d.line);
                    out.push_back(makeFinding(
                        ctx, "MJ-DET2-001", n.path, d.line,
                        d.what +
                            " is host-nondeterministic and reachable "
                            "from a deterministic path; outputs must "
                            "be a pure function of the seed",
                        std::move(frames)));
                }
            }
            for (const IterEvent &it : n.fn->iterUses) {
                for (const std::string &name : it.names) {
                    // Out of scope: any unordered container counts.
                    // In scope: only a container declared unordered in
                    // ANOTHER TU — the per-file MJ-DET-003 already
                    // flags same-file unordered declarations/uses.
                    bool hit = !inScope
                                   ? m.isUnordered(name)
                                   : m.isUnorderedElsewhere(name,
                                                            n.path);
                    if (!hit)
                        continue;
                    auto frames = m.witness(parents, id, it.line);
                    out.push_back(makeFinding(
                        ctx, "MJ-DET2-001", n.path, it.line,
                        "iteration over '" + name +
                            "', declared std::unordered_*: order is "
                            "host-dependent yet this code is "
                            "reachable from a deterministic path; "
                            "iterate in sorted key order",
                        std::move(frames)));
                    break;
                }
            }
        }
    }
};

// ---------------------------------------------------------------- PRB2

const std::vector<std::string> PRB_SCOPE = {
    "src/iss/",
    "src/nemu/",
    "src/difftest/",
};

const std::vector<std::string> PRB_EXEMPT = {
    "src/iss/arch_state.h",
    "src/iss/arch_state.cpp",
    "src/iss/csrfile.h",
    "src/iss/csrfile.cpp",
};

/** Arch-state stores reachable from engine code without passing the
 *  accessor choke points. */
class ProbeBypassReachability final : public GraphRuleBase
{
  public:
    ProbeBypassReachability()
        : GraphRuleBase(
              "MJ-PRB2-001",
              "arch-state store in a helper reachable from engine "
              "code without passing an accessor choke point")
    {
    }

    void
    run(const GraphRuleContext &ctx,
        std::vector<Finding> &out) const override
    {
        const ProgramModel &m = ctx.model;
        auto exempt = [&](const std::string &path) {
            for (const std::string &e : PRB_EXEMPT)
                if (path == e)
                    return true;
            return false;
        };
        std::vector<uint32_t> roots;
        for (uint32_t id = 0;
             id < static_cast<uint32_t>(m.nodes().size()); ++id) {
            const Node &n = m.nodes()[id];
            if (pathIn(n.path, PRB_SCOPE) && !exempt(n.path))
                roots.push_back(id);
        }
        // The accessors ARE the choke point: a store reached through
        // them is sanctioned, so the BFS never enters exempt files.
        auto parents = m.reach(roots, [&](uint32_t id) {
            const Node &n = m.nodes()[id];
            return !isTestPath(n.path) && !exempt(n.path);
        });

        for (uint32_t id = 0;
             id < static_cast<uint32_t>(m.nodes().size()); ++id) {
            if (parents[id].node == -1)
                continue;
            const Node &n = m.nodes()[id];
            if (pathIn(n.path, PRB_SCOPE))
                continue; // per-file MJ-PRB territory
            for (const WriteEvent &w : n.fn->archWrites) {
                auto frames = m.witness(parents, id, w.line);
                out.push_back(makeFinding(
                    ctx, "MJ-PRB2-001", n.path, w.line,
                    "direct " + w.what +
                        " in a helper reachable from engine code "
                        "bypasses the ArchState/CsrFile accessor "
                        "choke point (and its DiffTest probes)",
                    std::move(frames)));
            }
        }
    }
};

// ----------------------------------------------------------------- LCK

const std::vector<std::string> LCK_SCOPE = {"src/campaign/",
                                            "src/obs/"};

/** Lock-acquisition-order graph with cycle detection. */
class LockOrderCycles final : public GraphRuleBase
{
  public:
    LockOrderCycles()
        : GraphRuleBase(
              "MJ-LCK-001",
              "inconsistent lock-acquisition order (cycle in the "
              "lock-order graph): two threads can deadlock")
    {
    }

    void
    run(const GraphRuleContext &ctx,
        std::vector<Finding> &out) const override
    {
        const ProgramModel &m = ctx.model;

        struct OrderEdge
        {
            std::string path; ///< acquisition site of the second lock
            uint32_t line = 0;
            std::vector<std::string> witness;
        };
        // first lock -> second lock -> first witness seen
        std::map<std::string, std::map<std::string, OrderEdge>> graph;

        auto addEdge = [&](const std::string &a, const std::string &b,
                           OrderEdge e) {
            if (a == b)
                return;
            auto &row = graph[a];
            if (row.find(b) == row.end())
                row.emplace(b, std::move(e));
        };

        for (uint32_t id = 0;
             id < static_cast<uint32_t>(m.nodes().size()); ++id) {
            const Node &n = m.nodes()[id];
            if (!pathIn(n.path, LCK_SCOPE))
                continue;
            // Intraprocedural: lock B acquired while A is held.
            for (const LockEvent &l : n.fn->locks)
                for (const std::string &h : l.heldBefore) {
                    OrderEdge e;
                    e.path = n.path;
                    e.line = l.line;
                    e.witness = {n.fn->qualName + " (" + n.path + ":" +
                                 std::to_string(l.line) + ")"};
                    addEdge(h, l.lockName, std::move(e));
                }
            // Interprocedural: call made with locks held; any lock
            // the callee closure acquires orders after them.
            for (const Edge &edge : n.callees) {
                const CallEvent &c = n.fn->calls[edge.call];
                if (c.heldLocks.empty())
                    continue;
                auto parents =
                    m.reach({edge.target}, [&](uint32_t t) {
                        return !isTestPath(m.nodes()[t].path);
                    });
                for (uint32_t t = 0;
                     t < static_cast<uint32_t>(m.nodes().size()); ++t) {
                    if (parents[t].node == -1)
                        continue;
                    const Node &callee = m.nodes()[t];
                    for (const LockEvent &l : callee.fn->locks)
                        for (const std::string &h : c.heldLocks) {
                            OrderEdge e;
                            e.path = callee.path;
                            e.line = l.line;
                            e.witness = {n.fn->qualName + " (" +
                                         n.path + ":" +
                                         std::to_string(c.line) + ")"};
                            auto rest =
                                m.witness(parents, t, l.line);
                            e.witness.insert(e.witness.end(),
                                             rest.begin(), rest.end());
                            addEdge(h, l.lockName, std::move(e));
                        }
                }
            }
        }

        // Cycle detection: DFS over the (sorted) lock-order graph.
        std::set<std::string> reported;
        std::map<std::string, int> color; // 0 white 1 grey 2 black
        std::vector<std::string> stack;

        std::function<void(const std::string &)> dfs =
            [&](const std::string &u) {
                color[u] = 1;
                stack.push_back(u);
                auto it = graph.find(u);
                if (it != graph.end())
                    for (const auto &[v, e] : it->second) {
                        if (color[v] == 1) {
                            // Cycle: stack segment v..u plus v.
                            auto pos = std::find(stack.begin(),
                                                 stack.end(), v);
                            std::vector<std::string> cyc(pos,
                                                         stack.end());
                            // Canonical form: rotate the smallest
                            // lock name to the front.
                            auto minIt = std::min_element(cyc.begin(),
                                                          cyc.end());
                            std::rotate(cyc.begin(), minIt, cyc.end());
                            std::string key;
                            for (const std::string &l : cyc)
                                key += l + ">";
                            if (reported.insert(key).second) {
                                std::string order;
                                for (const std::string &l : cyc)
                                    order += l + " -> ";
                                order += cyc.front();
                                out.push_back(makeFinding(
                                    ctx, "MJ-LCK-001", e.path, e.line,
                                    "lock-order cycle " + order +
                                        ": another path acquires "
                                        "these locks in the opposite "
                                        "order, so two threads can "
                                        "deadlock; pick one global "
                                        "order",
                                    e.witness));
                            }
                        } else if (color[v] == 0)
                            dfs(v);
                    }
                stack.pop_back();
                color[u] = 2;
            };
        for (const auto &[u, row] : graph)
            if (color[u] == 0)
                dfs(u);
    }
};

} // namespace

std::vector<std::unique_ptr<GraphRule>>
makeGraphRules()
{
    std::vector<std::unique_ptr<GraphRule>> rules;
    rules.push_back(std::make_unique<DeterminismTaint>());
    rules.push_back(std::make_unique<ForkReachability>());
    rules.push_back(std::make_unique<LockOrderCycles>());
    rules.push_back(std::make_unique<ProbeBypassReachability>());
    return rules;
}

} // namespace minjie::analysis
