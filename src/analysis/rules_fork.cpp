/**
 * @file
 * MJ-FRK-*: fork-safety between LightSSS snapshot points.
 *
 * LightSSS snapshots the whole process with fork() (paper Section
 * III-C): anything that is unsafe to duplicate mid-flight — running
 * threads, held mutexes, buffered stdio bytes — corrupts either the
 * parent or the woken replay child. These rules keep such constructs
 * out of src/lightsss/ entirely; the driver layers above may use them
 * freely because they quiesce before ticking the snapshotter.
 */

#include "analysis/rules_impl.h"

namespace minjie::analysis {

namespace {

/** The tracer's record path runs between fork points too: a LightSSS
 *  replay child inherits the ring buffer mid-flight, so src/obs/ must
 *  obey the same no-locks / no-thread / no-buffered-stdio rules. The
 *  sampled-simulation engine (src/sample/) forks one worker per
 *  SimPoint slice and pipes raw bytes back, so the same constraints
 *  apply on both sides of its fork. */
const std::vector<std::string> FRK_SCOPE = {"src/lightsss/", "src/obs/",
                                            "src/sample/"};

class ThreadSpawn final : public BasicRule
{
  public:
    ThreadSpawn()
        : BasicRule("MJ-FRK-001",
                    "thread spawn reachable between fork points: only "
                    "the forking thread survives in the child",
                    FRK_SCOPE)
    {
    }

    void
    run(const RuleContext &ctx, std::vector<Finding> &out) const override
    {
        const auto &toks = ctx.tokens;
        for (size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            bool stdQualified =
                i >= 2 && toks[i - 1].is("::") && toks[i - 2].is("std");
            if ((t.isIdent("thread") || t.isIdent("jthread")) &&
                stdQualified) {
                report(ctx, t,
                       "std::" + std::string(t.text) +
                           " in LightSSS scope: fork() clones only the "
                           "calling thread, so a live pool deadlocks "
                           "the snapshot child",
                       out);
            } else if (t.isIdent("pthread_create") ||
                       (t.isIdent("async") && stdQualified)) {
                report(ctx, t,
                       std::string(t.text) +
                           " spawns a thread the snapshot child will "
                           "not inherit",
                       out);
            }
        }
    }
};

class LockAcrossFork final : public BasicRule
{
  public:
    LockAcrossFork()
        : BasicRule("MJ-FRK-002",
                    "lock primitive reachable between fork points: a "
                    "mutex held at fork() stays locked forever in the "
                    "child",
                    FRK_SCOPE)
    {
    }

    void
    run(const RuleContext &ctx, std::vector<Finding> &out) const override
    {
        static const std::string_view names[] = {
            "mutex",          "recursive_mutex",    "shared_mutex",
            "timed_mutex",    "lock_guard",         "unique_lock",
            "scoped_lock",    "condition_variable", "pthread_mutex_t",
            "pthread_mutex_lock"};
        for (const Token &t : ctx.tokens) {
            if (t.kind != Tok::Ident)
                continue;
            for (std::string_view n : names)
                if (t.text == n) {
                    report(ctx, t,
                           std::string(t.text) +
                               " in LightSSS scope: a lock held by "
                               "another thread at fork() can never be "
                               "released in the snapshot child",
                           out);
                    break;
                }
        }
    }
};

class BufferedStdio final : public BasicRule
{
  public:
    BufferedStdio()
        : BasicRule("MJ-FRK-003",
                    "buffered FILE* write between fork points: pending "
                    "bytes are flushed twice, once per process",
                    FRK_SCOPE)
    {
    }

    void
    run(const RuleContext &ctx, std::vector<Finding> &out) const override
    {
        static const std::vector<std::string_view> calls = {
            "printf", "fprintf", "vfprintf", "fwrite",
            "fputs",  "fputc",   "puts",     "putchar"};
        const auto &toks = ctx.tokens;
        for (size_t i = 0; i < toks.size(); ++i) {
            size_t callee = i;
            // std::fprintf(...) — check the unqualified name.
            if (toks[i].kind != Tok::Ident)
                continue;
            bool found = false;
            for (std::string_view c : calls)
                if (toks[i].text == c) {
                    found = true;
                    break;
                }
            if (!found)
                continue;
            if (i + 1 >= toks.size() || !toks[i + 1].is("("))
                continue;
            if (i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->")))
                continue;
            // fprintf(stderr, ...) is tolerated: stderr is unbuffered
            // by default, so nothing pends across the fork.
            if ((toks[i].is("fprintf") || toks[i].is("vfprintf") ||
                 toks[i].is("fputs") || toks[i].is("fputc")) &&
                i + 2 < toks.size()) {
                size_t arg = i + 2;
                if (toks[arg].isIdent("stderr") ||
                    (arg + 2 < toks.size() &&
                     toks[arg + 2].isIdent("stderr")))
                    continue;
            }
            report(ctx, toks[callee],
                   std::string(toks[callee].text) +
                       "() buffers in user space; bytes pending at "
                       "fork() are emitted by both parent and snapshot "
                       "child — use write()/dprintf or the (flushing) "
                       "MJ_* logger",
                   out);
        }
    }
};

} // namespace

std::vector<std::unique_ptr<Rule>>
makeForkRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<ThreadSpawn>());
    rules.push_back(std::make_unique<LockAcrossFork>());
    rules.push_back(std::make_unique<BufferedStdio>());
    return rules;
}

} // namespace minjie::analysis
