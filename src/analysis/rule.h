/**
 * @file
 * Lint rule interface and the default registry.
 *
 * Rules are token-level invariant checks tuned to this repository (see
 * README "Static analysis & sanitizers"). Each rule carries a path
 * scope: the directories whose contract it enforces. Four families:
 *
 *   MJ-DET-*  determinism of the campaign / difftest / report paths
 *   MJ-PRB-*  architectural-state writes must flow through accessors
 *   MJ-FRK-*  fork-safety between LightSSS snapshot points
 *   MJ-LAY-*  size/alignment claims must be static_assert-backed
 *   MJ-SUP-*  hygiene of the suppression mechanism itself
 */

#ifndef MINJIE_ANALYSIS_RULE_H
#define MINJIE_ANALYSIS_RULE_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/finding.h"
#include "analysis/lexer.h"
#include "analysis/source.h"

namespace minjie::analysis {

/** Everything a rule may inspect for one file. */
struct RuleContext
{
    const SourceFile &file;
    const std::vector<Token> &tokens;
    const std::vector<Comment> &comments;
};

class Rule
{
  public:
    virtual ~Rule() = default;

    virtual std::string_view id() const = 0;

    /** One-line description rendered into SARIF rule metadata. */
    virtual std::string_view summary() const = 0;

    /** Repo-relative directory prefixes this rule enforces. Empty
     *  means repo-wide. */
    virtual const std::vector<std::string> &scope() const = 0;

    /** Files inside scope() the rule nevertheless ignores (the
     *  approved accessor/trap-machinery homes). */
    virtual const std::vector<std::string> &exemptFiles() const
    {
        static const std::vector<std::string> none;
        return none;
    }

    virtual void run(const RuleContext &ctx,
                     std::vector<Finding> &out) const = 0;

  protected:
    /** Emit a finding for the token at @p tok. */
    void report(const RuleContext &ctx, const Token &tok,
                std::string message, std::vector<Finding> &out) const;
};

/** The full rule set, in stable id order. */
std::vector<std::unique_ptr<Rule>> makeDefaultRules();

// Family constructors (used directly by the per-rule tests).
std::vector<std::unique_ptr<Rule>> makeDeterminismRules();
std::vector<std::unique_ptr<Rule>> makeProbeRules();
std::vector<std::unique_ptr<Rule>> makeForkRules();
std::vector<std::unique_ptr<Rule>> makeLayoutRules();

// ---- shared token helpers (defined in rules_util.cpp) ----

/** True when tokens[i] is a plain function call of one of @p names:
 *  an identifier directly followed by '(' and not preceded by '.',
 *  '->', or '::' (member / qualified calls are different functions). */
bool isPlainCall(const std::vector<Token> &toks, size_t i,
                 const std::vector<std::string_view> &names);

/** Index of the matching close for the bracket at @p open ('(', '[',
 *  '{', or '<' treated as a template-argument list), or toks.size(). */
size_t matchBracket(const std::vector<Token> &toks, size_t open);

/** True when the token is one of the mutating assignment operators
 *  (=, +=, ..., <<=) — not ==, <=, >=. */
bool isAssignOp(const Token &tok);

} // namespace minjie::analysis

#endif // MINJIE_ANALYSIS_RULE_H
