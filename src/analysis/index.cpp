/**
 * @file
 * Token-stream symbol indexer. One linear pass per TU:
 *
 *   1. flat scans collect declared std::unordered_* / mutex names;
 *   2. a scope-tracking pass finds namespace / class nesting and
 *      function definitions (`name(params) trailer {`), then records
 *      events inside each body: calls (with the lock set held at the
 *      call), lock acquisitions, nondeterminism sources, container
 *      iterations, and arch-state stores.
 *
 * The indexer is heuristic by design: it never resolves types or
 * overloads, and unparseable constructs degrade to "no event", never
 * to a crash. The graph layer treats the result conservatively.
 */

#include "analysis/index.h"

#include <algorithm>
#include <cstddef>

namespace minjie::analysis {

namespace {

bool
isAnyOf(std::string_view s, std::initializer_list<std::string_view> set)
{
    for (std::string_view c : set)
        if (s == c)
            return true;
    return false;
}

/** Keywords that look like calls (`if (`) but are not. */
bool
isCallKeyword(std::string_view s)
{
    return isAnyOf(s, {"if", "for", "while", "switch", "return",
                       "sizeof", "alignof", "alignas", "decltype",
                       "noexcept", "static_assert", "catch", "new",
                       "delete", "throw", "co_await", "co_return",
                       "case", "do", "else", "goto", "default",
                       "constexpr", "requires"});
}

bool
isDeclKeyword(std::string_view s)
{
    return isAnyOf(s, {"if", "for", "while", "switch", "return",
                       "sizeof", "case", "do", "else", "goto"});
}

/** Host-RNG calls banned on deterministic paths (see MJ-DET-001). */
bool
isRngCall(std::string_view s)
{
    return isAnyOf(s, {"rand", "srand", "random", "srandom", "rand_r",
                       "drand48", "lrand48"});
}

/** Wall-clock calls banned on deterministic paths (see MJ-DET-002). */
bool
isClockCall(std::string_view s)
{
    return isAnyOf(s, {"time", "clock", "gettimeofday", "localtime",
                       "gmtime", "ctime", "mktime", "clock_gettime"});
}

bool
isNondetType(std::string_view s)
{
    return isAnyOf(s, {"random_device", "mt19937", "mt19937_64",
                       "system_clock", "steady_clock",
                       "high_resolution_clock"});
}

bool
isUnorderedContainer(std::string_view s)
{
    return isAnyOf(s, {"unordered_map", "unordered_set",
                       "unordered_multimap", "unordered_multiset"});
}

bool
isMutexType(std::string_view s)
{
    return isAnyOf(s, {"mutex", "recursive_mutex", "shared_mutex",
                       "timed_mutex", "recursive_timed_mutex",
                       "pthread_mutex_t"});
}

bool
isLockGuardType(std::string_view s)
{
    return isAnyOf(s,
                   {"lock_guard", "unique_lock", "scoped_lock",
                    "shared_lock"});
}

/** Mirrors rules_probe.cpp's PROTECTED_CSRS (the DiffTest-compared
 *  fields); keep the two lists in sync when extending either. */
bool
isProtectedCsr(std::string_view s)
{
    return isAnyOf(s, {"mstatus", "mepc", "mcause", "mtval", "mtvec",
                       "mscratch", "mie", "medeleg", "mideleg", "sepc",
                       "scause", "stval", "stvec", "sscratch", "satp",
                       "fflags", "frm", "pmpcfg0", "pmpaddr0"});
}

bool
isAssignPunct(const Token &t)
{
    return t.kind == Tok::Punct &&
           isAnyOf(t.text, {"=", "+=", "-=", "*=", "/=", "%=", "&=",
                            "|=", "^=", "<<=", ">>=", "++", "--"});
}

/** Matching ')' / ']' / '}' for the bracket at @p open (paren-family
 *  only; '<' is ambiguous and handled by callers that know context). */
size_t
matchParen(const std::vector<Token> &toks, size_t open)
{
    char o = toks[open].text[0];
    char c = o == '(' ? ')' : o == '[' ? ']' : '}';
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
        if (toks[i].kind != Tok::Punct || toks[i].text.size() != 1)
            continue;
        if (toks[i].text[0] == o)
            ++depth;
        else if (toks[i].text[0] == c && --depth == 0)
            return i;
    }
    return toks.size();
}

/** Matching '>' for a template-argument '<' (nesting-aware, bails at
 *  tokens a template list cannot contain). */
size_t
matchAngle(const std::vector<Token> &toks, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.is("<"))
            ++depth;
        else if (t.is(">") && --depth == 0)
            return i;
        else if (t.is(">>") && (depth -= 2) <= 0)
            return i;
        else if (t.is(";") || t.is("{"))
            break;
    }
    return toks.size();
}

/** Walk a qualifier chain backwards from the ident at @p i:
 *  `A::B::name` yields "A::B". */
std::string
qualChainBefore(const std::vector<Token> &toks, size_t i)
{
    std::string qual;
    size_t k = i;
    while (k >= 2 && toks[k - 1].is("::") &&
           toks[k - 2].kind == Tok::Ident) {
        std::string part(toks[k - 2].text);
        qual = qual.empty() ? part : part + "::" + qual;
        k -= 2;
    }
    return qual;
}

/**
 * Parse the tokens after a parameter list's ')' at @p afterClose.
 * Returns the index of the body '{' when this is a definition, or
 * npos for declarations / non-functions. Handles cv/ref/noexcept
 * trailers, trailing return types, and constructor initializer lists
 * (including brace-initializers inside them).
 */
size_t
findBodyBrace(const std::vector<Token> &toks, size_t afterClose)
{
    constexpr size_t npos = static_cast<size_t>(-1);
    size_t j = afterClose;
    const size_t n = toks.size();
    while (j < n) {
        const Token &t = toks[j];
        if (t.is("{"))
            return j;
        if (t.is(";") || t.is(",") || t.is("=") || t.is(")"))
            return npos;
        if (t.kind == Tok::Ident &&
            isAnyOf(t.text, {"const", "noexcept", "override", "final",
                             "volatile", "mutable", "try", "requires"})) {
            // noexcept(expr) / requires(expr)
            if (j + 1 < n && toks[j + 1].is("(")) {
                j = matchParen(toks, j + 1);
                if (j == n)
                    return npos;
            }
            ++j;
            continue;
        }
        if (t.is("&") || t.is("&&")) {
            ++j;
            continue;
        }
        if (t.is("->")) {
            // Trailing return type: skip tokens until the body brace
            // or a declaration terminator.
            ++j;
            while (j < n && !toks[j].is("{") && !toks[j].is(";") &&
                   !toks[j].is("=")) {
                if (toks[j].is("<")) {
                    size_t c = matchAngle(toks, j);
                    if (c == n)
                        return npos;
                    j = c;
                }
                ++j;
            }
            continue;
        }
        if (t.is(":")) {
            // Constructor initializer list: member ( ... ) or
            // member { ... }, comma-separated, then the body brace.
            ++j;
            while (j < n) {
                // Skip the member name (possibly qualified/templated).
                while (j < n && (toks[j].kind == Tok::Ident ||
                                 toks[j].is("::") || toks[j].is("...")))
                    ++j;
                if (j < n && toks[j].is("<")) {
                    size_t c = matchAngle(toks, j);
                    if (c == n)
                        return npos;
                    j = c + 1;
                }
                if (j >= n || !(toks[j].is("(") || toks[j].is("{")))
                    return npos;
                size_t c = matchParen(toks, j);
                if (c == n)
                    return npos;
                j = c + 1;
                if (j < n && toks[j].is("..."))
                    ++j;
                if (j < n && toks[j].is(",")) {
                    ++j;
                    continue;
                }
                break;
            }
            continue;
        }
        return npos;
    }
    return npos;
}

/** A held lock plus the brace depth its guard was declared at. */
struct HeldLock
{
    std::string name;
    int depth; ///< guard dies when braceDepth drops below this
};

std::vector<std::string>
heldNames(const std::vector<HeldLock> &held)
{
    std::vector<std::string> out;
    out.reserve(held.size());
    for (const HeldLock &h : held)
        out.push_back(h.name);
    return out;
}

/** Source text of the first argument after '(' at @p open (up to the
 *  first top-level ',' or the closing ')'). */
std::string
firstArgText(const std::vector<Token> &toks, size_t open)
{
    std::string out;
    int depth = 0;
    for (size_t i = open + 1; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.is("(") || t.is("[") || t.is("{"))
            ++depth;
        else if (t.is(")") || t.is("]") || t.is("}")) {
            if (depth == 0)
                break;
            --depth;
        } else if (t.is(",") && depth == 0)
            break;
        out += t.text;
    }
    return out;
}

} // namespace

TuIndex
buildIndex(const SourceFile &file, const LexResult &lexed)
{
    TuIndex tu;
    tu.path = file.path();
    const auto &toks = lexed.tokens;
    const size_t n = toks.size();

    // Pass 1: declared unordered containers and lock objects. The
    // pattern `type < ... > name` / `mutex name` is scope-agnostic on
    // purpose: a member declared in a header must resolve iteration
    // sites in other TUs.
    for (size_t i = 0; i < n; ++i) {
        if (toks[i].kind != Tok::Ident)
            continue;
        if (isUnorderedContainer(toks[i].text) && i + 1 < n &&
            toks[i + 1].is("<")) {
            size_t close = matchAngle(toks, i + 1);
            if (close + 1 < n && toks[close + 1].kind == Tok::Ident)
                tu.unorderedNames.emplace_back(toks[close + 1].text);
        }
        if (isMutexType(toks[i].text) && i + 1 < n &&
            toks[i + 1].kind == Tok::Ident &&
            (i + 2 >= n || toks[i + 2].is(";") || toks[i + 2].is(",")))
            tu.lockNames.emplace_back(toks[i + 1].text);
        // Receiver-type hints: `Type name ;|=|{|,|)` (optionally with
        // template args and */& between). Noisy entries are fine —
        // they only ever NARROW member-call resolution.
        if (!isCallKeyword(toks[i].text) &&
            !isAnyOf(toks[i].text,
                     {"const", "static", "auto", "using", "typename",
                      "typedef", "namespace", "template", "public",
                      "private", "protected", "virtual", "inline",
                      "explicit", "friend", "operator", "extern"})) {
            size_t j = i + 1;
            if (j < n && toks[j].is("<")) {
                size_t c = matchAngle(toks, j);
                if (c == n)
                    continue;
                j = c + 1;
            }
            while (j < n && (toks[j].is("*") || toks[j].is("&") ||
                             toks[j].is("&&") ||
                             toks[j].isIdent("const")))
                ++j;
            if (j + 1 < n && toks[j].kind == Tok::Ident &&
                !isCallKeyword(toks[j].text) &&
                (toks[j + 1].is(";") || toks[j + 1].is("=") ||
                 toks[j + 1].is("{") || toks[j + 1].is(",") ||
                 toks[j + 1].is(")")))
                tu.varTypes.emplace_back(std::string(toks[j].text),
                                         std::string(toks[i].text));
        }
    }
    std::sort(tu.varTypes.begin(), tu.varTypes.end());
    tu.varTypes.erase(
        std::unique(tu.varTypes.begin(), tu.varTypes.end()),
        tu.varTypes.end());
    std::sort(tu.unorderedNames.begin(), tu.unorderedNames.end());
    tu.unorderedNames.erase(std::unique(tu.unorderedNames.begin(),
                                        tu.unorderedNames.end()),
                            tu.unorderedNames.end());
    std::sort(tu.lockNames.begin(), tu.lockNames.end());
    tu.lockNames.erase(
        std::unique(tu.lockNames.begin(), tu.lockNames.end()),
        tu.lockNames.end());

    // Pass 2: scopes, function definitions, and body events.
    struct Scope
    {
        std::string name; ///< "" for anonymous
        int bodyDepth;    ///< braceDepth inside the scope
    };
    std::vector<Scope> scopes;
    int depth = 0;
    FunctionIndex *fn = nullptr; ///< active function, else null
    int fnBodyDepth = 0;
    std::vector<HeldLock> held;

    auto openNamedScope = [&](size_t i) -> size_t {
        // namespace A::B { ... } | class/struct/union/enum X ... { ... }
        const Token &kw = toks[i];
        size_t j = i + 1;
        std::string name;
        if (kw.isIdent("namespace")) {
            while (j < n && toks[j].kind == Tok::Ident) {
                name += name.empty() ? std::string(toks[j].text)
                                     : "::" + std::string(toks[j].text);
                if (j + 1 < n && toks[j + 1].is("::"))
                    j += 2;
                else {
                    ++j;
                    break;
                }
            }
            if (j < n && toks[j].is("{")) {
                scopes.push_back({name, depth + 1});
                return j; // caller processes the '{'
            }
            return i; // namespace alias / using — no scope
        }
        if (j < n &&
            (toks[j].isIdent("class") || toks[j].isIdent("struct")))
            ++j; // enum class / enum struct
        // Skip macro-ish idents followed by '(' (alignas, attributes).
        while (j + 1 < n && toks[j].kind == Tok::Ident &&
               toks[j + 1].is("("))
            j = matchParen(toks, j + 1) + 1;
        if (j >= n || toks[j].kind != Tok::Ident)
            return i; // anonymous struct — depth tracking suffices
        name = std::string(toks[j].text);
        // Find the body '{' or a ';' (forward declaration) first.
        for (size_t k = j + 1; k < n; ++k) {
            if (toks[k].is(";") || toks[k].is("(") || toks[k].is("="))
                return i;
            if (toks[k].is("{")) {
                scopes.push_back({name, depth + 1});
                return k;
            }
        }
        return i;
    };

    for (size_t i = 0; i < n; ++i) {
        const Token &t = toks[i];

        if (t.is("{")) {
            ++depth;
            continue;
        }
        if (t.is("}")) {
            --depth;
            while (!held.empty() && held.back().depth > depth)
                held.pop_back();
            if (fn && depth < fnBodyDepth) {
                fn = nullptr;
                held.clear();
            }
            while (!scopes.empty() && scopes.back().bodyDepth > depth)
                scopes.pop_back();
            continue;
        }

        if (!fn) {
            if (t.isIdent("namespace") || t.isIdent("class") ||
                t.isIdent("struct") || t.isIdent("union") ||
                t.isIdent("enum")) {
                size_t brace = openNamedScope(i);
                if (brace != i)
                    i = brace - 1; // loop's ++i lands on the '{'
                continue;
            }
            // Function definition: ident '(' ... ')' trailer '{'.
            if (t.kind == Tok::Ident && !isCallKeyword(t.text) &&
                i + 1 < n && toks[i + 1].is("(")) {
                size_t close = matchParen(toks, i + 1);
                if (close == n)
                    continue;
                size_t body = findBodyBrace(toks, close + 1);
                if (body == static_cast<size_t>(-1))
                    continue;
                FunctionIndex f;
                f.name = std::string(t.text);
                if (i >= 1 && toks[i - 1].is("~"))
                    f.name = "~" + f.name;
                f.line = t.line;
                std::string qual = qualChainBefore(toks, i);
                std::string outer;
                for (const Scope &s : scopes)
                    if (!s.name.empty())
                        outer += s.name + "::";
                f.qualName = outer +
                             (qual.empty() ? "" : qual + "::") + f.name;
                tu.functions.push_back(std::move(f));
                fn = &tu.functions.back();
                fnBodyDepth = depth + 1;
                held.clear();
                // Record initializer-list calls (`ctor() : a_(g()) {`)
                // as entry calls, then resume at the body brace.
                for (size_t k = close + 1; k + 1 < body; ++k)
                    if (toks[k].kind == Tok::Ident &&
                        !isCallKeyword(toks[k].text) &&
                        toks[k + 1].is("(") && k > close + 1 &&
                        !toks[k - 1].is(":") && !toks[k - 1].is(",")) {
                        CallEvent c;
                        c.name = std::string(toks[k].text);
                        c.qualHint = qualChainBefore(toks, k);
                        c.line = toks[k].line;
                        fn->calls.push_back(std::move(c));
                    }
                i = body - 1; // loop's ++i lands on the '{'
                continue;
            }
            continue;
        }

        // ---- inside a function body ----
        if (t.kind != Tok::Ident)
            continue;

        // Lock guard: lock_guard<...> g(m); scoped_lock locks all args.
        if (isLockGuardType(t.text)) {
            size_t j = i + 1;
            if (j < n && toks[j].is("<")) {
                size_t c = matchAngle(toks, j);
                if (c == n)
                    continue;
                j = c + 1;
            }
            if (j < n && toks[j].kind == Tok::Ident)
                ++j; // variable name
            if (j >= n || !toks[j].is("("))
                continue;
            size_t close = matchParen(toks, j);
            // Each comma-separated argument is one acquired lock.
            std::vector<std::string> before = heldNames(held);
            size_t argStart = j;
            while (argStart < close) {
                std::string lockName = firstArgText(toks, argStart);
                if (!lockName.empty()) {
                    LockEvent e;
                    e.lockName = lockName;
                    e.line = t.line;
                    e.heldBefore = before;
                    fn->locks.push_back(std::move(e));
                    held.push_back({lockName, depth});
                }
                int d = 0;
                ++argStart;
                while (argStart < close) {
                    const Token &a = toks[argStart];
                    if (a.is("(") || a.is("[") || a.is("{") || a.is("<"))
                        ++d;
                    else if (a.is(")") || a.is("]") || a.is("}") ||
                             a.is(">"))
                        --d;
                    else if (a.is(",") && d == 0)
                        break;
                    ++argStart;
                }
            }
            i = close;
            continue;
        }

        // Explicit m.lock() / m.unlock() / pthread_mutex_lock(&m).
        if ((t.isIdent("lock") || t.isIdent("lock_shared")) && i >= 2 &&
            (toks[i - 1].is(".") || toks[i - 1].is("->")) &&
            toks[i - 2].kind == Tok::Ident && i + 1 < n &&
            toks[i + 1].is("(")) {
            std::string lockName(toks[i - 2].text);
            LockEvent e;
            e.lockName = lockName;
            e.line = t.line;
            e.heldBefore = heldNames(held);
            fn->locks.push_back(std::move(e));
            held.push_back({lockName, fnBodyDepth});
            continue;
        }
        if ((t.isIdent("unlock") || t.isIdent("unlock_shared")) &&
            i >= 2 &&
            (toks[i - 1].is(".") || toks[i - 1].is("->")) &&
            toks[i - 2].kind == Tok::Ident) {
            std::string name(toks[i - 2].text);
            for (size_t k = held.size(); k-- > 0;)
                if (held[k].name == name) {
                    held.erase(held.begin() +
                               static_cast<ptrdiff_t>(k));
                    break;
                }
            continue;
        }
        if (t.isIdent("pthread_mutex_lock") && i + 1 < n &&
            toks[i + 1].is("(")) {
            std::string arg = firstArgText(toks, i + 1);
            if (!arg.empty() && arg[0] == '&')
                arg.erase(0, 1);
            LockEvent e;
            e.lockName = arg;
            e.line = t.line;
            e.heldBefore = heldNames(held);
            fn->locks.push_back(std::move(e));
            held.push_back({arg, fnBodyDepth});
            // falls through: also recorded as a call below
        }
        if (t.isIdent("pthread_mutex_unlock") && i + 1 < n &&
            toks[i + 1].is("(")) {
            std::string arg = firstArgText(toks, i + 1);
            if (!arg.empty() && arg[0] == '&')
                arg.erase(0, 1);
            for (size_t k = held.size(); k-- > 0;)
                if (held[k].name == arg) {
                    held.erase(held.begin() +
                               static_cast<ptrdiff_t>(k));
                    break;
                }
        }

        // Nondeterminism sources.
        bool prevMember =
            i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->"));
        bool isCall = i + 1 < n && toks[i + 1].is("(");
        if (!prevMember && isCall &&
            (isRngCall(t.text) || isClockCall(t.text))) {
            DetEvent e;
            e.what = std::string(t.text) + "()";
            e.line = t.line;
            fn->detSources.push_back(std::move(e));
        } else if (!prevMember && isNondetType(t.text)) {
            DetEvent e;
            e.what = "std::" + std::string(t.text);
            e.line = t.line;
            fn->detSources.push_back(std::move(e));
        }

        // Range-for iteration: for ( decl : expr ).
        if (t.isIdent("for") && i + 1 < n && toks[i + 1].is("(")) {
            size_t close = matchParen(toks, i + 1);
            bool classic = false;
            size_t colon = 0;
            int d = 0;
            for (size_t k = i + 2; k < close && k < n; ++k) {
                if (toks[k].is("(") || toks[k].is("[") || toks[k].is("{"))
                    ++d;
                else if (toks[k].is(")") || toks[k].is("]") ||
                         toks[k].is("}"))
                    --d;
                else if (toks[k].is(";") && d == 0) {
                    classic = true;
                    break;
                } else if (toks[k].is(":") && d == 0 && colon == 0)
                    colon = k;
            }
            if (!classic && colon != 0) {
                IterEvent e;
                e.line = t.line;
                for (size_t k = colon + 1; k < close; ++k)
                    if (toks[k].kind == Tok::Ident &&
                        !isDeclKeyword(toks[k].text))
                        e.names.emplace_back(toks[k].text);
                if (!e.names.empty())
                    fn->iterUses.push_back(std::move(e));
            }
            continue;
        }
        // Explicit begin() iteration: X.begin() / X.cbegin().
        if ((t.isIdent("begin") || t.isIdent("cbegin")) && prevMember &&
            i >= 2 && toks[i - 2].kind == Tok::Ident && isCall) {
            IterEvent e;
            e.line = t.line;
            e.names.emplace_back(toks[i - 2].text);
            fn->iterUses.push_back(std::move(e));
        }

        // Arch-state stores (mirrors MJ-PRB patterns).
        if ((t.isIdent("x") || t.isIdent("f")) && prevMember &&
            i + 1 < n && toks[i + 1].is("[")) {
            size_t close = matchParen(toks, i + 1);
            if (close + 1 < n && isAssignPunct(toks[close + 1])) {
                WriteEvent e;
                e.what = std::string(t.text) + "[] store";
                e.line = t.line;
                fn->archWrites.push_back(std::move(e));
            }
        }
        if (t.isIdent("csr") && i + 3 < n && toks[i + 1].is(".") &&
            toks[i + 2].kind == Tok::Ident &&
            isProtectedCsr(toks[i + 2].text) &&
            isAssignPunct(toks[i + 3])) {
            WriteEvent e;
            e.what = "csr." + std::string(toks[i + 2].text) + " store";
            e.line = t.line;
            fn->archWrites.push_back(std::move(e));
        }

        // Call sites (after the special forms above).
        if (isCall && !isCallKeyword(t.text)) {
            CallEvent c;
            c.name = std::string(t.text);
            c.line = t.line;
            c.member = prevMember;
            if (!prevMember)
                c.qualHint = qualChainBefore(toks, i);
            else if (i >= 2 && toks[i - 2].kind == Tok::Ident)
                c.recv = std::string(toks[i - 2].text);
            // The fork rules tolerate stderr-directed stdio; keep the
            // argument text for exactly those calls so the graph rule
            // can apply the same tolerance.
            if (isAnyOf(t.text, {"fprintf", "vfprintf", "fputs",
                                 "fputc", "fflush", "fwrite"})) {
                size_t close = matchParen(toks, i + 1);
                for (size_t k = i + 2;
                     k < close && c.firstArg.size() < 64; ++k)
                    c.firstArg += toks[k].text;
            }
            c.heldLocks = heldNames(held);
            fn->calls.push_back(std::move(c));
        }
    }

    return tu;
}

} // namespace minjie::analysis
