#include "analysis/source.h"

#include <algorithm>
#include <cstdio>

namespace minjie::analysis {

SourceFile::SourceFile(std::string relPath, std::string text)
    : relPath_(std::move(relPath)), text_(std::move(text))
{
    lineStarts_.push_back(0);
    for (size_t i = 0; i < text_.size(); ++i)
        if (text_[i] == '\n')
            lineStarts_.push_back(i + 1);
}

bool
SourceFile::load(const std::string &absPath, const std::string &relPath,
                 SourceFile &out)
{
    FILE *f = std::fopen(absPath.c_str(), "rb");
    if (!f)
        return false;
    std::string text;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    out = SourceFile(relPath, std::move(text));
    return true;
}

uint32_t
SourceFile::lineOf(size_t offset) const
{
    auto it = std::upper_bound(lineStarts_.begin(), lineStarts_.end(),
                               offset);
    return static_cast<uint32_t>(it - lineStarts_.begin());
}

uint32_t
SourceFile::colOf(size_t offset) const
{
    uint32_t line = lineOf(offset);
    return static_cast<uint32_t>(offset - lineStarts_[line - 1] + 1);
}

std::string_view
SourceFile::lineText(uint32_t line) const
{
    if (line == 0 || line > lineStarts_.size())
        return {};
    size_t begin = lineStarts_[line - 1];
    size_t end = line < lineStarts_.size() ? lineStarts_[line] - 1
                                           : text_.size();
    if (end > begin && text_[end - 1] == '\r')
        --end;
    return std::string_view(text_).substr(begin, end - begin);
}

} // namespace minjie::analysis
