#include "analysis/rule.h"

#include <algorithm>
#include <cctype>

namespace minjie::analysis {

void
Rule::report(const RuleContext &ctx, const Token &tok, std::string message,
             std::vector<Finding> &out) const
{
    Finding f;
    f.ruleId = std::string(id());
    f.path = ctx.file.path();
    f.line = tok.line;
    f.col = tok.col;
    f.message = std::move(message);
    std::string_view lt = ctx.file.lineText(tok.line);
    size_t b = lt.find_first_not_of(" \t");
    size_t e = lt.find_last_not_of(" \t\r");
    if (b != std::string_view::npos)
        f.snippet = std::string(lt.substr(b, e - b + 1));
    out.push_back(std::move(f));
}

bool
isPlainCall(const std::vector<Token> &toks, size_t i,
            const std::vector<std::string_view> &names)
{
    if (toks[i].kind != Tok::Ident)
        return false;
    if (std::find(names.begin(), names.end(), toks[i].text) == names.end())
        return false;
    if (i + 1 >= toks.size() || !toks[i + 1].is("("))
        return false;
    if (i > 0) {
        const Token &prev = toks[i - 1];
        if (prev.is(".") || prev.is("->") || prev.is("::"))
            return false;
        // `void time(...)` / `#define time(...)`: a declaration or
        // macro definition, not a call site. Keywords that legally
        // precede a call expression stay callable.
        if (prev.kind == Tok::Ident && !prev.is("return") &&
            !prev.is("co_return") && !prev.is("co_await") &&
            !prev.is("else") && !prev.is("do") && !prev.is("throw") &&
            !prev.is("case"))
            return false;
    }
    return true;
}

size_t
matchBracket(const std::vector<Token> &toks, size_t open)
{
    std::string_view o = toks[open].text;
    std::string_view c = o == "(" ? ")" : o == "[" ? "]"
                                  : o == "{" ? "}" : ">";
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == o)
            ++depth;
        else if (toks[i].text == c && --depth == 0)
            return i;
        // A template-argument scan that runs into a statement end has
        // misparsed a comparison; give up.
        else if (o == "<" && (toks[i].is(";") || toks[i].is("{")))
            return toks.size();
    }
    return toks.size();
}

bool
isAssignOp(const Token &tok)
{
    if (tok.kind != Tok::Punct)
        return false;
    static const std::string_view ops[] = {"=",  "+=", "-=", "*=",
                                           "/=", "%=", "&=", "|=",
                                           "^=", "<<=", ">>="};
    return std::find(std::begin(ops), std::end(ops), tok.text) !=
           std::end(ops);
}

} // namespace minjie::analysis
