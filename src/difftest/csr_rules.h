/**
 * @file
 * Machine/supervisor CSR diff-rules (paper Section III-B2).
 *
 * The paper reports devising ~120 rules from the RISC-V privileged
 * specification, mostly governing which CSR fields must match between
 * DUT and REF exactly, which may legally diverge (and the REF then
 * adopts the DUT value), and which only need to agree under a mask.
 * This table reifies that rule set: one entry per architected field.
 */

#ifndef MINJIE_DIFFTEST_CSR_RULES_H
#define MINJIE_DIFFTEST_CSR_RULES_H

#include <string>
#include <vector>

#include "difftest/probes.h"
#include "iss/csrfile.h"

namespace minjie::difftest {

/** How a CSR field participates in the equivalence check. */
enum class CsrPolicy : uint8_t {
    Exact,    ///< field must match bit-for-bit
    TrustDut, ///< micro-architecture-dependent: REF adopts DUT value
    Ignore,   ///< WPRI / unimplemented: never compared
};

/** One field-granular diff-rule. */
struct CsrFieldRule
{
    const char *csr;    ///< CSR name
    const char *field;  ///< field name
    uint64_t mask;      ///< bits covered by this rule
    CsrPolicy policy;
    /** Accessor for the field's register in the probe / CSR file. */
    uint64_t CsrProbe::*probeMember;
    /** >= 0: rule covers hpmcounter[idx] / hpmevent[idx] instead. */
    int hpmIdx = -1;
    bool hpmIsEvent = false;
};

/** The full rule table (built once; ~120 entries). */
const std::vector<CsrFieldRule> &csrRules();

/**
 * Check @p dut (the DUT's committed CSR view) against @p ref.
 * TrustDut fields are copied into @p ref. On a violated Exact rule the
 * offending rule is appended to @p violations.
 * @return true when no rule is violated.
 */
bool checkCsrs(const CsrProbe &dut, iss::CsrFile &ref, isa::Priv &refPriv,
               std::vector<std::string> &violations);

/** Snapshot @p ref into a probe for rule evaluation. */
CsrProbe snapshotCsrs(const iss::CsrFile &ref, isa::Priv priv);

} // namespace minjie::difftest

#endif // MINJIE_DIFFTEST_CSR_RULES_H
