/**
 * @file
 * The Global Memory of the multi-core diff-rule (paper Section
 * III-B2b): records every store that leaves any core's store queue
 * into the cache hierarchy. When a single-core REF loads a value that
 * disagrees with the DUT, DiffTest consults the Global Memory to decide
 * whether the DUT value was legally produced by another hardware
 * thread; if so, the REF's local memory and destination register are
 * updated instead of flagging a bug.
 */

#ifndef MINJIE_DIFFTEST_GLOBAL_MEMORY_H
#define MINJIE_DIFFTEST_GLOBAL_MEMORY_H

#include <deque>
#include <unordered_map>

#include "difftest/probes.h"

namespace minjie::difftest {

class GlobalMemory
{
  public:
    /** Record a store that entered the cache hierarchy. A bounded
     *  per-slot history is kept because the checking side observes
     *  loads at commit, i.e. after the producing value may have been
     *  overwritten by younger stores. */
    void
    onStore(const StoreProbe &probe)
    {
        ++stores_;
        Addr base = probe.paddr & ~7ULL;
        uint64_t &slot = mem_[base];
        unsigned shift = static_cast<unsigned>(probe.paddr & 7) * 8;
        uint64_t mask = probe.size == 8
            ? ~0ULL
            : (((1ULL << (probe.size * 8)) - 1) << shift);
        slot = (slot & ~mask) | ((probe.data << shift) & mask);
        known_[base] |= mask;
        auto &h = history_[base];
        h.push_back(slot);
        if (h.size() > HISTORY_DEPTH)
            h.pop_front();
    }

    /**
     * Could a load of @p size at @p paddr legally observe @p value?
     * True when every byte of the value matches a recorded store.
     */
    bool
    couldHaveValue(Addr paddr, unsigned size, uint64_t value) const
    {
        Addr base = paddr & ~7ULL;
        auto it = mem_.find(base);
        if (it == mem_.end())
            return false;
        auto kn = known_.find(base);
        unsigned shift = static_cast<unsigned>(paddr & 7) * 8;
        uint64_t mask = size == 8 ? ~0ULL
                                  : (((1ULL << (size * 8)) - 1) << shift);
        if ((kn->second & mask) != mask)
            return false; // some byte never written by any thread
        if (((it->second ^ (value << shift)) & mask) == 0)
            return true;
        // Younger stores may already have overwritten the value this
        // load legally observed; search the recent history.
        auto ht = history_.find(base);
        if (ht != history_.end()) {
            for (uint64_t old : ht->second)
                if (((old ^ (value << shift)) & mask) == 0)
                    return true;
        }
        return false;
    }

    uint64_t storesRecorded() const { return stores_; }

  private:
    // Bounded by the maximum stores in flight across all cores (ROB +
    // fetch buffers); 2048 covers two 256-entry windows of pure stores.
    static constexpr size_t HISTORY_DEPTH = 2048;
    // lint:allow MJ-DET-003 lookup-only map, never iterated; hit on every store
    std::unordered_map<Addr, uint64_t> mem_;   ///< 8B slot contents
    // lint:allow MJ-DET-003 lookup-only map, never iterated; hit on every store
    std::unordered_map<Addr, uint64_t> known_; ///< written-byte masks
    // lint:allow MJ-DET-003 lookup-only map, never iterated; hit on every store
    std::unordered_map<Addr, std::deque<uint64_t>> history_;
    uint64_t stores_ = 0;
};

} // namespace minjie::difftest

#endif // MINJIE_DIFFTEST_GLOBAL_MEMORY_H
