#include "difftest/csr_rules.h"

#include <cstdio>

#include "isa/csr.h"

namespace minjie::difftest {

using namespace minjie::isa;

namespace {

constexpr uint64_t ALL = ~0ULL;

std::vector<CsrFieldRule>
buildRules()
{
    std::vector<CsrFieldRule> r;
    auto add = [&](const char *csr, const char *field, uint64_t mask,
                   CsrPolicy pol, uint64_t CsrProbe::*m) {
        r.push_back({csr, field, mask, pol, m});
    };

    // ---- mstatus: field-by-field (the privileged spec's WARL/WPRI
    // structure maps onto per-field rules) ----
    auto M = &CsrProbe::mstatus;
    add("mstatus", "SIE", MSTATUS_SIE, CsrPolicy::Exact, M);
    add("mstatus", "MIE", MSTATUS_MIE, CsrPolicy::Exact, M);
    add("mstatus", "SPIE", MSTATUS_SPIE, CsrPolicy::Exact, M);
    add("mstatus", "MPIE", MSTATUS_MPIE, CsrPolicy::Exact, M);
    add("mstatus", "SPP", MSTATUS_SPP, CsrPolicy::Exact, M);
    add("mstatus", "MPP", MSTATUS_MPP, CsrPolicy::Exact, M);
    add("mstatus", "FS", MSTATUS_FS, CsrPolicy::Exact, M);
    add("mstatus", "XS", 3ULL << 15, CsrPolicy::Ignore, M);
    add("mstatus", "MPRV", MSTATUS_MPRV, CsrPolicy::Exact, M);
    add("mstatus", "SUM", MSTATUS_SUM, CsrPolicy::Exact, M);
    add("mstatus", "MXR", MSTATUS_MXR, CsrPolicy::Exact, M);
    add("mstatus", "TVM", MSTATUS_TVM, CsrPolicy::Exact, M);
    add("mstatus", "TW", MSTATUS_TW, CsrPolicy::Exact, M);
    add("mstatus", "TSR", MSTATUS_TSR, CsrPolicy::Exact, M);
    add("mstatus", "UXL", MSTATUS_UXL, CsrPolicy::Exact, M);
    add("mstatus", "SXL", MSTATUS_SXL, CsrPolicy::Exact, M);
    add("mstatus", "SD", MSTATUS_SD, CsrPolicy::Exact, M);
    add("mstatus", "WPRI", ~(MSTATUS_SIE | MSTATUS_MIE | MSTATUS_SPIE |
                             MSTATUS_MPIE | MSTATUS_SPP | MSTATUS_MPP |
                             MSTATUS_FS | (3ULL << 15) | MSTATUS_MPRV |
                             MSTATUS_SUM | MSTATUS_MXR | MSTATUS_TVM |
                             MSTATUS_TW | MSTATUS_TSR | MSTATUS_UXL |
                             MSTATUS_SXL | MSTATUS_SD),
        CsrPolicy::Ignore, M);

    // ---- trap plumbing ----
    add("mepc", "value", ALL, CsrPolicy::Exact, &CsrProbe::mepc);
    add("mcause", "value", ALL, CsrPolicy::Exact, &CsrProbe::mcause);
    add("mtval", "value", ALL, CsrPolicy::Exact, &CsrProbe::mtval);
    add("mtvec", "base", ~3ULL, CsrPolicy::Exact, &CsrProbe::mtvec);
    add("mtvec", "mode", 3ULL, CsrPolicy::Exact, &CsrProbe::mtvec);
    add("mscratch", "value", ALL, CsrPolicy::Exact, &CsrProbe::mscratch);
    add("sepc", "value", ALL, CsrPolicy::Exact, &CsrProbe::sepc);
    add("scause", "value", ALL, CsrPolicy::Exact, &CsrProbe::scause);
    add("stval", "value", ALL, CsrPolicy::Exact, &CsrProbe::stval);
    add("stvec", "base", ~3ULL, CsrPolicy::Exact, &CsrProbe::stvec);
    add("stvec", "mode", 3ULL, CsrPolicy::Exact, &CsrProbe::stvec);
    add("sscratch", "value", ALL, CsrPolicy::Exact, &CsrProbe::sscratch);

    // ---- interrupt enables: per-bit ----
    auto MIE_ = &CsrProbe::mie;
    add("mie", "SSIE", MIP_SSIP, CsrPolicy::Exact, MIE_);
    add("mie", "MSIE", MIP_MSIP, CsrPolicy::Exact, MIE_);
    add("mie", "STIE", MIP_STIP, CsrPolicy::Exact, MIE_);
    add("mie", "MTIE", MIP_MTIP, CsrPolicy::Exact, MIE_);
    add("mie", "SEIE", MIP_SEIP, CsrPolicy::Exact, MIE_);
    add("mie", "MEIE", MIP_MEIP, CsrPolicy::Exact, MIE_);
    add("mie", "reserved", ~(MIP_SSIP | MIP_MSIP | MIP_STIP | MIP_MTIP |
                             MIP_SEIP | MIP_MEIP),
        CsrPolicy::Ignore, MIE_);

    // ---- mip: pending bits driven by devices/timers are inherently
    // micro-architecture/timing dependent -> trust the DUT ----
    auto MIP_ = &CsrProbe::mip;
    add("mip", "SSIP", MIP_SSIP, CsrPolicy::Exact, MIP_);
    add("mip", "MSIP", MIP_MSIP, CsrPolicy::TrustDut, MIP_);
    add("mip", "STIP", MIP_STIP, CsrPolicy::TrustDut, MIP_);
    add("mip", "MTIP", MIP_MTIP, CsrPolicy::TrustDut, MIP_);
    add("mip", "SEIP", MIP_SEIP, CsrPolicy::TrustDut, MIP_);
    add("mip", "MEIP", MIP_MEIP, CsrPolicy::TrustDut, MIP_);

    // ---- delegation: one rule per delegable exception cause ----
    static const char *causes[] = {
        "inst-misaligned", "inst-access", "illegal-inst", "breakpoint",
        "load-misaligned", "load-access", "store-misaligned",
        "store-access", "ecall-u", "ecall-s", "reserved10", "ecall-m",
        "inst-pf", "load-pf", "reserved14", "store-pf"};
    for (unsigned b = 0; b < 16; ++b)
        add("medeleg", causes[b], 1ULL << b, CsrPolicy::Exact,
            &CsrProbe::medeleg);
    add("mideleg", "SSI", MIP_SSIP, CsrPolicy::Exact, &CsrProbe::mideleg);
    add("mideleg", "STI", MIP_STIP, CsrPolicy::Exact, &CsrProbe::mideleg);
    add("mideleg", "SEI", MIP_SEIP, CsrPolicy::Exact, &CsrProbe::mideleg);

    // ---- satp ----
    add("satp", "mode", 0xfULL << SATP_MODE_SHIFT, CsrPolicy::Exact,
        &CsrProbe::satp);
    add("satp", "asid", 0xffffULL << 44, CsrPolicy::Ignore,
        &CsrProbe::satp);
    add("satp", "ppn", SATP_PPN_MASK, CsrPolicy::Exact, &CsrProbe::satp);

    // ---- counters: cycle counts are micro-architectural by
    // definition; instret must match ----
    add("mcycle", "value", ALL, CsrPolicy::TrustDut, &CsrProbe::mcycle);
    add("minstret", "value", ALL, CsrPolicy::Exact, &CsrProbe::minstret);

    // ---- fp state: per-flag rules are evaluated in checkCsrs() over
    // the narrow fflags/frm bytes; the table records them through the
    // five flag rules plus frm and priv appended below ----

    // ---- identification CSRs ----
    add("misa", "value", ALL, CsrPolicy::Exact, &CsrProbe::misa);
    add("mvendorid", "value", ALL, CsrPolicy::Exact,
        &CsrProbe::mvendorid);
    add("marchid", "value", ALL, CsrPolicy::Exact, &CsrProbe::marchid);
    add("mimpid", "value", ALL, CsrPolicy::Exact, &CsrProbe::mimpid);
    add("mhartid", "value", ALL, CsrPolicy::Exact, &CsrProbe::mhartid);

    // ---- counter-enable / pmp / time ----
    add("mcounteren", "value", ALL, CsrPolicy::Exact,
        &CsrProbe::mcounteren);
    add("scounteren", "value", ALL, CsrPolicy::Exact,
        &CsrProbe::scounteren);
    add("pmpcfg0", "value", ALL, CsrPolicy::Ignore, &CsrProbe::pmpcfg0);
    add("pmpaddr0", "value", ALL, CsrPolicy::Ignore, &CsrProbe::pmpaddr0);
    add("time", "value", ALL, CsrPolicy::TrustDut, &CsrProbe::timeVal);

    // ---- user-mode counter views ----
    add("cycle", "value", ALL, CsrPolicy::TrustDut, &CsrProbe::mcycle);
    add("instret", "value", ALL, CsrPolicy::Exact, &CsrProbe::minstret);
    // sie/sip are masked views of mie/mip: rule over the delegable bits.
    add("sie", "view", SIP_MASK, CsrPolicy::Exact, &CsrProbe::mie);
    add("sip", "ssip-view", MIP_SSIP, CsrPolicy::Exact, &CsrProbe::mip);

    return r;
}

} // namespace

const std::vector<CsrFieldRule> &
csrRules()
{
    static const std::vector<CsrFieldRule> rules = [] {
        auto r = buildRules();
        // hpmcounters/events 3..18: performance-counter reads are
        // explicitly trusted from the DUT (paper Section III-B2c);
        // event selectors are implementation-defined and ignored.
        static const char *cnames[16] = {
            "hpm3", "hpm4", "hpm5", "hpm6", "hpm7", "hpm8", "hpm9",
            "hpm10", "hpm11", "hpm12", "hpm13", "hpm14", "hpm15",
            "hpm16", "hpm17", "hpm18"};
        for (int i = 0; i < 16; ++i) {
            r.push_back({"mhpmcounter", cnames[i], ~0ULL,
                         CsrPolicy::TrustDut, nullptr, i, false});
            r.push_back({"mhpmevent", cnames[i], ~0ULL, CsrPolicy::Ignore,
                         nullptr, i, true});
        }
        return r;
    }();
    return rules;
}

CsrProbe
snapshotCsrs(const iss::CsrFile &csr, isa::Priv priv)
{
    CsrProbe p;
    p.mstatus = csr.mstatus;
    p.mepc = csr.mepc;
    p.mcause = csr.mcause;
    p.mtval = csr.mtval;
    p.mtvec = csr.mtvec;
    p.mscratch = csr.mscratch;
    p.mie = csr.mie;
    p.mip = csr.mip;
    p.medeleg = csr.medeleg;
    p.mideleg = csr.mideleg;
    p.sepc = csr.sepc;
    p.scause = csr.scause;
    p.stval = csr.stval;
    p.stvec = csr.stvec;
    p.sscratch = csr.sscratch;
    p.satp = csr.satp;
    p.mcycle = csr.mcycle;
    p.minstret = csr.minstret;
    p.fflags = csr.fflags;
    p.frm = csr.frm;
    p.priv = static_cast<uint8_t>(priv);
    p.misa = csr.misa;
    p.mvendorid = 0;
    p.marchid = 25;
    p.mimpid = 0;
    p.mhartid = csr.mhartid;
    p.mcounteren = csr.mcounteren;
    p.scounteren = csr.scounteren;
    p.pmpcfg0 = csr.pmpcfg0;
    p.pmpaddr0 = csr.pmpaddr0;
    p.timeVal = csr.timeSrc ? *csr.timeSrc : 0;
    return p;
}

bool
checkCsrs(const CsrProbe &dut, iss::CsrFile &ref, isa::Priv &refPriv,
          std::vector<std::string> &violations)
{
    CsrProbe rp = snapshotCsrs(ref, refPriv);
    bool ok = true;
    char buf[160];

    for (const auto &rule : csrRules()) {
        uint64_t dutVal, refVal;
        if (rule.hpmIdx >= 0) {
            dutVal = (rule.hpmIsEvent ? dut.hpmevent[rule.hpmIdx]
                                      : dut.hpmcounter[rule.hpmIdx]) &
                     rule.mask;
            refVal = (rule.hpmIsEvent ? rp.hpmevent[rule.hpmIdx]
                                      : rp.hpmcounter[rule.hpmIdx]) &
                     rule.mask;
        } else {
            dutVal = dut.*(rule.probeMember) & rule.mask;
            refVal = rp.*(rule.probeMember) & rule.mask;
        }
        switch (rule.policy) {
          case CsrPolicy::Exact:
            if (dutVal != refVal) {
                ok = false;
                std::snprintf(buf, sizeof(buf),
                              "csr rule %s.%s: dut=0x%llx ref=0x%llx",
                              rule.csr, rule.field,
                              static_cast<unsigned long long>(dutVal),
                              static_cast<unsigned long long>(refVal));
                violations.push_back(buf);
            }
            break;
          case CsrPolicy::TrustDut:
            if (rule.hpmIdx < 0)
                rp.*(rule.probeMember) =
                    (rp.*(rule.probeMember) & ~rule.mask) | dutVal;
            break;
          case CsrPolicy::Ignore:
            break;
        }
    }

    // fflags: five per-flag rules; frm; privilege level.
    static const char *flagNames[] = {"NX", "UF", "OF", "DZ", "NV"};
    for (unsigned b = 0; b < 5; ++b) {
        if (((dut.fflags ^ rp.fflags) >> b) & 1) {
            ok = false;
            std::snprintf(buf, sizeof(buf),
                          "csr rule fflags.%s: dut=%u ref=%u",
                          flagNames[b], (dut.fflags >> b) & 1,
                          (rp.fflags >> b) & 1);
            violations.push_back(buf);
        }
    }
    if (dut.frm != rp.frm) {
        ok = false;
        violations.push_back("csr rule frm: mismatch");
    }
    if (dut.priv != rp.priv) {
        ok = false;
        std::snprintf(buf, sizeof(buf), "csr rule priv: dut=%u ref=%u",
                      dut.priv, rp.priv);
        violations.push_back(buf);
    }

    // Write the TrustDut-merged view back into the REF.
    ref.mip = rp.mip;
    ref.mcycle = rp.mcycle;
    return ok;
}

} // namespace minjie::difftest
