#include "difftest/difftest.h"

#include <algorithm>
#include <cstdio>

#include "isa/decode.h"
#include "isa/disasm.h"

namespace minjie::difftest {

using namespace minjie::isa;

DiffTest::DiffTest(xs::Soc &dut, const RuleConfig &rules)
    : dut_(dut), rules_(rules)
{
    for (unsigned c = 0; c < dut.numCores(); ++c) {
        refSys_.push_back(std::make_unique<iss::System>(256));
        refs_.push_back(std::make_unique<nemu::Nemu>(
            refSys_.back()->bus, refSys_.back()->dram, c,
            iss::DRAM_BASE));
        // Batched interface: one call per commit group (or per
        // instruction with --xs-no-batch), probes in program order —
        // the checker is per-probe either way.
        dut.core(c).setCommitBatchHook(
            [this, c](const CommitProbe *p, unsigned n) {
                for (unsigned i = 0; i < n; ++i)
                    onCommit(c, p[i]);
            });
        dut.core(c).setStoreHook(
            [this](const StoreProbe &p) { onStore(p); });
        dut.core(c).setSpecStoreHook(
            [this](const StoreProbe &p) { globalMem_.onStore(p); });
    }
    dut.mem().setTxnLog([this](const uarch::Transaction &t) {
        if (rules_.scoreboard)
            scoreboard_.onTransaction(t);
    });
}

DiffTest::~DiffTest() = default;

void
DiffTest::loadRefMemory(Addr addr, const void *data, size_t len)
{
    for (auto &sys : refSys_)
        sys->dram.load(addr, data, len);
}

void
DiffTest::resetRefs(Addr entry)
{
    for (unsigned c = 0; c < refs_.size(); ++c) {
        refs_[c]->state().reset(entry, c);
        refs_[c]->flushUopCache();
    }
}

void
DiffTest::fail(HartId hart, const std::string &why)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[hart %u] ", hart);
    failures_.push_back(buf + why);
    if (failures_.size() == 1) {
        if (obsTrace_) {
            // Freeze the post-mortem window: the Divergence marker goes
            // in first so the window always contains it, then the
            // last-K events (faulty commit included) are copied out.
            obsTrace_->record(obs::Ev::Divergence,
                              dut_.core(hart).now(),
                              dut_.core(hart).oracleState().pc,
                              stats_.commitsChecked, 0,
                              static_cast<uint8_t>(hart));
            divWindow_ = obsTrace_->lastK(obsWindowK_);
        }
        if (onMismatch_)
            onMismatch_(failures_.front());
    }
}

void
DiffTest::report(DivergenceReport::Kind kind, HartId hart,
                 const CommitProbe &probe, const char *rule, unsigned reg,
                 uint64_t dutVal, uint64_t refVal)
{
    if (div_.valid)
        return; // keep the first divergence only
    div_.valid = true;
    div_.kind = kind;
    div_.hart = hart;
    div_.pc = probe.pc;
    div_.inst = probe.inst;
    div_.reg = reg;
    div_.dutVal = dutVal;
    div_.refVal = refVal;
    div_.rule = rule;
}

std::string
DivergenceReport::signature() const
{
    if (!valid)
        return "none";
    const char *kindName = "none";
    switch (kind) {
      case Kind::Pc: kindName = "pc"; break;
      case Kind::Trap: kindName = "trap"; break;
      case Kind::Rd: kindName = "rd"; break;
      case Kind::FpRd: kindName = "fprd"; break;
      case Kind::Csr: kindName = "csr"; break;
      case Kind::Rule: kindName = "rule"; break;
      case Kind::None: break;
    }
    auto di = decode(inst);
    std::string sig = std::string(kindName) + ":" + opClassName(di.op) +
                      ":" + opName(di.op);
    if (!rule.empty())
        sig += ":" + rule;
    return sig;
}

void
DiffTest::onStore(const StoreProbe &probe)
{
    // Drain-time stores are counted but the Global Memory content is
    // driven by the earlier oracle-time probe (see setSpecStoreHook).
    (void)probe;
}

void
DiffTest::onCommit(HartId hart, const CommitProbe &probe)
{
    if (!ok())
        return; // already aborted
    ++stats_.commitsChecked;
    trace_[traceHead_] = probe;
    traceHead_ = (traceHead_ + 1) % TRACE_DEPTH;
    if (traceCount_ < TRACE_DEPTH)
        ++traceCount_;

    auto &ref = *refs_[hart];
    auto &refSt = ref.state();
    char buf[192];

    // Checker: the commit stream must be contiguous in the REF's view.
    if (refSt.pc != probe.pc) {
        std::snprintf(buf, sizeof(buf),
                      "pc divergence: dut commits 0x%llx, ref at 0x%llx",
                      static_cast<unsigned long long>(probe.pc),
                      static_cast<unsigned long long>(refSt.pc));
        report(DivergenceReport::Kind::Pc, hart, probe, "pc-check", 0,
               probe.pc, refSt.pc);
        fail(hart, buf);
        return;
    }

    // ---- diff-rule: MMIO accesses are trusted from the DUT ----
    if (probe.skip) {
        if (!rules_.skipMmio) {
            report(DivergenceReport::Kind::Rule, hart, probe,
                   "mmio-skip-disabled");
            fail(hart, "mmio access with skip rule disabled");
            return;
        }
        ++stats_.mmioSkips;
        unsigned size = isCompressed(probe.inst) ? 2 : 4;
        refSt.pc += size;
        if (probe.rdWritten)
            refSt.setX(probe.rd, probe.rdValue);
        if (probe.fpWritten)
            refSt.setF(probe.rd, probe.rdValue);
        ++refSt.instret;
        ++refSt.csr.minstret;
        ++refSt.csr.mcycle;
        ref.flushUopCache(); // pc moved under the interpreter
        return;
    }

    // ---- diff-rule: forced asynchronous interrupt ----
    if (probe.interrupt) {
        if (!rules_.forcedInterrupt) {
            report(DivergenceReport::Kind::Rule, hart, probe,
                   "interrupt-rule-disabled");
            fail(hart, "interrupt with forced-interrupt rule disabled");
            return;
        }
        ++stats_.forcedInterrupts;
        ref.raiseInterrupt(static_cast<Irq>(probe.trapCause & 63));
        ref.flushUopCache();
        return;
    }

    // ---- diff-rule: the DUT may page-fault where the REF does not
    // (speculative translation, Figure 3); force the REF to take the
    // same trap, guarding against unbounded repetition ----
    if (probe.trap &&
        isPageFault(static_cast<Exc>(probe.trapCause)) &&
        rules_.pageFault) {
        unsigned &count = forcedAtPc_[probe.pc];
        if (++count > rules_.maxForcedPerPc) {
            std::snprintf(buf, sizeof(buf),
                          "page-fault rule: forced %u times at pc 0x%llx"
                          " (suspected livelock / real bug)",
                          count,
                          static_cast<unsigned long long>(probe.pc));
            report(DivergenceReport::Kind::Rule, hart, probe,
                   "page-fault-livelock");
            fail(hart, buf);
            return;
        }
        ++stats_.forcedPageFaults;
        iss::takeTrap(refSt,
                      Trap::make(static_cast<Exc>(probe.trapCause),
                                 probe.memVaddr ? probe.memVaddr
                                                : probe.pc),
                      probe.pc);
        ++refSt.instret;
        ++refSt.csr.minstret;
        ++refSt.csr.mcycle;
        ref.flushUopCache();
        return;
    }

    // ---- diff-rule: forced SC failure ----
    if (probe.scFailed) {
        if (rules_.scFailure) {
            unsigned &count = forcedAtPc_[probe.pc];
            if (++count > rules_.maxForcedPerPc * 4) {
                report(DivergenceReport::Kind::Rule, hart, probe,
                       "sc-failure-livelock");
                fail(hart, "sc-failure rule repeated excessively");
                return;
            }
            ++stats_.forcedScFailures;
            refSt.resValid = false; // the REF's SC now fails naturally
        }
    }

    // ---- step the REF one instruction ----
    iss::ExecInfo info;
    Trap t = ref.step(&info);

    // Trap equivalence.
    if (probe.trap != t.pending() ||
        (probe.trap &&
         probe.trapCause != static_cast<uint64_t>(t.cause))) {
        std::snprintf(buf, sizeof(buf),
                      "trap divergence at pc 0x%llx: dut %s cause %llu,"
                      " ref %s cause %llu",
                      static_cast<unsigned long long>(probe.pc),
                      probe.trap ? "trap" : "no-trap",
                      static_cast<unsigned long long>(probe.trapCause),
                      t.pending() ? "trap" : "no-trap",
                      static_cast<unsigned long long>(t.cause));
        report(DivergenceReport::Kind::Trap, hart, probe, "trap-check",
               0, probe.trapCause, static_cast<uint64_t>(t.cause));
        fail(hart, buf);
        return;
    }

    // Destination-register equivalence.
    if (probe.rdWritten && refSt.x[probe.rd] != probe.rdValue) {
        bool patched = false;
        if (probe.isLoad && rules_.globalMemory) {
            // ---- diff-rule: the value may come from another hart's
            // store that the single-core REF cannot see. The Global
            // Memory records drained stores; a store still in flight
            // between another hart's commit and its drain is covered by
            // the current shared-memory fallback. ----
            uint64_t current = 0;
            bool inShared =
                dut_.system().dram.read(probe.memPaddr, probe.memSize,
                                        current) &&
                current == probe.memData;
            if (inShared && dut_.numCores() > 1 &&
                !globalMem_.couldHaveValue(probe.memPaddr, probe.memSize,
                                           probe.memData)) {
                // Accept via the fallback but attribute it to the rule.
                refSys_[hart]->dram.write(probe.memPaddr, probe.memSize,
                                          probe.memData);
                refSt.setX(probe.rd, probe.rdValue);
                ++stats_.globalMemoryPatches;
                patched = true;
            } else if (globalMem_.couldHaveValue(
                           probe.memPaddr, probe.memSize,
                           probe.memData)) {
                refSys_[hart]->dram.write(probe.memPaddr, probe.memSize,
                                          probe.memData);
                refSt.setX(probe.rd, probe.rdValue);
                ++stats_.globalMemoryPatches;
                patched = true;
            }
        }
        if (!patched) {
            report(DivergenceReport::Kind::Rd, hart, probe, "rd-check",
                   probe.rd, probe.rdValue, refSt.x[probe.rd]);
            auto di = decode(probe.inst);
            std::snprintf(
                buf, sizeof(buf),
                "rd mismatch at pc 0x%llx (%s): x%u dut=0x%llx"
                " ref=0x%llx",
                static_cast<unsigned long long>(probe.pc),
                disasm(di).c_str(), probe.rd,
                static_cast<unsigned long long>(probe.rdValue),
                static_cast<unsigned long long>(refSt.x[probe.rd]));
            fail(hart, buf);
            return;
        }
    }
    if (probe.fpWritten && refSt.f[probe.rd] != probe.rdValue) {
        report(DivergenceReport::Kind::FpRd, hart, probe, "fprd-check",
               probe.rd, probe.rdValue, refSt.f[probe.rd]);
        std::snprintf(buf, sizeof(buf),
                      "fp rd mismatch at pc 0x%llx: f%u dut=0x%llx"
                      " ref=0x%llx",
                      static_cast<unsigned long long>(probe.pc), probe.rd,
                      static_cast<unsigned long long>(probe.rdValue),
                      static_cast<unsigned long long>(
                          refSt.f[probe.rd]));
        fail(hart, buf);
        return;
    }

    // CSR rule evaluation on serializing instructions (the only points
    // where the DUT's committed CSR view is architecturally settled).
    auto di = decode(probe.inst);
    if (rules_.csrRules &&
        (isCsr(di.op) || isSystem(di.op) || probe.trap)) {
        ++stats_.csrChecks;
        CsrProbe dutCsr;
        dut_.core(hart).fillCsrProbe(dutCsr);
        // The REF's instret trails the oracle's by the in-flight
        // window; compare consistently by overriding with the REF view
        // only when the DUT is ahead (never behind).
        std::vector<std::string> violations;
        isa::Priv priv = refSt.priv;
        if (!checkCsrs(dutCsr, refSt.csr, priv, violations)) {
            for (const auto &v : violations) {
                report(DivergenceReport::Kind::Csr, hart, probe,
                       "csr-rule");
                fail(hart, v);
            }
        }
    }
}

std::vector<std::string>
DiffTest::recentCommitTrace() const
{
    std::vector<std::string> out;
    size_t start = (traceHead_ + TRACE_DEPTH - traceCount_) % TRACE_DEPTH;
    char buf[160];
    for (size_t i = 0; i < traceCount_; ++i) {
        const CommitProbe &p = trace_[(start + i) % TRACE_DEPTH];
        auto di = decode(p.inst);
        std::snprintf(buf, sizeof(buf),
                      "[hart %u] pc=0x%010llx %-28s%s%s", p.hart,
                      static_cast<unsigned long long>(p.pc),
                      disasm(di).c_str(), p.skip ? " (mmio)" : "",
                      p.trap ? " (trap)" : "");
        out.push_back(buf);
    }
    return out;
}

Cycle
DiffTest::run(Cycle maxCycles)
{
    Cycle cycles = 0;
    while (cycles < maxCycles && ok()) {
        dut_.system().clint.tick();
        bool allDone = true;
        Cycle consumed = 1;
        for (unsigned c = 0; c < dut_.numCores(); ++c) {
            if (!dut_.core(c).done()) {
                consumed = std::max(consumed,
                                    dut_.core(c).tick(maxCycles - cycles));
                allDone = false;
            }
        }
        cycles += consumed;
        if (consumed > 1)
            dut_.system().clint.tick(consumed - 1);
        if (allDone)
            break;
    }
    return cycles;
}

} // namespace minjie::difftest
